(** List-length measures — the paper's stated future-work direction
    (realized in the PLDI'09 follow-up), implemented here as the [llen]
    measure: [llen [] = 0], [llen (x :: t) = llen t + 1], and match cases
    learn the corresponding facts about their scrutinee.

    Run with: [dune exec examples/lists_demo.exe]

    With the [llen] qualifier set, the system infers length-indexed types
    for the classic list combinators — [length], [append], [map], [rev] —
    and uses them to prove that [combine] (the partial zip) is only
    applied to lists of equal length. *)

let source = {|
let rec length l =
  match l with
  | [] -> 0
  | _ :: xs -> 1 + length xs

let rec append xs ys =
  match xs with
  | [] -> ys
  | h :: t -> h :: append t ys

let rec map f l =
  match l with
  | [] -> []
  | h :: t -> f h :: map f t

let rec rev_onto acc l =
  match l with
  | [] -> acc
  | h :: t -> rev_onto (h :: acc) t

let rev l = rev_onto [] l

(* combine demands equally long lists: the []/cons mismatch arms are
   provably dead at every call site below *)
let rec combine xs ys =
  match xs with
  | [] -> []
  | x :: xt -> begin
      match ys with
      | y :: yt -> (x, y) :: combine xt yt
      | [] -> assert (1 = 2); []
    end

let main =
  let l = [1; 2; 3; 4] in
  let m = map (fun x -> x * x) l in
  let z = combine l m in
  assert (length l = List.length m);
  assert (List.length z = length l);
  assert (List.length (append l m) = 8);
  List.length (rev z)
|}

let () =
  let quals =
    Liquid_infer.Qualifier.defaults @ Liquid_infer.Qualifier.list_defaults
  in
  Fmt.pr "=== list measures: verification ===@.";
  let report =
    Liquid_driver.Pipeline.verify_string
      ~options:{ Liquid_driver.Pipeline.default with Liquid_driver.Pipeline.quals }
      ~name:"lists.ml" source
  in
  Fmt.pr "%a@." Liquid_driver.Pipeline.pp_report report;
  Fmt.pr
    "@.Note combine's [] arm contains `assert (1 = 2)': it verifies only@.\
     because inference proves the arm dead — llen ys = llen xs >= 1 there.@.";

  Fmt.pr "@.=== list measures: execution ===@.";
  let prog = Liquid_lang.Parser.program_of_string ~file:"lists.ml" source in
  let env = Liquid_eval.Eval.run_program prog in
  match Liquid_common.Ident.Map.find_opt "main" env with
  | Some v -> Fmt.pr "main evaluates to %a@." Liquid_eval.Eval.pp_value v
  | None -> ()
