(** Gradual mode demo: residual obligations as runtime-checked casts.

    Run with: [dune exec examples/gradual_demo.exe]

    One program, verified {e without} the default qualifier set, carries
    two obligations the fixpoint cannot discharge:

    - [ok] asserts that [sum 5] is non-negative.  True at runtime, but
      with no qualifiers the solver cannot express it statically.
    - [fill] walks one past the end of a 10-element array — a genuine
      off-by-one that no qualifier can repair.

    Under [--gradual] neither becomes a hard error.  Each is demoted to
    a {e residual cast}: a content-addressed runtime check at the
    obligation's source span.  The verdict is SAFE_MODULO 2 — safe,
    modulo two casts the program must pass dynamically.

    [dsolve --gradual --run] then arms the casts in the evaluator:

    - the assertion cast {e holds} (the program's luck is observed, not
      assumed), and
    - the bounds cast {e fails} with the concrete witness [i = 10] and
      the out-of-range store it attempted.

    Each residual also carries the [--explain] diagnosis, so the held
    cast comes with a solver-verified repair hint (adding [0 <= v] to
    the blamed κ discharges it statically) and the failed cast with the
    blame path for the off-by-one.  The demo closes the loop: it fixes
    the bug the witness points at ([i <= 10] → [i < 10]), adds the
    hinted qualifier, re-verifies — SAFE, no residuals left.

    The same flow is available from the CLI as [dsolve --gradual] and
    [dsolve --gradual --run]. *)

module Pipeline = Liquid_driver.Pipeline
module Gradual = Liquid_gradual.Gradual
module Explain = Liquid_explain.Explain

let source =
  {|
let rec sum k =
  if k < 0 then 0
  else begin
    let s = sum (k - 1) in
    s + k
  end

let total = sum 5
let ok = assert (0 <= total)

let a = Array.make 10 0

let rec fill i =
  if i <= 10 then begin
    a.(i) <- i;
    fill (i + 1)
  end
  else 0

let start = fill 0
|}

(* The same program with the off-by-one fixed, as the failed cast's
   witness ([i = 10]) directs. *)
let fixed_source = Str.global_replace (Str.regexp_string "i <= 10") "i < 10" source

let gradual_options quals = { Pipeline.default with Pipeline.quals; gradual = true }

let () =
  Fmt.pr "=== dsolve --gradual (verified without the default qualifiers) ===@.";
  let report =
    Pipeline.verify_string ~options:(gradual_options []) ~name:"gradual.ml"
      source
  in
  Fmt.pr "%a@." Pipeline.pp_report report;

  Fmt.pr "@.=== dsolve --gradual --run: arming the residual casts ===@.";
  let prog = Liquid_lang.Parser.program_of_string ~file:"gradual.ml" source in
  let run = Gradual.run_casts ~quiet:true report.Pipeline.residuals prog in
  Fmt.pr "%a@." Gradual.pp_run_report run;

  (* Close the loop: the failed cast's witness pins the off-by-one, the
     held cast's repair hint names the missing qualifier. *)
  let repair =
    List.find_map
      (fun (r : Gradual.residual) ->
        r.Gradual.rc_explanation.Explain.ex_repair)
      report.Pipeline.residuals
  in
  match repair with
  | None -> Fmt.pr "@.(no repair hint found)@."
  | Some rp ->
      Fmt.pr
        "@.=== fixing the witnessed bug and applying the repair hint ===@.";
      Fmt.pr "bug fix : i <= 10  ->  i < 10 (the witness says i = 10 escapes)@.";
      Fmt.pr "re-verifying with `qualif Fix(v) : %a`@." Liquid_logic.Pred.pp
        rp.Explain.rp_pred;
      let quals =
        Liquid_infer.Qualifier.parse_string
          (Fmt.str "qualif Fix(v) : %a" Liquid_logic.Pred.pp
             rp.Explain.rp_pred)
      in
      let fixed =
        Pipeline.verify_string ~options:(gradual_options quals)
          ~name:"gradual.ml" fixed_source
      in
      Fmt.pr "verdict: %a (%d residual casts left)@." Gradual.pp_verdict
        (Gradual.verdict_of
           ~errors:(List.length fixed.Pipeline.errors)
           ~residuals:(List.length fixed.Pipeline.residuals))
        (List.length fixed.Pipeline.residuals)
