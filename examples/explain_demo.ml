(** Explanation demo: what [dsolve --explain] adds to a failed run.

    Run with: [dune exec examples/explain_demo.exe]

    Two failing programs, two kinds of diagnosis:

    - [overrun.ml] has a genuine off-by-one ([i <= 10] walks one past
      the end of a 10-element array).  The explanation shows the
      concrete witness ([i = 10]), the minimal hypothesis core — the
      few environment facts that together contradict the bounds
      obligation — and the blame path: which κs were weakened at which
      program points until the index's refinement could no longer
      exclude 10.  No repair hint is offered: no qualifier can make an
      unsafe program safe.

    - [sum.ml] is safe but verified {e without} the default qualifier
      set, so the fixpoint cannot express "sum's result is
      non-negative" and the assertion fails.  Here the bounded repair
      search finds the missing instance and reports it: adding
      qualifier [0 <= v] to the blamed κ discharges the obligation and
      survives every constraint that weakens that κ — so re-running
      with that qualifier verifies (the demo does exactly that).

    The same output is available from the CLI as [dsolve --explain]
    (human-readable) and [dsolve --explain --format json]
    (machine-readable, capped by [--explain-limit]). *)

module Pipeline = Liquid_driver.Pipeline

let overrun_source =
  {|
let a = Array.make 10 0

let rec fill i =
  if i <= 10 then begin
    a.(i) <- i;
    fill (i + 1)
  end
  else 0

let start = fill 0
|}

let sum_source =
  {|
let rec sum k =
  if k < 0 then 0
  else begin
    let s = sum (k - 1) in
    s + k
  end

let total = sum 5
let ok = assert (0 <= total)
|}

let explain_options quals =
  { Pipeline.default with Pipeline.quals; explain = true }

let () =
  Fmt.pr "=== dsolve --explain on a genuine off-by-one (overrun.ml) ===@.";
  let report =
    Pipeline.verify_string
      ~options:(explain_options Liquid_infer.Qualifier.defaults)
      ~name:"overrun.ml" overrun_source
  in
  Fmt.pr "%a@." Pipeline.pp_report report;

  Fmt.pr
    "@.=== a missing qualifier (sum.ml, verified without the defaults) ===@.";
  let report =
    Pipeline.verify_string ~options:(explain_options []) ~name:"sum.ml"
      sum_source
  in
  Fmt.pr "%a@." Pipeline.pp_report report;

  (match report.Pipeline.explanations with
  | { Liquid_explain.Explain.ex_repair = Some rp; _ } :: _ ->
      Fmt.pr "@.applying the hint: re-verifying with `qualif Fix(v) : %a`@."
        Liquid_logic.Pred.pp rp.Liquid_explain.Explain.rp_pred;
      let quals =
        Liquid_infer.Qualifier.parse_string
          (Fmt.str "qualif Fix(v) : %a" Liquid_logic.Pred.pp
             rp.Liquid_explain.Explain.rp_pred)
      in
      let fixed =
        Pipeline.verify_string ~options:(explain_options quals) ~name:"sum.ml"
          sum_source
      in
      Fmt.pr "verdict with the hinted qualifier: %s@."
        (if fixed.Pipeline.safe then "SAFE" else "UNSAFE")
  | _ -> Fmt.pr "@.(no repair hint found)@.");

  Fmt.pr "@.=== the same report as JSON (dsolve --explain --format json) ===@.";
  let report =
    Pipeline.verify_string
      ~options:(explain_options Liquid_infer.Qualifier.defaults)
      ~name:"overrun.ml" overrun_source
  in
  Fmt.pr "%a@." Liquid_analysis.Json.pp
    (Pipeline.json_of_report ~file:"overrun.ml" report)
