(** User-declared algebraic datatypes + measures: the declaration-to-
    refinement subsystem, end to end.

    Run with: [dune exec examples/adt_demo.exe]

    A [type] declaration introduces constructors; a [measure] gives one
    structurally recursive integer equation per constructor.  Each
    measure is lifted to an uninterpreted function symbol, constructor
    applications and match arms emit the corresponding axioms, and the
    generated measure qualifier patterns ([v = size _], [size v <= size _],
    ...) close the candidate space — so [size_of] below gets the
    measure-indexed type [t:tree -> {v:int | v = size(t)}] with no
    annotation beyond the measure itself.

    The second program seeds a too-strong assertion and re-verifies with
    explanations on: the minimal core blames the constructor's measure
    axiom, and the witness assigns concrete measure values. *)

let source_safe =
  {|
type tree = Leaf | Node of tree * int * tree

(* number of Node constructors *)
measure size : tree =
  | Leaf -> 0
  | Node (l, _, r) -> 1 + size l + size r

(* longest root-to-leaf path; max/min are built-in connectives *)
measure height : tree =
  | Leaf -> 0
  | Node (l, _, r) -> 1 + max (height l) (height r)

let rec size_of t =
  match t with
  | Leaf -> 0
  | Node (l, x, r) -> 1 + size_of l + size_of r

(* provable: size (Node (l, x, r)) = 1 + size l + size r and size r >= 0 *)
let check_grow l x r = assert (size_of (Node (l, x, r)) > size_of l)

let main = check_grow (Node (Leaf, 1, Leaf)) 2 Leaf
|}

let source_unsafe =
  {|
type tree = Leaf | Node of tree * int * tree

measure size : tree =
  | Leaf -> 0
  | Node (l, _, r) -> 1 + size l + size r

let rec size_of t =
  match t with
  | Leaf -> 0
  | Node (l, x, r) -> 1 + size_of l + size_of r

(* overclaims by one: take r = Leaf and the sides are equal *)
let check_grow l x r = assert (size_of (Node (l, x, r)) > size_of l + 1)

let main = check_grow Leaf 5 Leaf
|}

let () =
  Fmt.pr "=== datatypes and measures: verification ===@.";
  let report =
    Liquid_driver.Pipeline.verify_string ~name:"tree.ml" source_safe
  in
  Fmt.pr "%a@." Liquid_driver.Pipeline.pp_report report;
  Fmt.pr
    "@.Note size_of's result type is measure-indexed: the match arms'@.\
     axioms and the generated [v = size _] qualifier pattern make the@.\
     exact specification inferable from the measure alone.@.";

  Fmt.pr "@.=== seeded failure: the core blames a measure axiom ===@.";
  let report =
    Liquid_driver.Pipeline.verify_string
      ~options:
        {
          Liquid_driver.Pipeline.default with
          Liquid_driver.Pipeline.explain = true;
        }
      ~name:"tree_bad.ml" source_unsafe
  in
  Fmt.pr "%a@." Liquid_driver.Pipeline.pp_report report;

  Fmt.pr "@.=== datatypes and measures: execution ===@.";
  let prog =
    Liquid_lang.Parser.program_of_string ~file:"tree.ml" source_safe
  in
  let env = Liquid_eval.Eval.run_program prog in
  match Liquid_common.Ident.Map.find_opt "main" env with
  | Some v -> Fmt.pr "main evaluates to %a@." Liquid_eval.Eval.pp_value v
  | None -> ()
