(** Semantic-lint demo: the post-inference analyses of [lib/analysis].

    Run with: [dune exec examples/lint_demo.exe]

    The program below verifies as SAFE, yet carries several latent
    problems that ordinary type checking cannot see.  The lint pass
    reuses the byproducts of liquid inference — the final κ-solution and
    the recorded conditionals — to find them:

    - [L002]: [clamp] re-checks [0 <= v] although its argument's
      inferred refinement already guarantees it (the condition is a
      tautology under the κ-solution); dually, [abs] is only ever
      applied to a negative argument, so its [x >= 0] test is always
      false — whole-program inference strengthens parameter types with
      call-site facts;
    - [L001]: consequently the branches those conditions guard are
      unreachable code;
    - [L003]: the binding [slack] is never used;
    - [L005]: the custom qualifier [Huge] is instantiated everywhere
      but survives the weakening loop nowhere — it does no work.

    The same diagnostics are available from the CLI:
    [dsolve --lint file.ml], machine-readable via [--format json], and
    enforceable via [--warn-error]. *)

let source =
  {|
let abs x = if x >= 0 then x else 0 - x

let clamp v limit =
  let slack = limit - v in
  if 0 <= v then (if v < limit then v else limit) else 0

let main =
  let a = abs (0 - 7) in
  let c = clamp a 10 in
  assert (0 <= c)
|}

let quals =
  Liquid_infer.Qualifier.defaults
  @ Liquid_infer.Qualifier.parse_string "qualif Huge(v) : v > 1000000"

let () =
  Fmt.pr "=== dsolve --lint: semantic diagnostics after inference ===@.";
  let report =
    Liquid_driver.Pipeline.verify_string
      ~options:
        {
          Liquid_driver.Pipeline.default with
          Liquid_driver.Pipeline.quals;
          lint = true;
        }
      ~name:"clamp.ml"
      source
  in
  Fmt.pr "%a@." Liquid_driver.Pipeline.pp_report report;

  let warnings = Liquid_analysis.Lint.warnings report.Liquid_driver.Pipeline.lints in
  Fmt.pr "@.%d of %d diagnostics are warnings (these gate --warn-error)@."
    (List.length warnings)
    (List.length report.Liquid_driver.Pipeline.lints);

  Fmt.pr "@.=== the same report as JSON (dsolve --format json) ===@.";
  Fmt.pr "%a@." Liquid_analysis.Json.pp
    (Liquid_driver.Pipeline.json_of_report ~file:"clamp.ml" report)
