(** Modular verification with refinement-type specifications.

    Run with: [dune exec examples/specs_demo.exe]

    Specifications (DSOLVE accepted an interface file the same way) serve
    three roles: they are {e checked} against the implementation, they
    are the only thing {e clients} get to rely on, and inside a recursive
    function they are {e assumed} for the recursive calls — classic
    modular (assume/guarantee) verification on top of inference. *)

let program = {|
let rec gcd a b =
  if b = 0 then a
  else gcd b (a mod b)

let rec power base e =
  if e <= 0 then 1
  else base * power base (e - 1)

let clamp lo hi x =
  if x < lo then lo
  else if x > hi then hi
  else x

let main =
  let g = gcd 48 18 in
  let c = clamp 0 9 g in
  let a = Array.make 10 0 in
  a.(c) <- power 2 3;
  a.(c)
|}

let specs = {|
val gcd   : a:{v:int | 0 <= v} -> b:{v:int | 0 <= v} -> {v:int | 0 <= v}
val power : base:int -> e:int -> {v:int | true}
val clamp : lo:int -> hi:{v:int | v >= lo} -> x:int ->
            {v:int | lo <= v && v <= hi}
|}

let () =
  Fmt.pr "=== specifications ===@.%s@." specs;
  let specs = Liquid_infer.Spec.parse_string specs in
  Fmt.pr "=== verification (checked AND assumed modularly) ===@.";
  let report =
    Liquid_driver.Pipeline.verify_string
      ~options:{ Liquid_driver.Pipeline.default with Liquid_driver.Pipeline.specs }
      ~name:"specs.ml" program
  in
  Fmt.pr "%a@." Liquid_driver.Pipeline.pp_report report;
  Fmt.pr
    "The write a.(c) is in bounds because clamp's specification bounds c@.\
     in [0, 9]; gcd's non-negativity makes the clamp call legal; and the@.\
     recursive gcd call relies on gcd's own specification (a mod b is@.\
     non-negative for non-negative operands).@.";

  (* A client cannot rely on more than the spec says. *)
  Fmt.pr "@.=== a client overstepping the specification ===@.";
  let report =
    Liquid_driver.Pipeline.verify_string
      ~options:{ Liquid_driver.Pipeline.default with Liquid_driver.Pipeline.specs }
      ~name:"specs.ml"
      (program ^ "\nlet oops = assert (gcd 48 18 = 6)")
  in
  Fmt.pr "verdict: %s@."
    (if report.Liquid_driver.Pipeline.safe then "SAFE (?!)"
     else "UNSAFE — gcd's spec doesn't promise the exact value")
