(** Using the SMT substrate directly.

    Run with: [dune exec examples/smt_demo.exe]

    The refinement logic is QF-EUFLIA: linear integer arithmetic plus
    uninterpreted functions.  This demo poses the kind of validity
    queries liquid inference generates — including the exact shape of an
    array-bounds obligation — against the built-in decision procedure
    (the container has no Z3; see DESIGN.md). *)

open Liquid_logic
open Liquid_smt
let tlen t = Term.app Symbol.len [ t ]

let x = Term.var "x" Sort.Int
let y = Term.var "y" Sort.Int
let i = Term.var "i" Sort.Int
let a = Term.var "a" Sort.Obj
let b = Term.var "b" Sort.Obj
let n k = Term.int k

let show hyps goal =
  let verdict =
    match Solver.check_valid hyps goal with
    | Solver.Valid -> "valid"
    | Solver.Invalid -> "invalid"
    | Solver.Unknown -> "unknown"
  in
  Fmt.pr "  %a@.    |- %a   [%s]@.@."
    Fmt.(list ~sep:(any " /\\ ") Pred.pp)
    hyps Pred.pp goal verdict

let () =
  Fmt.pr "=== linear integer arithmetic ===@.";
  show [ Pred.le x y; Pred.le y (Term.sub i (n 1)) ] (Pred.lt x i);
  show [ Pred.lt x y ] (Pred.le (Term.add x (n 1)) y);
  (* integrality: x cannot be strictly between two consecutive ints *)
  show [ Pred.lt (n 0) x; Pred.lt x (n 2) ] (Pred.eq x (n 1));
  (* ... and a rationally-valid but integrally-invalid claim is rejected *)
  show [ Pred.le (n 0) x ] (Pred.ge x (n 1));

  Fmt.pr "=== uninterpreted functions (congruence) ===@.";
  show [ Pred.eq a b ] (Pred.eq (tlen a) (tlen b));
  show
    [ Pred.eq (tlen a) (n 8); Pred.lt i (tlen a); Pred.le (n 0) i ]
    (Pred.lt i (n 8));

  Fmt.pr "=== the array-bounds obligation shape ===@.";
  (* i in bounds, i+1 still below len a: the inductive step of a loop *)
  show
    [
      Pred.le (n 0) i;
      Pred.lt i (tlen a);
      Pred.lt (Term.add i (n 1)) (tlen a);
    ]
    (Pred.conj
       [
         Pred.le (n 0) (Term.add i (n 1));
         Pred.lt (Term.add i (n 1)) (tlen a);
       ]);

  Fmt.pr "=== statistics ===@.";
  Fmt.pr "  %a@." Solver.pp_stats ()
