(** Benchmark harness: regenerates every table and figure of the paper's
    evaluation (see EXPERIMENTS.md for the experiment index).

    - [T1] — the results table (Program / Lines / DML / Qualifiers /
      Time): verification of the 11 DML-suite benchmarks with their
      qualifier sets, alongside the paper-reported DML annotation sizes.
    - [F1] — the overview "figures": inferred liquid types of the worked
      examples ([max], [sum], [foldn], [arraymax]).
    - [A1] — qualifier ablation: benchmarks needing a custom qualifier
      pattern fail cleanly without it (supports the paper's claim that
      the qualifier language is the entire annotation burden).
    - [A2] — solver ablations (implementation ablations, ours): query
      counts and time with the result cache on/off, and the incremental
      weakening engine vs the naive (seed) engine — sat-checks avoided
      and solver time, with byte-identical verdicts and inferred types.
    - [INCR] — incremental re-verification: one-function edit of
      simplex against a cache seeded with the base program, gated at
      half the cold time with byte-identical reports.
    - [EXPLAIN] — explanation overhead and determinism: the ablation
      subset re-verified without its custom qualifiers (so it fails),
      with the explain phase's cost gated under 15% of the rest of the
      run and its JSON output required byte-identical across runs.
    - [ADT] — user datatypes + measures: the declaration corpus (tree
      size/height, size-indexed stack, red-black color invariant, one
      seeded UNSAFE variant) verified direct, at jobs=4, through a cold
      and warm partition cache and through the daemon, gated on
      expected verdicts and byte-identical reports.
    - [FIXPOINT] — per-benchmark solver counters (time, queries,
      sat-checks, cache hits), also written to [BENCH_fixpoint.json].
    - [BECHAMEL] — one [Test.make] per T1 row, measuring the full
      inference pipeline with Bechamel's monotonic clock.

    Run with [dune exec bench/main.exe]; pass [quick] to skip the A3 and
    Bechamel sections (the CI mode — still writes BENCH_fixpoint.json). *)

let line = String.make 72 '='

let section name = Fmt.pr "@.%s@.== %s@.%s@." line name line

(* ------------------------------------------------------------------ *)
(* T1: the results table                                               *)
(* ------------------------------------------------------------------ *)

let t1 () =
  section "T1: Benchmark results (paper: Figure `Results')";
  Fmt.pr
    "Each row verifies one NanoML port of the paper's DML benchmark with@.\
     the shared default qualifiers plus the listed per-program patterns.@.\
     `DML' is the paper-reported annotation size (chars) of the DML@.\
     baseline; the reproduction claim is the shape: a handful of@.\
     qualifier patterns replaces per-function dependent signatures.@.@.";
  let rows = Liquid_suite.Runner.verify_all () in
  Fmt.pr "%a@." Liquid_suite.Runner.pp_table rows;
  rows

(* ------------------------------------------------------------------ *)
(* F1: inferred types of the overview examples                         *)
(* ------------------------------------------------------------------ *)

let f1 () =
  section "F1: Inferred liquid types (paper: overview figures)";
  List.iter
    (fun (ex : Liquid_suite.Overview.example) ->
      let r =
        Liquid_driver.Pipeline.verify_string ~name:ex.Liquid_suite.Overview.name
          ex.Liquid_suite.Overview.source
      in
      Fmt.pr "--- %s (%s)@." ex.Liquid_suite.Overview.name
        (if r.Liquid_driver.Pipeline.safe then "safe" else "UNSAFE");
      List.iter
        (fun (x, t) ->
          if not (Liquid_common.Ident.is_internal x) then
            Fmt.pr "  val %a : %a@." Liquid_common.Ident.pp x
              Liquid_infer.Rtype.pp (Liquid_infer.Report.display t))
        r.Liquid_driver.Pipeline.item_types;
      Fmt.pr "@.")
    Liquid_suite.Overview.all

(* ------------------------------------------------------------------ *)
(* A1: qualifier ablation                                              *)
(* ------------------------------------------------------------------ *)

let a1 () =
  section "A1: Qualifier ablation (custom patterns are necessary)";
  Fmt.pr "%-10s %-38s %10s %10s@." "Program" "Extra qualifier" "with" "without";
  List.iter
    (fun name ->
      let b = Liquid_suite.Programs.find name in
      let with_ = Liquid_suite.Runner.verify b in
      let without =
        Liquid_suite.Runner.verify ~quals:Liquid_infer.Qualifier.defaults b
      in
      let verdict (r : Liquid_suite.Runner.row) =
        if r.Liquid_suite.Runner.report.Liquid_driver.Pipeline.safe then "safe"
        else
          Fmt.str "%d errors"
            (List.length
               r.Liquid_suite.Runner.report.Liquid_driver.Pipeline.errors)
      in
      Fmt.pr "%-10s %-38s %10s %10s@." name
        (String.trim b.Liquid_suite.Programs.extra_qualifiers)
        (verdict with_) (verdict without))
    [ "tower"; "simplex"; "gauss"; "bcopy" ]

(* ------------------------------------------------------------------ *)
(* A2: SMT cache ablation                                              *)
(* ------------------------------------------------------------------ *)

(* Rendered (display-cleaned) types of a report's public bindings, used
   to compare engines byte-for-byte. *)
let render_types (r : Liquid_driver.Pipeline.report) =
  String.concat "\n"
    (List.filter_map
       (fun (x, t) ->
         if Liquid_common.Ident.is_internal x then None
         else
           Some
             (Fmt.str "val %a : %a" Liquid_common.Ident.pp x
                Liquid_infer.Rtype.pp
                (Liquid_infer.Report.display t)))
       r.Liquid_driver.Pipeline.item_types)

(* Verdict fingerprint of a suite run: per benchmark, the verdict, the
   rendered error list, and the rendered public types — everything that
   must be invariant across engines and worker counts. *)
let fingerprint rows =
  List.map
    (fun (r : Liquid_suite.Runner.row) ->
      let rep = r.Liquid_suite.Runner.report in
      ( r.Liquid_suite.Runner.bench.Liquid_suite.Programs.name,
        rep.Liquid_driver.Pipeline.safe,
        List.map
          (fun (e : Liquid_driver.Pipeline.error) ->
            Fmt.str "%a: %s: %s" Liquid_common.Loc.pp
              e.Liquid_driver.Pipeline.err_loc
              e.Liquid_driver.Pipeline.err_reason
              e.Liquid_driver.Pipeline.err_goal)
          rep.Liquid_driver.Pipeline.errors,
        render_types rep ))
    rows

let a2 () =
  section "A2: Solver ablations (result cache; incremental fixpoint)";
  let run_with cache =
    Liquid_smt.Solver.cache_enabled := cache;
    Liquid_smt.Solver.clear_cache ();
    Liquid_smt.Solver.reset_stats ();
    let t0 = Unix.gettimeofday () in
    let rows =
      Liquid_suite.Runner.verify_all
        ~benchmarks:
          (List.filter
             (fun (b : Liquid_suite.Programs.benchmark) ->
               (* keep the ablation affordable *)
               List.mem b.Liquid_suite.Programs.name
                 [ "dotprod"; "bcopy"; "bsearch"; "isort"; "heapsort" ])
             Liquid_suite.Programs.all)
        ()
    in
    let dt = Unix.gettimeofday () -. t0 in
    let all_safe =
      List.for_all
        (fun (r : Liquid_suite.Runner.row) ->
          r.Liquid_suite.Runner.report.Liquid_driver.Pipeline.safe)
        rows
    in
    (dt, Liquid_smt.Solver.stats.queries, Liquid_smt.Solver.stats.cache_hits, all_safe)
  in
  let t_on, q_on, h_on, safe_on = run_with true in
  let t_off, q_off, h_off, safe_off = run_with false in
  Liquid_smt.Solver.cache_enabled := true;
  Fmt.pr "%-10s %10s %12s %12s %8s@." "cache" "time(s)" "queries" "cache-hits" "safe";
  Fmt.pr "%-10s %10.2f %12d %12d %8b@." "on" t_on q_on h_on safe_on;
  Fmt.pr "%-10s %10.2f %12d %12d %8b@." "off" t_off q_off h_off safe_off;
  (* -- incremental vs naive (seed) weakening engine ------------------- *)
  Fmt.pr
    "@.Incremental fixpoint vs the naive (seed) engine, full T1 suite.@.\
     Both engines run with the result cache on (cleared first); verdicts@.\
     and inferred types are compared byte-for-byte.@.@.";
  let run_engine incremental =
    Liquid_smt.Solver.clear_cache ();
    Liquid_smt.Solver.reset_stats ();
    let t0 = Unix.gettimeofday () in
    let rows =
      List.map
        (fun b -> Liquid_suite.Runner.verify ~incremental b)
        Liquid_suite.Programs.all
    in
    let dt = Unix.gettimeofday () -. t0 in
    let solve_time =
      List.fold_left
        (fun acc (r : Liquid_suite.Runner.row) ->
          List.fold_left
            (fun acc (phase, t) -> if phase = "solve" then acc +. t else acc)
            acc
            r.Liquid_suite.Runner.report.Liquid_driver.Pipeline.stats
              .Liquid_driver.Pipeline.phases)
        0.0 rows
    in
    ( rows,
      Liquid_smt.Solver.stats.queries,
      Liquid_smt.Solver.stats.sat_checks,
      solve_time,
      dt )
  in
  (* Counters are deterministic; wall clocks drift a few percent over the
     life of the process (allocator ramp, CPU clocking), so measure in an
     ABBA order — naive, incremental, incremental, naive — which cancels
     linear drift, after one unmeasured warm-up run. *)
  ignore (run_engine true);
  let n1 = run_engine false in
  let i1 = run_engine true in
  let i2 = run_engine true in
  let n2 = run_engine false in
  let mean sel a b = (sel a +. sel b) /. 2.0 in
  let rows_n, q_n, s_n, _, _ = n1 in
  let rows_i, q_i, s_i, _, _ = i1 in
  let solve_n = mean (fun (_, _, _, s, _) -> s) n1 n2 in
  let solve_i = mean (fun (_, _, _, s, _) -> s) i1 i2 in
  let t_n = mean (fun (_, _, _, _, t) -> t) n1 n2 in
  let t_i = mean (fun (_, _, _, _, t) -> t) i1 i2 in
  let identical = fingerprint rows_n = fingerprint rows_i in
  Fmt.pr "%-12s %10s %12s %12s %10s@." "engine" "time(s)*" "queries"
    "sat-checks" "solve(s)*";
  Fmt.pr "(* mean of 2 runs in drift-cancelling ABBA order, after warm-up)@.";
  Fmt.pr "%-12s %10.2f %12d %12d %10.2f@." "naive" t_n q_n s_n solve_n;
  Fmt.pr "%-12s %10.2f %12d %12d %10.2f@." "incremental" t_i q_i s_i solve_i;
  Fmt.pr "sat-checks avoided: %d (%.1f%%)   identical verdicts+types: %b@."
    (s_n - s_i)
    (if s_n = 0 then 0.0
     else 100.0 *. float_of_int (s_n - s_i) /. float_of_int s_n)
    identical;
  if not identical then
    List.iter2
      (fun a b ->
        if a <> b then
          let name, _, _, _ = a in
          Fmt.pr "  MISMATCH: %s@." name)
      (fingerprint rows_n) (fingerprint rows_i);
  identical

(* ------------------------------------------------------------------ *)
(* PRUNE: pre-fixpoint qualifier-space pruning                          *)
(* ------------------------------------------------------------------ *)

(* Runs the T1 suite with the pre-fixpoint prune on and off in
   drift-cancelling ABBA order and compares verdict fingerprints
   byte-for-byte.  Gates on two facts: the reports must be identical,
   and the prune must actually park instances somewhere on the suite
   (a silently disengaged prune would pass the identity check
   vacuously).  Returns whether both gates hold plus a JSON fragment
   for BENCH_fixpoint.json. *)
let prune_bench () =
  section "PRUNE: qualifier-space pruning (on vs off)";
  Fmt.pr
    "Before the weakening loop, a per-κ analysis parks candidate@.\
     instances that cannot matter: orientation duplicates, instances@.\
     unsatisfiable under the κ's WF environment, and instances implied@.\
     by their surviving siblings (checked over an incremental SMT@.\
     assertion context).  After the loop, an optimistic-restart@.\
     reinstatement restores exactly the instances the unpruned greatest@.\
     fixpoint would keep, so verdicts, errors and inferred types are@.\
     byte-identical — compared below.  Pruned solve times include the@.\
     prune and reinstatement passes.@.@.";
  let run_arm prune =
    Liquid_smt.Solver.clear_cache ();
    Liquid_smt.Solver.reset_stats ();
    let t0 = Unix.gettimeofday () in
    let rows =
      List.map
        (fun b -> Liquid_suite.Runner.verify ~prune b)
        Liquid_suite.Programs.all
    in
    let dt = Unix.gettimeofday () -. t0 in
    let sum sel =
      List.fold_left
        (fun acc (r : Liquid_suite.Runner.row) ->
          acc
          + sel r.Liquid_suite.Runner.report.Liquid_driver.Pipeline.stats)
        0 rows
    in
    let solve_time =
      List.fold_left
        (fun acc (r : Liquid_suite.Runner.row) ->
          List.fold_left
            (fun acc (phase, t) -> if phase = "solve" then acc +. t else acc)
            acc
            r.Liquid_suite.Runner.report.Liquid_driver.Pipeline.stats
              .Liquid_driver.Pipeline.phases)
        0.0 rows
    in
    ( rows,
      sum (fun s -> s.Liquid_driver.Pipeline.n_quals_pruned),
      sum (fun s -> s.Liquid_driver.Pipeline.n_reinstated),
      solve_time,
      dt )
  in
  ignore (run_arm true);
  (* warm-up *)
  let f1 = run_arm false in
  let p1 = run_arm true in
  let p2 = run_arm true in
  let f2 = run_arm false in
  let mean sel a b = (sel a +. sel b) /. 2.0 in
  let rows_f, _, _, _, _ = f1 in
  let rows_p, pruned, reinstated, _, _ = p1 in
  let solve_f = mean (fun (_, _, _, s, _) -> s) f1 f2 in
  let solve_p = mean (fun (_, _, _, s, _) -> s) p1 p2 in
  let t_f = mean (fun (_, _, _, _, t) -> t) f1 f2 in
  let t_p = mean (fun (_, _, _, _, t) -> t) p1 p2 in
  let agree = fingerprint rows_f = fingerprint rows_p in
  let cut =
    if solve_f <= 0.0 then 0.0
    else 100.0 *. (solve_f -. solve_p) /. solve_f
  in
  Fmt.pr "%-12s %10s %10s %10s %12s@." "prune" "time(s)*" "solve(s)*"
    "pruned" "reinstated";
  Fmt.pr "(* mean of 2 runs in drift-cancelling ABBA order, after warm-up)@.";
  Fmt.pr "%-12s %10.2f %10.2f %10s %12s@." "off" t_f solve_f "-" "-";
  Fmt.pr "%-12s %10.2f %10.2f %10d %12d@." "on" t_p solve_p pruned reinstated;
  Fmt.pr
    "solve-time cut: %.1f%%   instances parked: %d   identical \
     verdicts+types: %b@."
    cut pruned agree;
  if not agree then
    List.iter2
      (fun a b ->
        if a <> b then
          let name, _, _, _ = a in
          Fmt.pr "  MISMATCH: %s@." name)
      (fingerprint rows_f) (fingerprint rows_p);
  if pruned = 0 then Fmt.pr "  GATE: prune parked nothing on the T1 suite@.";
  let module J = Liquid_analysis.Json in
  ( agree && pruned > 0,
    J.Obj
      [
        ("prune_agree", J.Bool agree);
        ("pruned", J.Int pruned);
        ("reinstated", J.Int reinstated);
        ("solve_off_s", J.Float solve_f);
        ("solve_on_s", J.Float solve_p);
        ("cut_pct", J.Float cut);
        ("gate_ok", J.Bool (agree && pruned > 0));
      ] )

(* ------------------------------------------------------------------ *)
(* PARTITION: κ-dependency sharding and the parallel scheduler          *)
(* ------------------------------------------------------------------ *)

(* Runs the suite at jobs=1 and jobs=4 in drift-cancelling ABBA order,
   compares verdict fingerprints, and reports per-benchmark plan shape
   (partitions, critical path) with per-arm times.  Returns whether the
   two arms agree plus a JSON fragment for BENCH_fixpoint.json. *)
let partition_bench () =
  section "PARTITION: constraint sharding (jobs=1 vs jobs=4)";
  Fmt.pr
    "The κ-dependency graph of each benchmark is condensed into@.\
     topologically ordered solve units; with --jobs N, ready units run@.\
     in concurrent worker processes.  The liquid fixpoint is unique, so@.\
     verdicts, errors and inferred types must be identical at any job@.\
     count (compared byte-for-byte below).@.@.";
  let run_jobs jobs =
    Liquid_smt.Solver.clear_cache ();
    Liquid_smt.Solver.reset_stats ();
    let t0 = Unix.gettimeofday () in
    let rows =
      List.map
        (fun b -> Liquid_suite.Runner.verify ~jobs b)
        Liquid_suite.Programs.all
    in
    (rows, Unix.gettimeofday () -. t0)
  in
  ignore (run_jobs 1);
  (* warm-up *)
  let s1a = run_jobs 1 in
  let s4a = run_jobs 4 in
  let s4b = run_jobs 4 in
  let s1b = run_jobs 1 in
  let rows1, rows4 = (fst s1a, fst s4a) in
  let t1 = (snd s1a +. snd s1b) /. 2.0 in
  let t4 = (snd s4a +. snd s4b) /. 2.0 in
  let agree = fingerprint rows1 = fingerprint rows4 in
  let time_of rows =
    List.map (fun (r : Liquid_suite.Runner.row) -> r.Liquid_suite.Runner.time) rows
  in
  let times1 =
    List.map2 (fun a b -> (a +. b) /. 2.0) (time_of rows1) (time_of (fst s1b))
  in
  let times4 =
    List.map2 (fun a b -> (a +. b) /. 2.0) (time_of rows4) (time_of (fst s4b))
  in
  Fmt.pr "%-10s %6s %6s %6s %10s %10s@." "Program" "parts" "crit" "degr"
    "jobs=1(s)*" "jobs=4(s)*";
  Fmt.pr "(* mean of 2 runs in drift-cancelling ABBA order, after warm-up)@.";
  Fmt.pr "%s@." (String.make 56 '-');
  let entries =
    List.map2
      (fun ((r1 : Liquid_suite.Runner.row), ta)
           ((r4 : Liquid_suite.Runner.row), tb) ->
        let s1 = r1.Liquid_suite.Runner.report.Liquid_driver.Pipeline.stats in
        let s4 = r4.Liquid_suite.Runner.report.Liquid_driver.Pipeline.stats in
        let degraded =
          List.exists
            (fun (p : Liquid_driver.Pipeline.part_stat) ->
              p.Liquid_driver.Pipeline.pt_degraded)
            s4.Liquid_driver.Pipeline.partitions
        in
        let name = r1.Liquid_suite.Runner.bench.Liquid_suite.Programs.name in
        Fmt.pr "%-10s %6d %6d %6s %10.2f %10.2f@." name
          s1.Liquid_driver.Pipeline.n_partitions
          s1.Liquid_driver.Pipeline.critical_path
          (if degraded then "YES" else "-")
          ta tb;
        let module J = Liquid_analysis.Json in
        J.Obj
          [
            ("name", J.String name);
            ("partitions", J.Int s1.Liquid_driver.Pipeline.n_partitions);
            ("critical_path", J.Int s1.Liquid_driver.Pipeline.critical_path);
            ("jobs1_s", J.Float ta);
            ("jobs4_s", J.Float tb);
            ("degraded", J.Bool degraded);
          ])
      (List.combine rows1 times1)
      (List.combine rows4 times4)
  in
  Fmt.pr "%s@." (String.make 56 '-');
  Fmt.pr "%-10s %6s %6s %6s %10.2f %10.2f@." "Total" "" "" "" t1 t4;
  Fmt.pr "@.identical verdicts+errors+types at jobs=1 and jobs=4: %b@." agree;
  if not agree then
    List.iter2
      (fun a b ->
        if a <> b then
          let name, _, _, _ = a in
          Fmt.pr "  MISMATCH: %s@." name)
      (fingerprint rows1) (fingerprint rows4);
  let module J = Liquid_analysis.Json in
  ( agree,
    J.Obj
      [
        ("jobs_agree", J.Bool agree);
        ("jobs1_s", J.Float t1);
        ("jobs4_s", J.Float t4);
        ("benchmarks", J.List entries);
      ] )

(* ------------------------------------------------------------------ *)
(* SERVER: the verification daemon, cold vs warm                        *)
(* ------------------------------------------------------------------ *)

(* Runs the whole T1 suite through a daemon twice — a cold pass into an
   empty persistent cache, then (after a daemon restart, so the
   in-memory table is gone) a warm pass served from disk — and compares
   both against direct in-process verification byte-for-byte.  Returns
   whether all three agree plus a JSON fragment for
   BENCH_fixpoint.json. *)
let server_bench () =
  section "SERVER: verification daemon (cold vs warm, persistent cache)";
  Fmt.pr
    "A resident daemon (dsolve --serve) keeps hash-cons tables and@.\
     solver caches warm and persists verdicts in an on-disk store@.\
     keyed by (source, qualifiers, options, build).  The warm pass@.\
     re-verifies the unchanged suite after a daemon restart: every@.\
     program must be served from the persistent cache, byte-identical@.\
     to direct in-process verification.@.@.";
  let module Server = Liquid_server.Server in
  let module Client = Liquid_server.Client in
  let module Protocol = Liquid_server.Protocol in
  let base =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dsolve-bench-server-%d" (Unix.getpid ()))
  in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  rm_rf base;
  Unix.mkdir base 0o755;
  let sock = Filename.concat base "d.sock" in
  let cache = Filename.concat base "cache" in
  let start_daemon () =
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
        (try
           Server.serve
             {
               (Server.default_config ~sock) with
               Server.cache_dir = Some cache;
               request_timeout = None;
               quiet = true;
             }
         with _ -> ());
        Unix._exit 0
    | pid -> pid
  in
  let stop_daemon pid =
    (try Client.with_connection sock Client.shutdown with _ -> ());
    ignore (Unix.waitpid [] pid)
  in
  let batch =
    List.map
      (fun (b : Liquid_suite.Programs.benchmark) ->
        Protocol.request ~qual_text:b.Liquid_suite.Programs.extra_qualifiers
          ~mine:false ~name:b.Liquid_suite.Programs.name
          b.Liquid_suite.Programs.source)
      Liquid_suite.Programs.all
  in
  (* Shape replies like [fingerprint] rows so passes compare directly. *)
  let of_replies replies =
    List.map2
      (fun (b : Liquid_suite.Programs.benchmark) reply ->
        match reply with
        | Protocol.Verified (rep : Liquid_driver.Pipeline.report) ->
            ( b.Liquid_suite.Programs.name,
              rep.Liquid_driver.Pipeline.safe,
              List.map
                (fun (e : Liquid_driver.Pipeline.error) ->
                  Fmt.str "%a: %s: %s" Liquid_common.Loc.pp
                    e.Liquid_driver.Pipeline.err_loc
                    e.Liquid_driver.Pipeline.err_reason
                    e.Liquid_driver.Pipeline.err_goal)
                rep.Liquid_driver.Pipeline.errors,
              render_types rep )
        | Protocol.Rejected e ->
            ( b.Liquid_suite.Programs.name,
              false,
              [ Fmt.str "[%s] %s" e.Protocol.ve_code e.Protocol.ve_message ],
              "" ))
      Liquid_suite.Programs.all replies
  in
  let run_pass () =
    let pid = start_daemon () in
    Fun.protect
      ~finally:(fun () -> stop_daemon pid)
      (fun () ->
        let c = Client.connect_retry sock in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            let t0 = Unix.gettimeofday () in
            let replies = Client.verify c batch in
            let dt = Unix.gettimeofday () -. t0 in
            (of_replies replies, dt, Client.stats c)))
  in
  let reference =
    fingerprint
      (List.map
         (fun b -> Liquid_suite.Runner.verify ~jobs:1 b)
         Liquid_suite.Programs.all)
  in
  let cold, t_cold, s_cold = run_pass () in
  let warm, t_warm, s_warm = run_pass () in
  rm_rf base;
  let n = List.length batch in
  let hit_rate =
    if s_warm.Protocol.sv_programs = 0 then 0.0
    else
      float_of_int s_warm.Protocol.sv_disk_hits
      /. float_of_int s_warm.Protocol.sv_programs
  in
  let cold_agrees = cold = reference in
  let warm_agrees = warm = reference in
  let agree = cold_agrees && warm_agrees && hit_rate > 0.0 in
  Fmt.pr "%-6s %10s %8s %10s %10s %8s@." "pass" "time(s)" "cold" "disk-hits"
    "hit-rate" "agrees";
  Fmt.pr "%-6s %10.2f %8d %10d %10.2f %8b@." "cold" t_cold
    s_cold.Protocol.sv_cold s_cold.Protocol.sv_disk_hits
    (if s_cold.Protocol.sv_programs = 0 then 0.0
     else
       float_of_int s_cold.Protocol.sv_disk_hits
       /. float_of_int s_cold.Protocol.sv_programs)
    cold_agrees;
  Fmt.pr "%-6s %10.2f %8d %10d %10.2f %8b@." "warm" t_warm
    s_warm.Protocol.sv_cold s_warm.Protocol.sv_disk_hits hit_rate warm_agrees;
  Fmt.pr
    "@.cold/warm speedup: %.1fx   all verdicts identical to direct runs: %b@."
    (if t_warm > 0.0 then t_cold /. t_warm else 0.0)
    (cold_agrees && warm_agrees);
  if not agree then
    List.iter2
      (fun a b ->
        if a <> b then
          let name, _, _, _ = a in
          Fmt.pr "  MISMATCH: %s@." name)
      reference warm;
  let module J = Liquid_analysis.Json in
  ( agree,
    J.Obj
      [
        ("programs", J.Int n);
        ("cold_s", J.Float t_cold);
        ("warm_s", J.Float t_warm);
        ("warm_disk_hits", J.Int s_warm.Protocol.sv_disk_hits);
        ("warm_hit_rate", J.Float hit_rate);
        ("cold_agrees", J.Bool cold_agrees);
        ("warm_agrees", J.Bool warm_agrees);
      ] )

(* ------------------------------------------------------------------ *)
(* LOAD: the multi-tenant daemon under concurrent traffic               *)
(* ------------------------------------------------------------------ *)

(* What one load-generator client records per request: the rendered
   verdict (to compare byte-for-byte against sequential references) or
   the structured error code, plus the observed latency. *)
type load_result = L_ok of (bool * string list * string) | L_err of string

(* Replays a mixed schedule — duplicate, hot, per-client cold, failing —
   through [n] concurrent forked clients, twice: once clean, once with a
   stalled half-frame connection parked on the daemon.  Gates: every
   verified reply byte-identical to direct sequential verification,
   exactly one cold solve per distinct request key (concurrent
   duplicates coalesce, never stampede), at least one request actually
   coalesced, nothing shed, only the intended E_SOURCE failures, all
   clients and both daemons alive throughout, and the stalled client
   must not blow up healthy-tail latency.  Returns whether all gates
   hold plus a JSON fragment for BENCH_fixpoint.json. *)
let load_bench () =
  section "LOAD: multi-tenant daemon (concurrent clients, mixed traffic)";
  Fmt.pr
    "A traffic replay against the reactor daemon: 8 forked clients@.\
     each send duplicate, hot, cold, and failing programs at once.@.\
     Identical concurrent requests must coalesce onto one solve, every@.\
     reply must be byte-identical to a sequential run, nothing may be@.\
     shed at this load, and a stalled half-frame client must not@.\
     degrade the healthy tail.@.@.";
  let module Server = Liquid_server.Server in
  let module Client = Liquid_server.Client in
  let module Protocol = Liquid_server.Protocol in
  let module Pipeline = Liquid_driver.Pipeline in
  let n_clients = 8 in
  let src =
    "let rec sum k =\n\
    \  if k < 0 then 0\n\
    \  else begin\n\
    \    let s = sum (k - 1) in\n\
    \    s + k\n\
    \  end"
  in
  let bad_src = "let x = (in in" in
  let has_prefix p name =
    String.length name >= String.length p && String.sub name 0 (String.length p) = p
  in
  let source_of name = if has_prefix "bad" name then bad_src else src in
  (* dup, hot, and the per-client colds are distinct request keys (the
     name is part of the key), so a clean daemon owes exactly one cold
     solve to each. *)
  let cold_names = List.init n_clients (fun i -> Printf.sprintf "cold%d.ml" i) in
  let distinct_cold_keys = 2 + n_clients in
  let schedule i =
    [
      "dup.ml";
      "hot.ml";
      Printf.sprintf "cold%d.ml" i;
      "hot.ml";
      Printf.sprintf "bad%d.ml" i;
      "dup.ml";
    ]
  in
  let n_programs = n_clients * List.length (schedule 0) in
  let expected_failures = n_clients in
  let render (r : Pipeline.report) =
    ( r.Pipeline.safe,
      List.map
        (fun (e : Pipeline.error) ->
          Fmt.str "%a: %s: %s" Liquid_common.Loc.pp e.Pipeline.err_loc
            e.Pipeline.err_reason e.Pipeline.err_goal)
        r.Pipeline.errors,
      render_types r )
  in
  (* Sequential references, one per verifiable name — the byte-identity
     bar every daemon reply is held to. *)
  let reference =
    List.map
      (fun name -> (name, render (Pipeline.verify_string ~name src)))
      ("dup.ml" :: "hot.ml" :: cold_names)
  in
  let percentile q xs =
    let a = Array.of_list xs in
    Array.sort compare a;
    if Array.length a = 0 then 0.0
    else a.(min (Array.length a - 1) (int_of_float (q *. float_of_int (Array.length a))))
  in
  (* Handshake, then send a frame header promising bytes that never
     come: a tenant the pre-reactor daemon would have hung on. *)
  let open_stalled sock =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX sock);
    let oc = Unix.out_channel_of_descr fd in
    let ic = Unix.in_channel_of_descr fd in
    Protocol.send_request oc
      (Protocol.Hello { version = Protocol.version; stamp = Protocol.build_stamp });
    (match Protocol.recv_reply ic with
    | Protocol.Hello_ok _ -> ()
    | _ -> failwith "stalled client refused");
    let partial = Bytes.of_string "\000\000\016\000half" in
    ignore (Unix.write fd partial 0 (Bytes.length partial) : int);
    fd
  in
  (* One pass: fresh daemon and cache, [n_clients] concurrent forked
     clients replaying the schedule, per-request latencies and rendered
     replies collected through per-client spool files. *)
  let run_pass ~stall =
    let base =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "dsolve-bench-load-%d-%b" (Unix.getpid ()) stall)
    in
    let rec rm_rf path =
      if Sys.file_exists path then
        if Sys.is_directory path then begin
          Array.iter
            (fun f -> rm_rf (Filename.concat path f))
            (Sys.readdir path);
          Unix.rmdir path
        end
        else Sys.remove path
    in
    rm_rf base;
    Unix.mkdir base 0o755;
    let sock = Filename.concat base "d.sock" in
    let cache = Filename.concat base "cache" in
    (* The dup solve is held in flight long enough for every client's
       first request to land inside its window. *)
    Server.delay_for :=
      (fun name -> if name = "dup.ml" then Some 0.8 else None);
    flush stdout;
    flush stderr;
    let daemon =
      match Unix.fork () with
      | 0 ->
          (try
             Server.serve
               {
                 (Server.default_config ~sock) with
                 Server.cache_dir = Some cache;
                 jobs = 4;
                 request_timeout = None;
                 quiet = true;
               }
           with _ -> ());
          Unix._exit 0
      | pid -> pid
    in
    Fun.protect
      ~finally:(fun () ->
        Server.delay_for := (fun _ -> None);
        (try Client.with_connection sock Client.shutdown with _ -> ());
        ignore (Unix.waitpid [] daemon);
        try rm_rf base with _ -> ())
      (fun () ->
        (* Wait until the daemon accepts before starting the clock. *)
        Client.close (Client.connect_retry sock);
        let stalled_fd = if stall then Some (open_stalled sock) else None in
        flush stdout;
        flush stderr;
        let t0 = Unix.gettimeofday () in
        let kids =
          List.init n_clients (fun i ->
              match Unix.fork () with
              | 0 ->
                  let status =
                    try
                      let c = Client.connect_retry sock in
                      let out =
                        List.map
                          (fun name ->
                            let t = Unix.gettimeofday () in
                            let reply =
                              List.hd
                                (Client.verify c
                                   [ Protocol.request ~name (source_of name) ])
                            in
                            let dt = Unix.gettimeofday () -. t in
                            let res =
                              match reply with
                              | Protocol.Verified r -> L_ok (render r)
                              | Protocol.Rejected e -> L_err e.Protocol.ve_code
                            in
                            (name, res, dt))
                          (schedule i)
                      in
                      Client.close c;
                      let oc =
                        open_out_bin
                          (Filename.concat base (Printf.sprintf "out%d" i))
                      in
                      Marshal.to_channel oc
                        (out : (string * load_result * float) list)
                        [];
                      close_out oc;
                      0
                    with _ -> 2
                  in
                  Unix._exit status
              | pid -> pid)
        in
        let failed_clients =
          List.fold_left
            (fun acc pid ->
              match Unix.waitpid [] pid with
              | _, Unix.WEXITED 0 -> acc
              | _ -> acc + 1)
            0 kids
        in
        let wall = Unix.gettimeofday () -. t0 in
        (match stalled_fd with
        | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
        | None -> ());
        (* The daemon must have survived the whole pass. *)
        let stats =
          try
            let c = Client.connect_retry ~attempts:10 sock in
            let s = Client.stats c in
            Client.close c;
            Some s
          with _ -> None
        in
        let rows =
          List.concat_map
            (fun i ->
              try
                let ic =
                  open_in_bin (Filename.concat base (Printf.sprintf "out%d" i))
                in
                let out =
                  (Marshal.from_channel ic : (string * load_result * float) list)
                in
                close_in ic;
                out
              with _ -> [])
            (List.init n_clients Fun.id)
        in
        (rows, wall, stats, failed_clients))
  in
  let identical rows =
    List.length rows = n_programs
    && List.for_all
         (fun (name, res, _) ->
           match res with
           | L_ok r -> List.assoc_opt name reference = Some r
           | L_err code -> has_prefix "bad" name && code = "E_SOURCE")
         rows
  in
  let stats_gates (s : Protocol.server_stats option) =
    match s with
    | None -> false
    | Some s ->
        s.Protocol.sv_cold = distinct_cold_keys
        && s.Protocol.sv_shed = 0
        && s.Protocol.sv_failures = expected_failures
        && s.Protocol.sv_programs
           = s.Protocol.sv_mem_hits + s.Protocol.sv_disk_hits
             + s.Protocol.sv_cold + s.Protocol.sv_coalesced
             + s.Protocol.sv_failures
  in
  let rows_c, wall_c, stats_c, failed_c = run_pass ~stall:false in
  let rows_s, wall_s, stats_s, failed_s = run_pass ~stall:true in
  let lat_c = List.map (fun (_, _, d) -> d) rows_c in
  let lat_s = List.map (fun (_, _, d) -> d) rows_s in
  let p50_c = percentile 0.50 lat_c and p99_c = percentile 0.99 lat_c in
  let p50_s = percentile 0.50 lat_s and p99_s = percentile 0.99 lat_s in
  let coalesced =
    match stats_c with Some s -> s.Protocol.sv_coalesced | None -> 0
  in
  let throughput = if wall_c > 0.0 then float_of_int n_programs /. wall_c else 0.0 in
  (* The stalled tenant may cost scheduling noise, not service: the
     healthy tail is allowed at most 5x the clean tail plus slack. *)
  let stall_isolated = p99_s <= (5.0 *. Float.max p99_c 0.05) +. 2.0 in
  let ident_c = identical rows_c and ident_s = identical rows_s in
  let ok =
    ident_c && ident_s && stats_gates stats_c && stats_gates stats_s
    && coalesced >= 1 && failed_c = 0 && failed_s = 0 && stall_isolated
  in
  Fmt.pr "%-8s %8s %10s %8s %8s %6s %10s %6s %6s@." "pass" "wall(s)"
    "thru(p/s)" "p50(s)" "p99(s)" "cold" "coalesced" "shed" "ident";
  (let line_of label wall p50 p99 stats ident =
     let c, co, sh =
       match stats with
       | Some (s : Protocol.server_stats) ->
           (s.Protocol.sv_cold, s.Protocol.sv_coalesced, s.Protocol.sv_shed)
       | None -> (-1, -1, -1)
     in
     Fmt.pr "%-8s %8.2f %10.1f %8.3f %8.3f %6d %10d %6d %6b@." label wall
       (float_of_int n_programs /. Float.max wall 1e-9)
       p50 p99 c co sh ident
   in
   line_of "clean" wall_c p50_c p99_c stats_c ident_c;
   line_of "stalled" wall_s p50_s p99_s stats_s ident_s);
  Fmt.pr
    "@.%d clients x %d requests: one cold solve per distinct key (%d), \
     duplicates coalesced (%d), stall-isolated p99 %b@."
    n_clients
    (List.length (schedule 0))
    distinct_cold_keys coalesced stall_isolated;
  let module J = Liquid_analysis.Json in
  ( ok,
    J.Obj
      [
        ("clients", J.Int n_clients);
        ("programs", J.Int n_programs);
        ("wall_s", J.Float wall_c);
        ("wall_stalled_s", J.Float wall_s);
        ("throughput_rps", J.Float throughput);
        ("p50_s", J.Float p50_c);
        ("p99_s", J.Float p99_c);
        ("p50_stalled_s", J.Float p50_s);
        ("p99_stalled_s", J.Float p99_s);
        ("cold", J.Int (match stats_c with Some s -> s.Protocol.sv_cold | None -> -1));
        ("coalesced", J.Int coalesced);
        ("identical", J.Bool (ident_c && ident_s));
        ("stall_isolated", J.Bool stall_isolated);
      ] )

(* ------------------------------------------------------------------ *)
(* INCR: partition-level incremental re-verification                    *)
(* ------------------------------------------------------------------ *)

(* Verifies simplex cold (fresh cache), then re-verifies a one-function
   edit of it against a cache seeded with the base program, in
   drift-cancelling ABBA order (cold, warm, warm, cold).  The warm runs
   must reuse at least one cached partition, re-solve at least one (the
   edited cone), finish in at most half the cold time, and produce a
   report byte-identical to the cold solve.  Returns whether all gates
   hold plus a JSON fragment for BENCH_fixpoint.json. *)
let incr_bench () =
  section "INCR: incremental re-verification (cold vs one-edit warm)";
  Fmt.pr
    "Each solve unit of the constraint partition plan is cached under a@.\
     content hash of its constraints, its instantiated qualifier set and@.\
     the final solutions of its dependencies.  Re-verifying after an@.\
     edit reuses every partition whose key is unchanged and re-solves@.\
     only the affected downstream cone.  Measured on simplex with one@.\
     appended function; warm runs start from a cache seeded with the@.\
     base program.@.@.";
  let module J = Liquid_analysis.Json in
  let b = Liquid_suite.Programs.find "simplex" in
  let quals = Liquid_suite.Runner.qualifiers_of b in
  let edited =
    b.Liquid_suite.Programs.source
    ^ "\nlet incr_probe q = if q > 0 then q + 1 else 0\n\
       let incr_probe_use = incr_probe 3\n"
  in
  let base =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dsolve-bench-incr-%d" (Unix.getpid ()))
  in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  rm_rf base;
  Unix.mkdir base 0o755;
  let fresh_dir =
    let n = ref 0 in
    fun () ->
      incr n;
      let d = Filename.concat base (Printf.sprintf "c%d" !n) in
      Unix.mkdir d 0o755;
      d
  in
  let verify ?cache_dir src =
    let options =
      { Liquid_driver.Pipeline.default with
        Liquid_driver.Pipeline.quals; cache_dir }
    in
    let t0 = Unix.gettimeofday () in
    let r =
      Liquid_driver.Pipeline.verify_string ~options
        ~name:b.Liquid_suite.Programs.name src
    in
    (r, Unix.gettimeofday () -. t0)
  in
  let report_fp (r : Liquid_driver.Pipeline.report) =
    ( r.Liquid_driver.Pipeline.safe,
      List.map
        (fun (e : Liquid_driver.Pipeline.error) ->
          Fmt.str "%a: %s: %s" Liquid_common.Loc.pp
            e.Liquid_driver.Pipeline.err_loc e.Liquid_driver.Pipeline.err_reason
            e.Liquid_driver.Pipeline.err_goal)
        r.Liquid_driver.Pipeline.errors,
      render_types r )
  in
  (* Warm-up (unmeasured), then seed two caches with the base program so
     each measured warm arm starts from its own untouched seed. *)
  ignore (verify b.Liquid_suite.Programs.source);
  let seed1 = fresh_dir () and seed2 = fresh_dir () in
  ignore (verify ~cache_dir:seed1 b.Liquid_suite.Programs.source);
  ignore (verify ~cache_dir:seed2 b.Liquid_suite.Programs.source);
  let c1 = verify ~cache_dir:(fresh_dir ()) edited in
  let w1 = verify ~cache_dir:seed1 edited in
  let w2 = verify ~cache_dir:seed2 edited in
  let c2 = verify ~cache_dir:(fresh_dir ()) edited in
  rm_rf base;
  let t_cold = (snd c1 +. snd c2) /. 2.0 in
  let t_warm = (snd w1 +. snd w2) /. 2.0 in
  let ratio = if t_cold > 0.0 then t_warm /. t_cold else 1.0 in
  let stats (r, _) = (r : Liquid_driver.Pipeline.report).Liquid_driver.Pipeline.stats in
  let hits = (stats w1).Liquid_driver.Pipeline.n_punit_hits in
  let misses = (stats w1).Liquid_driver.Pipeline.n_punit_misses in
  let parts = (stats w1).Liquid_driver.Pipeline.n_partitions in
  let identical =
    report_fp (fst c1) = report_fp (fst w1)
    && report_fp (fst c1) = report_fp (fst w2)
    && report_fp (fst c1) = report_fp (fst c2)
  in
  Fmt.pr "%-6s %10s %10s %10s@." "pass" "time(s)*" "punit-hit" "punit-miss";
  Fmt.pr "(* mean of 2 runs in drift-cancelling ABBA order, after warm-up)@.";
  Fmt.pr "%-6s %10.3f %10d %10d@." "cold" t_cold
    (stats c1).Liquid_driver.Pipeline.n_punit_hits
    (stats c1).Liquid_driver.Pipeline.n_punit_misses;
  Fmt.pr "%-6s %10.3f %10d %10d@." "warm" t_warm hits misses;
  let gate_ok = ratio <= 0.5 && hits >= 1 && misses >= 1 && identical in
  Fmt.pr
    "@.partitions: %d   warm/cold ratio: %.2f (gate: <= 0.50)   reused: %d   \
     re-solved: %d   reports identical: %b@."
    parts ratio hits misses identical;
  if not identical then Fmt.pr "  MISMATCH: warm report diverged from cold@.";
  ( gate_ok,
    J.Obj
      [
        ("program", J.String b.Liquid_suite.Programs.name);
        ("partitions", J.Int parts);
        ("cold_s", J.Float t_cold);
        ("warm_s", J.Float t_warm);
        ("ratio", J.Float ratio);
        ("warm_punit_hits", J.Int hits);
        ("warm_punit_misses", J.Int misses);
        ("identical", J.Bool identical);
        ("gate_ok", J.Bool gate_ok);
      ] )

(* ------------------------------------------------------------------ *)
(* EXPLAIN: explanation overhead and determinism on failing runs        *)
(* ------------------------------------------------------------------ *)

(* The ablation subset re-verified without its custom qualifiers fails;
   that is exactly the population [--explain] serves.  The gate holds
   the aggregate explain-phase time under 15% of the rest of the
   pipeline on the same runs, and re-runs each explanation to pin down
   byte-level determinism of the JSON output. *)
let explain_bench () =
  section "EXPLAIN: explanation overhead on failing runs";
  Fmt.pr
    "Each ablated benchmark (custom qualifier withheld) fails its@.\
     obligations; --explain then derives minimal cores, blame paths,@.\
     witnesses and repair hints for them.  Overhead compares the@.\
     explain phase against the rest of the same run (gate: aggregate@.\
     under 15%%); determinism re-renders the JSON explanations on a@.\
     second run and demands byte equality.@.@.";
  let module J = Liquid_analysis.Json in
  let subset = [ "tower"; "simplex"; "gauss"; "bcopy" ] in
  let run name explain =
    let b = Liquid_suite.Programs.find name in
    let options =
      {
        Liquid_driver.Pipeline.default with
        Liquid_driver.Pipeline.quals = Liquid_infer.Qualifier.defaults;
        mine = false;
        explain;
      }
    in
    Liquid_driver.Pipeline.verify_string ~options ~name:(name ^ ".ml")
      b.Liquid_suite.Programs.source
  in
  let explanations_json (r : Liquid_driver.Pipeline.report) =
    J.to_string
      (J.List
         (List.map Liquid_driver.Pipeline.json_of_explanation
            r.Liquid_driver.Pipeline.explanations))
  in
  Fmt.pr "%-10s %8s %9s %9s %9s %8s %6s %6s@." "Program" "fails" "rest(s)"
    "expl(s)" "overhead" "queries" "hints" "det";
  Fmt.pr "%s@." (String.make 72 '-');
  let rows =
    List.map
      (fun name ->
        let r = run name true in
        let r2 = run name true in
        let stats = r.Liquid_driver.Pipeline.stats in
        let explain_t =
          try List.assoc "explain" stats.Liquid_driver.Pipeline.phases
          with Not_found -> 0.0
        in
        let rest_t = stats.Liquid_driver.Pipeline.elapsed -. explain_t in
        let overhead = if rest_t > 0.0 then explain_t /. rest_t else 0.0 in
        let deterministic = explanations_json r = explanations_json r2 in
        let hints =
          List.length
            (List.filter
               (fun (ex : Liquid_explain.Explain.explanation) ->
                 ex.Liquid_explain.Explain.ex_repair <> None)
               r.Liquid_driver.Pipeline.explanations)
        in
        let failing = not r.Liquid_driver.Pipeline.safe in
        let explained =
          r.Liquid_driver.Pipeline.explanations <> []
          && List.for_all
               (fun (ex : Liquid_explain.Explain.explanation) ->
                 ex.Liquid_explain.Explain.ex_unexplained = None)
               r.Liquid_driver.Pipeline.explanations
        in
        Fmt.pr "%-10s %8b %9.2f %9.2f %8.1f%% %8d %6d %6b@." name failing
          rest_t explain_t (100.0 *. overhead)
          stats.Liquid_driver.Pipeline.n_explain_smt_queries hints
          deterministic;
        ( (failing && explained, deterministic, explain_t, rest_t),
          J.Obj
            [
              ("name", J.String name);
              ("rest_s", J.Float rest_t);
              ("explain_s", J.Float explain_t);
              ("overhead", J.Float overhead);
              ( "explain_queries",
                J.Int stats.Liquid_driver.Pipeline.n_explain_smt_queries );
              ( "explanations",
                J.Int (List.length r.Liquid_driver.Pipeline.explanations) );
              ("repair_hints", J.Int hints);
              ("deterministic", J.Bool deterministic);
            ] ))
      subset
  in
  let explain_total =
    List.fold_left (fun a ((_, _, e, _), _) -> a +. e) 0.0 rows
  in
  let rest_total = List.fold_left (fun a ((_, _, _, r), _) -> a +. r) 0.0 rows in
  let aggregate = if rest_total > 0.0 then explain_total /. rest_total else 0.0 in
  let all_explained = List.for_all (fun ((ok, _, _, _), _) -> ok) rows in
  let all_deterministic = List.for_all (fun ((_, d, _, _), _) -> d) rows in
  let gate_ok = aggregate < 0.15 && all_explained && all_deterministic in
  Fmt.pr
    "@.aggregate overhead: %.1f%% (gate: < 15%%)   all failures explained: \
     %b   JSON byte-deterministic: %b@."
    (100.0 *. aggregate) all_explained all_deterministic;
  ( gate_ok,
    J.Obj
      [
        ("overhead", J.Float aggregate);
        ("gate", J.Float 0.15);
        ("gate_ok", J.Bool gate_ok);
        ("deterministic", J.Bool all_deterministic);
        ("benchmarks", J.List (List.map snd rows));
      ] )

(* ------------------------------------------------------------------ *)
(* ADT: user datatypes + measures                                       *)
(* ------------------------------------------------------------------ *)

(* The declaration-to-refinement corpus: binary tree size/height, a
   size-indexed stack, and a red-black color invariant, plus one seeded
   UNSAFE variant (the assertion overclaims by one).  Everything is
   named and called so no binding is dead code. *)
let adt_corpus : (string * string * bool) list =
  [
    ( "tree",
      "type tree = Leaf | Node of tree * int * tree\n\
       measure size : tree =\n\
      \  | Leaf -> 0\n\
      \  | Node (l, _, r) -> 1 + size l + size r\n\
       measure height : tree =\n\
      \  | Leaf -> 0\n\
      \  | Node (l, _, r) -> 1 + max (height l) (height r)\n\
       let rec size_of t =\n\
      \  match t with\n\
      \  | Leaf -> 0\n\
      \  | Node (l, x, r) -> 1 + size_of l + size_of r\n\
       let check_grow l x r = assert (size_of (Node (l, x, r)) > size_of l)\n\
       let main = check_grow (Node (Leaf, 1, Leaf)) 2 Leaf",
      true );
    ( "stack",
      "type stack = Empty | Push of int * stack\n\
       measure depth : stack =\n\
      \  | Empty -> 0\n\
      \  | Push (_, rest) -> 1 + depth rest\n\
       let rec depth_of s =\n\
      \  match s with\n\
      \  | Empty -> 0\n\
      \  | Push (x, rest) -> 1 + depth_of rest\n\
       let push_grows x s = assert (depth_of (Push (x, s)) > depth_of s)\n\
       let main = push_grows 1 (Push (2, Empty))",
      true );
    ( "rbtree",
      "type color = Red | Black\n\
       type rbt = Nil | T of color * rbt * int * rbt\n\
       measure isred : color = | Red -> 1 | Black -> 0\n\
       measure reds : rbt =\n\
      \  | Nil -> 0\n\
      \  | T (c, l, _, r) -> isred c + reds l + reds r\n\
       let rec count_reds t =\n\
      \  match t with\n\
      \  | Nil -> 0\n\
      \  | T (c, l, x, r) ->\n\
      \      (match c with Red -> 1 | Black -> 0) + count_reds l + \
       count_reds r\n\
       let red_root_adds l x r =\n\
      \  assert (count_reds (T (Red, l, x, r)) > count_reds l + count_reds \
       r)\n\
       let main = red_root_adds Nil 7 (T (Black, Nil, 8, Nil))",
      true );
    ( "tree-unsafe",
      "type tree = Leaf | Node of tree * int * tree\n\
       measure size : tree =\n\
      \  | Leaf -> 0\n\
      \  | Node (l, _, r) -> 1 + size l + size r\n\
       let rec size_of t =\n\
      \  match t with\n\
      \  | Leaf -> 0\n\
      \  | Node (l, x, r) -> 1 + size_of l + size_of r\n\
       let check_grow l x r = assert (size_of (Node (l, x, r)) > size_of l + \
       1)\n\
       let main = check_grow Leaf 5 Leaf",
      false );
  ]

(* Verifies the ADT corpus direct, at jobs=4, through a cold and a warm
   partition cache, and through the daemon; every arm must produce a
   byte-identical report, with the expected verdicts and a non-zero
   measure-axiom count (a zero count would mean the subsystem silently
   disengaged and the corpus passed for the wrong reason). *)
let adt_bench () =
  section "ADT: user datatypes + measures (byte-identity across engines)";
  Fmt.pr
    "Each corpus program declares datatypes and structurally recursive@.\
     measures; constructor and match sites emit measure axioms and the@.\
     generated measure qualifier patterns close the candidate space.@.\
     One verdict per program, five ways: direct, jobs=4, cold cache,@.\
     warm cache, daemon.@.@.";
  let module J = Liquid_analysis.Json in
  let module Server = Liquid_server.Server in
  let module Client = Liquid_server.Client in
  let module Protocol = Liquid_server.Protocol in
  let base =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dsolve-bench-adt-%d" (Unix.getpid ()))
  in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  rm_rf base;
  Unix.mkdir base 0o755;
  let report_fp (r : Liquid_driver.Pipeline.report) =
    ( r.Liquid_driver.Pipeline.safe,
      List.map
        (fun (e : Liquid_driver.Pipeline.error) ->
          Fmt.str "%a: %s: %s" Liquid_common.Loc.pp
            e.Liquid_driver.Pipeline.err_loc
            e.Liquid_driver.Pipeline.err_reason
            e.Liquid_driver.Pipeline.err_goal)
        r.Liquid_driver.Pipeline.errors,
      render_types r )
  in
  let verify ?(jobs = 1) ?cache_dir ~name src =
    Liquid_driver.Pipeline.verify_string
      ~options:
        {
          Liquid_driver.Pipeline.default with
          Liquid_driver.Pipeline.jobs;
          cache_dir;
        }
      ~name src
  in
  (* One daemon serves the whole corpus in a single batch. *)
  let sock = Filename.concat base "d.sock" in
  let daemon_pid =
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
        (try
           Server.serve
             {
               (Server.default_config ~sock) with
               Server.request_timeout = None;
               quiet = true;
             }
         with _ -> ());
        Unix._exit 0
    | pid -> pid
  in
  let daemon_replies =
    let c = Client.connect_retry sock in
    Fun.protect
      ~finally:(fun () -> Client.close c)
      (fun () ->
        Client.verify c
          (List.map
             (fun (name, src, _) -> Protocol.request ~name:(name ^ ".ml") src)
             adt_corpus))
  in
  (try Client.with_connection sock Client.shutdown with _ -> ());
  ignore (Unix.waitpid [] daemon_pid);
  Fmt.pr "%-12s %6s %9s %6s %7s %8s@." "Program" "Safe" "Verdict" "Arms"
    "Axioms" "Agree";
  Fmt.pr "%s@." (String.make 56 '-');
  let results =
    List.map2
      (fun (name, src, expect_safe) reply ->
        let file = name ^ ".ml" in
        let cache = Filename.concat base ("cache-" ^ name) in
        Unix.mkdir cache 0o755;
        let direct = verify ~name:file src in
        let sharded = verify ~jobs:4 ~name:file src in
        let cold = verify ~cache_dir:cache ~name:file src in
        let warm = verify ~cache_dir:cache ~name:file src in
        let daemon =
          match reply with
          | Protocol.Verified rep -> Some rep
          | Protocol.Rejected _ -> None
        in
        let fp = report_fp direct in
        let arms =
          [ report_fp sharded; report_fp cold; report_fp warm ]
          @ match daemon with Some r -> [ report_fp r ] | None -> []
        in
        let agree =
          daemon <> None && List.for_all (fun a -> a = fp) arms
        in
        let verdict_ok = direct.Liquid_driver.Pipeline.safe = expect_safe in
        let axioms =
          direct.Liquid_driver.Pipeline.stats
            .Liquid_driver.Pipeline.n_measure_axioms
        in
        Fmt.pr "%-12s %6s %9s %6d %7d %8s@." name
          (if direct.Liquid_driver.Pipeline.safe then "yes" else "NO")
          (if verdict_ok then "expected" else "WRONG")
          (1 + List.length arms)
          axioms
          (if agree then "yes" else "DIVERGED");
        let ok = agree && verdict_ok && axioms > 0 in
        ( ok,
          J.Obj
            [
              ("name", J.String name);
              ("safe", J.Bool direct.Liquid_driver.Pipeline.safe);
              ("expected_safe", J.Bool expect_safe);
              ( "measures",
                J.Int
                  direct.Liquid_driver.Pipeline.stats
                    .Liquid_driver.Pipeline.n_measures );
              ("measure_axioms", J.Int axioms);
              ("agree", J.Bool agree);
            ] ))
      adt_corpus daemon_replies
  in
  rm_rf base;
  let gate_ok = List.for_all fst results in
  Fmt.pr
    "@.verdicts as expected, byte-identical direct/jobs=4/cold/warm/daemon: \
     %b@."
    gate_ok;
  if not gate_ok then
    Fmt.pr "  GATE: an ADT arm diverged, misjudged, or emitted no axioms@.";
  ( gate_ok,
    J.Obj
      [
        ("gate_ok", J.Bool gate_ok);
        ("programs", J.List (List.map snd results));
      ] )

(* ------------------------------------------------------------------ *)
(* GRADUAL: residual casts (byte-identity + bounded overhead)           *)
(* ------------------------------------------------------------------ *)

(* Programs with obligations the fixpoint cannot discharge: a genuine
   off-by-one (no qualifier helps) and an assertion verified with the
   default qualifiers ablated (the missing instance is exactly what the
   repair hint would reinstate).  Under [--gradual] each must demote to
   a residual cast — no hard errors — and the residual report must be
   byte-identical however the fixpoint was scheduled or cached.
   (name, source, use_defaults, expected residual count) *)
let gradual_corpus =
  [
    ( "assertgap",
      "let rec sum k =\n\
      \  if k < 0 then 0\n\
      \  else begin\n\
      \    let s = sum (k - 1) in\n\
      \    s + k\n\
      \  end\n\n\
       let total = sum 5\n\
       let ok = assert (0 <= total)\n",
      false,
      1 );
    ( "overrun",
      "let a = Array.make 10 0\n\n\
       let rec fill i =\n\
      \  if i <= 10 then begin\n\
      \    a.(i) <- i;\n\
      \    fill (i + 1)\n\
      \  end\n\
      \  else 0\n\n\
       let start = fill 0\n",
      true,
      1 );
    ( "sharded",
      "let a = Array.make 10 0\n\
       let b = Array.make 20 0\n\n\
       let rec fill i =\n\
      \  if i <= 10 then begin\n\
      \    a.(i) <- i;\n\
      \    fill (i + 1)\n\
      \  end\n\
      \  else 0\n\n\
       let rec fillb j =\n\
      \  if j <= 20 then begin\n\
      \    b.(j) <- j;\n\
      \    fillb (j + 1)\n\
      \  end\n\
      \  else 0\n\n\
       let rec h n = if n < 1 then 1 else h (n - 1)\n\n\
       let s1 = fill 0\n\
       let s2 = fillb 0\n\
       let s3 = h 5\n",
      true,
      2 );
  ]

let gradual_bench () =
  section "GRADUAL: residual casts (byte-identity across engines)";
  Fmt.pr
    "Each corpus program carries obligations the fixpoint cannot@.\
     discharge.  Under --gradual they demote to residual casts instead@.\
     of errors; the gate requires no hard errors, a non-zero residual@.\
     count, the byte-identical residual report across direct, jobs=4,@.\
     cold cache, warm cache and daemon, and bounded overhead over the@.\
     plain (non-gradual) run.@.@.";
  let module J = Liquid_analysis.Json in
  let module Server = Liquid_server.Server in
  let module Client = Liquid_server.Client in
  let module Protocol = Liquid_server.Protocol in
  let module Gradual = Liquid_gradual.Gradual in
  let base =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dsolve-bench-gradual-%d" (Unix.getpid ()))
  in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  rm_rf base;
  Unix.mkdir base 0o755;
  (* The gradual fingerprint: verdict shape plus the rendered residual
     report — ids, spans, goals, witnesses, hints, order, everything. *)
  let report_fp (r : Liquid_driver.Pipeline.report) =
    ( r.Liquid_driver.Pipeline.safe,
      List.length r.Liquid_driver.Pipeline.errors,
      Fmt.str "%a"
        (Fmt.list ~sep:Fmt.cut Gradual.pp_residual)
        r.Liquid_driver.Pipeline.residuals )
  in
  let verify ?(gradual = true) ?(jobs = 1) ?cache_dir ~use_defaults ~name src =
    Liquid_driver.Pipeline.verify_string
      ~options:
        {
          Liquid_driver.Pipeline.default with
          Liquid_driver.Pipeline.jobs;
          cache_dir;
          gradual;
          quals =
            (if use_defaults then Liquid_infer.Qualifier.defaults else []);
        }
      ~name src
  in
  let sock = Filename.concat base "d.sock" in
  let daemon_pid =
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
        (try
           Server.serve
             {
               (Server.default_config ~sock) with
               Server.request_timeout = None;
               quiet = true;
             }
         with _ -> ());
        Unix._exit 0
    | pid -> pid
  in
  let daemon_replies =
    let c = Client.connect_retry sock in
    Fun.protect
      ~finally:(fun () -> Client.close c)
      (fun () ->
        Client.verify c
          (List.map
             (fun (name, src, use_defaults, _) ->
               Protocol.request ~use_defaults ~gradual:true
                 ~name:(name ^ ".ml") src)
             gradual_corpus))
  in
  (try Client.with_connection sock Client.shutdown with _ -> ());
  ignore (Unix.waitpid [] daemon_pid);
  Fmt.pr "%-12s %6s %9s %6s %9s %8s %9s@." "Program" "Hard" "Residual" "Arms"
    "Overhead" "Agree" "Plain(s)";
  Fmt.pr "%s@." (String.make 66 '-');
  let results =
    List.map2
      (fun (name, src, use_defaults, expect_residuals) reply ->
        let file = name ^ ".ml" in
        let cache = Filename.concat base ("cache-" ^ name) in
        Unix.mkdir cache 0o755;
        let t0 = Unix.gettimeofday () in
        let plain = verify ~gradual:false ~use_defaults ~name:file src in
        let t_plain = Unix.gettimeofday () -. t0 in
        let t0 = Unix.gettimeofday () in
        let direct = verify ~use_defaults ~name:file src in
        let t_gradual = Unix.gettimeofday () -. t0 in
        let sharded = verify ~jobs:4 ~use_defaults ~name:file src in
        let cold = verify ~cache_dir:cache ~use_defaults ~name:file src in
        let warm = verify ~cache_dir:cache ~use_defaults ~name:file src in
        let daemon =
          match reply with
          | Protocol.Verified rep -> Some rep
          | Protocol.Rejected _ -> None
        in
        let fp = report_fp direct in
        let arms =
          [ report_fp sharded; report_fp cold; report_fp warm ]
          @ match daemon with Some r -> [ report_fp r ] | None -> []
        in
        let agree = daemon <> None && List.for_all (fun a -> a = fp) arms in
        let n_residuals =
          List.length direct.Liquid_driver.Pipeline.residuals
        in
        let n_hard = List.length direct.Liquid_driver.Pipeline.errors in
        (* The plain run must actually fail on these obligations —
           otherwise the residuals gate below would pass vacuously on a
           corpus the fixpoint learned to prove. *)
        let plain_fails = plain.Liquid_driver.Pipeline.errors <> [] in
        (* Classification adds one explain pass over the failures; on
           these micro-programs that must stay within a small multiple
           of the plain solve (slack floor absorbs timer noise). *)
        let overhead_ok = t_gradual <= (5.0 *. t_plain) +. 0.5 in
        let ok =
          direct.Liquid_driver.Pipeline.safe
          && n_hard = 0 && plain_fails
          && n_residuals = expect_residuals
          && agree && overhead_ok
        in
        Fmt.pr "%-12s %6d %9d %6d %9s %8s %9.2f@." name n_hard n_residuals
          (1 + List.length arms)
          (if overhead_ok then "ok" else "SLOW")
          (if agree then "yes" else "DIVERGED")
          t_plain;
        ( ok,
          J.Obj
            [
              ("name", J.String name);
              ("hard_errors", J.Int n_hard);
              ("residuals", J.Int n_residuals);
              ("expected_residuals", J.Int expect_residuals);
              ( "residuals_degraded",
                J.Int
                  direct.Liquid_driver.Pipeline.stats
                    .Liquid_driver.Pipeline.n_residuals_degraded );
              ("agree", J.Bool agree);
              ("time_plain_s", J.Float t_plain);
              ("time_gradual_s", J.Float t_gradual);
              ("overhead_ok", J.Bool overhead_ok);
            ] ))
      gradual_corpus daemon_replies
  in
  rm_rf base;
  let gate_ok = List.for_all fst results in
  Fmt.pr
    "@.no hard errors, residuals as expected, byte-identical \
     direct/jobs=4/cold/warm/daemon, bounded overhead: %b@."
    gate_ok;
  if not gate_ok then
    Fmt.pr
      "  GATE: a gradual arm diverged, errored hard, missed residuals, or \
       overran the overhead bound@.";
  ( gate_ok,
    J.Obj
      [
        ("gate_ok", J.Bool gate_ok);
        ("programs", J.List (List.map snd results));
      ] )

(* ------------------------------------------------------------------ *)
(* FIXPOINT: per-benchmark solver counters → BENCH_fixpoint.json        *)
(* ------------------------------------------------------------------ *)

let bench_fixpoint ~prune_json ~partition_json ~server_json ~load_json
    ~incr_json ~explain_json ~adt_json ~gradual_json () =
  section "FIXPOINT: per-benchmark solver counters (BENCH_fixpoint.json)";
  Fmt.pr
    "Per-benchmark wall-clock and solver counters for the default@.\
     (incremental, hash-consed) engine.  The cache and counters are@.\
     reset before each benchmark; a machine-readable copy is written@.\
     to BENCH_fixpoint.json for CI trend tracking.@.@.";
  Fmt.pr "%-10s %6s %8s %9s %11s %11s@." "Program" "Safe" "Time(s)" "queries"
    "sat-checks" "cache-hits";
  Fmt.pr "%s@." (String.make 60 '-');
  let module J = Liquid_analysis.Json in
  let rows_and_entries =
    List.map
      (fun (b : Liquid_suite.Programs.benchmark) ->
        Liquid_smt.Solver.clear_cache ();
        Liquid_smt.Solver.reset_stats ();
        let row = Liquid_suite.Runner.verify b in
        let s = Liquid_smt.Solver.stats in
        let ps = row.Liquid_suite.Runner.report.Liquid_driver.Pipeline.stats in
        let safe = row.Liquid_suite.Runner.report.Liquid_driver.Pipeline.safe in
        Fmt.pr "%-10s %6s %8.2f %9d %11d %11d@." b.Liquid_suite.Programs.name
          (if safe then "yes" else "NO")
          row.Liquid_suite.Runner.time s.Liquid_smt.Solver.queries
          s.Liquid_smt.Solver.sat_checks s.Liquid_smt.Solver.cache_hits;
        ( row,
          J.Obj
            [
              ("name", J.String b.Liquid_suite.Programs.name);
              ("safe", J.Bool safe);
              ("time_s", J.Float row.Liquid_suite.Runner.time);
              ("queries", J.Int s.Liquid_smt.Solver.queries);
              ("sat_checks", J.Int s.Liquid_smt.Solver.sat_checks);
              ("cache_hits", J.Int s.Liquid_smt.Solver.cache_hits);
              ("partitions", J.Int ps.Liquid_driver.Pipeline.n_partitions);
              ( "critical_path",
                J.Int ps.Liquid_driver.Pipeline.critical_path );
            ] ))
      Liquid_suite.Programs.all
  in
  let rows = List.map fst rows_and_entries in
  let json =
    J.Obj
      [
        ("schema", J.String "bench_fixpoint/v9");
        ("engine", J.String "incremental");
        ("benchmarks", J.List (List.map snd rows_and_entries));
        ("prune", prune_json);
        ("partition", partition_json);
        ("server", server_json);
        ("load", load_json);
        ("incr", incr_json);
        ("explain", explain_json);
        ("adt", adt_json);
        ("gradual", gradual_json);
      ]
  in
  let oc = open_out "BENCH_fixpoint.json" in
  output_string oc (J.to_string json);
  output_char oc '\n';
  close_out oc;
  Fmt.pr "@.wrote BENCH_fixpoint.json (%d benchmarks)@." (List.length rows);
  rows

(* ------------------------------------------------------------------ *)
(* E1: extended suite (ours)                                            *)
(* ------------------------------------------------------------------ *)

let e1 () =
  section "E1: Extended suite (beyond the paper's table)";
  Fmt.pr
    "Additional verified programs exercising modular indexing, in-place@.     triangular updates, flag arrays, two-array scans, rectangular@.     matrices and memoization; run with constant mining enabled.@.@.";
  Fmt.pr "%-10s %-55s %6s %8s@." "Program" "Description" "Safe" "Time(s)";
  Fmt.pr "%s@." (String.make 80 '-');
  List.iter
    (fun (b : Liquid_suite.Programs.benchmark) ->
      let row = Liquid_suite.Runner.verify ~mine:true b in
      Fmt.pr "%-10s %-55s %6s %8.2f@." b.Liquid_suite.Programs.name
        b.Liquid_suite.Programs.description
        (if row.Liquid_suite.Runner.report.Liquid_driver.Pipeline.safe then
           "yes"
         else "NO")
        row.Liquid_suite.Runner.time)
    Liquid_suite.Extended.all

(* ------------------------------------------------------------------ *)
(* A3: qualifier mining ablation                                        *)
(* ------------------------------------------------------------------ *)

let a3 () =
  section "A3: Constant-mining ablation";
  Fmt.pr
    "Mining adds the program's comparison constants as placeholder@.     candidates (as DSOLVE scraped constants).  It proves constant@.     post-conditions no explicit qualifier covers, at some cost in@.     candidate-set size.@.@.";
  let probe =
    "let rec f i = if i < 10 then begin assert (i <= 9); f (i + 1) end else      i
let main = assert (f 0 = 10)"
  in
  let verdict mine =
    let r =
      Liquid_driver.Pipeline.verify_string
        ~options:{ Liquid_driver.Pipeline.default with Liquid_driver.Pipeline.mine }
        ~name:"probe" probe
    in
    if r.Liquid_driver.Pipeline.safe then "safe" else "UNSAFE"
  in
  Fmt.pr "constant-bound probe:  mining on: %s   mining off: %s@."
    (verdict true) (verdict false);
  let time_suite mine =
    let t0 = Unix.gettimeofday () in
    let rows =
      List.map
        (fun b -> Liquid_suite.Runner.verify ~mine b)
        Liquid_suite.Programs.all
    in
    ( Unix.gettimeofday () -. t0,
      List.for_all
        (fun (r : Liquid_suite.Runner.row) ->
          r.Liquid_suite.Runner.report.Liquid_driver.Pipeline.safe)
        rows )
  in
  let t_off, safe_off = time_suite false in
  let t_on, safe_on = time_suite true in
  Fmt.pr "T1 suite:  mining off: %.1fs (safe=%b)   mining on: %.1fs (safe=%b)@."
    t_off safe_off t_on safe_on

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per (fast) T1 row           *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  let test_of_bench (b : Liquid_suite.Programs.benchmark) =
    Test.make ~name:b.Liquid_suite.Programs.name
      (Staged.stage (fun () -> ignore (Liquid_suite.Runner.verify b)))
  in
  let fast =
    List.filter
      (fun (b : Liquid_suite.Programs.benchmark) ->
        (* programs verifying in well under a second; slower rows are
           timed (single-shot) in the T1 table itself *)
        List.mem b.Liquid_suite.Programs.name
          [ "dotprod"; "bcopy"; "isort"; "heapsort"; "queens" ])
      Liquid_suite.Programs.all
  in
  Test.make_grouped ~name:"verify" (List.map test_of_bench fast)

let run_bechamel () =
  section "BECHAMEL: pipeline micro-benchmarks (fast T1 rows)";
  let open Bechamel in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 2.0) () in
  let raw = Benchmark.all cfg instances (bechamel_tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  let results = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun _instance tbl ->
      Hashtbl.iter
        (fun name (res : Analyze.OLS.t) ->
          match Analyze.OLS.estimates res with
          | Some [ est ] -> Fmt.pr "%-28s %12.3f ms/run@." name (est /. 1e6)
          | _ -> Fmt.pr "%-28s (no estimate)@." name)
        tbl)
    results

let () =
  let quick = Array.exists (fun a -> a = "quick") Sys.argv in
  (* [server] mode runs only the daemon section — the CI step that
     gates warm-vs-cold verdict equality and a non-zero persistent
     cache hit rate without paying for the full harness. *)
  if Array.exists (fun a -> a = "server") Sys.argv then begin
    let server_agree, _ = server_bench () in
    Fmt.pr "@.%s@.Server: %s@.%s@." line
      (if server_agree then
         "warm daemon verdicts identical, persistent cache hit"
       else "DAEMON VERDICTS DIVERGED (or cache never hit)")
      line;
    exit (if server_agree then 0 else 1)
  end;
  (* [load] mode runs only the multi-tenant traffic replay — the CI
     step that gates byte-identical replies under concurrency, exactly
     one cold solve per distinct key, coalesced duplicates, and stall
     isolation. *)
  if Array.exists (fun a -> a = "load") Sys.argv then begin
    let load_ok, _ = load_bench () in
    Fmt.pr "@.%s@.Load: %s@.%s@." line
      (if load_ok then
         "concurrent replies identical, duplicates coalesced, stall isolated"
       else
         "LOAD GATE BROKE (replies diverged, stampede, shed, or a stalled \
          client hurt the tail)")
      line;
    exit (if load_ok then 0 else 1)
  end;
  (* [prune] mode runs only the pruning section — the CI step that
     gates byte-identical verdicts with pruning on/off and a non-empty
     prune on the T1 suite. *)
  if Array.exists (fun a -> a = "prune") Sys.argv then begin
    let prune_ok, _ = prune_bench () in
    Fmt.pr "@.%s@.Prune: %s@.%s@." line
      (if prune_ok then
         "verdicts identical with pruning on/off, instances parked"
       else "PRUNED VERDICTS DIVERGED (or the prune parked nothing)")
      line;
    exit (if prune_ok then 0 else 1)
  end;
  (* [incr] mode runs only the incremental section — the CI step that
     gates warm re-verification at half the cold time with at least one
     partition reused and byte-identical reports. *)
  (* [adt] mode runs only the datatype/measure corpus — the CI step
     that gates expected verdicts and byte-identical reports across
     direct, jobs=4, cold/warm cache and daemon solves, with a
     non-zero measure-axiom count. *)
  if Array.exists (fun a -> a = "adt") Sys.argv then begin
    let adt_ok, _ = adt_bench () in
    Fmt.pr "@.%s@.ADT: %s@.%s@." line
      (if adt_ok then
         "measure corpus verdicts as expected, all engines byte-identical"
       else "ADT GATE BROKE (verdict, divergence, or no axioms emitted)")
      line;
    exit (if adt_ok then 0 else 1)
  end;
  (* [gradual] mode runs only the residual-cast corpus — the CI step
     that gates zero hard errors, the expected residual counts, the
     byte-identical residual report across direct, jobs=4, cold/warm
     cache and daemon solves, and bounded overhead over plain runs. *)
  if Array.exists (fun a -> a = "gradual") Sys.argv then begin
    let gradual_ok, _ = gradual_bench () in
    Fmt.pr "@.%s@.Gradual: %s@.%s@." line
      (if gradual_ok then
         "residual casts stable and byte-identical across engines"
       else
         "GRADUAL GATE BROKE (hard error, missing residual, divergence, or \
          overhead)")
      line;
    exit (if gradual_ok then 0 else 1)
  end;
  if Array.exists (fun a -> a = "incr") Sys.argv then begin
    let incr_ok, _ = incr_bench () in
    Fmt.pr "@.%s@.Incr: %s@.%s@." line
      (if incr_ok then
         "warm re-verify reused cached partitions, report identical"
       else
         "INCREMENTAL GATE BROKE (too slow, nothing reused, or report \
          diverged)")
      line;
    exit (if incr_ok then 0 else 1)
  end;
  let rows = t1 () in
  f1 ();
  a1 ();
  let engines_agree = a2 () in
  let prune_ok, prune_json = prune_bench () in
  let jobs_agree, partition_json = partition_bench () in
  let server_agree, server_json = server_bench () in
  let load_ok, load_json = load_bench () in
  let incr_ok, incr_json = incr_bench () in
  let explain_ok, explain_json = explain_bench () in
  let adt_ok, adt_json = adt_bench () in
  let gradual_ok, gradual_json = gradual_bench () in
  let fixpoint_rows =
    bench_fixpoint ~prune_json ~partition_json ~server_json ~load_json
      ~incr_json ~explain_json ~adt_json ~gradual_json ()
  in
  e1 ();
  if not quick then begin
    a3 ();
    run_bechamel ()
  end;
  let all_safe =
    List.for_all
      (fun (r : Liquid_suite.Runner.row) ->
        r.Liquid_suite.Runner.report.Liquid_driver.Pipeline.safe)
      (rows @ fixpoint_rows)
    && engines_agree && prune_ok && jobs_agree && server_agree && load_ok
    && incr_ok && explain_ok && adt_ok && gradual_ok
  in
  Fmt.pr "@.%s@.Overall: %s@.%s@." line
    (if all_safe then "all benchmarks verified SAFE"
     else
       "SOME BENCHMARKS FAILED (or job counts diverged, or the prune or \
        explain gate broke)")
    line;
  exit (if all_safe then 0 else 1)
