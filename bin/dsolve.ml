(** dsolve — liquid type inference for NanoML programs.

    Usage: [dsolve [-q QUALFILE] [-Q 'qualif ...'] [--lint] [--stats]
    [--jobs N] FILE.ml]

    Verifies the given NanoML program (array-bounds safety and
    assertions), printing the inferred refinement types of its top-level
    bindings and any failed obligations.  With [--lint], additionally
    runs the semantic-lint pass (unreachable branches, trivial
    conditions, unused/shadowed bindings, dead qualifiers) and prints
    its diagnostics; [--warn-error] makes lint warnings fail the run,
    and [--format json] emits the whole report as JSON.  [--jobs N]
    solves independent constraint partitions in N concurrent worker
    processes ([--partition-timeout] bounds each one; an exceeded
    partition degrades to ⊤ with a P001 diagnostic).  [--cache DIR]
    persists verification results on disk so an unchanged program is
    re-verified for the cost of a digest.  [--no-prune] disables the
    pre-fixpoint qualifier-space prune (results are identical; only the
    solve work changes).  [--explain] explains each
    failed obligation (minimal core, blame path, witness, repair hint;
    [--explain-limit N] caps how many).  [--gradual] turns unrefuted
    failing obligations into residual runtime casts (verdict SAFE /
    SAFE_MODULO n / UNSAFE); with [--run] the program executes with the
    casts armed, reporting which residuals held or failed dynamically.
    Exits 0 iff the program is proved safe (and lint-clean under
    [--warn-error]; under [--gradual --run], also no cast failed).

    Server mode: [dsolve --serve SOCK] starts a resident verification
    daemon on a Unix-domain socket; [dsolve --connect SOCK FILE...]
    verifies files through it ([--server-stats] and [--server-shutdown]
    query and stop a running daemon). *)

open Cmdliner
module Pipeline = Liquid_driver.Pipeline
module Json = Liquid_analysis.Json

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let print_stats ~jobs (s : Pipeline.stats) =
  Fmt.pr
    "stats: lines=%d kvars=%d wf=%d sub=%d quals=%d measures=%d \
     measure-axioms=%d candidates=%d checks=%d \
     smt-queries=%d cache-hits=%d lint-queries=%d explain-queries=%d \
     diagnostics=%d partitions=%d critical-path=%d pcache-lookups=%d \
     pcache-hits=%d punit-hits=%d punit-misses=%d time=%.3fs@."
    s.Pipeline.source_lines s.n_kvars s.n_wf_constraints s.n_sub_constraints
    s.n_qualifiers s.n_measures s.n_measure_axioms s.n_initial_candidates
    s.n_implication_checks
    s.n_smt_queries s.n_smt_cache_hits s.n_lint_smt_queries
    s.n_explain_smt_queries s.n_diagnostics s.n_partitions s.critical_path
    s.n_pcache_lookups s.n_pcache_hits s.n_punit_hits s.n_punit_misses
    s.elapsed;
  Fmt.pr
    "prune: collapsed=%d pruned=%d dedup=%d refuted=%d subsumed=%d \
     reinstated=%d prune-time=%.3fs reinstate-time=%.3fs@."
    s.n_alpha_collapsed s.n_quals_pruned s.n_pruned_dedup s.n_pruned_refuted
    s.n_pruned_subsumed s.n_reinstated s.prune_time s.reinstate_time;
  Fmt.pr "gradual: residuals=%d residuals-degraded=%d uncacheable-degraded=%d@."
    s.n_residuals s.n_residuals_degraded s.n_uncacheable_degraded;
  List.iter
    (fun (p : Pipeline.part_stat) ->
      if jobs > 1 then
        Fmt.pr "partition %d: kvars=%d subs=%d time=%.3fs%s@."
          p.Pipeline.pt_id p.Pipeline.pt_kvars p.Pipeline.pt_subs
          p.Pipeline.pt_time
          (if p.Pipeline.pt_degraded then " DEGRADED" else ""))
    s.partitions;
  Fmt.pr "phases:%a@."
    Fmt.(list ~sep:nop (fun ppf (name, t) -> Fmt.pf ppf " %s=%.3fs" name t))
    s.phases

(* Exit codes, everywhere: 0 safe, 1 unsafe or lint failure, 2 errors. *)
let code_of_report ~warn_error (report : Pipeline.report) =
  let lint_failed =
    warn_error && Liquid_analysis.Lint.warnings report.Pipeline.lints <> []
  in
  if report.Pipeline.safe && not lint_failed then 0 else 1

(* ------------------------------------------------------------------ *)
(* One-shot mode                                                       *)

let run_oneshot file ~quals ~specfile ~show_stats ~execute ~lint ~warn_error
    ~format ~prune ~jobs ~partition_timeout ~cache_dir ~explain ~explain_limit
    ~gradual =
  let specs =
    match specfile with
    | None -> []
    | Some path -> Liquid_infer.Spec.parse_string (read_file path)
  in
  let options =
    {
      Pipeline.default with
      Pipeline.quals;
      specs;
      lint;
      prune;
      jobs;
      partition_timeout;
      cache_dir;
      explain;
      explain_limit;
      gradual;
    }
  in
  let report = Pipeline.verify_file ~options file in
  (match format with
  | `Json -> Fmt.pr "%a@." Json.pp (Pipeline.json_of_report ~file report)
  | `Text ->
      Fmt.pr "%a@." Pipeline.pp_report report;
      if show_stats then print_stats ~jobs report.Pipeline.stats);
  let run_code = ref 0 in
  if execute && format = `Text then begin
    Fmt.pr "@.--- running %s ---@." file;
    let prog = Liquid_lang.Parser.program_of_file file in
    if gradual && report.Pipeline.residuals <> [] then begin
      (* Residual casts armed: the interpreter credits every runtime
         safety check landing in a residual's span to that cast, and a
         failed armed assertion is absorbed into the cast report instead
         of halting execution. *)
      let rr =
        Liquid_gradual.Gradual.run_casts ~quiet:false
          report.Pipeline.residuals prog
      in
      Fmt.pr "%a@." Liquid_gradual.Gradual.pp_run_report rr;
      let failed =
        List.exists
          (fun (_, st) ->
            match st with Liquid_gradual.Gradual.Failed _ -> true | _ -> false)
          rr.Liquid_gradual.Gradual.rr_casts
      in
      if failed || not rr.Liquid_gradual.Gradual.rr_finished then run_code := 1
    end
    else
      match Liquid_eval.Eval.run_program ~quiet:false prog with
      | env -> (
          match Liquid_common.Ident.Map.find_opt "main" env with
          | Some v -> Fmt.pr "main = %a@." Liquid_eval.Eval.pp_value v
          | None -> ())
      | exception Liquid_eval.Eval.Bounds_violation msg ->
          Fmt.pr "%a@." Liquid_analysis.Diagnostic.pp
            (Liquid_analysis.Diagnostic.make
               Liquid_analysis.Diagnostic.Runtime_failure Liquid_common.Loc.dummy
               (Fmt.str "runtime bounds violation: %s" msg))
      | exception Liquid_eval.Eval.Assertion_failure loc ->
          (* Span-carrying diagnostic, same machinery as the static ones:
             scripts can match on the R001 code and the structured loc. *)
          Fmt.pr "%a@." Liquid_analysis.Diagnostic.pp
            (Liquid_analysis.Diagnostic.make
               Liquid_analysis.Diagnostic.Runtime_failure loc
               "assertion failed at runtime")
  end;
  max (code_of_report ~warn_error report) !run_code

(* ------------------------------------------------------------------ *)
(* Client mode                                                         *)

let run_client sock files ~qual_text ~no_defaults ~list_quals ~spec_text
    ~show_stats ~lint ~warn_error ~format ~explain ~explain_limit ~gradual
    ~server_stats ~server_shutdown =
  Liquid_server.Client.with_connection sock (fun c ->
      let code = ref 0 in
      if files <> [] then begin
        let batch =
          List.map
            (fun file ->
              Liquid_server.Protocol.request ~qual_text
                ~use_defaults:(not no_defaults) ~list_quals
                ~spec_text ~lint:(lint || warn_error) ~explain
                ~explain_limit ~gradual ~name:file
                (read_file file))
            files
        in
        let replies = Liquid_server.Client.verify c batch in
        List.iter2
          (fun file reply ->
            match reply with
            | Liquid_server.Protocol.Verified report -> (
                code := max !code (code_of_report ~warn_error report);
                match format with
                | `Json ->
                    Fmt.pr "%a@." Json.pp (Pipeline.json_of_report ~file report)
                | `Text ->
                    if List.length files > 1 then Fmt.pr "=== %s ===@." file;
                    Fmt.pr "%a@." Pipeline.pp_report report;
                    if show_stats then print_stats ~jobs:1 report.Pipeline.stats)
            | Liquid_server.Protocol.Rejected e -> (
                code := 2;
                match format with
                | `Json ->
                    Fmt.pr "%a@." Json.pp
                      (Json.Obj
                         [
                           ("file", Json.String file);
                           ( "error",
                             Json.Obj
                               [
                                 ("code", Json.String e.ve_code);
                                 ("message", Json.String e.ve_message);
                               ] );
                         ])
                | `Text -> Fmt.epr "%s: [%s] %s@." file e.ve_code e.ve_message))
          files replies
      end;
      if server_stats then begin
        let s = Liquid_server.Client.stats c in
        Fmt.pr
          "server: requests=%d programs=%d mem-hits=%d disk-hits=%d cold=%d \
           coalesced=%d shed=%d failures=%d connections=%d uptime=%.1fs@."
          s.sv_requests s.sv_programs s.sv_mem_hits s.sv_disk_hits s.sv_cold
          s.sv_coalesced s.sv_shed s.sv_failures s.sv_connections s.sv_uptime;
        match s.sv_cache with
        | None -> Fmt.pr "server cache: disabled@."
        | Some cs -> Fmt.pr "server cache: %a@." Liquid_cache.Store.pp_stats cs
      end;
      if server_shutdown then Liquid_server.Client.shutdown c;
      !code)

(* ------------------------------------------------------------------ *)

let run files qualfile inline_quals no_defaults list_quals specfile show_stats
    execute lint warn_error format no_prune jobs partition_timeout cache_dir
    explain explain_limit gradual serve connect request_timeout max_inflight
    client_queue idle_timeout server_stats server_shutdown =
  let qual_text =
    String.concat "\n"
      ((match qualfile with None -> [] | Some path -> [ read_file path ])
      @ inline_quals)
  in
  let partition_timeout =
    if partition_timeout <= 0.0 then None else Some partition_timeout
  in
  let request_timeout =
    if request_timeout <= 0.0 then None else Some request_timeout
  in
  try
    match (serve, connect) with
    | Some _, Some _ ->
        Fmt.epr "error: --serve and --connect are mutually exclusive@.";
        2
    | Some sock, None ->
        if files <> [] then begin
          Fmt.epr "error: --serve takes no FILE arguments@.";
          2
        end
        else begin
          Liquid_server.Server.serve
            {
              Liquid_server.Server.sock;
              cache_dir;
              jobs;
              request_timeout;
              quiet = false;
              max_inflight;
              client_queue;
              idle_timeout =
                (if idle_timeout <= 0.0 then None else Some idle_timeout);
            };
          0
        end
    | None, Some sock ->
        if files = [] && (not server_stats) && not server_shutdown then begin
          Fmt.epr "error: --connect needs FILE arguments (or --server-stats / \
                   --server-shutdown)@.";
          2
        end
        else begin
          let spec_text =
            match specfile with None -> "" | Some path -> read_file path
          in
          run_client sock files ~qual_text ~no_defaults ~list_quals ~spec_text
            ~show_stats ~lint ~warn_error ~format ~explain ~explain_limit
            ~gradual ~server_stats ~server_shutdown
        end
    | None, None -> (
        match files with
        | [ file ] ->
            let quals =
              let base =
                if no_defaults then [] else Liquid_infer.Qualifier.defaults
              in
              let base =
                if list_quals then
                  base @ Liquid_infer.Qualifier.list_defaults
                else base
              in
              base @ Liquid_infer.Qualifier.parse_string qual_text
            in
            run_oneshot file ~quals ~specfile ~show_stats ~execute
              ~lint:(lint || warn_error) ~warn_error ~format
              ~prune:(not no_prune) ~jobs ~partition_timeout ~cache_dir
              ~explain ~explain_limit ~gradual
        | [] ->
            Fmt.epr "error: a FILE argument is required@.";
            2
        | _ ->
            Fmt.epr
              "error: multiple FILE arguments need --connect (server mode)@.";
            2)
  with
  | Liquid_driver.Pipeline.Source_error (msg, loc) ->
      Fmt.epr "%a: %s@." Liquid_common.Loc.pp loc msg;
      2
  | Liquid_infer.Qualifier.Parse_error msg ->
      Fmt.epr "qualifier error: %s@." msg;
      2
  | Liquid_infer.Spec.Error msg ->
      Fmt.epr "specification error: %s@." msg;
      2
  | Failure msg ->
      Fmt.epr "error: %s@." msg;
      2
  | Unix.Unix_error (err, _, _) ->
      Fmt.epr "error: %s@." (Unix.error_message err);
      2
  | Sys_error msg ->
      Fmt.epr "error: %s@." msg;
      2

let files_arg =
  Arg.(
    value & pos_all file []
    & info [] ~docv:"FILE"
        ~doc:
          "NanoML source file (exactly one, except under $(b,--connect) \
           which accepts several)")

let qualfile_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "q"; "qualifiers" ] ~docv:"QUALFILE"
        ~doc:"File of additional qualifier declarations")

let inline_quals_arg =
  Arg.(
    value & opt_all string []
    & info [ "Q" ] ~docv:"QUAL" ~doc:"Inline qualifier declaration")

let no_defaults_arg =
  Arg.(
    value & flag
    & info [ "no-default-qualifiers" ]
        ~doc:"Do not include the built-in default qualifier set")

let list_quals_arg =
  Arg.(
    value & flag
    & info [ "list-qualifiers" ]
        ~doc:"Include the list-length (llen) qualifier set")

let spec_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "spec" ] ~docv:"SPECFILE"
        ~doc:"Refinement-type specifications (val name : type) to check \
              modularly")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print inference statistics")

let run_arg =
  Arg.(
    value & flag
    & info [ "run" ]
        ~doc:"After verification, execute the program with the reference \
              interpreter (bounds- and assertion-checked)")

let lint_arg =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:"Run the semantic-lint pass: unreachable branches (L001), \
              always-true/false conditions (L002), unused (L003) and \
              shadowed (L004) bindings, dead qualifiers (L005)")

let warn_error_arg =
  Arg.(
    value & flag
    & info [ "warn-error" ]
        ~doc:"Treat lint warnings as errors: exit non-zero if any \
              warning-severity diagnostic is reported (implies $(b,--lint))")

let no_prune_arg =
  Arg.(
    value & flag
    & info [ "no-prune" ]
        ~doc:"Disable the pre-fixpoint qualifier-space prune (orientation \
              dedup, WF-refutation, sibling subsumption) and its \
              post-fixpoint reinstatement.  Verdicts, types, and \
              explanations are identical either way; pruning only shrinks \
              the solve work")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Solve independent constraint partitions in $(docv) concurrent \
              worker processes (default 1: sequential in-process solving; \
              results are identical either way).  Under $(b,--serve), the \
              number of concurrent solve workers per request batch")

let partition_timeout_arg =
  Arg.(
    value
    & opt float 60.0
    & info [ "partition-timeout" ] ~docv:"SECONDS"
        ~doc:"Per-partition wall-clock budget under $(b,--jobs) > 1; an \
              exceeded partition is retried once, then its refinements \
              degrade to true with a P001 diagnostic.  0 disables the \
              timeout")

let format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FORMAT"
        ~doc:"Output format: $(b,text) (default) or $(b,json) \
              (machine-readable report with diagnostics and stats)")

let cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"DIR"
        ~doc:"Persist verification results under $(docv): re-verifying an \
              unchanged program (same source, qualifiers, and options, same \
              dsolve build) is served from disk.  Stale or corrupt entries \
              fall back silently to a cold run")

let explain_arg =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:"Explain each failed obligation after the fixpoint: the \
              minimal hypothesis core, the blame path through the inferred \
              refinements to its source origins, a concrete counterexample \
              witness, and — when the bounded search finds one — a repair \
              hint naming a qualifier that would make the obligation verify")

let explain_limit_arg =
  Arg.(
    value & opt int 5
    & info [ "explain-limit" ] ~docv:"N"
        ~doc:"Explain at most $(docv) failures per run (default 5); \
              further failures are counted but not explained")

let gradual_arg =
  Arg.(
    value & flag
    & info [ "gradual" ]
        ~doc:"Gradual liquid mode: after the fixpoint, each failing \
              obligation the environment does not refute (and each \
              obligation a degraded partition never checked) becomes a \
              residual runtime cast instead of an error, with a verified \
              repair hint.  The verdict becomes SAFE / SAFE_MODULO n / \
              UNSAFE; combine with $(b,--run) to execute the program with \
              the casts armed and report which residuals held")

let serve_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "serve" ] ~docv:"SOCK"
        ~doc:"Run as a verification daemon on the Unix-domain socket \
              $(docv), keeping solver state warm across requests; combine \
              with $(b,--cache) for a persistent result cache")

let connect_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "connect" ] ~docv:"SOCK"
        ~doc:"Verify the given files through the daemon listening on \
              $(docv) instead of solving in-process")

let request_timeout_arg =
  Arg.(
    value
    & opt float 300.0
    & info [ "request-timeout" ] ~docv:"SECONDS"
        ~doc:"Under $(b,--serve): wall-clock budget per program; an \
              exceeded solve is retried once, then rejected with E_TIMEOUT. \
              0 disables the timeout")

let max_inflight_arg =
  Arg.(
    value & opt int 64
    & info [ "max-inflight" ] ~docv:"N"
        ~doc:"Under $(b,--serve): global cap on cold solves queued or \
              running at once; programs beyond it are shed with E_OVERLOAD \
              instead of queueing without bound (default 64)")

let client_queue_arg =
  Arg.(
    value & opt int 16
    & info [ "client-queue" ] ~docv:"N"
        ~doc:"Under $(b,--serve): per-connection cap on cold solves waiting \
              for a worker; one client's burst beyond it is shed with \
              E_OVERLOAD rather than starving other tenants (default 16)")

let idle_timeout_arg =
  Arg.(
    value
    & opt float 600.0
    & info [ "idle-timeout" ] ~docv:"SECONDS"
        ~doc:"Under $(b,--serve): close client connections with no \
              outstanding work and no I/O for $(docv) seconds (default 600; \
              0 disables)")

let server_stats_arg =
  Arg.(
    value & flag
    & info [ "server-stats" ]
        ~doc:"Under $(b,--connect): print the daemon's lifetime counters \
              (requests, cache hits, coalesced and shed solves, failures, \
              open connections)")

let server_shutdown_arg =
  Arg.(
    value & flag
    & info [ "server-shutdown" ]
        ~doc:"Under $(b,--connect): ask the daemon to exit")

let cmd =
  let doc = "liquid type inference for NanoML (PLDI 2008 reproduction)" in
  Cmd.v
    (Cmd.info "dsolve" ~version:"1.0.0" ~doc)
    Term.(
      const run $ files_arg $ qualfile_arg $ inline_quals_arg $ no_defaults_arg
      $ list_quals_arg $ spec_arg $ stats_arg $ run_arg $ lint_arg
      $ warn_error_arg $ format_arg $ no_prune_arg $ jobs_arg
      $ partition_timeout_arg $ cache_arg $ explain_arg $ explain_limit_arg
      $ gradual_arg $ serve_arg $ connect_arg $ request_timeout_arg
      $ max_inflight_arg
      $ client_queue_arg $ idle_timeout_arg $ server_stats_arg
      $ server_shutdown_arg)

let () = exit (Cmd.eval' cmd)
