(** dsolve — liquid type inference for NanoML programs.

    Usage: [dsolve [-q QUALFILE] [-Q 'qualif ...'] [--lint] [--stats]
    [--jobs N] FILE.ml]

    Verifies the given NanoML program (array-bounds safety and
    assertions), printing the inferred refinement types of its top-level
    bindings and any failed obligations.  With [--lint], additionally
    runs the semantic-lint pass (unreachable branches, trivial
    conditions, unused/shadowed bindings, dead qualifiers) and prints
    its diagnostics; [--warn-error] makes lint warnings fail the run,
    and [--format json] emits the whole report as JSON.  [--jobs N]
    solves independent constraint partitions in N concurrent worker
    processes ([--partition-timeout] bounds each one; an exceeded
    partition degrades to ⊤ with a P001 diagnostic).  Exits 0 iff the
    program is proved safe (and lint-clean under [--warn-error]). *)

open Cmdliner

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run file qualfile inline_quals no_defaults list_quals specfile show_stats
    execute lint warn_error format jobs partition_timeout =
  let quals =
    let base = if no_defaults then [] else Liquid_infer.Qualifier.defaults in
    let base =
      if list_quals then base @ Liquid_infer.Qualifier.list_defaults else base
    in
    let from_file =
      match qualfile with
      | None -> []
      | Some path -> Liquid_infer.Qualifier.parse_string (read_file path)
    in
    let inline =
      List.concat_map Liquid_infer.Qualifier.parse_string inline_quals
    in
    base @ from_file @ inline
  in
  try
    let specs =
      match specfile with
      | None -> []
      | Some path -> Liquid_infer.Spec.parse_string (read_file path)
    in
    let lint = lint || warn_error in
    let options =
      {
        Liquid_driver.Pipeline.default with
        Liquid_driver.Pipeline.quals;
        specs;
        lint;
        jobs;
        partition_timeout =
          (if partition_timeout <= 0.0 then None else Some partition_timeout);
      }
    in
    let report = Liquid_driver.Pipeline.verify_file ~options file in
    (match format with
    | `Json ->
        Fmt.pr "%a@." Liquid_analysis.Json.pp
          (Liquid_driver.Pipeline.json_of_report ~file report)
    | `Text ->
        Fmt.pr "%a@." Liquid_driver.Pipeline.pp_report report;
        if show_stats then begin
          let s = report.Liquid_driver.Pipeline.stats in
          Fmt.pr
            "stats: lines=%d kvars=%d wf=%d sub=%d quals=%d candidates=%d \
             checks=%d smt-queries=%d cache-hits=%d lint-queries=%d \
             diagnostics=%d partitions=%d critical-path=%d time=%.3fs@."
            s.Liquid_driver.Pipeline.source_lines s.n_kvars s.n_wf_constraints
            s.n_sub_constraints s.n_qualifiers s.n_initial_candidates
            s.n_implication_checks s.n_smt_queries s.n_smt_cache_hits
            s.n_lint_smt_queries s.n_diagnostics s.n_partitions
            s.critical_path s.elapsed;
          List.iter
            (fun (p : Liquid_driver.Pipeline.part_stat) ->
              if jobs > 1 then
                Fmt.pr "partition %d: kvars=%d subs=%d time=%.3fs%s@."
                  p.Liquid_driver.Pipeline.pt_id
                  p.Liquid_driver.Pipeline.pt_kvars
                  p.Liquid_driver.Pipeline.pt_subs
                  p.Liquid_driver.Pipeline.pt_time
                  (if p.Liquid_driver.Pipeline.pt_degraded then " DEGRADED"
                   else ""))
            s.partitions;
          Fmt.pr "phases:%a@."
            Fmt.(
              list ~sep:nop (fun ppf (name, t) ->
                  Fmt.pf ppf " %s=%.3fs" name t))
            s.phases
        end);
    let lint_failed =
      warn_error
      && Liquid_analysis.Lint.warnings report.Liquid_driver.Pipeline.lints
         <> []
    in
    (if execute && format = `Text then begin
       Fmt.pr "@.--- running %s ---@." file;
       let prog = Liquid_lang.Parser.program_of_file file in
       match Liquid_eval.Eval.run_program ~quiet:false prog with
       | env -> (
           match Liquid_common.Ident.Map.find_opt "main" env with
           | Some v -> Fmt.pr "main = %a@." Liquid_eval.Eval.pp_value v
           | None -> ())
       | exception Liquid_eval.Eval.Bounds_violation msg ->
           Fmt.pr "runtime bounds violation: %s@." msg
       | exception Liquid_eval.Eval.Assertion_failure loc ->
           Fmt.pr "runtime assertion failure at %a@." Liquid_common.Loc.pp loc
     end;
     if report.Liquid_driver.Pipeline.safe && not lint_failed then 0 else 1)
  with
  | Liquid_driver.Pipeline.Source_error (msg, loc) ->
      Fmt.epr "%a: %s@." Liquid_common.Loc.pp loc msg;
      2
  | Liquid_infer.Spec.Error msg ->
      Fmt.epr "specification error: %s@." msg;
      2
  | Sys_error msg ->
      Fmt.epr "error: %s@." msg;
      2

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"NanoML source file")

let qualfile_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "q"; "qualifiers" ] ~docv:"QUALFILE"
        ~doc:"File of additional qualifier declarations")

let inline_quals_arg =
  Arg.(
    value & opt_all string []
    & info [ "Q" ] ~docv:"QUAL" ~doc:"Inline qualifier declaration")

let no_defaults_arg =
  Arg.(
    value & flag
    & info [ "no-default-qualifiers" ]
        ~doc:"Do not include the built-in default qualifier set")

let list_quals_arg =
  Arg.(
    value & flag
    & info [ "list-qualifiers" ]
        ~doc:"Include the list-length (llen) qualifier set")

let spec_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "spec" ] ~docv:"SPECFILE"
        ~doc:"Refinement-type specifications (val name : type) to check \
              modularly")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print inference statistics")

let run_arg =
  Arg.(
    value & flag
    & info [ "run" ]
        ~doc:"After verification, execute the program with the reference \
              interpreter (bounds- and assertion-checked)")

let lint_arg =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:"Run the semantic-lint pass: unreachable branches (L001), \
              always-true/false conditions (L002), unused (L003) and \
              shadowed (L004) bindings, dead qualifiers (L005)")

let warn_error_arg =
  Arg.(
    value & flag
    & info [ "warn-error" ]
        ~doc:"Treat lint warnings as errors: exit non-zero if any \
              warning-severity diagnostic is reported (implies $(b,--lint))")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Solve independent constraint partitions in $(docv) concurrent \
              worker processes (default 1: sequential in-process solving; \
              results are identical either way)")

let partition_timeout_arg =
  Arg.(
    value
    & opt float 60.0
    & info [ "partition-timeout" ] ~docv:"SECONDS"
        ~doc:"Per-partition wall-clock budget under $(b,--jobs) > 1; an \
              exceeded partition is retried once, then its refinements \
              degrade to true with a P001 diagnostic.  0 disables the \
              timeout")

let format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FORMAT"
        ~doc:"Output format: $(b,text) (default) or $(b,json) \
              (machine-readable report with diagnostics and stats)")

let cmd =
  let doc = "liquid type inference for NanoML (PLDI 2008 reproduction)" in
  Cmd.v
    (Cmd.info "dsolve" ~version:"1.0.0" ~doc)
    Term.(
      const run $ file_arg $ qualfile_arg $ inline_quals_arg $ no_defaults_arg
      $ list_quals_arg $ spec_arg $ stats_arg $ run_arg $ lint_arg
      $ warn_error_arg $ format_arg $ jobs_arg $ partition_timeout_arg)

let () = exit (Cmd.eval' cmd)
