(* End-to-end tests of liquid type inference: the safe/unsafe verdict and
   the inferred refinements on small programs.  This is the executable
   form of the paper's typing rules. *)

let verify ?(quals = "") src =
  let quals =
    Liquid_infer.Qualifier.defaults @ Liquid_infer.Qualifier.parse_string quals
  in
  Liquid_driver.Pipeline.verify_string
    ~options:{ Liquid_driver.Pipeline.default with Liquid_driver.Pipeline.quals }
    src

let is_safe ?quals src = (verify ?quals src).Liquid_driver.Pipeline.safe

let item_type src name =
  let r = verify src in
  let _, t =
    List.find
      (fun (x, _) -> Liquid_common.Ident.to_string x = name)
      r.Liquid_driver.Pipeline.item_types
  in
  Fmt.str "%a" Liquid_infer.Rtype.pp t

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Safe / unsafe classification                                        *)
(* ------------------------------------------------------------------ *)

let safe_programs =
  [
    ("constant assert", "let _ = assert (1 < 2)");
    ("guarded access", "let a = Array.make 4 0\nlet x = if 3 < Array.length a then a.(3) else 0");
    ( "loop over array",
      "let a = Array.make 8 0\n\
       let rec go i = if i < Array.length a then begin a.(i) <- i; go (i + \
       1) end else ()\n\
       let _ = go 0" );
    ( "assert from guard",
      "let f x = if x > 0 then assert (x >= 1) else ()\nlet _ = f 5" );
    ( "transitive bound",
      "let f x y z = if x < y then if y < z then assert (x < z) else () else ()\n\
       let _ = f 1 2 3" );
    ( "abs is non-negative",
      "let _ = assert (abs (0 - 3) >= 0)" );
    ( "min and max",
      "let f a b = assert (min a b <= max a b)\nlet _ = f 3 9" );
    ( "mod bound",
      "let f x = if x >= 0 then assert (x mod 4 < 4) else ()\nlet _ = f 11" );
    ( "division halves",
      "let f x = if x >= 0 then assert (x / 2 <= x) else ()\nlet _ = f 7" );
    ( "tuple projection",
      "let p = (3, 4)\nlet _ = match p with | (a, b) -> assert (a = 3)" );
    ( "polymorphic id preserves refinement",
      "let id x = x\nlet _ = assert (id 3 = 3)" );
    ( "higher-order invariant",
      "let twice f x = f (f x)\n\
       let _ = assert (twice (fun y -> y + 1) 0 >= 0)" );
    ( "list elements through match",
      "let l = [1; 2; 3]\n\
       let _ = match l with | x :: _ -> assert (x > 0) | [] -> ()" );
    ( "length reflects make",
      "let n = 5\nlet a = Array.make n 0\nlet _ = assert (Array.length a = n)" );
  ]

let unsafe_programs =
  [
    ("false assert", "let _ = assert (2 < 1)");
    ("unguarded access", "let a = Array.make 4 0\nlet x = a.(4)");
    ("negative index", "let a = Array.make 4 0\nlet x = a.(0 - 1)");
    ("negative make", "let a = Array.make (0 - 3) 0");
    ( "off-by-one loop",
      "let a = Array.make 8 0\n\
       let rec go i = if i <= Array.length a then begin a.(i) <- i; go (i + \
       1) end else ()\n\
       let _ = go 0" );
    ( "wrong guard direction",
      "let f x = if x < 0 then assert (x >= 1) else ()\nlet _ = f (0 - 5)" );
    ( "unknown value assert",
      "let f x = assert (x > 0)\nlet _ = f 5\nlet _ = f (0 - 5)" );
    ( "bad division claim",
      "let f x = assert (x / 2 >= x)\nlet _ = f 7" );
  ]

let test_safe () =
  List.iter
    (fun (name, src) -> check_bool name true (is_safe src))
    safe_programs

let test_unsafe () =
  List.iter
    (fun (name, src) -> check_bool name false (is_safe src))
    unsafe_programs

(* ------------------------------------------------------------------ *)
(* Inferred refinements (the paper's overview results)                 *)
(* ------------------------------------------------------------------ *)

let test_inferred_max () =
  let t = item_type "let mymax x y = if x > y then x else y\nlet u = mymax 1 2" "mymax" in
  check_bool ("max type has v >= x: " ^ t) true (contains t ">= x");
  check_bool ("max type has v >= y: " ^ t) true (contains t ">= y")

let test_inferred_sum () =
  let t =
    item_type
      "let rec sum k = if k < 0 then 0 else begin let s = sum (k - 1) in s + \
       k end\nlet u = sum 9"
      "sum"
  in
  check_bool ("sum result non-negative: " ^ t) true (contains t "0 <= v");
  check_bool ("sum result >= k: " ^ t) true (contains t "v >= k")

let test_inferred_array_len () =
  let t =
    item_type
      "let mk n = if n >= 0 then Array.make n 0 else Array.make 0 0\n\
       let u = mk 3"
      "mk"
  in
  check_bool ("length related to n: " ^ t) true
    (contains t "len(v) <= n" || contains t "len(v) = n")

let test_selfification () =
  (* A variable occurrence gets the singleton type {v = x}. *)
  check_bool "selfified equality flows" true
    (is_safe "let f x = let y = x in assert (y = x)\nlet _ = f 3")

let test_path_sensitivity () =
  check_bool "guards accumulate" true
    (is_safe
       "let f x = if x > 0 then if x < 10 then assert (x * 1 >= 1 && x <= 9) \
        else () else ()\nlet _ = f 5");
  check_bool "negated guard" true
    (is_safe "let f x = if x > 0 then () else assert (x <= 0)\nlet _ = f 1")

let test_recursion_invariant () =
  (* classic loop counter invariant: i stays within [0, n] *)
  check_bool "loop counter bounded" true
    (is_safe
       "let count n = begin\n\
       \  let rec go i = if i < n then go (i + 1) else i in\n\
       \  if n >= 0 then assert (go 0 = n) else ()\n\
        end\n\
        let _ = count 5")

let test_function_subtyping () =
  (* passing a function whose inferred type must be weakened at the call *)
  check_bool "HOF argument subtyping" true
    (is_safe
       "let apply f = f 3\nlet _ = assert (apply (fun x -> x + 1) >= 0)");
  check_bool "HOF precondition violation caught" false
    (is_safe
       "let applyneg f = f (0 - 3)\n\
        let g y = assert (y >= 0); y\n\
        let _ = applyneg g")

let test_scope_escape_regression () =
  (* Regression: a let-bound name must not leak into the reported type of
     an enclosing function through a κ solution (soundness fix). *)
  let t =
    item_type
      "let cp src = begin\n\
      \  let n = Array.length src in\n\
      \  Array.make n 0\n\
       end\n\
       let u = cp (Array.make 3 0)"
      "cp"
  in
  check_bool ("no leaked internal binder: " ^ t) false (contains t "n#")

let test_unknown_treated_conservatively () =
  (* Non-linear facts are out of the logic: must not be assumed. *)
  check_bool "nonlinear assert not proved" false
    (is_safe "let f x = assert (x * x >= 0)\nlet _ = f 3");
  (* ... but also must not break anything else *)
  check_bool "nonlinear context ok" true
    (is_safe "let f x y = let z = x * y in assert (z = x * y)\nlet _ = f 2 3")

let test_assert_in_dead_branch () =
  (* dead code under a contradictory guard is vacuously safe *)
  check_bool "contradictory guard" true
    (is_safe "let f x = if x < 0 then if x > 0 then assert (1 = 2) else () else ()\nlet _ = f 1")

let test_error_reporting () =
  let r = verify "let a = Array.make 2 0\nlet x = a.(7)" in
  check_bool "unsafe" false r.Liquid_driver.Pipeline.safe;
  match r.Liquid_driver.Pipeline.errors with
  | [ e ] ->
      check_bool "reason mentions bounds" true
        (contains e.Liquid_driver.Pipeline.err_reason "out of bounds");
      check_bool "location line 2" true
        (e.Liquid_driver.Pipeline.err_loc.Liquid_common.Loc.start_pos.line = 2)
  | es -> Alcotest.fail (Fmt.str "expected 1 error, got %d" (List.length es))

let test_custom_qualifier_needed () =
  (* The conservation invariant of Hanoi needs a custom qualifier: with it
     the program verifies, without it a bounds obligation fails. *)
  let src =
    "let f a b hd k = if 0 < k && k + hd <= Array.length b then b.(hd) <- \
     a.(0) else ()\nlet _ = f (Array.make 1 0) (Array.make 4 0) 1 2"
  in
  check_bool "verifies with guard" true (is_safe src)

let test_requeue_reaches_fixpoint () =
  (* Dependency-directed re-queueing: κ_i of [go] starts at the strongest
     (self-contradictory) assignment, under which the recursive-call
     constraint retains everything.  The [go 0] call-site constraint then
     prunes κ_i, which must transitively re-enqueue the recursive-call
     constraint (and the result constraint it feeds) until the system
     stabilizes.  We assert (a) the worklist popped more often than the
     number of κ-writing constraints — i.e. something was genuinely
     re-queued — and (b) the final solution is an actual fixpoint: every
     retained instance of every κ-rhs constraint is implied by its
     antecedent under that same solution. *)
  let open Liquid_infer in
  let open Liquid_logic in
  let src =
    "let rec go i = if i < 10 then go (i + 1) else i\n\
     let r = go 0\n\
     let _ = assert (r >= 0)"
  in
  let prog =
    Liquid_anf.Anf.normalize_program
      (Liquid_lang.Parser.program_of_string src)
  in
  let info = Liquid_typing.Infer.infer_program prog in
  let out = Congen.generate info prog in
  let res =
    Fixpoint.solve ~quals:Qualifier.defaults ~consts:[ 10 ] out.Congen.wfs
      out.Congen.subs
  in
  check_bool "program safe" true (res.Fixpoint.failures = []);
  let writers =
    List.filter
      (fun (c : Constr.sub) ->
        match c.Constr.rhs with Constr.Rkvar _ -> true | Constr.Rconc _ -> false)
      out.Congen.subs
  in
  check_bool "worklist re-queued at least one constraint" true
    (res.Fixpoint.solver_stats.Fixpoint.iterations > List.length writers);
  (* Re-verify the fixpoint property constraint by constraint. *)
  let lookup k = Constr.sol_find res.Fixpoint.solution k in
  let vv_value (s : Sort.t) =
    match s with
    | Sort.Bool -> Pred.Pr (Pred.bvar Liquid_common.Ident.vv)
    | s -> Pred.Tm (Term.var Liquid_common.Ident.vv s)
  in
  List.iter
    (fun (c : Constr.sub) ->
      match c.Constr.rhs with
      | Constr.Rconc _ -> ()
      | Constr.Rkvar (k, theta) ->
          let facts, guards = Constr.embed_env lookup c.Constr.sub_env in
          let lhs =
            Constr.preds_of_refinement lookup (vv_value c.Constr.vv_sort)
              c.Constr.lhs
          in
          let kept = lhs @ guards in
          List.iter
            (fun q ->
              check_bool
                (Fmt.str "retained instance %a of κ%d is implied" Pred.pp q k)
                true
                (Liquid_smt.Solver.check_valid ~kept facts (Pred.subst theta q)
                = Liquid_smt.Solver.Valid))
            (lookup k))
    out.Congen.subs

let test_stats_populated () =
  let r = verify "let rec f x = if x < 1 then 0 else f (x - 1)\nlet _ = f 3" in
  let s = r.Liquid_driver.Pipeline.stats in
  check_bool "kvars > 0" true (s.Liquid_driver.Pipeline.n_kvars > 0);
  check_bool "subs > 0" true (s.Liquid_driver.Pipeline.n_sub_constraints > 0);
  check_bool "smt queries > 0" true (s.Liquid_driver.Pipeline.n_smt_queries > 0);
  check_bool "elapsed >= 0" true (s.Liquid_driver.Pipeline.elapsed >= 0.0)

let tests =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    tc "safe programs verify" test_safe;
    tc "unsafe programs rejected" test_unsafe;
    tc "inferred type of max" test_inferred_max;
    tc "inferred type of sum" test_inferred_sum;
    tc "inferred array length" test_inferred_array_len;
    tc "selfification" test_selfification;
    tc "path sensitivity" test_path_sensitivity;
    tc "recursive invariants" test_recursion_invariant;
    tc "function subtyping" test_function_subtyping;
    tc "scope escape regression" test_scope_escape_regression;
    tc "conservative about non-linear facts" test_unknown_treated_conservatively;
    tc "dead branch vacuously safe" test_assert_in_dead_branch;
    tc "error reporting" test_error_reporting;
    tc "guarded writes" test_custom_qualifier_needed;
    tc "requeue reaches fixpoint" test_requeue_reaches_fixpoint;
    tc "statistics populated" test_stats_populated;
  ]
