(* Integration tests over the paper's benchmark suite: every benchmark
   must verify with its qualifier set, execute correctly under the
   reference interpreter, and reject planted bugs (mutation testing). *)

open Liquid_suite

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Verification: the paper's headline table                            *)
(* ------------------------------------------------------------------ *)

let test_benchmark name =
  let b = Programs.find name in
  let row = Runner.verify b in
  check_bool (name ^ " verifies safe") true
    row.Runner.report.Liquid_driver.Pipeline.safe

(* ------------------------------------------------------------------ *)
(* Execution: verified programs run without bounds/assert failures and *)
(* compute the right answers (soundness, in executable form)           *)
(* ------------------------------------------------------------------ *)

let exec_int name =
  match Runner.execute (Programs.find name) with
  | Liquid_eval.Eval.Vint n -> n
  | v -> Alcotest.fail (Fmt.str "%s: non-int main %a" name Liquid_eval.Eval.pp_value v)

let test_execution () =
  check_int "dotprod = 16 * 12" 192 (exec_int "dotprod");
  check_int "bcopy copies" 7 (exec_int "bcopy");
  check_int "queens 6 has 4 solutions" 4 (exec_int "queens");
  check_int "isort sorts (min first)" 1 (exec_int "isort");
  check_int "tower moves all disks" 1 (exec_int "tower");
  check_int "matmult diagonal product" 2 (exec_int "matmult");
  check_int "heapsort sorts ascending" 77 (exec_int "heapsort");
  check_int "fft stage sums" 16 (exec_int "fft");
  (match Runner.execute (Programs.find "bsearch") with
  | Liquid_eval.Eval.Vunit -> ()
  | _ -> Alcotest.fail "bsearch main");
  ignore (exec_int "simplex");
  ignore (exec_int "gauss")

(* ------------------------------------------------------------------ *)
(* Engine equivalence: the incremental fixpoint must compute exactly   *)
(* the naive (reference) engine's result on the whole suite — same     *)
(* verdicts, same failures, same inferred types.                       *)
(* ------------------------------------------------------------------ *)

let engine_fingerprint incremental =
  List.map
    (fun (b : Programs.benchmark) ->
      let row = Runner.verify ~incremental b in
      let rep = row.Runner.report in
      ( b.Programs.name,
        rep.Liquid_driver.Pipeline.safe,
        List.map
          (fun (e : Liquid_driver.Pipeline.error) ->
            Fmt.str "%a: %s: %s" Liquid_common.Loc.pp
              e.Liquid_driver.Pipeline.err_loc e.Liquid_driver.Pipeline.err_reason
              e.Liquid_driver.Pipeline.err_goal)
          rep.Liquid_driver.Pipeline.errors,
        List.map
          (fun (x, t) ->
            (* display form: alpha-renaming counters are session-global,
               so raw types differ in binder suffixes across runs *)
            Fmt.str "%a : %a" Liquid_common.Ident.pp x Liquid_infer.Rtype.pp
              (Liquid_infer.Report.display t))
          rep.Liquid_driver.Pipeline.item_types ))
    Programs.all

let test_engine_equivalence () =
  let naive = engine_fingerprint false in
  let incr = engine_fingerprint true in
  List.iter2
    (fun (name, safe_n, errs_n, types_n) (_, safe_i, errs_i, types_i) ->
      check_bool (name ^ ": same verdict") true (safe_n = safe_i);
      check_bool (name ^ ": same failures") true (errs_n = errs_i);
      check_bool (name ^ ": same inferred types") true (types_n = types_i))
    naive incr

(* ------------------------------------------------------------------ *)
(* Mutation testing: planting an off-by-one or dropping a guard must   *)
(* flip the verdict to unsafe.                                         *)
(* ------------------------------------------------------------------ *)

let replace ~what ~with_ s =
  match String.index_opt s ' ' with
  | _ ->
      let re = Str.regexp_string what in
      Str.global_replace re with_ s

let mutants =
  [
    (* benchmark, description, textual mutation *)
    ("bcopy", "loop bound uses dst", ("i < Array.length src", "i <= Array.length src"));
    ("isort", "insert accesses a.(j) without guard", ("if 0 < j", "if 0 <= j"));
    ("queens", "termination test off by one", ("if r = size then 1", "if r = size + 1 then 1"));
    ("heapsort", "second child bound check", ("if c2 < bound", "if c2 <= bound"));
    ("matmult", "k loop overruns", ("if k < n then", "if k <= n then"));
    ("gauss", "column sweep overruns", ("if j <= n", "if j <= n + 1"));
    ("tower", "source height off by one", ("s.(hs - k)", "s.(hs - k + 1)"));
    ("fft", "butterfly guard dropped", ("if i + half < n", "if i < n"));
  ]

let test_mutants () =
  List.iter
    (fun (name, desc, (what, with_)) ->
      let b = Programs.find name in
      check_bool (name ^ ": mutation applies") true
        (Str.string_match (Str.regexp (".*" ^ Str.quote what ^ ".*"))
           (Str.global_replace (Str.regexp "\n") " " b.Programs.source) 0);
      let mutated = { b with Programs.source = replace ~what ~with_ b.Programs.source } in
      let row = Runner.verify mutated in
      check_bool
        (Fmt.str "%s mutant rejected (%s)" name desc)
        false row.Runner.report.Liquid_driver.Pipeline.safe)
    mutants

(* ------------------------------------------------------------------ *)
(* Overview examples: inferred types match the paper's figures          *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_overview () =
  List.iter
    (fun (ex : Overview.example) ->
      let r = Liquid_driver.Pipeline.verify_string ~name:ex.Overview.name ex.Overview.source in
      check_bool (ex.Overview.name ^ " safe") true r.Liquid_driver.Pipeline.safe;
      List.iter
        (fun (item, fragment) ->
          let _, t =
            List.find
              (fun (x, _) -> Liquid_common.Ident.to_string x = item)
              r.Liquid_driver.Pipeline.item_types
          in
          let s = Fmt.str "%a" Liquid_infer.Rtype.pp t in
          check_bool
            (Fmt.str "%s: %s type contains %S (got %s)" ex.Overview.name item
               fragment s)
            true (contains s fragment))
        ex.Overview.expectations)
    Overview.all

(* ------------------------------------------------------------------ *)
(* Qualifier ablation: benchmarks that need an extra qualifier fail    *)
(* cleanly without it (they are not vacuously safe).                   *)
(* ------------------------------------------------------------------ *)

let test_qualifier_ablation () =
  List.iter
    (fun name ->
      let b = Programs.find name in
      if b.Programs.extra_qualifiers <> "" then begin
        let row = Runner.verify ~quals:Liquid_infer.Qualifier.defaults b in
        check_bool
          (name ^ " fails without its extra qualifier")
          false row.Runner.report.Liquid_driver.Pipeline.safe
      end)
    [ "tower"; "simplex"; "gauss" ]

let tests =
  let tc name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  List.map
    (fun (b : Programs.benchmark) ->
      (if List.mem b.Programs.name [ "tower"; "fft"; "simplex" ] then slow
       else tc)
        ("verify " ^ b.Programs.name)
        (fun () -> test_benchmark b.Programs.name))
    Programs.all
  @ [
      tc "execute all benchmarks" test_execution;
      slow "incremental engine matches naive engine" test_engine_equivalence;
      slow "mutants are rejected" test_mutants;
      tc "overview examples match the paper" test_overview;
      slow "extra qualifiers are necessary" test_qualifier_ablation;
    ]
