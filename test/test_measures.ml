(* Tests for the list-length measure extension (the paper's future-work
   direction; PLDI'09 follow-up): llen [] = 0, llen (x :: t) = llen t + 1,
   match-refined scrutinees, and the llen qualifier set. *)

let quals =
  Liquid_infer.Qualifier.defaults @ Liquid_infer.Qualifier.list_defaults

let verify src =
  Liquid_driver.Pipeline.verify_string
    ~options:{ Liquid_driver.Pipeline.default with Liquid_driver.Pipeline.quals }
    src

let is_safe src = (verify src).Liquid_driver.Pipeline.safe

let item_type src name =
  let r = verify src in
  let _, t =
    List.find
      (fun (x, _) -> Liquid_common.Ident.to_string x = name)
      r.Liquid_driver.Pipeline.item_types
  in
  Fmt.str "%a" Liquid_infer.Rtype.pp (Liquid_infer.Report.display t)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let check_bool = Alcotest.(check bool)

let length_src =
  "let rec length l = match l with | [] -> 0 | _ :: xs -> 1 + length xs\n\
   let u = length [1; 2]"

let test_length_type () =
  let t = item_type length_src "length" in
  check_bool ("length returns llen: " ^ t) true (contains t "v = llen(l)")

let test_append_type () =
  let t =
    item_type
      "let rec append xs ys = match xs with | [] -> ys | h :: t -> h :: \
       append t ys\nlet u = append [1] [2]"
      "append"
  in
  check_bool ("append adds lengths: " ^ t) true
    (contains t "llen(v) = (llen(xs) + llen(ys))")

let test_map_preserves_length () =
  let t =
    item_type
      "let rec map f l = match l with | [] -> [] | h :: t -> f h :: map f t\n\
       let u = map (fun x -> x + 1) [1; 2]"
      "map"
  in
  check_bool ("map preserves length: " ^ t) true (contains t "llen(v) = llen(l)")

let test_literal_lengths () =
  check_bool "literal list length" true
    (is_safe "let _ = assert (List.length [1; 2; 3] = 3)");
  check_bool "empty list length" true
    (is_safe "let _ = assert (List.length [] = 0)");
  check_bool "wrong literal length rejected" false
    (is_safe "let _ = assert (List.length [1; 2] = 3)")

let test_match_facts () =
  (* cons arm: length at least one; nil arm: length zero *)
  check_bool "cons arm llen >= 1" true
    (is_safe
       "let f l = match l with | [] -> 0 | _ :: _ -> List.length l\n\
        let _ = assert (f [1] >= 0)");
  check_bool "nil arm llen = 0" true
    (is_safe
       "let f l = match l with | [] -> assert (List.length l = 0) | _ :: _ \
        -> ()\nlet _ = f [1]")

let test_dead_arm () =
  (* a cons-only consumer whose [] arm is dead given llen precondition *)
  check_bool "provably dead [] arm" true
    (is_safe
       "let pick l = begin\n\
       \  if List.length l > 0 then begin\n\
       \    match l with\n\
       \    | x :: _ -> x\n\
       \    | [] -> assert (1 = 2); 0\n\
       \  end else 0\n\
        end\n\
        let _ = pick [7]");
  check_bool "arm not dead without the guard" false
    (is_safe
       "let pick l = begin\n\
       \  match l with\n\
       \  | x :: _ -> x\n\
       \  | [] -> assert (1 = 2); 0\n\
        end\n\
        let _ = pick []")

let test_combine () =
  check_bool "combine on equal lengths" true
    (is_safe
       "let rec combine xs ys = begin\n\
       \  match xs with\n\
       \  | [] -> []\n\
       \  | x :: xt -> begin\n\
       \      match ys with\n\
       \      | y :: yt -> (x, y) :: combine xt yt\n\
       \      | [] -> assert (1 = 2); []\n\
       \    end\n\
        end\n\
        let _ = combine [1; 2] [3; 4]");
  check_bool "combine on unequal lengths rejected" false
    (is_safe
       "let rec combine xs ys = begin\n\
       \  match xs with\n\
       \  | [] -> []\n\
       \  | x :: xt -> begin\n\
       \      match ys with\n\
       \      | y :: yt -> (x, y) :: combine xt yt\n\
       \      | [] -> assert (1 = 2); []\n\
       \    end\n\
        end\n\
        let _ = combine [1; 2] [3]")

let test_take_bound () =
  let t =
    item_type
      "let rec take n l = begin\n\
       \  if n <= 0 then []\n\
       \  else begin\n\
       \    match l with\n\
       \    | [] -> []\n\
       \    | h :: t -> h :: take (n - 1) t\n\
       \  end\n\
       end\n\
       let u = take 2 [1; 2; 3]"
      "take"
  in
  check_bool ("take bounded by input: " ^ t) true
    (contains t "llen(v) <= llen(l)");
  check_bool ("take bounded by n: " ^ t) true (contains t "llen(v) <= n")

let test_llen_nonnegative () =
  check_bool "lengths are non-negative" true
    (is_safe "let f l = assert (List.length l >= 0)\nlet _ = f [1]")

let tests =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    tc "length : {v = llen l}" test_length_type;
    tc "append adds lengths" test_append_type;
    tc "map preserves length" test_map_preserves_length;
    tc "literal list lengths" test_literal_lengths;
    tc "match arms learn llen facts" test_match_facts;
    tc "dead match arms" test_dead_arm;
    tc "combine needs equal lengths" test_combine;
    tc "take is doubly bounded" test_take_bound;
    tc "llen non-negativity axiom" test_llen_nonnegative;
  ]
