(* Tests for the verification daemon: request/response round-trips,
   structured errors for bad inputs, fault isolation (a crashed or hung
   solve worker never kills the daemon), concurrent clients, and
   warm-vs-cold verdict equality across the benchmark suite. *)

open Liquid_suite
module Pipeline = Liquid_driver.Pipeline
module Protocol = Liquid_server.Protocol
module Server = Liquid_server.Server
module Client = Liquid_server.Client
module Scheduler = Liquid_engine.Scheduler

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dsolve-server-test-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  Unix.mkdir dir 0o755;
  dir

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> try rm_rf dir with _ -> ()) (fun () -> f dir)

(* The daemon runs in a forked child (as in production); [Server.fault_for]
   and [Server.delay_for] set before the fork are inherited by it.
   [Unix._exit] keeps the child away from alcotest's exit machinery. *)
let start_server ?cache_dir ?request_timeout ?(jobs = 1) ?max_inflight
    ?client_queue sock =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      (try
         let d = Server.default_config ~sock in
         Server.serve
           {
             d with
             Server.cache_dir;
             jobs;
             request_timeout;
             quiet = true;
             max_inflight =
               Option.value ~default:d.Server.max_inflight max_inflight;
             client_queue =
               Option.value ~default:d.Server.client_queue client_queue;
           }
       with _ -> ());
      Unix._exit 0
  | pid -> pid

let stop_server pid sock =
  (try Client.with_connection sock Client.shutdown with _ -> ());
  ignore (Unix.waitpid [] pid)

let with_client sock f =
  let c = Client.connect_retry sock in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let with_server ?cache_dir ?request_timeout ?jobs ?max_inflight ?client_queue
    f =
  with_dir (fun base ->
      let sock = Filename.concat base "d.sock" in
      let pid =
        start_server ?cache_dir ?request_timeout ?jobs ?max_inflight
          ?client_queue sock
      in
      Fun.protect ~finally:(fun () -> stop_server pid sock) (fun () -> f sock))

let src_safe =
  "let rec sum k =\n\
  \  if k < 0 then 0\n\
  \  else begin\n\
  \    let s = sum (k - 1) in\n\
  \    s + k\n\
  \  end"

(* All items named: anonymous items get gensym'd names whose stamps
   drift across processes, spoiling byte-for-byte comparisons between
   daemon-produced and direct reports. *)
let src_unsafe = "let a = Array.make 5 0\nlet bad = a.(7)"

(* The observable verdict of a report, rendered; equality here is the
   "byte-identical to one-shot dsolve" acceptance bar. *)
let render (r : Pipeline.report) =
  ( r.Pipeline.safe,
    List.map
      (fun (e : Pipeline.error) ->
        Fmt.str "%a: %s: %s" Liquid_common.Loc.pp e.Pipeline.err_loc
          e.Pipeline.err_reason e.Pipeline.err_goal)
      r.Pipeline.errors,
    List.map
      (fun (x, t) ->
        Fmt.str "%a : %a" Liquid_common.Ident.pp x Liquid_infer.Rtype.pp
          (Liquid_infer.Report.display t))
      r.Pipeline.item_types )

let expect_verified = function
  | Protocol.Verified r -> r
  | Protocol.Rejected e ->
      Alcotest.failf "expected Verified, got [%s] %s" e.Protocol.ve_code
        e.Protocol.ve_message

let expect_rejected code = function
  | Protocol.Rejected e ->
      check_string "error code" code e.Protocol.ve_code;
      e
  | Protocol.Verified _ -> Alcotest.failf "expected Rejected %s" code

(* ------------------------------------------------------------------ *)
(* Round-trips                                                         *)
(* ------------------------------------------------------------------ *)

let test_round_trip () =
  with_server (fun sock ->
      with_client sock (fun c ->
          let replies =
            Client.verify c
              [
                Protocol.request ~name:"sum.ml" src_safe;
                Protocol.request ~name:"bad.ml" src_unsafe;
              ]
          in
          match replies with
          | [ r_safe; r_unsafe ] ->
              let direct_safe =
                Pipeline.verify_string ~name:"sum.ml" src_safe
              in
              let direct_unsafe =
                Pipeline.verify_string ~name:"bad.ml" src_unsafe
              in
              check_bool "safe program verdict matches direct run" true
                (render (expect_verified r_safe) = render direct_safe);
              check_bool "unsafe program verdict matches direct run" true
                (render (expect_verified r_unsafe) = render direct_unsafe)
          | rs -> Alcotest.failf "expected 2 replies, got %d" (List.length rs)))

let test_structured_errors () =
  with_server (fun sock ->
      with_client sock (fun c ->
          (* Replies arrive in request order, failures in place. *)
          let replies =
            Client.verify c
              [
                Protocol.request ~name:"broken.ml" "let x = (in in";
                Protocol.request ~name:"ok.ml" src_safe;
                Protocol.request ~name:"badqual.ml" ~qual_text:"qualif ((("
                  src_safe;
                Protocol.request ~name:"badspec.ml" ~spec_text:"val x : (("
                  src_safe;
              ]
          in
          (match replies with
          | [ r1; r2; r3; r4 ] ->
              ignore (expect_rejected "E_SOURCE" r1);
              check_bool "healthy neighbour unaffected" true
                (expect_verified r2).Pipeline.safe;
              ignore (expect_rejected "E_QUALIFIER" r3);
              ignore (expect_rejected "E_SPEC" r4)
          | rs -> Alcotest.failf "expected 4 replies, got %d" (List.length rs));
          (* The daemon is still serving. *)
          let s = Client.stats c in
          check_int "all programs accounted" 4 s.Protocol.sv_programs;
          check_int "three failures counted" 3 s.Protocol.sv_failures))

(* ------------------------------------------------------------------ *)
(* Fault isolation                                                     *)
(* ------------------------------------------------------------------ *)

let with_fault_for hook f =
  Server.fault_for := hook;
  Fun.protect ~finally:(fun () -> Server.fault_for := fun _ -> None) f

(* Deterministic slow solves: the hook (inherited across the daemon
   fork) sleeps inside the worker, holding the named program in flight
   long enough for coalescing/backpressure windows to be observable. *)
let with_delay_for hook f =
  Server.delay_for := hook;
  Fun.protect ~finally:(fun () -> Server.delay_for := fun _ -> None) f

let test_crashed_worker () =
  with_fault_for
    (fun name -> if name = "crashme.ml" then Some Scheduler.Crash else None)
    (fun () ->
      with_server (fun sock ->
          with_client sock (fun c ->
              let replies =
                Client.verify c
                  [
                    Protocol.request ~name:"crashme.ml" src_safe;
                    Protocol.request ~name:"ok.ml" src_safe;
                  ]
              in
              (match replies with
              | [ r1; r2 ] ->
                  ignore (expect_rejected "E_CRASH" r1);
                  check_bool "other program in the batch still verified" true
                    (expect_verified r2).Pipeline.safe
              | rs ->
                  Alcotest.failf "expected 2 replies, got %d" (List.length rs));
              (* The daemon survived its worker: a follow-up request on
                 the same connection succeeds. *)
              let again =
                Client.verify c [ Protocol.request ~name:"after.ml" src_safe ]
              in
              check_bool "daemon keeps serving after a crash" true
                (expect_verified (List.hd again)).Pipeline.safe)))

let test_hung_worker () =
  with_fault_for
    (fun name -> if name = "hangme.ml" then Some Scheduler.Hang else None)
    (fun () ->
      with_server ~request_timeout:0.3 (fun sock ->
          with_client sock (fun c ->
              let replies =
                Client.verify c [ Protocol.request ~name:"hangme.ml" src_safe ]
              in
              ignore (expect_rejected "E_TIMEOUT" (List.hd replies));
              let again =
                Client.verify c [ Protocol.request ~name:"after.ml" src_safe ]
              in
              check_bool "daemon keeps serving after a timeout" true
                (expect_verified (List.hd again)).Pipeline.safe)))

(* ------------------------------------------------------------------ *)
(* Handshake                                                           *)
(* ------------------------------------------------------------------ *)

let test_version_mismatch () =
  with_server (fun sock ->
      (* Make sure the daemon is up first. *)
      with_client sock (fun c -> ignore (Client.stats c));
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX sock);
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      Protocol.send_request oc
        (Protocol.Hello { version = 999; stamp = Protocol.build_stamp });
      (match Protocol.recv_reply ic with
      | Protocol.Protocol_error _ -> ()
      | _ -> Alcotest.fail "version mismatch should be refused");
      close_out_noerr oc;
      (* And the daemon shrugs it off. *)
      with_client sock (fun c ->
          let replies =
            Client.verify c [ Protocol.request ~name:"ok.ml" src_safe ]
          in
          check_bool "daemon serves after a refused handshake" true
            (expect_verified (List.hd replies)).Pipeline.safe))

(* ------------------------------------------------------------------ *)
(* Socket-liveness probe                                               *)
(* ------------------------------------------------------------------ *)

let test_socket_liveness () =
  with_dir (fun base ->
      let sock = Filename.concat base "d.sock" in
      check_bool "absent path is not in use" false (Server.socket_in_use sock);
      (* A stale socket file: bound once by a process that is gone. *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX sock);
      Unix.close fd;
      check_bool "socket file without a listener is not in use" false
        (Server.socket_in_use sock);
      (* [serve] replaces such a leftover (exercised daily by every
         daemon restart); here probe only, and hand the path to a real
         daemon. *)
      Sys.remove sock;
      let pid = start_server sock in
      Fun.protect
        ~finally:(fun () -> stop_server pid sock)
        (fun () ->
          with_client sock (fun c -> ignore (Client.stats c));
          check_bool "live daemon's socket is in use" true
            (Server.socket_in_use sock);
          (* A second daemon on the same path must refuse to start
             rather than unlink the socket out from under the first. *)
          flush stdout;
          flush stderr;
          (match Unix.fork () with
          | 0 ->
              let code =
                try
                  Server.serve
                    {
                      (Server.default_config ~sock) with
                      Server.request_timeout = None;
                      quiet = true;
                    };
                  1
                with
                | Failure _ -> 0
                | _ -> 1
              in
              Unix._exit code
          | pid2 ->
              let _, status = Unix.waitpid [] pid2 in
              check_bool "second daemon refuses to start" true
                (status = Unix.WEXITED 0));
          (* The first daemon is unharmed and still serving. *)
          with_client sock (fun c ->
              let replies =
                Client.verify c [ Protocol.request ~name:"ok.ml" src_safe ]
              in
              check_bool "original daemon still serves" true
                (expect_verified (List.hd replies)).Pipeline.safe)))

(* ------------------------------------------------------------------ *)
(* Concurrent clients                                                  *)
(* ------------------------------------------------------------------ *)

let test_concurrent_clients () =
  with_server (fun sock ->
      with_client sock (fun c -> ignore (Client.stats c));
      flush stdout;
      flush stderr;
      let kids =
        List.init 4 (fun i ->
            match Unix.fork () with
            | 0 ->
                let status =
                  try
                    with_client sock (fun c ->
                        let name = Printf.sprintf "client%d.ml" i in
                        match
                          Client.verify c [ Protocol.request ~name src_safe ]
                        with
                        | [ Protocol.Verified r ] when r.Pipeline.safe -> 0
                        | _ -> 1)
                  with _ -> 2
                in
                Unix._exit status
            | pid -> pid)
      in
      List.iter
        (fun pid ->
          match Unix.waitpid [] pid with
          | _, Unix.WEXITED 0 -> ()
          | _, Unix.WEXITED n ->
              Alcotest.failf "concurrent client exited with %d" n
          | _ -> Alcotest.fail "concurrent client killed")
        kids;
      with_client sock (fun c ->
          check_int "all four client programs served" 4
            (Client.stats c).Protocol.sv_programs))

(* ------------------------------------------------------------------ *)
(* Warmth: memory hits, then persistent-cache hits across a restart    *)
(* ------------------------------------------------------------------ *)

let test_memo_and_disk_hits () =
  with_dir (fun base ->
      let sock = Filename.concat base "d.sock" in
      let cache = Filename.concat base "cache" in
      let request = Protocol.request ~name:"sum.ml" src_safe in
      let pid = start_server ~cache_dir:cache sock in
      let first =
        Fun.protect
          ~finally:(fun () -> stop_server pid sock)
          (fun () ->
            with_client sock (fun c ->
                let cold = expect_verified (List.hd (Client.verify c [ request ])) in
                let warm = expect_verified (List.hd (Client.verify c [ request ])) in
                check_bool "warm in-memory reply identical" true
                  (render cold = render warm);
                let s = Client.stats c in
                check_int "one cold solve" 1 s.Protocol.sv_cold;
                check_int "one memory hit" 1 s.Protocol.sv_mem_hits;
                check_int "no disk hit yet" 0 s.Protocol.sv_disk_hits;
                cold))
      in
      (* A fresh daemon has an empty memo but the same disk cache. *)
      let pid = start_server ~cache_dir:cache sock in
      Fun.protect
        ~finally:(fun () -> stop_server pid sock)
        (fun () ->
          with_client sock (fun c ->
              let served = expect_verified (List.hd (Client.verify c [ request ])) in
              check_bool "restarted daemon serves from disk, identically" true
                (render first = render served);
              check_int "report marked as a persistent-cache hit" 1
                served.Pipeline.stats.Pipeline.n_pcache_hits;
              let s = Client.stats c in
              check_int "no cold solve after restart" 0 s.Protocol.sv_cold;
              check_int "one disk hit" 1 s.Protocol.sv_disk_hits)))

(* The acceptance bar, end to end: the whole benchmark suite through a
   warm daemon is verdict-identical to direct in-process verification,
   with a non-zero persistent-cache hit rate after a restart. *)
let test_suite_warm_equals_cold () =
  with_dir (fun base ->
      let sock = Filename.concat base "d.sock" in
      let cache = Filename.concat base "cache" in
      let direct =
        List.map
          (fun (b : Programs.benchmark) ->
            (b.Programs.name, render (Runner.verify ~jobs:1 b).Runner.report))
          Programs.all
      in
      let batch =
        List.map
          (fun (b : Programs.benchmark) ->
            Protocol.request ~qual_text:b.Programs.extra_qualifiers ~mine:false
              ~name:b.Programs.name b.Programs.source)
          Programs.all
      in
      let renders replies =
        List.map2
          (fun (b : Programs.benchmark) reply ->
            (b.Programs.name, render (expect_verified reply)))
          Programs.all replies
      in
      let pid = start_server ~cache_dir:cache sock in
      let cold =
        Fun.protect
          ~finally:(fun () -> stop_server pid sock)
          (fun () -> with_client sock (fun c -> renders (Client.verify c batch)))
      in
      check_bool "cold daemon pass matches direct verification" true
        (cold = direct);
      let pid = start_server ~cache_dir:cache sock in
      Fun.protect
        ~finally:(fun () -> stop_server pid sock)
        (fun () ->
          with_client sock (fun c ->
              let warm = renders (Client.verify c batch) in
              check_bool "warm daemon pass matches direct verification" true
                (warm = direct);
              let s = Client.stats c in
              check_bool "persistent-cache hit rate is positive" true
                (s.Protocol.sv_disk_hits > 0);
              check_int "warm pass never solves cold" 0 s.Protocol.sv_cold)))

(* ------------------------------------------------------------------ *)
(* Multi-tenancy: coalescing, backpressure, stall isolation, drain     *)
(* ------------------------------------------------------------------ *)

(* Two clients racing the same program: one cold solve, two identical
   replies, and the stats say so. *)
let test_coalescing () =
  with_delay_for
    (fun name -> if name = "dup.ml" then Some 0.5 else None)
    (fun () ->
      with_server (fun sock ->
          let c1 = Client.connect_retry sock in
          let c2 = Client.connect_retry sock in
          Fun.protect
            ~finally:(fun () ->
              Client.close c1;
              Client.close c2)
            (fun () ->
              let req = Protocol.request ~name:"dup.ml" src_safe in
              Client.post c1 [ req ];
              Client.post c2 [ req ];
              let r1 = expect_verified (List.hd (Client.collect c1)) in
              let r2 = expect_verified (List.hd (Client.collect c2)) in
              check_bool "coalesced reply identical to the solved one" true
                (render r1 = render r2);
              let s = Client.stats c1 in
              check_int "exactly one cold solve for two requests" 1
                s.Protocol.sv_cold;
              check_int "the other request coalesced onto it" 1
                s.Protocol.sv_coalesced;
              check_int "no memo hit involved" 0 s.Protocol.sv_mem_hits)))

(* The global in-flight cap: with room for 2, a batch of 4 distinct slow
   programs yields 2 solves and 2 E_OVERLOAD sheds — deterministically,
   since the first two are still in flight when the rest arrive. *)
let test_overload_shed () =
  with_delay_for
    (fun name ->
      if String.length name >= 4 && String.sub name 0 4 = "slow" then Some 0.4
      else None)
    (fun () ->
      with_server ~max_inflight:2 (fun sock ->
          with_client sock (fun c ->
              let reqs =
                List.init 4 (fun i ->
                    Protocol.request
                      ~name:(Printf.sprintf "slow%d.ml" i)
                      src_safe)
              in
              match Client.verify c reqs with
              | [ r1; r2; r3; r4 ] ->
                  check_bool "first admitted" true
                    (expect_verified r1).Pipeline.safe;
                  check_bool "second admitted" true
                    (expect_verified r2).Pipeline.safe;
                  ignore (expect_rejected "E_OVERLOAD" r3);
                  ignore (expect_rejected "E_OVERLOAD" r4);
                  let s = Client.stats c in
                  check_int "two programs shed" 2 s.Protocol.sv_shed;
                  check_int "sheds counted as failures" 2
                    s.Protocol.sv_failures;
                  check_int "two cold solves" 2 s.Protocol.sv_cold
              | rs ->
                  Alcotest.failf "expected 4 replies, got %d" (List.length rs))))

(* The per-client queue bound (fairness backstop): with one worker and a
   queue of 1, a burst of 3 slow programs gets one running, one queued,
   and the third shed — the client cannot monopolize the backlog. *)
let test_client_queue_shed () =
  with_delay_for
    (fun name ->
      if String.length name >= 4 && String.sub name 0 4 = "slow" then Some 0.4
      else None)
    (fun () ->
      with_server ~client_queue:1 (fun sock ->
          with_client sock (fun c ->
              let reqs =
                List.init 3 (fun i ->
                    Protocol.request
                      ~name:(Printf.sprintf "slow%d.ml" i)
                      src_safe)
              in
              match Client.verify c reqs with
              | [ r1; r2; r3 ] ->
                  check_bool "running program verified" true
                    (expect_verified r1).Pipeline.safe;
                  check_bool "queued program verified" true
                    (expect_verified r2).Pipeline.safe;
                  ignore (expect_rejected "E_OVERLOAD" r3);
                  check_int "one program shed" 1
                    (Client.stats c).Protocol.sv_shed
              | rs ->
                  Alcotest.failf "expected 3 replies, got %d" (List.length rs))))

(* A client that sends half a frame and stalls must cost the daemon
   nothing: healthy clients connected after it are still served.  (The
   pre-reactor daemon served connections sequentially, so this exact
   scenario used to wedge it.) *)
let test_stalled_client () =
  with_server (fun sock ->
      with_client sock (fun c -> ignore (Client.stats c));
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX sock);
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          Protocol.send_request oc
            (Protocol.Hello
               { version = Protocol.version; stamp = Protocol.build_stamp });
          (match Protocol.recv_reply ic with
          | Protocol.Hello_ok _ -> ()
          | _ -> Alcotest.fail "stalling client's handshake failed");
          (* A header promising 4096 bytes, then silence. *)
          let partial = Bytes.of_string "\000\000\016\000stuck" in
          ignore (Unix.write fd partial 0 (Bytes.length partial) : int);
          with_client sock (fun c ->
              let replies =
                Client.verify c [ Protocol.request ~name:"ok.ml" src_safe ]
              in
              check_bool "healthy client served past a stalled one" true
                (expect_verified (List.hd replies)).Pipeline.safe)))

(* Replies leave each connection in request order even when batches
   finish out of order inside the daemon (two workers: the second, fast
   batch completes while the first is still sleeping). *)
let test_pipelined_order () =
  with_delay_for
    (fun name -> if name = "slowbatch.ml" then Some 0.5 else None)
    (fun () ->
      with_server ~jobs:2 (fun sock ->
          with_client sock (fun c ->
              Client.post c [ Protocol.request ~name:"slowbatch.ml" src_safe ];
              Client.post c [ Protocol.request ~name:"fast.ml" src_unsafe ];
              let first = expect_verified (List.hd (Client.collect c)) in
              let second = expect_verified (List.hd (Client.collect c)) in
              check_bool "first reply is the slow batch" true
                first.Pipeline.safe;
              check_bool "second reply is the fast batch" false
                second.Pipeline.safe)))

(* Shutdown drains: a solve in flight when Shutdown arrives still
   completes and its reply is flushed before the daemon exits. *)
let test_graceful_drain () =
  with_delay_for
    (fun name -> if name = "drain.ml" then Some 0.5 else None)
    (fun () ->
      with_dir (fun base ->
          let sock = Filename.concat base "d.sock" in
          let pid = start_server sock in
          let c1 = Client.connect_retry sock in
          Fun.protect
            ~finally:(fun () -> Client.close c1)
            (fun () ->
              Client.post c1 [ Protocol.request ~name:"drain.ml" src_safe ];
              (* Let the daemon pick the solve up before asking it to
                 drain. *)
              Unix.sleepf 0.1;
              with_client sock Client.shutdown;
              let r = expect_verified (List.hd (Client.collect c1)) in
              check_bool "in-flight solve answered through the drain" true
                r.Pipeline.safe);
          ignore (Unix.waitpid [] pid)))

(* The connect-retry schedule, as pure arithmetic: equal-jitter delays
   sit in [c/2, c] of an exponentially growing, capped ceiling, are
   reproducible per seed, and differ across seeds. *)
let test_backoff_schedule () =
  let base = 0.1 and cap = 2.0 in
  let delays seed = List.init 10 (Client.backoff_delay ~base ~cap ~seed) in
  let d42 = delays 42 in
  List.iteri
    (fun k d ->
      let ceiling = Float.min cap (base *. Float.pow 2. (float_of_int k)) in
      check_bool "delay at least half the ceiling" true
        (d >= (ceiling /. 2.) -. 1e-9);
      check_bool "delay at most the ceiling" true (d <= ceiling +. 1e-9))
    d42;
  check_bool "ceiling reaches the cap" true
    (List.nth d42 9 >= (cap /. 2.) -. 1e-9);
  check_bool "deterministic for a fixed seed" true (delays 42 = d42);
  check_bool "different seeds de-synchronize the herd" true (delays 7 <> d42)

let tests =
  let tc name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  [
    tc "request/response round-trip" test_round_trip;
    tc "bad inputs get structured errors" test_structured_errors;
    tc "crashed worker leaves the daemon serving" test_crashed_worker;
    tc "hung worker is timed out, daemon survives" test_hung_worker;
    tc "handshake refuses a version mismatch" test_version_mismatch;
    tc "socket probe: stale files yield, live daemons keep their socket"
      test_socket_liveness;
    tc "concurrent clients are all served" test_concurrent_clients;
    tc "memory hits, then disk hits across a restart" test_memo_and_disk_hits;
    tc "identical in-flight requests coalesce onto one solve"
      test_coalescing;
    tc "global in-flight cap sheds with E_OVERLOAD" test_overload_shed;
    tc "per-client queue bound sheds with E_OVERLOAD" test_client_queue_shed;
    tc "a stalled client never blocks healthy ones" test_stalled_client;
    tc "pipelined batches reply in request order" test_pipelined_order;
    tc "shutdown drains in-flight solves" test_graceful_drain;
    tc "connect backoff is jittered, exponential, capped"
      test_backoff_schedule;
    slow "suite through warm daemon equals direct runs"
      test_suite_warm_equals_cold;
  ]
