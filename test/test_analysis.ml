(* Tests for the semantic-lint pass (lib/analysis): one positive and one
   negative program per warning code, severity/report plumbing, and the
   assertion that the benchmark suite is lint-clean. *)

open Liquid_analysis

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let lints ?(quals = Liquid_infer.Qualifier.defaults) src =
  (Liquid_driver.Pipeline.verify_string
     ~options:
       {
         Liquid_driver.Pipeline.default with
         Liquid_driver.Pipeline.quals;
         lint = true;
       }
     src)
    .Liquid_driver.Pipeline.lints

let codes diags = List.map (fun d -> Diagnostic.code_name d.Diagnostic.code) diags
let with_code c diags = List.filter (fun d -> d.Diagnostic.code = c) diags

(* Default qualifiers routinely die on tiny programs, producing L005 info
   notes; warning-severity diagnostics are what the negative tests assert
   against. *)
let warns diags = Lint.warnings diags

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let pp_diags diags =
  String.concat "; " (List.map (fun d -> Fmt.str "%a" Diagnostic.pp d) diags)

(* ------------------------------------------------------------------ *)
(* L001 unreachable branch / L002 trivial condition                    *)
(* ------------------------------------------------------------------ *)

(* [f] is called with both signs so κ_x decides nothing about x; the
   inner condition repeats the outer guard, so its else-branch is dead. *)
let test_unreachable_positive () =
  let diags =
    lints
      "let f x = if x > 0 then (if x > 0 then 1 else 2) else 0\n\
       let _ = f 5\n\
       let _ = f (0 - 5)"
  in
  let l1 = with_code Diagnostic.Unreachable_branch diags in
  let l2 = with_code Diagnostic.Trivial_condition diags in
  check_int "one unreachable branch" 1 (List.length l1);
  check_int "one trivial condition" 1 (List.length l2);
  check_bool "message names the else-branch" true
    (contains (List.hd l1).Diagnostic.message "else");
  check_bool "always-true reported" true
    (contains (List.hd l2).Diagnostic.message "always true");
  (* locations point into the inner conditional on line 1 *)
  List.iter
    (fun d ->
      check_int "diagnostic on line 1" 1
        d.Diagnostic.loc.Liquid_common.Loc.start_pos.Liquid_common.Loc.line)
    (l1 @ l2)

let test_contradiction_positive () =
  let diags =
    lints
      "let f x = if x > 0 then (if x < 0 then 1 else 2) else 0\n\
       let _ = f 5\n\
       let _ = f (0 - 5)"
  in
  let l1 = with_code Diagnostic.Unreachable_branch diags in
  let l2 = with_code Diagnostic.Trivial_condition diags in
  check_int "one unreachable branch" 1 (List.length l1);
  check_int "one trivial condition" 1 (List.length l2);
  check_bool "then-branch is the dead one" true
    (contains (List.hd l1).Diagnostic.message "then");
  check_bool "always-false reported" true
    (contains (List.hd l2).Diagnostic.message "always false")

let test_reachability_negative () =
  let diags =
    lints "let f x = if x > 0 then 1 else 2\nlet _ = f 5\nlet _ = f (0 - 5)"
  in
  check_bool
    (Fmt.str "no warnings on live branches (got: %s)" (pp_diags (warns diags)))
    true (warns diags = [])

(* Diagnostics inside an already-dead branch are suppressed: one root
   cause, one pair of reports. *)
let test_cascade_suppression () =
  let diags =
    lints
      "let f x = if x >= 0 then (if x < 0 then (if x = 1 then 1 else 2) else \
       3) else 0\n\
       let _ = f 5\n\
       let _ = f (0 - 5)"
  in
  check_int "single unreachable branch" 1
    (List.length (with_code Diagnostic.Unreachable_branch diags));
  check_int "single trivial condition" 1
    (List.length (with_code Diagnostic.Trivial_condition diags))

(* The parser desugars [&&]/[||] into conditionals with boolean-constant
   branches; those must not be reported as trivial. *)
let test_desugared_connectives_not_flagged () =
  let diags =
    lints
      "let f x y = if x > 0 && y > 0 then x + y else 0\n\
       let _ = f 1 2\n\
       let _ = f (0 - 1) (0 - 2)"
  in
  check_bool
    (Fmt.str "no warnings from && desugaring (got: %s)"
       (pp_diags (warns diags)))
    true (warns diags = [])

(* ------------------------------------------------------------------ *)
(* L003 unused binding / L004 shadowed binding                         *)
(* ------------------------------------------------------------------ *)

let test_unused_positive () =
  let diags = lints "let f x = let y = x + 1 in x\nlet _ = f 1" in
  let l3 = with_code Diagnostic.Unused_binding diags in
  check_int "one unused binding" 1 (List.length l3);
  check_bool "names the binding" true
    (contains (List.hd l3).Diagnostic.message "y")

let test_unused_negative () =
  check_bool "used binding is clean" true
    (warns (lints "let f x = let y = x + 1 in y\nlet _ = f 1") = []);
  check_bool "underscore prefix opts out" true
    (warns (lints "let f x = let _y = x + 1 in x\nlet _ = f 1") = []);
  check_bool "recursive use counts" true
    (with_code Diagnostic.Unused_binding
       (lints
          "let f n =\n\
          \  let rec go i = if i < n then go (i + 1) else i in\n\
          \  go 0\n\
           let _ = f 3")
    = []);
  check_bool "sequencing temporaries are exempt" true
    (with_code Diagnostic.Unused_binding
       (lints
          "let a = Array.make 2 0\nlet f x = begin a.(0) <- x; a.(0) end\n\
           let _ = f 1")
    = [])

let test_shadowed_positive () =
  let diags = lints "let f x = let x = x + 1 in x\nlet _ = f 1" in
  let l4 = with_code Diagnostic.Shadowed_binding diags in
  check_int "one shadowed binding" 1 (List.length l4);
  check_bool "names the binding" true
    (contains (List.hd l4).Diagnostic.message "x")

let test_shadowed_negative () =
  check_bool "distinct names are clean" true
    (warns (lints "let f x = let y = x + 1 in y\nlet _ = f 1") = []);
  check_bool "redefinition across top-level items is not shadowing" true
    (warns (lints "let x = 1\nlet x = 2\nlet _ = assert (x = 2)") = [])

(* ------------------------------------------------------------------ *)
(* L005 dead qualifier                                                 *)
(* ------------------------------------------------------------------ *)

let dead_qual_src =
  "let bump n = n + 1\nlet main = let r = bump 10 in assert (r > 0)"

let test_dead_qualifier_positive () =
  let quals =
    Liquid_infer.Qualifier.parse_string
      "qualif Pos(v) : v > 0\nqualif Neg(v) : v < 0"
  in
  let diags = lints ~quals dead_qual_src in
  let l5 = with_code Diagnostic.Dead_qualifier diags in
  check_int "one dead qualifier" 1 (List.length l5);
  let d = List.hd l5 in
  check_bool "Neg is the dead one" true (contains d.Diagnostic.message "Neg");
  check_bool "info severity" true (d.Diagnostic.severity = Diagnostic.Info);
  check_bool "does not gate --warn-error" true (Lint.warnings diags = [])

let test_dead_qualifier_negative () =
  let quals = Liquid_infer.Qualifier.parse_string "qualif Pos(v) : v > 0" in
  let diags = lints ~quals dead_qual_src in
  check_bool "surviving qualifier not reported" true
    (with_code Diagnostic.Dead_qualifier diags = [])

(* ------------------------------------------------------------------ *)
(* Diagnostic plumbing                                                 *)
(* ------------------------------------------------------------------ *)

let test_codes_and_severities () =
  Alcotest.(check (list string))
    "stable code names"
    [ "L001"; "L002"; "L003"; "L004"; "L005" ]
    (List.map Diagnostic.code_name
       Diagnostic.
         [
           Unreachable_branch;
           Trivial_condition;
           Unused_binding;
           Shadowed_binding;
           Dead_qualifier;
         ]);
  check_bool "only L005 defaults to info" true
    (List.map Diagnostic.default_severity
       Diagnostic.
         [
           Unreachable_branch;
           Trivial_condition;
           Unused_binding;
           Shadowed_binding;
           Dead_qualifier;
         ]
    = Diagnostic.[ Warning; Warning; Warning; Warning; Info ])

let test_report_order () =
  (* diagnostics come out sorted by source position *)
  let diags =
    warns
      (lints
         "let f x =\n\
         \  let u = x + 1 in\n\
         \  let v = x + 2 in\n\
         \  x\n\
          let _ = f 1")
  in
  let lines =
    List.map
      (fun d -> d.Diagnostic.loc.Liquid_common.Loc.start_pos.Liquid_common.Loc.line)
      diags
  in
  check_int "two unused bindings" 2 (List.length diags);
  check_bool "sorted by position" true (lines = List.sort compare lines)

let test_json_roundtrip_shape () =
  let r =
    Liquid_driver.Pipeline.verify_string
      ~options:
        { Liquid_driver.Pipeline.default with Liquid_driver.Pipeline.lint = true }
      "let f x = let y = x in x\nlet _ = f 1"
  in
  let s =
    Fmt.str "%a" Json.pp (Liquid_driver.Pipeline.json_of_report ~file:"t.ml" r)
  in
  check_bool "mentions code" true (contains s "\"L003\"");
  check_bool "mentions severity" true (contains s "\"warning\"");
  check_bool "mentions file key" true (contains s "\"file\"");
  check_bool "escapes cleanly / no newlines inside strings" true
    (not (contains s "\n\""))

let test_json_surrogate_pairs () =
  (* A \uD8xx\uDCxx pair is one astral code point, not two 3-byte
     blobs: U+1F600 is \uD83D\uDE00 and decodes to 4 UTF-8 bytes. *)
  (match Json.of_string "\"\\ud83d\\ude00\"" with
  | Json.String s ->
      check_bool "pair joins to 4-byte UTF-8" true (s = "\xf0\x9f\x98\x80")
  | _ -> Alcotest.fail "expected a string");
  (* Case-insensitive hex, BMP scalars unaffected. *)
  (match Json.of_string "\"\\uD83D\\uDE00 \\u00e9\"" with
  | Json.String s ->
      check_bool "mixed escapes decode" true (s = "\xf0\x9f\x98\x80 \xc3\xa9")
  | _ -> Alcotest.fail "expected a string");
  let rejects input =
    match Json.of_string input with
    | exception Json.Parse_error _ -> true
    | _ -> false
  in
  check_bool "lone high surrogate rejected" true (rejects "\"\\ud83d\"");
  check_bool "lone low surrogate rejected" true (rejects "\"\\ude00\"");
  check_bool "high surrogate before a non-surrogate rejected" true
    (rejects "\"\\ud83d\\u0041\"");
  check_bool "high surrogate before a plain char rejected" true
    (rejects "\"\\ud83dZ\"");
  check_bool "bad hex rejected" true (rejects "\"\\u12g4\"")

let test_lint_off_by_default () =
  let r = Liquid_driver.Pipeline.verify_string "let f x = let y = x in x" in
  check_bool "no lints unless requested" true
    (r.Liquid_driver.Pipeline.lints = []);
  check_int "no diagnostics counted" 0
    r.Liquid_driver.Pipeline.stats.Liquid_driver.Pipeline.n_diagnostics

(* ------------------------------------------------------------------ *)
(* The benchmark suite is lint-clean                                   *)
(* ------------------------------------------------------------------ *)

(* Warning-severity diagnostics expected on suite programs.  Anything
   not listed here fails the test; programs absent from the list must be
   fully lint-clean.  Each entry below is a {e true} positive: a
   defensive range/sign check that the inferred refinements prove
   redundant (e.g. gauss re-checks [p < n] although [find_pivot]'s
   result type already carries it; queue re-checks [0 < cap] under the
   guard [count < cap] with [count >= 0]).  The checks are kept in the
   benchmark sources because they mirror the paper's original programs. *)
let expected_suite_warnings : (string * string list) list =
  [
    ("gauss", [ "L002"; "L001" ]);
    ("queue", [ "L002"; "L001"; "L002"; "L002"; "L001"; "L001" ]);
    ("pascal", [ "L002"; "L001" ]);
    ("sieve", [ "L002"; "L001" ]);
    ("selsort", [ "L002"; "L001" ]);
    ("fibmemo", [ "L002"; "L001"; "L002"; "L001" ]);
  ]

let check_suite_clean (b : Liquid_suite.Programs.benchmark) () =
  let row = Liquid_suite.Runner.verify ~lint:true b in
  let warnings =
    Lint.warnings row.Liquid_suite.Runner.report.Liquid_driver.Pipeline.lints
  in
  let expected =
    match List.assoc_opt b.Liquid_suite.Programs.name expected_suite_warnings with
    | Some cs -> cs
    | None -> []
  in
  Alcotest.(check (list string))
    (Fmt.str "%s lint warnings (got: %s)" b.Liquid_suite.Programs.name
       (pp_diags warnings))
    expected (codes warnings)

let suite_clean_tests =
  List.map
    (fun (b : Liquid_suite.Programs.benchmark) ->
      Alcotest.test_case
        (Fmt.str "suite %s lint-clean" b.Liquid_suite.Programs.name)
        `Slow (check_suite_clean b))
    (Liquid_suite.Programs.all @ Liquid_suite.Extended.all)

(* ------------------------------------------------------------------ *)

let tests =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    tc "L001/L002 tautology positive" test_unreachable_positive;
    tc "L001/L002 contradiction positive" test_contradiction_positive;
    tc "L001/L002 negative" test_reachability_negative;
    tc "cascade suppression" test_cascade_suppression;
    tc "desugared && not flagged" test_desugared_connectives_not_flagged;
    tc "L003 positive" test_unused_positive;
    tc "L003 negative" test_unused_negative;
    tc "L004 positive" test_shadowed_positive;
    tc "L004 negative" test_shadowed_negative;
    tc "L005 positive" test_dead_qualifier_positive;
    tc "L005 negative" test_dead_qualifier_negative;
    tc "codes and severities" test_codes_and_severities;
    tc "report order" test_report_order;
    tc "json shape" test_json_roundtrip_shape;
    tc "json surrogate pairs" test_json_surrogate_pairs;
    tc "lint off by default" test_lint_off_by_default;
  ]
  @ suite_clean_tests
