(* Tests for the SMT substrate: rationals, simplex, LIA, congruence
   closure, and the combined validity checker. *)

open Liquid_logic
open Liquid_smt
let tlen t = Term.app Symbol.len [ t ]

let x = Term.var "x" Sort.Int
let y = Term.var "y" Sort.Int
let z = Term.var "z" Sort.Int
let a_obj = Term.var "a" Sort.Obj
let b_obj = Term.var "b" Sort.Obj
let i n = Term.int n

let valid hyps goal = Solver.check_valid hyps goal = Solver.Valid
let invalid hyps goal = Solver.check_valid hyps goal = Solver.Invalid

let check_bool name expected actual = Alcotest.(check bool) name expected actual

(* ------------------------------------------------------------------ *)
(* Rationals                                                           *)
(* ------------------------------------------------------------------ *)

let test_rat_basic () =
  let open Rat in
  check_bool "1/2 + 1/3 = 5/6" true (equal (add (make 1 2) (make 1 3)) (make 5 6));
  check_bool "2/4 normalizes" true (equal (make 2 4) (make 1 2));
  check_bool "-1/-2 normalizes" true (equal (make (-1) (-2)) (make 1 2));
  check_bool "floor 7/2" true (floor (make 7 2) = 3);
  check_bool "floor -7/2" true (floor (make (-7) 2) = -4);
  check_bool "ceil 7/2" true (ceil (make 7 2) = 4);
  check_bool "ceil -7/2" true (ceil (make (-7) 2) = -3);
  check_bool "compare 1/3 < 1/2" true (lt (make 1 3) (make 1 2));
  check_bool "mul" true (equal (mul (make 2 3) (make 3 4)) (make 1 2));
  check_bool "div" true (equal (div (make 1 2) (make 1 4)) (of_int 2))

let test_rat_overflow () =
  let big = Rat.of_int max_int in
  check_bool "overflow raises" true
    (try
       ignore (Rat.mul big big);
       false
     with Rat.Overflow -> true)

(* ------------------------------------------------------------------ *)
(* Simplex                                                             *)
(* ------------------------------------------------------------------ *)

let le exp rhs = Simplex.cons exp Simplex.Le rhs
let ge exp rhs = Simplex.cons exp Simplex.Ge rhs
let eq exp rhs = Simplex.cons exp Simplex.Eq rhs

let test_simplex_sat () =
  (* x >= 1, y >= 1, x + y <= 3 *)
  let v0 = Linexp.var 0 and v1 = Linexp.var 1 in
  match
    Simplex.solve ~nvars:2 [ ge v0 Rat.one; ge v1 Rat.one; le (Linexp.add v0 v1) (Rat.of_int 3) ]
  with
  | `Sat m ->
      check_bool "x >= 1" true (Rat.le Rat.one m.(0));
      check_bool "y >= 1" true (Rat.le Rat.one m.(1));
      check_bool "x + y <= 3" true (Rat.le (Rat.add m.(0) m.(1)) (Rat.of_int 3))
  | `Unsat -> Alcotest.fail "expected sat"

let test_simplex_unsat () =
  (* x >= 2, x <= 1 is unsat; also via sums *)
  let v0 = Linexp.var 0 and v1 = Linexp.var 1 in
  (match Simplex.solve ~nvars:1 [ ge v0 (Rat.of_int 2); le v0 Rat.one ] with
  | `Unsat -> ()
  | `Sat _ -> Alcotest.fail "expected unsat (bounds)");
  (* x + y >= 4, x <= 1, y <= 2 *)
  match
    Simplex.solve ~nvars:2
      [ ge (Linexp.add v0 v1) (Rat.of_int 4); le v0 Rat.one; le v1 (Rat.of_int 2) ]
  with
  | `Unsat -> ()
  | `Sat _ -> Alcotest.fail "expected unsat (sum)"

let test_simplex_eq_chain () =
  (* x = y, y = z, x = 5 => model gives z = 5 *)
  let v0 = Linexp.var 0 and v1 = Linexp.var 1 and v2 = Linexp.var 2 in
  match
    Simplex.solve ~nvars:3
      [
        eq (Linexp.sub v0 v1) Rat.zero;
        eq (Linexp.sub v1 v2) Rat.zero;
        eq v0 (Rat.of_int 5);
      ]
  with
  | `Sat m -> check_bool "z = 5" true (Rat.equal m.(2) (Rat.of_int 5))
  | `Unsat -> Alcotest.fail "expected sat"

(* ------------------------------------------------------------------ *)
(* LIA                                                                 *)
(* ------------------------------------------------------------------ *)

let test_lia_integrality () =
  (* 2x = 1 is rationally sat but integrally unsat (gcd test). *)
  let c =
    { Lia.exp = Linexp.var ~coeff:(Rat.of_int 2) 0; op = Lia.Eq; rhs = Rat.one }
  in
  check_bool "2x = 1 unsat over Z" true (Lia.check ~nvars:1 [ c ] = Lia.Unsat)

let test_lia_tightening () =
  (* x < 1 and x > -1 forces x = 0 over Z; adding x != 0 via x >= 1 is unsat *)
  let v0 = Linexp.var 0 in
  let cs =
    [
      { Lia.exp = v0; op = Lia.Lt; rhs = Rat.one };
      { Lia.exp = Linexp.neg v0; op = Lia.Lt; rhs = Rat.one };
      { Lia.exp = Linexp.neg v0; op = Lia.Le; rhs = Rat.of_int (-1) };
    ]
  in
  check_bool "-1 < x < 1 and x >= 1 unsat" true (Lia.check ~nvars:1 cs = Lia.Unsat)

let test_lia_branch () =
  (* 2x + 2y = 3 : rationally sat, integrally unsat after normalization. *)
  let v0 = Linexp.var 0 and v1 = Linexp.var 1 in
  let c =
    {
      Lia.exp = Linexp.add (Linexp.scale (Rat.of_int 2) v0) (Linexp.scale (Rat.of_int 2) v1);
      op = Lia.Eq;
      rhs = Rat.of_int 3;
    }
  in
  check_bool "2x + 2y = 3 unsat over Z" true (Lia.check ~nvars:2 [ c ] = Lia.Unsat)

(* ------------------------------------------------------------------ *)
(* Congruence closure                                                  *)
(* ------------------------------------------------------------------ *)

let test_cc_congruence () =
  let cc = Cc.create () in
  let a = Cc.var cc 0 and b = Cc.var cc 1 in
  let fa = Cc.app cc Symbol.len [ a ] and fb = Cc.app cc Symbol.len [ b ] in
  check_bool "len a != len b initially" false (Cc.equal cc fa fb);
  Cc.assert_eq cc a b;
  check_bool "a = b => len a = len b" true (Cc.equal cc fa fb);
  check_bool "no conflict" true (Cc.ok cc)

let test_cc_transitive () =
  let cc = Cc.create () in
  let a = Cc.var cc 0 and b = Cc.var cc 1 and c = Cc.var cc 2 in
  Cc.assert_eq cc a b;
  Cc.assert_eq cc b c;
  check_bool "a = c by transitivity" true (Cc.equal cc a c)

let test_cc_conflict () =
  let cc = Cc.create () in
  let a = Cc.var cc 0 and b = Cc.var cc 1 in
  Cc.assert_ne cc a b;
  Cc.assert_eq cc a b;
  check_bool "conflict detected" false (Cc.ok cc)

let test_cc_constants () =
  let cc = Cc.create () in
  let c1 = Cc.const cc 1 and c2 = Cc.const cc 2 in
  let a = Cc.var cc 0 in
  Cc.assert_eq cc a c1;
  Cc.assert_eq cc a c2;
  check_bool "1 = 2 conflict" false (Cc.ok cc)

let test_cc_nested () =
  (* a = b => f(f(a)) = f(f(b)) with f = len (arity 1, any sorts ok here) *)
  let cc = Cc.create () in
  let a = Cc.var cc 0 and b = Cc.var cc 1 in
  let f t = Cc.app cc Symbol.len [ t ] in
  let ffa = f (f a) and ffb = f (f b) in
  Cc.assert_eq cc a b;
  check_bool "f(f(a)) = f(f(b))" true (Cc.equal cc ffa ffb)

(* ------------------------------------------------------------------ *)
(* End-to-end validity                                                 *)
(* ------------------------------------------------------------------ *)

let test_valid_arith () =
  check_bool "x <= y /\\ y <= z => x <= z" true
    (valid [ Pred.le x y; Pred.le y z ] (Pred.le x z));
  check_bool "x < y => x <= y - 1 (ints)" true
    (valid [ Pred.lt x y ] (Pred.le x (Term.sub y (i 1))));
  check_bool "x <= y does not imply x < y" true
    (invalid [ Pred.le x y ] (Pred.lt x y));
  check_bool "0 <= x /\\ x < n => 0 <= x+1" true
    (valid [ Pred.le (i 0) x; Pred.lt x y ] (Pred.le (i 0) (Term.add x (i 1))));
  check_bool "x = 2y => x != 3 (parity)" true
    (valid [ Pred.eq x (Term.mul (i 2) y) ] (Pred.ne x (i 3)))

let test_valid_bool_structure () =
  let p = Pred.bvar "p" and q = Pred.bvar "q" in
  check_bool "p /\\ (p => q) |= q" true (valid [ p; Pred.imp p q ] q);
  check_bool "p \\/ q, ~p |= q" true (valid [ Pred.or_ p q; Pred.not_ p ] q);
  check_bool "p does not imply q" true (invalid [ p ] q);
  check_bool "iff works" true
    (valid [ Pred.iff p (Pred.lt x y); Pred.lt x y ] p)

let test_valid_euf () =
  check_bool "a = b => len a = len b" true
    (valid [ Pred.eq a_obj b_obj ] (Pred.eq (tlen a_obj) (tlen b_obj)));
  check_bool "len a = 5 /\\ x < len a => x < 5" true
    (valid
       [ Pred.eq (tlen a_obj) (i 5); Pred.lt x (tlen a_obj) ]
       (Pred.lt x (i 5)));
  check_bool "len a = len b not implied by nothing" true
    (invalid [] (Pred.eq (tlen a_obj) (tlen b_obj)))

let test_valid_combination () =
  (* LIA -> CC propagation: x <= y /\ y <= x => mul(x,z) = mul(y,z) *)
  let mulxz = Term.app Symbol.mul [ x; z ] in
  let mulyz = Term.app Symbol.mul [ y; z ] in
  check_bool "x <= y <= x => mul(x,z) = mul(y,z)" true
    (valid [ Pred.le x y; Pred.le y x ] (Pred.eq mulxz mulyz));
  (* CC -> LIA: a = b /\ len a >= 4 => len b + 1 >= 5 *)
  check_bool "a = b /\\ len a >= 4 => len b + 1 >= 5" true
    (valid
       [ Pred.eq a_obj b_obj; Pred.ge (tlen a_obj) (i 4) ]
       (Pred.ge (Term.add (tlen b_obj) (i 1)) (i 5)))

let test_array_bounds_shape () =
  (* The exact shape of a liquid array-bounds query:
     0 <= i /\ i < len a /\ i+1 <= len a - 1  |=  0 <= i+1 /\ i+1 < len a *)
  let iv = Term.var "i" Sort.Int in
  let la = tlen a_obj in
  check_bool "bounds obligation" true
    (valid
       [ Pred.le (i 0) iv; Pred.lt iv la; Pred.le (Term.add iv (i 1)) (Term.sub la (i 1)) ]
       (Pred.conj [ Pred.le (i 0) (Term.add iv (i 1)); Pred.lt (Term.add iv (i 1)) la ]));
  check_bool "unprovable bounds obligation rejected" true
    (invalid [ Pred.le (i 0) iv ] (Pred.lt iv la))

let test_diseq_split () =
  (* x != y /\ x <= y => x < y (int disequality split) *)
  check_bool "x != y /\\ x <= y => x + 1 <= y" true
    (valid [ Pred.ne x y; Pred.le x y ] (Pred.le (Term.add x (i 1)) y));
  (* 0 <= x <= 1, x != 0 => x = 1 *)
  check_bool "0 <= x <= 1 /\\ x != 0 => x = 1" true
    (valid
       [ Pred.le (i 0) x; Pred.le x (i 1); Pred.ne x (i 0) ]
       (Pred.eq x (i 1)))

let test_cache_and_stats () =
  Solver.clear_cache ();
  Solver.reset_stats ();
  let q () = valid [ Pred.le x y ] (Pred.le x (Term.add y (i 1))) in
  check_bool "first" true (q ());
  check_bool "second" true (q ());
  check_bool "cache hit recorded" true (Solver.stats.cache_hits >= 1);
  check_bool "queries recorded" true (Solver.stats.queries >= 2)

(* Regression: a cache hit on an [Invalid] entry must repopulate
   [last_cex] with the falsifying model stored at miss time — it used to
   leave whatever counterexample the previous (unrelated) query set. *)
let test_cached_invalid_cex () =
  Solver.clear_cache ();
  Solver.reset_stats ();
  let hyps = [ Pred.le (i 0) x ] and goal = Pred.le x (i 5) in
  check_bool "query is invalid" true (invalid hyps goal);
  check_bool "fresh check yields a counterexample" true (!Solver.last_cex <> []);
  let hits0 = Solver.stats.cache_hits in
  Solver.last_cex := [];
  check_bool "still invalid from the cache" true (invalid hyps goal);
  check_bool "second check was a cache hit" true (Solver.stats.cache_hits > hits0);
  check_bool "cache hit repopulates the counterexample" true
    (!Solver.last_cex <> [])

(* The prepared-query interface must agree with [check_valid] and answer
   from the cache on a second probe. *)
let test_prepared_queries () =
  Solver.clear_cache ();
  Solver.reset_stats ();
  let hyps = [ Pred.le x y; Pred.le y z ] and goal = Pred.le x z in
  let p = Solver.prepare hyps goal in
  check_bool "cold probe misses" true (Solver.probe_query p = None);
  check_bool "check decides" true (Solver.check_query p = Solver.Valid);
  check_bool "warm probe answers" true (Solver.probe_query p = Some Solver.Valid);
  check_bool "agrees with check_valid" true (valid hyps goal);
  (* invalid prepared queries restore the counterexample on a warm probe *)
  let bad = Solver.prepare hyps (Pred.lt z x) in
  check_bool "bad goal invalid" true (Solver.check_query bad = Solver.Invalid);
  Solver.last_cex := [];
  check_bool "warm probe invalid" true
    (Solver.probe_query bad = Some Solver.Invalid);
  check_bool "warm probe restores cex" true (!Solver.last_cex <> [])

(* ------------------------------------------------------------------ *)
(* Incremental assertion contexts                                      *)
(* ------------------------------------------------------------------ *)

let test_ctx_push_pop () =
  Solver.with_context (fun c ->
      Solver.ctx_assert c (Pred.le x y);
      check_bool "base consistent" true (Solver.ctx_consistent c);
      Solver.ctx_push c;
      Solver.ctx_assert c (Pred.le y z);
      check_bool "x<=y, y<=z |= x<=z" true
        (Solver.ctx_entails c (Pred.le x z) = Solver.Valid);
      Solver.ctx_push c;
      Solver.ctx_assert c (Pred.le z x);
      check_bool "cycle forces x=z" true
        (Solver.ctx_entails c (Pred.eq x z) = Solver.Valid);
      Solver.ctx_pop c;
      check_bool "after pop, x=z no longer entailed" true
        (Solver.ctx_entails c (Pred.eq x z) = Solver.Invalid);
      Solver.ctx_pop c;
      check_bool "after both pops, x<=z no longer entailed" true
        (Solver.ctx_entails c (Pred.le x z) = Solver.Invalid);
      check_bool "outer assertion survives" true
        (Solver.ctx_entails c (Pred.le x (Term.add y (i 1))) = Solver.Valid))

let test_ctx_pop_empty_raises () =
  Solver.with_context (fun c ->
      check_bool "pop without push raises" true
        (try
           Solver.ctx_pop c;
           false
         with Invalid_argument _ -> true);
      (* pops are balanced, not sticky: a push after the failure works *)
      Solver.ctx_push c;
      Solver.ctx_assert c (Pred.lt x y);
      Solver.ctx_pop c;
      check_bool "context still usable" true (Solver.ctx_consistent c))

let test_ctx_assert_after_pop () =
  Solver.with_context (fun c ->
      Solver.ctx_push c;
      Solver.ctx_assert c (Pred.le x (i 0));
      Solver.ctx_pop c;
      (* the popped x<=0 must be gone: x>=1 alone is consistent *)
      Solver.ctx_assert c (Pred.ge x (i 1));
      check_bool "popped assertion really retracted" true
        (Solver.ctx_consistent c);
      check_bool "assertions list reflects the live frame" true
        (Solver.ctx_assertions c = [ Pred.ge x (i 1) ]);
      (* and contradiction is still detected when actually asserted *)
      Solver.ctx_push c;
      Solver.ctx_assert c (Pred.le x (i 0));
      check_bool "contradiction detected" false (Solver.ctx_consistent c);
      Solver.ctx_pop c;
      check_bool "consistent again after pop" true (Solver.ctx_consistent c))

(* A reused context must decide entailment exactly like a fresh
   [check_valid] over the same hypotheses. *)
let test_ctx_agrees_with_check_valid () =
  let cases =
    [
      ([ Pred.le x y; Pred.le y z ], Pred.le x z);
      ([ Pred.le x y; Pred.le y z ], Pred.lt x z);
      ([ Pred.lt x y ], Pred.le x (Term.sub y (i 1)));
      ([ Pred.le (i 0) x; Pred.lt x y ], Pred.le (i 0) (Term.add x (i 1)));
      ([ Pred.eq (tlen a_obj) (i 5) ], Pred.lt (i 4) (tlen a_obj));
      ([], Pred.eq x x);
      ([], Pred.lt x x);
    ]
  in
  Solver.with_context (fun c ->
      List.iter
        (fun (hyps, goal) ->
          let direct = Solver.check_valid hyps goal in
          Solver.ctx_push c;
          List.iter (Solver.ctx_assert c) hyps;
          let via_ctx = Solver.ctx_entails c goal in
          Solver.ctx_pop c;
          check_bool "context agrees with check_valid" true (direct = via_ctx))
        cases)

(* ------------------------------------------------------------------ *)
(* Property tests: cross-check the solver against brute-force          *)
(* evaluation of random formulas over a small integer domain.          *)
(* ------------------------------------------------------------------ *)

let gen_term vars =
  let open QCheck.Gen in
  fix
    (fun self depth ->
      if depth <= 0 then
        oneof [ map Term.int (int_range (-4) 4); oneofl vars ]
      else
        frequency
          [
            (2, map Term.int (int_range (-4) 4));
            (3, oneofl vars);
            (2, map2 Term.add (self (depth - 1)) (self (depth - 1)));
            (2, map2 Term.sub (self (depth - 1)) (self (depth - 1)));
            (1, map2 (fun c t -> Term.mul (Term.int c) t) (int_range (-3) 3) (self (depth - 1)));
          ])
    2

let gen_pred vars =
  let open QCheck.Gen in
  let atom =
    let* t1 = gen_term vars in
    let* t2 = gen_term vars in
    let* rel = oneofl Pred.[ Eq; Ne; Lt; Le; Gt; Ge ] in
    return (Pred.atom t1 rel t2)
  in
  fix
    (fun self depth ->
      if depth <= 0 then atom
      else
        frequency
          [
            (4, atom);
            (2, map Pred.not_ (self (depth - 1)));
            (2, map2 Pred.and_ (self (depth - 1)) (self (depth - 1)));
            (2, map2 Pred.or_ (self (depth - 1)) (self (depth - 1)));
            (1, map2 Pred.imp (self (depth - 1)) (self (depth - 1)));
          ])
    2

(* Brute-force satisfiability over assignments in [-bound, bound]. *)
let brute_sat vars p ~bound =
  let names =
    List.map
      (fun v ->
        match Term.view v with Term.Var (x, _) -> x | _ -> assert false)
      vars
  in
  let rec go env = function
    | [] -> Pred.eval env Liquid_common.Ident.Map.empty p
    | x :: rest ->
        let found = ref false in
        for v = -bound to bound do
          if not !found then
            if go (Liquid_common.Ident.Map.add x v env) rest then found := true
        done;
        !found
  in
  go Liquid_common.Ident.Map.empty names

let prop_solver_agrees_with_brute_force =
  let vars = [ x; y; z ] in
  QCheck.Test.make ~count:300 ~name:"solver never refutes a brute-force model"
    (QCheck.make (gen_pred vars))
    (fun p ->
      (* If a small model exists, the solver must not report UNSAT.
         (The converse direction needs unbounded search, so we only check
         soundness of UNSAT answers — exactly what liquid inference relies
         on.) *)
      if brute_sat vars p ~bound:4 then Solver.is_sat p else true)

let prop_valid_implications_hold =
  let vars = [ x; y; z ] in
  QCheck.Test.make ~count:300 ~name:"Valid answers are truly valid on small domain"
    (QCheck.make QCheck.Gen.(pair (gen_pred vars) (gen_pred vars)))
    (fun (h, g) ->
      match Solver.check_valid [ h ] g with
      | Solver.Valid ->
          (* No assignment in the small domain may satisfy h /\ ~g. *)
          not (brute_sat vars (Pred.and_ h (Pred.not_ g)) ~bound:4)
      | Solver.Invalid | Solver.Unknown -> true)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_solver_agrees_with_brute_force; prop_valid_implications_hold ]

let tests =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    tc "rat: basic arithmetic" test_rat_basic;
    tc "rat: overflow detection" test_rat_overflow;
    tc "simplex: satisfiable system" test_simplex_sat;
    tc "simplex: unsatisfiable systems" test_simplex_unsat;
    tc "simplex: equality chain" test_simplex_eq_chain;
    tc "lia: gcd integrality" test_lia_integrality;
    tc "lia: strict tightening" test_lia_tightening;
    tc "lia: branch and bound" test_lia_branch;
    tc "cc: congruence" test_cc_congruence;
    tc "cc: transitivity" test_cc_transitive;
    tc "cc: disequality conflict" test_cc_conflict;
    tc "cc: distinct constants" test_cc_constants;
    tc "cc: nested congruence" test_cc_nested;
    tc "valid: arithmetic" test_valid_arith;
    tc "valid: boolean structure" test_valid_bool_structure;
    tc "valid: uninterpreted functions" test_valid_euf;
    tc "valid: theory combination" test_valid_combination;
    tc "valid: array-bounds query shape" test_array_bounds_shape;
    tc "valid: disequality splitting" test_diseq_split;
    tc "solver: cache and stats" test_cache_and_stats;
    tc "solver: cached Invalid restores counterexample" test_cached_invalid_cex;
    tc "solver: prepared queries" test_prepared_queries;
    tc "context: nested push/pop" test_ctx_push_pop;
    tc "context: pop on empty raises" test_ctx_pop_empty_raises;
    tc "context: assert after pop" test_ctx_assert_after_pop;
    tc "context: agrees with check_valid" test_ctx_agrees_with_check_valid;
  ]
  @ qcheck_tests

(* ------------------------------------------------------------------ *)
(* Differential testing: Simplex vs Fourier-Motzkin on random systems  *)
(* ------------------------------------------------------------------ *)

let gen_system =
  let open QCheck.Gen in
  let gen_cons =
    let* c0 = int_range (-3) 3 in
    let* c1 = int_range (-3) 3 in
    let* c2 = int_range (-3) 3 in
    let* rhs = int_range (-6) 6 in
    let* op = oneofl [ Simplex.Le; Simplex.Ge; Simplex.Eq ] in
    let exp =
      Linexp.add_term 0 (Rat.of_int c0)
        (Linexp.add_term 1 (Rat.of_int c1)
           (Linexp.add_term 2 (Rat.of_int c2) Linexp.zero))
    in
    return (Simplex.cons exp op (Rat.of_int rhs))
  in
  let* n = int_range 1 7 in
  list_size (return n) gen_cons

let prop_simplex_agrees_with_fm =
  QCheck.Test.make ~count:500 ~name:"simplex agrees with Fourier-Motzkin"
    (QCheck.make gen_system)
    (fun cs ->
      let simplex =
        match Simplex.solve ~nvars:3 cs with `Sat _ -> `Sat | `Unsat -> `Unsat
      in
      simplex = Fm.solve cs)

let prop_simplex_models_check_out =
  QCheck.Test.make ~count:500 ~name:"simplex models satisfy all constraints"
    (QCheck.make gen_system)
    (fun cs ->
      match Simplex.solve ~nvars:3 cs with
      | `Unsat -> true
      | `Sat model ->
          List.for_all
            (fun (c : Simplex.cons) ->
              let v = Linexp.eval (fun i -> model.(i)) c.Simplex.exp in
              match c.Simplex.op with
              | Simplex.Le -> Rat.le v c.Simplex.rhs
              | Simplex.Ge -> Rat.le c.Simplex.rhs v
              | Simplex.Eq -> Rat.equal v c.Simplex.rhs)
            cs)

let prop_lia_refines_rational =
  (* Integer satisfiability implies rational satisfiability; integer
     UNSAT must agree with FM whenever FM is also UNSAT rationally. *)
  QCheck.Test.make ~count:500 ~name:"LIA is between rational SAT and UNSAT"
    (QCheck.make gen_system)
    (fun cs ->
      let lia_cons =
        List.map
          (fun (c : Simplex.cons) ->
            match c.Simplex.op with
            | Simplex.Le -> { Lia.exp = c.Simplex.exp; op = Lia.Le; rhs = c.Simplex.rhs }
            | Simplex.Ge ->
                { Lia.exp = Linexp.neg c.Simplex.exp; op = Lia.Le; rhs = Rat.neg c.Simplex.rhs }
            | Simplex.Eq -> { Lia.exp = c.Simplex.exp; op = Lia.Eq; rhs = c.Simplex.rhs })
          cs
      in
      match (Lia.check ~nvars:3 lia_cons, Fm.solve cs) with
      | Lia.Sat _, `Unsat -> false (* int-sat but rat-unsat: impossible *)
      | Lia.Unsat, `Unsat -> true
      | Lia.Unsat, `Sat ->
          true (* rational-sat, integrally unsat: fine (gcd/branching) *)
      | Lia.Sat m, `Sat ->
          (* the integer model must be integral and satisfy everything *)
          Array.for_all Rat.is_integer m
          && List.for_all
               (fun (c : Lia.cons) ->
                 let v = Linexp.eval (fun i -> m.(i)) c.Lia.exp in
                 match c.Lia.op with
                 | Lia.Le -> Rat.le v c.Lia.rhs
                 | Lia.Lt -> Rat.lt v c.Lia.rhs
                 | Lia.Eq -> Rat.equal v c.Lia.rhs)
               lia_cons
      | Lia.Unknown, _ -> true)

let qcheck_differential =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_simplex_agrees_with_fm;
      prop_simplex_models_check_out;
      prop_lia_refines_rational;
    ]

let tests = tests @ qcheck_differential
