let () =
  Alcotest.run "liquid"
    [
      ("logic", Test_logic.tests);
      ("smt", Test_smt.tests);
      ("lang", Test_lang.tests);
      ("typing", Test_typing.tests);
      ("anf", Test_anf.tests);
      ("eval", Test_eval.tests);
      ("qualifier", Test_qualifier.tests);
      ("rtype", Test_rtype.tests);
      ("liquid", Test_liquid.tests);
      ("suite", Test_suite.tests);
      ("soundness", Test_soundness.tests);
      ("measures", Test_measures.tests);
      ("adt", Test_adt.tests);
      ("extended", Test_extended.tests);
      ("spec", Test_spec.tests);
      ("driver", Test_driver.tests);
      ("analysis", Test_analysis.tests);
      ("tricky", Test_tricky.tests);
      ("partition", Test_partition.tests);
      ("cache", Test_cache.tests);
      ("server", Test_server.tests);
      ("explain", Test_explain.tests);
      ("prune", Test_prune.tests);
      ("gradual", Test_gradual.tests);
    ]
