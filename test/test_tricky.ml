(* Adversarial end-to-end cases probing soundness-critical corners:
   refinements flowing through polymorphism and aliases, shadowing,
   nested data, escaping closures — each paired with an unsafe variant
   that must be rejected. *)

let verify ?(quals = "") src =
  let quals =
    Liquid_infer.Qualifier.defaults @ Liquid_infer.Qualifier.parse_string quals
  in
  Liquid_driver.Pipeline.verify_string
    ~options:{ Liquid_driver.Pipeline.default with Liquid_driver.Pipeline.quals }
    src

let is_safe ?quals src = (verify ?quals src).Liquid_driver.Pipeline.safe

let check_bool = Alcotest.(check bool)

let test_array_length_through_identity () =
  (* len facts survive polymorphic instantiation (CC over Obj equality) *)
  check_bool "safe through id" true
    (is_safe
       "let id x = x\n\
        let a = id (Array.make 3 0)\n\
        let v = a.(2)");
  check_bool "still checked through id" false
    (is_safe
       "let id x = x\n\
        let a = id (Array.make 3 0)\n\
        let v = a.(3)")

let test_alias_and_shadow () =
  check_bool "aliased array keeps its length" true
    (is_safe
       "let a = Array.make 5 0\nlet b = a\nlet v = b.(4)");
  check_bool "shadowed binder uses the new length" false
    (is_safe
       "let a = Array.make 5 0\nlet a = Array.make 2 0\nlet v = a.(4)");
  check_bool "shadowing with larger array is fine" true
    (is_safe
       "let a = Array.make 2 0\nlet a = Array.make 5 0\nlet v = a.(4)")

let test_nested_tuples () =
  check_bool "nested tuple projections" true
    (is_safe
       "let p = ((3, 4), 5)\n\
        let _ = match p with | ((a, b), c) -> assert (a = 3 && c = 5)");
  check_bool "wrong nested fact rejected" false
    (is_safe
       "let p = ((3, 4), 5)\n\
        let _ = match p with | ((a, b), c) -> assert (a = 4)")

let test_closure_captures_invariant () =
  (* the closure's free variable carries its refinement at capture *)
  check_bool "captured bound flows into closure" true
    (is_safe
       "let mk n = begin\n\
       \  let a = Array.make n 0 in\n\
       \  fun i -> if 0 <= i then begin if i < n then a.(i) else 0 end else 0\n\
        end\n\
        let g = mk 4\n\
        let v = g 2");
  (* unguarded access is still fine whole-program when every call is in
     bounds; an out-of-range call must be rejected *)
  check_bool "out-of-range closure call rejected" false
    (is_safe
       "let mk n = begin\n\
       \  let a = Array.make n 0 in\n\
       \  fun i -> a.(i)\n\
        end\n\
        let g = mk 4\n\
        let v = g 9")

let test_refinement_not_leaked_across_calls () =
  (* two calls with different array sizes must not pollute each other *)
  check_bool "per-call lengths kept separate" true
    (is_safe
       "let read a i = if 0 <= i then begin if i < Array.length a then \
        a.(i) else 0 end else 0\n\
        let x = read (Array.make 2 0) 1\n\
        let y = read (Array.make 9 0) 8");
  check_bool "one bad call caught" false
    (is_safe
       "let read a i = a.(i)\n\
        let x = read (Array.make 9 0) 8\n\
        let y = read (Array.make 2 0) 5")

let test_guard_via_boolean_binding () =
  (* path facts flow through named booleans (b <=> i < n) *)
  check_bool "named guard" true
    (is_safe
       "let a = Array.make 8 0\n\
        let f i = begin\n\
       \  let ok = 0 <= i && i < Array.length a in\n\
       \  if ok then a.(i) else 0\n\
        end\n\
        let v = f 11");
  check_bool "negated named guard" true
    (is_safe
       "let f x = begin\n\
       \  let neg = x < 0 in\n\
       \  if neg then () else assert (x >= 0)\n\
        end\n\
        let _ = f 3")

let test_branch_join_weakened () =
  (* joins weaken soundly: after the if, only the common facts remain *)
  check_bool "join keeps common bound" true
    (is_safe
       "let f c = begin\n\
       \  let x = if c then 3 else 7 in\n\
       \  assert (x >= 3)\n\
        end\n\
        let _ = f true");
  (* atom-branch conditionals are exact: with only [f true] this is
     provable; calling with both values makes the assert genuinely false *)
  check_bool "exact conditional with a known guard" true
    (is_safe
       "let f c = begin\n\
       \  let x = if c then 3 else 7 in\n\
       \  assert (x = 3)\n\
        end\n\
        let _ = f true");
  check_bool "conditional with both guards rejected" false
    (is_safe
       "let f c = begin\n\
       \  let x = if c then 3 else 7 in\n\
       \  assert (x = 3)\n\
        end\n\
        let _ = f true\n\
        let _ = f false")

let test_recursion_through_hof () =
  check_bool "recursive invariants through an iterator" true
    (is_safe
       "let rec iter f i n = if i < n then begin f i; iter f (i + 1) n end \
        else ()\n\
        let a = Array.make 6 0\n\
        let _ = iter (fun i -> if 0 <= i then begin if i < 6 then a.(i) <- i \
        else () end else ()) 0 6")

let test_unit_and_bool_results () =
  check_bool "bool-returning function refinement" true
    (is_safe
       "let is_pos x = x > 0\n\
        let f y = if is_pos y then assert (y >= 1) else ()\n\
        let _ = f 5");
  check_bool "bool result cannot be assumed" false
    (is_safe
       "let flaky x = x > 0\n\
        let f y = begin let _ = flaky y in assert (y >= 1) end\n\
        let _ = f 5\n\
        let _ = f 0")

let test_deep_arithmetic_chain () =
  check_bool "long linear chain" true
    (is_safe
       "let f a = begin\n\
       \  let b = a + 1 in\n\
       \  let c = b + 2 in\n\
       \  let d = c - 3 in\n\
       \  assert (d = a)\n\
        end\n\
        let _ = f 10")

let tests =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    tc "array length through polymorphic identity" test_array_length_through_identity;
    tc "aliasing and shadowing" test_alias_and_shadow;
    tc "nested tuple projections" test_nested_tuples;
    tc "closures capture invariants" test_closure_captures_invariant;
    tc "call-site isolation" test_refinement_not_leaked_across_calls;
    tc "named boolean guards" test_guard_via_boolean_binding;
    tc "branch joins weaken soundly" test_branch_join_weakened;
    tc "recursion through higher-order iterators" test_recursion_through_hof;
    tc "boolean results" test_unit_and_bool_results;
    tc "linear arithmetic chains" test_deep_arithmetic_chain;
  ]
