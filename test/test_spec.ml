(* Tests for refinement-type specifications: parsing, modular checking,
   modular use, and rejection of wrong or misaligned specifications. *)

open Liquid_infer

let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let parse1 s =
  match Spec.parse_string s with
  | [ (_, t) ] -> Fmt.str "%a" Rtype.pp (Report.display t)
  | _ -> Alcotest.fail "expected one declaration"

let verify ?(quals = Qualifier.defaults) ~specs src =
  let specs = Spec.parse_string specs in
  Liquid_driver.Pipeline.verify_string
    ~options:
      {
        Liquid_driver.Pipeline.default with
        Liquid_driver.Pipeline.quals;
        specs;
      }
    src

let is_safe ?quals ~specs src =
  (verify ?quals ~specs src).Liquid_driver.Pipeline.safe

(* -- Parsing ------------------------------------------------------------ *)

let test_parse_base () =
  check_str "plain arrow" "k:int -> int" (parse1 "val f : k:int -> int");
  check_str "refined result" "k:int -> {v:int | v >= k}"
    (parse1 "val f : k:int -> {v:int | v >= k}");
  check_str "array" "a:int array -> {v:int | v < len(a)}"
    (parse1 "val f : a:int array -> {v:int | v < len a}");
  check_str "tyvars" "x:'a -> 'a" (parse1 "val id : x:'a -> 'a");
  check_str "tuple" "(int * bool)" (parse1 "val p : (int * bool)");
  check_str "list measure" "l:'a list -> {v:int | v = llen(l)}"
    (parse1 "val len : l:'a list -> {v:int | v = llen l}")

let test_parse_multiple () =
  let specs = Spec.parse_string "val f : int -> int\nval g : bool -> bool" in
  check_bool "two declarations" true (List.length specs = 2)

let test_parse_errors () =
  let fails s =
    match Spec.parse_string s with exception Spec.Error _ -> true | _ -> false
  in
  check_bool "missing colon" true (fails "val f int");
  check_bool "bad refinement" true (fails "val f : {v:int | }");
  check_bool "ill-sorted refinement" true (fails "val f : {v:int | len v = 3}");
  check_bool "unbound name in refinement" true
    (fails "val f : int -> {v:int | v > q}");
  check_bool "refinement on function" true
    (fails "val f : {v:(int -> int) | true}")

(* -- Checking ---------------------------------------------------------------- *)

let sum_src =
  "let rec sum k = if k < 0 then 0 else begin let s = sum (k - 1) in s + k \
   end\nlet u = sum 3"

let test_correct_spec_verifies () =
  check_bool "sum spec holds" true
    (is_safe ~specs:"val sum : k:int -> {v:int | v >= k && 0 <= v}" sum_src)

let test_wrong_spec_rejected () =
  let r = verify ~specs:"val sum : k:int -> {v:int | v > k}" sum_src in
  check_bool "rejected" false r.Liquid_driver.Pipeline.safe;
  match r.Liquid_driver.Pipeline.errors with
  | e :: _ ->
      check_str "reason" "specification check" e.Liquid_driver.Pipeline.err_reason
  | [] -> Alcotest.fail "no error"

let test_spec_used_modularly () =
  (* The spec (not the stronger inferred type) is what clients see:
     weaken the spec and a client assert relying on the stronger fact
     must fail. *)
  check_bool "client sees only the spec" false
    (is_safe ~specs:"val sum : k:int -> {v:int | 0 <= v}"
       (sum_src ^ "\nlet _ = assert (sum 5 >= 5)"));
  check_bool "client can use the spec" true
    (is_safe ~specs:"val sum : k:int -> {v:int | 0 <= v}"
       (sum_src ^ "\nlet _ = assert (sum 5 >= 0)"))

let test_spec_assumed_in_recursion () =
  (* Modular recursion: the body may rely on the spec for recursive
     calls. *)
  check_bool "recursive calls use the spec" true
    (is_safe
       ~specs:"val down : n:int -> {v:int | v <= 0}"
       "let rec down n = if n <= 0 then n else down (n - 2)\nlet _ = down 9")

let test_spec_precondition_enforced_at_calls () =
  let specs = "val half : n:{v:int | 0 <= v} -> {v:int | v <= n}" in
  let f = "let half n = n / 2\n" in
  check_bool "ok call" true (is_safe ~specs (f ^ "let _ = half 4"));
  check_bool "bad call rejected" false
    (is_safe ~specs (f ^ "let _ = half (0 - 4)"))

let test_polymorphic_spec () =
  check_bool "identity spec" true
    (is_safe ~specs:"val id : x:'a -> {v:'a | v = x}"
       "let id x = x\nlet _ = assert (id 3 = 3)")

let test_misaligned_spec () =
  (* spec less general than the inferred type *)
  check_bool "monomorphizing spec rejected" true
    (match verify ~specs:"val id : x:int -> int" "let id x = x\nlet u = id 3" with
    | exception Liquid_driver.Pipeline.Source_error _ -> true
    | _ -> false);
  check_bool "shape-mismatched spec rejected" true
    (match verify ~specs:"val f : int -> int" "let f x y = x + y\nlet u = f 1 2" with
    | exception Liquid_driver.Pipeline.Source_error _ -> true
    | _ -> false)

let test_spec_with_measures () =
  let quals = Qualifier.defaults @ Qualifier.list_defaults in
  check_bool "append length spec" true
    (is_safe ~quals
       ~specs:
         "val append : xs:'a list -> ys:'a list -> {v:'a list | llen v = \
          llen xs + llen ys}"
       "let rec append xs ys = match xs with | [] -> ys | h :: t -> h :: \
        append t ys\nlet u = append [1] [2; 3]")

let tests =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    tc "parse: base forms" test_parse_base;
    tc "parse: multiple declarations" test_parse_multiple;
    tc "parse: errors" test_parse_errors;
    tc "correct spec verifies" test_correct_spec_verifies;
    tc "wrong spec rejected" test_wrong_spec_rejected;
    tc "spec used modularly" test_spec_used_modularly;
    tc "spec assumed for recursive calls" test_spec_assumed_in_recursion;
    tc "spec preconditions at call sites" test_spec_precondition_enforced_at_calls;
    tc "polymorphic spec" test_polymorphic_spec;
    tc "misaligned specs rejected" test_misaligned_spec;
    tc "spec with list measures" test_spec_with_measures;
  ]
