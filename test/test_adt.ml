(* Tests for user-declared algebraic datatypes and measures: declaration
   validation (structured diagnostics with spans), measure-indexed
   refinement inference, measure hypotheses in explanation cores,
   determinism across engines (prune on/off, jobs 1/4, cache, daemon),
   and the cache-soundness of the declaration digest. *)

open Liquid_lang
module Pipeline = Liquid_driver.Pipeline
module Protocol = Liquid_server.Protocol
module Server = Liquid_server.Server
module Client = Liquid_server.Client

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Corpus                                                              *)
(* ------------------------------------------------------------------ *)

let src_tree_safe =
  "type tree = Leaf | Node of tree * int * tree\n\
   measure size : tree =\n\
  \  | Leaf -> 0\n\
  \  | Node (l, _, r) -> 1 + size l + size r\n\
   measure height : tree =\n\
  \  | Leaf -> 0\n\
  \  | Node (l, _, r) -> 1 + max (height l) (height r)\n\
   let rec size_of t =\n\
  \  match t with\n\
  \  | Leaf -> 0\n\
  \  | Node (l, x, r) -> 1 + size_of l + size_of r\n\
   let check_grow l x r = assert (size_of (Node (l, x, r)) > size_of l)\n\
   let main = check_grow (Node (Leaf, 1, Leaf)) 2 Leaf"

(* [size r >= 0] justifies [> size_of l], but never [> size_of l + 1]
   (take [r = Leaf]). *)
let src_tree_unsafe =
  "type tree = Leaf | Node of tree * int * tree\n\
   measure size : tree =\n\
  \  | Leaf -> 0\n\
  \  | Node (l, _, r) -> 1 + size l + size r\n\
   let rec size_of t =\n\
  \  match t with\n\
  \  | Leaf -> 0\n\
  \  | Node (l, x, r) -> 1 + size_of l + size_of r\n\
   let check_grow l x r = assert (size_of (Node (l, x, r)) > size_of l + 1)\n\
   let main = check_grow Leaf 5 Leaf"

let verify ?(options = Pipeline.default) src =
  Pipeline.verify_string ~options ~name:"adt.ml" src

let report_fingerprint (r : Pipeline.report) =
  Fmt.str "safe=%b errors=[%a] types=[%a]" r.Pipeline.safe
    Fmt.(list ~sep:(any ";") Pipeline.pp_error)
    r.Pipeline.errors
    Fmt.(
      list ~sep:(any ";") (fun ppf (x, t) ->
          Fmt.pf ppf "%a : %a" Liquid_common.Ident.pp x Liquid_infer.Rtype.pp
            (Liquid_infer.Report.display t)))
    r.Pipeline.item_types

let item_type (r : Pipeline.report) name =
  let _, t =
    List.find
      (fun (x, _) -> Liquid_common.Ident.to_string x = name)
      r.Pipeline.item_types
  in
  Fmt.str "%a" Liquid_infer.Rtype.pp (Liquid_infer.Report.display t)

(* ------------------------------------------------------------------ *)
(* Inference                                                           *)
(* ------------------------------------------------------------------ *)

let test_tree_inference () =
  let r = verify src_tree_safe in
  check_bool "tree program is safe" true r.Pipeline.safe;
  let t = item_type r "size_of" in
  check_bool
    (Fmt.str "size_of's result is measure-indexed (got %s)" t)
    true
    (contains t "v = size(t)");
  check_int "two user measures counted" 2 r.Pipeline.stats.Pipeline.n_measures;
  check_bool "constructor/match sites emitted measure axioms" true
    (r.Pipeline.stats.Pipeline.n_measure_axioms > 0)

let test_measureless_programs_unchanged () =
  (* A declaration-free program must not pay for the subsystem: no
     measures, no axioms, same verdict as always. *)
  let r = verify "let rec sum k = if k < 0 then 0 else sum (k - 1) + k" in
  check_bool "safe" true r.Pipeline.safe;
  check_int "no user measures" 0 r.Pipeline.stats.Pipeline.n_measures

let test_unsafe_explain_cites_measure () =
  let options = { Pipeline.default with Pipeline.explain = true } in
  let r = verify ~options src_tree_unsafe in
  check_bool "seeded variant is unsafe" true (not r.Pipeline.safe);
  check_bool "failure is explained" true (r.Pipeline.explanations <> []);
  let cites_measure =
    List.exists
      (fun (ex : Liquid_explain.Explain.explanation) ->
        List.exists
          (fun (h : Liquid_explain.Explain.core_hyp) ->
            contains
              (Fmt.str "%a" Liquid_logic.Pred.pp
                 h.Liquid_explain.Explain.ch_pred)
              "size(")
          ex.Liquid_explain.Explain.ex_core)
      r.Pipeline.explanations
  in
  check_bool "explanation core cites a measure hypothesis" true cites_measure

(* ------------------------------------------------------------------ *)
(* Determinism across engines                                          *)
(* ------------------------------------------------------------------ *)

let test_prune_identity () =
  let on = verify src_tree_safe in
  let off =
    verify ~options:{ Pipeline.default with Pipeline.prune = false }
      src_tree_safe
  in
  check_string "prune on/off reports identical" (report_fingerprint on)
    (report_fingerprint off)

let test_jobs_identity () =
  let seq = verify src_tree_safe in
  let par =
    verify ~options:{ Pipeline.default with Pipeline.jobs = 4 } src_tree_safe
  in
  check_string "jobs 1/4 reports identical" (report_fingerprint seq)
    (report_fingerprint par)

(* ------------------------------------------------------------------ *)
(* Declaration diagnostics                                             *)
(* ------------------------------------------------------------------ *)

let decls_of src = snd (Parser.parse_string src)

let diags src = Declcheck.check (decls_of src)

let codes src = List.map (fun (d : Declcheck.diag) -> d.Declcheck.code) (diags src)

let test_declcheck_unknown_ctor () =
  let src =
    "type tree = Leaf | Node of tree * int * tree\n\
     measure bad : tree =\n\
    \  | Leaf -> 0\n\
    \  | Branch (l, _, r) -> 1 + bad l + bad r\n\
    \  | Node (l, _, r) -> 1 + bad l + bad r"
  in
  match diags src with
  | [ d ] ->
      check_string "unknown constructor is D005" "D005" d.Declcheck.code;
      (* precise span: the diagnostic points at the constructor token on
         line 4, not at the whole measure *)
      check_bool
        (Fmt.str "span names line 4 (got %a)" Liquid_common.Loc.pp
           d.Declcheck.loc)
        true
        (contains (Fmt.str "%a" Liquid_common.Loc.pp d.Declcheck.loc) "4.")
  | ds ->
      Alcotest.failf "expected exactly one diagnostic, got %d" (List.length ds)

let test_declcheck_duplicate_ctor () =
  check_bool "duplicate constructor is D003" true
    (List.mem "D003" (codes "type a = C | D\ntype b = C"))

let test_declcheck_non_structural () =
  let src =
    "type tree = Leaf | Node of tree * int * tree\n\
     measure spin : tree =\n\
    \  | Leaf -> 0\n\
    \  | Node (l, _, r) -> 1 + spin (spin l)"
  in
  check_bool "non-structural recursion is D010" true
    (List.mem "D010" (codes src))

let test_declcheck_missing_equation () =
  let src =
    "type tree = Leaf | Node of tree * int * tree\n\
     measure partial_size : tree = | Leaf -> 0"
  in
  check_bool "missing equation is D007" true (List.mem "D007" (codes src))

let test_declcheck_is_diagnostic_not_exception () =
  (* A busted declaration unit yields a diagnostic list, never an
     exception — the checker recovers and reports everything. *)
  let ds =
    diags
      "type a = C | C\n\
       measure m : a = | C -> 0 | D x -> q x\n\
       measure m : a = | C -> 1"
  in
  check_bool "multiple diagnostics, in source order" true (List.length ds >= 3)

let test_pipeline_rejects_bad_decls () =
  match
    verify "type t = K\nmeasure m : t = | K -> 0 | J -> 1\nlet x = 1"
  with
  | exception Pipeline.Source_error (msg, loc) ->
      check_bool
        (Fmt.str "message carries the D-code (got %s)" msg)
        true
        (contains msg "[D005]");
      check_bool "error location is real" true
        (loc <> Liquid_common.Loc.dummy)
  | _ -> Alcotest.fail "expected Source_error on a bad declaration unit"

(* ------------------------------------------------------------------ *)
(* Cache soundness                                                     *)
(* ------------------------------------------------------------------ *)

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dsolve-adt-test-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  Unix.mkdir dir 0o755;
  dir

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> try rm_rf dir with _ -> ()) (fun () -> f dir)

(* The two sources below have the same length and differ only inside a
   [measure] body (1 → 0): under the v2 semantics [size_of] no longer
   computes [size], so the assertion is unprovable.  Only the
   declaration digest in the unit fingerprint separates their partition
   cache entries — a stale hit would replay SAFE. *)
let src_measure_v1 =
  "type tree = Leaf | Node of tree * int * tree\n\
   measure size : tree =\n\
  \  | Leaf -> 0\n\
  \  | Node (l, _, r) -> 1 + size l + size r\n\
   let rec size_of t =\n\
  \  match t with\n\
  \  | Leaf -> 0\n\
  \  | Node (l, x, r) -> 1 + size_of l + size_of r\n\
   let grow l x r = assert (size_of (Node (l, x, r)) > size_of l)\n\
   let main = grow Leaf 5 Leaf\n\
   let shift y = if y > 0 then y + 3 else 1"

let src_measure_v2 =
  "type tree = Leaf | Node of tree * int * tree\n\
   measure size : tree =\n\
  \  | Leaf -> 0\n\
  \  | Node (l, _, r) -> 0 + size l + size r\n\
   let rec size_of t =\n\
  \  match t with\n\
  \  | Leaf -> 0\n\
  \  | Node (l, x, r) -> 1 + size_of l + size_of r\n\
   let grow l x r = assert (size_of (Node (l, x, r)) > size_of l)\n\
   let main = grow Leaf 5 Leaf\n\
   let shift y = if y > 0 then y + 3 else 1"

(* Unrelated edit: [shift]'s uncompared arm literal (1 → 2), decls
   untouched. *)
let src_measure_v3 =
  "type tree = Leaf | Node of tree * int * tree\n\
   measure size : tree =\n\
  \  | Leaf -> 0\n\
  \  | Node (l, _, r) -> 1 + size l + size r\n\
   let rec size_of t =\n\
  \  match t with\n\
  \  | Leaf -> 0\n\
  \  | Node (l, x, r) -> 1 + size_of l + size_of r\n\
   let grow l x r = assert (size_of (Node (l, x, r)) > size_of l)\n\
   let main = grow Leaf 5 Leaf\n\
   let shift y = if y > 0 then y + 3 else 2"

let test_cache_warm_identity () =
  with_dir (fun dir ->
      let options =
        { Pipeline.default with Pipeline.cache_dir = Some dir }
      in
      let cold = verify ~options src_tree_safe in
      let warm = verify ~options src_tree_safe in
      check_int "second run served from the whole-run cache" 1
        warm.Pipeline.stats.Pipeline.n_pcache_hits;
      check_string "warm report identical to cold" (report_fingerprint cold)
        (report_fingerprint warm);
      check_string "cached report identical to an uncached run"
        (report_fingerprint (verify src_tree_safe))
        (report_fingerprint cold))

let test_measure_edit_is_cache_sound () =
  with_dir (fun dir ->
      let options =
        { Pipeline.default with Pipeline.cache_dir = Some dir }
      in
      let v1 = verify ~options src_measure_v1 in
      check_bool "v1 semantics verifies" true v1.Pipeline.safe;
      check_int "source lengths match (the edit is digest-only)"
        (String.length src_measure_v1)
        (String.length src_measure_v2);
      let v2 = verify ~options src_measure_v2 in
      check_int "measure edit misses the whole-run cache" 0
        v2.Pipeline.stats.Pipeline.n_pcache_hits;
      check_int "measure edit invalidates every solve unit" 0
        v2.Pipeline.stats.Pipeline.n_punit_hits;
      check_bool "verdict actually changed" true (not v2.Pipeline.safe))

let test_unrelated_edit_reuses_partitions () =
  with_dir (fun dir ->
      let options =
        { Pipeline.default with Pipeline.cache_dir = Some dir }
      in
      ignore (verify ~options src_measure_v1);
      let v3 = verify ~options src_measure_v3 in
      check_bool "unedited partitions reused" true
        (v3.Pipeline.stats.Pipeline.n_punit_hits >= 1);
      check_string "report identical to an uncached run"
        (report_fingerprint (verify src_measure_v3))
        (report_fingerprint v3))

(* ------------------------------------------------------------------ *)
(* Daemon round-trip                                                   *)
(* ------------------------------------------------------------------ *)

let start_server sock =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      (try
         let d = Server.default_config ~sock in
         Server.serve { d with Server.quiet = true }
       with _ -> ());
      Unix._exit 0
  | pid -> pid

let stop_server pid sock =
  (try Client.with_connection sock Client.shutdown with _ -> ());
  ignore (Unix.waitpid [] pid)

let with_server f =
  with_dir (fun base ->
      let sock = Filename.concat base "d.sock" in
      let pid = start_server sock in
      Fun.protect ~finally:(fun () -> stop_server pid sock) (fun () -> f sock))

let expect_verified = function
  | Protocol.Verified r -> r
  | Protocol.Rejected e ->
      Alcotest.failf "expected Verified, got [%s] %s" e.Protocol.ve_code
        e.Protocol.ve_message

let test_daemon_round_trip () =
  with_server (fun sock ->
      let c = Client.connect_retry sock in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          (* The same warm process then verifies a measure-free program:
             the per-run table reset means the tree program's measures
             must not leak into its report. *)
          let plain = "let rec sum k = if k < 0 then 0 else sum (k - 1) + k" in
          let replies =
            Client.verify c
              [
                Protocol.request ~name:"adt.ml" src_tree_safe;
                Protocol.request ~name:"adt.ml" src_tree_unsafe;
                Protocol.request ~name:"plain.ml" plain;
              ]
          in
          match replies with
          | [ r_safe; r_unsafe; r_plain ] ->
              check_string "daemon ADT report identical to direct run"
                (report_fingerprint (verify src_tree_safe))
                (report_fingerprint (expect_verified r_safe));
              check_string "daemon unsafe report identical to direct run"
                (report_fingerprint (verify src_tree_unsafe))
                (report_fingerprint (expect_verified r_unsafe));
              check_string "no measure leak into later requests"
                (report_fingerprint
                   (Pipeline.verify_string ~name:"plain.ml" plain))
                (report_fingerprint (expect_verified r_plain))
          | rs -> Alcotest.failf "expected 3 replies, got %d" (List.length rs)))

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let test_eval_adt () =
  let env =
    Liquid_eval.Eval.run_program
      (Parser.program_of_string
         "let rec size_of t =\n\
         \  match t with\n\
         \  | Leaf -> 0\n\
         \  | Node (l, x, r) -> 1 + size_of l + size_of r\n\
          let rec keys t =\n\
         \  match t with\n\
         \  | Leaf -> 0\n\
         \  | Node (Leaf, x, Leaf) -> x\n\
         \  | Node (l, x, r) -> keys l + x + keys r\n\
          let t = Node (Node (Leaf, 1, Leaf), 2, Node (Leaf, 3, Leaf))\n\
          let main = size_of t * 100 + keys t")
  in
  match Liquid_common.Ident.Map.find "main" env with
  | Liquid_eval.Eval.Vint n ->
      check_int "constructed values match and fold" 306 n
  | v -> Alcotest.failf "expected int, got %a" Liquid_eval.Eval.pp_value v

let tests =
  [
    Alcotest.test_case "tree inference" `Quick test_tree_inference;
    Alcotest.test_case "measure-free programs unchanged" `Quick
      test_measureless_programs_unchanged;
    Alcotest.test_case "explain cites measure axiom" `Quick
      test_unsafe_explain_cites_measure;
    Alcotest.test_case "prune on/off identity" `Quick test_prune_identity;
    Alcotest.test_case "jobs 1/4 identity" `Quick test_jobs_identity;
    Alcotest.test_case "declcheck: unknown constructor" `Quick
      test_declcheck_unknown_ctor;
    Alcotest.test_case "declcheck: duplicate constructor" `Quick
      test_declcheck_duplicate_ctor;
    Alcotest.test_case "declcheck: non-structural recursion" `Quick
      test_declcheck_non_structural;
    Alcotest.test_case "declcheck: missing equation" `Quick
      test_declcheck_missing_equation;
    Alcotest.test_case "declcheck: diagnostics, not exceptions" `Quick
      test_declcheck_is_diagnostic_not_exception;
    Alcotest.test_case "pipeline rejects bad decls" `Quick
      test_pipeline_rejects_bad_decls;
    Alcotest.test_case "cache warm identity" `Quick test_cache_warm_identity;
    Alcotest.test_case "measure edit is cache-sound" `Quick
      test_measure_edit_is_cache_sound;
    Alcotest.test_case "unrelated edit reuses partitions" `Quick
      test_unrelated_edit_reuses_partitions;
    Alcotest.test_case "daemon round-trip" `Quick test_daemon_round_trip;
    Alcotest.test_case "eval constructors and match" `Quick test_eval_adt;
  ]
