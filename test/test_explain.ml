(* Tests for the explanation engine: traced embedding, minimal cores,
   blame-path determinism across job counts, verified repair hints,
   failure deduplication, the explanation limit, JSON round-trips, and
   byte-identity of explanations across the direct / persistent-cache /
   daemon paths. *)

open Liquid_logic
open Liquid_smt
open Liquid_infer
module Pipeline = Liquid_driver.Pipeline
module Explain = Liquid_explain.Explain
module Json = Liquid_analysis.Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Programs (all items named: gensym stamps drift across processes)    *)
(* ------------------------------------------------------------------ *)

(* A genuine off-by-one: [i <= 10] walks one past the end.  The
   environment does not refute the bounds goal outright (i = 5 also
   satisfies it), so the core is the relevance-retained set. *)
let overrun_src =
  "let a = Array.make 10 0\n\
   let rec fill i =\n\
  \  if i <= 10 then begin\n\
  \    a.(i) <- i;\n\
  \    fill (i + 1)\n\
  \  end\n\
  \  else 0\n\
   let start = fill 0"

(* A constant out-of-bounds read: the hypotheses refute the goal
   outright, so the core is deletion-minimized. *)
let refuted_src = "let a = Array.make 5 0\nlet bad = a.(7)"

(* Safe, but inexpressible without a non-negativity qualifier: verified
   with an empty qualifier set, the assertion fails and the repair
   search should find the missing instance. *)
let sum_src =
  "let rec sum k =\n\
  \  if k < 0 then 0\n\
  \  else begin\n\
  \    let s = sum (k - 1) in\n\
  \    s + k\n\
  \  end\n\
   let total = sum 5\n\
   let ok = assert (0 <= total)"

(* Independent items in separate solve units, two of them failing: the
   partition plan shards, and explanations must not depend on it. *)
let sharded_src =
  "let f x = if x > 0 then x else 0 - x\n\
   let g y = y + 1\n\
   let a = Array.make 10 0\n\
   let bada = a.(12)\n\
   let b = Array.make 5 0\n\
   let badb = b.(9)\n\
   let ok = assert (f 3 >= 0)"

let explain_options ?(quals = Qualifier.defaults) () =
  { Pipeline.default with Pipeline.quals; explain = true }

let verify ?quals ?(options = explain_options ?quals ()) ~name src =
  Pipeline.verify_string ~options ~name src

let the_explanation (r : Pipeline.report) =
  match r.Pipeline.explanations with
  | [ ex ] -> ex
  | exs -> Alcotest.failf "expected 1 explanation, got %d" (List.length exs)

let render_explanations (r : Pipeline.report) =
  List.map
    (fun ex -> Fmt.str "%a" Explain.pp_explanation ex)
    r.Pipeline.explanations

(* ------------------------------------------------------------------ *)
(* Traced embedding mirrors the solver's embedding                     *)
(* ------------------------------------------------------------------ *)

(* [embed_env_trace] must produce exactly the facts of [embed_env], in
   the same order — the correspondence that lets minimized hypothesis
   indices be mapped back to binders and κs. *)
let test_traced_embedding () =
  let prog =
    Liquid_anf.Anf.normalize_program
      (Liquid_lang.Parser.program_of_string overrun_src)
  in
  let info = Liquid_typing.Infer.infer_program prog in
  let out = Congen.generate info prog in
  let res =
    Fixpoint.solve ~quals:Qualifier.defaults out.Congen.wfs out.Congen.subs
  in
  let lookup k = Constr.sol_find res.Fixpoint.solution k in
  List.iter
    (fun (c : Constr.sub) ->
      let facts, guards = Constr.embed_env lookup c.Constr.sub_env in
      let traced, guards' = Constr.embed_env_trace lookup c.Constr.sub_env in
      check_bool "same facts in the same order" true
        (facts = List.map fst traced);
      check_bool "same guards" true (guards = guards'))
    out.Congen.subs;
  check_bool "the program exercised some constraints" true
    (out.Congen.subs <> [])

(* ------------------------------------------------------------------ *)
(* Cores                                                               *)
(* ------------------------------------------------------------------ *)

let core_preds (ex : Explain.explanation) =
  List.map (fun h -> h.Explain.ch_pred) ex.Explain.ex_core

(* A refuted core proves ¬goal, and dropping any member loses the
   refutation — deletion minimality, re-checked against the solver. *)
let test_refuted_core_minimal () =
  let r = verify ~name:"bad.ml" refuted_src in
  let ex = the_explanation r in
  check_bool "environment refutes the goal" true ex.Explain.ex_refuted;
  let core = core_preds ex in
  check_bool "core is non-empty" true (core <> []);
  let not_goal = Pred.not_ ex.Explain.ex_goal in
  check_bool "core refutes the goal" true
    (Solver.check_valid ~kept:core [] not_goal = Solver.Valid);
  List.iteri
    (fun i _ ->
      let without = List.filteri (fun j _ -> j <> i) core in
      check_bool
        (Fmt.str "dropping core member %d loses the refutation" i)
        false
        (Solver.check_valid ~kept:without [] not_goal = Solver.Valid))
    core

(* An unproven (but not refuted) goal keeps the relevance-retained set
   and a concrete witness; booleans surface as booleans. *)
let test_unproven_core_and_witness () =
  let r = verify ~name:"overrun.ml" overrun_src in
  let ex = the_explanation r in
  check_bool "overrun is not an outright refutation" false
    ex.Explain.ex_refuted;
  check_bool "core is non-empty" true (ex.Explain.ex_core <> []);
  check_bool "witness binds the scrutinized index" true
    (List.mem_assoc "i" ex.Explain.ex_witness);
  check_bool "nothing left unexplained" true
    (ex.Explain.ex_unexplained = None);
  check_bool "blame path reaches a source origin" true
    (List.exists
       (fun (s : Explain.blame_step) -> s.Explain.bs_origins <> [])
       ex.Explain.ex_blame);
  check_bool "no repair hint for a genuinely unsafe program" true
    (ex.Explain.ex_repair = None)

let test_boolean_witness () =
  let r = verify ~quals:[] ~name:"sum.ml" sum_src in
  let ex =
    match r.Pipeline.explanations with
    | ex :: _ -> ex
    | [] -> Alcotest.fail "expected an explanation"
  in
  check_bool "witness carries a boolean value" true
    (List.exists
       (fun (_, v) -> match v with Solver.Vbool _ -> true | _ -> false)
       ex.Explain.ex_witness);
  let rendered = Fmt.str "%a" Explain.pp_witness ex.Explain.ex_witness in
  check_bool "booleans render as booleans" true
    (try
       ignore (Str.search_forward (Str.regexp_string "= false") rendered 0);
       true
     with Not_found -> false)

(* ------------------------------------------------------------------ *)
(* Repair hints                                                        *)
(* ------------------------------------------------------------------ *)

(* The hint's soundness contract, end to end: render the hinted instance
   as a qualifier file, re-verify, and the program must pass. *)
let test_repair_hint_sound () =
  let r = verify ~quals:[] ~name:"sum.ml" sum_src in
  check_bool "program fails without qualifiers" false r.Pipeline.safe;
  let rp =
    match r.Pipeline.explanations with
    | { Explain.ex_repair = Some rp; _ } :: _ -> rp
    | _ -> Alcotest.fail "expected a repair hint"
  in
  let quals =
    Qualifier.parse_string
      (Fmt.str "qualif Fix(v) : %a" Pred.pp rp.Explain.rp_pred)
  in
  let fixed = verify ~quals ~name:"sum.ml" sum_src in
  check_bool "hinted qualifier makes the program verify" true
    fixed.Pipeline.safe

(* ------------------------------------------------------------------ *)
(* Deduplication and the explanation limit                             *)
(* ------------------------------------------------------------------ *)

(* Tuple subtyping against a spec with identical component refinements
   produces two failures with the same origin and the same interned
   goal: one explanation, counted twice. *)
let test_dedup_counts () =
  let specs =
    Spec.parse_string
      "val p : ({v:int | v > 0} * {v:int | v > 0})"
  in
  let options = { (explain_options ()) with Pipeline.specs } in
  let r = Pipeline.verify_string ~options ~name:"pair.ml" "let p = (0, 0)" in
  check_bool "program is unsafe" false r.Pipeline.safe;
  (match r.Pipeline.errors with
  | [ e ] -> check_int "two failures folded into one error" 2 e.Pipeline.err_count
  | es -> Alcotest.failf "expected 1 deduplicated error, got %d" (List.length es));
  let ex = the_explanation r in
  check_int "explanation carries the fold count" 2 ex.Explain.ex_count

let test_explain_limit () =
  let src =
    "let a = Array.make 5 0\nlet x = a.(7)\nlet y = a.(8)\nlet z = a.(9)"
  in
  let options = { (explain_options ()) with Pipeline.explain_limit = 1 } in
  let r = Pipeline.verify_string ~options ~name:"many.ml" src in
  check_int "three distinct failures" 3 (List.length r.Pipeline.errors);
  check_int "one explanation under the limit" 1
    (List.length r.Pipeline.explanations);
  check_int "the rest are counted, not explained" 2 r.Pipeline.explain_skipped;
  let rendered = Fmt.str "%a" Pipeline.pp_report r in
  check_bool "report points at --explain-limit" true
    (try
       ignore
         (Str.search_forward
            (Str.regexp_string "2 further failures not explained")
            rendered 0);
       true
     with Not_found -> false)

(* ------------------------------------------------------------------ *)
(* Degraded partitions                                                 *)
(* ------------------------------------------------------------------ *)

(* A failure whose backward closure touches a ⊤-pinned κ must be
   reported as unexplained, never blamed on fabricated refinements. *)
let test_degraded_unexplained () =
  let prog =
    Liquid_anf.Anf.normalize_program
      (Liquid_lang.Parser.program_of_string overrun_src)
  in
  let info = Liquid_typing.Infer.infer_program prog in
  let out = Congen.generate info prog in
  let res =
    Fixpoint.solve ~quals:Qualifier.defaults out.Congen.wfs out.Congen.subs
  in
  let failures = List.map (fun f -> (f, 1)) res.Fixpoint.failures in
  check_bool "the program fails" true (failures <> []);
  let degraded =
    List.concat_map
      (fun ((f : Fixpoint.failure), _) ->
        match
          List.find_opt
            (fun (c : Constr.sub) -> c.Constr.sub_id = f.Fixpoint.f_sub_id)
            out.Congen.subs
        with
        | Some c -> Constr.reads c
        | None -> [])
      failures
  in
  check_bool "the failing obligation reads some κ" true (degraded <> []);
  let r =
    Explain.explain ~degraded_kvars:degraded ~wfs:out.Congen.wfs
      ~subs:out.Congen.subs ~solution:res.Fixpoint.solution
      ~quals:Qualifier.defaults ~consts:[] failures
  in
  List.iter
    (fun (ex : Explain.explanation) ->
      check_bool "degraded failure is unexplained" true
        (ex.Explain.ex_unexplained = Some "partition timed out");
      check_bool "no blame fabricated over ⊤ κs" true
        (ex.Explain.ex_blame = []))
    r.Explain.exs

(* ------------------------------------------------------------------ *)
(* Determinism across job counts                                       *)
(* ------------------------------------------------------------------ *)

let test_jobs_determinism () =
  let run jobs =
    Pipeline.verify_string
      ~options:{ (explain_options ()) with Pipeline.jobs }
      ~name:"sharded.ml" sharded_src
  in
  let reference = run 1 in
  check_bool "program shards" true
    (reference.Pipeline.stats.Pipeline.n_partitions > 1);
  check_bool "explanations produced" true
    (reference.Pipeline.explanations <> []);
  let expected = render_explanations reference in
  List.iter
    (fun jobs ->
      let got = render_explanations (run jobs) in
      check_bool
        (Fmt.str "explanations byte-identical at jobs=%d" jobs)
        true (got = expected))
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let obj_keys = function
  | Json.Obj kvs -> List.map fst kvs
  | _ -> Alcotest.fail "expected a JSON object"

let field name = function
  | Json.Obj kvs -> (
      match List.assoc_opt name kvs with
      | Some v -> v
      | None -> Alcotest.failf "missing JSON field %s" name)
  | _ -> Alcotest.fail "expected a JSON object"

let test_json_schema_and_round_trip () =
  let r = verify ~name:"overrun.ml" overrun_src in
  let j = Pipeline.json_of_report ~file:"overrun.ml" r in
  (* Round-trip through the parser: printing is canonical. *)
  let s = Json.to_string j in
  check_string "round-trip is the identity" s
    (Json.to_string (Json.of_string s));
  (* Schema of one explanation. *)
  (match field "explanations" j with
  | Json.List (ex :: _) ->
      List.iter
        (fun k ->
          check_bool (Fmt.str "explanation has %S" k) true
            (List.mem k (obj_keys ex)))
        [
          "loc"; "reason"; "goal"; "count"; "refuted"; "witness"; "core";
          "blame"; "repair"; "unexplained";
        ]
  | _ -> Alcotest.fail "expected a non-empty explanations array");
  match field "stats" j with
  | Json.Obj kvs ->
      check_bool "stats count explain SMT queries" true
        (List.mem_assoc "explain_smt_queries" kvs)
  | _ -> Alcotest.fail "expected a stats object"

(* ------------------------------------------------------------------ *)
(* Byte-identity: direct / persistent cache / daemon                   *)
(* ------------------------------------------------------------------ *)

let test_paths_byte_identical () =
  let direct = verify ~name:"overrun.ml" overrun_src in
  let expected = render_explanations direct in
  check_bool "direct run explains" true (expected <> []);
  (* Persistent cache: the warm (rehashed, disk-served) report renders
     identically. *)
  Test_server.with_dir (fun base ->
      let options =
        { (explain_options ()) with Pipeline.cache_dir = Some base }
      in
      let cold =
        Pipeline.verify_string ~options ~name:"overrun.ml" overrun_src
      in
      check_bool "cold cached run matches direct" true
        (render_explanations cold = expected);
      let warm =
        Pipeline.verify_string ~options ~name:"overrun.ml" overrun_src
      in
      check_int "second run served from the persistent cache" 1
        warm.Pipeline.stats.Pipeline.n_pcache_hits;
      check_bool "warm cached run matches direct" true
        (render_explanations warm = expected));
  (* Daemon: explanations cross the socket and a rehash. *)
  Test_server.with_server (fun sock ->
      Test_server.with_client sock (fun c ->
          let replies =
            Liquid_server.Client.verify c
              [
                Liquid_server.Protocol.request ~explain:true ~name:"overrun.ml"
                  overrun_src;
              ]
          in
          let served = Test_server.expect_verified (List.hd replies) in
          check_bool "daemon-served explanations match direct" true
            (render_explanations served = expected)))

let tests =
  let tc name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  [
    tc "traced embedding mirrors embed_env" test_traced_embedding;
    tc "refuted core is deletion-minimal" test_refuted_core_minimal;
    tc "unproven goal keeps relevance core and witness"
      test_unproven_core_and_witness;
    tc "witness booleans render as booleans" test_boolean_witness;
    tc "repair hint verifies when applied" test_repair_hint_sound;
    tc "identical failures dedup with counts" test_dedup_counts;
    tc "--explain-limit caps and counts the rest" test_explain_limit;
    tc "degraded closure reported as unexplained" test_degraded_unexplained;
    slow "explanations byte-identical at jobs 1/2/4" test_jobs_determinism;
    tc "JSON schema and parser round-trip" test_json_schema_and_round_trip;
    slow "direct/cache/daemon explanations byte-identical"
      test_paths_byte_identical;
  ]
