(* Tests for the persistent result cache: store round-trips, hygiene
   (stale stamps, wrong fingerprints, corrupt and truncated entries all
   fall back to a cold run), pipeline integration, and the per-run
   solver-state reset that keeps warm processes honest. *)

module Store = Liquid_cache.Store
module Pipeline = Liquid_driver.Pipeline

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let dir_counter = ref 0

(* A fresh directory per test: store handles (and their counters) are
   memoized per directory, so reuse would leak state across tests. *)
let fresh_dir () =
  incr dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dsolve-cache-test-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  Unix.mkdir dir 0o755;
  dir

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> try rm_rf dir with _ -> ()) (fun () -> f dir)

(* All regular files under [dir] (entry files of the store). *)
let rec files_under dir =
  List.concat_map
    (fun f ->
      let p = Filename.concat dir f in
      if Sys.is_directory p then files_under p else [ p ])
    (Array.to_list (Sys.readdir dir))

(* Whole-run report entries only: partition-level entries live in the
   "punit" namespace (an extra directory level) and are not counted. *)
let report_entries dir =
  List.concat_map
    (fun f ->
      let p = Filename.concat dir f in
      if f = "punit" then []
      else if Sys.is_directory p then files_under p
      else [ p ])
    (Array.to_list (Sys.readdir dir))

(* ------------------------------------------------------------------ *)
(* Store basics                                                        *)
(* ------------------------------------------------------------------ *)

let test_round_trip () =
  with_dir (fun dir ->
      let st = Store.open_store ~dir () in
      let key = Store.key st [ "prog"; "source text" ] in
      let fingerprint = "opts/v1" in
      check_bool "empty store misses" true
        (Store.find st ~key ~fingerprint = (None : string option));
      Store.store st ~key ~fingerprint "the result";
      (match Store.find st ~key ~fingerprint with
      | Some v -> check_string "round-trips the value" "the result" v
      | None -> Alcotest.fail "stored entry should be found");
      let s = Store.stats st in
      check_int "two lookups" 2 s.Store.lookups;
      check_int "one hit" 1 s.Store.hits;
      check_int "one miss" 1 s.Store.misses;
      check_int "one write" 1 s.Store.writes;
      check_int "nothing rejected" 0 s.Store.rejected)

let test_structured_value () =
  with_dir (fun dir ->
      let st = Store.open_store ~dir () in
      let key = Store.key st [ "structured" ] in
      let v = [ (1, "one", [| true; false |]); (2, "two", [| false |]) ] in
      Store.store st ~key ~fingerprint:"f" v;
      check_bool "structured value round-trips" true
        (Store.find st ~key ~fingerprint:"f" = Some v))

let test_fingerprint_mismatch () =
  with_dir (fun dir ->
      let st = Store.open_store ~dir () in
      let key = Store.key st [ "prog" ] in
      Store.store st ~key ~fingerprint:"options/v1" 42;
      check_bool "wrong fingerprint misses" true
        (Store.find st ~key ~fingerprint:"options/v2" = (None : int option));
      check_int "mismatch counted as rejected" 1 (Store.stats st).Store.rejected;
      (* The stale entry is dropped, so even the right fingerprint now
         misses — the caller re-solves and rewrites. *)
      check_bool "stale entry was removed" true
        (Store.find st ~key ~fingerprint:"options/v1" = (None : int option)))

let test_stamp_mismatch () =
  with_dir (fun dir ->
      let writer = Store.open_store ~stamp:"build-A" ~dir () in
      let key = Store.key writer [ "prog" ] in
      Store.store writer ~key ~fingerprint:"f" 42;
      (* A different build must not see the entry (and, since keys are
         salted with the stamp, normally computes a different key; probe
         the same file deliberately). *)
      let reader = Store.open_store ~stamp:"build-B" ~dir () in
      check_bool "other build rejects the entry" true
        (Store.find reader ~key ~fingerprint:"f" = (None : int option));
      check_int "stamp mismatch counted as rejected" 1
        (Store.stats reader).Store.rejected;
      check_bool "keys are salted with the stamp" true
        (Store.key writer [ "prog" ] <> Store.key reader [ "prog" ]))

let corrupt_last_byte path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  let b = Bytes.of_string content in
  Bytes.set b (n - 1) (Char.chr (Char.code (Bytes.get b (n - 1)) lxor 0xff));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let test_corruption_and_truncation () =
  with_dir (fun dir ->
      let st = Store.open_store ~dir () in
      let key = Store.key st [ "prog" ] in
      let entry () =
        match report_entries dir with
        | [ p ] -> p
        | files ->
            Alcotest.failf "expected exactly one entry file, found %d"
              (List.length files)
      in
      (* Flipped payload byte: digest check rejects, reader survives. *)
      Store.store st ~key ~fingerprint:"f" (Some [ 1; 2; 3 ]);
      corrupt_last_byte (entry ());
      check_bool "corrupt entry rejected" true
        (Store.find st ~key ~fingerprint:"f" = (None : int list option option));
      (* Truncated file: ditto. *)
      Store.store st ~key ~fingerprint:"f" (Some [ 1; 2; 3 ]);
      let p = entry () in
      let oc = open_out_gen [ Open_wronly ] 0o644 p in
      Unix.ftruncate (Unix.descr_of_out_channel oc) 20;
      close_out oc;
      check_bool "truncated entry rejected" true
        (Store.find st ~key ~fingerprint:"f" = (None : int list option option));
      (* Garbage from scratch: not even a header. *)
      Store.store st ~key ~fingerprint:"f" (Some [ 1; 2; 3 ]);
      let oc = open_out_bin (entry ()) in
      output_string oc "this is not a cache entry";
      close_out oc;
      check_bool "garbage entry rejected" true
        (Store.find st ~key ~fingerprint:"f" = (None : int list option option));
      check_int "all three rejections counted" 3
        (Store.stats st).Store.rejected;
      (* After a rewrite the entry serves again. *)
      Store.store st ~key ~fingerprint:"f" (Some [ 1; 2; 3 ]);
      check_bool "rewritten entry serves" true
        (Store.find st ~key ~fingerprint:"f" = Some (Some [ 1; 2; 3 ])))

let test_unwritable_dir () =
  (* Writes into an impossible root are swallowed; lookups miss. *)
  let st =
    Store.open_store ~dir:"/dev/null/not-a-directory/cache" ()
  in
  let key = Store.key st [ "prog" ] in
  Store.store st ~key ~fingerprint:"f" 42;
  check_bool "write failure swallowed" true
    ((Store.stats st).Store.write_errors > 0);
  check_bool "lookup just misses" true
    (Store.find st ~key ~fingerprint:"f" = (None : int option))

(* ------------------------------------------------------------------ *)
(* Pipeline integration                                                *)
(* ------------------------------------------------------------------ *)

let src_safe =
  "let rec sum k =\n\
  \  if k < 0 then 0\n\
  \  else begin\n\
  \    let s = sum (k - 1) in\n\
  \    s + k\n\
  \  end"

(* All items are named: anonymous items get gensym'd names, whose
   stamps drift across repeated in-process runs and would spoil the
   byte-for-byte report comparisons below. *)
let src_unsafe = "let a = Array.make 5 0\nlet bad = a.(7)"

let report_fingerprint (r : Pipeline.report) =
  Fmt.str "safe=%b errors=[%a] types=[%a]" r.Pipeline.safe
    Fmt.(list ~sep:(any ";") Pipeline.pp_error)
    r.Pipeline.errors
    Fmt.(
      list ~sep:(any ";") (fun ppf (x, t) ->
          Fmt.pf ppf "%a : %a" Liquid_common.Ident.pp x Liquid_infer.Rtype.pp
            (Liquid_infer.Report.display t)))
    r.Pipeline.item_types

let test_pipeline_cold_then_hit () =
  with_dir (fun dir ->
      let options = { Pipeline.default with Pipeline.cache_dir = Some dir } in
      let cold = Pipeline.verify_string ~options ~name:"sum.ml" src_safe in
      check_int "cold run probes the cache" 1
        cold.Pipeline.stats.Pipeline.n_pcache_lookups;
      check_int "cold run misses" 0 cold.Pipeline.stats.Pipeline.n_pcache_hits;
      let warm = Pipeline.verify_string ~options ~name:"sum.ml" src_safe in
      check_int "warm run hits" 1 warm.Pipeline.stats.Pipeline.n_pcache_hits;
      check_string "warm report identical to cold" (report_fingerprint cold)
        (report_fingerprint warm);
      (* A different program in the same store is a separate entry. *)
      let other = Pipeline.verify_string ~options ~name:"bad.ml" src_unsafe in
      check_int "different source misses" 0
        other.Pipeline.stats.Pipeline.n_pcache_hits;
      check_bool "and is genuinely re-verified" false other.Pipeline.safe)

let test_pipeline_key_sensitivity () =
  with_dir (fun dir ->
      let options = { Pipeline.default with Pipeline.cache_dir = Some dir } in
      ignore (Pipeline.verify_string ~options ~name:"a.ml" src_safe);
      (* Same source under a different name: the entry must not be
         shared — cached error locations embed the file name. *)
      let renamed = Pipeline.verify_string ~options ~name:"b.ml" src_safe in
      check_int "different name misses" 0
        renamed.Pipeline.stats.Pipeline.n_pcache_hits;
      (* Same source under different qualifiers: fingerprint differs. *)
      let opts' =
        {
          options with
          Pipeline.quals =
            Liquid_infer.Qualifier.defaults
            @ Liquid_infer.Qualifier.parse_string "qualif Neg(v) : v < 0";
        }
      in
      check_bool "fingerprints differ across qualifier sets" true
        (Pipeline.options_fingerprint options
        <> Pipeline.options_fingerprint opts');
      let requalified = Pipeline.verify_string ~options:opts' ~name:"a.ml" src_safe in
      check_int "different qualifiers miss" 0
        requalified.Pipeline.stats.Pipeline.n_pcache_hits)

(* The satellite bugfix scenario end to end: a cache entry corrupted on
   disk is ignored and rewritten, and the verdict matches a cold run
   exactly. *)
let test_pipeline_corrupt_entry_recovers () =
  with_dir (fun dir ->
      let options = { Pipeline.default with Pipeline.cache_dir = Some dir } in
      let cold = Pipeline.verify_string ~options ~name:"bad.ml" src_unsafe in
      check_bool "program is unsafe" false cold.Pipeline.safe;
      let entry =
        match report_entries dir with
        | [ p ] -> p
        | files ->
            Alcotest.failf "expected exactly one entry file, found %d"
              (List.length files)
      in
      corrupt_last_byte entry;
      let recovered = Pipeline.verify_string ~options ~name:"bad.ml" src_unsafe in
      check_int "corrupt entry does not hit" 0
        recovered.Pipeline.stats.Pipeline.n_pcache_hits;
      (* The whole-run entry was corrupted, not the partition entries:
         the re-solve reuses every solved unit from the partition
         cache. *)
      check_bool "re-solve reuses cached partitions" true
        (recovered.Pipeline.stats.Pipeline.n_punit_hits > 0);
      check_string "verdict identical to the cold run"
        (report_fingerprint cold)
        (report_fingerprint recovered);
      (* The recovery rewrote the entry: next lookup hits again. *)
      let warm = Pipeline.verify_string ~options ~name:"bad.ml" src_unsafe in
      check_int "rewritten entry hits" 1
        warm.Pipeline.stats.Pipeline.n_pcache_hits;
      check_string "served verdict still identical"
        (report_fingerprint cold)
        (report_fingerprint warm))

(* ------------------------------------------------------------------ *)
(* Partition-level incremental re-verification                         *)
(* ------------------------------------------------------------------ *)

(* Two independent functions, each with a branch join so subtyping
   constraints actually materialize (a straight-line body flows its
   type directly and owns no subs to edit).  The edit below touches
   only [shift]'s else-arm, through a non-compared literal (1 → 2):
   arm values are not mined into qualifier constants, so [double]'s
   constraints, qualifier instances, and (absent) upstream dependencies
   are all unchanged and its unit keys are stable.  An edit to a
   {e compared} literal would change the mined constant set — a global
   qualifier input — and honestly miss every unit. *)
let src_two_v1 =
  "let double x = if x > 0 then x + x else 0\n\
   let shift y = if y > 0 then y + 3 else 1"

let src_two_v2 =
  "let double x = if x > 0 then x + x else 0\n\
   let shift y = if y > 0 then y + 3 else 2"

(* Same source re-verified when only the whole-run entry is gone: every
   partition key matches and nothing re-solves. *)
let test_punit_key_stability () =
  with_dir (fun dir ->
      let options = { Pipeline.default with Pipeline.cache_dir = Some dir } in
      let cold = Pipeline.verify_string ~options ~name:"two.ml" src_two_v1 in
      check_int "cold run has no partition hits" 0
        cold.Pipeline.stats.Pipeline.n_punit_hits;
      check_bool "cold run solves every unit live" true
        (cold.Pipeline.stats.Pipeline.n_punit_misses
        = cold.Pipeline.stats.Pipeline.n_partitions
        && cold.Pipeline.stats.Pipeline.n_partitions > 0);
      List.iter Sys.remove (report_entries dir);
      let warm = Pipeline.verify_string ~options ~name:"two.ml" src_two_v1 in
      check_int "whole-run entry is gone" 0
        warm.Pipeline.stats.Pipeline.n_pcache_hits;
      check_int "every unit reused" cold.Pipeline.stats.Pipeline.n_punit_misses
        warm.Pipeline.stats.Pipeline.n_punit_hits;
      check_int "nothing re-solved" 0
        warm.Pipeline.stats.Pipeline.n_punit_misses;
      check_string "report identical to the cold run"
        (report_fingerprint cold) (report_fingerprint warm))

(* A one-function edit re-solves only the edited cone; the report still
   matches a cache-less verification byte for byte.  Exercised at
   [jobs = 1] (in-process sequential) and [jobs = 4] (forked workers +
   dispatch-time reuse). *)
let test_punit_cone_reuse jobs () =
  with_dir (fun dir ->
      let options =
        {
          Pipeline.default with
          Pipeline.cache_dir = Some dir;
          Pipeline.jobs = jobs;
        }
      in
      ignore (Pipeline.verify_string ~options ~name:"two.ml" src_two_v1);
      let warm = Pipeline.verify_string ~options ~name:"two.ml" src_two_v2 in
      check_int "edited source misses the whole-run cache" 0
        warm.Pipeline.stats.Pipeline.n_pcache_hits;
      check_bool "unedited partition reused" true
        (warm.Pipeline.stats.Pipeline.n_punit_hits >= 1);
      check_bool "edited cone re-solved" true
        (warm.Pipeline.stats.Pipeline.n_punit_misses >= 1);
      let reference =
        Pipeline.verify_string
          ~options:{ options with Pipeline.cache_dir = None }
          ~name:"two.ml" src_two_v2
      in
      check_string "report identical to an uncached run"
        (report_fingerprint reference)
        (report_fingerprint warm))

(* Stale tmp files (left by a crashed writer) are swept when a store
   handle is created; a live writer's tmp file is left alone. *)
let test_tmp_sweep () =
  with_dir (fun dir ->
      let st = Store.open_store ~stamp:"sweep-A" ~dir () in
      let key = Store.key st [ "prog" ] in
      Store.store st ~key ~fingerprint:"f" 42;
      let fan =
        match report_entries dir with
        | [ p ] -> Filename.dirname p
        | files ->
            Alcotest.failf "expected exactly one entry file, found %d"
              (List.length files)
      in
      (* A pid that is certainly dead: a child we already reaped. *)
      let dead_pid =
        match Unix.fork () with
        | 0 -> Unix._exit 0
        | pid ->
            ignore (Unix.waitpid [] pid);
            pid
      in
      let stale =
        Filename.concat fan (Printf.sprintf "x.bin.tmp.%d.0" dead_pid)
      in
      let live =
        Filename.concat fan (Printf.sprintf "y.bin.tmp.%d.0" (Unix.getpid ()))
      in
      List.iter
        (fun p ->
          let oc = open_out_bin p in
          output_string oc "partial write";
          close_out oc)
        [ stale; live ];
      (* Handles are memoized per (dir, stamp): a different stamp forces
         a genuinely fresh handle, whose creation sweeps. *)
      let st2 = Store.open_store ~stamp:"sweep-B" ~dir () in
      check_bool "stale tmp file removed" false (Sys.file_exists stale);
      check_bool "live writer's tmp file kept" true (Sys.file_exists live);
      check_int "sweep counted" 1 (Store.stats st2).Store.swept;
      check_bool "entries survive the sweep" true
        (Store.find st ~key ~fingerprint:"f" = Some 42);
      Sys.remove live)

let test_no_cache_dir_no_probes () =
  let r = Pipeline.verify_string ~name:"sum.ml" src_safe in
  check_int "no cache dir, no lookups" 0
    r.Pipeline.stats.Pipeline.n_pcache_lookups;
  check_int "no cache dir, no hits" 0 r.Pipeline.stats.Pipeline.n_pcache_hits

(* ------------------------------------------------------------------ *)
(* Per-run solver-state reset                                          *)
(* ------------------------------------------------------------------ *)

let test_reset_run_state () =
  Liquid_smt.Solver.last_cex := [ ("stale", Liquid_smt.Solver.Vint 99) ];
  Liquid_smt.Dpll.last_model := [ ("stale", Liquid_smt.Theory.Vint 1) ];
  Liquid_smt.Dpll.models_total := 123;
  Liquid_smt.Solver.reset_run_state ();
  check_bool "counterexample cleared" true (!Liquid_smt.Solver.last_cex = []);
  check_bool "DPLL model cleared" true (!Liquid_smt.Dpll.last_model = []);
  check_int "DPLL counters cleared" 0 !Liquid_smt.Dpll.models_total

(* An unsafe run leaves a counterexample behind; a subsequent pipeline
   run must start clean (the daemon scenario, in-process). *)
let test_pipeline_resets_cex () =
  let bad = Pipeline.verify_string ~name:"bad.ml" src_unsafe in
  check_bool "unsafe run produced errors" true (bad.Pipeline.errors <> []);
  let good = Pipeline.verify_string ~name:"sum.ml" src_safe in
  check_bool "clean run reports no errors" true (good.Pipeline.errors = []);
  check_bool "no stale counterexample survives the next run" true
    (!Liquid_smt.Solver.last_cex = [])

let tests =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    tc "store round-trips a value" test_round_trip;
    tc "store round-trips structured values" test_structured_value;
    tc "wrong fingerprint rejects and removes" test_fingerprint_mismatch;
    tc "wrong build stamp rejects" test_stamp_mismatch;
    tc "corrupt and truncated entries reject safely"
      test_corruption_and_truncation;
    tc "unwritable store degrades to a no-op" test_unwritable_dir;
    tc "pipeline: cold run then cache hit" test_pipeline_cold_then_hit;
    tc "pipeline: key covers name and qualifiers" test_pipeline_key_sensitivity;
    tc "pipeline: corrupt entry falls back and rewrites"
      test_pipeline_corrupt_entry_recovers;
    tc "punit: unchanged partitions all reuse" test_punit_key_stability;
    tc "punit: edit re-solves only its cone (jobs=1)"
      (test_punit_cone_reuse 1);
    tc "punit: edit re-solves only its cone (jobs=4)"
      (test_punit_cone_reuse 4);
    tc "store sweeps stale tmp files" test_tmp_sweep;
    tc "pipeline: no cache dir means no probes" test_no_cache_dir_no_probes;
    tc "reset_run_state clears answer state" test_reset_run_state;
    tc "pipeline runs start with clean solver state" test_pipeline_resets_cex;
  ]
