(* Tests for the persistent result cache: store round-trips, hygiene
   (stale stamps, wrong fingerprints, corrupt and truncated entries all
   fall back to a cold run), pipeline integration, and the per-run
   solver-state reset that keeps warm processes honest. *)

module Store = Liquid_cache.Store
module Pipeline = Liquid_driver.Pipeline

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let dir_counter = ref 0

(* A fresh directory per test: store handles (and their counters) are
   memoized per directory, so reuse would leak state across tests. *)
let fresh_dir () =
  incr dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dsolve-cache-test-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  Unix.mkdir dir 0o755;
  dir

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> try rm_rf dir with _ -> ()) (fun () -> f dir)

(* All regular files under [dir] (entry files of the store). *)
let rec files_under dir =
  List.concat_map
    (fun f ->
      let p = Filename.concat dir f in
      if Sys.is_directory p then files_under p else [ p ])
    (Array.to_list (Sys.readdir dir))

(* ------------------------------------------------------------------ *)
(* Store basics                                                        *)
(* ------------------------------------------------------------------ *)

let test_round_trip () =
  with_dir (fun dir ->
      let st = Store.open_store ~dir () in
      let key = Store.key st [ "prog"; "source text" ] in
      let fingerprint = "opts/v1" in
      check_bool "empty store misses" true
        (Store.find st ~key ~fingerprint = (None : string option));
      Store.store st ~key ~fingerprint "the result";
      (match Store.find st ~key ~fingerprint with
      | Some v -> check_string "round-trips the value" "the result" v
      | None -> Alcotest.fail "stored entry should be found");
      let s = Store.stats st in
      check_int "two lookups" 2 s.Store.lookups;
      check_int "one hit" 1 s.Store.hits;
      check_int "one miss" 1 s.Store.misses;
      check_int "one write" 1 s.Store.writes;
      check_int "nothing rejected" 0 s.Store.rejected)

let test_structured_value () =
  with_dir (fun dir ->
      let st = Store.open_store ~dir () in
      let key = Store.key st [ "structured" ] in
      let v = [ (1, "one", [| true; false |]); (2, "two", [| false |]) ] in
      Store.store st ~key ~fingerprint:"f" v;
      check_bool "structured value round-trips" true
        (Store.find st ~key ~fingerprint:"f" = Some v))

let test_fingerprint_mismatch () =
  with_dir (fun dir ->
      let st = Store.open_store ~dir () in
      let key = Store.key st [ "prog" ] in
      Store.store st ~key ~fingerprint:"options/v1" 42;
      check_bool "wrong fingerprint misses" true
        (Store.find st ~key ~fingerprint:"options/v2" = (None : int option));
      check_int "mismatch counted as rejected" 1 (Store.stats st).Store.rejected;
      (* The stale entry is dropped, so even the right fingerprint now
         misses — the caller re-solves and rewrites. *)
      check_bool "stale entry was removed" true
        (Store.find st ~key ~fingerprint:"options/v1" = (None : int option)))

let test_stamp_mismatch () =
  with_dir (fun dir ->
      let writer = Store.open_store ~stamp:"build-A" ~dir () in
      let key = Store.key writer [ "prog" ] in
      Store.store writer ~key ~fingerprint:"f" 42;
      (* A different build must not see the entry (and, since keys are
         salted with the stamp, normally computes a different key; probe
         the same file deliberately). *)
      let reader = Store.open_store ~stamp:"build-B" ~dir () in
      check_bool "other build rejects the entry" true
        (Store.find reader ~key ~fingerprint:"f" = (None : int option));
      check_int "stamp mismatch counted as rejected" 1
        (Store.stats reader).Store.rejected;
      check_bool "keys are salted with the stamp" true
        (Store.key writer [ "prog" ] <> Store.key reader [ "prog" ]))

let corrupt_last_byte path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  let b = Bytes.of_string content in
  Bytes.set b (n - 1) (Char.chr (Char.code (Bytes.get b (n - 1)) lxor 0xff));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let test_corruption_and_truncation () =
  with_dir (fun dir ->
      let st = Store.open_store ~dir () in
      let key = Store.key st [ "prog" ] in
      let entry () =
        match files_under dir with
        | [ p ] -> p
        | files ->
            Alcotest.failf "expected exactly one entry file, found %d"
              (List.length files)
      in
      (* Flipped payload byte: digest check rejects, reader survives. *)
      Store.store st ~key ~fingerprint:"f" (Some [ 1; 2; 3 ]);
      corrupt_last_byte (entry ());
      check_bool "corrupt entry rejected" true
        (Store.find st ~key ~fingerprint:"f" = (None : int list option option));
      (* Truncated file: ditto. *)
      Store.store st ~key ~fingerprint:"f" (Some [ 1; 2; 3 ]);
      let p = entry () in
      let oc = open_out_gen [ Open_wronly ] 0o644 p in
      Unix.ftruncate (Unix.descr_of_out_channel oc) 20;
      close_out oc;
      check_bool "truncated entry rejected" true
        (Store.find st ~key ~fingerprint:"f" = (None : int list option option));
      (* Garbage from scratch: not even a header. *)
      Store.store st ~key ~fingerprint:"f" (Some [ 1; 2; 3 ]);
      let oc = open_out_bin (entry ()) in
      output_string oc "this is not a cache entry";
      close_out oc;
      check_bool "garbage entry rejected" true
        (Store.find st ~key ~fingerprint:"f" = (None : int list option option));
      check_int "all three rejections counted" 3
        (Store.stats st).Store.rejected;
      (* After a rewrite the entry serves again. *)
      Store.store st ~key ~fingerprint:"f" (Some [ 1; 2; 3 ]);
      check_bool "rewritten entry serves" true
        (Store.find st ~key ~fingerprint:"f" = Some (Some [ 1; 2; 3 ])))

let test_unwritable_dir () =
  (* Writes into an impossible root are swallowed; lookups miss. *)
  let st =
    Store.open_store ~dir:"/dev/null/not-a-directory/cache" ()
  in
  let key = Store.key st [ "prog" ] in
  Store.store st ~key ~fingerprint:"f" 42;
  check_bool "write failure swallowed" true
    ((Store.stats st).Store.write_errors > 0);
  check_bool "lookup just misses" true
    (Store.find st ~key ~fingerprint:"f" = (None : int option))

(* ------------------------------------------------------------------ *)
(* Pipeline integration                                                *)
(* ------------------------------------------------------------------ *)

let src_safe =
  "let rec sum k =\n\
  \  if k < 0 then 0\n\
  \  else begin\n\
  \    let s = sum (k - 1) in\n\
  \    s + k\n\
  \  end"

(* All items are named: anonymous items get gensym'd names, whose
   stamps drift across repeated in-process runs and would spoil the
   byte-for-byte report comparisons below. *)
let src_unsafe = "let a = Array.make 5 0\nlet bad = a.(7)"

let report_fingerprint (r : Pipeline.report) =
  Fmt.str "safe=%b errors=[%a] types=[%a]" r.Pipeline.safe
    Fmt.(list ~sep:(any ";") Pipeline.pp_error)
    r.Pipeline.errors
    Fmt.(
      list ~sep:(any ";") (fun ppf (x, t) ->
          Fmt.pf ppf "%a : %a" Liquid_common.Ident.pp x Liquid_infer.Rtype.pp
            (Liquid_infer.Report.display t)))
    r.Pipeline.item_types

let test_pipeline_cold_then_hit () =
  with_dir (fun dir ->
      let options = { Pipeline.default with Pipeline.cache_dir = Some dir } in
      let cold = Pipeline.verify_string ~options ~name:"sum.ml" src_safe in
      check_int "cold run probes the cache" 1
        cold.Pipeline.stats.Pipeline.n_pcache_lookups;
      check_int "cold run misses" 0 cold.Pipeline.stats.Pipeline.n_pcache_hits;
      let warm = Pipeline.verify_string ~options ~name:"sum.ml" src_safe in
      check_int "warm run hits" 1 warm.Pipeline.stats.Pipeline.n_pcache_hits;
      check_string "warm report identical to cold" (report_fingerprint cold)
        (report_fingerprint warm);
      (* A different program in the same store is a separate entry. *)
      let other = Pipeline.verify_string ~options ~name:"bad.ml" src_unsafe in
      check_int "different source misses" 0
        other.Pipeline.stats.Pipeline.n_pcache_hits;
      check_bool "and is genuinely re-verified" false other.Pipeline.safe)

let test_pipeline_key_sensitivity () =
  with_dir (fun dir ->
      let options = { Pipeline.default with Pipeline.cache_dir = Some dir } in
      ignore (Pipeline.verify_string ~options ~name:"a.ml" src_safe);
      (* Same source under a different name: the entry must not be
         shared — cached error locations embed the file name. *)
      let renamed = Pipeline.verify_string ~options ~name:"b.ml" src_safe in
      check_int "different name misses" 0
        renamed.Pipeline.stats.Pipeline.n_pcache_hits;
      (* Same source under different qualifiers: fingerprint differs. *)
      let opts' =
        {
          options with
          Pipeline.quals =
            Liquid_infer.Qualifier.defaults
            @ Liquid_infer.Qualifier.parse_string "qualif Neg(v) : v < 0";
        }
      in
      check_bool "fingerprints differ across qualifier sets" true
        (Pipeline.options_fingerprint options
        <> Pipeline.options_fingerprint opts');
      let requalified = Pipeline.verify_string ~options:opts' ~name:"a.ml" src_safe in
      check_int "different qualifiers miss" 0
        requalified.Pipeline.stats.Pipeline.n_pcache_hits)

(* The satellite bugfix scenario end to end: a cache entry corrupted on
   disk is ignored and rewritten, and the verdict matches a cold run
   exactly. *)
let test_pipeline_corrupt_entry_recovers () =
  with_dir (fun dir ->
      let options = { Pipeline.default with Pipeline.cache_dir = Some dir } in
      let cold = Pipeline.verify_string ~options ~name:"bad.ml" src_unsafe in
      check_bool "program is unsafe" false cold.Pipeline.safe;
      let entry =
        match files_under dir with
        | [ p ] -> p
        | files ->
            Alcotest.failf "expected exactly one entry file, found %d"
              (List.length files)
      in
      corrupt_last_byte entry;
      let recovered = Pipeline.verify_string ~options ~name:"bad.ml" src_unsafe in
      check_int "corrupt entry does not hit" 0
        recovered.Pipeline.stats.Pipeline.n_pcache_hits;
      check_string "verdict identical to the cold run"
        (report_fingerprint cold)
        (report_fingerprint recovered);
      (* The recovery rewrote the entry: next lookup hits again. *)
      let warm = Pipeline.verify_string ~options ~name:"bad.ml" src_unsafe in
      check_int "rewritten entry hits" 1
        warm.Pipeline.stats.Pipeline.n_pcache_hits;
      check_string "served verdict still identical"
        (report_fingerprint cold)
        (report_fingerprint warm))

let test_no_cache_dir_no_probes () =
  let r = Pipeline.verify_string ~name:"sum.ml" src_safe in
  check_int "no cache dir, no lookups" 0
    r.Pipeline.stats.Pipeline.n_pcache_lookups;
  check_int "no cache dir, no hits" 0 r.Pipeline.stats.Pipeline.n_pcache_hits

(* ------------------------------------------------------------------ *)
(* Per-run solver-state reset                                          *)
(* ------------------------------------------------------------------ *)

let test_reset_run_state () =
  Liquid_smt.Solver.last_cex := [ ("stale", Liquid_smt.Solver.Vint 99) ];
  Liquid_smt.Dpll.last_model := [ ("stale", Liquid_smt.Theory.Vint 1) ];
  Liquid_smt.Dpll.models_total := 123;
  Liquid_smt.Solver.reset_run_state ();
  check_bool "counterexample cleared" true (!Liquid_smt.Solver.last_cex = []);
  check_bool "DPLL model cleared" true (!Liquid_smt.Dpll.last_model = []);
  check_int "DPLL counters cleared" 0 !Liquid_smt.Dpll.models_total

(* An unsafe run leaves a counterexample behind; a subsequent pipeline
   run must start clean (the daemon scenario, in-process). *)
let test_pipeline_resets_cex () =
  let bad = Pipeline.verify_string ~name:"bad.ml" src_unsafe in
  check_bool "unsafe run produced errors" true (bad.Pipeline.errors <> []);
  let good = Pipeline.verify_string ~name:"sum.ml" src_safe in
  check_bool "clean run reports no errors" true (good.Pipeline.errors = []);
  check_bool "no stale counterexample survives the next run" true
    (!Liquid_smt.Solver.last_cex = [])

let tests =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    tc "store round-trips a value" test_round_trip;
    tc "store round-trips structured values" test_structured_value;
    tc "wrong fingerprint rejects and removes" test_fingerprint_mismatch;
    tc "wrong build stamp rejects" test_stamp_mismatch;
    tc "corrupt and truncated entries reject safely"
      test_corruption_and_truncation;
    tc "unwritable store degrades to a no-op" test_unwritable_dir;
    tc "pipeline: cold run then cache hit" test_pipeline_cold_then_hit;
    tc "pipeline: key covers name and qualifiers" test_pipeline_key_sensitivity;
    tc "pipeline: corrupt entry falls back and rewrites"
      test_pipeline_corrupt_entry_recovers;
    tc "pipeline: no cache dir means no probes" test_no_cache_dir_no_probes;
    tc "reset_run_state clears answer state" test_reset_run_state;
    tc "pipeline runs start with clean solver state" test_pipeline_resets_cex;
  ]
