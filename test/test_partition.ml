(* Tests for partitioned constraint solving: solve-unit plans, the
   scheduler's fault isolation, re-interning of marshalled predicates,
   and determinism of verdicts across worker counts. *)

open Liquid_common
open Liquid_logic
open Liquid_infer
open Liquid_suite
open Liquid_engine

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let constraints_of src =
  let prog =
    Liquid_anf.Anf.normalize_program (Liquid_lang.Parser.program_of_string src)
  in
  let info = Liquid_typing.Infer.infer_program prog in
  let out = Congen.generate info prog in
  (out.Congen.wfs, out.Congen.subs)

(* Several independent top-level items, so the κ-dependency graph has
   more than one component. *)
let multi_src =
  "let f x = if x > 0 then x else 0 - x\n\
   let g y = y + 1\n\
   let a = Array.make 10 0\n\
   let _ = a.(5)\n\
   let _ = assert (f 3 >= 0)"

(* ------------------------------------------------------------------ *)
(* Plan structure                                                      *)
(* ------------------------------------------------------------------ *)

let test_plan_structure () =
  let wfs, subs = constraints_of multi_src in
  let plan = Constr.partition_plan wfs subs in
  let parts = Array.to_list plan.Constr.parts in
  check_bool "several partitions for independent items" true
    (List.length parts > 1);
  (* Ids are positional. *)
  List.iteri
    (fun i (p : Constr.partition) -> check_int "positional id" i p.Constr.part_id)
    parts;
  (* Topological numbering: every dependency has a smaller id. *)
  List.iter
    (fun (p : Constr.partition) ->
      check_bool "deps precede the partition" true
        (List.for_all (fun d -> d < p.Constr.part_id) p.Constr.part_deps))
    parts;
  (* Every constraint lands in exactly one partition. *)
  let assigned =
    List.concat_map
      (fun (p : Constr.partition) ->
        List.map (fun (c : Constr.sub) -> c.Constr.sub_id) p.Constr.part_subs)
      parts
  in
  check_int "every constraint assigned once" (List.length subs)
    (List.length (List.sort_uniq Int.compare assigned));
  check_int "no constraint dropped" (List.length subs) (List.length assigned);
  (* κ ownership is a partition of the κ universe. *)
  let owned = List.concat_map (fun p -> p.Constr.part_kvars) parts in
  check_int "κs owned exactly once" plan.Constr.plan_kvars
    (List.length (List.sort_uniq Int.compare owned));
  check_int "κ universe covered" plan.Constr.plan_kvars (List.length owned);
  (* A κ-weakening constraint lives in the partition owning its κ. *)
  List.iter
    (fun (p : Constr.partition) ->
      List.iter
        (fun (c : Constr.sub) ->
          match Constr.writes c with
          | Some k ->
              check_bool "writer placed with its κ" true
                (List.mem k p.Constr.part_kvars)
          | None -> ())
        p.Constr.part_subs)
    parts;
  check_bool "critical path is positive and bounded" true
    (plan.Constr.critical_path >= 1
    && plan.Constr.critical_path <= List.length parts)

(* ------------------------------------------------------------------ *)
(* Re-interning marshalled predicates                                  *)
(* ------------------------------------------------------------------ *)

let test_rehash_round_trip () =
  let x = Term.var (Ident.of_string "x") Sort.Int in
  let p =
    Pred.conj
      [
        Pred.le (Term.int 0) x;
        Pred.imp (Pred.bvar (Ident.of_string "b")) (Pred.lt x (Term.int 8));
      ]
  in
  let foreign : Pred.t = Marshal.from_string (Marshal.to_string p []) 0 in
  check_bool "unmarshalled predicate is physically foreign" false
    (p == foreign);
  let rehashed = Pred.rehasher () foreign in
  check_bool "rehashing restores the canonical node" true (p == rehashed);
  check_bool "printed forms agree" true
    (Pred.to_string p = Pred.to_string foreign)

(* ------------------------------------------------------------------ *)
(* Scheduler: ordering, timeouts, crashes                              *)
(* ------------------------------------------------------------------ *)

let with_fault hook f =
  Scheduler.fault_hook := hook;
  Fun.protect ~finally:(fun () -> Scheduler.fault_hook := fun _ -> None) f

let test_scheduler_order () =
  (* Diamond: 0 → {1, 2} → 3. *)
  let deps = function 1 | 2 -> [ 0 ] | 3 -> [ 1; 2 ] | _ -> [] in
  let order = ref [] in
  let results = Array.make 4 (-1) in
  Scheduler.run ~jobs:2 ~n_units:4 ~deps
    ~work:(fun u -> u * 10)
    ~merge:(fun u outcome _elapsed ->
      order := u :: !order;
      match outcome with
      | Scheduler.Done r -> results.(u) <- r
      | Scheduler.Failed _ -> ())
    ();
  check_bool "all units produced results" true
    (Array.to_list results = [ 0; 10; 20; 30 ]);
  let merge_order = List.rev !order in
  check_bool "source merged first" true (List.hd merge_order = 0);
  check_bool "sink merged last" true
    (List.nth merge_order 3 = 3)

let test_scheduler_crash_isolation () =
  with_fault
    (fun u -> if u = 1 then Some Scheduler.Crash else None)
    (fun () ->
      let outcomes = Array.make 3 None in
      Scheduler.run ~jobs:2 ~n_units:3
        ~deps:(fun _ -> [])
        ~work:(fun u -> u)
        ~merge:(fun u o _ -> outcomes.(u) <- Some o)
        ();
      (match outcomes.(1) with
      | Some (Scheduler.Failed { timed_out; attempts; _ }) ->
          check_bool "crash is not a timeout" false timed_out;
          check_int "crashed unit retried once" 2 attempts
      | _ -> Alcotest.fail "crashed unit should fail after retry");
      List.iter
        (fun u ->
          match outcomes.(u) with
          | Some (Scheduler.Done r) -> check_int "healthy unit unaffected" u r
          | _ -> Alcotest.fail "healthy unit should complete")
        [ 0; 2 ])

let test_scheduler_timeout () =
  with_fault
    (fun u -> if u = 0 then Some Scheduler.Hang else None)
    (fun () ->
      let outcome = ref None in
      Scheduler.run ~timeout:0.2 ~jobs:2 ~n_units:2
        ~deps:(fun _ -> [])
        ~work:(fun u -> u)
        ~merge:(fun u o _ -> if u = 0 then outcome := Some o)
        ();
      match !outcome with
      | Some (Scheduler.Failed { timed_out; attempts; _ }) ->
          check_bool "hang reported as timeout" true timed_out;
          check_int "hung unit retried once" 2 attempts
      | _ -> Alcotest.fail "hung unit should time out")

(* ------------------------------------------------------------------ *)
(* Pipeline fault isolation: degradation and the P001 diagnostic       *)
(* ------------------------------------------------------------------ *)

let sharded_options =
  {
    Liquid_driver.Pipeline.default with
    Liquid_driver.Pipeline.jobs = 2;
    partition_timeout = Some 0.2;
  }

let has_p001 (r : Liquid_driver.Pipeline.report) =
  List.exists
    (fun (d : Liquid_analysis.Diagnostic.t) ->
      Liquid_analysis.Diagnostic.code_name d.Liquid_analysis.Diagnostic.code
      = "P001")
    r.Liquid_driver.Pipeline.lints

let test_pipeline_degradation fault =
  (* The program must actually shard for the fault to be exercised. *)
  let base = Liquid_driver.Pipeline.verify_string multi_src in
  check_bool "program shards" true
    (base.Liquid_driver.Pipeline.stats.Liquid_driver.Pipeline.n_partitions > 1);
  check_bool "program safe without faults" true
    base.Liquid_driver.Pipeline.safe;
  with_fault
    (fun u -> if u = 0 then Some fault else None)
    (fun () ->
      let r =
        Liquid_driver.Pipeline.verify_string ~options:sharded_options multi_src
      in
      check_bool "degraded run surfaces P001" true (has_p001 r);
      check_bool "P001 gates --warn-error" true
        (Liquid_analysis.Lint.warnings r.Liquid_driver.Pipeline.lints <> []);
      check_bool "a partition is marked degraded" true
        (List.exists
           (fun (p : Liquid_driver.Pipeline.part_stat) ->
             p.Liquid_driver.Pipeline.pt_degraded)
           r.Liquid_driver.Pipeline.stats.Liquid_driver.Pipeline.partitions))

let test_hang_degrades () = test_pipeline_degradation Scheduler.Hang
let test_crash_degrades () = test_pipeline_degradation Scheduler.Crash

(* Without faults, a sharded run of the same program matches the
   sequential verdict and diagnostics exactly. *)
let test_sharded_clean () =
  let seq = Liquid_driver.Pipeline.verify_string multi_src in
  let par =
    Liquid_driver.Pipeline.verify_string
      ~options:{ Liquid_driver.Pipeline.default with Liquid_driver.Pipeline.jobs = 4 }
      multi_src
  in
  check_bool "same verdict" true
    (seq.Liquid_driver.Pipeline.safe = par.Liquid_driver.Pipeline.safe);
  check_bool "no spurious diagnostics" true
    (par.Liquid_driver.Pipeline.lints = []);
  check_bool "no degraded partitions" true
    (List.for_all
       (fun (p : Liquid_driver.Pipeline.part_stat) ->
         not p.Liquid_driver.Pipeline.pt_degraded)
       par.Liquid_driver.Pipeline.stats.Liquid_driver.Pipeline.partitions)

(* ------------------------------------------------------------------ *)
(* Determinism: the whole suite agrees across worker counts            *)
(* ------------------------------------------------------------------ *)

let jobs_fingerprint jobs =
  List.map
    (fun (b : Programs.benchmark) ->
      let row = Runner.verify ~jobs b in
      let rep = row.Runner.report in
      ( b.Programs.name,
        rep.Liquid_driver.Pipeline.safe,
        rep.Liquid_driver.Pipeline.stats.Liquid_driver.Pipeline.n_partitions,
        List.map
          (fun (e : Liquid_driver.Pipeline.error) ->
            Fmt.str "%a: %s: %s" Liquid_common.Loc.pp
              e.Liquid_driver.Pipeline.err_loc
              e.Liquid_driver.Pipeline.err_reason
              e.Liquid_driver.Pipeline.err_goal)
          rep.Liquid_driver.Pipeline.errors,
        List.map
          (fun (x, t) ->
            Fmt.str "%a : %a" Liquid_common.Ident.pp x Liquid_infer.Rtype.pp
              (Liquid_infer.Report.display t))
          rep.Liquid_driver.Pipeline.item_types ))
    Programs.all

let test_jobs_determinism () =
  let reference = jobs_fingerprint 1 in
  (* Guard against the sharded path silently never engaging. *)
  check_bool "some benchmark has several partitions" true
    (List.exists (fun (_, _, n, _, _) -> n > 1) reference);
  List.iter
    (fun jobs ->
      List.iter2
        (fun (name, safe_r, parts_r, errs_r, types_r)
             (_, safe_j, parts_j, errs_j, types_j) ->
          let tag = Fmt.str "%s @ jobs=%d" name jobs in
          check_bool (tag ^ ": same verdict") true (safe_r = safe_j);
          check_bool (tag ^ ": same partition plan") true (parts_r = parts_j);
          check_bool (tag ^ ": same errors") true (errs_r = errs_j);
          check_bool (tag ^ ": same inferred types") true (types_r = types_j))
        reference (jobs_fingerprint jobs))
    [ 2; 4 ]

let tests =
  let tc name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  [
    tc "partition plan structure" test_plan_structure;
    tc "rehash round-trips marshalled predicates" test_rehash_round_trip;
    tc "scheduler respects dependencies" test_scheduler_order;
    tc "scheduler isolates crashes" test_scheduler_crash_isolation;
    tc "scheduler kills hung workers" test_scheduler_timeout;
    tc "hung partition degrades with P001" test_hang_degrades;
    tc "crashed partition degrades with P001" test_crash_degrades;
    tc "clean sharded run matches sequential" test_sharded_clean;
    slow "suite verdicts agree at jobs 1/2/4" test_jobs_determinism;
  ]
