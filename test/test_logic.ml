(* Tests for the logic layer: terms, predicates, substitution,
   simplification. *)

open Liquid_logic
open Liquid_common
let tlen t = Term.app Symbol.len [ t ]

let x = Term.var "x" Sort.Int
let y = Term.var "y" Sort.Int
let a = Term.var "a" Sort.Obj
let i n = Term.int n

let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* -- Terms ---------------------------------------------------------- *)

let test_term_smart_constructors () =
  check_bool "0 + x = x" true (Term.equal (Term.add (i 0) x) x);
  check_bool "x - 0 = x" true (Term.equal (Term.sub x (i 0)) x);
  check_bool "1 * x = x" true (Term.equal (Term.mul (i 1) x) x);
  check_bool "0 * x = 0" true (Term.equal (Term.mul (i 0) x) (i 0));
  check_bool "2 + 3 folds" true (Term.equal (Term.add (i 2) (i 3)) (i 5));
  check_bool "neg neg x = x" true (Term.equal (Term.neg (Term.neg x)) x);
  check_bool "neg of const folds" true (Term.equal (Term.neg (i 4)) (i (-4)))

let test_term_sorts () =
  Alcotest.(check bool) "var sort" true (Sort.equal (Term.sort x) Sort.Int);
  Alcotest.(check bool) "len sort" true
    (Sort.equal (Term.sort (tlen a)) Sort.Int);
  Alcotest.(check bool) "obj var sort" true (Sort.equal (Term.sort a) Sort.Obj);
  Alcotest.(check bool) "add sort" true
    (Sort.equal (Term.sort (Term.add x y)) Sort.Int)

let test_term_subst () =
  let t = Term.add x (Term.mul (i 2) y) in
  let t' = Term.subst1 "x" (i 5) t in
  check_bool "x gone" false (Term.mem_var "x" t');
  check_bool "y kept" true (Term.mem_var "y" t');
  (* simultaneous substitution: x := y, y := x swaps *)
  let m = Ident.Map.of_seq (List.to_seq [ ("x", y); ("y", x) ]) in
  let swapped = Term.subst m (Term.sub x y) in
  check_bool "simultaneous swap" true
    (Term.equal swapped (Term.make (Term.Sub (y, x))))

let test_term_arity_check () =
  check_bool "len arity enforced" true
    (try
       ignore (Term.app Symbol.len [ a; a ]);
       false
     with Invalid_argument _ -> true)

(* -- Predicates --------------------------------------------------------- *)

let test_pred_constant_folding () =
  check_bool "3 < 5 folds" true (Pred.is_true (Pred.lt (i 3) (i 5)));
  check_bool "5 < 3 folds" true (Pred.is_false (Pred.lt (i 5) (i 3)));
  check_bool "x = x folds" true (Pred.is_true (Pred.eq x x));
  check_bool "x < x folds" true (Pred.is_false (Pred.lt x x));
  check_bool "x <= x folds" true (Pred.is_true (Pred.le x x))

let test_pred_connective_simplification () =
  let p = Pred.lt x y in
  check_bool "and true" true (Pred.equal (Pred.and_ p Pred.tt) p);
  check_bool "and false" true (Pred.is_false (Pred.and_ p Pred.ff));
  check_bool "or false" true (Pred.equal (Pred.or_ p Pred.ff) p);
  check_bool "or true" true (Pred.is_true (Pred.or_ p Pred.tt));
  check_bool "imp to true" true (Pred.is_true (Pred.imp p Pred.tt));
  check_bool "not not" true (Pred.equal (Pred.not_ (Pred.not_ p)) p);
  check_bool "negated atom flips" true
    (Pred.equal (Pred.not_ (Pred.lt x y)) (Pred.ge x y));
  check_bool "conj dedups" true
    (Pred.equal (Pred.conj [ p; p; Pred.tt; p ]) p);
  check_bool "nested conj flattens" true
    (match Pred.view (Pred.conj [ Pred.and_ p (Pred.le x y); Pred.ge y x ]) with
    | Pred.And l -> List.length l = 3
    | _ -> false)

let test_pred_free_vars () =
  let p = Pred.and_ (Pred.lt x y) (Pred.bvar "b") in
  let fv = List.map fst (Pred.free_vars p) in
  check_bool "x free" true (List.mem "x" fv);
  check_bool "y free" true (List.mem "y" fv);
  check_bool "b free" true (List.mem "b" fv);
  check_bool "b has bool sort" true
    (List.exists
       (fun (v, s) -> v = "b" && Sort.equal s Sort.Bool)
       (Pred.free_vars p))

let test_pred_subst_bool () =
  (* substituting a predicate for a boolean variable *)
  let p = Pred.imp (Pred.bvar "b") (Pred.lt x y) in
  let p' = Pred.subst1 "b" (Pred.Pr (Pred.lt y x)) p in
  check_str "bool substitution" "(y < x => x < y)" (Pred.to_string p');
  (* Tm substitution into Bvar with a bool-sorted var renames it *)
  let q = Pred.subst1 "b" (Pred.Tm (Term.var "c" Sort.Bool)) (Pred.bvar "b") in
  check_bool "bvar renamed" true (Pred.equal q (Pred.bvar "c"))

let test_pred_symbols () =
  let p = Pred.lt (tlen a) (Term.app Symbol.mul [ x; y ]) in
  let syms = List.map Symbol.name (Pred.symbols p) in
  check_bool "len found" true (List.mem "len" syms);
  check_bool "mul found" true (List.mem "mul" syms)

(* -- Property tests --------------------------------------------------------- *)

let gen_small_term =
  let open QCheck.Gen in
  let vars = [ x; y ] in
  fix
    (fun self depth ->
      if depth = 0 then oneof [ map Term.int (int_range (-5) 5); oneofl vars ]
      else
        frequency
          [
            (2, map Term.int (int_range (-5) 5));
            (2, oneofl vars);
            (2, map2 Term.add (self (depth - 1)) (self (depth - 1)));
            (2, map2 Term.sub (self (depth - 1)) (self (depth - 1)));
          ])
    3

let prop_subst_identity =
  QCheck.Test.make ~count:200 ~name:"substituting x for x is identity"
    (QCheck.make gen_small_term)
    (fun t -> Term.equal (Term.subst1 "x" x t) t)

let prop_eval_subst_commute =
  QCheck.Test.make ~count:200
    ~name:"evaluation commutes with closing substitution"
    (QCheck.make QCheck.Gen.(pair gen_small_term (int_range (-10) 10)))
    (fun (t, n) ->
      let env = Ident.Map.of_seq (List.to_seq [ ("x", n); ("y", 3) ]) in
      let direct = Pred.eval_term env t in
      let substituted =
        Pred.eval_term
          (Ident.Map.singleton "y" 3)
          (Term.subst1 "x" (Term.int n) t)
      in
      direct = substituted)

let prop_not_involution =
  let gen =
    QCheck.Gen.(
      let* t1 = gen_small_term in
      let* t2 = gen_small_term in
      let* rel = oneofl Pred.[ Eq; Ne; Lt; Le; Gt; Ge ] in
      return (Pred.atom t1 rel t2))
  in
  QCheck.Test.make ~count:200 ~name:"not (not p) = p on atoms"
    (QCheck.make gen)
    (fun p -> Pred.equal (Pred.not_ (Pred.not_ p)) p)

let prop_smart_constructors_preserve_semantics =
  (* The smart constructors (folding, flattening) must not change the
     truth value of formulas under any assignment. *)
  let gen =
    QCheck.Gen.(
      let* t1 = gen_small_term in
      let* t2 = gen_small_term in
      let* t3 = gen_small_term in
      let* r1 = oneofl Pred.[ Eq; Lt; Le ] in
      let* r2 = oneofl Pred.[ Ne; Gt; Ge ] in
      return (t1, t2, t3, r1, r2))
  in
  QCheck.Test.make ~count:300 ~name:"smart constructors preserve semantics"
    (QCheck.make QCheck.Gen.(pair gen (pair small_signed_int small_signed_int)))
    (fun ((t1, t2, t3, r1, r2), (vx, vy)) ->
      let env =
        Ident.Map.of_seq (List.to_seq [ ("x", vx mod 7); ("y", vy mod 7) ])
      in
      let benv = Ident.Map.empty in
      let a1 = Pred.atom t1 r1 t2 and a2 = Pred.atom t2 r2 t3 in
      let raw_and = Pred.make (Pred.And [ a1; a2 ])
      and smart_and = Pred.and_ a1 a2 in
      let raw_or = Pred.make (Pred.Or [ a1; a2 ])
      and smart_or = Pred.or_ a1 a2 in
      Pred.eval env benv raw_and = Pred.eval env benv smart_and
      && Pred.eval env benv raw_or = Pred.eval env benv smart_or)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_subst_identity;
      prop_eval_subst_commute;
      prop_not_involution;
      prop_smart_constructors_preserve_semantics;
    ]

let tests =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    tc "term: smart constructors" test_term_smart_constructors;
    tc "term: sorts" test_term_sorts;
    tc "term: substitution" test_term_subst;
    tc "term: arity checking" test_term_arity_check;
    tc "pred: constant folding" test_pred_constant_folding;
    tc "pred: connective simplification" test_pred_connective_simplification;
    tc "pred: free variables" test_pred_free_vars;
    tc "pred: boolean substitution" test_pred_subst_bool;
    tc "pred: symbol collection" test_pred_symbols;
  ]
  @ qcheck_tests
