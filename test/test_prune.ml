(* Tests for the pre-fixpoint qualifier-space prune: soundness of each
   phase (orientation dedup, WF-refutation, sibling subsumption), report
   byte-identity with pruning on and off — sequential, sharded, through
   the persistent cache, and through the daemon — and the
   instantiation-time orientation collapse. *)

open Liquid_smt
open Liquid_logic
open Liquid_infer
open Liquid_suite
module Pipeline = Liquid_driver.Pipeline
module KMap = Constr.KMap

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A safe program with a self-recursive loop invariant: the invariant
   instances support themselves through the recursive constraint, the
   hard case for exact reinstatement. *)
let loop_src =
  "let a = Array.make 8 0\n\
   let rec go i = if i < Array.length a then begin a.(i) <- i; go (i + 1) \
   end else ()\n\
   let _ = go 0"

(* An unsafe program, so errors and explanations cross the prune path. *)
let overrun_src = "let a = Array.make 8 0\nlet _ = a.(8)"

let verify ?(prune = true) ?(jobs = 1) ?(explain = false) ?quals ?cache_dir
    ?(name = "test.ml") src =
  let options =
    { Pipeline.default with Pipeline.prune; jobs; explain; cache_dir }
  in
  let options =
    match quals with
    | None -> options
    | Some q -> { options with Pipeline.quals = q }
  in
  Pipeline.verify_string ~options ~name src

(* Everything report-shaped the user can observe, rendered: verdict,
   errors, inferred types, diagnostics (via [pp_report]), and the
   explanations (via their JSON).  Stats are deliberately excluded —
   prune counters and times legitimately differ. *)
let fingerprint (r : Pipeline.report) =
  ( r.Pipeline.safe,
    Fmt.str "%a" Pipeline.pp_report r,
    List.map
      (fun e ->
        Liquid_analysis.Json.to_string (Pipeline.json_of_explanation e))
      r.Pipeline.explanations )

let constraints_of src =
  let prog =
    Liquid_anf.Anf.normalize_program (Liquid_lang.Parser.program_of_string src)
  in
  let info = Liquid_typing.Infer.infer_program prog in
  let out = Congen.generate info prog in
  (out.Congen.wfs, out.Congen.subs)

(* ------------------------------------------------------------------ *)
(* The prune engages and the report does not move                      *)
(* ------------------------------------------------------------------ *)

let test_prune_active () =
  let on = verify ~prune:true loop_src in
  let off = verify ~prune:false loop_src in
  check_bool "program is safe" true on.Pipeline.safe;
  check_bool "prune parked instances" true
    (on.Pipeline.stats.Pipeline.n_quals_pruned > 0);
  check_int "unpruned run parks nothing" 0
    off.Pipeline.stats.Pipeline.n_quals_pruned;
  check_int "initial candidates counted pre-prune"
    off.Pipeline.stats.Pipeline.n_initial_candidates
    on.Pipeline.stats.Pipeline.n_initial_candidates;
  check_bool "reports byte-identical" true (fingerprint on = fingerprint off);
  (* Unsafe programs: errors and explanations are identical too. *)
  let eon = verify ~prune:true ~explain:true overrun_src in
  let eoff = verify ~prune:false ~explain:true overrun_src in
  check_bool "unsafe program stays unsafe" false eon.Pipeline.safe;
  check_bool "explanations produced" true (eon.Pipeline.explanations <> []);
  check_bool "unsafe reports byte-identical" true
    (fingerprint eon = fingerprint eoff)

(* ------------------------------------------------------------------ *)
(* Per-phase soundness, against the solver directly                    *)
(* ------------------------------------------------------------------ *)

(* Every parking decision must be re-derivable from first principles:
   a [Dup] normalizes like its representative; a [Refuted] instance is
   unsatisfiable under its κ's WF facts; a [Subsumed] instance is
   implied by the conjunction of the survivors (greedy deletion
   preserves the conjunctive meaning, so the final kept set suffices). *)
let test_phase_soundness () =
  let wfs, subs = constraints_of loop_src in
  (* An always-false qualifier guarantees phase-2 coverage. *)
  let quals =
    Qualifier.defaults @ Qualifier.parse_string "qualif Absurd(v) : v < v"
  in
  let init = Fixpoint.init_assignment quals wfs in
  let wf_facts = Prune.wf_facts wfs in
  let plan = Prune.analyze ~wf_facts subs init in
  check_bool "something was parked" true (Prune.total plan > 0);
  check_bool "the absurd instance was refuted" true (plan.Prune.n_refuted > 0);
  check_bool "subsumption engaged" true (plan.Prune.n_subsumed > 0);
  KMap.iter
    (fun k parked ->
      let facts =
        match KMap.find_opt k wf_facts with Some fs -> fs | None -> []
      in
      let kept =
        match KMap.find_opt k plan.Prune.kept with
        | Some ps -> List.map fst ps
        | None -> []
      in
      List.iter
        (fun (p, _, reason) ->
          match reason with
          | Prune.Dup rep ->
              check_bool "dup normalizes like its representative" true
                (Pred.compare (Prop.normalize p) (Prop.normalize rep) = 0)
          | Prune.Refuted ->
              check_bool "refuted instance unsat under WF facts" true
                (Solver.check_valid facts (Pred.not_ p) = Solver.Valid)
          | Prune.Subsumed ->
              check_bool "subsumed instance implied by survivors" true
                (Solver.check_valid (facts @ kept) p = Solver.Valid))
        parked)
    plan.Prune.parked

(* ------------------------------------------------------------------ *)
(* Instantiation-time orientation collapse                             *)
(* ------------------------------------------------------------------ *)

let test_alpha_collapse () =
  (* [_ >= v] instantiates to [x >= v], the orientation mirror of the
     default [v <= _] instance [v <= x]: it must collapse at
     instantiation, leaving the report exactly as with defaults only. *)
  let mirrored =
    Qualifier.defaults @ Qualifier.parse_string "qualif LeFlip(v) : _ >= v"
  in
  let withm = verify ~quals:mirrored loop_src in
  let base = verify loop_src in
  check_bool "mirrored instances collapsed" true
    (withm.Pipeline.stats.Pipeline.n_alpha_collapsed > 0);
  check_int "defaults alone collapse nothing" 0
    base.Pipeline.stats.Pipeline.n_alpha_collapsed;
  check_bool "report unchanged by the mirrored qualifier" true
    (fingerprint withm = fingerprint base)

(* ------------------------------------------------------------------ *)
(* Byte-identity across the suite, sequential and sharded              *)
(* ------------------------------------------------------------------ *)

let suite_fingerprint ~prune ~jobs =
  List.map
    (fun (b : Programs.benchmark) ->
      let row = Runner.verify ~prune ~jobs b in
      (b.Programs.name, fingerprint row.Runner.report, row.Runner.report))
    Programs.all

let test_suite_identity () =
  let reference = suite_fingerprint ~prune:false ~jobs:1 in
  let pruned = suite_fingerprint ~prune:true ~jobs:1 in
  List.iter2
    (fun (name, fp_r, _) (_, fp_p, _) ->
      check_bool (name ^ ": pruned report identical") true (fp_r = fp_p))
    reference pruned;
  (* The prune must actually engage somewhere on the suite — the CI
     gate relies on it. *)
  check_bool "suite parks instances" true
    (List.exists
       (fun (_, _, (r : Pipeline.report)) ->
         r.Pipeline.stats.Pipeline.n_quals_pruned > 0)
       pruned);
  (* And composes with partitioned solving. *)
  let sharded = suite_fingerprint ~prune:true ~jobs:4 in
  List.iter2
    (fun (name, fp_r, _) (_, fp_s, _) ->
      check_bool (name ^ ": sharded pruned report identical") true
        (fp_r = fp_s))
    reference sharded

(* ------------------------------------------------------------------ *)
(* Persistent cache: pruned and unpruned runs key separately           *)
(* ------------------------------------------------------------------ *)

let test_cache_replay () =
  Test_server.with_dir (fun base ->
      let expected = fingerprint (verify loop_src) in
      let cold = verify ~cache_dir:base loop_src in
      check_int "cold run misses" 0 cold.Pipeline.stats.Pipeline.n_pcache_hits;
      check_bool "cold cached report matches direct" true
        (fingerprint cold = expected);
      let warm = verify ~cache_dir:base loop_src in
      check_int "warm run served from disk" 1
        warm.Pipeline.stats.Pipeline.n_pcache_hits;
      check_bool "replayed report matches direct" true
        (fingerprint warm = expected);
      check_bool "replayed stats keep the prune counters" true
        (warm.Pipeline.stats.Pipeline.n_quals_pruned > 0);
      (* The options fingerprint separates prune from no-prune: an
         unpruned run must not be served the pruned entry. *)
      let off_cold = verify ~prune:false ~cache_dir:base loop_src in
      check_int "unpruned run does not hit the pruned entry" 0
        off_cold.Pipeline.stats.Pipeline.n_pcache_hits;
      check_bool "unpruned cached report matches too" true
        (fingerprint off_cold = expected);
      let off_warm = verify ~prune:false ~cache_dir:base loop_src in
      check_int "unpruned rerun hits its own entry" 1
        off_warm.Pipeline.stats.Pipeline.n_pcache_hits)

(* ------------------------------------------------------------------ *)
(* Daemon round-trip                                                   *)
(* ------------------------------------------------------------------ *)

let test_daemon_round_trip () =
  let expected = fingerprint (verify loop_src) in
  Test_server.with_server (fun sock ->
      Test_server.with_client sock (fun c ->
          let replies =
            Liquid_server.Client.verify c
              [ Liquid_server.Protocol.request ~name:"loop.ml" loop_src ]
          in
          let served = Test_server.expect_verified (List.hd replies) in
          check_bool "daemon-served report matches direct" true
            (fingerprint served = expected);
          check_bool "prune counters survive the socket" true
            (served.Pipeline.stats.Pipeline.n_quals_pruned > 0)))

let tests =
  let tc name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  [
    tc "prune engages, report unchanged" test_prune_active;
    tc "every parking decision is sound" test_phase_soundness;
    tc "orientation mirrors collapse at instantiation" test_alpha_collapse;
    slow "suite byte-identical prune on/off, jobs 1/4" test_suite_identity;
    tc "persistent cache keys prune separately" test_cache_replay;
    tc "daemon round-trips a pruned report" test_daemon_round_trip;
  ]
