(* Unit tests for refinement types and constraint machinery internals:
   substitution, selfification, instantiation, splitting, embedding. *)

open Liquid_infer
open Liquid_logic
open Liquid_common
open Liquid_typing
let tlen t = Term.app Symbol.len [ t ]

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let vv_int = Term.var Ident.vv Sort.Int

let int_r p = Rtype.Base (Rtype.Bint, Rtype.known p)
let show t = Fmt.str "%a" Rtype.pp t

(* -- Refinements ---------------------------------------------------------- *)

let test_refinement_ops () =
  let r = Rtype.known (Pred.le (Term.int 0) vv_int) in
  check_bool "known not trivial" false (Rtype.is_trivial r);
  check_bool "trivial is trivial" true (Rtype.is_trivial Rtype.trivial);
  let r2 = Rtype.strengthen (Pred.lt vv_int (Term.int 9)) r in
  check_bool "strengthen conjoins" true
    (Pred.equal r2.Rtype.preds
       (Pred.and_ (Pred.le (Term.int 0) vv_int) (Pred.lt vv_int (Term.int 9))));
  let k = Rtype.fresh_kvar_ref () in
  let m = Rtype.meet r k in
  check_int "meet keeps kvars" 1 (List.length m.Rtype.kvars);
  check_bool "meet keeps preds" true (Pred.equal m.Rtype.preds r.Rtype.preds)

let test_subst_through_kvar () =
  (* substitutions compose into pending substitutions *)
  let k = Rtype.fresh_kvar_ref () in
  let t = Rtype.Base (Rtype.Bint, k) in
  let t' = Rtype.subst1 "x" (Pred.Tm (Term.var "y" Sort.Int)) t in
  match t' with
  | Rtype.Base (_, { Rtype.kvars = [ (_, theta) ]; _ }) ->
      check_bool "x bound in theta" true (Ident.Map.mem "x" theta)
  | _ -> Alcotest.fail "shape"

let test_subst_respects_binders () =
  (* substitution does not cross a shadowing Fun binder *)
  let inner = int_r (Pred.eq vv_int (Term.var "x" Sort.Int)) in
  let f = Rtype.Fun ("x", int_r Pred.tt, inner) in
  let f' = Rtype.subst1 "x" (Pred.Tm (Term.int 5)) f in
  check_str "binder shields body" (show f) (show f')

let test_sorts () =
  check_bool "int sort" true
    (Sort.equal (Rtype.sort_of (int_r Pred.tt)) Sort.Int);
  check_bool "bool sort" true
    (Sort.equal (Rtype.sort_of (Rtype.Base (Rtype.Bbool, Rtype.trivial))) Sort.Bool);
  check_bool "array sort" true
    (Sort.equal
       (Rtype.sort_of (Rtype.Array (int_r Pred.tt, Rtype.trivial)))
       Sort.Obj)

(* -- Selfification ----------------------------------------------------------- *)

let test_selfify () =
  let t = Rtype.Base (Rtype.Bint, Rtype.fresh_kvar_ref ()) in
  match Rtype.selfify "x" t with
  | Rtype.Base (_, r) ->
      check_bool "kvar kept" true (List.length r.Rtype.kvars = 1);
      check_bool "equality added" true
        (Pred.equal r.Rtype.preds (Pred.eq vv_int (Term.var "x" Sort.Int)))
  | _ -> Alcotest.fail "shape"

let test_selfify_tuple_projections () =
  let t = Rtype.Tuple [ int_r Pred.tt; Rtype.Array (int_r Pred.tt, Rtype.trivial) ] in
  match Rtype.selfify "p" t with
  | Rtype.Tuple [ Rtype.Base (_, r0); Rtype.Array (_, r1) ] ->
      check_bool "component 0 projected" true
        (Pred.mem_var "p" r0.Rtype.preds);
      check_bool "component 1 projected" true
        (Pred.mem_var "p" r1.Rtype.preds)
  | _ -> Alcotest.fail "shape"

(* -- Templates & instantiation --------------------------------------------------- *)

let test_template_shapes () =
  let ml =
    Mltype.Tarrow (Mltype.Tint, Mltype.Tarray (Mltype.Tbool))
  in
  match Rtype.template ml with
  | Rtype.Fun (_, Rtype.Base (Rtype.Bint, r1), Rtype.Array (Rtype.Base (Rtype.Bbool, r2), r3)) ->
      check_int "kvar on arg" 1 (List.length r1.Rtype.kvars);
      check_int "kvar on elem" 1 (List.length r2.Rtype.kvars);
      check_int "kvar on array" 1 (List.length r3.Rtype.kvars)
  | _ -> Alcotest.fail "template shape"

let test_instantiate_shares_templates () =
  (* one type variable -> one shared instance template *)
  let scheme =
    Rtype.Fun ("x", Rtype.Tyvar (0, Rtype.trivial), Rtype.Tyvar (0, Rtype.trivial))
  in
  let inst = Rtype.instantiate scheme (Mltype.Tarrow (Mltype.Tint, Mltype.Tint)) in
  match inst with
  | Rtype.Fun (_, Rtype.Base (_, r1), Rtype.Base (_, r2)) ->
      check_bool "same kvar at both positions" true
        (List.map fst r1.Rtype.kvars = List.map fst r2.Rtype.kvars)
  | _ -> Alcotest.fail "shape"

let test_instantiate_transports_refinement () =
  (* {v:'a | v = x} instantiated at int keeps the (re-sorted) equality *)
  let self = Pred.eq (Term.var Ident.vv Sort.Obj) (Term.var "x" Sort.Obj) in
  let scheme = Rtype.Tyvar (0, Rtype.known self) in
  match Rtype.instantiate scheme Mltype.Tint with
  | Rtype.Base (Rtype.Bint, r) ->
      check_bool "equality re-sorted to int" true
        (Pred.equal
           (Pred.conj [ r.Rtype.preds ])
           (Pred.eq vv_int (Term.var "x" Sort.Int)))
  | _ -> Alcotest.fail "shape"

(* -- Splitting --------------------------------------------------------------------- *)

let origin = { Constr.loc = Loc.dummy; reason = "test" }

let test_split_base () =
  let t1 = int_r (Pred.eq vv_int (Term.int 3)) in
  let t2 = int_r (Pred.le (Term.int 0) vv_int) in
  let subs = Constr.split Constr.empty_env origin t1 t2 [] in
  check_int "one concrete sub" 1 (List.length subs);
  match (List.hd subs).Constr.rhs with
  | Constr.Rconc p ->
      check_bool "rhs is the goal" true
        (Pred.equal p (Pred.le (Term.int 0) vv_int))
  | _ -> Alcotest.fail "rhs kind"

let test_split_function_contravariance () =
  (* (f : {>=0} -> {>=1}) <: ({=5} -> {>=0}) splits into
     {=5} <: {>=0} (args flipped) and {>=1} <: {>=0} (results) *)
  let ge0 = int_r (Pred.ge vv_int (Term.int 0)) in
  let ge1 = int_r (Pred.ge vv_int (Term.int 1)) in
  let eq5 = int_r (Pred.eq vv_int (Term.int 5)) in
  let f1 = Rtype.Fun ("x", ge0, ge1) in
  let f2 = Rtype.Fun ("y", eq5, ge0) in
  let subs = Constr.split Constr.empty_env origin f1 f2 [] in
  check_int "two subs" 2 (List.length subs);
  (* arg constraint must have {=5} on the left *)
  check_bool "contravariant arg" true
    (List.exists
       (fun (c : Constr.sub) ->
         Pred.equal c.Constr.lhs.Rtype.preds (Pred.eq vv_int (Term.int 5)))
       subs)

let test_split_array_invariance () =
  let e1 = int_r (Pred.ge vv_int (Term.int 0)) in
  let e2 = int_r (Pred.ge vv_int (Term.int 1)) in
  let a1 = Rtype.Array (e1, Rtype.trivial) in
  let a2 = Rtype.Array (e2, Rtype.trivial) in
  let subs = Constr.split Constr.empty_env origin a1 a2 [] in
  (* both directions on elements (invariance) *)
  check_int "two element subs" 2 (List.length subs)

let test_split_list_covariance () =
  let e1 = int_r (Pred.ge vv_int (Term.int 0)) in
  let e2 = int_r (Pred.ge vv_int (Term.int 1)) in
  let l1 = Rtype.List (e1, Rtype.trivial) in
  let l2 = Rtype.List (e2, Rtype.trivial) in
  let subs = Constr.split Constr.empty_env origin l1 l2 [] in
  check_int "one element sub" 1 (List.length subs)

let test_split_shape_error () =
  check_bool "incompatible shapes rejected" true
    (match
       Constr.split Constr.empty_env origin (int_r Pred.tt)
         (Rtype.Base (Rtype.Bbool, Rtype.trivial))
         []
     with
    | exception Constr.Shape_error _ -> true
    | _ -> false)

(* -- Well-formedness and embedding ---------------------------------------------------- *)

let test_wf_scopes () =
  (* inner κ of a dependent function sees the binder *)
  let t = Rtype.template (Mltype.Tarrow (Mltype.Tint, Mltype.Tint)) in
  let wfs = Constr.split_wf Constr.empty_env t [] in
  check_int "two wf constraints" 2 (List.length wfs);
  let scoped =
    List.exists
      (fun (w : Constr.wf) ->
        List.length (Constr.scope_of_env w.Constr.wf_env) = 1)
      wfs
  in
  check_bool "result kvar sees the argument" true scoped

let test_embedding () =
  let env =
    Constr.empty_env
    |> Constr.bind_var "x" (int_r (Pred.ge vv_int (Term.int 2)))
    |> Constr.bind_var "a" (Rtype.Array (int_r Pred.tt, Rtype.trivial))
    |> Constr.guard (Pred.lt (Term.var "x" Sort.Int) (Term.int 10))
  in
  let facts, guards = Constr.embed_env (fun _ -> []) env in
  check_int "one guard" 1 (List.length guards);
  check_bool "x fact instantiated at x" true
    (List.exists
       (fun p -> Pred.equal p (Pred.ge (Term.var "x" Sort.Int) (Term.int 2)))
       facts);
  check_bool "array nonneg-length axiom" true
    (List.exists
       (fun p ->
         Pred.equal p
           (Pred.ge (tlen (Term.var "a" Sort.Obj)) (Term.int 0)))
       facts)

(* -- Display cleanup -------------------------------------------------------------------- *)

let test_report_minimization () =
  let p =
    Pred.conj
      [
        Pred.ge vv_int (Term.int 0);
        Pred.ge vv_int (Term.int 0); (* duplicate *)
        Pred.gt vv_int (Term.int 5); (* implies >= 0 *)
      ]
  in
  let q = Report.minimize_conjunction p in
  check_str "only the strongest conjunct remains" "v > 5" (Pred.to_string q)

let tests =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    tc "refinement operations" test_refinement_ops;
    tc "substitution composes into kvars" test_subst_through_kvar;
    tc "substitution respects binders" test_subst_respects_binders;
    tc "sorts" test_sorts;
    tc "selfify keeps kvars" test_selfify;
    tc "selfify projects tuples" test_selfify_tuple_projections;
    tc "template shapes" test_template_shapes;
    tc "instantiation shares per-tyvar templates" test_instantiate_shares_templates;
    tc "instantiation transports refinements" test_instantiate_transports_refinement;
    tc "split: base" test_split_base;
    tc "split: function contravariance" test_split_function_contravariance;
    tc "split: array invariance" test_split_array_invariance;
    tc "split: list covariance" test_split_list_covariance;
    tc "split: shape errors" test_split_shape_error;
    tc "wf: binder scoping" test_wf_scopes;
    tc "environment embedding" test_embedding;
    tc "report minimization" test_report_minimization;
  ]

(* Property: display minimization never changes a conjunction's meaning
   (checked by the SMT solver in both directions). *)
let gen_conj =
  let open QCheck.Gen in
  let vx = Term.var "x" Sort.Int and vy = Term.var "y" Sort.Int in
  let atom =
    let* t1 = oneofl [ vv_int; vx; vy ] in
    let* t2 = oneofl [ vv_int; vx; vy; Term.int 0; Term.int 3 ] in
    let* rel = oneofl Pred.[ Eq; Lt; Le; Gt; Ge ] in
    return (Pred.atom t1 rel t2)
  in
  let* n = int_range 1 5 in
  let* atoms = list_size (return n) atom in
  return (Pred.conj atoms)

let prop_minimization_preserves_meaning =
  QCheck.Test.make ~count:200
    ~name:"display minimization is semantics-preserving"
    (QCheck.make gen_conj)
    (fun p ->
      let q = Report.minimize_conjunction p in
      Liquid_smt.Solver.check_valid [ p ] q = Liquid_smt.Solver.Valid
      && Liquid_smt.Solver.check_valid [ q ] p = Liquid_smt.Solver.Valid)

let tests =
  tests @ [ QCheck_alcotest.to_alcotest prop_minimization_preserves_meaning ]
