(* Tests for gradual liquid mode: the verdict spectrum
   (SAFE / SAFE_MODULO / UNSAFE), residual identity and determinism
   across job counts, cache temperatures, and the daemon, runtime casts
   through the reference interpreter, repair hints that discharge their
   casts, degraded-partition obligations surfacing as residuals, and
   gradual/non-gradual cache-key separation in both directions. *)

open Liquid_logic
open Liquid_infer
module Pipeline = Liquid_driver.Pipeline
module Gradual = Liquid_gradual.Gradual
module Eval = Liquid_eval.Eval

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Programs (all items named: gensym stamps drift across processes)    *)
(* ------------------------------------------------------------------ *)

(* A genuine off-by-one: statically unprovable but not refuted, so
   gradual mode defers it to a runtime cast (which then fails). *)
let overrun_src =
  "let a = Array.make 10 0\n\
   let rec fill i =\n\
  \  if i <= 10 then begin\n\
  \    a.(i) <- i;\n\
  \    fill (i + 1)\n\
  \  end\n\
  \  else 0\n\
   let start = fill 0"

(* The same loop with the correct bound: under an empty qualifier set
   the bounds obligation is still unprovable (no invariant candidates),
   but every runtime check passes — the cast holds. *)
let held_src =
  "let a = Array.make 10 0\n\
   let rec fill i =\n\
  \  if i <= 9 then begin\n\
  \    a.(i) <- i;\n\
  \    fill (i + 1)\n\
  \  end\n\
  \  else 0\n\
   let start = fill 0"

(* A constant out-of-bounds read: the environment refutes the goal
   outright, so even gradual mode keeps it a hard error. *)
let refuted_src = "let a = Array.make 5 0\nlet bad = a.(7)"

(* Safe, but inexpressible without a non-negativity qualifier: under an
   empty qualifier set the assertion becomes a residual whose repair
   hint names the missing instance. *)
let sum_src =
  "let rec sum k =\n\
  \  if k < 0 then 0\n\
  \  else begin\n\
  \    let s = sum (k - 1) in\n\
  \    s + k\n\
  \  end\n\
   let total = sum 5\n\
   let ok = assert (0 <= total)"

(* Two independent off-by-one loops in separate solve units, plus a safe
   item: the partition plan shards, and the residual report must not
   depend on the schedule. *)
let sharded_src =
  "let a = Array.make 10 0\n\
   let rec fill i =\n\
  \  if i <= 10 then begin\n\
  \    a.(i) <- i;\n\
  \    fill (i + 1)\n\
  \  end\n\
  \  else 0\n\
   let start = fill 0\n\
   let b = Array.make 5 0\n\
   let rec fillb j =\n\
  \  if j <= 5 then begin\n\
  \    b.(j) <- j;\n\
  \    fillb (j + 1)\n\
  \  end\n\
  \  else 0\n\
   let startb = fillb 0\n\
   let h z = z + 1"

let gradual_options ?(quals = Qualifier.defaults) () =
  { Pipeline.default with Pipeline.quals; gradual = true }

let verify ?quals ?(options = gradual_options ?quals ()) ~name src =
  Pipeline.verify_string ~options ~name src

let render_residuals (r : Pipeline.report) =
  List.map
    (fun rc -> Fmt.str "%a" Gradual.pp_residual rc)
    r.Pipeline.residuals

let parse name src = Liquid_lang.Parser.program_of_string ~file:name src

(* ------------------------------------------------------------------ *)
(* Verdict spectrum                                                    *)
(* ------------------------------------------------------------------ *)

let test_verdict_spectrum () =
  (* SAFE: a provable program has no errors and no residuals. *)
  let safe = verify ~name:"safe.ml" "let x = 1\nlet ok = assert (x > 0)" in
  check_bool "safe program is safe" true safe.Pipeline.safe;
  check_int "safe program has no residuals" 0
    (List.length safe.Pipeline.residuals);
  check_bool "verdict is SAFE" true
    (Gradual.verdict_of ~errors:0 ~residuals:0 = Gradual.Safe);
  (* SAFE_MODULO: unprovable-but-unrefuted obligations become casts. *)
  let modulo = verify ~name:"overrun.ml" overrun_src in
  check_bool "no hard errors under gradual" true modulo.Pipeline.safe;
  check_int "one residual cast" 1 (List.length modulo.Pipeline.residuals);
  check_int "stats count the residual" 1
    modulo.Pipeline.stats.Pipeline.n_residuals;
  (* The same program without gradual is a plain failure. *)
  let plain =
    Pipeline.verify_string ~options:Pipeline.default ~name:"overrun.ml"
      overrun_src
  in
  check_bool "non-gradual run fails outright" false plain.Pipeline.safe;
  (* UNSAFE: a refuted obligation stays a hard error even under
     gradual. *)
  let unsafe = verify ~name:"bad.ml" refuted_src in
  check_bool "refuted obligation stays an error" false unsafe.Pipeline.safe;
  check_int "refuted obligation is not a residual" 0
    (List.length unsafe.Pipeline.residuals);
  check_int "exactly one hard error" 1 (List.length unsafe.Pipeline.errors)

let test_residual_shape () =
  let r = verify ~name:"overrun.ml" overrun_src in
  match r.Pipeline.residuals with
  | [ rc ] ->
      check_bool "id is content-addressed" true
        (String.length rc.Gradual.rc_id = 14
        && String.sub rc.Gradual.rc_id 0 2 = "r-");
      check_bool "id reproduces from origin and goal" true
        (rc.Gradual.rc_id
        = Gradual.residual_id rc.Gradual.rc_origin rc.Gradual.rc_goal);
      check_bool "residual keeps the falsifying witness" true
        (List.mem_assoc "i" rc.Gradual.rc_witness);
      check_bool "residual is not blamed on degradation" false
        rc.Gradual.rc_degraded;
      check_bool "residual carries its explanation" true
        (rc.Gradual.rc_explanation.Liquid_explain.Explain.ex_goal
        == rc.Gradual.rc_goal)
  | rcs -> Alcotest.failf "expected 1 residual, got %d" (List.length rcs)

(* ------------------------------------------------------------------ *)
(* Runtime casts                                                       *)
(* ------------------------------------------------------------------ *)

let test_cast_holds () =
  let r = verify ~quals:[] ~name:"held.ml" held_src in
  check_bool "unprovable under empty qualifiers" true
    (r.Pipeline.residuals <> []);
  let rr = Gradual.run_casts r.Pipeline.residuals (parse "held.ml" held_src) in
  check_bool "evaluation runs to completion" true rr.Gradual.rr_finished;
  List.iter
    (fun ((rc : Gradual.residual), st) ->
      match st with
      | Gradual.Held n ->
          check_bool
            (Fmt.str "cast %s checked at runtime" rc.Gradual.rc_id)
            true (n > 0)
      | Gradual.Unreached -> ()
      | Gradual.Failed _ ->
          Alcotest.failf "cast %s failed on a safe program" rc.Gradual.rc_id)
    rr.Gradual.rr_casts;
  check_bool "at least one cast was exercised" true
    (List.exists
       (fun (_, st) -> match st with Gradual.Held _ -> true | _ -> false)
       rr.Gradual.rr_casts)

let test_cast_fails_with_detail () =
  let r = verify ~name:"overrun.ml" overrun_src in
  let rr =
    Gradual.run_casts r.Pipeline.residuals (parse "overrun.ml" overrun_src)
  in
  let failed =
    List.filter_map
      (fun (_, st) ->
        match st with
        | Gradual.Failed { checks; detail } -> Some (checks, detail)
        | _ -> None)
      rr.Gradual.rr_casts
  in
  (match failed with
  | [ (checks, detail) ] ->
      check_bool "failure carries a detail message" true (detail <> "");
      check_bool "the cast was checked before failing" true (checks > 0)
  | fs -> Alcotest.failf "expected 1 failed cast, got %d" (List.length fs));
  (* A failed bounds check has no value to continue with: the run
     halts, and the halt is reported. *)
  check_bool "bounds failure halts evaluation" false rr.Gradual.rr_finished;
  check_bool "halt reason reported" true (rr.Gradual.rr_halt <> None)

(* A failed assertion inside an armed span is absorbed: the cast reports
   it and execution continues to the end of the program. *)
let test_armed_assert_absorbed () =
  (* [total] is 15 at runtime, so the assertion fails dynamically; under
     an empty qualifier set nothing is known about it statically, so the
     obligation is unprovable but not refuted — a residual, not an
     error. *)
  let src =
    "let rec sum k =\n\
    \  if k < 0 then 0\n\
    \  else begin\n\
    \    let s = sum (k - 1) in\n\
    \    s + k\n\
    \  end\n\
     let total = sum 5\n\
     let bad = assert (total > 100)\n\
     let after = 42"
  in
  let r = verify ~quals:[] ~name:"absorb.ml" src in
  check_bool "assertion becomes a residual" true (r.Pipeline.residuals <> []);
  let rr = Gradual.run_casts r.Pipeline.residuals (parse "absorb.ml" src) in
  check_bool "evaluation continues past the absorbed failure" true
    rr.Gradual.rr_finished;
  check_bool "the cast reports the dynamic failure" true
    (List.exists
       (fun (_, st) -> match st with Gradual.Failed _ -> true | _ -> false)
       rr.Gradual.rr_casts)

(* The same failing assertion with no cast armed keeps the interpreter's
   ordinary semantics (the eval hook must not change behaviour when it
   declines to recover). *)
let test_unarmed_assert_still_raises () =
  let src = "let x = 0 - 3\nlet bad = assert (x > 0)" in
  let prog = parse "plain.ml" src in
  (match Eval.run_program prog with
  | _ -> Alcotest.fail "expected Assertion_failure"
  | exception Eval.Assertion_failure _ -> ());
  (* With a hook that observes but never recovers, it still raises. *)
  let observed = ref 0 in
  let check _loc _kind ~ok:_ ~detail:_ =
    incr observed;
    false
  in
  (match Eval.run_program ~check prog with
  | _ -> Alcotest.fail "expected Assertion_failure under a non-recovering hook"
  | exception Eval.Assertion_failure _ -> ());
  check_bool "the hook observed the check" true (!observed > 0)

(* ------------------------------------------------------------------ *)
(* Repair hints discharge their casts                                  *)
(* ------------------------------------------------------------------ *)

let test_repair_discharges_cast () =
  let r = verify ~quals:[] ~name:"sum.ml" sum_src in
  check_bool "program is SAFE_MODULO, not UNSAFE" true r.Pipeline.safe;
  let rp =
    match r.Pipeline.residuals with
    | [ rc ] -> (
        match rc.Gradual.rc_explanation.Liquid_explain.Explain.ex_repair with
        | Some rp -> rp
        | None -> Alcotest.fail "expected a repair hint on the residual")
    | rcs -> Alcotest.failf "expected 1 residual, got %d" (List.length rcs)
  in
  let quals =
    Qualifier.parse_string
      (Fmt.str "qualif Fix(v) : %a" Pred.pp rp.Liquid_explain.Explain.rp_pred)
  in
  let fixed = verify ~quals ~name:"sum.ml" sum_src in
  check_bool "hinted qualifier keeps the program safe" true
    fixed.Pipeline.safe;
  check_int "hinted qualifier discharges the cast" 0
    (List.length fixed.Pipeline.residuals)

(* ------------------------------------------------------------------ *)
(* Degraded partitions become residuals                                *)
(* ------------------------------------------------------------------ *)

(* Feed [classify] a degraded partition directly: its never-checked
   concrete obligations must surface as synthesized residuals (marked
   degraded, no fabricated blame), not vanish and not become errors. *)
let test_degraded_residuals () =
  let prog =
    Liquid_anf.Anf.normalize_program
      (Liquid_lang.Parser.program_of_string held_src)
  in
  let info = Liquid_typing.Infer.infer_program prog in
  let out = Congen.generate info prog in
  (* Degrade the whole run: solve with κs pinned to ⊤ (the empty
     solution), as a timed-out partition leaves them. *)
  let solution = Constr.KMap.empty in
  let degraded_kvars =
    Liquid_common.Listx.dedup_ordered ~compare:Int.compare
      (List.filter_map (fun (c : Constr.sub) -> Constr.writes c) out.Congen.subs)
  in
  let residuals, hard =
    Gradual.classify ~wfs:out.Congen.wfs ~subs:out.Congen.subs ~solution
      ~quals:Qualifier.defaults ~consts:[] ~degraded_kvars
      ~degraded_subs:out.Congen.subs []
  in
  check_bool "no errors fabricated from a degraded partition" true (hard = []);
  check_bool "never-checked obligations surface as residuals" true
    (residuals <> []);
  List.iter
    (fun (rc : Gradual.residual) ->
      check_bool
        (Fmt.str "residual %s marked degraded" rc.Gradual.rc_id)
        true rc.Gradual.rc_degraded;
      check_bool "no witness was fabricated" true (rc.Gradual.rc_witness = []);
      check_bool "no blame fabricated over ⊤ κs" true
        (rc.Gradual.rc_explanation.Liquid_explain.Explain.ex_blame = []))
    residuals

(* ------------------------------------------------------------------ *)
(* Determinism: jobs, cache temperatures, daemon                       *)
(* ------------------------------------------------------------------ *)

let test_jobs_byte_identity () =
  let run jobs =
    Pipeline.verify_string
      ~options:{ (gradual_options ()) with Pipeline.jobs }
      ~name:"sharded.ml" sharded_src
  in
  let reference = run 1 in
  check_bool "program shards" true
    (reference.Pipeline.stats.Pipeline.n_partitions > 1);
  check_int "two residual casts" 2 (List.length reference.Pipeline.residuals);
  check_bool "no hard errors" true reference.Pipeline.safe;
  let expected = render_residuals reference in
  List.iter
    (fun jobs ->
      let got = render_residuals (run jobs) in
      check_bool
        (Fmt.str "residuals byte-identical at jobs=%d" jobs)
        true (got = expected))
    [ 2; 4 ]

let test_paths_byte_identical () =
  let direct = verify ~name:"sharded.ml" sharded_src in
  let expected = render_residuals direct in
  check_bool "direct run produces residuals" true (expected <> []);
  (* Persistent cache: cold (stored) and warm (disk-served, rehashed)
     reports render identically. *)
  Test_server.with_dir (fun base ->
      let options =
        { (gradual_options ()) with Pipeline.cache_dir = Some base }
      in
      let cold =
        Pipeline.verify_string ~options ~name:"sharded.ml" sharded_src
      in
      check_bool "cold cached run matches direct" true
        (render_residuals cold = expected);
      let warm =
        Pipeline.verify_string ~options ~name:"sharded.ml" sharded_src
      in
      check_int "second run served from the persistent cache" 1
        warm.Pipeline.stats.Pipeline.n_pcache_hits;
      check_bool "warm cached run matches direct" true
        (render_residuals warm = expected));
  (* Daemon: residuals cross the socket and a rehash. *)
  Test_server.with_server (fun sock ->
      Test_server.with_client sock (fun c ->
          let replies =
            Liquid_server.Client.verify c
              [
                Liquid_server.Protocol.request ~gradual:true ~name:"sharded.ml"
                  sharded_src;
              ]
          in
          let served = Test_server.expect_verified (List.hd replies) in
          check_bool "daemon-served report is gradual" true
            (served.Pipeline.residuals <> []);
          check_bool "daemon-served residuals match direct" true
            (render_residuals served = expected)))

(* ------------------------------------------------------------------ *)
(* Cache-key separation, both directions                               *)
(* ------------------------------------------------------------------ *)

let test_cache_key_separation () =
  check_bool "options fingerprints differ" true
    (Pipeline.options_fingerprint Pipeline.default
    <> Pipeline.options_fingerprint { Pipeline.default with gradual = true });
  Test_server.with_dir (fun base ->
      let plain_opts = { Pipeline.default with cache_dir = Some base } in
      let grad_opts = { plain_opts with Pipeline.gradual = true } in
      (* Plain first: its report (an UNSAFE verdict) lands in the
         cache. *)
      let plain =
        Pipeline.verify_string ~options:plain_opts ~name:"overrun.ml"
          overrun_src
      in
      check_bool "plain run fails" false plain.Pipeline.safe;
      (* A gradual run of the same source must not be served the plain
         entry: it solves cold and reports residuals. *)
      let grad =
        Pipeline.verify_string ~options:grad_opts ~name:"overrun.ml"
          overrun_src
      in
      check_int "gradual run is not served the plain entry" 0
        grad.Pipeline.stats.Pipeline.n_pcache_hits;
      check_bool "gradual run reports residuals" true
        (grad.Pipeline.residuals <> []);
      (* Each mode warm-hits its own entry... *)
      let grad2 =
        Pipeline.verify_string ~options:grad_opts ~name:"overrun.ml"
          overrun_src
      in
      check_int "gradual entry serves gradual runs" 1
        grad2.Pipeline.stats.Pipeline.n_pcache_hits;
      check_bool "warm gradual report keeps its residuals" true
        (grad2.Pipeline.residuals <> []);
      (* ...and the gradual entry never leaks back into plain mode. *)
      let plain2 =
        Pipeline.verify_string ~options:plain_opts ~name:"overrun.ml"
          overrun_src
      in
      check_int "plain entry serves plain runs" 1
        plain2.Pipeline.stats.Pipeline.n_pcache_hits;
      check_bool "warm plain report is still a failure" false
        plain2.Pipeline.safe;
      check_int "warm plain report has no residuals" 0
        (List.length plain2.Pipeline.residuals))

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let field name = function
  | Liquid_analysis.Json.Obj kvs -> (
      match List.assoc_opt name kvs with
      | Some v -> v
      | None -> Alcotest.failf "missing JSON field %s" name)
  | _ -> Alcotest.fail "expected a JSON object"

let test_json_verdict_and_residuals () =
  let r = verify ~name:"overrun.ml" overrun_src in
  let j = Pipeline.json_of_report ~file:"overrun.ml" r in
  let open Liquid_analysis in
  (match field "verdict" j with
  | Json.String v -> check_bool "verdict names the spectrum point" true
        (v = "SAFE_MODULO 1")
  | _ -> Alcotest.fail "expected a verdict string");
  (match field "residuals" j with
  | Json.List [ rc ] ->
      List.iter
        (fun k ->
          match field k rc with
          | _ -> ()
          | exception _ -> Alcotest.failf "residual JSON missing %s" k)
        [ "id"; "loc"; "reason"; "goal"; "count"; "degraded"; "witness";
          "explanation" ]
  | _ -> Alcotest.fail "expected exactly one residual in JSON");
  match field "stats" j with
  | Json.Obj kvs ->
      check_bool "stats count residuals" true
        (List.assoc_opt "residuals" kvs = Some (Json.Int 1));
      check_bool "stats carry uncacheable_degraded" true
        (List.mem_assoc "uncacheable_degraded" kvs)
  | _ -> Alcotest.fail "expected a stats object"

let tests =
  let tc name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  [
    tc "verdict spectrum SAFE / SAFE_MODULO / UNSAFE" test_verdict_spectrum;
    tc "residuals are content-addressed with witness" test_residual_shape;
    tc "runtime casts hold on a safe program" test_cast_holds;
    tc "failed cast reports detail and halts on bounds"
      test_cast_fails_with_detail;
    tc "armed assertion failure is absorbed" test_armed_assert_absorbed;
    tc "unarmed assertion failure still raises" test_unarmed_assert_still_raises;
    tc "repair hint discharges its cast" test_repair_discharges_cast;
    tc "degraded obligations become residuals" test_degraded_residuals;
    slow "residuals byte-identical at jobs 1/2/4" test_jobs_byte_identity;
    slow "direct/cache/daemon residuals byte-identical"
      test_paths_byte_identical;
    tc "gradual and plain runs never share cache entries"
      test_cache_key_separation;
    tc "JSON verdict, residual schema, stats counters"
      test_json_verdict_and_residuals;
  ]
