(* Tests for the driver pipeline: line counting, constant mining, error
   paths, and report rendering. *)

open Liquid_driver

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_count_lines () =
  check_int "blank and comment lines skipped" 2
    (Pipeline.count_lines "let x = 1\n\n(* comment *)\nlet y = 2\n");
  check_int "empty source" 0 (Pipeline.count_lines "\n\n");
  (* lines ending (or wholly contained) inside a block comment are not
     code; nesting is tracked across lines *)
  check_int "multi-line comment interior skipped" 2
    (Pipeline.count_lines "let x = 1\n(* a\n   b\n*)\nlet y = 2\n");
  check_int "code before a comment opening still counts" 2
    (Pipeline.count_lines "let x = 1 (* c\n*) let y = 2\n");
  check_int "nested comments close correctly" 1
    (Pipeline.count_lines "(* a (* b *) still comment *)\nlet z = 1\n");
  check_int "no trailing newline" 1 (Pipeline.count_lines "let x = 1")

let test_mine_constants () =
  let prog =
    Liquid_lang.Parser.program_of_string
      "let f i = if i < 10 then i + 42 else i mod 7\n\
       let g x = if x = 0 - 3 then 1 else 2"
  in
  let consts = Pipeline.mine_constants prog in
  check_bool "comparison literal mined" true (List.mem 10 consts);
  check_bool "arithmetic literal not mined" false (List.mem 42 consts);
  check_bool "mod operand not mined" false (List.mem 7 consts);
  let sizes =
    Pipeline.mine_constants
      (Liquid_lang.Parser.program_of_string "let a = Array.make 8 0")
  in
  check_bool "literal array size mined" true (List.mem 8 sizes)

(* Regression: constants are mined from the pre-ANF source AST, and the
   mined qualifiers are what make this program verifiable — [count]'s
   result type needs the upper bound [v <= 16], which only exists because
   16 is mined from the comparison (no variable-pattern qualifier can
   express it: the bound is out of scope at the recursive result). *)
let test_mined_constant_enables_proof () =
  let src =
    "let rec count n = if n >= 16 then 16 else count (n + 1)\n\
     let main () =\n\
    \  let a = Array.make 17 0 in\n\
    \  Array.get a (count 0)"
  in
  let mined =
    Pipeline.verify_string
      ~options:{ Pipeline.default with Pipeline.mine = true }
      src
  in
  let unmined =
    Pipeline.verify_string
      ~options:{ Pipeline.default with Pipeline.mine = false }
      src
  in
  check_bool "safe with mined constants" true mined.Pipeline.safe;
  check_bool "unsafe without mining" false unmined.Pipeline.safe

let test_phase_timings () =
  let r =
    Pipeline.verify_string
      ~options:{ Pipeline.default with Pipeline.lint = true }
      "let x = assert (1 < 2)"
  in
  check_bool "phases reported in pipeline order" true
    (List.map fst r.Pipeline.stats.Pipeline.phases
    = [
        "parse";
        "anf";
        "hm";
        "congen";
        "partition";
        "solve";
        "concrete_check";
        "merge";
        "lint";
      ]);
  check_bool "phase times are non-negative" true
    (List.for_all (fun (_, t) -> t >= 0.0) r.Pipeline.stats.Pipeline.phases);
  let sum =
    List.fold_left (fun acc (_, t) -> acc +. t) 0.0
      r.Pipeline.stats.Pipeline.phases
  in
  check_bool "elapsed is the sum of the phases" true
    (Float.abs (r.Pipeline.stats.Pipeline.elapsed -. sum) < 1e-9);
  let plain = Pipeline.verify_string "let x = assert (1 < 2)" in
  check_bool "no lint phase without lint" true
    (not (List.mem_assoc "lint" plain.Pipeline.stats.Pipeline.phases));
  let sum_plain =
    List.fold_left (fun acc (_, t) -> acc +. t) 0.0
      plain.Pipeline.stats.Pipeline.phases
  in
  check_bool "elapsed is the sum of the phases (no lint)" true
    (Float.abs (plain.Pipeline.stats.Pipeline.elapsed -. sum_plain) < 1e-9)

(* Regression: the lint pass used to inflate [n_smt_queries]; its queries
   must be accounted separately and excluded from the solver total. *)
let test_lint_queries_not_double_counted () =
  let src = Liquid_suite.Programs.dotprod.Liquid_suite.Programs.source in
  let plain = Pipeline.verify_string src in
  let linted =
    Pipeline.verify_string
      ~options:{ Pipeline.default with Pipeline.lint = true }
      src
  in
  check_int "lint pass leaves the solver query count unchanged"
    plain.Pipeline.stats.Pipeline.n_smt_queries
    linted.Pipeline.stats.Pipeline.n_smt_queries;
  check_bool "lint queries counted separately" true
    (linted.Pipeline.stats.Pipeline.n_lint_smt_queries > 0);
  check_int "no lint queries without lint" 0
    plain.Pipeline.stats.Pipeline.n_lint_smt_queries

let test_parse_error_location () =
  match Pipeline.verify_string "let x = (1 +" with
  | exception Pipeline.Source_error (msg, _) ->
      check_bool "mentions parse" true
        (String.length msg >= 5 && String.sub msg 0 5 = "parse")
  | _ -> Alcotest.fail "expected Source_error"

let test_type_error () =
  match Pipeline.verify_string "let x = 1 + true" with
  | exception Pipeline.Source_error (msg, _) ->
      check_bool "mentions type" true
        (String.length msg >= 4 && String.sub msg 0 4 = "type")
  | _ -> Alcotest.fail "expected Source_error"

let test_unbound_variable () =
  check_bool "unbound rejected" true
    (match Pipeline.verify_string "let x = nope" with
    | exception Pipeline.Source_error _ -> true
    | _ -> false)

let test_report_rendering () =
  let r = Pipeline.verify_string "let a = Array.make 4 0\nlet x = a.(9)" in
  let s = Fmt.str "%a" Pipeline.pp_report r in
  let contains needle =
    let lh = String.length s and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub s i ln = needle || go (i + 1)) in
    go 0
  in
  check_bool "verdict rendered" true (contains "UNSAFE");
  check_bool "location rendered" true (contains ":2.");
  check_bool "counterexample rendered" true (contains "counterexample")

let test_safe_rendering () =
  let r = Pipeline.verify_string "let x = assert (1 < 2)" in
  let s = Fmt.str "%a" Pipeline.pp_report r in
  check_bool "SAFE rendered" true
    (let rec go i =
       i + 4 <= String.length s && (String.sub s i 4 = "SAFE" || go (i + 1))
     in
     go 0)

let test_deterministic_verdicts () =
  (* re-verification is stable (global counters advance, results don't) *)
  let src = Liquid_suite.Programs.dotprod.Liquid_suite.Programs.source in
  let r1 = Pipeline.verify_string src in
  let r2 = Pipeline.verify_string src in
  check_bool "same verdict" true
    (r1.Pipeline.safe = r2.Pipeline.safe);
  check_int "same error count"
    (List.length r1.Pipeline.errors)
    (List.length r2.Pipeline.errors)

let tests =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    tc "count_lines" test_count_lines;
    tc "mine_constants" test_mine_constants;
    tc "mined constants enable proofs" test_mined_constant_enables_proof;
    tc "per-phase timings" test_phase_timings;
    tc "lint queries not double-counted" test_lint_queries_not_double_counted;
    tc "parse errors surface" test_parse_error_location;
    tc "type errors surface" test_type_error;
    tc "unbound variables surface" test_unbound_variable;
    tc "unsafe report rendering" test_report_rendering;
    tc "safe report rendering" test_safe_rendering;
    tc "verdicts are deterministic" test_deterministic_verdicts;
  ]
