(** Identifiers.

    Identifiers are interned strings.  After parsing, the ANF pass
    alpha-renames the program so that every binder is globally unique;
    downstream passes (constraint generation, the logic, the SMT solver)
    may therefore treat identifiers as plain names without scoping
    concerns. *)

type t = string

let compare = String.compare
let equal = String.equal
let hash = Hashtbl.hash

let of_string s = s
let to_string s = s

(** The distinguished "value variable" [ν] of refinement predicates. *)
let vv : t = "VV"

let is_vv x = String.equal x vv

(** Identifiers introduced by the compiler (ANF temporaries, SSA copies)
    start with a character that cannot begin a source identifier, so they
    can never capture user names. *)
let is_internal x = String.length x > 0 && x.[0] = '%'

(** Pretty-printer: the value variable displays as ["v"]; internal names
    drop their ['%'] marker. *)
let pp ppf x =
  if is_vv x then Fmt.string ppf "v"
  else if is_internal x then Fmt.string ppf (String.sub x 1 (String.length x - 1))
  else Fmt.string ppf x

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
