(** List helpers missing from the standard library (OCaml 5.1 vintage). *)

(** [take n xs] is the first [n] elements of [xs] (all of [xs] if shorter). *)
let rec take n xs =
  match (n, xs) with
  | n, _ when n <= 0 -> []
  | _, [] -> []
  | n, x :: xs -> x :: take (n - 1) xs

let rec drop n xs =
  match (n, xs) with
  | n, xs when n <= 0 -> xs
  | _, [] -> []
  | n, _ :: xs -> drop (n - 1) xs

(** Cartesian-product map: [product f xs ys] applies [f] to every pair. *)
let product f xs ys =
  List.concat_map (fun x -> List.map (fun y -> f x y) ys) xs

(** All ways of choosing one element from each of the given lists. *)
let rec choices = function
  | [] -> [ [] ]
  | xs :: rest ->
      let tails = choices rest in
      List.concat_map (fun x -> List.map (fun tl -> x :: tl) tails) xs

(** Deduplicate while preserving first-occurrence order; O(n log n). *)
let dedup_ordered (type a) ~(compare : a -> a -> int) (xs : a list) =
  let module S = Set.Make (struct
    type t = a

    let compare = compare
  end) in
  let _, rev =
    List.fold_left
      (fun (seen, acc) x ->
        if S.mem x seen then (seen, acc) else (S.add x seen, x :: acc))
      (S.empty, []) xs
  in
  List.rev rev

let rec last = function
  | [] -> invalid_arg "Listx.last"
  | [ x ] -> x
  | _ :: xs -> last xs

(** Index of the first element satisfying [p]. *)
let find_index p xs =
  let rec go i = function
    | [] -> None
    | x :: xs -> if p x then Some i else go (i + 1) xs
  in
  go 0 xs
