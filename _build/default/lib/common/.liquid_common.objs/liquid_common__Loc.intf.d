lib/common/loc.mli: Format Lexing
