lib/common/gensym.mli: Ident
