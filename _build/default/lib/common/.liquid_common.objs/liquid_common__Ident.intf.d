lib/common/ident.mli: Format Hashtbl Map Set
