lib/common/listx.ml: List Set
