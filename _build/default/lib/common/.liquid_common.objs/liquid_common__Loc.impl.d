lib/common/loc.ml: Fmt Lexing
