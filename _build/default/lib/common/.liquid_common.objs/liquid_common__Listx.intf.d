lib/common/listx.mli:
