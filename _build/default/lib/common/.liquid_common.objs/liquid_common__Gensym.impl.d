lib/common/gensym.ml: Ident Printf
