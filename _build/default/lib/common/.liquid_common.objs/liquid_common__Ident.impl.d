lib/common/ident.ml: Fmt Hashtbl Map Set String
