(** List helpers missing from the standard library. *)

(** First [n] elements ([xs] itself if shorter). *)
val take : int -> 'a list -> 'a list

(** All but the first [n] elements. *)
val drop : int -> 'a list -> 'a list

(** Cartesian-product map. *)
val product : ('a -> 'b -> 'c) -> 'a list -> 'b list -> 'c list

(** All ways of choosing one element from each list. *)
val choices : 'a list list -> 'a list list

(** Deduplicate, keeping first occurrences in order; O(n log n). *)
val dedup_ordered : compare:('a -> 'a -> int) -> 'a list -> 'a list

(** Last element.  @raise Invalid_argument on the empty list. *)
val last : 'a list -> 'a

(** Index of the first element satisfying the predicate. *)
val find_index : ('a -> bool) -> 'a list -> int option
