(** Fresh-name generation.

    All compiler-introduced names share a single global counter so that a
    fresh name can never collide with another fresh name.  [reset] exists
    solely so that unit tests and the benchmark harness produce
    deterministic output run after run. *)

let counter = ref 0

let reset () = counter := 0

let next () =
  incr counter;
  !counter

(** [fresh base] returns an identifier ["%base.N"].  The ['%'] prefix marks
    the name as internal (see {!Ident.is_internal}); source identifiers can
    never start with ['%']. *)
let fresh base =
  let n = next () in
  Ident.of_string (Printf.sprintf "%%%s.%d" base n)

(** [rename x] returns a fresh copy of [x] that keeps the original name as
    a readable prefix, e.g. [rename "lo"] gives ["%lo.7"]. *)
let rename x = fresh (Ident.to_string x)
