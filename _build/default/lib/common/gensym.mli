(** Fresh-name generation (single global counter). *)

(** Reset the counter.  Only for deterministic test/bench output. *)
val reset : unit -> unit

(** Next counter value. *)
val next : unit -> int

(** [fresh base] returns an internal identifier ["%base.N"] (see
    {!Ident.is_internal}). *)
val fresh : string -> Ident.t

(** [rename x] is a fresh internal copy of [x] keeping the original name
    as a readable prefix. *)
val rename : Ident.t -> Ident.t
