(** Identifiers.

    Identifiers are plain strings.  After parsing, the ANF pass
    alpha-renames the program so that every binder is globally unique;
    downstream passes (constraint generation, the logic, the SMT solver)
    may therefore treat identifiers as global names without scoping
    concerns. *)

type t = string

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val of_string : string -> t
val to_string : t -> string

(** The distinguished "value variable" [ν] of refinement predicates. *)
val vv : t

val is_vv : t -> bool

(** Compiler-introduced names (ANF temporaries) start with ['%'], which
    cannot begin a source identifier. *)
val is_internal : t -> bool

(** Pretty-printer: the value variable displays as ["v"]; internal names
    drop their ['%'] marker. *)
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
