lib/eval/eval.mli: Ast Format Ident Liquid_common Liquid_lang Loc
