lib/eval/eval.ml: Array Ast Fmt Ident Liquid_common Liquid_lang List Loc Printf
