lib/driver/pipeline.mli: Ast Format Ident Liquid_common Liquid_infer Liquid_lang Liquid_smt Loc Qualifier Rtype Spec
