(** The DSOLVE pipeline: parse → A-normalize → ML inference → liquid
    constraint generation → fixpoint solving → report.  The public entry
    point of the library. *)

open Liquid_common
open Liquid_lang
open Liquid_infer

type error = {
  err_loc : Loc.t;
  err_reason : string;
  err_goal : string;
  err_cex : (string * int) list; (* falsifying values, when available *)
}

type stats = {
  source_lines : int;
  ast_nodes : int;
  n_kvars : int;
  n_wf_constraints : int;
  n_sub_constraints : int;
  n_qualifiers : int; (* qualifier patterns supplied *)
  n_initial_candidates : int; (* total instances over all κs *)
  n_implication_checks : int;
  n_smt_queries : int;
  n_smt_cache_hits : int;
  elapsed : float; (* wall-clock seconds for the whole pipeline *)
}

type report = {
  safe : bool;
  errors : error list;
  item_types : (Ident.t * Rtype.t) list; (* with the solution applied *)
  solution : Liquid_smt.Solver.result option; (* reserved *)
  stats : stats;
}

exception Source_error of string * Loc.t

(** Non-empty, non-comment source lines (the LOC column of the results
    table). *)
val count_lines : string -> int

(** @raise Source_error on lex/parse errors. *)
val parse_program : name:string -> string -> Ast.program

(** Integer literals the program compares against (qualifier mining). *)
val mine_constants : Ast.program -> int list

(** Verify a parsed program.  [quals] is the qualifier set (defaults to
    {!Liquid_infer.Qualifier.defaults}); [mine] enables constant mining
    (default true).
    @raise Source_error on type errors. *)
val verify_program :
  ?quals:Qualifier.t list ->
  ?mine:bool ->
  ?specs:Spec.t ->
  Ast.program ->
  source_lines:int ->
  report

val verify_string :
  ?quals:Qualifier.t list ->
  ?mine:bool ->
  ?specs:Spec.t ->
  ?name:string ->
  string ->
  report

val verify_file :
  ?quals:Qualifier.t list -> ?mine:bool -> ?specs:Spec.t -> string -> report

val pp_error : Format.formatter -> error -> unit

(** Print inferred types (display-cleaned) and the verdict. *)
val pp_report : Format.formatter -> report -> unit
