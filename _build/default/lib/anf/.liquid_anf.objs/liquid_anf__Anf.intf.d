lib/anf/anf.mli: Ast Ident Liquid_common Liquid_lang
