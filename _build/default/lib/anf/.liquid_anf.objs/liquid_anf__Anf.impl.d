lib/anf/anf.ml: Ast Fun Gensym Ident Liquid_common Liquid_lang List Printf
