(** A-normalization and alpha-renaming.

    Produces programs where application arguments, operator operands,
    [if] conditions, container components, match scrutinees and assert
    operands are atoms (variables or constants), application spines are
    preserved, and every binder is globally unique. *)

open Liquid_common
open Liquid_lang

(** Reset the renaming counter (deterministic tests only). *)
val reset : unit -> unit

val is_atom : Ast.expr -> bool

val normalize_expr : Ast.expr -> Ast.expr
val normalize_program : Ast.program -> Ast.program

(** Rename a source binder to a globally unique, readable name
    (["x#N"]). *)
val rename_binder : Ident.t -> Ident.t

(** Validity check used by tests. *)
val is_anf : Ast.expr -> bool
