(** ML-level signatures of the NanoML primitives (the refinement-level
    signatures live in [Liquid_infer.Prims]). *)

open Liquid_common

val signatures : (string * Mltype.scheme) list
val env : Mltype.scheme Ident.Map.t
val is_builtin : Ident.t -> bool
