(** Hindley–Milner type inference (Algorithm W with levels) for NanoML:
    the first phase of the paper's three-phase inference.  Records the
    resolved ML type of every expression node; these shapes drive liquid
    template generation. *)

open Liquid_common
open Liquid_lang

exception Type_error of string * Loc.t

type result = {
  types : (int, Mltype.t) Hashtbl.t; (* expr id -> resolved ML type *)
  item_schemes : (Ident.t * Mltype.scheme) list; (* in program order *)
}

(** Syntactic values (generalizable under the value restriction). *)
val is_value : Ast.expr -> bool

(** @raise Type_error on ill-typed programs. *)
val infer_program : Ast.program -> result

(** Resolved type of a node.
    @raise Invalid_argument if the node was not typed. *)
val type_of : result -> Ast.expr -> Mltype.t
