lib/typing/builtins.ml: Ident Liquid_common List Mltype
