lib/typing/infer.mli: Ast Hashtbl Ident Liquid_common Liquid_lang Loc Mltype
