lib/typing/mltype.mli: Format
