lib/typing/mltype.ml: Array Char Fmt Hashtbl List Printf
