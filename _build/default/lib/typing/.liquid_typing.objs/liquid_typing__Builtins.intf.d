lib/typing/builtins.mli: Ident Liquid_common Mltype
