lib/typing/infer.ml: Ast Builtins Fmt Hashtbl Ident Liquid_common Liquid_lang List Loc Mltype
