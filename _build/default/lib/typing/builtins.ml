(** ML-level signatures of the NanoML primitives.

    The refinement-level signatures of the same primitives live in
    [Liquid_infer.Prims]; this module only provides what Hindley–Milner
    inference needs. *)

open Liquid_common
open Mltype

let tv k = Tvar (ref (Rigid k))

let arrow args result = List.fold_right (fun a acc -> Tarrow (a, acc)) args result

let signatures : (string * scheme) list =
  [
    (* Arrays *)
    ("Array.make", { nvars = 1; body = arrow [ Tint; tv 0 ] (Tarray (tv 0)) });
    ("Array.length", { nvars = 1; body = arrow [ Tarray (tv 0) ] Tint });
    ("Array.get", { nvars = 1; body = arrow [ Tarray (tv 0); Tint ] (tv 0) });
    ( "Array.set",
      { nvars = 1; body = arrow [ Tarray (tv 0); Tint; tv 0 ] Tunit } );
    (* Integer helpers with useful refinements (see Liquid_infer.Prims) *)
    ("min", { nvars = 0; body = arrow [ Tint; Tint ] Tint });
    ("max", { nvars = 0; body = arrow [ Tint; Tint ] Tint });
    ("abs", { nvars = 0; body = arrow [ Tint ] Tint });
    (* Output (no-ops for verification; effects for the interpreter) *)
    ("print_int", { nvars = 0; body = arrow [ Tint ] Tunit });
    ("print_newline", { nvars = 0; body = arrow [ Tunit ] Tunit });
    (* List helpers *)
    ("List.length", { nvars = 1; body = arrow [ Tlist (tv 0) ] Tint });
  ]

let env : scheme Ident.Map.t =
  List.fold_left
    (fun m (name, sch) -> Ident.Map.add (Ident.of_string name) sch m)
    Ident.Map.empty signatures

let is_builtin x = Ident.Map.mem x env
