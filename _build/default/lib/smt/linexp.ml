(** Linear expressions over solver variables.

    A linear expression is a finite map from variable indices to non-zero
    rational coefficients, plus a constant.  Solver variables are small
    integers allocated by the theory front end ({!Purify}). *)

module IMap = Map.Make (Int)

type t = { coeffs : Rat.t IMap.t; const : Rat.t }

let zero = { coeffs = IMap.empty; const = Rat.zero }

let const c = { coeffs = IMap.empty; const = c }

let var ?(coeff = Rat.one) v =
  if Rat.is_zero coeff then zero
  else { coeffs = IMap.singleton v coeff; const = Rat.zero }

let is_const t = IMap.is_empty t.coeffs

let constant t = t.const

let coeff v t =
  match IMap.find_opt v t.coeffs with Some c -> c | None -> Rat.zero

let add a b =
  let coeffs =
    IMap.union
      (fun _ c1 c2 ->
        let c = Rat.add c1 c2 in
        if Rat.is_zero c then None else Some c)
      a.coeffs b.coeffs
  in
  { coeffs; const = Rat.add a.const b.const }

let scale k t =
  if Rat.is_zero k then zero
  else
    {
      coeffs = IMap.map (fun c -> Rat.mul k c) t.coeffs;
      const = Rat.mul k t.const;
    }

let neg t = scale Rat.minus_one t

let sub a b = add a (neg b)

let add_term v c t =
  add t (var ~coeff:c v)

let add_const c t = { t with const = Rat.add t.const c }

(** Remove variable [v], returning its coefficient and the remainder. *)
let remove v t =
  match IMap.find_opt v t.coeffs with
  | None -> (Rat.zero, t)
  | Some c -> (c, { t with coeffs = IMap.remove v t.coeffs })

let fold f t acc = IMap.fold f t.coeffs acc

let iter f t = IMap.iter f t.coeffs

let vars t = IMap.fold (fun v _ acc -> v :: acc) t.coeffs []

let choose_var t =
  match IMap.min_binding_opt t.coeffs with
  | Some (v, c) -> Some (v, c)
  | None -> None

(** Evaluate under a total assignment. *)
let eval (value : int -> Rat.t) t =
  IMap.fold (fun v c acc -> Rat.add acc (Rat.mul c (value v))) t.coeffs t.const

let compare a b =
  let c = Rat.compare a.const b.const in
  if c <> 0 then c else IMap.compare Rat.compare a.coeffs b.coeffs

let pp pp_var ppf t =
  let first = ref true in
  IMap.iter
    (fun v c ->
      if !first then (
        first := false;
        Fmt.pf ppf "%a*%a" Rat.pp c pp_var v)
      else Fmt.pf ppf " + %a*%a" Rat.pp c pp_var v)
    t.coeffs;
  if (not (Rat.is_zero t.const)) || !first then
    if !first then Rat.pp ppf t.const else Fmt.pf ppf " + %a" Rat.pp t.const
