(** Congruence closure for equality with uninterpreted functions (EUF).

    Nodes are hash-consed terms over entity variables (integer ids shared
    with the arithmetic layer), integer constants, and applications.  The
    structure maintains a union-find partition closed under congruence
    and checks disequalities (and distinct-constant merges) eagerly. *)

open Liquid_logic

type node = int

type expr = Evar of int | Econst of int | Eapp of Symbol.t * node list

type t

val create : unit -> t

(** Node constructors (hash-consed; congruent applications merge). *)

val var : t -> int -> node
val const : t -> int -> node
val app : t -> Symbol.t -> node list -> node

val assert_eq : t -> node -> node -> unit
val assert_ne : t -> node -> node -> unit

(** [false] once a conflict (disequality or distinct constants merged)
    has been detected. *)
val ok : t -> bool

val equal : t -> node -> node -> bool

(** All nodes with their current representative. *)
val nodes_with_reprs : t -> (node * node) list

val expr_of : t -> node -> expr

(** Fold over all application nodes. *)
val fold_apps : ('a -> node -> Symbol.t -> node list -> 'a) -> t -> 'a -> 'a
