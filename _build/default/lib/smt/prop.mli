(** Propositional abstraction: Tseitin CNF over canonicalized theory
    atoms.  Atoms occupy variable ids [0 .. natoms-1]; Tseitin definition
    variables follow. *)

open Liquid_logic

(** [v+1] (positive) or [-(v+1)] (negative) for variable [v]. *)
type lit = int

type clause = lit list

type cnf = {
  clauses : clause list;
  natoms : int;
  atoms : Pred.t array; (* atom of each theory variable *)
  root : lit; (* literal equivalent to the whole formula *)
}

(** Canonicalize an atom ([Gt]/[Ge] swapped, [Ne] as negated oriented
    [Eq]); returns the canonical atom and the polarity. *)
val canon : Pred.t -> Pred.t * bool

val of_pred : Pred.t -> cnf
