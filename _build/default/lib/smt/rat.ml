(** Exact rational arithmetic on native integers, with overflow checking.

    The simplex core needs exact rational arithmetic.  The container has no
    arbitrary-precision library, so we use native 63-bit integers and
    {e check every multiplication and addition for overflow}.  On overflow
    we raise {!Overflow}; the solver catches it and returns "unknown",
    which the liquid fixpoint treats as "implication not valid" — sound,
    merely less precise.  The paper's benchmark queries involve small
    coefficients and never come close to overflowing. *)

exception Overflow

(* -- Overflow-checked native integer arithmetic -------------------- *)

let add_int a b =
  let s = a + b in
  (* Overflow iff operands have the same sign and the result's sign differs. *)
  if (a >= 0) = (b >= 0) && (s >= 0) <> (a >= 0) then raise Overflow;
  s

let sub_int a b =
  let d = a - b in
  if (a >= 0) <> (b >= 0) && (d >= 0) <> (a >= 0) then raise Overflow;
  d

let mul_int a b =
  if a = 0 || b = 0 then 0
  else
    let p = a * b in
    if p / a <> b then raise Overflow;
    p

let rec gcd_int a b = if b = 0 then abs a else gcd_int b (a mod b)

(* -- Rationals ------------------------------------------------------ *)

(** Invariant: [den > 0] and [gcd num den = 1]. *)
type t = { num : int; den : int }

let zero = { num = 0; den = 1 }
let one = { num = 1; den = 1 }
let minus_one = { num = -1; den = 1 }

let normalize num den =
  if den = 0 then invalid_arg "Rat: zero denominator";
  let s = if den < 0 then -1 else 1 in
  let num = mul_int num s and den = mul_int den s in
  let g = gcd_int num den in
  if g = 0 then zero else { num = num / g; den = den / g }

let make num den = normalize num den
let of_int n = { num = n; den = 1 }

let num t = t.num
let den t = t.den

let is_zero t = t.num = 0
let is_integer t = t.den = 1
let sign t = compare t.num 0

let neg t = { num = -t.num; den = t.den }

let add a b =
  normalize
    (add_int (mul_int a.num b.den) (mul_int b.num a.den))
    (mul_int a.den b.den)

let sub a b = add a (neg b)

let mul a b = normalize (mul_int a.num b.num) (mul_int a.den b.den)

let div a b =
  if b.num = 0 then invalid_arg "Rat.div: division by zero";
  normalize (mul_int a.num b.den) (mul_int a.den b.num)

let inv t = div one t

let compare a b =
  (* a.num/a.den ? b.num/b.den  <=>  a.num*b.den ? b.num*a.den  (dens > 0) *)
  Stdlib.compare (mul_int a.num b.den) (mul_int b.num a.den)

let equal a b = a.num = b.num && a.den = b.den
let lt a b = compare a b < 0
let le a b = compare a b <= 0
let min a b = if le a b then a else b
let max a b = if le a b then b else a

(** Largest integer [<= t]. *)
let floor t =
  if t.den = 1 then t.num
  else if t.num >= 0 then t.num / t.den
  else -(((-t.num) + t.den - 1) / t.den)

(** Smallest integer [>= t]. *)
let ceil t = -floor (neg t)

let to_float t = float_of_int t.num /. float_of_int t.den

let pp ppf t =
  if t.den = 1 then Fmt.int ppf t.num else Fmt.pf ppf "%d/%d" t.num t.den

let to_string t = Fmt.str "%a" pp t
