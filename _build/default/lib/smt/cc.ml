(** Congruence closure for the theory of equality with uninterpreted
    functions (EUF).

    Nodes are hash-consed first-order terms over entity variables (shared
    with the arithmetic solver), integer constants, and applications of
    {!Liquid_logic.Symbol} heads.  The structure maintains a union-find
    partition closed under congruence, plus a set of disequalities that is
    checked for conflicts eagerly.

    The implementation is the classic Nelson–Oppen style closure: each
    class keeps a list of parent applications; on a merge, parents are
    re-canonicalized through a signature table, and newly congruent pairs
    are queued for merging. *)

open Liquid_logic

type node = int

type expr =
  | Evar of int (* entity id, shared with the arithmetic layer *)
  | Econst of int
  | Eapp of Symbol.t * node list

type t = {
  mutable exprs : expr array; (* node id -> structure *)
  mutable parent : int array; (* union-find *)
  mutable rank : int array;
  mutable konst : int option array; (* constant value of the class, at root *)
  mutable parents : node list array; (* applications mentioning this class *)
  mutable nnodes : int;
  node_tbl : (expr, node) Hashtbl.t; (* hash-consing *)
  sig_tbl : (string * node list, node) Hashtbl.t; (* congruence signatures *)
  mutable diseqs : (node * node) list;
  mutable conflict : bool;
  mutable merges : (node * node) list; (* log for class enumeration *)
}

let create () =
  {
    exprs = Array.make 16 (Econst 0);
    parent = Array.make 16 0;
    rank = Array.make 16 0;
    konst = Array.make 16 None;
    parents = Array.make 16 [];
    nnodes = 0;
    node_tbl = Hashtbl.create 32;
    sig_tbl = Hashtbl.create 32;
    diseqs = [];
    conflict = false;
    merges = [];
  }

let rec find t n =
  let p = t.parent.(n) in
  if p = n then n
  else begin
    let r = find t p in
    t.parent.(n) <- r;
    r
  end

let grow t n =
  let cap = Array.length t.exprs in
  if n > cap then begin
    let cap' = max n (2 * cap) in
    let extend a fill =
      let a' = Array.make cap' fill in
      Array.blit a 0 a' 0 cap;
      a'
    in
    t.exprs <- extend t.exprs (Econst 0);
    t.parent <- extend t.parent 0;
    t.rank <- extend t.rank 0;
    t.konst <- extend t.konst None;
    t.parents <- extend t.parents []
  end

let alloc t expr =
  let n = t.nnodes in
  grow t (n + 1);
  t.nnodes <- n + 1;
  t.exprs.(n) <- expr;
  t.parent.(n) <- n;
  t.rank.(n) <- 0;
  t.konst.(n) <- (match expr with Econst k -> Some k | _ -> None);
  t.parents.(n) <- [];
  Hashtbl.replace t.node_tbl expr n;
  n

let signature t f args = (Symbol.name f, List.map (find t) args)

(* Merging ----------------------------------------------------------- *)

let rec merge t a b =
  let ra = find t a and rb = find t b in
  if ra <> rb then begin
    (* Conflict if two distinct integer constants are identified. *)
    (match (t.konst.(ra), t.konst.(rb)) with
    | Some m, Some n when m <> n -> t.conflict <- true
    | _ -> ());
    let k = match t.konst.(ra) with Some _ as s -> s | None -> t.konst.(rb) in
    let ra, rb =
      if t.rank.(ra) < t.rank.(rb) then (ra, rb) else (rb, ra)
    in
    (* ra is absorbed into rb. *)
    t.parent.(ra) <- rb;
    if t.rank.(ra) = t.rank.(rb) then t.rank.(rb) <- t.rank.(rb) + 1;
    t.konst.(rb) <- k;
    t.merges <- (ra, rb) :: t.merges;
    let moved = t.parents.(ra) in
    t.parents.(ra) <- [];
    t.parents.(rb) <- List.rev_append moved t.parents.(rb);
    (* Re-canonicalize the applications that mentioned the absorbed class;
       congruent pairs show up as signature-table collisions. *)
    let pending = ref [] in
    List.iter
      (fun app ->
        match t.exprs.(app) with
        | Eapp (f, args) -> (
            let s = signature t f args in
            match Hashtbl.find_opt t.sig_tbl s with
            | Some app' when find t app' <> find t app ->
                pending := (app, app') :: !pending
            | Some _ -> ()
            | None -> Hashtbl.replace t.sig_tbl s app)
        | _ -> ())
      moved;
    List.iter (fun (x, y) -> merge t x y) !pending;
    (* Disequality conflicts. *)
    if
      List.exists (fun (x, y) -> find t x = find t y) t.diseqs
    then t.conflict <- true
  end

(* Node construction -------------------------------------------------- *)

let node_of_expr t expr =
  match Hashtbl.find_opt t.node_tbl expr with
  | Some n -> n
  | None ->
      let n = alloc t expr in
      (match expr with
      | Eapp (f, args) -> (
          List.iter
            (fun a ->
              let ra = find t a in
              t.parents.(ra) <- n :: t.parents.(ra))
            args;
          let s = signature t f args in
          match Hashtbl.find_opt t.sig_tbl s with
          | Some n' -> merge t n n'
          | None -> Hashtbl.replace t.sig_tbl s n)
      | _ -> ());
      n

let var t id = node_of_expr t (Evar id)
let const t n = node_of_expr t (Econst n)
let app t f args = node_of_expr t (Eapp (f, args))

(* Assertions ---------------------------------------------------------- *)

let assert_eq t a b = merge t a b

let assert_ne t a b =
  if find t a = find t b then t.conflict <- true
  else t.diseqs <- (a, b) :: t.diseqs

let ok t = not t.conflict

let equal t a b = find t a = find t b

(* Class enumeration --------------------------------------------------- *)

(** All nodes, with their current representative. *)
let nodes_with_reprs t =
  List.init t.nnodes (fun n -> (n, find t n))

(** The expression stored at a node. *)
let expr_of t n = t.exprs.(n)

(** Fold over all application nodes. *)
let fold_apps f t acc =
  let acc = ref acc in
  for n = 0 to t.nnodes - 1 do
    match t.exprs.(n) with
    | Eapp (g, args) -> acc := f !acc n g args
    | _ -> ()
  done;
  !acc
