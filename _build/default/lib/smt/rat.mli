(** Exact rationals on native integers with overflow checking.

    Every operation that could overflow raises {!Overflow}; the SMT
    solver treats that as "unknown", which the liquid fixpoint soundly
    reads as "not valid". *)

exception Overflow

(** Overflow-checked native integer helpers (exposed for {!Lia}). *)

val add_int : int -> int -> int
val sub_int : int -> int -> int
val mul_int : int -> int -> int
val gcd_int : int -> int -> int

(** Rationals, kept normalized: positive denominator, gcd 1. *)
type t

val zero : t
val one : t
val minus_one : t

(** @raise Invalid_argument on zero denominator. *)
val make : int -> int -> t

val of_int : int -> t
val num : t -> int
val den : t -> int

val is_zero : t -> bool
val is_integer : t -> bool
val sign : t -> int

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** @raise Invalid_argument on division by zero. *)
val div : t -> t -> t

val inv : t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val lt : t -> t -> bool
val le : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** Largest integer [<= t]. *)
val floor : t -> int

(** Smallest integer [>= t]. *)
val ceil : t -> int

val to_float : t -> float
val pp : Format.formatter -> t -> unit
val to_string : t -> string
