(** Public SMT interface: validity of quantifier-free EUFLIA implications.

    This is the module the liquid-type fixpoint talks to.  A query asks
    whether [hyps |- goal] is valid, i.e. whether [And hyps /\ Not goal]
    is unsatisfiable.  Results are cached (the fixpoint re-checks the same
    implications many times as the candidate solution shrinks), and global
    statistics are kept for the benchmark harness. *)

open Liquid_logic

type result = Valid | Invalid | Unknown

type stats = {
  mutable queries : int; (* total validity queries *)
  mutable cache_hits : int;
  mutable sat_checks : int; (* DPLL+theory invocations *)
  mutable unknowns : int;
  mutable time : float; (* seconds inside the solver *)
}

let stats = { queries = 0; cache_hits = 0; sat_checks = 0; unknowns = 0; time = 0.0 }

let reset_stats () =
  stats.queries <- 0;
  stats.cache_hits <- 0;
  stats.sat_checks <- 0;
  stats.unknowns <- 0;
  stats.time <- 0.0

let pp_stats ppf () =
  Fmt.pf ppf "queries=%d cache-hits=%d sat-checks=%d unknowns=%d time=%.3fs"
    stats.queries stats.cache_hits stats.sat_checks stats.unknowns stats.time

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

module PredMap = Map.Make (struct
  type t = Pred.t

  let compare = Pred.compare
end)

let cache : result PredMap.t ref = ref PredMap.empty

let cache_enabled = ref true

let clear_cache () = cache := PredMap.empty

(* ------------------------------------------------------------------ *)
(* Checking                                                            *)
(* ------------------------------------------------------------------ *)

(** Counterexample for the most recent [Invalid] answer (values the
    query's source-level integer entities take in a falsifying model). *)
let last_cex : (string * int) list ref = ref []

let check_formula (q : Pred.t) : result =
  stats.sat_checks <- stats.sat_checks + 1;
  match Dpll.check_sat q with
  | Dpll.Unsat -> Valid
  | Dpll.Sat ->
      last_cex := !Dpll.last_model;
      Invalid
  | Dpll.Unknown ->
      stats.unknowns <- stats.unknowns + 1;
      Unknown

(* ------------------------------------------------------------------ *)
(* Hypothesis relevance pruning                                        *)
(* ------------------------------------------------------------------ *)

(** Restrict hypotheses to those transitively sharing a variable with the
    goal.  Dropping hypotheses can only make an implication {e harder} to
    prove, so pruning is sound for a validity checker; the precision cost
    (a contradiction among pruned hypotheses is no longer detected) is the
    classic trade DSOLVE makes, and it shrinks queries dramatically:
    liquid environments embed every in-scope binding, most of which are
    irrelevant to any one obligation. *)
let prune_enabled = ref true

let pred_vars p = List.map fst (Pred.free_vars p)

let prune_hyps (hyps : Pred.t list) (goal : Pred.t) : Pred.t list =
  if not !prune_enabled then hyps
  else begin
    let tagged = List.map (fun h -> (h, pred_vars h)) hyps in
    let relevant = ref Liquid_common.Ident.Set.empty in
    List.iter
      (fun (x, _) -> relevant := Liquid_common.Ident.Set.add x !relevant)
      (Pred.free_vars goal);
    let keep = Hashtbl.create 64 in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iteri
        (fun i (_, vars) ->
          if not (Hashtbl.mem keep i) then
            if List.exists (fun v -> Liquid_common.Ident.Set.mem v !relevant) vars
            then begin
              Hashtbl.add keep i ();
              List.iter
                (fun v -> relevant := Liquid_common.Ident.Set.add v !relevant)
                vars;
              changed := true
            end)
        tagged
    done;
    List.filteri
      (fun i (_, vars) -> vars = [] || Hashtbl.mem keep i)
      tagged
    |> List.map fst
  end

(** [check_valid ~kept hyps goal] decides whether the implication
    [kept /\ hyps => goal] holds in QF-EUFLIA.  [hyps] are subject to
    relevance pruning; [kept] hypotheses (typically path guards, whose
    mutual contradiction must stay detectable) are kept verbatim and seed
    the relevance closure. *)
let check_valid ?(kept : Pred.t list = []) (hyps : Pred.t list) (goal : Pred.t)
    : result =
  stats.queries <- stats.queries + 1;
  let hyps = prune_hyps hyps (Pred.conj (goal :: kept)) @ kept in
  let query = Pred.conj (Pred.not_ goal :: hyps) in
  match query with
  | Pred.False -> Valid
  | Pred.True -> Invalid
  | _ -> (
      match
        if !cache_enabled then PredMap.find_opt query !cache else None
      with
      | Some r ->
          stats.cache_hits <- stats.cache_hits + 1;
          r
      | None ->
          let t0 = Unix.gettimeofday () in
          let r = check_formula query in
          stats.time <- stats.time +. (Unix.gettimeofday () -. t0);
          if !cache_enabled then cache := PredMap.add query r !cache;
          r)

(** Boolean view: [Unknown] conservatively counts as "not valid". *)
let is_valid hyps goal = check_valid hyps goal = Valid

(** Satisfiability of a conjunction (used by tests). *)
let is_sat (p : Pred.t) : bool = Dpll.check_sat p <> Dpll.Unsat
