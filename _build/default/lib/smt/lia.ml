(** Linear integer arithmetic on top of the rational simplex.

    Decides conjunctions of linear constraints over {e integer} variables:

    - strict inequalities are tightened ([e < c] becomes [e <= c-1] once
      coefficients are scaled to integers), which alone decides almost all
      liquid-type queries;
    - equalities get the GCD divisibility test;
    - any remaining fractional model values are handled by bounded
      branch-and-bound; exhausting the node budget yields [`Unknown],
      which callers must treat as "possibly satisfiable" (sound for a
      validity checker). *)

type op = Le | Lt | Eq

type cons = { exp : Linexp.t; op : op; rhs : Rat.t }

type result = Sat of Rat.t array | Unsat | Unknown

let default_budget = 400

let ncalls = ref 0
let nnodes_total = ref 0
let time_in = ref 0.0

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let rec lcm_den acc le =
  match le with
  | [] -> acc
  | d :: rest ->
      let g = gcd acc d in
      lcm_den (Rat.mul_int (acc / g) d) rest

(** Scale a constraint so that all variable coefficients are integers,
    divide through by their GCD, and tighten.  Returns [None] if the
    constraint is detected unsatisfiable outright (GCD test). *)
let normalize { exp; op; rhs } : cons option option =
  (* Fold the constant term into the right-hand side. *)
  let rhs = Rat.sub rhs (Linexp.constant exp) in
  let exp = Linexp.sub exp (Linexp.const (Linexp.constant exp)) in
  let dens = Linexp.fold (fun _ c acc -> Rat.den c :: acc) exp [ Rat.den rhs ] in
  let m = lcm_den 1 dens in
  let exp = Linexp.scale (Rat.of_int m) exp in
  let rhs = Rat.mul (Rat.of_int m) rhs in
  (* Now all coefficients are integers; rhs may still be fractional only if
     m missed its denominator, which lcm prevents. *)
  let g = Linexp.fold (fun _ c acc -> gcd acc (Rat.num c)) exp 0 in
  if g = 0 then
    (* No variables: decide now. *)
    let sat =
      match op with
      | Le -> Rat.le Rat.zero rhs
      | Lt -> Rat.lt Rat.zero rhs
      | Eq -> Rat.is_zero rhs
    in
    if sat then Some None else None
  else
    let exp = Linexp.scale (Rat.make 1 g) exp in
    let rhs = Rat.div rhs (Rat.of_int g) in
    match op with
    | Eq ->
        if Rat.is_integer rhs then Some (Some { exp; op = Eq; rhs })
        else None (* GCD test: g*e' = rhs with rhs not divisible by g *)
    | Le | Lt ->
        (* e' <= rhs (or <) with integer coefficients and integer-valued e':
           tighten the bound to an integer. *)
        let bound =
          match (op, Rat.is_integer rhs) with
          | Lt, true -> Rat.sub rhs Rat.one
          | Lt, false | Le, false -> Rat.of_int (Rat.floor rhs)
          | Le, true -> rhs
          | Eq, _ -> assert false
        in
        Some (Some { exp; op = Le; rhs = bound })

let to_simplex { exp; op; rhs } =
  match op with
  | Le -> Simplex.cons exp Simplex.Le rhs
  | Eq -> Simplex.cons exp Simplex.Eq rhs
  | Lt -> (* eliminated by [normalize] *) Simplex.cons exp Simplex.Le rhs

(** Find a variable with a fractional value in the model. *)
let fractional model =
  let n = Array.length model in
  let rec go i =
    if i >= n then None
    else if Rat.is_integer model.(i) then go (i + 1)
    else Some (i, model.(i))
  in
  go 0

let check ?(budget = default_budget) ~nvars (cs : cons list) : result =
  incr ncalls;
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> time_in := !time_in +. (Unix.gettimeofday () -. t0)) @@ fun () ->
  let nodes = ref 0 in
  (* Normalize once up front; later branch constraints are already integral. *)
  let exception Trivially_unsat in
  try
    let cs =
      List.filter_map
        (fun c ->
          match normalize c with
          | None -> raise Trivially_unsat
          | Some c' -> c')
        cs
    in
    let rec bb (cs : cons list) : result =
      incr nodes;
      incr nnodes_total;
      if !nodes > budget then Unknown
      else
        match Simplex.solve ~nvars (List.map to_simplex cs) with
        | `Unsat -> Unsat
        | `Sat model -> (
            match fractional model with
            | None -> Sat model
            | Some (v, value) -> (
                let lo =
                  { exp = Linexp.var v; op = Le; rhs = Rat.of_int (Rat.floor value) }
                in
                let hi =
                  {
                    exp = Linexp.neg (Linexp.var v);
                    op = Le;
                    rhs = Rat.of_int (-Rat.ceil value);
                  }
                in
                match bb (lo :: cs) with
                | Sat m -> Sat m
                | Unknown -> (
                    match bb (hi :: cs) with Sat m -> Sat m | r -> if r = Unsat then Unknown else r)
                | Unsat -> bb (hi :: cs)))
    in
    bb cs
  with
  | Trivially_unsat -> Unsat
  | Rat.Overflow -> Unknown
