(** Linear expressions over solver variables: a finite map from variable
    indices to non-zero rational coefficients, plus a constant. *)

type t

val zero : t
val const : Rat.t -> t
val var : ?coeff:Rat.t -> int -> t

val is_const : t -> bool
val constant : t -> Rat.t
val coeff : int -> t -> Rat.t

val add : t -> t -> t
val scale : Rat.t -> t -> t
val neg : t -> t
val sub : t -> t -> t
val add_term : int -> Rat.t -> t -> t
val add_const : Rat.t -> t -> t

(** Remove a variable, returning its coefficient and the remainder. *)
val remove : int -> t -> Rat.t * t

val fold : (int -> Rat.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (int -> Rat.t -> unit) -> t -> unit
val vars : t -> int list
val choose_var : t -> (int * Rat.t) option

(** Evaluate under a total assignment. *)
val eval : (int -> Rat.t) -> t -> Rat.t

val compare : t -> t -> int
val pp : (Format.formatter -> int -> unit) -> Format.formatter -> t -> unit
