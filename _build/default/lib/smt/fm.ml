(** Fourier–Motzkin elimination over the rationals.

    A second, independent decision procedure for conjunctions of linear
    constraints, used to cross-check {!Simplex} in the test suite
    (differential testing of a from-scratch solver) and as a reference
    implementation.  Exponential in the worst case — fine for the small
    systems the tests generate; the production path stays on simplex.

    Equalities are split into two inequalities; each variable is then
    eliminated by combining every lower bound with every upper bound.
    What remains are variable-free constraints, checked directly. *)

type cons = { exp : Linexp.t; op : [ `Le | `Lt ]; rhs : Rat.t }

let of_simplex (c : Simplex.cons) : cons list =
  match c.Simplex.op with
  | Simplex.Le -> [ { exp = c.Simplex.exp; op = `Le; rhs = c.Simplex.rhs } ]
  | Simplex.Ge ->
      [ { exp = Linexp.neg c.Simplex.exp; op = `Le; rhs = Rat.neg c.Simplex.rhs } ]
  | Simplex.Eq ->
      [
        { exp = c.Simplex.exp; op = `Le; rhs = c.Simplex.rhs };
        { exp = Linexp.neg c.Simplex.exp; op = `Le; rhs = Rat.neg c.Simplex.rhs };
      ]

(** All variables mentioned by the system. *)
let variables (cs : cons list) : int list =
  Liquid_common.Listx.dedup_ordered ~compare:Int.compare
    (List.concat_map (fun c -> Linexp.vars c.exp) cs)

(** Eliminate variable [v]: for every pair (lower bound, upper bound) on
    [v], combine; keep constraints not mentioning [v]. *)
let eliminate (v : int) (cs : cons list) : cons list =
  let lowers = ref [] and uppers = ref [] and rest = ref [] in
  List.iter
    (fun c ->
      let coeff = Linexp.coeff v c.exp in
      if Rat.is_zero coeff then rest := c :: !rest
      else begin
        (* normalize: v <= e (upper) or v >= e (lower) *)
        let _, remainder = Linexp.remove v c.exp in
        let inv = Rat.inv coeff in
        (* coeff*v + remainder <= rhs *)
        let bound_exp = Linexp.scale (Rat.neg inv) remainder in
        let bound_rhs = Rat.mul inv c.rhs in
        (* v <= bound_exp + bound_rhs  if coeff > 0, else v >= ... *)
        let entry = (Linexp.add_const bound_rhs bound_exp, c.op) in
        if Rat.sign coeff > 0 then uppers := entry :: !uppers
        else lowers := entry :: !lowers
      end)
    cs;
  let combined =
    List.concat_map
      (fun (lo, lop) ->
        List.map
          (fun (up, uop) ->
            (* lo <= v <= up  ==>  lo - up <= 0 *)
            let op = if lop = `Lt || uop = `Lt then `Lt else `Le in
            { exp = Linexp.sub lo up; op; rhs = Rat.zero })
          !uppers)
      !lowers
  in
  combined @ !rest

(** Rational satisfiability by elimination. *)
let sat (cs : cons list) : bool =
  let rec go cs =
    match variables cs with
    | [] ->
        List.for_all
          (fun c ->
            let k = Linexp.constant c.exp in
            match c.op with
            | `Le -> Rat.le k c.rhs
            | `Lt -> Rat.lt k c.rhs)
          cs
    | v :: _ -> go (eliminate v cs)
  in
  go cs

(** Decide a {!Simplex}-style system over the rationals. *)
let solve (cs : Simplex.cons list) : [ `Sat | `Unsat ] =
  if sat (List.concat_map of_simplex cs) then `Sat else `Unsat
