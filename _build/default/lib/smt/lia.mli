(** Linear integer arithmetic over the rational simplex: strict-inequality
    tightening, the GCD test on equalities, and bounded branch-and-bound.
    [Unknown] (budget or overflow) must be treated as "possibly
    satisfiable" — sound for a validity checker. *)

type op = Le | Lt | Eq

type cons = { exp : Linexp.t; op : op; rhs : Rat.t }

type result = Sat of Rat.t array | Unsat | Unknown

val default_budget : int

(** Global counters for benchmarking. *)

val ncalls : int ref
val nnodes_total : int ref
val time_in : float ref

(** Decide a conjunction of integer constraints over variables
    [0 .. nvars-1].  [budget] bounds branch-and-bound nodes. *)
val check : ?budget:int -> nvars:int -> cons list -> result
