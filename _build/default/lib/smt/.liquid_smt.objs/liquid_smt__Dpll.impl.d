lib/smt/dpll.ml: Array Liquid_logic List Prop Theory
