lib/smt/rat.mli: Format
