lib/smt/linexp.mli: Format Rat
