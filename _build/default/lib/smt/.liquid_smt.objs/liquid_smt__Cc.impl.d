lib/smt/cc.ml: Array Hashtbl Liquid_logic List Symbol
