lib/smt/linexp.ml: Fmt Int Map Rat
