lib/smt/fm.mli: Linexp Rat Simplex
