lib/smt/lia.ml: Array Fun Linexp List Rat Simplex Unix
