lib/smt/rat.ml: Fmt Stdlib
