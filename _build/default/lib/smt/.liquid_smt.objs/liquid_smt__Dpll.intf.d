lib/smt/dpll.mli: Liquid_logic
