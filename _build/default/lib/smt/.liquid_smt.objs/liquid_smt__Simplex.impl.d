lib/smt/simplex.ml: Array Linexp List Rat
