lib/smt/theory.mli: Liquid_logic Pred
