lib/smt/theory.ml: Array Buffer Cc Fmt Hashtbl Ident Int Lia Linexp Liquid_common Liquid_logic List Listx Pred Rat Sort String Symbol Term
