lib/smt/fm.ml: Int Linexp Liquid_common List Rat Simplex
