lib/smt/solver.mli: Format Liquid_logic Pred
