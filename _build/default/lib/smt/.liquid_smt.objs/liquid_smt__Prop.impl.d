lib/smt/prop.ml: Array Hashtbl Liquid_logic List Pred Term
