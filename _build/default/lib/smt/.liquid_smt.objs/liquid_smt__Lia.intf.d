lib/smt/lia.mli: Linexp Rat
