lib/smt/solver.ml: Dpll Fmt Hashtbl Liquid_common Liquid_logic List Map Pred Unix
