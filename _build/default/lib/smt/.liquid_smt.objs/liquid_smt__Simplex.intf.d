lib/smt/simplex.mli: Linexp Rat
