lib/smt/cc.mli: Liquid_logic Symbol
