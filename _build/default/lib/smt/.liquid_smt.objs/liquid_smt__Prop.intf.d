lib/smt/prop.mli: Liquid_logic Pred
