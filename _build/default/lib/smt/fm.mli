(** Fourier–Motzkin elimination over the rationals: an independent
    reference decision procedure used to cross-check {!Simplex}
    (differential testing).  Exponential; test-sized systems only. *)

type cons = { exp : Linexp.t; op : [ `Le | `Lt ]; rhs : Rat.t }

val of_simplex : Simplex.cons -> cons list
val sat : cons list -> bool

(** Decide a {!Simplex}-style system over the rationals. *)
val solve : Simplex.cons list -> [ `Sat | `Unsat ]
