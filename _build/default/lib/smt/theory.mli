(** Combined theory solver for QF-EUFLIA conjunctions: purification into
    {!Lia} constraints and {!Cc} assertions, with a bounded Nelson–Oppen
    equality exchange.  [Unknown] must be treated as "possibly
    satisfiable". *)

open Liquid_logic

type result = Sat | Unsat | Unknown

(** Total invocation count (for benchmarking). *)
val ncalls : int ref

(** A counterexample assignment: display label -> integer value. *)
type model = (string * int) list

(** Model of the last [Sat] answer. *)
val last_model : model ref

(** Decide the conjunction of the given signed atoms ([(p, false)]
    asserts the negation of [p]).  Non-atomic predicates are rejected
    with [Invalid_argument]. *)
val check_sat : (Pred.t * bool) list -> result
