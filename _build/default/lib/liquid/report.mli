(** Presentation-quality refinement types: rename binders back to source
    names, renumber type variables, and drop redundant conjuncts (checked
    with the SMT solver).  Never changes a type's denotation. *)

(** Clean a solved type for display. *)
val display : Rtype.t -> Rtype.t

(** Drop conjuncts implied by the remaining ones (bounded, greedy). *)
val minimize_conjunction : Liquid_logic.Pred.t -> Liquid_logic.Pred.t
