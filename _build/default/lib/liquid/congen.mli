(** Liquid constraint generation: walks the A-normal program, building
    templates and emitting well-formedness and subtyping constraints per
    the paper's syntax-directed rules. *)

open Liquid_common
open Liquid_lang
open Liquid_typing

exception Congen_error of string * Loc.t

type output = {
  subs : Constr.sub list;
  wfs : Constr.wf list;
  item_types : (Ident.t * Rtype.t) list; (* in program order *)
}

(** Generate the constraint system.  [specs] supplies refinement-type
    specifications to check modularly (see {!Spec}).
    @raise Congen_error on unbound variables, shape errors, or misaligned
    specifications.  The program must be in A-normal form and typed by
    [info]. *)
val generate : ?specs:Spec.t -> Infer.result -> Ast.program -> output
