(** Liquid constraint solving by predicate abstraction: the paper's
    [Solve]/[Weaken] fixpoint with a dependency-directed worklist,
    followed by the final check of concrete obligations. *)

open Liquid_logic

module KMap : Map.S with type key = int

type failure = {
  f_origin : Constr.origin;
  f_goal : Pred.t; (* the unprovable obligation *)
  f_cex : (string * int) list; (* falsifying values, when available *)
}

type stats = {
  mutable iterations : int;
  mutable implication_checks : int;
  mutable initial_candidates : int;
}

type result = {
  solution : Pred.t list KMap.t;
  failures : failure list;
  solver_stats : stats;
}

(** Solve the constraint system.  [quals] are the qualifier patterns;
    [consts] are mined integer literals offered to placeholders. *)
val solve :
  ?quals:Qualifier.t list ->
  ?consts:int list ->
  Constr.wf list ->
  Constr.sub list ->
  result

(** Replace every κ by the conjunction of its solution. *)
val apply_solution : Pred.t list KMap.t -> Rtype.t -> Rtype.t
