(** Refined signatures of the NanoML primitives — where the array-bounds
    safety policy lives ([Array.get]/[Array.set] demand
    [0 <= i < len a]). *)

open Liquid_common

val signatures : (string * Rtype.t) list

val lookup : Ident.t -> Rtype.t option

(** Human-readable reason for a primitive's refined argument, used to
    label constraint origins (hence error messages). *)
val arg_reason : Ident.t -> string option
