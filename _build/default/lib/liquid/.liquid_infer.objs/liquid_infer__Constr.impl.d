lib/liquid/constr.ml: Fmt Ident Int Liquid_common Liquid_logic List Loc Pred Rtype Sort Stdlib Symbol Term
