lib/liquid/fixpoint.mli: Constr Liquid_logic Map Pred Qualifier Rtype
