lib/liquid/fixpoint.ml: Constr Ident Int Liquid_common Liquid_logic Liquid_smt List Map Pred Qualifier Queue Rtype Set Solver Sort Term
