lib/liquid/prims.mli: Ident Liquid_common Rtype
