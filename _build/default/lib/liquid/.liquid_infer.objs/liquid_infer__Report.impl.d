lib/liquid/report.ml: Hashtbl Ident Liquid_common Liquid_logic Liquid_smt List Pred Rtype String Term
