lib/liquid/qualifier.mli: Format Ident Liquid_common Liquid_logic Pred Qualparse Sort
