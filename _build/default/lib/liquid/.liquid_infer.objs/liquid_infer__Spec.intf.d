lib/liquid/spec.mli: Format Ident Liquid_common Liquid_typing Rtype
