lib/liquid/rtype.ml: Fmt Gensym Hashtbl Ident Liquid_common Liquid_logic Liquid_typing List Mltype Pred Sort String Symbol Term
