lib/liquid/rtype.mli: Format Ident Liquid_common Liquid_logic Liquid_typing Mltype Pred Sort Symbol Term
