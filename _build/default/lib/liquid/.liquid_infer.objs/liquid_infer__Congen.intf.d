lib/liquid/congen.mli: Ast Constr Ident Infer Liquid_common Liquid_lang Liquid_typing Loc Rtype Spec
