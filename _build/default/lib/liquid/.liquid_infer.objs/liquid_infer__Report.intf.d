lib/liquid/report.mli: Liquid_logic Rtype
