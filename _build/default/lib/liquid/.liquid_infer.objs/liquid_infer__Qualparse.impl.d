lib/liquid/qualparse.ml: Fmt Ident Lexer Lexing Liquid_common Liquid_lang Liquid_logic Pred Printf Sort String Term Token
