lib/liquid/qualifier.ml: Fmt Ident Liquid_common Liquid_lang Liquid_logic List Listx Pred Printf Qualparse Sort String Term Token
