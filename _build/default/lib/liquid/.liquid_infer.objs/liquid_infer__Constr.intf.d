lib/liquid/constr.mli: Format Ident Liquid_common Liquid_logic Loc Map Pred Rtype Sort
