lib/liquid/congen.ml: Ast Constr Fmt Gensym Ident Infer Liquid_anf Liquid_common Liquid_lang Liquid_logic Liquid_typing List Loc Mltype Pred Prims Rtype Sort Spec Symbol Term
