lib/liquid/prims.ml: Hashtbl Ident Liquid_common Liquid_logic List Pred Rtype Sort Term
