lib/liquid/spec.ml: Fmt Gensym Hashtbl Ident Liquid_common Liquid_lang Liquid_logic Liquid_typing List Mltype Pred Qualparse Rtype Sort Term Token
