(** Refinement-type specifications — modular, checkable signatures for
    top-level bindings (DSOLVE accepted an interface file the same way).

    Syntax, one declaration per binding:

    {v
      val sum    : k:int -> {v:int | v >= k && 0 <= v}
      val append : xs:'a list -> ys:'a list ->
                   {v:'a list | llen v = llen xs + llen ys}
    v}

    A specified binding is {e checked} (inferred <: specification, with
    failures reported as "specification check" obligations) and {e used
    modularly} (later bindings, and the body of a specified recursive
    function, see only the specification). *)

open Liquid_common

exception Error of string

type t = (Ident.t * Rtype.t) list

(** @raise Error on syntax or sorting problems. *)
val parse_string : string -> t

val lookup : t -> Ident.t -> Rtype.t option

val pp : Format.formatter -> t -> unit

exception Misaligned of string

(** Rename the specification's type variables to the ids the inferred ML
    type uses at the same positions.
    @raise Misaligned if the specification's shape does not match or is
    less general than the inferred type. *)
val align_tyvars : Rtype.t -> Liquid_typing.Mltype.t -> Rtype.t
