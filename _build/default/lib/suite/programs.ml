(** The paper's benchmark suite: NanoML ports of the DML array-bounds
    programs evaluated in PLDI 2008 (Figure "Results" of the paper), plus
    the overview examples whose inferred types the paper displays.

    Each benchmark records:
    - the NanoML source (with a [main] exercising it, so the interpreter
      can execute it in tests);
    - extra qualifier declarations beyond the shared defaults (the paper
      reports the number of qualifiers each program needs);
    - the annotation burden DML imposed, as reported by the paper
      (baseline column of the results table; DML itself is not runnable
      here — see DESIGN.md).

    The [dml_annot] figures are the paper's reported counts of manually
    written DML dependent-annotation characters, used only for the
    baseline column of the reproduced table. *)

type benchmark = {
  name : string;
  description : string;
  source : string;
  extra_qualifiers : string; (* qualifier declarations, possibly empty *)
  dml_annot : int; (* paper-reported DML annotation size (chars) *)
  paper_lines : int; (* paper-reported LOC, for reference *)
}

(* ------------------------------------------------------------------ *)
(* dotprod — dot product of two vectors; the inferred precondition     *)
(* relates the two array lengths.                                      *)
(* ------------------------------------------------------------------ *)

let dotprod =
  {
    name = "dotprod";
    description = "dot product; infers len v2 >= len v1 precondition";
    source =
      {|
let dotprod v1 v2 =
  let rec loop i sum =
    if i < Array.length v1 then
      loop (i + 1) (sum + v1.(i) * v2.(i))
    else sum
  in
  loop 0 0

let main =
  let a = Array.make 16 3 in
  let b = Array.make 16 4 in
  assert (Array.length a <= Array.length b);
  dotprod a b
|};
    extra_qualifiers = "";
    dml_annot = 92;
    paper_lines = 7;
  }

(* ------------------------------------------------------------------ *)
(* bcopy — block copy into a buffer at least as large as the source.   *)
(* ------------------------------------------------------------------ *)

let bcopy =
  {
    name = "bcopy";
    description = "array block copy; infers len dst >= len src";
    source =
      {|
let bcopy src dst =
  let rec loop i =
    if i < Array.length src then begin
      dst.(i) <- src.(i);
      loop (i + 1)
    end else ()
  in
  loop 0

let main =
  let a = Array.make 10 7 in
  let b = Array.make 20 0 in
  assert (Array.length a <= Array.length b);
  bcopy a b;
  b.(9)
|};
    extra_qualifiers = "qualif GeLenLen(v) : len v >= len _";
    dml_annot = 105;
    paper_lines = 12;
  }

(* ------------------------------------------------------------------ *)
(* bsearch — binary search; midpoint division reasoning.               *)
(* ------------------------------------------------------------------ *)

let bsearch =
  {
    name = "bsearch";
    description = "binary search with midpoint division";
    source =
      {|
let bsearch key vec =
  let rec look lo hi =
    if lo <= hi then begin
      let m = (lo + hi) / 2 in
      let x = vec.(m) in
      if x < key then look (m + 1) hi
      else if x > key then look lo (m - 1)
      else m
    end else (0 - 1)
  in
  look 0 (Array.length vec - 1)

let main =
  let v = Array.make 8 3 in
  let r = bsearch 3 v in
  assert (r < Array.length v)
|};
    extra_qualifiers = "";
    dml_annot = 157;
    paper_lines = 24;
  }

(* ------------------------------------------------------------------ *)
(* queens — n-queens; board writes bounded by the inferred invariants  *)
(* relating rows, columns and the board length.                        *)
(* ------------------------------------------------------------------ *)

let queens =
  {
    name = "queens";
    description = "n-queens solver counting solutions";
    source =
      {|
let queens size =
  let board = Array.make size 0 in
  let rec ok r c i =
    if i < r then begin
      let ci = board.(i) in
      if ci = c then false
      else if abs (ci - c) = r - i then false
      else ok r c (i + 1)
    end else true
  in
  let rec solve r =
    if r = size then 1
    else begin
      let rec try_col c acc =
        if c < size then begin
          if ok r c 0 then begin
            board.(r) <- c;
            try_col (c + 1) (acc + solve (r + 1))
          end else try_col (c + 1) acc
        end else acc
      in
      try_col 0 0
    end
  in
  solve 0

let main =
  let n = queens 6 in
  assert (0 <= n);
  n
|};
    extra_qualifiers = "";
    dml_annot = 199;
    paper_lines = 29;
  }

(* ------------------------------------------------------------------ *)
(* isort — in-place insertion sort.                                    *)
(* ------------------------------------------------------------------ *)

let isort =
  {
    name = "isort";
    description = "in-place insertion sort on an array";
    source =
      {|
let isort a =
  let n = Array.length a in
  let rec insert j =
    if 0 < j then begin
      let x = a.(j - 1) in
      let y = a.(j) in
      if y < x then begin
        a.(j) <- x;
        a.(j - 1) <- y;
        insert (j - 1)
      end else ()
    end else ()
  in
  let rec walk i =
    if i < n then begin
      insert i;
      walk (i + 1)
    end else ()
  in
  walk 0

let main =
  let a = Array.make 10 0 in
  let rec fill i =
    if i < 10 then begin
      a.(i) <- 10 - i;
      fill (i + 1)
    end else ()
  in
  fill 0;
  isort a;
  assert (Array.length a = 10);
  a.(0)
|};
    extra_qualifiers = "";
    dml_annot = 235;
    paper_lines = 33;
  }

(* ------------------------------------------------------------------ *)
(* tower — towers of Hanoi with three explicit peg arrays; peg heights *)
(* obey the 3-way conservation invariant supplied as a qualifier.      *)
(* ------------------------------------------------------------------ *)

let tower =
  {
    name = "tower";
    description = "towers of Hanoi on explicit peg arrays";
    source =
      {|
let tower n =
  let pa = Array.make n 0 in
  let pb = Array.make n 0 in
  let pc = Array.make n 0 in
  let rec fill i =
    if i < n then begin
      pa.(i) <- n - i;
      fill (i + 1)
    end else ()
  in
  fill 0;
  let rec hanoi s d o hs hd ho k =
    if k = 0 then ()
    else begin
      hanoi s o d hs ho hd (k - 1);
      d.(hd) <- s.(hs - k);
      hanoi o d s (ho + k - 1) (hd + 1) (hs - k) (k - 1)
    end
  in
  hanoi pa pb pc n 0 0 n;
  pb.(n - 1)

let main =
  let top = tower 5 in
  top
|};
    extra_qualifiers = "qualif SumBound(v) : v + _A <= len _B";
    dml_annot = 242;
    paper_lines = 36;
  }

(* ------------------------------------------------------------------ *)
(* matmult — matrix multiplication over arrays of arrays; row lengths  *)
(* are carried by the element templates of the outer arrays.           *)
(* ------------------------------------------------------------------ *)

let matmult =
  {
    name = "matmult";
    description = "square matrix multiplication (arrays of arrays)";
    source =
      {|
let make_matrix n =
  let m = Array.make n (Array.make n 0) in
  let rec fill i =
    if i < n then begin
      m.(i) <- Array.make n 0;
      fill (i + 1)
    end else ()
  in
  fill 0;
  m

let matmult n a b c =
  let rec loop_k i j k acc =
    if k < n then begin
      let ai = a.(i) in
      let bk = b.(k) in
      loop_k i j (k + 1) (acc + ai.(k) * bk.(j))
    end else acc
  in
  let rec loop_j i j =
    if j < n then begin
      let ci = c.(i) in
      ci.(j) <- loop_k i j 0 0;
      loop_j i (j + 1)
    end else ()
  in
  let rec loop_i i =
    if i < n then begin
      loop_j i 0;
      loop_i (i + 1)
    end else ()
  in
  loop_i 0

let main =
  let n = 4 in
  let a = make_matrix n in
  let b = make_matrix n in
  let c = make_matrix n in
  let rec init i =
    if i < n then begin
      let ai = a.(i) in
      let bi = b.(i) in
      ai.(i) <- 1;
      bi.(i) <- 2;
      init (i + 1)
    end else ()
  in
  init 0;
  matmult n a b c;
  let c0 = c.(0) in
  assert (Array.length c0 = n);
  c0.(0)
|};
    extra_qualifiers = "";
    dml_annot = 334;
    paper_lines = 43;
  }

(* ------------------------------------------------------------------ *)
(* heapsort — sift-down heapsort; child index arithmetic [2i+1].       *)
(* ------------------------------------------------------------------ *)

let heapsort =
  {
    name = "heapsort";
    description = "in-place heapsort with sift-down";
    source =
      {|
let heapsort a =
  let n = Array.length a in
  let swap i j =
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  in
  let rec sift root bound =
    let child = 2 * root + 1 in
    if child < bound then begin
      let c2 = child + 1 in
      let best = if c2 < bound then begin
          if a.(c2) > a.(child) then c2 else child
        end else child
      in
      if a.(best) > a.(root) then begin
        swap best root;
        sift best bound
      end else ()
    end else ()
  in
  let rec build i =
    if 0 <= i then begin
      sift i n;
      build (i - 1)
    end else ()
  in
  build (n / 2);
  let rec drain bound =
    if 1 < bound then begin
      swap 0 (bound - 1);
      sift 0 (bound - 1);
      drain (bound - 1)
    end else ()
  in
  drain n

let main =
  let a = Array.make 12 0 in
  let rec fill i =
    if i < 12 then begin
      a.(i) <- 100 - 7 * i;
      fill (i + 1)
    end else ()
  in
  fill 0;
  heapsort a;
  a.(11) - a.(0)
|};
    extra_qualifiers = "";
    dml_annot = 410;
    paper_lines = 84;
  }

(* ------------------------------------------------------------------ *)
(* fft — iterative radix-2 FFT kernel (integer butterflies): the       *)
(* bit-reversal permutation and the three-deep butterfly loops exercise*)
(* division-by-two invariants and guard-derived bounds.  The paper's   *)
(* DML original uses floats for twiddle factors; NanoML has no floats, *)
(* so the port keeps the exact access pattern with integer butterflies *)
(* (see DESIGN.md, substitutions).                                     *)
(* ------------------------------------------------------------------ *)

let fft =
  {
    name = "fft";
    description = "radix-2 FFT access pattern (bit reversal + butterflies)";
    source = {|let fft re im =
  let n = Array.length re in
  let rec rev_index i acc bits =
    if 0 < bits then rev_index (i / 2) (acc * 2 + i mod 2) (bits - 1)
    else acc
  in
  let rec bits_of k acc =
    if 1 < k then bits_of (k / 2) (acc + 1) else acc
  in
  let nbits = bits_of n 0 in
  let rec bitrev i =
    if i < n then begin
      let j = rev_index i 0 nbits in
      (if i < j then begin
         if j < n then begin
           let tr = re.(i) in
           re.(i) <- re.(j);
           re.(j) <- tr;
           let ti = im.(i) in
           im.(i) <- im.(j);
           im.(j) <- ti
         end else ()
       end else ());
      bitrev (i + 1)
    end else ()
  in
  bitrev 0;
  let rec stages le =
    if 1 < le then begin
      let half = le / 2 in
      let rec outer j =
        if j < half then begin
          let rec inner i =
            if i + half < n then begin
              let a = re.(i) in
              let b = re.(i + half) in
              re.(i) <- a + b;
              re.(i + half) <- a - b;
              let ai = im.(i) in
              let bi = im.(i + half) in
              im.(i) <- ai + bi;
              im.(i + half) <- ai - bi;
              inner (i + le)
            end else ()
          in
          inner j;
          outer (j + 1)
        end else ()
      in
      outer 0;
      stages half
    end else ()
  in
  stages n

let main =
  let re = Array.make 16 1 in
  let im = Array.make 16 0 in
  fft re im;
  re.(0)
|};
    extra_qualifiers = "";
    dml_annot = 575;
    paper_lines = 107;
  }

(* ------------------------------------------------------------------ *)
(* simplex — fraction-free simplex pivoting on an (m+1) x (n+1)        *)
(* tableau of arrays of arrays.                                        *)
(* ------------------------------------------------------------------ *)

let simplex =
  {
    name = "simplex";
    description = "integer simplex pivoting on a dense tableau";
    source = {|let make_tableau rows cols =
  let t = Array.make rows (Array.make cols 0) in
  let rec fill i =
    if i < rows then begin
      t.(i) <- Array.make cols 0;
      fill (i + 1)
    end else ()
  in
  fill 0;
  t

let simplex m n a =
  (* a is an (m+1) x (n+1) tableau: m constraint rows plus the objective
     row, n structural columns plus the constant column. *)
  let rec find_col j =
    if j < n then begin
      let obj = a.(m) in
      if obj.(j) < 0 then j else find_col (j + 1)
    end else 0 - 1
  in
  let rec find_row j i best =
    if i < m then begin
      let row = a.(i) in
      if row.(j) > 0 then begin
        if best < 0 then find_row j (i + 1) i
        else begin
          let rb = a.(best) in
          if row.(n) * rb.(j) < rb.(n) * row.(j) then find_row j (i + 1) i
          else find_row j (i + 1) best
        end
      end else find_row j (i + 1) best
    end else best
  in
  let rec eliminate p j i =
    if i <= m then begin
      if i = p then eliminate p j (i + 1)
      else begin
        let rowi = a.(i) in
        let rowp = a.(p) in
        let f = rowi.(j) in
        let d = rowp.(j) in
        let rec cols c =
          if c <= n then begin
            rowi.(c) <- rowi.(c) * d - rowp.(c) * f;
            cols (c + 1)
          end else ()
        in
        cols 0;
        eliminate p j (i + 1)
      end
    end else ()
  in
  let rec pivot_loop fuel =
    if 0 < fuel then begin
      let j = find_col 0 in
      if 0 <= j then begin
        let p = find_row j 0 (0 - 1) in
        if 0 <= p then begin
          eliminate p j 0;
          pivot_loop (fuel - 1)
        end else ()
      end else ()
    end else ()
  in
  pivot_loop (m + n)

let main =
  let m = 3 in
  let n = 4 in
  let a = make_tableau (m + 1) (n + 1) in
  let obj = a.(m) in
  obj.(0) <- 0 - 3;
  obj.(1) <- 0 - 2;
  let r0 = a.(0) in
  r0.(0) <- 2; r0.(1) <- 1; r0.(n) <- 18;
  let r1 = a.(1) in
  r1.(0) <- 2; r1.(1) <- 3; r1.(n) <- 42;
  let r2 = a.(2) in
  r2.(0) <- 3; r2.(1) <- 1; r2.(n) <- 24;
  simplex m n a;
  let final = a.(m) in
  final.(n)
|};
    extra_qualifiers = "qualif DimRow(v) : len v = _ + 1";
    dml_annot = 681;
    paper_lines = 118;
  }

(* ------------------------------------------------------------------ *)
(* gauss — fraction-free gaussian elimination with partial pivoting on *)
(* an n x (n+1) augmented matrix.                                      *)
(* ------------------------------------------------------------------ *)

let gauss =
  {
    name = "gauss";
    description = "gaussian elimination with row pivoting";
    source = {|let make_tableau rows cols =
  let t = Array.make rows (Array.make cols 0) in
  let rec fill i =
    if i < rows then begin
      t.(i) <- Array.make cols 0;
      fill (i + 1)
    end else ()
  in
  fill 0;
  t

let swap_rows a i j =
  let t = a.(i) in
  a.(i) <- a.(j);
  a.(j) <- t

let gauss n a =
  (* a is an n x (n+1) augmented matrix; integer fraction-free forward
     elimination followed by a back-substitution sweep. *)
  let rec find_pivot k i =
    if i < n then begin
      let row = a.(i) in
      if row.(k) <> 0 then i else find_pivot k (i + 1)
    end else 0 - 1
  in
  let rec elim_row k i =
    if i < n then begin
      let rowi = a.(i) in
      let rowk = a.(k) in
      let f = rowi.(k) in
      let d = rowk.(k) in
      let rec cols j =
        if j <= n then begin
          rowi.(j) <- rowi.(j) * d - rowk.(j) * f;
          cols (j + 1)
        end else ()
      in
      cols k;
      elim_row k (i + 1)
    end else ()
  in
  let rec forward k =
    if k < n then begin
      let p = find_pivot k k in
      if 0 <= p then begin
        (if p < n then swap_rows a k p else ());
        elim_row k (k + 1);
        forward (k + 1)
      end else forward (k + 1)
    end else ()
  in
  forward 0

let main =
  let n = 3 in
  let a = make_tableau n (n + 1) in
  let r0 = a.(0) in
  r0.(0) <- 2; r0.(1) <- 1; r0.(2) <- 1; r0.(3) <- 5;
  let r1 = a.(1) in
  r1.(0) <- 4; r1.(1) <- 1; r1.(2) <- 0; r1.(3) <- 3;
  let r2 = a.(2) in
  r2.(0) <- 0 - 2; r2.(1) <- 2; r2.(2) <- 1; r2.(3) <- 1;
  gauss n a;
  let last = a.(n - 1) in
  last.(n)
|};
    extra_qualifiers = "qualif DimRow(v) : len v = _ + 1";
    dml_annot = 723;
    paper_lines = 142;
  }

(** The full suite, in the paper's table order. *)
let all : benchmark list =
  [
    dotprod; bcopy; bsearch; queens; isort; tower; matmult; heapsort; fft;
    simplex; gauss;
  ]

let find name = List.find (fun b -> b.name = name) all

