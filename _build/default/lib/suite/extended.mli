(** Extended benchmark suite (ours): programs beyond the paper's table,
    exercising modular-arithmetic indexing, triangular updates, flag
    arrays, two-array scanning, rectangular matrices and memoization.
    Verified with constant mining enabled. *)

type benchmark = Programs.benchmark

val queue : benchmark
val pascal : benchmark
val sieve : benchmark
val selsort : benchmark
val strmatch : benchmark
val transpose : benchmark
val fibmemo : benchmark

val all : benchmark list

(** @raise Not_found for unknown names. *)
val find : string -> benchmark
