(** Extended benchmark suite: programs beyond the paper's table,
    exercising idioms its evaluation motivates — modular arithmetic
    indexing, triangular updates, flag arrays, two-array scanning,
    rectangular matrices and memoization.  Each verifies with the default
    qualifiers (plus the listed extras) and runs under the reference
    interpreter in the tests. *)

type benchmark = Programs.benchmark = {
  name : string;
  description : string;
  source : string;
  extra_qualifiers : string;
  dml_annot : int; (* unused here; 0 *)
  paper_lines : int; (* unused here; 0 *)
}

let mk name description ?(extra_qualifiers = "") source =
  { name; description; source; extra_qualifiers; dml_annot = 0; paper_lines = 0 }

(* -- ring buffer: modular index arithmetic ---------------------------- *)

let queue =
  mk "queue" "bounded queue over a ring buffer (mod indexing)"
    {|
let enqueue buf head count x =
  let cap = Array.length buf in
  if count < cap then begin
    let tail = (head + count) mod cap in
    (if 0 < cap then buf.(tail) <- x else ());
    count + 1
  end else count

let dequeue buf head count =
  let cap = Array.length buf in
  if 0 < count then begin
    if head < cap then buf.(head) else 0
  end else 0

let main =
  let q = Array.make 8 0 in
  let c = enqueue q 0 0 42 in
  let c2 = enqueue q 0 c 43 in
  assert (c2 <= Array.length q);
  dequeue q 0 c2
|}

(* -- pascal: triangular in-place updates ------------------------------- *)

let pascal =
  mk "pascal" "Pascal's triangle row, updated right-to-left in place"
    ~extra_qualifiers:"qualif DimRow(v) : len v = _ + 1"
    {|
let pascal n =
  let row = Array.make (n + 1) 0 in
  row.(0) <- 1;
  let rec next r =
    if r <= n then begin
      let rec update j =
        if 0 < j then begin
          (if j <= n then row.(j) <- row.(j) + row.(j - 1) else ());
          update (j - 1)
        end else ()
      in
      update r;
      next (r + 1)
    end else ()
  in
  next 1;
  row

let main =
  let r = pascal 6 in
  assert (Array.length r = 7);
  r.(3)
|}

(* -- sieve: flag array with stride marking ------------------------------ *)

let sieve =
  mk "sieve" "sieve of Eratosthenes on a boolean flag array"
    {|
let sieve n =
  let flags = Array.make n true in
  (if 0 < n then flags.(0) <- false else ());
  (if 1 < n then flags.(1) <- false else ());
  let rec mark p step =
    if p < n then begin
      flags.(p) <- false;
      mark (p + step) step
    end else ()
  in
  let rec scan p =
    if p < n then begin
      (if flags.(p) then mark (p + p) p else ());
      scan (p + 1)
    end else ()
  in
  scan 2;
  let rec count i acc =
    if i < n then begin
      if flags.(i) then count (i + 1) (acc + 1) else count (i + 1) acc
    end else acc
  in
  count 0 0

let main =
  let primes = sieve 30 in
  assert (0 <= primes);
  primes
|}

(* -- selection sort: nested scans with carried best index ---------------- *)

let selsort =
  mk "selsort" "in-place selection sort (carried minimum index)"
    {|
let selsort a =
  let n = Array.length a in
  let rec min_from i j best =
    if j < n then begin
      if a.(j) < a.(best) then min_from i (j + 1) j
      else min_from i (j + 1) best
    end else best
  in
  let rec outer i =
    if i < n then begin
      let m = min_from i (i + 1) i in
      (if m < n then begin
         let t = a.(i) in
         a.(i) <- a.(m);
         a.(m) <- t
       end else ());
      outer (i + 1)
    end else ()
  in
  outer 0

let main =
  let a = Array.make 10 0 in
  let rec fill i =
    if i < 10 then begin
      a.(i) <- 10 - i;
      fill (i + 1)
    end else ()
  in
  fill 0;
  selsort a;
  a.(0)
|}

(* -- substring search: two-array scanning with offset sums ---------------- *)

let strmatch =
  mk "strmatch" "naive substring search over char-as-int arrays"
    {|
let find_sub text pat =
  let n = Array.length text in
  let m = Array.length pat in
  let rec matches i j =
    if j < m then begin
      if i + j < n then begin
        if text.(i + j) = pat.(j) then matches i (j + 1) else false
      end else false
    end else true
  in
  let rec scan i =
    if i < n then begin
      if matches i 0 then i else scan (i + 1)
    end else 0 - 1
  in
  scan 0

let main =
  let text = Array.make 20 1 in
  let pat = Array.make 3 1 in
  let r = find_sub text pat in
  assert (r < Array.length text);
  r
|}

(* -- transpose: rectangular matrices -------------------------------------- *)

let transpose =
  mk "transpose" "rectangular matrix transpose (rows x cols -> cols x rows)"
    {|
let make_matrix rows cols =
  let m = Array.make rows (Array.make cols 0) in
  let rec fill i =
    if i < rows then begin
      m.(i) <- Array.make cols 0;
      fill (i + 1)
    end else ()
  in
  fill 0;
  m

let transpose rows cols m =
  let t = make_matrix cols rows in
  let rec go i =
    if i < rows then begin
      let mi = m.(i) in
      let rec inner j =
        if j < cols then begin
          let tj = t.(j) in
          tj.(i) <- mi.(j);
          inner (j + 1)
        end else ()
      in
      inner 0;
      go (i + 1)
    end else ()
  in
  go 0;
  t

let main =
  let m = make_matrix 3 5 in
  let r0 = m.(0) in
  r0.(4) <- 9;
  let t = transpose 3 5 m in
  let t4 = t.(4) in
  t4.(0)
|}

(* -- memoized fibonacci: table indexed by the recursion argument ----------- *)

let fibmemo =
  mk "fibmemo" "bottom-up memoized fibonacci over an (n+1) table"
    ~extra_qualifiers:"qualif DimRow(v) : len v = _ + 1"
    {|
let fib n =
  let memo = Array.make (n + 1) (0 - 1) in
  (if 0 <= n then memo.(0) <- 0 else ());
  (if 1 <= n then memo.(1) <- 1 else ());
  let rec go i =
    if i <= n then begin
      memo.(i) <- memo.(i - 1) + memo.(i - 2);
      go (i + 1)
    end else ()
  in
  go 2;
  memo.(n)

let main = fib 15
|}

let all : benchmark list =
  [ queue; pascal; sieve; selsort; strmatch; transpose; fibmemo ]

let find name = List.find (fun b -> b.name = name) all
