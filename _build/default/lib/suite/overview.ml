(** The paper's overview examples (its Figures 1–2 walk through these),
    with the inferred liquid types the paper displays.  The bench harness
    re-infers and prints them ("F1"); the test suite asserts the key
    refinements are found. *)

type example = {
  name : string;
  source : string;
  (* (item, substring that must occur in its inferred type) pairs *)
  expectations : (string * string) list;
}

(** [max]: the paper's first example — the inferred type says the result
    is no smaller than either argument. *)
let max_example =
  {
    name = "max";
    source = {|
let mymax x y = if x > y then x else y

let use = mymax 3 7
|};
    expectations = [ ("mymax", "v >= x"); ("mymax", "v >= y") ];
  }

(** [sum]: recursion; result is non-negative and at least [k]. *)
let sum_example =
  {
    name = "sum";
    source =
      {|
let rec sum k =
  if k < 0 then 0
  else begin
    let s = sum (k - 1) in
    s + k
  end

let use = sum 12
|};
    expectations = [ ("sum", "0 <= v"); ("sum", "v >= k") ];
  }

(** [foldn]: higher-order bounded iteration — the accumulator invariant
    flows through the function argument (the paper's flagship
    higher-order example). *)
let foldn_example =
  {
    name = "foldn";
    source =
      {|
let foldn n b f =
  let rec loop i c =
    if i < n then loop (i + 1) (f i c) else c
  in
  loop 0 b

let count = foldn 10 0 (fun i c -> c + 1)
|};
    expectations = [ ("foldn", "0 <= v"); ("foldn", "v < n") ];
  }

(** [arraymax]: array iteration with inferred bounds safety and a
    non-negative result. *)
let arraymax_example =
  {
    name = "arraymax";
    source =
      {|
let arraymax a =
  let rec loop i m =
    if i < Array.length a then begin
      let x = a.(i) in
      let m2 = max x m in
      loop (i + 1) m2
    end else m
  in
  loop 0 0

let use =
  let a = Array.make 10 5 in
  arraymax a
|};
    expectations = [ ("arraymax", "0 <= v") ];
  }

let all = [ max_example; sum_example; foldn_example; arraymax_example ]
