(** The paper's benchmark suite: NanoML ports of the 11 DML array-bounds
    programs of the PLDI 2008 evaluation. *)

type benchmark = {
  name : string;
  description : string;
  source : string; (* NanoML source, with a [main] exercising it *)
  extra_qualifiers : string; (* qualifier declarations beyond the defaults *)
  dml_annot : int; (* paper-reported DML annotation size (chars) *)
  paper_lines : int; (* paper-reported LOC, for reference *)
}

val dotprod : benchmark
val bcopy : benchmark
val bsearch : benchmark
val queens : benchmark
val isort : benchmark
val tower : benchmark
val matmult : benchmark
val heapsort : benchmark
val fft : benchmark
val simplex : benchmark
val gauss : benchmark

(** The full suite, in the paper's table order. *)
val all : benchmark list

(** @raise Not_found for unknown names. *)
val find : string -> benchmark
