lib/suite/overview.mli:
