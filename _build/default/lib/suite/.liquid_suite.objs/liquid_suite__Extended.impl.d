lib/suite/extended.ml: List Programs
