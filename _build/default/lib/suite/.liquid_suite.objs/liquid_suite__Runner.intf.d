lib/suite/runner.mli: Format Liquid_driver Liquid_eval Liquid_infer Programs
