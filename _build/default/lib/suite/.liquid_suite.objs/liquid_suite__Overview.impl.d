lib/suite/overview.ml:
