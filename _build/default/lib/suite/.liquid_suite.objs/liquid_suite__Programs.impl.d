lib/suite/programs.ml: List
