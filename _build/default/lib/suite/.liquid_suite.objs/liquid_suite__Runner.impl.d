lib/suite/runner.ml: Fmt Liquid_common Liquid_driver Liquid_eval Liquid_infer Liquid_lang List Programs String Unix
