lib/suite/extended.mli: Programs
