lib/suite/programs.mli:
