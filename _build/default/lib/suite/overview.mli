(** The paper's overview examples, with the inferred-type fragments the
    test suite asserts and the bench harness prints ("F1"). *)

type example = {
  name : string;
  source : string;
  expectations : (string * string) list;
      (** (item, substring that must occur in its inferred type) *)
}

val max_example : example
val sum_example : example
val foldn_example : example
val arraymax_example : example
val all : example list
