(** Abstract syntax of NanoML (see the parser for the surface
    desugarings).  Every expression node carries a unique id so later
    passes can attach information in side tables. *)

open Liquid_common

type const = Cint of int | Cbool of bool | Cunit

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type unop = Neg | Not

type rec_flag = Nonrec | Rec

type pat =
  | Pwild
  | Pvar of Ident.t
  | Punit
  | Pbool of bool
  | Pint of int
  | Ptuple of pat list
  | Pnil
  | Pcons of pat * pat

type expr = { id : int; loc : Loc.t; desc : desc }

and desc =
  | Const of const
  | Var of Ident.t
  | Fun of Ident.t * expr
  | App of expr * expr
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | If of expr * expr * expr
  | Let of rec_flag * Ident.t * expr * expr
  | Tuple of expr list
  | Nil
  | Cons of expr * expr
  | Match of expr * (pat * expr) list
  | Assert of expr

(** A top-level binding. *)
type item = {
  item_loc : Loc.t;
  rec_flag : rec_flag;
  name : Ident.t;
  body : expr;
}

type program = item list

(** Construct a node with a fresh id. *)
val mk : ?loc:Loc.t -> desc -> expr

val pat_vars : pat -> Ident.t list

(** Fold over all sub-expressions, top-down. *)
val fold : ('a -> expr -> 'a) -> 'a -> expr -> 'a

(** Number of expression nodes. *)
val size : expr -> int

val free_vars : expr -> Ident.Set.t

val pp_const : Format.formatter -> const -> unit
val binop_name : binop -> string
val pp_pat : Format.formatter -> pat -> unit
val pp : Format.formatter -> expr -> unit
val pp_item : Format.formatter -> item -> unit
val pp_program : Format.formatter -> program -> unit
