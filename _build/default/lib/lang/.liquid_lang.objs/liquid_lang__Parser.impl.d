lib/lang/parser.ml: Ast Fun Gensym Ident Lexer Lexing Liquid_common List Loc Printf Token
