lib/lang/ast.mli: Format Ident Liquid_common Loc
