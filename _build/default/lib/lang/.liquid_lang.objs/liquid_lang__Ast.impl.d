lib/lang/ast.ml: Fmt Ident Liquid_common List Loc
