lib/lang/token.ml:
