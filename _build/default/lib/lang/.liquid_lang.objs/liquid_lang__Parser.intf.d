lib/lang/parser.mli: Ast Lexing Liquid_common Loc
