lib/lang/lexer.ml: Hashtbl Lexing List Printf Token
