(** Recursive-descent parser for NanoML.  Performs the surface
    desugarings ([&&]/[||] to [if], sequencing to [let _], array sugar to
    [Array.get]/[Array.set] applications, multi-parameter and
    pattern-binding [let]s, list literals). *)

open Liquid_common

exception Error of string * Loc.t

(** Parse a whole program (a sequence of top-level [let] items).
    @raise Error on syntax errors (lexer errors are re-raised as [Error]
    only by the [program_of_*] entry points). *)
val program_of_lexbuf : file:string -> Lexing.lexbuf -> Ast.program

val program_of_string : ?file:string -> string -> Ast.program
val program_of_file : string -> Ast.program

(** Parse a single expression (for tests and tools).
    @raise Error on trailing input. *)
val expr_of_string : ?file:string -> string -> Ast.expr
