(** First-order terms of the refinement logic.

    Terms are sorted ({!Sort.Int} or {!Sort.Obj}); boolean program values
    appear at the predicate level ({!Pred}), never as terms.  Variables
    carry their sort so downstream passes never need a symbol table. *)

open Liquid_common

type t =
  | Int of int
  | Var of Ident.t * Sort.t
  | App of Symbol.t * t list
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t (* linearized or purified to [Symbol.mul] downstream *)

val compare : t -> t -> int
val equal : t -> t -> bool

(** Sort of a term; arithmetic is [Int], applications use the head's
    result sort. *)
val sort : t -> Sort.t

(** Free variables with sorts, in occurrence order; [free_vars] is the
    accumulating raw version, [vars] deduplicates. *)
val free_vars : (Ident.t * Sort.t) list -> t -> (Ident.t * Sort.t) list

val vars : t -> (Ident.t * Sort.t) list
val mem_var : Ident.t -> t -> bool

(** Simultaneous substitution of terms for variables. *)
val subst : t Ident.Map.t -> t -> t

val subst1 : Ident.t -> t -> t -> t

(** Smart constructors; fold constants and drop units. *)

val int : int -> t
val var : Ident.t -> Sort.t -> t

(** @raise Invalid_argument on arity mismatch. *)
val app : Symbol.t -> t list -> t

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t

(** [len a] — array length of an [Obj] term. *)
val len : t -> t

(** [llen l] — list length measure of an [Obj] term. *)
val llen : t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
