(** Sorts of the refinement logic.

    The logic is many-sorted with three ground sorts:

    - [Int]  — mathematical integers (program [int]s are modelled exactly;
      the paper's logic is linear integer arithmetic);
    - [Bool] — propositional values, so that boolean-valued program
      expressions can appear as atoms in refinements;
    - [Obj]  — every other program value (arrays, tuples, lists,
      functions, type variables).  [Obj] values are uninterpreted: the
      only reasoning available about them is equality and the application
      of uninterpreted function symbols such as [len].

    Function sorts never appear as the sort of a term; they classify the
    (fixed, first-order) signatures of uninterpreted symbols. *)

type t = Int | Bool | Obj

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) = Stdlib.compare a b

let pp ppf = function
  | Int -> Fmt.string ppf "int"
  | Bool -> Fmt.string ppf "bool"
  | Obj -> Fmt.string ppf "obj"

let to_string t = Fmt.str "%a" pp t

(** First-order signature of an uninterpreted function symbol. *)
type signature = { args : t list; result : t }

let sig_pp ppf { args; result } =
  Fmt.pf ppf "(%a) -> %a" Fmt.(list ~sep:comma pp) args pp result
