lib/logic/term.mli: Format Ident Liquid_common Sort Symbol
