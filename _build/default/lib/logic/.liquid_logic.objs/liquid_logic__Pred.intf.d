lib/logic/pred.mli: Format Ident Liquid_common Sort Symbol Term
