lib/logic/sort.ml: Fmt Stdlib
