lib/logic/pred.ml: Fmt Hashtbl Ident Liquid_common List Listx Sort Stdlib Symbol Term
