lib/logic/term.ml: Fmt Ident Liquid_common List Listx Printf Sort Stdlib Symbol
