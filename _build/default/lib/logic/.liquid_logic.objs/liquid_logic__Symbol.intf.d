lib/logic/symbol.mli: Format Sort
