lib/logic/sort.mli: Format
