lib/logic/symbol.ml: Fmt Hashtbl List Printf Sort String
