(** First-order terms of the refinement logic.

    Terms are sorted ({!Sort.Int} or {!Sort.Obj}); boolean program values
    appear at the predicate level (see {!Pred}), never as terms.  Variables
    carry their sort so downstream passes (qualifier instantiation, the SMT
    solver) never need a symbol table.

    Multiplication is kept as a syntactic node: the SMT front end
    linearizes products with a constant operand and purifies genuinely
    non-linear products into the uninterpreted symbol {!Symbol.mul}. *)

open Liquid_common

type t =
  | Int of int
  | Var of Ident.t * Sort.t
  | App of Symbol.t * t list
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t

let rec compare a b =
  match (a, b) with
  | Int m, Int n -> Stdlib.compare m n
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Var (x, sx), Var (y, sy) ->
      let c = Ident.compare x y in
      if c <> 0 then c else Sort.compare sx sy
  | Var _, _ -> -1
  | _, Var _ -> 1
  | App (f, ts), App (g, us) ->
      let c = Symbol.compare f g in
      if c <> 0 then c else List.compare compare ts us
  | App _, _ -> -1
  | _, App _ -> 1
  | Neg a, Neg b -> compare a b
  | Neg _, _ -> -1
  | _, Neg _ -> 1
  | Add (a1, a2), Add (b1, b2) | Sub (a1, a2), Sub (b1, b2)
  | Mul (a1, a2), Mul (b1, b2) ->
      let c = compare a1 b1 in
      if c <> 0 then c else compare a2 b2
  | Add _, _ -> -1
  | _, Add _ -> 1
  | Sub _, _ -> -1
  | _, Sub _ -> 1

let equal a b = compare a b = 0

(** Sort of a term.  Arithmetic nodes are always [Int]; applications have
    the result sort of their head symbol. *)
let sort = function
  | Int _ -> Sort.Int
  | Var (_, s) -> s
  | App (f, _) -> Symbol.result_sort f
  | Neg _ | Add _ | Sub _ | Mul _ -> Sort.Int

let rec free_vars acc = function
  | Int _ -> acc
  | Var (x, s) -> (x, s) :: acc
  | App (_, ts) -> List.fold_left free_vars acc ts
  | Neg t -> free_vars acc t
  | Add (a, b) | Sub (a, b) | Mul (a, b) -> free_vars (free_vars acc a) b

(** Free variables with their sorts, deduplicated. *)
let vars t =
  Listx.dedup_ordered
    ~compare:(fun (x, _) (y, _) -> Ident.compare x y)
    (free_vars [] t)

let mem_var x t = List.exists (fun (y, _) -> Ident.equal x y) (vars t)

(** Capture-avoiding substitution of terms for variables (the logic has no
    binders, so "capture-avoiding" is vacuous; substitution is simultaneous). *)
let rec subst (m : t Ident.Map.t) = function
  | Int _ as t -> t
  | Var (x, _) as t -> ( match Ident.Map.find_opt x m with Some u -> u | None -> t)
  | App (f, ts) -> App (f, List.map (subst m) ts)
  | Neg t -> Neg (subst m t)
  | Add (a, b) -> Add (subst m a, subst m b)
  | Sub (a, b) -> Sub (subst m a, subst m b)
  | Mul (a, b) -> Mul (subst m a, subst m b)

let subst1 x u t = subst (Ident.Map.singleton x u) t

(* Smart constructors perform light constant folding; they keep terms small
   which directly shrinks SMT queries. *)

let int n = Int n
let var x s = Var (x, s)
let app f ts =
  if List.length ts <> Symbol.arity f then
    invalid_arg (Printf.sprintf "Term.app: arity mismatch for %s" (Symbol.name f));
  App (f, ts)

let add a b =
  match (a, b) with
  | Int 0, t | t, Int 0 -> t
  | Int m, Int n -> Int (m + n)
  | _ -> Add (a, b)

let sub a b =
  match (a, b) with
  | t, Int 0 -> t
  | Int m, Int n -> Int (m - n)
  | _ -> Sub (a, b)

let neg = function Int n -> Int (-n) | Neg t -> t | t -> Neg t

let mul a b =
  match (a, b) with
  | Int 0, _ | _, Int 0 -> Int 0
  | Int 1, t | t, Int 1 -> t
  | Int m, Int n -> Int (m * n)
  | _ -> Mul (a, b)

let len a = app Symbol.len [ a ]

let llen l = app Symbol.llen [ l ]

let rec pp ppf = function
  | Int n -> Fmt.int ppf n
  | Var (x, _) -> Ident.pp ppf x
  | App (f, ts) ->
      Fmt.pf ppf "%a(%a)" Symbol.pp f Fmt.(list ~sep:comma pp) ts
  | Neg t -> Fmt.pf ppf "(- %a)" pp t
  | Add (a, b) -> Fmt.pf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Fmt.pf ppf "(%a - %a)" pp a pp b
  | Mul (a, b) -> Fmt.pf ppf "(%a * %a)" pp a pp b

let to_string t = Fmt.str "%a" pp t
