(** Predicates (quantifier-free formulas) of the refinement logic:
    boolean combinations of arithmetic/equality atoms between {!Term}s
    and boolean program variables. *)

open Liquid_common

type brel = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | True
  | False
  | Atom of Term.t * brel * Term.t
  | Bvar of Ident.t (* boolean program variable, as a proposition *)
  | Not of t
  | And of t list
  | Or of t list
  | Imp of t * t
  | Iff of t * t

val brel_compare : brel -> brel -> int
val compare : t -> t -> int
val equal : t -> t -> bool

(** {1 Smart constructors} — fold constants, flatten and deduplicate
    connectives, push negation through atoms. *)

val tt : t
val ff : t
val atom : Term.t -> brel -> Term.t -> t
val eq : Term.t -> Term.t -> t
val ne : Term.t -> Term.t -> t
val lt : Term.t -> Term.t -> t
val le : Term.t -> Term.t -> t
val gt : Term.t -> Term.t -> t
val ge : Term.t -> Term.t -> t
val bvar : Ident.t -> t
val not_ : t -> t
val conj : t list -> t
val disj : t list -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val imp : t -> t -> t
val iff : t -> t -> t

(** {1 Traversals} *)

(** Fold over the atoms ([Atom]/[Bvar] leaves). *)
val fold_atoms : ('a -> t -> 'a) -> 'a -> t -> 'a

(** Free variables with sorts, deduplicated ([Bvar]s are [Bool]). *)
val free_vars : t -> (Ident.t * Sort.t) list

val mem_var : Ident.t -> t -> bool

(** Uninterpreted symbols appearing in the predicate. *)
val symbols : t -> Symbol.t list

(** {1 Substitution} *)

(** Values substitutable for a variable: a term, or a predicate (for
    [Bool]-sorted variables appearing as [Bvar] atoms). *)
type value = Tm of Term.t | Pr of t

type subst = value Ident.Map.t

(** Term-valued part of a substitution. *)
val term_part : subst -> Term.t Ident.Map.t

val subst : subst -> t -> t
val subst1 : Ident.t -> value -> t -> t
val subst_term : Ident.t -> Term.t -> t -> t

(** {1 Printing} *)

val pp_brel : Format.formatter -> brel -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Ground evaluation} (used by property tests to cross-check the SMT
    solver against brute force; uninterpreted entities evaluate by
    hashing). *)

val eval_term : int Ident.Map.t -> Term.t -> int
val eval : int Ident.Map.t -> bool Ident.Map.t -> t -> bool
