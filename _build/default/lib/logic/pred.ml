(** Predicates (quantifier-free formulas) of the refinement logic.

    A refinement predicate is a boolean combination of:
    - arithmetic/equality atoms between {!Term}s,
    - boolean program variables ([Bvar]),
    - the constants [True]/[False].

    Boolean-sorted program values never appear inside terms; equality of
    boolean expressions is expressed with [Iff].  This keeps the term
    language two-sorted (Int/Obj) and the SMT theory layer simple. *)

open Liquid_common

type brel = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | True
  | False
  | Atom of Term.t * brel * Term.t
  | Bvar of Ident.t (* boolean program variable, as a proposition *)
  | Not of t
  | And of t list
  | Or of t list
  | Imp of t * t
  | Iff of t * t

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

let brel_compare (a : brel) (b : brel) = Stdlib.compare a b

let rec compare a b =
  match (a, b) with
  | True, True | False, False -> 0
  | True, _ -> -1
  | _, True -> 1
  | False, _ -> -1
  | _, False -> 1
  | Atom (t1, r, t2), Atom (u1, s, u2) ->
      let c = Term.compare t1 u1 in
      if c <> 0 then c
      else
        let c = brel_compare r s in
        if c <> 0 then c else Term.compare t2 u2
  | Atom _, _ -> -1
  | _, Atom _ -> 1
  | Bvar x, Bvar y -> Ident.compare x y
  | Bvar _, _ -> -1
  | _, Bvar _ -> 1
  | Not p, Not q -> compare p q
  | Not _, _ -> -1
  | _, Not _ -> 1
  | And ps, And qs | Or ps, Or qs -> List.compare compare ps qs
  | And _, _ -> -1
  | _, And _ -> 1
  | Or _, _ -> -1
  | _, Or _ -> 1
  | Imp (p1, p2), Imp (q1, q2) | Iff (p1, p2), Iff (q1, q2) ->
      let c = compare p1 q1 in
      if c <> 0 then c else compare p2 q2
  | Imp _, _ -> -1
  | _, Imp _ -> 1

let equal a b = compare a b = 0

(* ------------------------------------------------------------------ *)
(* Smart constructors                                                  *)
(* ------------------------------------------------------------------ *)

let tt = True
let ff = False

let atom t1 r t2 =
  match (t1, r, t2) with
  | Term.Int m, Eq, Term.Int n -> if m = n then True else False
  | Term.Int m, Ne, Term.Int n -> if m <> n then True else False
  | Term.Int m, Lt, Term.Int n -> if m < n then True else False
  | Term.Int m, Le, Term.Int n -> if m <= n then True else False
  | Term.Int m, Gt, Term.Int n -> if m > n then True else False
  | Term.Int m, Ge, Term.Int n -> if m >= n then True else False
  | _ -> if Term.equal t1 t2 then (
      match r with Eq | Le | Ge -> True | Ne | Lt | Gt -> False)
    else Atom (t1, r, t2)

let eq a b = atom a Eq b
let ne a b = atom a Ne b
let lt a b = atom a Lt b
let le a b = atom a Le b
let gt a b = atom a Gt b
let ge a b = atom a Ge b

let bvar x = Bvar x

let not_ = function
  | True -> False
  | False -> True
  | Not p -> p
  | Atom (a, Eq, b) -> Atom (a, Ne, b)
  | Atom (a, Ne, b) -> Atom (a, Eq, b)
  | Atom (a, Lt, b) -> Atom (a, Ge, b)
  | Atom (a, Le, b) -> Atom (a, Gt, b)
  | Atom (a, Gt, b) -> Atom (a, Le, b)
  | Atom (a, Ge, b) -> Atom (a, Lt, b)
  | p -> Not p

let conj ps =
  let ps =
    List.concat_map (function True -> [] | And qs -> qs | p -> [ p ]) ps
  in
  if List.exists (fun p -> p = False) ps then False
  else
    match Listx.dedup_ordered ~compare ps with
    | [] -> True
    | [ p ] -> p
    | ps -> And ps

let disj ps =
  let ps =
    List.concat_map (function False -> [] | Or qs -> qs | p -> [ p ]) ps
  in
  if List.exists (fun p -> p = True) ps then True
  else
    match Listx.dedup_ordered ~compare ps with
    | [] -> False
    | [ p ] -> p
    | ps -> Or ps

let and_ p q = conj [ p; q ]
let or_ p q = disj [ p; q ]

let imp p q =
  match (p, q) with
  | True, q -> q
  | False, _ -> True
  | _, True -> True
  | p, False -> not_ p
  | _ -> if equal p q then True else Imp (p, q)

let iff p q =
  match (p, q) with
  | True, q -> q
  | q, True -> q
  | False, q -> not_ q
  | q, False -> not_ q
  | _ -> if equal p q then True else Iff (p, q)

(* ------------------------------------------------------------------ *)
(* Traversals                                                          *)
(* ------------------------------------------------------------------ *)

let rec fold_atoms f acc = function
  | True | False -> acc
  | Atom _ as a -> f acc a
  | Bvar _ as a -> f acc a
  | Not p -> fold_atoms f acc p
  | And ps | Or ps -> List.fold_left (fold_atoms f) acc ps
  | Imp (p, q) | Iff (p, q) -> fold_atoms f (fold_atoms f acc p) q

let free_vars p =
  let atom_vars acc = function
    | Atom (a, _, b) -> Term.free_vars (Term.free_vars acc a) b
    | Bvar x -> (x, Sort.Bool) :: acc
    | _ -> acc
  in
  Listx.dedup_ordered
    ~compare:(fun (x, _) (y, _) -> Ident.compare x y)
    (fold_atoms atom_vars [] p)

let mem_var x p = List.exists (fun (y, _) -> Ident.equal x y) (free_vars p)

(** Uninterpreted symbols appearing in a predicate. *)
let symbols p =
  let rec term_syms acc = function
    | Term.App (f, ts) -> List.fold_left term_syms (f :: acc) ts
    | Term.Neg t -> term_syms acc t
    | Term.Add (a, b) | Term.Sub (a, b) | Term.Mul (a, b) ->
        term_syms (term_syms acc a) b
    | Term.Int _ | Term.Var _ -> acc
  in
  let atom_syms acc = function
    | Atom (a, _, b) -> term_syms (term_syms acc a) b
    | _ -> acc
  in
  Listx.dedup_ordered ~compare:Symbol.compare (fold_atoms atom_syms [] p)

(* ------------------------------------------------------------------ *)
(* Substitution                                                        *)
(* ------------------------------------------------------------------ *)

(** Values substitutable for a variable: a term (for [Int]/[Obj]-sorted
    variables) or a predicate (for [Bool]-sorted variables appearing as
    [Bvar] atoms). *)
type value = Tm of Term.t | Pr of t

type subst = value Ident.Map.t

let term_part (m : subst) : Term.t Ident.Map.t =
  Ident.Map.filter_map (fun _ -> function Tm t -> Some t | Pr _ -> None) m

let rec subst (m : subst) p =
  match p with
  | True | False -> p
  | Atom (a, r, b) ->
      let tm = term_part m in
      atom (Term.subst tm a) r (Term.subst tm b)
  | Bvar x -> (
      match Ident.Map.find_opt x m with
      | Some (Pr q) -> q
      | Some (Tm (Term.Var (y, Sort.Bool))) -> Bvar y
      | Some (Tm _) -> p (* ill-sorted substitution: ignore, keep atom *)
      | None -> p)
  | Not q -> not_ (subst m q)
  | And ps -> conj (List.map (subst m) ps)
  | Or ps -> disj (List.map (subst m) ps)
  | Imp (q, r) -> imp (subst m q) (subst m r)
  | Iff (q, r) -> iff (subst m q) (subst m r)

let subst1 x v p = subst (Ident.Map.singleton x v) p

let subst_term x t p = subst1 x (Tm t) p

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp_brel ppf r =
  Fmt.string ppf
    (match r with
    | Eq -> "="
    | Ne -> "!="
    | Lt -> "<"
    | Le -> "<="
    | Gt -> ">"
    | Ge -> ">=")

let rec pp ppf = function
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | Atom (a, r, b) -> Fmt.pf ppf "%a %a %a" Term.pp a pp_brel r Term.pp b
  | Bvar x -> Ident.pp ppf x
  | Not p -> Fmt.pf ppf "not (%a)" pp p
  | And ps -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any " && ") pp) ps
  | Or ps -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any " || ") pp) ps
  | Imp (p, q) -> Fmt.pf ppf "(%a => %a)" pp p pp q
  | Iff (p, q) -> Fmt.pf ppf "(%a <=> %a)" pp p pp q

let to_string p = Fmt.str "%a" pp p

(* ------------------------------------------------------------------ *)
(* Evaluation (used by property tests to cross-check the SMT solver)   *)
(* ------------------------------------------------------------------ *)

(** Ground evaluation of a term under an integer assignment.  [Obj]-sorted
    variables and uninterpreted applications are evaluated by hashing
    (a fixed interpretation), which is enough to refute bogus validity
    claims in randomized tests. *)
let rec eval_term (env : int Ident.Map.t) (t : Term.t) : int =
  match t with
  | Term.Int n -> n
  | Term.Var (x, _) -> (
      match Ident.Map.find_opt x env with
      | Some v -> v
      | None -> Hashtbl.hash x mod 17)
  | Term.App (f, ts) ->
      let args = List.map (eval_term env) ts in
      Hashtbl.hash (Symbol.name f, args) mod 1009
  | Term.Neg t -> -eval_term env t
  | Term.Add (a, b) -> eval_term env a + eval_term env b
  | Term.Sub (a, b) -> eval_term env a - eval_term env b
  | Term.Mul (a, b) -> eval_term env a * eval_term env b

let rec eval (ienv : int Ident.Map.t) (benv : bool Ident.Map.t) (p : t) : bool =
  match p with
  | True -> true
  | False -> false
  | Atom (a, r, b) -> (
      let x = eval_term ienv a and y = eval_term ienv b in
      match r with
      | Eq -> x = y
      | Ne -> x <> y
      | Lt -> x < y
      | Le -> x <= y
      | Gt -> x > y
      | Ge -> x >= y)
  | Bvar x -> (
      match Ident.Map.find_opt x benv with Some b -> b | None -> false)
  | Not p -> not (eval ienv benv p)
  | And ps -> List.for_all (eval ienv benv) ps
  | Or ps -> List.exists (eval ienv benv) ps
  | Imp (p, q) -> (not (eval ienv benv p)) || eval ienv benv q
  | Iff (p, q) -> eval ienv benv p = eval ienv benv q
