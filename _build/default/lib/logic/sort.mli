(** Sorts of the refinement logic.

    Three ground sorts: [Int] (mathematical integers), [Bool]
    (propositions), and [Obj] (every other program value, uninterpreted).
    Function sorts classify the fixed first-order signatures of
    uninterpreted symbols; they never sort a term. *)

type t = Int | Bool | Obj

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** First-order signature of an uninterpreted function symbol. *)
type signature = { args : t list; result : t }

val sig_pp : Format.formatter -> signature -> unit
