(* Tests for A-normalization and alpha-renaming. *)

open Liquid_lang
open Liquid_anf

let check_bool = Alcotest.(check bool)

let normalize src =
  Anf.normalize_program (Parser.program_of_string src)

let sources =
  [
    "let x = 1 + 2 * 3";
    "let f a b = a * (b + a.(0))";
    "let g x = if x + 1 < 2 then f (x * 2) else g (x - 1)";
    "let rec h n = if n < 1 then 0 else n + h (n - 1)\nlet m = h (3 + 4)";
    "let t = (1 + 2, 3 * 4, f 5)";
    "let l = [1 + 1; 2 + 2]";
    "let p = match f (1 + 2) with | (a, b) -> a + b";
    "let s = assert (1 + 1 = 2); 5";
    "let c = a.(i + 1) <- b.(j - 1) + 1";
    "let w = (fun x -> x + 1) ((fun y -> y) 2)";
  ]

(* Parsing uses free variables (f, a, b...); give them bindings so the
   sources are closed. *)
let prelude =
  "let f q = q\nlet g q = q\nlet a = Array.make 4 0\nlet b = Array.make 4 \
   0\nlet i = 1\nlet j = 1\n"

let test_is_anf () =
  List.iter
    (fun src ->
      let prog = normalize (prelude ^ src) in
      List.iter
        (fun (item : Ast.item) ->
          check_bool ("anf: " ^ src) true (Anf.is_anf item.Ast.body))
        prog)
    sources

let collect_binders prog =
  let pat_vars p = Ast.pat_vars p in
  let binders = ref [] in
  List.iter
    (fun (item : Ast.item) ->
      ignore
        (Ast.fold
           (fun () e ->
             match e.Ast.desc with
             | Ast.Let (_, x, _, _) -> binders := x :: !binders
             | Ast.Fun (x, _) -> binders := x :: !binders
             | Ast.Match (_, cases) ->
                 List.iter
                   (fun (p, _) -> binders := pat_vars p @ !binders)
                   cases
             | _ -> ())
           () item.Ast.body))
    prog;
  !binders

let test_unique_binders () =
  let src =
    prelude
    ^ "let u = let x = 1 in let x = x + 1 in (fun x -> x) x\n\
       let v = let x = 2 in match [x] with | x :: _ -> x | [] -> 0"
  in
  let prog = normalize src in
  let binders = collect_binders prog in
  let sorted = List.sort_uniq compare binders in
  check_bool "all binders distinct" true
    (List.length binders = List.length sorted)

let test_shadowing_semantics () =
  (* alpha-renaming must preserve the meaning of shadowed bindings *)
  let src = "let main = let x = 1 in let x = x + 10 in x + 100" in
  let prog = normalize src in
  let env = Liquid_eval.Eval.run_program prog in
  match Liquid_common.Ident.Map.find "main" env with
  | Liquid_eval.Eval.Vint 111 -> ()
  | v -> Alcotest.fail (Fmt.str "got %a" Liquid_eval.Eval.pp_value v)

let test_evaluation_preserved () =
  (* Normalization must not change results. *)
  let progs =
    [
      ("let main = 1 + 2 * 3 - 4", 3);
      ("let main = (if 1 < 2 then 10 else 20) + (if 2 < 1 then 1 else 2)", 12);
      ( "let rec fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)\n\
         let main = fib 10",
        55 );
      ( "let main = let a = Array.make 3 0 in a.(0) <- 5; a.(1) <- a.(0) + 1; \
         a.(0) * 10 + a.(1)",
        56 );
      ("let main = match (1 + 2, 4) with | (a, b) -> a * b", 12);
    ]
  in
  List.iter
    (fun (src, expected) ->
      let direct = Liquid_eval.Eval.run_program (Parser.program_of_string src) in
      let anfed = Liquid_eval.Eval.run_program (normalize src) in
      let get env =
        match Liquid_common.Ident.Map.find "main" env with
        | Liquid_eval.Eval.Vint n -> n
        | _ -> Alcotest.fail "non-int main"
      in
      Alcotest.(check int) ("direct " ^ src) expected (get direct);
      Alcotest.(check int) ("anf " ^ src) expected (get anfed))
    progs

let test_spines_preserved () =
  (* f a b keeps its application spine (head remains visible) *)
  let prog = normalize "let f x y = x + y\nlet main = f 1 2" in
  let item = List.find (fun (i : Ast.item) -> i.Ast.name = "main") prog in
  let rec head e =
    match e.Ast.desc with
    | Ast.App (e1, _) -> head e1
    | Ast.Var x -> Some x
    | Ast.Let (_, _, _, b) -> head b
    | _ -> None
  in
  match head item.Ast.body with
  | Some "f" -> ()
  | _ -> Alcotest.fail "spine head lost"

(* Property: normalizing randomly generated arithmetic expressions
   preserves evaluation. *)
let gen_arith_src =
  let open QCheck.Gen in
  let rec gen depth =
    if depth = 0 then map string_of_int (int_range 0 9)
    else
      frequency
        [
          (1, map string_of_int (int_range 0 9));
          ( 2,
            map2 (fun a b -> "(" ^ a ^ " + " ^ b ^ ")") (gen (depth - 1))
              (gen (depth - 1)) );
          ( 2,
            map2 (fun a b -> "(" ^ a ^ " - " ^ b ^ ")") (gen (depth - 1))
              (gen (depth - 1)) );
          ( 1,
            map2
              (fun a b -> "(if " ^ a ^ " < " ^ b ^ " then " ^ a ^ " else " ^ b ^ ")")
              (gen (depth - 1)) (gen (depth - 1)) );
          ( 1,
            map2 (fun a b -> "(let z = " ^ a ^ " in z + " ^ b ^ ")")
              (gen (depth - 1)) (gen (depth - 1)) );
        ]
  in
  gen 4

let prop_anf_preserves_eval =
  QCheck.Test.make ~count:200 ~name:"A-normalization preserves evaluation"
    (QCheck.make gen_arith_src)
    (fun src ->
      let src = "let main = " ^ src in
      let get prog =
        match
          Liquid_common.Ident.Map.find "main" (Liquid_eval.Eval.run_program prog)
        with
        | Liquid_eval.Eval.Vint n -> n
        | _ -> QCheck.Test.fail_report "non-int"
      in
      let direct = get (Parser.program_of_string src) in
      let anfed = get (normalize src) in
      direct = anfed)

let prop_anf_output_is_anf =
  QCheck.Test.make ~count:200 ~name:"normalized output satisfies is_anf"
    (QCheck.make gen_arith_src)
    (fun src ->
      let prog = normalize ("let main = " ^ src) in
      List.for_all (fun (i : Ast.item) -> Anf.is_anf i.Ast.body) prog)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_anf_preserves_eval; prop_anf_output_is_anf ]

let tests =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    tc "output is in ANF" test_is_anf;
    tc "binders globally unique" test_unique_binders;
    tc "shadowing semantics preserved" test_shadowing_semantics;
    tc "evaluation preserved" test_evaluation_preserved;
    tc "application spines preserved" test_spines_preserved;
  ]
  @ qcheck_tests
