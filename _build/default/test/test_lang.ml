(* Tests for the NanoML front end: lexer, parser, desugarings. *)

open Liquid_lang

let parse s = Parser.expr_of_string s
let parse_prog s = Parser.program_of_string s

let show e = Fmt.str "%a" Ast.pp e

let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let test_literals () =
  check_str "int" "42" (show (parse "42"));
  check_str "negative int" "(- 7)" (show (parse "-7"));
  check_str "true" "true" (show (parse "true"));
  check_str "unit" "()" (show (parse "()"))

let test_precedence () =
  check_str "mul binds tighter" "(1 + (2 * 3))" (show (parse "1 + 2 * 3"));
  check_str "left assoc sub" "((10 - 3) - 2)" (show (parse "10 - 3 - 2"));
  check_str "cmp above add" "((1 + 2) < (3 + 4))" (show (parse "1 + 2 < 3 + 4"));
  check_str "app binds tightest" "((f 1) + (g 2))" (show (parse "f 1 + g 2"));
  check_str "unary minus" "((- x) + y)" (show (parse "- x + y"));
  check_str "mod" "(a mod 2)" (show (parse "a mod 2"))

let test_boolean_desugaring () =
  (* && and || become if-expressions for path sensitivity *)
  check_str "and" "(if a then b else false)" (show (parse "a && b"));
  check_str "or" "(if a then true else b)" (show (parse "a || b"));
  check_str "or of and" "(if (if a then b else false) then true else c)"
    (show (parse "a && b || c"))

let test_array_sugar () =
  check_str "get" "(((Array.get a) i) + 1)" (show (parse "a.(i) + 1"));
  check_str "set" "(((Array.set a) i) (x + 1))" (show (parse "a.(i) <- x + 1"));
  check_str "chained get" "((Array.get ((Array.get m) i)) j)"
    (show (parse "m.(i).(j)"))

let test_sequencing () =
  match (parse "f x; g y").desc with
  | Ast.Let (Ast.Nonrec, tmp, _, _) ->
      check_bool "seq binder internal" true (Liquid_common.Ident.is_internal tmp)
  | _ -> Alcotest.fail "expected let from sequence"

let test_let_forms () =
  check_str "let in" "let x = 1 in\n(x + 1)" (show (parse "let x = 1 in x + 1"));
  (match (parse "let f a b = a + b in f").desc with
  | Ast.Let (Ast.Nonrec, "f", { desc = Ast.Fun ("a", { desc = Ast.Fun ("b", _); _ }); _ }, _)
    ->
      ()
  | _ -> Alcotest.fail "multi-parameter let sugar");
  match (parse "let (u, v) = p in u").desc with
  | Ast.Match (_, [ (Ast.Ptuple [ Ast.Pvar "u"; Ast.Pvar "v" ], _) ]) -> ()
  | _ -> Alcotest.fail "tuple-pattern let sugar"

let test_match () =
  match (parse "match l with | [] -> 0 | x :: xs -> 1").desc with
  | Ast.Match (_, [ (Ast.Pnil, _); (Ast.Pcons (Ast.Pvar "x", Ast.Pvar "xs"), _) ])
    ->
      ()
  | _ -> Alcotest.fail "match structure"

let test_list_literals () =
  check_str "list literal" "(1 :: (2 :: (3 :: [])))" (show (parse "[1; 2; 3]"));
  check_str "empty list" "[]" (show (parse "[]"))

let test_if_fun () =
  check_str "fun" "(fun x -> (x + 1))" (show (parse "fun x -> x + 1"));
  check_str "if" "(if c then 1 else 2)"
    (Fmt.str "%a" Ast.pp (parse "if c then 1 else 2"))

let test_comments_and_qualified () =
  check_str "comment skipped" "(1 + 2)" (show (parse "1 + (* nested (* ! *) *) 2"));
  match (parse "Array.length a").desc with
  | Ast.App ({ desc = Ast.Var "Array.length"; _ }, _) -> ()
  | _ -> Alcotest.fail "qualified identifier"

let test_program_items () =
  let prog = parse_prog "let a = 1\nlet rec f x = f x\nlet _ = f a" in
  check_bool "three items" true (List.length prog = 3);
  let names = List.map (fun (i : Ast.item) -> i.Ast.name) prog in
  check_bool "a named" true (List.mem "a" names);
  check_bool "f named" true (List.mem "f" names);
  check_bool "anonymous main internal" true
    (List.exists Liquid_common.Ident.is_internal names);
  match (List.nth prog 1).Ast.rec_flag with
  | Ast.Rec -> ()
  | Ast.Nonrec -> Alcotest.fail "rec flag lost"

let test_parse_errors () =
  let fails s =
    match parse_prog s with
    | exception Parser.Error _ -> true
    | exception Lexer.Error _ -> true
    | _ -> false
  in
  check_bool "unbalanced paren" true (fails "let x = (1 + 2");
  check_bool "missing body" true (fails "let x =");
  check_bool "stray token" true (fails "let x = 1 ???");
  check_bool "bad char" true (fails "let x = 1 $ 2")

let test_locations () =
  let e = parse "let x = 1 in\n  x + boom" in
  let find e =
    match e.Ast.desc with
    | Ast.Var "boom" -> Some e.Ast.loc
    | _ ->
        Ast.fold
          (fun acc e' ->
            match acc with
            | Some _ -> acc
            | None -> (
                match e'.Ast.desc with
                | Ast.Var "boom" -> Some e'.Ast.loc
                | _ -> None))
          None e
  in
  match find e with
  | Some loc ->
      check_bool "line 2" true (loc.Liquid_common.Loc.start_pos.line = 2)
  | None -> Alcotest.fail "boom not found"

(* Round-trip property: printing a parsed expression and re-parsing it
   yields the same tree (modulo ids/locations). *)
let reparse_sources =
  [
    "1 + 2 * 3";
    "if a < b then a else b";
    "let rec f x = if x < 1 then 0 else f (x - 1) in f 10";
    "fun x -> fun y -> x + y";
    "(1, 2, 3)";
    "[1; 2]";
    "match l with | [] -> 0 | x :: _ -> x";
    "a.(i) <- a.(j) + 1";
    "assert (x <= y)";
    "not (a && b) || c";
  ]

let test_reparse () =
  List.iter
    (fun src ->
      let e1 = parse src in
      let e2 = parse (show e1) in
      check_str ("round-trip " ^ src) (show e1) (show e2))
    reparse_sources

let tests =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    tc "literals" test_literals;
    tc "precedence" test_precedence;
    tc "&& / || desugar to if" test_boolean_desugaring;
    tc "array access sugar" test_array_sugar;
    tc "sequencing desugars to let" test_sequencing;
    tc "let forms" test_let_forms;
    tc "match" test_match;
    tc "list literals" test_list_literals;
    tc "if and fun" test_if_fun;
    tc "comments and qualified names" test_comments_and_qualified;
    tc "top-level items" test_program_items;
    tc "parse errors" test_parse_errors;
    tc "source locations" test_locations;
    tc "print/parse round trip" test_reparse;
  ]
