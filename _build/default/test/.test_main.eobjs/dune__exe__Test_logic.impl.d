test/test_logic.ml: Alcotest Ident Liquid_common Liquid_logic List Pred QCheck QCheck_alcotest Sort Symbol Term
