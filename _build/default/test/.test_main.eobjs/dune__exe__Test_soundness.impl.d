test/test_soundness.ml: Alcotest Liquid_driver Liquid_eval Liquid_lang Printf QCheck QCheck_alcotest
