test/test_tricky.ml: Alcotest Liquid_driver Liquid_infer
