test/test_spec.ml: Alcotest Fmt Liquid_driver Liquid_infer List Qualifier Report Rtype Spec
