test/test_driver.ml: Alcotest Fmt Liquid_driver Liquid_lang Liquid_suite List Pipeline String
