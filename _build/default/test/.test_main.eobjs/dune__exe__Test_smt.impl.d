test/test_smt.ml: Alcotest Array Cc Fm Lia Linexp Liquid_common Liquid_logic Liquid_smt List Pred QCheck QCheck_alcotest Rat Simplex Solver Sort Symbol Term
