test/test_rtype.ml: Alcotest Constr Fmt Ident Liquid_common Liquid_infer Liquid_logic Liquid_smt Liquid_typing List Loc Mltype Pred QCheck QCheck_alcotest Report Rtype Sort Term
