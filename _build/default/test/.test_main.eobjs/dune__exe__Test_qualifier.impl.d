test/test_qualifier.ml: Alcotest Ident Liquid_common Liquid_infer Liquid_logic List Pred Qualifier Sort
