test/test_eval.ml: Alcotest Eval Fmt Liquid_common Liquid_eval Liquid_lang Parser
