test/test_measures.ml: Alcotest Fmt Liquid_common Liquid_driver Liquid_infer List String
