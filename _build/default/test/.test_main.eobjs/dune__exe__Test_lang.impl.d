test/test_lang.ml: Alcotest Ast Fmt Lexer Liquid_common Liquid_lang List Parser
