test/test_liquid.ml: Alcotest Fmt Liquid_common Liquid_driver Liquid_infer List String
