test/test_suite.ml: Alcotest Fmt Liquid_common Liquid_driver Liquid_eval Liquid_infer Liquid_suite List Overview Programs Runner Str String
