test/test_anf.ml: Alcotest Anf Ast Fmt Liquid_anf Liquid_common Liquid_eval Liquid_lang List Parser QCheck QCheck_alcotest
