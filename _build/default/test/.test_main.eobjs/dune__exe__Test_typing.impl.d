test/test_typing.ml: Alcotest Ast Fmt Hashtbl Infer Liquid_anf Liquid_lang Liquid_typing List Mltype Parser
