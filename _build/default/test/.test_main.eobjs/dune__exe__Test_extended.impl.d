test/test_extended.ml: Alcotest Extended Fmt Liquid_driver Liquid_eval Liquid_lang Liquid_suite List Programs Runner Str
