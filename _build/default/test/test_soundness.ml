(* The paper's soundness theorem, as a property test.

   We generate random NanoML programs that allocate arrays and access
   them through a mix of guarded and unguarded indices, then check:

     if the verifier reports SAFE, executing the program raises neither
     Bounds_violation nor Assertion_failure.

   This exercises the full pipeline adversarially: most generated
   programs are rejected (the generator plants plenty of dubious
   accesses), and the accepted ones must really be safe.  We also track
   that the verifier is not vacuous — over the generator's distribution
   both verdicts occur. *)

let gen_program : string QCheck.Gen.t =
  let open QCheck.Gen in
  (* a random loop body accessing a.(expr) for various index expressions *)
  let* size = int_range 1 20 in
  let* style = int_range 0 5 in
  let* off = int_range 0 3 in
  let body =
    match style with
    | 0 -> "a.(i) <- i" (* safe: i < len a from the loop guard *)
    | 1 -> Printf.sprintf "a.(i + %d) <- 0" off (* safe iff off = 0 *)
    | 2 -> "if i + 1 < n then a.(i + 1) <- a.(i) else ()" (* safe *)
    | 3 -> Printf.sprintf "a.(n - %d) <- 1" off (* safe iff 0 < off <= n *)
    | 4 -> "if 0 <= i - 1 then a.(i - 1) <- 2 else ()" (* safe *)
    | _ -> "a.(2 * i) <- 3" (* unsafe for i > n/2 *)
  in
  let* bound = oneofl [ "i < n"; "i <= n"; "i < n - 1" ] in
  return
    (Printf.sprintf
       {|
let n = %d
let a = Array.make n 0
let rec loop i =
  if %s then begin
    %s;
    loop (i + 1)
  end else ()
let main = loop 0
|}
       size bound body)

let counts = ref (0, 0) (* safe, unsafe *)

let prop_safe_programs_do_not_trap =
  QCheck.Test.make ~count:150 ~name:"verified programs never trap at runtime"
    (QCheck.make gen_program)
    (fun src ->
      match Liquid_driver.Pipeline.verify_string ~name:"rand.ml" src with
      | exception Liquid_driver.Pipeline.Source_error _ ->
          QCheck.assume_fail ()
      | report ->
          let safe = report.Liquid_driver.Pipeline.safe in
          let s, u = !counts in
          counts := (if safe then (s + 1, u) else (s, u + 1));
          if not safe then true
          else begin
            (* accepted: execution must not trap *)
            let prog = Liquid_lang.Parser.program_of_string ~file:"rand.ml" src in
            match Liquid_eval.Eval.run_program ~fuel:200_000 prog with
            | _ -> true
            | exception Liquid_eval.Eval.Bounds_violation _ -> false
            | exception Liquid_eval.Eval.Assertion_failure _ -> false
            | exception Liquid_eval.Eval.Out_of_fuel -> true
          end)

(* The converse direction is not a theorem (inference is incomplete),
   but the generator's style-0/2/4 programs with bound "i < n" are
   simple enough that the system should accept them: a completeness
   smoke test that the verifier is not trivially rejecting everything. *)
let test_simple_accepted () =
  let src =
    {|
let n = 10
let a = Array.make n 0
let rec loop i =
  if i < n then begin
    a.(i) <- i;
    (if i + 1 < n then a.(i + 1) <- a.(i) else ());
    (if 0 <= i - 1 then a.(i - 1) <- 2 else ());
    loop (i + 1)
  end else ()
let main = loop 0
|}
  in
  Alcotest.(check bool)
    "simple guarded program accepted" true
    (Liquid_driver.Pipeline.verify_string src).Liquid_driver.Pipeline.safe

(* And rejected programs must really be flagged for a reason: spot-check
   that an unguarded doubled index is refused. *)
let test_unsafe_rejected () =
  let src =
    {|
let n = 10
let a = Array.make n 0
let rec loop i =
  if i < n then begin
    a.(2 * i) <- 3;
    loop (i + 1)
  end else ()
let main = loop 0
|}
  in
  Alcotest.(check bool)
    "doubled index rejected" false
    (Liquid_driver.Pipeline.verify_string src).Liquid_driver.Pipeline.safe

let test_both_verdicts_occur () =
  let s, u = !counts in
  Alcotest.(check bool)
    (Printf.sprintf "generator hit both verdicts (safe=%d unsafe=%d)" s u)
    true
    (s > 0 && u > 0)

let tests =
  [
    QCheck_alcotest.to_alcotest prop_safe_programs_do_not_trap;
    Alcotest.test_case "generator produced both verdicts" `Quick
      test_both_verdicts_occur;
    Alcotest.test_case "simple guarded program accepted" `Quick
      test_simple_accepted;
    Alcotest.test_case "unguarded doubled index rejected" `Quick
      test_unsafe_rejected;
  ]
