(* Integration tests for the extended benchmark suite (beyond the paper's
   table): verification with constant mining, execution under the
   reference interpreter, and mutation rejection. *)

open Liquid_suite

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let verify_ext b = Runner.verify ~mine:true b

let test_all_verify () =
  List.iter
    (fun (b : Programs.benchmark) ->
      let row = verify_ext b in
      check_bool (b.Programs.name ^ " verifies")
        true row.Runner.report.Liquid_driver.Pipeline.safe)
    Extended.all

let exec_int name =
  match Runner.execute (Extended.find name) with
  | Liquid_eval.Eval.Vint n -> n
  | v ->
      Alcotest.fail
        (Fmt.str "%s: non-int main %a" name Liquid_eval.Eval.pp_value v)

let test_execution () =
  check_int "queue round-trips the first element" 42 (exec_int "queue");
  check_int "pascal C(6,3)" 20 (exec_int "pascal");
  check_int "sieve pi(30)" 10 (exec_int "sieve");
  check_int "selsort minimum first" 1 (exec_int "selsort");
  check_int "strmatch finds at 0" 0 (exec_int "strmatch");
  check_int "transpose moves (0,4) to (4,0)" 9 (exec_int "transpose");
  check_int "fib 15" 610 (exec_int "fibmemo")

let mutants =
  [
    ("queue", "wrong modulus", ("(head + count) mod cap", "(head + count) mod (cap + 1)"));
    ("pascal", "seed written past the row", ("row.(0) <- 1;", "row.(n + 1) <- 1;"));
    ("sieve", "marks one stride ahead", ("flags.(p) <- false;\n      mark (p + step) step", "flags.(p + step) <- false;\n      mark (p + step) step"));
    ("strmatch", "missing window guard", ("if i + j < n then begin", "if i < n then begin"));
    ("transpose", "swapped dimensions", ("let t = make_matrix cols rows in", "let t = make_matrix rows cols in"));
    ("fibmemo", "table one too small", ("Array.make (n + 1)", "Array.make n"));
  ]

let test_mutants () =
  List.iter
    (fun (name, desc, (what, with_)) ->
      let b = Extended.find name in
      let src = Str.global_replace (Str.regexp_string what) with_ b.Programs.source in
      check_bool (name ^ ": mutation applied") true (src <> b.Programs.source);
      let row = verify_ext { b with Programs.source = src } in
      check_bool
        (Fmt.str "%s mutant rejected (%s)" name desc)
        false row.Runner.report.Liquid_driver.Pipeline.safe)
    mutants

(* sieve's stride-0 mutant diverges dynamically; check the verifier
   catches what the interpreter (with fuel) also objects to. *)
let test_mutant_agrees_with_runtime () =
  let b = Extended.find "queue" in
  let src =
    Str.global_replace
      (Str.regexp_string "(head + count) mod cap")
      "(head + count) mod (cap + 1)" b.Programs.source
  in
  (* statically rejected; dynamically fine on this particular input --
     static analysis is conservative, never the other way around *)
  let row = verify_ext { b with Programs.source = src } in
  check_bool "static: rejected" false
    row.Runner.report.Liquid_driver.Pipeline.safe;
  let prog = Liquid_lang.Parser.program_of_string ~file:"q" src in
  match Liquid_eval.Eval.run_program prog with
  | _ -> ()
  | exception Liquid_eval.Eval.Bounds_violation _ ->
      Alcotest.fail "unexpected dynamic violation"

let tests =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    tc "all extended benchmarks verify" test_all_verify;
    tc "extended benchmarks execute correctly" test_execution;
    tc "extended mutants rejected" test_mutants;
    tc "conservatism vs runtime" test_mutant_agrees_with_runtime;
  ]
