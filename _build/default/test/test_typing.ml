(* Tests for Hindley–Milner inference (Algorithm W with levels). *)

open Liquid_lang
open Liquid_typing

let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let infer_item_type src name =
  let prog = Parser.program_of_string src in
  let r = Infer.infer_program prog in
  let _, sch = List.find (fun (x, _) -> x = name) r.Infer.item_schemes in
  Fmt.str "%a" Mltype.pp_scheme sch

let test_basics () =
  check_str "int" "int" (infer_item_type "let x = 1 + 2" "x");
  check_str "bool" "bool" (infer_item_type "let b = 1 < 2" "b");
  check_str "unit" "unit" (infer_item_type "let u = ()" "u");
  check_str "tuple" "int * bool" (infer_item_type "let p = (1, true)" "p");
  check_str "list" "int list" (infer_item_type "let l = [1; 2]" "l");
  check_str "fun" "int -> int" (infer_item_type "let f x = x + 1" "f")

let test_polymorphism () =
  check_str "identity" "forall 'a. 'a -> 'a" (infer_item_type "let id x = x" "id");
  check_str "const" "forall 'a 'b. 'a -> 'b -> 'a"
    (infer_item_type "let k x y = x" "k");
  check_str "compose" "forall 'a 'b 'c. ('a -> 'b) -> ('c -> 'a) -> 'c -> 'b"
    (infer_item_type "let compose f g x = f (g x)" "compose");
  (* instantiation at two different types *)
  check_str "poly use" "int * bool"
    (infer_item_type "let id x = x\nlet p = (id 1, id true)" "p")

let test_value_restriction () =
  (* [Array.make 1 []] must not generalize: its element type is fixed by
     later use.  Non-value bindings get monomorphic types. *)
  let src = "let a = Array.make 1 1" in
  check_str "array binding monomorphic" "int array" (infer_item_type src "a");
  (* syntactic values do generalize *)
  check_str "nil generalizes" "forall 'a. 'a list"
    (infer_item_type "let n = []" "n")

let test_recursion () =
  check_str "fact" "int -> int"
    (infer_item_type "let rec fact n = if n < 1 then 1 else n * fact (n - 1)"
       "fact");
  check_str "poly rec map" "forall 'a 'b. ('a -> 'b) -> 'a list -> 'b list"
    (infer_item_type
       "let rec map f l = match l with | [] -> [] | x :: xs -> f x :: map f xs"
       "map")

let test_arrays () =
  check_str "array get" "int"
    (infer_item_type "let x = (Array.make 3 7).(0)" "x");
  check_str "length" "int"
    (infer_item_type "let n = Array.length (Array.make 3 true)" "n")

let test_match_typing () =
  check_str "list sum" "int list -> int"
    (infer_item_type
       "let rec sum l = match l with | [] -> 0 | x :: xs -> x + sum xs" "sum");
  check_str "tuple pattern" "forall 'a 'b. ('a * 'b) -> 'a"
    (infer_item_type "let fst p = match p with | (a, b) -> a" "fst")

let type_errors =
  [
    ("add bool", "let x = 1 + true");
    ("if branches", "let x = if true then 1 else false");
    ("apply non-function", "let x = 1 2");
    ("unbound", "let x = nope + 1");
    ("occurs check", "let rec f x = f");
    ("assert int", "let x = assert 1");
    ("cons mismatch", "let l = 1 :: [true]");
    ("array elem mismatch", "let _ = Array.set (Array.make 1 1) 0 true");
  ]

let test_type_errors () =
  List.iter
    (fun (name, src) ->
      let prog = Parser.program_of_string src in
      check_bool name true
        (match Infer.infer_program prog with
        | exception Infer.Type_error _ -> true
        | exception Mltype.Occurs_check _ -> true
        | _ -> false))
    type_errors

let test_every_node_typed () =
  let src =
    "let rec f l = match l with | [] -> 0 | x :: xs -> if x > 0 then 1 + f \
     xs else f xs\nlet main = f [1; 2; 3]"
  in
  let prog = Parser.program_of_string src in
  let prog = Liquid_anf.Anf.normalize_program prog in
  let r = Infer.infer_program prog in
  List.iter
    (fun (item : Ast.item) ->
      ignore
        (Ast.fold
           (fun () e ->
             check_bool "node typed" true
               (Hashtbl.mem r.Infer.types e.Ast.id))
           () item.Ast.body))
    prog

let tests =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    tc "base types" test_basics;
    tc "let polymorphism" test_polymorphism;
    tc "value restriction" test_value_restriction;
    tc "recursion" test_recursion;
    tc "array primitives" test_arrays;
    tc "match typing" test_match_typing;
    tc "type errors rejected" test_type_errors;
    tc "every ANF node is typed" test_every_node_typed;
  ]
