(* Tests for qualifier parsing and Q* instantiation. *)

open Liquid_infer
open Liquid_logic
open Liquid_common

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let int_scope names = List.map (fun n -> (Ident.of_string n, Sort.Int)) names

let instance_strings quals ~vv_sort ~scope =
  List.map Pred.to_string (Qualifier.instances quals ~vv_sort ~scope)

let test_parse_basic () =
  let qs = Qualifier.parse_string "qualif Pos(v) : 0 <= v" in
  check_int "one qualifier" 1 (List.length qs);
  check_bool "name kept" true ((List.hd qs).Qualifier.name = "Pos")

let test_parse_multiple () =
  let qs =
    Qualifier.parse_string
      "qualif A(v) : v < _\nqualif B(v) : v <= len _\nqualif C(v) : v = _A + _B"
  in
  check_int "three" 3 (List.length qs);
  let c = List.nth qs 2 in
  check_int "two named placeholders" 2 (List.length c.Qualifier.placeholders)

let test_parse_connectives () =
  let qs =
    Qualifier.parse_string
      "qualif D(v) : 0 <= v && v < len _ || v = 0\nqualif E(v) : v < 0 -> v \
       = 0 - 1"
  in
  check_int "parsed" 2 (List.length qs)

let test_parse_errors () =
  check_bool "garbage rejected" true
    (match Qualifier.parse_string "qualif X(v) : <= 3" with
    | exception Qualifier.Parse_error _ -> true
    | _ -> false);
  check_bool "missing colon" true
    (match Qualifier.parse_string "qualif X(v) 0 <= v" with
    | exception Qualifier.Parse_error _ -> true
    | _ -> false)

let test_instantiation_simple () =
  let qs = Qualifier.parse_string "qualif Lt(v) : v < _" in
  let insts = instance_strings qs ~vv_sort:Sort.Int ~scope:(int_scope [ "x"; "y" ]) in
  check_bool "v < x" true (List.mem "v < x" insts);
  check_bool "v < y" true (List.mem "v < y" insts);
  check_int "exactly two" 2 (List.length insts)

let test_instantiation_sort_filtering () =
  let qs = Qualifier.parse_string "qualif UB(v) : v < len _" in
  let scope = [ (Ident.of_string "x", Sort.Int); (Ident.of_string "a", Sort.Obj) ] in
  let insts = instance_strings qs ~vv_sort:Sort.Int ~scope in
  (* len applies only to Obj-sorted candidates *)
  check_int "one instance" 1 (List.length insts);
  check_bool "over the array" true (List.mem "v < len(a)" insts);
  (* an Obj-sorted value variable cannot satisfy v < ... *)
  let insts_obj = Qualifier.instances qs ~vv_sort:Sort.Obj ~scope in
  check_int "ill-sorted vv filtered" 0 (List.length insts_obj)

let test_instantiation_named_placeholders () =
  (* _A appearing twice must be instantiated consistently *)
  let qs = Qualifier.parse_string "qualif Q(v) : _A <= v && v <= _A" in
  let insts = instance_strings qs ~vv_sort:Sort.Int ~scope:(int_scope [ "x"; "y" ]) in
  check_int "two instances (x and y), not four" 2 (List.length insts)

let test_instantiation_anonymous_independent () =
  (* each _ instantiates independently *)
  let qs = Qualifier.parse_string "qualif Q(v) : _ <= v && v <= _" in
  let insts = instance_strings qs ~vv_sort:Sort.Int ~scope:(int_scope [ "x"; "y" ]) in
  check_int "four instances" 4 (List.length insts)

let test_instantiation_excludes_temporaries () =
  let qs = Qualifier.parse_string "qualif Lt(v) : v < _" in
  let scope =
    [ (Ident.of_string "%tmp.1", Sort.Int); (Ident.of_string "x", Sort.Int) ]
  in
  let insts = instance_strings qs ~vv_sort:Sort.Int ~scope in
  check_int "temporary excluded" 1 (List.length insts)

let test_bool_qualifier () =
  let qs = Qualifier.parse_string "qualif T(v) : v" in
  check_int "bool vv" 1
    (List.length (Qualifier.instances qs ~vv_sort:Sort.Bool ~scope:[]));
  check_int "int vv filtered" 0
    (List.length (Qualifier.instances qs ~vv_sort:Sort.Int ~scope:[]))

let test_defaults_parse () =
  check_bool "default set nonempty" true (List.length Qualifier.defaults >= 10)

let test_len_of_vv () =
  (* qualifiers over array-valued value variables: len v = x *)
  let qs = Qualifier.parse_string "qualif EqLen(v) : len v = _" in
  let insts =
    instance_strings qs ~vv_sort:Sort.Obj ~scope:(int_scope [ "n" ])
  in
  check_bool "len v = n" true (List.mem "len(v) = n" insts)

let tests =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    tc "parse: basic" test_parse_basic;
    tc "parse: multiple declarations" test_parse_multiple;
    tc "parse: connectives" test_parse_connectives;
    tc "parse: errors" test_parse_errors;
    tc "instantiate: simple" test_instantiation_simple;
    tc "instantiate: sort filtering" test_instantiation_sort_filtering;
    tc "instantiate: named placeholders" test_instantiation_named_placeholders;
    tc "instantiate: anonymous placeholders" test_instantiation_anonymous_independent;
    tc "instantiate: temporaries excluded" test_instantiation_excludes_temporaries;
    tc "instantiate: boolean qualifiers" test_bool_qualifier;
    tc "defaults parse" test_defaults_parse;
    tc "instantiate: len of value variable" test_len_of_vv;
  ]
