(* Tests for the reference interpreter: the runtime semantics the type
   system is proved sound against. *)

open Liquid_lang
open Liquid_eval

let run src = Eval.run_program (Parser.program_of_string src)

let main_int src =
  match Liquid_common.Ident.Map.find "main" (run src) with
  | Eval.Vint n -> n
  | v -> Alcotest.fail (Fmt.str "expected int, got %a" Eval.pp_value v)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_arith () =
  check_int "precedence" 7 (main_int "let main = 1 + 2 * 3");
  check_int "division truncates" 2 (main_int "let main = 7 / 3");
  check_int "negative division" (-2) (main_int "let main = (0 - 7) / 3");
  check_int "mod" 1 (main_int "let main = 7 mod 3");
  check_int "neg mod" (-1) (main_int "let main = (0 - 7) mod 3")

let test_shortcut_semantics () =
  (* && / || desugaring must preserve shortcut behaviour: the rhs of &&
     must not be evaluated (here it would hit a bounds error). *)
  check_int "and shortcuts" 0
    (main_int
       "let a = Array.make 1 0\n\
        let main = if false && a.(5) = 0 then 1 else 0");
  check_int "or shortcuts" 1
    (main_int
       "let a = Array.make 1 0\nlet main = if true || a.(5) = 0 then 1 else 0")

let test_closures () =
  check_int "higher order" 11
    (main_int "let apply f x = f x\nlet main = apply (fun y -> y + 1) 10");
  check_int "capture" 30
    (main_int "let add x = fun y -> x + y\nlet add10 = add 10\nlet main = add10 20");
  check_int "recursion through closure" 120
    (main_int
       "let rec fact n = if n < 1 then 1 else n * fact (n - 1)\n\
        let main = fact 5")

let test_lists_and_match () =
  check_int "list sum" 6
    (main_int
       "let rec sum l = match l with | [] -> 0 | x :: xs -> x + sum xs\n\
        let main = sum [1; 2; 3]");
  check_int "tuple match" 5
    (main_int "let main = match (2, 3) with | (a, b) -> a + b");
  check_int "nested patterns" 1
    (main_int
       "let main = match [(1, true)] with | (a, true) :: _ -> a | _ -> 0")

let test_arrays () =
  check_int "make/set/get" 42
    (main_int
       "let main = let a = Array.make 2 0 in a.(1) <- 42; a.(1)");
  check_int "aliasing" 7
    (main_int
       "let a = Array.make 1 0\nlet b = a\nlet main = b.(0) <- 7; a.(0)")

let test_bounds_violations () =
  let raises src =
    match run src with
    | exception Eval.Bounds_violation _ -> true
    | _ -> false
  in
  check_bool "get above" true (raises "let a = Array.make 2 0\nlet x = a.(2)");
  check_bool "get below" true (raises "let a = Array.make 2 0\nlet x = a.(0-1)");
  check_bool "set above" true (raises "let a = Array.make 2 0\nlet _ = a.(5) <- 1");
  check_bool "negative make" true (raises "let a = Array.make (0-1) 0")

let test_assertions () =
  check_bool "assert failure" true
    (match run "let _ = assert (1 = 2)" with
    | exception Eval.Assertion_failure _ -> true
    | _ -> false);
  check_int "assert success" 1 (main_int "let main = assert (1 = 1); 1")

let test_fuel () =
  check_bool "divergence cut off" true
    (match
       Eval.run_program ~fuel:1000
         (Parser.program_of_string "let rec loop x = loop x\nlet _ = loop 0")
     with
    | exception Eval.Out_of_fuel -> true
    | _ -> false)

let test_runtime_errors () =
  let raises src =
    match run src with exception Eval.Runtime_error _ -> true | _ -> false
  in
  check_bool "div by zero" true (raises "let main = 1 / 0");
  check_bool "equality on closures" true
    (raises "let main = (fun x -> x) = (fun y -> y)")

let test_builtins () =
  check_int "min" 2 (main_int "let main = min 5 2");
  check_int "max" 5 (main_int "let main = max 5 2");
  check_int "abs" 5 (main_int "let main = abs (0 - 5)");
  check_int "List.length" 3 (main_int "let main = List.length [1;2;3]")

let tests =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    tc "arithmetic" test_arith;
    tc "&&/|| shortcut semantics" test_shortcut_semantics;
    tc "closures" test_closures;
    tc "lists and match" test_lists_and_match;
    tc "arrays" test_arrays;
    tc "bounds violations detected" test_bounds_violations;
    tc "assertions" test_assertions;
    tc "fuel bound" test_fuel;
    tc "runtime errors" test_runtime_errors;
    tc "builtins" test_builtins;
  ]
