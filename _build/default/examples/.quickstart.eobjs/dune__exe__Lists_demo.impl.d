examples/lists_demo.ml: Fmt Liquid_common Liquid_driver Liquid_eval Liquid_infer Liquid_lang
