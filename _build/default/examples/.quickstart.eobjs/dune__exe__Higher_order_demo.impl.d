examples/higher_order_demo.ml: Fmt Liquid_common Liquid_driver Liquid_eval Liquid_lang
