examples/smt_demo.mli:
