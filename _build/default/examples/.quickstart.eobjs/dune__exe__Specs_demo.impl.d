examples/specs_demo.ml: Fmt Liquid_driver Liquid_infer
