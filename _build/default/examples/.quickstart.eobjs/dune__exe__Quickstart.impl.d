examples/quickstart.ml: Fmt Liquid_common Liquid_driver Liquid_eval Liquid_lang
