examples/higher_order_demo.mli:
