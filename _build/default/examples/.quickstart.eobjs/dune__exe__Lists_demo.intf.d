examples/lists_demo.mli:
