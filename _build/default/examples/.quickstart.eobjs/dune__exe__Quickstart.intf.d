examples/quickstart.mli:
