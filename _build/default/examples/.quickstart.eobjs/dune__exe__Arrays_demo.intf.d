examples/arrays_demo.mli:
