examples/specs_demo.mli:
