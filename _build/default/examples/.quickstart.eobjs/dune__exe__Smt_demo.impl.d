examples/smt_demo.ml: Fmt Liquid_logic Liquid_smt Pred Solver Sort Term
