(** Higher-order and polymorphic invariants — the paper's distinctive
    capability: refinements flow through function arguments and through
    polymorphic instantiation without any annotations.

    Run with: [dune exec examples/higher_order_demo.exe] *)

let source = {|
(* bounded iteration: foldn calls f only with indices in [0, n) *)
let foldn n b f =
  let rec loop i c =
    if i < n then loop (i + 1) (f i c) else c
  in
  loop 0 b

(* the element invariant of an array flows through polymorphic
   instantiation of the Array primitives *)
let build_table size =
  let t = Array.make size 0 in
  let set_square i _ =
    t.(i) <- i * i;
    0
  in
  foldn size 0 set_square;
  t

(* polymorphic identity preserves the refinement of its argument *)
let id x = x

let main =
  let t = build_table 10 in
  let three = id 3 in
  assert (three = 3);
  assert (Array.length t = 10);
  t.(three)
|}

let () =
  Fmt.pr "=== higher-order demo: verification ===@.";
  let report = Liquid_driver.Pipeline.verify_string ~name:"hof.ml" source in
  Fmt.pr "%a@." Liquid_driver.Pipeline.pp_report report;
  Fmt.pr
    "@.Note the type of foldn: the index parameter of f is refined with@.\
     0 <= v && v < n — inferred, not annotated — which is what makes the@.\
     unannotated t.(i) write inside set_square verifiable.@.";

  Fmt.pr "@.=== higher-order demo: execution ===@.";
  let prog = Liquid_lang.Parser.program_of_string ~file:"hof.ml" source in
  let env = Liquid_eval.Eval.run_program prog in
  match Liquid_common.Ident.Map.find_opt "main" env with
  | Some (Liquid_eval.Eval.Vint n) -> Fmt.pr "t.(3) = %d@." n
  | _ -> Fmt.pr "unexpected result@."
