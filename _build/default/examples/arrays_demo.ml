(** Array-safety demo: a realistic workload — a histogram builder whose
    bucket indices come from data, guarded by a range check — verified
    end-to-end and then executed.

    Run with: [dune exec examples/arrays_demo.exe]

    This is the scenario the paper's introduction motivates: the bucket
    index is a {e data value}, not a loop counter, and safety depends on
    the flow-sensitive fact that it was range-checked before use.  The
    verifier proves all accesses in-bounds; the interpreter then runs the
    workload (its checked semantics would raise on any violation, so
    execution doubles as a soundness witness). *)

let histogram = {|
let histogram nbuckets data =
  let buckets = Array.make nbuckets 0 in
  let n = Array.length data in
  let rec tally i =
    if i < n then begin
      let b = data.(i) in
      (* data values are untrusted: range-check before indexing *)
      (if 0 <= b then begin
         if b < nbuckets then
           buckets.(b) <- buckets.(b) + 1
         else ()
       end else ());
      tally (i + 1)
    end else ()
  in
  tally 0;
  buckets

let total counts =
  let rec go i acc =
    if i < Array.length counts then go (i + 1) (acc + counts.(i))
    else acc
  in
  go 0 0

let main =
  let data = Array.make 100 0 in
  let rec seed i =
    if i < 100 then begin
      data.(i) <- (i * 37 + 11) mod 16;
      seed (i + 1)
    end else ()
  in
  seed 0;
  let counts = histogram 8 data in
  total counts
|}

let () =
  Fmt.pr "=== histogram: verification ===@.";
  let report =
    Liquid_driver.Pipeline.verify_string ~name:"histogram.ml" histogram
  in
  Fmt.pr "%a@." Liquid_driver.Pipeline.pp_report report;

  Fmt.pr "@.=== histogram: execution ===@.";
  let prog = Liquid_lang.Parser.program_of_string ~file:"histogram.ml" histogram in
  let env = Liquid_eval.Eval.run_program prog in
  (match Liquid_common.Ident.Map.find_opt "main" env with
  | Some (Liquid_eval.Eval.Vint n) ->
      Fmt.pr "values tallied into buckets [0,8): %d of 100@." n
  | _ -> Fmt.pr "unexpected result@.");

  (* Drop the range check and watch both the verifier and the runtime
     object. *)
  Fmt.pr "@.=== histogram without the range check ===@.";
  let unchecked =
    Str.global_replace
      (Str.regexp_string "if b < nbuckets then\n           buckets.(b) <- buckets.(b) + 1\n         else ()")
      "buckets.(b) <- buckets.(b) + 1" histogram
  in
  let report =
    Liquid_driver.Pipeline.verify_string ~name:"histogram-unchecked.ml"
      unchecked
  in
  Fmt.pr "verifier says: %s@."
    (if report.Liquid_driver.Pipeline.safe then "SAFE (?!)" else "UNSAFE — bug caught statically");
  let prog =
    Liquid_lang.Parser.program_of_string ~file:"histogram-unchecked.ml" unchecked
  in
  (match Liquid_eval.Eval.run_program prog with
  | _ -> Fmt.pr "runtime: no violation on this particular input@."
  | exception Liquid_eval.Eval.Bounds_violation msg ->
      Fmt.pr "runtime agrees: %s@." msg)
