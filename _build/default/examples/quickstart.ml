(** Quickstart: verify a NanoML program with the library API.

    Run with: [dune exec examples/quickstart.exe]

    The program below is the paper's opening example: a recursive [sum]
    whose result the system proves non-negative (and at least [k]),
    automatically, from the default qualifier set.  We then show the
    verifier catching a genuine bug in a second program. *)

let good = {|
let rec sum k =
  if k < 0 then 0
  else begin
    let s = sum (k - 1) in
    s + k
  end

let main =
  let n = sum 12 in
  assert (0 <= n);
  n
|}

let bad = {|
let a = Array.make 10 0

let rec fill i =
  if i <= Array.length a then begin
    a.(i) <- i * i;        (* off-by-one: i = 10 is out of bounds *)
    fill (i + 1)
  end else ()

let main = fill 0
|}

let () =
  Fmt.pr "=== verifying a correct program ===@.";
  let report = Liquid_driver.Pipeline.verify_string ~name:"sum.ml" good in
  Fmt.pr "%a@." Liquid_driver.Pipeline.pp_report report;

  Fmt.pr "@.=== verifying a buggy program ===@.";
  let report = Liquid_driver.Pipeline.verify_string ~name:"fill.ml" bad in
  Fmt.pr "%a@." Liquid_driver.Pipeline.pp_report report;

  (* The library also interprets NanoML directly: run the good program and
     inspect its result. *)
  Fmt.pr "@.=== running the correct program ===@.";
  let prog = Liquid_lang.Parser.program_of_string ~file:"sum.ml" good in
  let env = Liquid_eval.Eval.run_program prog in
  (match Liquid_common.Ident.Map.find_opt "main" env with
  | Some v -> Fmt.pr "main evaluates to %a@." Liquid_eval.Eval.pp_value v
  | None -> Fmt.pr "no main@.")
