(** Content-addressed, on-disk persistent store.  See the interface for
    the contract; the layout of an entry file is:

    {v
      DSOLVE-CACHE/1\n
      <stamp>\n
      <md5 hex of the fingerprint>\n
      <md5 hex of the payload>\n
      <payload length, decimal>\n
      <payload bytes>
    v}

    where the payload is [Marshal.to_string value].  The payload is
    unmarshalled only after its digest verifies, so no corruption of the
    file can crash the reader — Marshal on arbitrary bytes is unsafe,
    Marshal on bytes we wrote is not. *)

let magic = "DSOLVE-CACHE/1"

type stats = {
  mutable lookups : int;
  mutable hits : int;
  mutable misses : int;
  mutable rejected : int;
  mutable writes : int;
  mutable write_errors : int;
  mutable swept : int;
}

type t = { dir : string; stamp : string; stats : stats }

let fresh_stats () =
  {
    lookups = 0;
    hits = 0;
    misses = 0;
    rejected = 0;
    writes = 0;
    write_errors = 0;
    swept = 0;
  }

(* The executable's own MD5: entries written by one build are invisible
   to every other build, so a layout change in a marshalled type can
   never be mis-read.  Computed once, at module initialisation. *)
let default_stamp =
  match Digest.to_hex (Digest.file Sys.executable_name) with
  | d -> "exe-" ^ d
  | exception _ -> "ocaml-" ^ Sys.ocaml_version

let mkdir_p path =
  let rec go p =
    if p <> "" && p <> "/" && p <> "." && not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go path

(* Temp-file name written by [store]: "<base>.bin.tmp.<pid>.<n>".
   Returns the embedded pid when [name] matches. *)
let tmp_pid (name : string) : int option =
  match String.rindex_opt name '.' with
  | None -> None
  | Some j -> (
      match String.rindex_from_opt name (j - 1) '.' with
      | exception Invalid_argument _ -> None
      | None -> None
      | Some i when i >= 4 && String.sub name (i - 4) 4 = ".tmp" -> (
          match
            ( int_of_string_opt (String.sub name (i + 1) (j - i - 1)),
              int_of_string_opt
                (String.sub name (j + 1) (String.length name - j - 1)) )
          with
          | Some pid, Some _ when pid > 0 -> Some pid
          | _ -> None)
      | Some _ -> None)

(* A writer that died between [open_out_bin] and [Sys.rename] leaves its
   temp file behind forever (the name embeds a pid and a counter, so no
   later writer ever reuses it).  A temp file is stale exactly when its
   writer is gone: probe with signal 0.  EPERM means the pid is alive but
   owned by someone else — leave it. *)
let pid_gone pid =
  match Unix.kill pid 0 with
  | () -> false
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> true
  | exception Unix.Unix_error _ -> false

let sweep_tmp (t : t) =
  let rec walk d depth =
    match Sys.readdir d with
    | exception Sys_error _ -> ()
    | entries ->
        Array.iter
          (fun e ->
            let p = Filename.concat d e in
            match Sys.is_directory p with
            | true -> if depth < 3 then walk p (depth + 1)
            | false -> (
                match tmp_pid e with
                | Some pid when pid_gone pid -> (
                    try
                      Sys.remove p;
                      t.stats.swept <- t.stats.swept + 1
                    with Sys_error _ -> ())
                | _ -> ())
            | exception Sys_error _ -> ())
          entries
  in
  walk t.dir 1

(* One handle (hence one stats record) per (dir, stamp) in a process, so
   a resident daemon reports cumulative cache traffic. *)
let registry : (string * string, t) Hashtbl.t = Hashtbl.create 4

let open_store ?(stamp = default_stamp) ~dir () =
  match Hashtbl.find_opt registry (dir, stamp) with
  | Some t -> t
  | None ->
      (try mkdir_p dir with _ -> ());
      let t = { dir; stamp; stats = fresh_stats () } in
      sweep_tmp t;
      Hashtbl.replace registry (dir, stamp) t;
      t

let dir t = t.dir
let stamp t = t.stamp

let key t parts =
  Digest.to_hex (Digest.string (String.concat "\x00" (t.stamp :: parts)))

(* Two-level fanout, as git does, to keep directories small.  A
   namespace adds one directory level, so differently-typed payloads
   (whole-run reports, per-partition partials) never share a file even
   if their keys collide. *)
let path_of ?ns t k =
  let sub = if String.length k >= 2 then String.sub k 0 2 else "xx" in
  let root =
    match ns with None -> t.dir | Some ns -> Filename.concat t.dir ns
  in
  Filename.concat (Filename.concat root sub) (k ^ ".bin")

let input_line_opt ic = try Some (input_line ic) with End_of_file -> None
let hex_digest s = Digest.to_hex (Digest.string s)

(* Read and validate an entry's payload; any deviation yields [None]. *)
let read_payload (t : t) ~fingerprint (path : string) : string option =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      match
        ( input_line_opt ic,
          input_line_opt ic,
          input_line_opt ic,
          input_line_opt ic,
          input_line_opt ic )
      with
      | Some m, Some s, Some fp_digest, Some digest, Some len_line
        when m = magic && s = t.stamp && fp_digest = hex_digest fingerprint
        -> (
          match int_of_string_opt len_line with
          | Some len when len >= 0 && len <= 1 lsl 30 -> (
              match really_input_string ic len with
              | payload when hex_digest payload = digest -> Some payload
              | _ -> None
              | exception End_of_file -> None)
          | _ -> None)
      | _ -> None)

let find (type a) ?ns t ~key ~fingerprint : a option =
  t.stats.lookups <- t.stats.lookups + 1;
  let path = path_of ?ns t key in
  if not (Sys.file_exists path) then begin
    t.stats.misses <- t.stats.misses + 1;
    None
  end
  else
    match (try read_payload t ~fingerprint path with _ -> None) with
    | Some payload ->
        (* Digest verified: these are bytes a same-build process
           marshalled, so unmarshalling is safe. *)
        t.stats.hits <- t.stats.hits + 1;
        Some (Marshal.from_string payload 0 : a)
    | None ->
        (* Stale or corrupt: drop it so the rewrite is clean. *)
        t.stats.rejected <- t.stats.rejected + 1;
        (try Sys.remove path with _ -> ());
        None

let tmp_counter = ref 0

let store ?ns t ~key ~fingerprint v =
  try
    let path = path_of ?ns t key in
    mkdir_p (Filename.dirname path);
    let payload = Marshal.to_string v [] in
    incr tmp_counter;
    let tmp =
      Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ()) !tmp_counter
    in
    let oc = open_out_bin tmp in
    (try
       Printf.fprintf oc "%s\n%s\n%s\n%s\n%d\n" magic t.stamp
         (hex_digest fingerprint) (hex_digest payload) (String.length payload);
       output_string oc payload;
       close_out oc
     with e ->
       close_out_noerr oc;
       (try Sys.remove tmp with _ -> ());
       raise e);
    Sys.rename tmp path;
    t.stats.writes <- t.stats.writes + 1
  with _ -> t.stats.write_errors <- t.stats.write_errors + 1

let stats t = t.stats

let stats_snapshot t =
  {
    lookups = t.stats.lookups;
    hits = t.stats.hits;
    misses = t.stats.misses;
    rejected = t.stats.rejected;
    writes = t.stats.writes;
    write_errors = t.stats.write_errors;
    swept = t.stats.swept;
  }

let reset_stats t =
  let s = t.stats in
  s.lookups <- 0;
  s.hits <- 0;
  s.misses <- 0;
  s.rejected <- 0;
  s.writes <- 0;
  s.write_errors <- 0;
  s.swept <- 0

let pp_stats ppf s =
  Fmt.pf ppf
    "lookups=%d hits=%d misses=%d rejected=%d writes=%d write-errors=%d \
     swept=%d"
    s.lookups s.hits s.misses s.rejected s.writes s.write_errors s.swept
