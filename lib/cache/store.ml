(** Content-addressed, on-disk persistent store.  See the interface for
    the contract; the layout of an entry file is:

    {v
      DSOLVE-CACHE/1\n
      <stamp>\n
      <md5 hex of the fingerprint>\n
      <md5 hex of the payload>\n
      <payload length, decimal>\n
      <payload bytes>
    v}

    where the payload is [Marshal.to_string value].  The payload is
    unmarshalled only after its digest verifies, so no corruption of the
    file can crash the reader — Marshal on arbitrary bytes is unsafe,
    Marshal on bytes we wrote is not. *)

let magic = "DSOLVE-CACHE/1"

type stats = {
  mutable lookups : int;
  mutable hits : int;
  mutable misses : int;
  mutable rejected : int;
  mutable writes : int;
  mutable write_errors : int;
}

type t = { dir : string; stamp : string; stats : stats }

let fresh_stats () =
  {
    lookups = 0;
    hits = 0;
    misses = 0;
    rejected = 0;
    writes = 0;
    write_errors = 0;
  }

(* The executable's own MD5: entries written by one build are invisible
   to every other build, so a layout change in a marshalled type can
   never be mis-read.  Computed once, at module initialisation. *)
let default_stamp =
  match Digest.to_hex (Digest.file Sys.executable_name) with
  | d -> "exe-" ^ d
  | exception _ -> "ocaml-" ^ Sys.ocaml_version

let mkdir_p path =
  let rec go p =
    if p <> "" && p <> "/" && p <> "." && not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go path

(* One handle (hence one stats record) per (dir, stamp) in a process, so
   a resident daemon reports cumulative cache traffic. *)
let registry : (string * string, t) Hashtbl.t = Hashtbl.create 4

let open_store ?(stamp = default_stamp) ~dir () =
  match Hashtbl.find_opt registry (dir, stamp) with
  | Some t -> t
  | None ->
      (try mkdir_p dir with _ -> ());
      let t = { dir; stamp; stats = fresh_stats () } in
      Hashtbl.replace registry (dir, stamp) t;
      t

let dir t = t.dir
let stamp t = t.stamp

let key t parts =
  Digest.to_hex (Digest.string (String.concat "\x00" (t.stamp :: parts)))

(* Two-level fanout, as git does, to keep directories small. *)
let path_of t k =
  let sub = if String.length k >= 2 then String.sub k 0 2 else "xx" in
  Filename.concat (Filename.concat t.dir sub) (k ^ ".bin")

let input_line_opt ic = try Some (input_line ic) with End_of_file -> None
let hex_digest s = Digest.to_hex (Digest.string s)

(* Read and validate an entry's payload; any deviation yields [None]. *)
let read_payload (t : t) ~fingerprint (path : string) : string option =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      match
        ( input_line_opt ic,
          input_line_opt ic,
          input_line_opt ic,
          input_line_opt ic,
          input_line_opt ic )
      with
      | Some m, Some s, Some fp_digest, Some digest, Some len_line
        when m = magic && s = t.stamp && fp_digest = hex_digest fingerprint
        -> (
          match int_of_string_opt len_line with
          | Some len when len >= 0 && len <= 1 lsl 30 -> (
              match really_input_string ic len with
              | payload when hex_digest payload = digest -> Some payload
              | _ -> None
              | exception End_of_file -> None)
          | _ -> None)
      | _ -> None)

let find (type a) t ~key ~fingerprint : a option =
  t.stats.lookups <- t.stats.lookups + 1;
  let path = path_of t key in
  if not (Sys.file_exists path) then begin
    t.stats.misses <- t.stats.misses + 1;
    None
  end
  else
    match (try read_payload t ~fingerprint path with _ -> None) with
    | Some payload ->
        (* Digest verified: these are bytes a same-build process
           marshalled, so unmarshalling is safe. *)
        t.stats.hits <- t.stats.hits + 1;
        Some (Marshal.from_string payload 0 : a)
    | None ->
        (* Stale or corrupt: drop it so the rewrite is clean. *)
        t.stats.rejected <- t.stats.rejected + 1;
        (try Sys.remove path with _ -> ());
        None

let tmp_counter = ref 0

let store t ~key ~fingerprint v =
  try
    let path = path_of t key in
    mkdir_p (Filename.dirname path);
    let payload = Marshal.to_string v [] in
    incr tmp_counter;
    let tmp =
      Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ()) !tmp_counter
    in
    let oc = open_out_bin tmp in
    (try
       Printf.fprintf oc "%s\n%s\n%s\n%s\n%d\n" magic t.stamp
         (hex_digest fingerprint) (hex_digest payload) (String.length payload);
       output_string oc payload;
       close_out oc
     with e ->
       close_out_noerr oc;
       (try Sys.remove tmp with _ -> ());
       raise e);
    Sys.rename tmp path;
    t.stats.writes <- t.stats.writes + 1
  with _ -> t.stats.write_errors <- t.stats.write_errors + 1

let stats t = t.stats

let stats_snapshot t =
  {
    lookups = t.stats.lookups;
    hits = t.stats.hits;
    misses = t.stats.misses;
    rejected = t.stats.rejected;
    writes = t.stats.writes;
    write_errors = t.stats.write_errors;
  }

let reset_stats t =
  let s = t.stats in
  s.lookups <- 0;
  s.hits <- 0;
  s.misses <- 0;
  s.rejected <- 0;
  s.writes <- 0;
  s.write_errors <- 0

let pp_stats ppf s =
  Fmt.pf ppf
    "lookups=%d hits=%d misses=%d rejected=%d writes=%d write-errors=%d"
    s.lookups s.hits s.misses s.rejected s.writes s.write_errors
