(** Content-addressed, on-disk persistent store for verification
    results.

    Entries are written under a directory, one file per key, where the
    key is a digest of the inputs that determine the result (source
    text, qualifier set, pipeline options — see
    {!Liquid_driver.Pipeline}).  Each entry embeds the build stamp of
    the writing binary, an options fingerprint, and an integrity digest
    of its payload; a stale, mismatched, truncated, or corrupt entry is
    silently rejected (and removed) so callers always fall back to a
    cold computation.  Writes are atomic (temp file + rename) and write
    failures are swallowed: the cache can only ever make a run faster,
    never wrong and never failing. *)

(** Counters for one store handle (cumulative over the process; handles
    are memoized per directory, so a long-lived daemon accumulates). *)
type stats = {
  mutable lookups : int; (* find calls *)
  mutable hits : int; (* entries served *)
  mutable misses : int; (* no entry on disk *)
  mutable rejected : int; (* stale stamp/fingerprint, corrupt, truncated *)
  mutable writes : int; (* entries persisted *)
  mutable write_errors : int; (* failed writes, swallowed *)
  mutable swept : int; (* orphaned temp files removed at open *)
}

type t

(** The writing binary's identity: an MD5 of the executable image, so a
    rebuilt dsolve never trusts entries marshalled by a different build
    (value layouts may have changed).  Falls back to a version string if
    the executable cannot be read. *)
val default_stamp : string

(** [open_store ?stamp ~dir ()] opens (creating if needed) the store
    rooted at [dir].  Handles are memoized per [(dir, stamp)], so
    repeated opens share one stats record.  [stamp] defaults to
    {!default_stamp}; tests override it to simulate builds that must not
    share entries.  Directory-creation failures are deferred: the handle
    is returned and every [find]/[store] just misses/swallows.

    Creating a handle sweeps the store for orphaned
    ["<key>.bin.tmp.<pid>.<n>"] files — debris of writers that died
    between opening their temp file and renaming it into place.  A temp
    file is removed (and counted in [stats.swept]) only when its writer
    pid no longer exists, so a concurrent writer's in-flight file is
    never touched. *)
val open_store : ?stamp:string -> dir:string -> unit -> t

val dir : t -> string
val stamp : t -> string

(** Digest the given parts (together with the store's stamp) into a
    cache key. *)
val key : t -> string list -> string

(** [find store ~key ~fingerprint] returns the stored value, or [None]
    if the entry is absent, carries a different stamp or fingerprint, or
    fails its integrity check (such entries are removed).  The payload
    is only unmarshalled after its digest verifies, so a corrupt file
    can never crash the reader.  The ['a] is trusted: callers must
    encode the value's type in the fingerprint.  [ns] selects a
    namespace — an extra directory level keeping differently-typed
    payloads (whole-run reports vs per-partition partials) apart. *)
val find : ?ns:string -> t -> key:string -> fingerprint:string -> 'a option

(** [store st ~key ~fingerprint v] persists [v] atomically (in the
    given namespace, when [ns] is set).  Any failure (permissions, disk
    full, unwritable dir) is swallowed and counted in [write_errors]. *)
val store : ?ns:string -> t -> key:string -> fingerprint:string -> 'a -> unit

(** Live counters of the handle (shared across memoized opens). *)
val stats : t -> stats

(** A detached copy (for marshalling across processes). *)
val stats_snapshot : t -> stats

val reset_stats : t -> unit
val pp_stats : Format.formatter -> stats -> unit
