(** SMT-backed reachability and tautology lints.

    Re-examines every conditional recorded during constraint generation
    under the {e final} κ-solution: the environment is embedded exactly as
    in a subtyping check ({!Liquid_infer.Constr.embed_env} with
    {!Liquid_infer.Constr.sol_find}), and the branch condition is tested
    against the accumulated facts with {!Liquid_smt.Solver}.

    Because the inferred refinements over-approximate the reachable
    states, both lints are sound: if the facts imply the condition (resp.
    its negation), no execution can reach the else- (resp. then-) branch.
    An [Unknown] solver verdict never produces a diagnostic.

    Cascade suppression: a conditional nested inside a branch already
    reported unreachable is skipped, as is any conditional whose own
    environment is inconsistent (its unreachability belongs to an
    enclosing construct). *)

open Liquid_common
open Liquid_logic
open Liquid_infer
open Liquid_smt

let analyze ~(solution : Constr.solution) (branches : Congen.branch list) :
    Diagnostic.t list =
  let lookup = Constr.sol_find solution in
  let dead_spans = ref [] in
  let in_dead loc = List.exists (fun d -> Loc.contains d loc) !dead_spans in
  let diags = ref [] in
  List.iter
    (fun (br : Congen.branch) ->
      if not (in_dead br.Congen.br_loc) then begin
        let facts, guards = Constr.embed_env lookup br.Congen.br_env in
        let valid goal =
          Solver.check_valid ~kept:guards facts goal = Solver.Valid
        in
        (* Both directions provable means the environment itself is
           inconsistent: the whole conditional sits in dead context and
           the report belongs to whatever made that context dead.  (An
           explicit [valid ff] probe would not work: [ff] shares no
           variables with anything, so relevance pruning discards the
           facts that carry the contradiction.) *)
        let always_true = valid br.Congen.br_cond in
        let always_false = valid (Pred.not_ br.Congen.br_cond) in
        if always_true && always_false then ()
        else if always_true then begin
          dead_spans := br.Congen.br_else_loc :: !dead_spans;
          diags :=
            Diagnostic.make Diagnostic.Unreachable_branch
              br.Congen.br_else_loc
              "unreachable else-branch: the condition is provably always \
               true here"
            :: Diagnostic.make Diagnostic.Trivial_condition
                 br.Congen.br_cond_loc
                 "condition is always true under the inferred refinements"
            :: !diags
        end
        else if always_false then begin
          dead_spans := br.Congen.br_then_loc :: !dead_spans;
          diags :=
            Diagnostic.make Diagnostic.Unreachable_branch
              br.Congen.br_then_loc
              "unreachable then-branch: the condition is provably always \
               false here"
            :: Diagnostic.make Diagnostic.Trivial_condition
                 br.Congen.br_cond_loc
                 "condition is always false under the inferred refinements"
            :: !diags
        end
      end)
    branches;
  List.rev !diags
