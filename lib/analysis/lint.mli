(** The semantic-lint pass: run all analyses over the byproducts of
    liquid inference, returning diagnostics in report order. *)

open Liquid_lang
open Liquid_infer

val dead_qualifier_diags :
  quals:Qualifier.t list -> string list -> Diagnostic.t list

val run :
  source:Ast.program ->
  branches:Congen.branch list ->
  solution:Constr.solution ->
  quals:Qualifier.t list ->
  dead_quals:string list ->
  Diagnostic.t list

(** Only the diagnostics that gate [--warn-error]. *)
val warnings : Diagnostic.t list -> Diagnostic.t list
