(** Structured semantic-lint diagnostics with stable warning codes. *)

open Liquid_common

type code =
  | Unreachable_branch (* L001 *)
  | Trivial_condition (* L002: provably always-true or always-false *)
  | Unused_binding (* L003 *)
  | Shadowed_binding (* L004 *)
  | Dead_qualifier (* L005: every instance pruned from every κ *)
  | Partition_timeout (* P001: solve partition degraded to ⊤ (timeout/crash) *)
  | Runtime_failure (* R001: a runtime safety check failed under --run *)

type severity = Info | Warning

type t = { code : code; severity : severity; loc : Loc.t; message : string }

(** The stable code string, ["L001"] ... ["L005"], ["P001"], ["R001"]. *)
val code_name : code -> string

val severity_name : severity -> string

(** Warnings gate [--warn-error]; dead qualifiers default to [Info]. *)
val default_severity : code -> severity

val make : ?severity:severity -> code -> Loc.t -> string -> t
val is_warning : t -> bool

(** Report order: source position, then code, then message. *)
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
val json_of_loc : Loc.t -> Json.t
val to_json : t -> Json.t
