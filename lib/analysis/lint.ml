(** The semantic-lint pass: orchestrates the individual analyses over the
    byproducts of liquid inference and returns diagnostics in report
    order.

    Inputs are exactly what the pipeline already computes: the parsed
    (pre-ANF) program, the conditionals recorded by constraint
    generation, the final κ-solution, and the solver's dead-qualifier
    provenance. *)

open Liquid_common
open Liquid_lang
open Liquid_infer

(** L005: qualifier patterns whose every instance was pruned.  The
    location is the pattern's declaration (dummy for programmatically
    built qualifiers). *)
let dead_qualifier_diags ~(quals : Qualifier.t list) (dead : string list) :
    Diagnostic.t list =
  List.map
    (fun name ->
      let loc =
        match List.find_opt (fun q -> q.Qualifier.name = name) quals with
        | Some q -> q.Qualifier.loc
        | None -> Loc.dummy
      in
      Diagnostic.make Diagnostic.Dead_qualifier loc
        (Fmt.str
           "dead qualifier %s: every instance was pruned from every \
            inferred refinement"
           name))
    dead

let run ~(source : Ast.program) ~(branches : Congen.branch list)
    ~(solution : Constr.solution) ~(quals : Qualifier.t list)
    ~(dead_quals : string list) : Diagnostic.t list =
  List.sort Diagnostic.compare
    (Bindings.analyze source
    @ Reachability.analyze ~solution branches
    @ dead_qualifier_diags ~quals dead_quals)

let warnings (ds : Diagnostic.t list) : Diagnostic.t list =
  List.filter Diagnostic.is_warning ds
