(** Syntactic binding lints (L003 unused, L004 shadowed) over the source
    (pre-ANF) program. *)

open Liquid_lang

(** Names starting with ['_'] opt out of the binding lints. *)
val ignorable : Liquid_common.Ident.t -> bool

val analyze : Ast.program -> Diagnostic.t list
