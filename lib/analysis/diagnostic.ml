(** Structured semantic-lint diagnostics.

    Every diagnostic carries a stable warning code (the [L0xx] names are
    part of the tool's interface: scripts match on them), a severity, a
    source location, and a human-readable message.  Codes are never
    renumbered; retired analyses leave gaps. *)

open Liquid_common

type code =
  | Unreachable_branch (* L001 *)
  | Trivial_condition (* L002: provably always-true or always-false *)
  | Unused_binding (* L003 *)
  | Shadowed_binding (* L004 *)
  | Dead_qualifier (* L005: every instance pruned from every κ *)
  | Partition_timeout (* P001: solve partition degraded to ⊤ (timeout/crash) *)
  | Runtime_failure (* R001: a runtime safety check failed under --run *)

type severity = Info | Warning

type t = { code : code; severity : severity; loc : Loc.t; message : string }

let code_name = function
  | Unreachable_branch -> "L001"
  | Trivial_condition -> "L002"
  | Unused_binding -> "L003"
  | Shadowed_binding -> "L004"
  | Dead_qualifier -> "L005"
  | Partition_timeout -> "P001"
  | Runtime_failure -> "R001"

let severity_name = function Info -> "info" | Warning -> "warning"

(** Default severity of a code.  Dead qualifiers are hints about the
    qualifier set, not about the program, so they never gate
    [--warn-error]. *)
let default_severity = function
  | Unreachable_branch | Trivial_condition | Unused_binding
  | Shadowed_binding ->
      Warning
  | Dead_qualifier -> Info
  | Partition_timeout -> Warning
  | Runtime_failure -> Warning

let make ?severity code loc message =
  let severity =
    match severity with Some s -> s | None -> default_severity code
  in
  { code; severity; loc; message }

let is_warning d = d.severity = Warning

let code_rank = function
  | Unreachable_branch -> 1
  | Trivial_condition -> 2
  | Unused_binding -> 3
  | Shadowed_binding -> 4
  | Dead_qualifier -> 5
  | Partition_timeout -> 6
  | Runtime_failure -> 7

(** Report order: source position, then code, then message. *)
let compare a b =
  match Loc.compare a.loc b.loc with
  | 0 -> (
      match Int.compare (code_rank a.code) (code_rank b.code) with
      | 0 -> String.compare a.message b.message
      | c -> c)
  | c -> c

let pp ppf d =
  Fmt.pf ppf "%a: %s[%s]: %s" Loc.pp d.loc (severity_name d.severity)
    (code_name d.code) d.message

let json_of_loc (loc : Loc.t) : Json.t =
  if Loc.is_dummy loc then Json.Null
  else
    Json.Obj
      [
        ("file", Json.String loc.Loc.file);
        ("line", Json.Int loc.Loc.start_pos.Loc.line);
        ("col", Json.Int loc.Loc.start_pos.Loc.col);
        ("end_line", Json.Int loc.Loc.end_pos.Loc.line);
        ("end_col", Json.Int loc.Loc.end_pos.Loc.col);
      ]

let to_json d =
  Json.Obj
    [
      ("code", Json.String (code_name d.code));
      ("severity", Json.String (severity_name d.severity));
      ("loc", json_of_loc d.loc);
      ("message", Json.String d.message);
    ]
