(** Minimal JSON values and serialization.

    Just enough for the machine-readable diagnostic output: construction
    and compact printing with correct string escaping.  Kept dependency
    free on purpose — the toolchain image carries no JSON library, and the
    emitter is a page of code. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape (s : string) : string =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec pp ppf (v : t) =
  match v with
  | Null -> Fmt.string ppf "null"
  | Bool b -> Fmt.string ppf (if b then "true" else "false")
  | Int n -> Fmt.int ppf n
  | Float f ->
      (* JSON has no infinities or NaN; clamp to null *)
      if Float.is_finite f then Fmt.pf ppf "%.6g" f else Fmt.string ppf "null"
  | String s -> Fmt.pf ppf "\"%s\"" (escape s)
  | List vs -> Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any ",") pp) vs
  | Obj fields ->
      let field ppf (k, v) = Fmt.pf ppf "\"%s\":%a" (escape k) pp v in
      Fmt.pf ppf "{%a}" (Fmt.list ~sep:(Fmt.any ",") field) fields

let to_string (v : t) : string = Fmt.str "%a" pp v

(* ------------------------------------------------------------------ *)
(* Parsing — a recursive-descent reader of the same fragment the
   printer emits.  Exists for round-trip tests and tooling that wants
   to re-read a report; not a general-purpose validator. *)

exception Parse_error of string

let of_string (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let utf8_of_code buf u =
    (* Scalar value → UTF-8 bytes.  Callers join surrogate pairs before
       calling, so [u] ranges over the full plane set. *)
    if u < 0x80 then Buffer.add_char buf (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else if u < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape");
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
            let read_hex4 () =
              if !pos + 4 > n then fail "truncated \\u escape";
              let v = ref 0 in
              for _ = 1 to 4 do
                let d =
                  match s.[!pos] with
                  | '0' .. '9' as c -> Char.code c - Char.code '0'
                  | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
                  | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
                  | _ -> fail "bad \\u escape"
                in
                v := (!v lsl 4) lor d;
                advance ()
              done;
              !v
            in
            let u = read_hex4 () in
            if u >= 0xD800 && u <= 0xDBFF then begin
              (* UTF-16 high surrogate: only valid as the first half of
                 a \uD8xx\uDCxx pair encoding an astral code point. *)
              if !pos + 2 > n || s.[!pos] <> '\\' || s.[!pos + 1] <> 'u'
              then fail "lone high surrogate";
              pos := !pos + 2;
              let lo = read_hex4 () in
              if lo < 0xDC00 || lo > 0xDFFF then fail "lone high surrogate";
              utf8_of_code buf
                (0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00))
            end
            else if u >= 0xDC00 && u <= 0xDFFF then fail "lone low surrogate"
            else utf8_of_code buf u
        | _ -> fail "bad escape");
        loop ()
      end
      else begin
        Buffer.add_char buf c;
        loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' -> true
      | '.' | 'e' | 'E' | '+' | '-' ->
          is_float := true;
          true
      | _ -> false
    do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          (* out-of-range integer literal: keep the value, as a float *)
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev (kv :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v
