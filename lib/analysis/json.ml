(** Minimal JSON values and serialization.

    Just enough for the machine-readable diagnostic output: construction
    and compact printing with correct string escaping.  Kept dependency
    free on purpose — the toolchain image carries no JSON library, and the
    emitter is a page of code. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape (s : string) : string =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec pp ppf (v : t) =
  match v with
  | Null -> Fmt.string ppf "null"
  | Bool b -> Fmt.string ppf (if b then "true" else "false")
  | Int n -> Fmt.int ppf n
  | Float f ->
      (* JSON has no infinities or NaN; clamp to null *)
      if Float.is_finite f then Fmt.pf ppf "%.6g" f else Fmt.string ppf "null"
  | String s -> Fmt.pf ppf "\"%s\"" (escape s)
  | List vs -> Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any ",") pp) vs
  | Obj fields ->
      let field ppf (k, v) = Fmt.pf ppf "\"%s\":%a" (escape k) pp v in
      Fmt.pf ppf "{%a}" (Fmt.list ~sep:(Fmt.any ",") field) fields

let to_string (v : t) : string = Fmt.str "%a" pp v
