(** SMT-backed reachability (L001) and tautology (L002) lints: re-examine
    recorded conditionals under the final κ-solution. *)

open Liquid_infer

val analyze :
  solution:Constr.solution -> Congen.branch list -> Diagnostic.t list
