(** Syntactic binding lints over the source (pre-ANF) AST.

    Runs before alpha-renaming: ANF gives every binder a globally unique
    name, which would erase exactly the shadowing this pass looks for,
    and would litter the unused-binding check with compiler temporaries.

    - L003 (unused binding): a [let]-bound variable that occurs neither
      in the body nor (for [let rec]) in its own definition.  Function
      parameters and match-pattern variables are exempt — unused
      parameters are often required by a higher-order interface, and
      pattern variables frequently name components only for
      documentation.
    - L004 (shadowed binding): any binder — [let], parameter, or pattern
      variable — that re-uses a name already bound within the same
      top-level item.  Re-use across top-level items is the ordinary
      redefinition idiom and is not flagged.

    Names starting with ['_'] opt out of both lints, as do
    compiler-introduced binders (sequencing [e1; e2] parses to
    [let %wild.N = e1 in e2]). *)

open Liquid_common
open Liquid_lang

let ignorable (x : Ident.t) : bool =
  let s = Ident.to_string x in
  String.length s = 0 || s.[0] = '_' || Ident.is_internal x

let analyze (prog : Ast.program) : Diagnostic.t list =
  let diags = ref [] in
  let emit code loc msg = diags := Diagnostic.make code loc msg :: !diags in
  let shadow scope (x : Ident.t) loc =
    if (not (ignorable x)) && Ident.Set.mem x scope then
      emit Diagnostic.Shadowed_binding loc
        (Fmt.str "binding of %a shadows an earlier binding of the same name"
           Ident.pp x)
  in
  let rec walk (scope : Ident.Set.t) (e : Ast.expr) : unit =
    match e.Ast.desc with
    | Ast.Const _ | Ast.Var _ | Ast.Nil -> ()
    | Ast.Fun (x, body) ->
        shadow scope x e.Ast.loc;
        walk (Ident.Set.add x scope) body
    | Ast.App (e1, e2) | Ast.Binop (_, e1, e2) | Ast.Cons (e1, e2) ->
        walk scope e1;
        walk scope e2
    | Ast.Unop (_, e1) | Ast.Assert e1 -> walk scope e1
    | Ast.If (c, e1, e2) ->
        walk scope c;
        walk scope e1;
        walk scope e2
    | Ast.Tuple es | Ast.Constr (_, es) -> List.iter (walk scope) es
    | Ast.Let (rf, x, e1, e2) ->
        shadow scope x e.Ast.loc;
        let scope' = Ident.Set.add x scope in
        (match rf with
        | Ast.Nonrec -> walk scope e1
        | Ast.Rec -> walk scope' e1);
        walk scope' e2;
        if not (ignorable x) then begin
          let used =
            Ident.Set.mem x (Ast.free_vars e2)
            || (rf = Ast.Rec && Ident.Set.mem x (Ast.free_vars e1))
          in
          if not used then
            emit Diagnostic.Unused_binding e.Ast.loc
              (Fmt.str "unused binding %a" Ident.pp x)
        end
    | Ast.Match (s, cases) ->
        walk scope s;
        List.iter
          (fun (p, body) ->
            let vs = Ast.pat_vars p in
            List.iter (fun x -> shadow scope x body.Ast.loc) vs;
            let scope' =
              List.fold_left (fun sc x -> Ident.Set.add x sc) scope vs
            in
            walk scope' body)
          cases
  in
  List.iter
    (fun (it : Ast.item) ->
      let scope =
        match it.Ast.rec_flag with
        | Ast.Rec -> Ident.Set.singleton it.Ast.name
        | Ast.Nonrec -> Ident.Set.empty
      in
      walk scope it.Ast.body)
    prog;
  List.rev !diags
