(** Minimal JSON values and compact serialization (no external
    dependency). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string

exception Parse_error of string

(** Parse the fragment {!pp} emits (used by round-trip tests and report
    tooling).  Whole-input: trailing non-whitespace is an error.
    [\uXXXX] escapes decode to UTF-8; surrogate pairs are joined into
    the astral code point they encode, and a lone (unpaired) surrogate
    is rejected.
    @raise Parse_error on malformed input. *)
val of_string : string -> t
