(** Minimal JSON values and compact serialization (no external
    dependency). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string
