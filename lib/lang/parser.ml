(** Recursive-descent parser for NanoML.

    The grammar is a small OCaml subset; see {!Ast} for the constructs and
    the desugarings performed here:

    - [e1 && e2]  ⟶  [if e1 then e2 else false]
    - [e1 || e2]  ⟶  [if e1 then true else e2]
    - [e1; e2]    ⟶  [let _ = e1 in e2]
    - [a.(i)]     ⟶  [Array.get a i]
    - [a.(i) <- e] ⟶ [Array.set a i e]
    - [let f x y = e] ⟶ [let f = fun x -> fun y -> e]
    - [let (x, y) = e in b] ⟶ [match e with (x, y) -> b]
    - list literals [\[e1; e2\]] ⟶ cons chains

    Operator precedence, low to high: tuple ([,]) < [||] < [&&] <
    comparison < [::] (right) < additive < multiplicative < unary <
    application < postfix ([.( )]). *)

open Liquid_common
open Ast

exception Error of string * Loc.t

type state = {
  lexbuf : Lexing.lexbuf;
  file : string;
  mutable tok : Token.t;
  mutable start_p : Lexing.position;
  mutable end_p : Lexing.position;
  mutable prev_end_p : Lexing.position;
}

let advance st =
  st.prev_end_p <- st.end_p;
  st.tok <- Lexer.token st.lexbuf;
  st.start_p <- Lexing.lexeme_start_p st.lexbuf;
  st.end_p <- Lexing.lexeme_end_p st.lexbuf

let init file lexbuf =
  Lexing.set_filename lexbuf file;
  let st =
    {
      lexbuf;
      file;
      tok = Token.EOF;
      start_p = Lexing.dummy_pos;
      end_p = Lexing.dummy_pos;
      prev_end_p = Lexing.dummy_pos;
    }
  in
  advance st;
  st

let loc_here st = Loc.of_lexing st.start_p st.end_p

let loc_from st start_p = Loc.of_lexing start_p st.prev_end_p

let error st msg = raise (Error (msg, loc_here st))

let expect st tok =
  if st.tok = tok then advance st
  else
    error st
      (Printf.sprintf "expected '%s' but found '%s'" (Token.to_string tok)
         (Token.to_string st.tok))

let fresh_wild () = Gensym.fresh "wild"

(* -- Patterns ---------------------------------------------------------- *)

let rec parse_pattern st : pat =
  let p = parse_atom_pattern st in
  match st.tok with
  | Token.COLONCOLON ->
      advance st;
      let p2 = parse_pattern st in
      Pcons (p, p2)
  | _ -> p

and parse_atom_pattern st : pat =
  match st.tok with
  | Token.UNDERSCORE ->
      advance st;
      Pwild
  | Token.IDENT x ->
      advance st;
      Pvar (Ident.of_string x)
  | Token.UIDENT c ->
      advance st;
      if starts_atom_pattern st.tok then
        let p = parse_atom_pattern st in
        let args = match p with Ptuple ps -> ps | p -> [ p ] in
        Pconstr (c, args)
      else Pconstr (c, [])
  | Token.INT n ->
      advance st;
      Pint n
  | Token.MINUS ->
      advance st;
      (match st.tok with
      | Token.INT n ->
          advance st;
          Pint (-n)
      | _ -> error st "expected an integer literal after '-' in pattern")
  | Token.TRUE ->
      advance st;
      Pbool true
  | Token.FALSE ->
      advance st;
      Pbool false
  | Token.LBRACKET ->
      advance st;
      expect st Token.RBRACKET;
      Pnil
  | Token.LPAREN -> (
      advance st;
      match st.tok with
      | Token.RPAREN ->
          advance st;
          Punit
      | _ ->
          let p = parse_pattern st in
          let ps = ref [ p ] in
          while st.tok = Token.COMMA do
            advance st;
            ps := parse_pattern st :: !ps
          done;
          expect st Token.RPAREN;
          (match !ps with [ p ] -> p | ps -> Ptuple (List.rev ps)))
  | t -> error st (Printf.sprintf "unexpected token '%s' in pattern" (Token.to_string t))

and starts_atom_pattern = function
  | Token.UNDERSCORE | Token.IDENT _ | Token.UIDENT _ | Token.INT _
  | Token.MINUS | Token.TRUE | Token.FALSE | Token.LBRACKET | Token.LPAREN ->
      true
  | _ -> false

(* -- Function parameters ------------------------------------------------ *)

(** A parameter is an identifier, [_], [()], or a parenthesized (tuple)
    pattern.  Returns a binder name and an optional pattern to match the
    binder against in the body. *)
let parse_param st : Ident.t * pat option =
  match st.tok with
  | Token.IDENT x ->
      advance st;
      (Ident.of_string x, None)
  | Token.UNDERSCORE ->
      advance st;
      (fresh_wild (), None)
  | Token.LPAREN -> (
      advance st;
      match st.tok with
      | Token.RPAREN ->
          advance st;
          (fresh_wild (), None)
      | _ ->
          let p = parse_pattern st in
          let ps = ref [ p ] in
          while st.tok = Token.COMMA do
            advance st;
            ps := parse_pattern st :: !ps
          done;
          expect st Token.RPAREN;
          let pat =
            match !ps with [ p ] -> p | ps -> Ptuple (List.rev ps)
          in
          (match pat with
          | Pvar x -> (x, None)
          | _ ->
              let tmp = Gensym.fresh "param" in
              (tmp, Some pat)))
  | t -> error st (Printf.sprintf "unexpected token '%s' in parameter list" (Token.to_string t))

let starts_param = function
  | Token.IDENT _ | Token.UNDERSCORE | Token.LPAREN -> true
  | _ -> false

(* -- Expressions --------------------------------------------------------- *)

let rec parse_seq st : expr =
  let start = st.start_p in
  let e = parse_expr st in
  if st.tok = Token.SEMI then begin
    advance st;
    let rest = parse_seq st in
    mk ~loc:(loc_from st start) (Let (Nonrec, fresh_wild (), e, rest))
  end
  else e

and parse_expr st : expr =
  let start = st.start_p in
  match st.tok with
  | Token.IF ->
      advance st;
      let cond = parse_expr st in
      expect st Token.THEN;
      let e1 = parse_expr st in
      expect st Token.ELSE;
      let e2 = parse_expr st in
      mk ~loc:(loc_from st start) (If (cond, e1, e2))
  | Token.FUN ->
      advance st;
      let params = parse_params st in
      expect st Token.ARROW;
      let body = parse_expr st in
      build_fun ~loc:(loc_from st start) params body
  | Token.LET -> parse_let st
  | Token.MATCH ->
      advance st;
      let scrut = parse_seq st in
      expect st Token.WITH;
      if st.tok = Token.BAR then advance st;
      let cases = parse_cases st in
      mk ~loc:(loc_from st start) (Match (scrut, cases))
  | Token.ASSERT ->
      advance st;
      let e = parse_app st in
      mk ~loc:(loc_from st start) (Assert e)
  | _ -> parse_tuple st

and parse_params st =
  let rec go acc =
    if starts_param st.tok then go (parse_param st :: acc) else List.rev acc
  in
  let ps = go [] in
  if ps = [] then error st "expected at least one parameter";
  ps

and build_fun ~loc params body =
  List.fold_right
    (fun (x, pat) acc ->
      let acc =
        match pat with
        | None -> acc
        | Some p ->
            mk ~loc (Match (mk ~loc (Var x), [ (p, acc) ]))
      in
      mk ~loc (Fun (x, acc)))
    params body

and parse_let st : expr =
  let start = st.start_p in
  expect st Token.LET;
  let rec_flag = if st.tok = Token.REC then (advance st; Rec) else Nonrec in
  (* Binder: identifier (possibly with params), or a pattern. *)
  match st.tok with
  | Token.IDENT x ->
      advance st;
      let name = Ident.of_string x in
      let params =
        let rec go acc =
          if starts_param st.tok then go (parse_param st :: acc)
          else List.rev acc
        in
        go []
      in
      expect st Token.EQ;
      let rhs = parse_seq st in
      let rhs =
        if params = [] then rhs
        else build_fun ~loc:(loc_from st start) params rhs
      in
      expect st Token.IN;
      let body = parse_seq st in
      mk ~loc:(loc_from st start) (Let (rec_flag, name, rhs, body))
  | _ ->
      if rec_flag = Rec then error st "'let rec' requires a named binder";
      let pat = parse_pattern st in
      expect st Token.EQ;
      let rhs = parse_seq st in
      expect st Token.IN;
      let body = parse_seq st in
      let loc = loc_from st start in
      (match pat with
      | Pwild -> mk ~loc (Let (Nonrec, fresh_wild (), rhs, body))
      | Pvar x -> mk ~loc (Let (Nonrec, x, rhs, body))
      | _ -> mk ~loc (Match (rhs, [ (pat, body) ])))

and parse_cases st =
  let case () =
    let p = parse_pattern st in
    expect st Token.ARROW;
    let e = parse_seq st in
    (p, e)
  in
  let first = case () in
  let rec go acc =
    if st.tok = Token.BAR then begin
      advance st;
      go (case () :: acc)
    end
    else List.rev acc
  in
  go [ first ]

and parse_tuple st : expr =
  let start = st.start_p in
  let e = parse_or st in
  if st.tok = Token.COMMA then begin
    let es = ref [ e ] in
    while st.tok = Token.COMMA do
      advance st;
      es := parse_or st :: !es
    done;
    mk ~loc:(loc_from st start) (Tuple (List.rev !es))
  end
  else e

and parse_or st : expr =
  let start = st.start_p in
  let e = parse_and st in
  if st.tok = Token.BARBAR then begin
    advance st;
    let rhs = parse_or st in
    let loc = loc_from st start in
    mk ~loc (If (e, mk ~loc (Const (Cbool true)), rhs))
  end
  else e

and parse_and st : expr =
  let start = st.start_p in
  let e = parse_cmp st in
  if st.tok = Token.AMPAMP then begin
    advance st;
    let rhs = parse_and st in
    let loc = loc_from st start in
    mk ~loc (If (e, rhs, mk ~loc (Const (Cbool false))))
  end
  else e

and parse_cmp st : expr =
  let start = st.start_p in
  let e = parse_cons st in
  let op =
    match st.tok with
    | Token.EQ -> Some Eq
    | Token.NE -> Some Ne
    | Token.LT -> Some Lt
    | Token.LE -> Some Le
    | Token.GT -> Some Gt
    | Token.GE -> Some Ge
    | _ -> None
  in
  match op with
  | None -> e
  | Some op ->
      advance st;
      let rhs = parse_cons st in
      mk ~loc:(loc_from st start) (Binop (op, e, rhs))

and parse_cons st : expr =
  let start = st.start_p in
  let e = parse_add st in
  if st.tok = Token.COLONCOLON then begin
    advance st;
    let rhs = parse_cons st in
    mk ~loc:(loc_from st start) (Cons (e, rhs))
  end
  else e

and parse_add st : expr =
  let start = st.start_p in
  let e = ref (parse_mul st) in
  let continue_ = ref true in
  while !continue_ do
    match st.tok with
    | Token.PLUS ->
        advance st;
        let rhs = parse_mul st in
        e := mk ~loc:(loc_from st start) (Binop (Add, !e, rhs))
    | Token.MINUS ->
        advance st;
        let rhs = parse_mul st in
        e := mk ~loc:(loc_from st start) (Binop (Sub, !e, rhs))
    | _ -> continue_ := false
  done;
  !e

and parse_mul st : expr =
  let start = st.start_p in
  let e = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match st.tok with
    | Token.STAR ->
        advance st;
        let rhs = parse_unary st in
        e := mk ~loc:(loc_from st start) (Binop (Mul, !e, rhs))
    | Token.SLASH ->
        advance st;
        let rhs = parse_unary st in
        e := mk ~loc:(loc_from st start) (Binop (Div, !e, rhs))
    | Token.MOD ->
        advance st;
        let rhs = parse_unary st in
        e := mk ~loc:(loc_from st start) (Binop (Mod, !e, rhs))
    | _ -> continue_ := false
  done;
  !e

and parse_unary st : expr =
  let start = st.start_p in
  match st.tok with
  | Token.MINUS ->
      advance st;
      let e = parse_unary st in
      mk ~loc:(loc_from st start) (Unop (Neg, e))
  | Token.NOT ->
      advance st;
      let e = parse_unary st in
      mk ~loc:(loc_from st start) (Unop (Not, e))
  | _ -> parse_app st

and parse_app st : expr =
  let start = st.start_p in
  let e = ref (parse_postfix st) in
  (* A bare constructor in head position takes its argument tuple, as in
     OCaml; constructors in argument position stay unapplied. *)
  (match (!e).desc with
  | Constr (c, []) when starts_atom st.tok ->
      let arg = parse_postfix st in
      let args = match arg.desc with Tuple es -> es | _ -> [ arg ] in
      e := mk ~loc:(loc_from st start) (Constr (c, args))
  | _ -> ());
  while starts_atom st.tok do
    let arg = parse_postfix st in
    e := mk ~loc:(loc_from st start) (App (!e, arg))
  done;
  !e

and starts_atom = function
  | Token.INT _ | Token.IDENT _ | Token.UIDENT _ | Token.TRUE | Token.FALSE
  | Token.LPAREN | Token.LBRACKET | Token.BEGIN ->
      true
  | _ -> false

and parse_postfix st : expr =
  let start = st.start_p in
  let e = ref (parse_atom st) in
  while st.tok = Token.DOTLPAREN do
    advance st;
    let idx = parse_seq st in
    expect st Token.RPAREN;
    let loc = loc_from st start in
    if st.tok = Token.LARROW then begin
      advance st;
      let rhs = parse_or st in
      let loc = loc_from st start in
      let get = mk ~loc (Var (Ident.of_string "Array.set")) in
      e := mk ~loc (App (mk ~loc (App (mk ~loc (App (get, !e)), idx)), rhs))
    end
    else begin
      let get = mk ~loc (Var (Ident.of_string "Array.get")) in
      e := mk ~loc (App (mk ~loc (App (get, !e)), idx))
    end
  done;
  !e

and parse_atom st : expr =
  let start = st.start_p in
  match st.tok with
  | Token.INT n ->
      advance st;
      mk ~loc:(loc_from st start) (Const (Cint n))
  | Token.TRUE ->
      advance st;
      mk ~loc:(loc_from st start) (Const (Cbool true))
  | Token.FALSE ->
      advance st;
      mk ~loc:(loc_from st start) (Const (Cbool false))
  | Token.IDENT x ->
      advance st;
      mk ~loc:(loc_from st start) (Var (Ident.of_string x))
  | Token.UIDENT c ->
      advance st;
      mk ~loc:(loc_from st start) (Constr (c, []))
  | Token.LPAREN -> (
      advance st;
      match st.tok with
      | Token.RPAREN ->
          advance st;
          mk ~loc:(loc_from st start) (Const Cunit)
      | _ ->
          let e = parse_seq st in
          expect st Token.RPAREN;
          e)
  | Token.BEGIN ->
      advance st;
      let e = parse_seq st in
      expect st Token.END;
      e
  | Token.LBRACKET ->
      advance st;
      if st.tok = Token.RBRACKET then begin
        advance st;
        mk ~loc:(loc_from st start) Nil
      end
      else begin
        let es = ref [ parse_expr st ] in
        while st.tok = Token.SEMI do
          advance st;
          es := parse_expr st :: !es
        done;
        expect st Token.RBRACKET;
        let loc = loc_from st start in
        List.fold_left
          (fun acc e -> mk ~loc (Cons (e, acc)))
          (mk ~loc Nil) !es
      end
  | t -> error st (Printf.sprintf "unexpected token '%s'" (Token.to_string t))

(* -- Top level ----------------------------------------------------------- *)

let parse_item st : item =
  let start = st.start_p in
  expect st Token.LET;
  let rec_flag = if st.tok = Token.REC then (advance st; Rec) else Nonrec in
  let name =
    match st.tok with
    | Token.IDENT x ->
        advance st;
        Ident.of_string x
    | Token.UNDERSCORE ->
        advance st;
        Gensym.fresh "main"
    | Token.LPAREN ->
        advance st;
        expect st Token.RPAREN;
        Gensym.fresh "main"
    | t ->
        error st
          (Printf.sprintf "expected a top-level binder, found '%s'"
             (Token.to_string t))
  in
  let params =
    let rec go acc =
      if starts_param st.tok then go (parse_param st :: acc) else List.rev acc
    in
    go []
  in
  expect st Token.EQ;
  let rhs = parse_seq st in
  let rhs =
    if params = [] then rhs else build_fun ~loc:(loc_from st start) params rhs
  in
  if st.tok = Token.SEMISEMI then advance st;
  { item_loc = loc_from st start; rec_flag; name; body = rhs }

(* -- Declarations -------------------------------------------------------- *)

(* A type expression in a constructor declaration: a bare (lowercase)
   type name — [int], [bool], [unit], or an ADT. *)
let parse_tyexpr st : tyexpr =
  match st.tok with
  | Token.IDENT s ->
      let loc = loc_here st in
      advance st;
      { ty_name = s; ty_loc = loc }
  | t ->
      error st
        (Printf.sprintf "expected a type name, found '%s'" (Token.to_string t))

(* [C] or [C of ty * ty * …] *)
let parse_ctor_decl st : ctor_decl =
  let start = st.start_p in
  match st.tok with
  | Token.UIDENT c ->
      advance st;
      let args =
        if st.tok = Token.OF then begin
          advance st;
          let rec go acc =
            let acc = parse_tyexpr st :: acc in
            if st.tok = Token.STAR then begin
              advance st;
              go acc
            end
            else List.rev acc
          in
          go []
        end
        else []
      in
      { c_name = c; c_loc = loc_from st start; c_args = args }
  | t ->
      error st
        (Printf.sprintf "expected a constructor name, found '%s'"
           (Token.to_string t))

(* [type t = C1 of … | C2 | …] *)
let parse_tydecl st : tydecl =
  let start = st.start_p in
  expect st Token.TYPE;
  let t_name, t_name_loc =
    match st.tok with
    | Token.IDENT s ->
        let loc = loc_here st in
        advance st;
        (s, loc)
    | t ->
        error st
          (Printf.sprintf "expected a type name after 'type', found '%s'"
             (Token.to_string t))
  in
  expect st Token.EQ;
  if st.tok = Token.BAR then advance st;
  let first = parse_ctor_decl st in
  let rec go acc =
    if st.tok = Token.BAR then begin
      advance st;
      go (parse_ctor_decl st :: acc)
    end
    else List.rev acc
  in
  let ctors = go [ first ] in
  if st.tok = Token.SEMISEMI then advance st;
  { t_name; t_name_loc; t_ctors = ctors; t_loc = loc_from st start }

(* Measure bodies: an integer term grammar over the equation binders
   with measure applications (and [max]/[min]) by juxtaposition. *)
let rec parse_mterm st : mterm =
  let t = ref (parse_mmul st) in
  let continue_ = ref true in
  while !continue_ do
    match st.tok with
    | Token.PLUS ->
        advance st;
        t := Madd (!t, parse_mmul st)
    | Token.MINUS ->
        advance st;
        t := Msub (!t, parse_mmul st)
    | _ -> continue_ := false
  done;
  !t

and parse_mmul st : mterm =
  let t = ref (parse_munary st) in
  while st.tok = Token.STAR do
    advance st;
    t := Mmul (!t, parse_munary st)
  done;
  !t

and parse_munary st : mterm =
  match st.tok with
  | Token.MINUS ->
      advance st;
      Mneg (parse_munary st)
  | _ -> parse_mapp st

and parse_mapp st : mterm =
  (* [f a b …] — a variable becomes an application head when an atom
     follows it *)
  let a = parse_matom st in
  match a with
  | Mvar (f, loc) when starts_matom st.tok ->
      let rec go acc =
        if starts_matom st.tok then go (parse_matom st :: acc)
        else List.rev acc
      in
      Mcall (f, loc, go [])
  | a -> a

and starts_matom = function
  | Token.INT _ | Token.IDENT _ | Token.LPAREN -> true
  | _ -> false

and parse_matom st : mterm =
  match st.tok with
  | Token.INT n ->
      advance st;
      Mint n
  | Token.IDENT x ->
      let loc = loc_here st in
      advance st;
      Mvar (x, loc)
  | Token.LPAREN ->
      advance st;
      let t = parse_mterm st in
      expect st Token.RPAREN;
      t
  | t ->
      error st
        (Printf.sprintf "unexpected token '%s' in measure body"
           (Token.to_string t))

(* [| C (x, _, r) -> body] *)
let parse_meqn st : meqn =
  let start = st.start_p in
  let eq_ctor, eq_ctor_loc =
    match st.tok with
    | Token.UIDENT c ->
        let loc = loc_here st in
        advance st;
        (c, loc)
    | t ->
        error st
          (Printf.sprintf "expected a constructor in measure equation, found '%s'"
             (Token.to_string t))
  in
  let arg st =
    match st.tok with
    | Token.IDENT x ->
        let loc = loc_here st in
        advance st;
        (Some x, loc)
    | Token.UNDERSCORE ->
        let loc = loc_here st in
        advance st;
        (None, loc)
    | t ->
        error st
          (Printf.sprintf "expected an argument binder, found '%s'"
             (Token.to_string t))
  in
  let args =
    match st.tok with
    | Token.LPAREN ->
        advance st;
        let rec go acc =
          let acc = arg st :: acc in
          if st.tok = Token.COMMA then begin
            advance st;
            go acc
          end
          else List.rev acc
        in
        let args = go [] in
        expect st Token.RPAREN;
        args
    | Token.IDENT _ | Token.UNDERSCORE -> [ arg st ]
    | _ -> []
  in
  expect st Token.ARROW;
  let body = parse_mterm st in
  { eq_ctor; eq_ctor_loc; eq_args = args; eq_body = body; eq_loc = loc_from st start }

(* [measure m : t = | C1 … -> … | …] *)
let parse_measure st : measure_decl =
  let start = st.start_p in
  expect st Token.MEASURE;
  let m_name, m_name_loc =
    match st.tok with
    | Token.IDENT s ->
        let loc = loc_here st in
        advance st;
        (s, loc)
    | t ->
        error st
          (Printf.sprintf "expected a measure name after 'measure', found '%s'"
             (Token.to_string t))
  in
  expect st Token.COLON;
  let m_tycon, m_tycon_loc =
    match st.tok with
    | Token.IDENT s ->
        let loc = loc_here st in
        advance st;
        (s, loc)
    | t ->
        error st
          (Printf.sprintf "expected a type name after ':', found '%s'"
             (Token.to_string t))
  in
  expect st Token.EQ;
  if st.tok = Token.BAR then advance st;
  let first = parse_meqn st in
  let rec go acc =
    if st.tok = Token.BAR then begin
      advance st;
      go (parse_meqn st :: acc)
    end
    else List.rev acc
  in
  let eqns = go [ first ] in
  if st.tok = Token.SEMISEMI then advance st;
  {
    m_name;
    m_name_loc;
    m_tycon;
    m_tycon_loc;
    m_eqns = eqns;
    m_loc = loc_from st start;
  }

let parse_program st : program * decls =
  let rec go items types measures =
    match st.tok with
    | Token.EOF ->
        ( List.rev items,
          { types = List.rev types; measures = List.rev measures } )
    | Token.LET -> go (parse_item st :: items) types measures
    | Token.TYPE -> go items (parse_tydecl st :: types) measures
    | Token.MEASURE -> go items types (parse_measure st :: measures)
    | t ->
        error st
          (Printf.sprintf
             "expected a top-level 'let', 'type' or 'measure', found '%s'"
             (Token.to_string t))
  in
  go [] [] []

(* -- Entry points ---------------------------------------------------------- *)

let parse_lexbuf ~file lexbuf =
  let st = init file lexbuf in
  try parse_program st with
  | Lexer.Error (msg, pos) ->
      raise (Error (msg, Loc.of_lexing pos pos))

let parse_string ?(file = "<string>") s = parse_lexbuf ~file (Lexing.from_string s)

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse_lexbuf ~file:path (Lexing.from_channel ic))

let program_of_lexbuf ~file lexbuf = fst (parse_lexbuf ~file lexbuf)

let program_of_string ?(file = "<string>") s =
  fst (parse_string ~file s)

let program_of_file path = fst (parse_file path)

let expr_of_string ?(file = "<string>") s =
  let st = init file (Lexing.from_string s) in
  let e = parse_seq st in
  (match st.tok with
  | Token.EOF -> ()
  | t -> error st (Printf.sprintf "trailing token '%s'" (Token.to_string t)));
  e
