(** Tokens produced by the NanoML lexer. *)

type t =
  | INT of int
  | IDENT of string (* lowercase identifiers, possibly module-qualified *)
  | UIDENT of string (* capitalized identifiers: user constructors *)
  | TYPE
  | MEASURE
  | OF
  | LET
  | REC
  | IN
  | IF
  | THEN
  | ELSE
  | FUN
  | MATCH
  | WITH
  | ASSERT
  | TRUE
  | FALSE
  | NOT
  | MOD
  | BEGIN
  | END
  | ARROW (* -> *)
  | BAR (* | *)
  | AMPAMP (* && *)
  | BARBAR (* || *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EQ (* = *)
  | NE (* <> *)
  | LT
  | LE
  | GT
  | GE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | SEMI (* ; *)
  | SEMISEMI (* ;; *)
  | COLONCOLON (* :: *)
  | COMMA
  | UNDERSCORE
  | LARROW (* <- *)
  | DOTLPAREN (* .( *)
  | COLON (* : *)
  | LBRACE (* { *)
  | RBRACE (* } *)
  | TYVAR of string (* 'a *)
  | VAL (* val keyword, spec files *)
  | EOF

let to_string = function
  | INT n -> string_of_int n
  | IDENT s -> s
  | UIDENT s -> s
  | TYPE -> "type"
  | MEASURE -> "measure"
  | OF -> "of"
  | LET -> "let"
  | REC -> "rec"
  | IN -> "in"
  | IF -> "if"
  | THEN -> "then"
  | ELSE -> "else"
  | FUN -> "fun"
  | MATCH -> "match"
  | WITH -> "with"
  | ASSERT -> "assert"
  | TRUE -> "true"
  | FALSE -> "false"
  | NOT -> "not"
  | MOD -> "mod"
  | BEGIN -> "begin"
  | END -> "end"
  | ARROW -> "->"
  | BAR -> "|"
  | AMPAMP -> "&&"
  | BARBAR -> "||"
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | EQ -> "="
  | NE -> "<>"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | SEMISEMI -> ";;"
  | COLONCOLON -> "::"
  | COMMA -> ","
  | UNDERSCORE -> "_"
  | LARROW -> "<-"
  | DOTLPAREN -> ".("
  | COLON -> ":"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | TYVAR s -> "'" ^ s
  | VAL -> "val"
  | EOF -> "<eof>"
