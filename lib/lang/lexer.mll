{
(* Lexer for NanoML.  Produces {!Token.t} values; tracks line numbers in
   the lexbuf so the parser can build {!Liquid_common.Loc} spans.  Nested
   OCaml-style comments are supported. *)

open Token

exception Error of string * Lexing.position

let keyword_table =
  let tbl = Hashtbl.create 32 in
  List.iter (fun (k, v) -> Hashtbl.add tbl k v)
    [
      ("let", LET); ("rec", REC); ("in", IN); ("if", IF); ("then", THEN);
      ("else", ELSE); ("fun", FUN); ("match", MATCH); ("with", WITH);
      ("assert", ASSERT); ("true", TRUE); ("false", FALSE); ("not", NOT);
      ("mod", MOD); ("begin", BEGIN); ("end", END); ("val", VAL);
      ("type", TYPE); ("measure", MEASURE); ("of", OF);
    ];
  tbl
}

let digit = ['0'-'9']
let lower = ['a'-'z']
let upper = ['A'-'Z']
let idchar = ['a'-'z' 'A'-'Z' '0'-'9' '_' '\'']
let lident = (lower | '_') idchar*
let uident = upper idchar*
let qualified = uident '.' lident

rule token = parse
  | [' ' '\t' '\r']+      { token lexbuf }
  | '\n'                  { Lexing.new_line lexbuf; token lexbuf }
  | "(*"                  { comment 1 lexbuf; token lexbuf }
  | digit+ as n           { INT (int_of_string n) }
  | "_"                   { UNDERSCORE }
  | qualified as s        { IDENT s }
  | uident as s           { UIDENT s }
  | lident as s           {
      match Hashtbl.find_opt keyword_table s with
      | Some tok -> tok
      | None -> IDENT s }
  | "->"                  { ARROW }
  | "&&"                  { AMPAMP }
  | "||"                  { BARBAR }
  | "<-"                  { LARROW }
  | "<>"                  { NE }
  | "<="                  { LE }
  | ">="                  { GE }
  | "::"                  { COLONCOLON }
  | ":"                   { COLON }
  | "{"                   { LBRACE }
  | "}"                   { RBRACE }
  | "'" (lident as s)     { TYVAR s }
  | ";;"                  { SEMISEMI }
  | ".("                  { DOTLPAREN }
  | "|"                   { BAR }
  | "+"                   { PLUS }
  | "-"                   { MINUS }
  | "*"                   { STAR }
  | "/"                   { SLASH }
  | "="                   { EQ }
  | "<"                   { LT }
  | ">"                   { GT }
  | "("                   { LPAREN }
  | ")"                   { RPAREN }
  | "["                   { LBRACKET }
  | "]"                   { RBRACKET }
  | ";"                   { SEMI }
  | ","                   { COMMA }
  | eof                   { EOF }
  | _ as c                {
      raise (Error (Printf.sprintf "unexpected character %C" c,
                    Lexing.lexeme_start_p lexbuf)) }

and comment depth = parse
  | "(*"                  { comment (depth + 1) lexbuf }
  | "*)"                  { if depth > 1 then comment (depth - 1) lexbuf }
  | '\n'                  { Lexing.new_line lexbuf; comment depth lexbuf }
  | eof                   { raise (Error ("unterminated comment",
                                          Lexing.lexeme_start_p lexbuf)) }
  | _                     { comment depth lexbuf }
