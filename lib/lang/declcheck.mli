(** Semantic validation of [type]/[measure] declarations: duplicate or
    reserved names, unknown types/constructors, equation arity and
    totality, and structural recursion of measure bodies.  Reported as
    structured diagnostics with precise spans, never exceptions. *)

open Liquid_common

type diag = { code : string; message : string; loc : Loc.t }

val pp_diag : Format.formatter -> diag -> unit

(** All problems of a declaration unit, in source order. *)
val check : Ast.decls -> diag list
