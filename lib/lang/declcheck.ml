(** Semantic validation of [type] and [measure] declarations.

    The parser only enforces syntax; every name-level property of a
    declaration unit is checked here and reported as a structured
    diagnostic with a precise span — never an exception — so drivers can
    surface all problems at once.  The checks also establish exactly the
    invariants the measure table ({!Liquid_logic.Measure}) and the
    constraint generator rely on:

    - type names are unique and distinct from the built-in types;
    - constructor names are unique across the unit and their argument
      types exist;
    - a measure targets a declared ADT, covers {e every} constructor
      exactly once (totality is what makes the derived [m v >= 0]
      environment facts sound), binds the right number of arguments,
      and its equations are structurally recursive: measure
      applications only to direct constructor arguments of the measured
      (or another measured) datatype. *)

open Liquid_common
open Ast

type diag = { code : string; message : string; loc : Loc.t }

let pp_diag ppf d =
  Fmt.pf ppf "%a: %s [%s]" Loc.pp d.loc d.message d.code

(* Base types usable in constructor arguments. *)
let base_types = [ "int"; "bool"; "unit" ]

(* Type names that exist structurally in NanoML and cannot be redefined
   or measured through declarations. *)
let reserved_types = base_types @ [ "list"; "array" ]

let builtin_measures = [ "llen"; "len" ]

type argkind = Kint | Kother | Kadt of string | Kunknown

let check (decls : decls) : diag list =
  let diags = ref [] in
  let err code loc fmt =
    Fmt.kstr (fun message -> diags := { code; message; loc } :: !diags) fmt
  in
  (* -- types ------------------------------------------------------------ *)
  let types : (string, tydecl) Hashtbl.t = Hashtbl.create 8 in
  let ctors : (string, tydecl * ctor_decl) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (td : tydecl) ->
      if List.mem td.t_name reserved_types then
        err "D001" td.t_name_loc "type name '%s' is reserved" td.t_name
      else if Hashtbl.mem types td.t_name then
        err "D001" td.t_name_loc "duplicate type declaration '%s'" td.t_name
      else Hashtbl.add types td.t_name td;
      List.iter
        (fun (c : ctor_decl) ->
          (match Hashtbl.find_opt ctors c.c_name with
          | Some (other, _) ->
              err "D003" c.c_loc
                "duplicate constructor '%s' (already declared by type '%s')"
                c.c_name other.t_name
          | None -> Hashtbl.add ctors c.c_name (td, c));
          List.iter
            (fun (ty : tyexpr) ->
              if
                not
                  (List.mem ty.ty_name base_types
                  || ty.ty_name = td.t_name
                  || List.exists (fun (d : tydecl) -> d.t_name = ty.ty_name)
                       decls.types)
              then
                err "D002" ty.ty_loc
                  "unknown type '%s' in constructor '%s'" ty.ty_name c.c_name)
            c.c_args)
        td.t_ctors)
    decls.types;
  (* -- measures --------------------------------------------------------- *)
  (* measure name -> measured type, for the whole unit (forward
     references between measures are allowed) *)
  let measure_tycons : (string, string) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (b, t) -> Hashtbl.add measure_tycons b t)
    [ ("llen", "list"); ("len", "array") ];
  List.iter
    (fun (m : measure_decl) ->
      if Hashtbl.mem measure_tycons m.m_name then ()
      else Hashtbl.add measure_tycons m.m_name m.m_tycon)
    decls.measures;
  let seen_measures : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (m : measure_decl) ->
      if List.mem m.m_name builtin_measures || List.mem m.m_name [ "max"; "min" ]
      then
        err "D011" m.m_name_loc "measure name '%s' is reserved" m.m_name
      else if Hashtbl.mem seen_measures m.m_name then
        err "D011" m.m_name_loc "duplicate measure '%s'" m.m_name
      else Hashtbl.add seen_measures m.m_name ();
      let td = Hashtbl.find_opt types m.m_tycon in
      (match td with
      | None ->
          err "D004" m.m_tycon_loc
            "measure '%s' is over '%s', which is not a declared datatype"
            m.m_name m.m_tycon
      | Some _ -> ());
      (* equations *)
      let seen_eqns : (string, unit) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun (eq : meqn) ->
          let cd =
            match td with
            | None -> None
            | Some td ->
                List.find_opt
                  (fun (c : ctor_decl) -> c.c_name = eq.eq_ctor)
                  td.t_ctors
          in
          (match (td, cd) with
          | Some td, None ->
              err "D005" eq.eq_ctor_loc
                "unknown constructor '%s' in measure '%s' ('%s' has no such \
                 constructor)"
                eq.eq_ctor m.m_name td.t_name
          | _ -> ());
          if Hashtbl.mem seen_eqns eq.eq_ctor then
            err "D006" eq.eq_ctor_loc
              "duplicate equation for constructor '%s' in measure '%s'"
              eq.eq_ctor m.m_name
          else Hashtbl.add seen_eqns eq.eq_ctor ();
          (* binder environment for the body *)
          let kinds : (string, argkind) Hashtbl.t = Hashtbl.create 8 in
          (match cd with
          | Some cd ->
              if List.length eq.eq_args <> List.length cd.c_args then
                err "D008" eq.eq_loc
                  "constructor '%s' has %d argument(s) but the equation binds \
                   %d"
                  eq.eq_ctor (List.length cd.c_args) (List.length eq.eq_args)
              else
                List.iter2
                  (fun (name, _) (ty : tyexpr) ->
                    match name with
                    | None -> ()
                    | Some x ->
                        let k =
                          if ty.ty_name = "int" then Kint
                          else if Hashtbl.mem types ty.ty_name then
                            Kadt ty.ty_name
                          else if List.mem ty.ty_name base_types then Kother
                          else Kunknown
                        in
                        Hashtbl.replace kinds x k)
                  eq.eq_args cd.c_args
          | None ->
              (* constructor unknown: treat binders as unknown so the body
                 check does not cascade *)
              List.iter
                (fun (name, _) ->
                  match name with
                  | None -> ()
                  | Some x -> Hashtbl.replace kinds x Kunknown)
                eq.eq_args);
          (* body: an integer term; measure applications only to direct
             constructor arguments of a measured datatype *)
          let rec go (t : mterm) =
            match t with
            | Mint _ -> ()
            | Mvar (x, loc) -> (
                match Hashtbl.find_opt kinds x with
                | None ->
                    err "D009" loc
                      "unknown variable '%s' in measure body (not an argument \
                       of '%s')"
                      x eq.eq_ctor
                | Some Kint | Some Kunknown -> ()
                | Some (Kadt ty) ->
                    err "D013" loc
                      "argument '%s' has type '%s'; apply a measure to use it \
                       in an integer body"
                      x ty
                | Some Kother ->
                    err "D013" loc
                      "argument '%s' cannot appear in an integer measure body"
                      x)
            | Mcall (f, loc, args) when f = "max" || f = "min" ->
                if List.length args <> 2 then
                  err "D012" loc "'%s' expects 2 arguments, got %d" f
                    (List.length args)
                else List.iter go args
            | Mcall (f, loc, args) -> (
                match Hashtbl.find_opt measure_tycons f with
                | None -> err "D011" loc "unknown measure '%s'" f
                | Some f_ty -> (
                    match args with
                    | [ Mvar (x, xloc) ] -> (
                        match Hashtbl.find_opt kinds x with
                        | None ->
                            err "D009" xloc
                              "unknown variable '%s' in measure body (not an \
                               argument of '%s')"
                              x eq.eq_ctor
                        | Some (Kadt ty) ->
                            if ty <> f_ty then
                              err "D010" xloc
                                "measure '%s' is over '%s' but '%s' has type \
                                 '%s'"
                                f f_ty x ty
                        | Some Kunknown -> ()
                        | Some _ ->
                            err "D010" xloc
                              "measure '%s' must be applied to a constructor \
                               argument of type '%s'"
                              f f_ty)
                    | _ ->
                        err "D010" loc
                          "non-structural recursion: measure '%s' must be \
                           applied to a direct constructor argument"
                          f))
            | Mneg a -> go a
            | Madd (a, b) | Msub (a, b) | Mmul (a, b) ->
                go a;
                go b
          in
          go eq.eq_body)
        m.m_eqns;
      (* totality: every constructor needs an equation — the derived
         non-negativity facts are only sound for total measures *)
      match td with
      | Some td ->
          List.iter
            (fun (c : ctor_decl) ->
              if
                not
                  (List.exists (fun (e : meqn) -> e.eq_ctor = c.c_name) m.m_eqns)
              then
                err "D007" m.m_loc
                  "measure '%s' is missing an equation for constructor '%s'"
                  m.m_name c.c_name)
            td.t_ctors
      | None -> ())
    decls.measures;
  List.rev !diags
