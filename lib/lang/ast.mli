(** Abstract syntax of NanoML (see the parser for the surface
    desugarings).  Every expression node carries a unique id so later
    passes can attach information in side tables. *)

open Liquid_common

type const = Cint of int | Cbool of bool | Cunit

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type unop = Neg | Not

type rec_flag = Nonrec | Rec

type pat =
  | Pwild
  | Pvar of Ident.t
  | Punit
  | Pbool of bool
  | Pint of int
  | Ptuple of pat list
  | Pnil
  | Pcons of pat * pat
  | Pconstr of string * pat list

type expr = { id : int; loc : Loc.t; desc : desc }

and desc =
  | Const of const
  | Var of Ident.t
  | Fun of Ident.t * expr
  | App of expr * expr
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | If of expr * expr * expr
  | Let of rec_flag * Ident.t * expr * expr
  | Tuple of expr list
  | Nil
  | Cons of expr * expr
  | Match of expr * (pat * expr) list
  | Assert of expr
  | Constr of string * expr list (* saturated user-constructor application *)

(** A top-level binding. *)
type item = {
  item_loc : Loc.t;
  rec_flag : rec_flag;
  name : Ident.t;
  body : expr;
}

type program = item list

(** A type expression in a constructor declaration: [int], [bool],
    [unit], or an ADT name. *)
type tyexpr = { ty_name : string; ty_loc : Loc.t }

type ctor_decl = { c_name : string; c_loc : Loc.t; c_args : tyexpr list }

(** [type t = C1 of ty * … | C2 | …] *)
type tydecl = {
  t_name : string;
  t_name_loc : Loc.t;
  t_ctors : ctor_decl list;
  t_loc : Loc.t;
}

(** Measure-equation right-hand sides ([Mcall] also covers [max]/[min]). *)
type mterm =
  | Mint of int
  | Mvar of string * Loc.t
  | Mcall of string * Loc.t * mterm list
  | Mneg of mterm
  | Madd of mterm * mterm
  | Msub of mterm * mterm
  | Mmul of mterm * mterm

(** One structurally recursive equation; argument binders are [None]
    for [_]. *)
type meqn = {
  eq_ctor : string;
  eq_ctor_loc : Loc.t;
  eq_args : (string option * Loc.t) list;
  eq_body : mterm;
  eq_loc : Loc.t;
}

(** [measure m : t = | C1 … -> … | …] *)
type measure_decl = {
  m_name : string;
  m_name_loc : Loc.t;
  m_tycon : string;
  m_tycon_loc : Loc.t;
  m_eqns : meqn list;
  m_loc : Loc.t;
}

(** Declarations of a compilation unit, in source order per kind. *)
type decls = { types : tydecl list; measures : measure_decl list }

val no_decls : decls

(** Construct a node with a fresh id. *)
val mk : ?loc:Loc.t -> desc -> expr

val pat_vars : pat -> Ident.t list

(** Fold over all sub-expressions, top-down. *)
val fold : ('a -> expr -> 'a) -> 'a -> expr -> 'a

(** Number of expression nodes. *)
val size : expr -> int

val free_vars : expr -> Ident.Set.t

val pp_const : Format.formatter -> const -> unit
val binop_name : binop -> string
val pp_pat : Format.formatter -> pat -> unit
val pp : Format.formatter -> expr -> unit
val pp_item : Format.formatter -> item -> unit
val pp_program : Format.formatter -> program -> unit
