(** Abstract syntax of NanoML, the core-ML source language of the
    reproduction.

    NanoML is the λL calculus of the paper fleshed out with the features
    its benchmark suite needs: integers, booleans, unit, tuples, lists,
    arrays (via refined primitives), higher-order functions, conditionals,
    (recursive) let bindings with ML-style polymorphism, pattern matching
    and assertions.

    Design notes:
    - [&&]/[||] are desugared by the parser into [if] so the refinement
      system gets their path-sensitivity for free;
    - array accesses [a.(i)] and updates [a.(i) <- e] are desugared into
      applications of the refined primitives [Array.get]/[Array.set]
      (see {!Prim});
    - sequencing [e1; e2] desugars into [let _ = e1 in e2];
    - every expression node carries a unique id so later passes can attach
      information in side tables without mutating the AST. *)

open Liquid_common

type const = Cint of int | Cbool of bool | Cunit

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type unop = Neg | Not

type rec_flag = Nonrec | Rec

type pat =
  | Pwild
  | Pvar of Ident.t
  | Punit
  | Pbool of bool
  | Pint of int
  | Ptuple of pat list
  | Pnil
  | Pcons of pat * pat
  | Pconstr of string * pat list

type expr = { id : int; loc : Loc.t; desc : desc }

and desc =
  | Const of const
  | Var of Ident.t
  | Fun of Ident.t * expr
  | App of expr * expr
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | If of expr * expr * expr
  | Let of rec_flag * Ident.t * expr * expr
  | Tuple of expr list
  | Nil
  | Cons of expr * expr
  | Match of expr * (pat * expr) list
  | Assert of expr
  | Constr of string * expr list (* saturated user-constructor application *)

(** A program is a list of top-level bindings, each a name bound to an
    expression, followed by an optional anonymous "main" expression list
    (top-level [let _ = e] or [let () = e] items). *)
type item = { item_loc : Loc.t; rec_flag : rec_flag; name : Ident.t; body : expr }

type program = item list

(* -- Declarations ----------------------------------------------------- *)

(** A type expression in a constructor declaration: [int], [bool],
    [unit], or the name of a (possibly recursively occurring) ADT. *)
type tyexpr = { ty_name : string; ty_loc : Loc.t }

type ctor_decl = { c_name : string; c_loc : Loc.t; c_args : tyexpr list }

(** [type t = C1 of ty * … | C2 | …] *)
type tydecl = {
  t_name : string;
  t_name_loc : Loc.t;
  t_ctors : ctor_decl list;
  t_loc : Loc.t;
}

(** Right-hand sides of measure equations: integer terms over the
    equation's binders, measure applications ([Mcall] also covers the
    built-in [max]/[min]), and arithmetic. *)
type mterm =
  | Mint of int
  | Mvar of string * Loc.t
  | Mcall of string * Loc.t * mterm list
  | Mneg of mterm
  | Madd of mterm * mterm
  | Msub of mterm * mterm
  | Mmul of mterm * mterm

(** [| C (x, …) -> body] — one structurally recursive equation.
    Argument binders are [None] for [_]. *)
type meqn = {
  eq_ctor : string;
  eq_ctor_loc : Loc.t;
  eq_args : (string option * Loc.t) list;
  eq_body : mterm;
  eq_loc : Loc.t;
}

(** [measure m : t = | C1 … -> … | C2 … -> …] *)
type measure_decl = {
  m_name : string;
  m_name_loc : Loc.t;
  m_tycon : string;
  m_tycon_loc : Loc.t;
  m_eqns : meqn list;
  m_loc : Loc.t;
}

(** The declarations of a compilation unit, in source order within each
    kind.  Declarations scope over the whole program. *)
type decls = { types : tydecl list; measures : measure_decl list }

let no_decls = { types = []; measures = [] }

(* -- Construction ---------------------------------------------------- *)

let next_id = ref 0

let mk ?(loc = Loc.dummy) desc =
  incr next_id;
  { id = !next_id; loc; desc }

(* -- Pattern helpers -------------------------------------------------- *)

let rec pat_vars = function
  | Pwild | Punit | Pbool _ | Pint _ | Pnil -> []
  | Pvar x -> [ x ]
  | Ptuple ps | Pconstr (_, ps) -> List.concat_map pat_vars ps
  | Pcons (p1, p2) -> pat_vars p1 @ pat_vars p2

(* -- Traversal --------------------------------------------------------- *)

(** Fold over all sub-expressions, top-down. *)
let rec fold f acc e =
  let acc = f acc e in
  match e.desc with
  | Const _ | Var _ | Nil -> acc
  | Fun (_, e1) | Unop (_, e1) | Assert e1 -> fold f acc e1
  | App (e1, e2) | Binop (_, e1, e2) | Cons (e1, e2) | Let (_, _, e1, e2) ->
      fold f (fold f acc e1) e2
  | If (e1, e2, e3) -> fold f (fold f (fold f acc e1) e2) e3
  | Tuple es | Constr (_, es) -> List.fold_left (fold f) acc es
  | Match (e1, cases) ->
      List.fold_left (fun acc (_, e) -> fold f acc e) (fold f acc e1) cases

(** Number of expression nodes (used for statistics). *)
let size e = fold (fun n _ -> n + 1) 0 e

(** Free variables of an expression. *)
let free_vars e =
  let rec go bound acc e =
    match e.desc with
    | Const _ | Nil -> acc
    | Var x -> if Ident.Set.mem x bound then acc else Ident.Set.add x acc
    | Fun (x, e1) -> go (Ident.Set.add x bound) acc e1
    | App (e1, e2) | Binop (_, e1, e2) | Cons (e1, e2) ->
        go bound (go bound acc e1) e2
    | Unop (_, e1) | Assert e1 -> go bound acc e1
    | If (e1, e2, e3) -> go bound (go bound (go bound acc e1) e2) e3
    | Let (Nonrec, x, e1, e2) ->
        go (Ident.Set.add x bound) (go bound acc e1) e2
    | Let (Rec, x, e1, e2) ->
        let bound = Ident.Set.add x bound in
        go bound (go bound acc e1) e2
    | Tuple es | Constr (_, es) -> List.fold_left (go bound) acc es
    | Match (e1, cases) ->
        List.fold_left
          (fun acc (p, e) ->
            let bound =
              List.fold_left (fun b x -> Ident.Set.add x b) bound (pat_vars p)
            in
            go bound acc e)
          (go bound acc e1) cases
  in
  go Ident.Set.empty Ident.Set.empty e

(* -- Printing ----------------------------------------------------------- *)

let pp_const ppf = function
  | Cint n -> Fmt.int ppf n
  | Cbool b -> Fmt.bool ppf b
  | Cunit -> Fmt.string ppf "()"

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "mod"
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec pp_pat ppf = function
  | Pwild -> Fmt.string ppf "_"
  | Pvar x -> Ident.pp ppf x
  | Punit -> Fmt.string ppf "()"
  | Pbool b -> Fmt.bool ppf b
  | Pint n -> Fmt.int ppf n
  | Ptuple ps -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:comma pp_pat) ps
  | Pnil -> Fmt.string ppf "[]"
  | Pcons (p1, p2) -> Fmt.pf ppf "%a :: %a" pp_pat p1 pp_pat p2
  | Pconstr (c, []) -> Fmt.string ppf c
  | Pconstr (c, ps) ->
      Fmt.pf ppf "%s (%a)" c Fmt.(list ~sep:comma pp_pat) ps

let rec pp ppf e =
  match e.desc with
  | Const c -> pp_const ppf c
  | Var x -> Ident.pp ppf x
  | Fun (x, e) -> Fmt.pf ppf "(fun %a -> %a)" Ident.pp x pp e
  | App (e1, e2) -> Fmt.pf ppf "(%a %a)" pp e1 pp e2
  | Binop (op, e1, e2) ->
      Fmt.pf ppf "(%a %s %a)" pp e1 (binop_name op) pp e2
  | Unop (Neg, e) -> Fmt.pf ppf "(- %a)" pp e
  | Unop (Not, e) -> Fmt.pf ppf "(not %a)" pp e
  | If (e1, e2, e3) ->
      Fmt.pf ppf "@[<hv>(if %a@ then %a@ else %a)@]" pp e1 pp e2 pp e3
  | Let (rf, x, e1, e2) ->
      Fmt.pf ppf "@[<v>let%s %a = %a in@ %a@]"
        (match rf with Rec -> " rec" | Nonrec -> "")
        Ident.pp x pp e1 pp e2
  | Tuple es -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:comma pp) es
  | Nil -> Fmt.string ppf "[]"
  | Cons (e1, e2) -> Fmt.pf ppf "(%a :: %a)" pp e1 pp e2
  | Match (e, cases) ->
      let pp_case ppf (p, e) = Fmt.pf ppf "| %a -> %a" pp_pat p pp e in
      Fmt.pf ppf "@[<v>(match %a with@ %a)@]" pp e
        Fmt.(list ~sep:sp pp_case)
        cases
  | Assert e -> Fmt.pf ppf "(assert %a)" pp e
  | Constr (c, []) -> Fmt.string ppf c
  | Constr (c, es) -> Fmt.pf ppf "%s (%a)" c Fmt.(list ~sep:comma pp) es

let pp_item ppf { rec_flag; name; body; _ } =
  Fmt.pf ppf "@[<v>let%s %a = %a@]"
    (match rec_flag with Rec -> " rec" | Nonrec -> "")
    Ident.pp name pp body

let pp_program ppf items = Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:(any "@,@,") pp_item) items
