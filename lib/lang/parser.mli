(** Recursive-descent parser for NanoML.  Performs the surface
    desugarings ([&&]/[||] to [if], sequencing to [let _], array sugar to
    [Array.get]/[Array.set] applications, multi-parameter and
    pattern-binding [let]s, list literals). *)

open Liquid_common

exception Error of string * Loc.t

(** Parse a whole compilation unit: top-level [let] items interleaved
    with [type] and [measure] declarations.  Declarations are collected
    into {!Ast.decls} (source order per kind) and are only checked
    syntactically here — semantic validation (unknown constructors,
    non-structural recursion, …) is {!Declcheck.check}.
    @raise Error on syntax errors (lexer errors are re-raised as [Error]
    by the file/string entry points). *)
val parse_lexbuf : file:string -> Lexing.lexbuf -> Ast.program * Ast.decls

val parse_string : ?file:string -> string -> Ast.program * Ast.decls
val parse_file : string -> Ast.program * Ast.decls

(** The item-only views ([fst] of the above) — convenient for
    declaration-free programs. *)
val program_of_lexbuf : file:string -> Lexing.lexbuf -> Ast.program

val program_of_string : ?file:string -> string -> Ast.program
val program_of_file : string -> Ast.program

(** Parse a single expression (for tests and tools).
    @raise Error on trailing input. *)
val expr_of_string : ?file:string -> string -> Ast.expr
