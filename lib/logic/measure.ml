(** The measure table: structurally recursive functions on algebraic
    data, lifted into the refinement logic as uninterpreted function
    symbols with one defining axiom per constructor.

    A measure [m] over a datatype [t] gives one equation per constructor
    of [t]; the right-hand side is built from integer literals, the
    constructor's own arguments, measure applications to those arguments
    (structural recursion), arithmetic, and [max]/[min].  At every
    constructor application and every match arm the constraint generator
    asks this table for the corresponding instantiated axiom
    [m(v) = body] and adds it to the refinement environment — the only
    thing the solver ever learns about [m].

    The built-in list-length measure [llen] is the first entry of the
    table (equations [llen [] = 0] and [llen (h::t) = llen t + 1]); the
    array measure [len] is an axiom-free entry (arrays have no surface
    constructors — [len] facts come from the refined primitives).  User
    measures from [measure] declarations are registered per run via
    {!register} and cleared by {!reset}.

    [max]/[min] are not symbols of the EUFA logic; axioms containing
    them are lowered at instantiation time into guarded linear cases
    (e.g. [m v = 1 + max(a,b)] becomes
    [(a >= b -> m v = 1 + a) && (a < b -> m v = 1 + b)]). *)

type body =
  | Cint of int
  | Carg of int (* integer-sorted constructor argument, by position *)
  | Capp of string * int (* measure applied to the argument at a position *)
  | Cneg of body
  | Cadd of body * body
  | Csub of body * body
  | Cmul of body * body
  | Cmax of body * body
  | Cmin of body * body

type eqn = { ctor : string; arity : int; body : body }

type t = {
  name : string;
  sym : Symbol.t;
  tycon : string;
  eqns : eqn list;
  nonneg : bool; (* provably [m v >= 0] for every value, by induction *)
  builtin : bool;
}

(* Registration order is the iteration order everywhere below — the
   solver pipeline depends on deterministic fact ordering. *)
let table : (string, t) Hashtbl.t = Hashtbl.create 16
let order : t list ref = ref []

let find name = Hashtbl.find_opt table name

let all () = List.rev !order

let measures_on tycon =
  List.filter (fun m -> String.equal m.tycon tycon) (all ())

let user_measures () = List.filter (fun m -> not m.builtin) (all ())

(* A measure is non-negative when every equation body is, granting the
   induction hypothesis that recursive applications of the measure
   itself (and previously registered non-negative measures) are
   non-negative.  Base constructors have no recursive applications, so
   the induction is well-founded. *)
let rec body_nonneg self = function
  | Cint n -> n >= 0
  | Carg _ -> false
  | Capp (m, _) -> (
      String.equal m self
      || match find m with Some mt -> mt.nonneg | None -> false)
  | Cneg _ | Csub _ -> false
  | Cadd (a, b) | Cmul (a, b) | Cmin (a, b) ->
      body_nonneg self a && body_nonneg self b
  | Cmax (a, b) -> body_nonneg self a || body_nonneg self b

let register_gen ~builtin ~name ~tycon eqns =
  (match find name with
  | Some existing when builtin && existing.builtin -> ()
  | Some _ -> invalid_arg (Printf.sprintf "Measure.register: duplicate measure %s" name)
  | None -> ());
  let sym = Symbol.declare_measure name in
  let nonneg =
    eqns <> [] && List.for_all (fun e -> body_nonneg name e.body) eqns
  in
  let m = { name; sym; tycon; eqns; nonneg; builtin } in
  Hashtbl.replace table name m;
  order := m :: !order;
  m

let register ~name ~tycon eqns = register_gen ~builtin:false ~name ~tycon eqns

let reset () =
  let keep = List.filter (fun m -> m.builtin) (all ()) in
  Hashtbl.reset table;
  order := [];
  List.iter
    (fun m ->
      Hashtbl.replace table m.name m;
      order := m :: !order)
    keep

(* Built-in entries: the first rows of the table. *)
let llen =
  register_gen ~builtin:true ~name:"llen" ~tycon:"list"
    [
      { ctor = "[]"; arity = 0; body = Cint 0 };
      { ctor = "::"; arity = 2; body = Cadd (Capp ("llen", 1), Cint 1) };
    ]

(* [len] has no surface constructors, so no equations: its defining
   facts come from the refined array primitives.  Its non-negativity is
   intrinsic, hence the override. *)
let len =
  let m = register_gen ~builtin:true ~name:"len" ~tycon:"array" [] in
  let m = { m with nonneg = true } in
  Hashtbl.replace table m.name m;
  order := m :: List.filter (fun o -> not (String.equal o.name m.name)) !order;
  m

(* -- Term/axiom construction ---------------------------------------------- *)

(** [app name t] — apply the measure [name] to an [Obj]-sorted term.
    @raise Invalid_argument if no such measure is registered. *)
let app name t =
  match find name with
  | Some m -> Term.app m.sym [ t ]
  | None -> invalid_arg (Printf.sprintf "Measure.app: unknown measure %s" name)

(** [m v >= 0] when the measure is provably non-negative. *)
let nonneg_fact m v = if m.nonneg then Some (Pred.ge (Term.app m.sym [ v ]) (Term.int 0)) else None

exception Missing_arg

(* Lower a body to guarded linear cases: a list of (guards, term) pairs
   whose guards are exhaustive and mutually ordered ([max]/[min] split
   on [>=] vs [<]).  Raises [Missing_arg] when the body needs a
   constructor argument the caller could not supply. *)
let rec cases (args : Term.t option list) = function
  | Cint n -> [ ([], Term.int n) ]
  | Carg i -> (
      match List.nth_opt args i with
      | Some (Some t) -> [ ([], t) ]
      | _ -> raise Missing_arg)
  | Capp (name, i) -> (
      match (find name, List.nth_opt args i) with
      | Some m, Some (Some t) -> [ ([], Term.app m.sym [ t ]) ]
      | _ -> raise Missing_arg)
  | Cneg b -> List.map (fun (g, t) -> (g, Term.neg t)) (cases args b)
  | Cadd (a, b) -> cross args Term.add a b
  | Csub (a, b) -> cross args Term.sub a b
  | Cmul (a, b) -> cross args Term.mul a b
  | Cmax (a, b) -> split args ~ge_wins:true a b
  | Cmin (a, b) -> split args ~ge_wins:false a b

and cross args f a b =
  let ca = cases args a and cb = cases args b in
  List.concat_map
    (fun (ga, ta) -> List.map (fun (gb, tb) -> (ga @ gb, f ta tb)) cb)
    ca

and split args ~ge_wins a b =
  let ca = cases args a and cb = cases args b in
  List.concat_map
    (fun (ga, ta) ->
      List.concat_map
        (fun (gb, tb) ->
          let g = ga @ gb in
          [
            (g @ [ Pred.ge ta tb ], if ge_wins then ta else tb);
            (g @ [ Pred.lt ta tb ], if ge_wins then tb else ta);
          ])
        cb)
    ca

(** [ctor_axiom m ~ctor ~value ~args] — the instantiated defining axiom
    [m(value) = body] for an application of [ctor] to [args] ([None] for
    arguments whose logical value is unavailable, e.g. boolean payloads).
    Returns [None] when the constructor has no equation or the body
    needs an unavailable argument. *)
let ctor_axiom m ~ctor ~(value : Term.t) ~(args : Term.t option list) =
  match List.find_opt (fun e -> String.equal e.ctor ctor) m.eqns with
  | None -> None
  | Some e -> (
      let lhs = Term.app m.sym [ value ] in
      try
        match cases args e.body with
        | [ ([], t) ] -> Some (Pred.eq lhs t)
        | cs ->
            Some
              (Pred.conj
                 (List.map (fun (g, t) -> Pred.imp (Pred.conj g) (Pred.eq lhs t)) cs))
      with Missing_arg -> None)

(** All instantiated axioms for one constructor application, in
    registration order over the measures of [tycon]. *)
let ctor_axioms ~tycon ~ctor ~value ~args =
  List.filter_map (fun m -> ctor_axiom m ~ctor ~value ~args) (measures_on tycon)

let pp_body ppf b =
  let rec go ppf = function
    | Cint n -> Fmt.int ppf n
    | Carg i -> Fmt.pf ppf "$%d" i
    | Capp (m, i) -> Fmt.pf ppf "%s $%d" m i
    | Cneg b -> Fmt.pf ppf "(- %a)" go b
    | Cadd (a, b) -> Fmt.pf ppf "(%a + %a)" go a go b
    | Csub (a, b) -> Fmt.pf ppf "(%a - %a)" go a go b
    | Cmul (a, b) -> Fmt.pf ppf "(%a * %a)" go a go b
    | Cmax (a, b) -> Fmt.pf ppf "(max %a %a)" go a go b
    | Cmin (a, b) -> Fmt.pf ppf "(min %a %a)" go a go b
  in
  go ppf b

let pp_eqn ppf e = Fmt.pf ppf "%s/%d=%a" e.ctor e.arity pp_body e.body

let pp ppf m =
  Fmt.pf ppf "measure %s : %s =%a" m.name m.tycon
    (Fmt.list ~sep:Fmt.nop (fun ppf e ->
         Fmt.pf ppf "@ | %s/%d -> %a" e.ctor e.arity pp_body e.body))
    m.eqns

(** Stable digest of a measure's definition, for cache keys. *)
let fingerprint m =
  Fmt.str "%s:%s:%b:%a" m.name m.tycon m.nonneg
    (Fmt.list ~sep:(Fmt.any ";") pp_eqn)
    m.eqns
