(** Uninterpreted function symbols of the refinement logic.

    The logic of the paper is the quantifier-free theory of equality,
    linear arithmetic and uninterpreted functions (EUFA).  Uninterpreted
    symbols let refinements speak about opaque properties of [Obj]-sorted
    values.  The two symbols DSOLVE relies on are:

    - [len : Obj -> Int] — the length of an array (the output type of
      [Array.make] is refined with [len ν = n] and the array-access
      primitives demand [0 <= i < len a]);
    - [mul : Int * Int -> Int] — non-linear multiplication, which falls
      outside linear arithmetic and is therefore treated as an
      uninterpreted function (sound, incomplete).

    Additional symbols (e.g. measures on user data types) can be
    registered by extensions. *)

type t = { name : string; signature : Sort.signature }

let table : (string, t) Hashtbl.t = Hashtbl.create 16

let declare name signature =
  match Hashtbl.find_opt table name with
  | Some existing ->
      if existing.signature = signature then existing
      else
        invalid_arg
          (Printf.sprintf "Symbol.declare: %s redeclared with a new signature"
             name)
  | None ->
      let s = { name; signature } in
      Hashtbl.add table name s;
      s

let find_opt name = Hashtbl.find_opt table name

(* Names registered as measures: unary [Obj -> Int] symbols whose
   applications the theory layer and counterexample labels treat as
   meaningful observations of opaque values (rather than noise to be
   scrubbed).  The set only grows — measure-ness is a property of the
   name, and signatures are pinned to [Obj -> Int] by [declare]. *)
let measure_names : (string, unit) Hashtbl.t = Hashtbl.create 16

let measure_signature : Sort.signature = { args = [ Sort.Obj ]; result = Sort.Int }

let declare_measure name =
  let s = declare name measure_signature in
  if not (Hashtbl.mem measure_names name) then Hashtbl.add measure_names name ();
  s

let is_measure_name name = Hashtbl.mem measure_names name

let name t = t.name
let signature t = t.signature
let arity t = List.length t.signature.args
let result_sort t = t.signature.result

let equal a b = String.equal a.name b.name
let compare a b = String.compare a.name b.name
let hash t = Hashtbl.hash t.name

let pp ppf t = Fmt.string ppf t.name

(* Built-in symbols. *)

(** Array length. *)
let len = declare_measure "len"

(** List length measure (the PLDI'09 follow-up extension): [Nil] has
    [llen = 0], [Cons] adds one, and match cases learn the corresponding
    facts about their scrutinee. *)
let llen = declare_measure "llen"

(** Non-linear integer multiplication, left uninterpreted. *)
let mul = declare "mul" { args = [ Sort.Int; Sort.Int ]; result = Sort.Int }

(** Non-linear / non-constant integer division, left uninterpreted. *)
let div = declare "div" { args = [ Sort.Int; Sort.Int ]; result = Sort.Int }

(** Integer remainder, left uninterpreted (refined at the type level). *)
let imod = declare "mod" { args = [ Sort.Int; Sort.Int ]; result = Sort.Int }
