(** Predicates (quantifier-free formulas) of the refinement logic.

    A refinement predicate is a boolean combination of:
    - arithmetic/equality atoms between {!Term}s,
    - boolean program variables ([Bvar]),
    - the constants [True]/[False].

    Boolean-sorted program values never appear inside terms; equality of
    boolean expressions is expressed with [Iff].  This keeps the term
    language two-sorted (Int/Obj) and the SMT theory layer simple.

    Like {!Term}s, predicates are {e hash-consed}: structural equality is
    physical equality, [compare] is a constant-time id comparison, and
    each node memoizes its hash and free-variable set.  The SMT result
    cache and the propositional atom table key on the interning id, and
    hypothesis relevance pruning reuses the memoized free variables. *)

open Liquid_common

type brel = Eq | Ne | Lt | Le | Gt | Ge

type t = {
  node : node;
  tag : int; (* unique interning id; allocation order *)
  hkey : int; (* structural hash, memoized *)
  mutable fvs : (Ident.t * Sort.t) list option; (* free vars, memoized *)
}

and node =
  | True
  | False
  | Atom of Term.t * brel * Term.t
  | Bvar of Ident.t (* boolean program variable, as a proposition *)
  | Not of t
  | And of t list
  | Or of t list
  | Imp of t * t
  | Iff of t * t

(* ------------------------------------------------------------------ *)
(* Interning                                                           *)
(* ------------------------------------------------------------------ *)

let brel_compare (a : brel) (b : brel) = Stdlib.compare a b

module Node = struct
  type nonrec t = node

  let equal n1 n2 =
    match (n1, n2) with
    | True, True | False, False -> true
    | Atom (t1, r, t2), Atom (u1, s, u2) ->
        Term.equal t1 u1 && r = s && Term.equal t2 u2
    | Bvar x, Bvar y -> Ident.equal x y
    | Not p, Not q -> p == q
    | And ps, And qs | Or ps, Or qs ->
        List.length ps = List.length qs
        && List.for_all2 (fun a b -> a == b) ps qs
    | Imp (p1, p2), Imp (q1, q2) | Iff (p1, p2), Iff (q1, q2) ->
        p1 == q1 && p2 == q2
    | _ -> false

  let mix h k = ((h * 31) + k) land max_int

  let hash = function
    | True -> 3
    | False -> 5
    | Atom (a, r, b) -> mix 7 (mix (Term.hash a) (mix (Hashtbl.hash r) (Term.hash b)))
    | Bvar x -> mix 11 (Ident.hash x)
    | Not p -> mix 13 p.hkey
    | And ps -> List.fold_left (fun h p -> mix h p.hkey) 17 ps
    | Or ps -> List.fold_left (fun h p -> mix h p.hkey) 19 ps
    | Imp (p, q) -> mix 23 (mix p.hkey q.hkey)
    | Iff (p, q) -> mix 29 (mix p.hkey q.hkey)
end

module H = Hashtbl.Make (Node)

let table : t H.t = H.create 4096

let counter = ref 0

(** Intern a node verbatim (no simplification). *)
let make (node : node) : t =
  match H.find_opt table node with
  | Some p -> p
  | None ->
      incr counter;
      let p = { node; tag = !counter; hkey = Node.hash node; fvs = None } in
      H.add table node p;
      p

let view p = p.node
let tag p = p.tag
let hash p = p.hkey

(** Number of distinct live predicate nodes (observability). *)
let interned_count () = !counter

let equal (a : t) (b : t) = a == b
let compare (a : t) (b : t) = Stdlib.Int.compare a.tag b.tag

(** Re-interning for predicates built in another heap (unmarshalled from
    a worker process); see {!Term.rehasher} for the contract.  Nodes are
    rebuilt verbatim through {!make} — not the smart constructors — so
    the local predicate is byte-identical in structure to the foreign
    one. *)
let rehasher () : t -> t =
  let tgo = Term.rehasher () in
  let memo : (int, t) Hashtbl.t = Hashtbl.create 256 in
  let rec go p =
    match Hashtbl.find_opt memo p.tag with
    | Some q -> q
    | None ->
        let node =
          match p.node with
          | True -> True
          | False -> False
          | Atom (a, r, b) -> Atom (tgo a, r, tgo b)
          | Bvar x -> Bvar x
          | Not q -> Not (go q)
          | And qs -> And (List.map go qs)
          | Or qs -> Or (List.map go qs)
          | Imp (a, b) -> Imp (go a, go b)
          | Iff (a, b) -> Iff (go a, go b)
        in
        let q = make node in
        Hashtbl.add memo p.tag q;
        q
  in
  go

(** Hash table keyed on interned predicates: constant-time hashing and
    physical-equality buckets.  This is what the SMT result cache and the
    propositional atom table use. *)
module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

(* ------------------------------------------------------------------ *)
(* Smart constructors                                                  *)
(* ------------------------------------------------------------------ *)

let tt = make True
let ff = make False

let atom t1 r t2 =
  match (Term.view t1, r, Term.view t2) with
  | Term.Int m, Eq, Term.Int n -> if m = n then tt else ff
  | Term.Int m, Ne, Term.Int n -> if m <> n then tt else ff
  | Term.Int m, Lt, Term.Int n -> if m < n then tt else ff
  | Term.Int m, Le, Term.Int n -> if m <= n then tt else ff
  | Term.Int m, Gt, Term.Int n -> if m > n then tt else ff
  | Term.Int m, Ge, Term.Int n -> if m >= n then tt else ff
  | _ ->
      if Term.equal t1 t2 then (
        match r with Eq | Le | Ge -> tt | Ne | Lt | Gt -> ff)
      else make (Atom (t1, r, t2))

let eq a b = atom a Eq b
let ne a b = atom a Ne b
let lt a b = atom a Lt b
let le a b = atom a Le b
let gt a b = atom a Gt b
let ge a b = atom a Ge b

let bvar x = make (Bvar x)

let not_ p =
  match p.node with
  | True -> ff
  | False -> tt
  | Not q -> q
  | Atom (a, Eq, b) -> make (Atom (a, Ne, b))
  | Atom (a, Ne, b) -> make (Atom (a, Eq, b))
  | Atom (a, Lt, b) -> make (Atom (a, Ge, b))
  | Atom (a, Le, b) -> make (Atom (a, Gt, b))
  | Atom (a, Gt, b) -> make (Atom (a, Le, b))
  | Atom (a, Ge, b) -> make (Atom (a, Lt, b))
  | _ -> make (Not p)

let is_true p = p == tt
let is_false p = p == ff

let conj ps =
  let ps =
    List.concat_map
      (fun p -> match p.node with True -> [] | And qs -> qs | _ -> [ p ])
      ps
  in
  if List.exists is_false ps then ff
  else
    match Listx.dedup_ordered ~compare ps with
    | [] -> tt
    | [ p ] -> p
    | ps -> make (And ps)

let disj ps =
  let ps =
    List.concat_map
      (fun p -> match p.node with False -> [] | Or qs -> qs | _ -> [ p ])
      ps
  in
  if List.exists is_true ps then tt
  else
    match Listx.dedup_ordered ~compare ps with
    | [] -> ff
    | [ p ] -> p
    | ps -> make (Or ps)

let and_ p q = conj [ p; q ]
let or_ p q = disj [ p; q ]

let imp p q =
  match (p.node, q.node) with
  | True, _ -> q
  | False, _ -> tt
  | _, True -> tt
  | _, False -> not_ p
  | _ -> if equal p q then tt else make (Imp (p, q))

let iff p q =
  match (p.node, q.node) with
  | True, _ -> q
  | _, True -> p
  | False, _ -> not_ q
  | _, False -> not_ p
  | _ -> if equal p q then tt else make (Iff (p, q))

(* ------------------------------------------------------------------ *)
(* Traversals                                                          *)
(* ------------------------------------------------------------------ *)

let rec fold_atoms f acc p =
  match p.node with
  | True | False -> acc
  | Atom _ -> f acc p
  | Bvar _ -> f acc p
  | Not q -> fold_atoms f acc q
  | And ps | Or ps -> List.fold_left (fold_atoms f) acc ps
  | Imp (q, r) | Iff (q, r) -> fold_atoms f (fold_atoms f acc q) r

let dedup_vars vs =
  Listx.dedup_ordered
    ~compare:(fun (x, _) (y, _) -> Ident.compare x y)
    vs

(** Free variables with sorts ([Bvar]s are [Bool]), deduplicated, in
    left-to-right first-occurrence order.  Memoized per node. *)
let rec free_vars p =
  match p.fvs with
  | Some vs -> vs
  | None ->
      let vs =
        match p.node with
        | True | False -> []
        | Atom (a, _, b) -> dedup_vars (Term.vars a @ Term.vars b)
        | Bvar x -> [ (x, Sort.Bool) ]
        | Not q -> free_vars q
        | And ps | Or ps -> dedup_vars (List.concat_map free_vars ps)
        | Imp (q, r) | Iff (q, r) -> dedup_vars (free_vars q @ free_vars r)
      in
      p.fvs <- Some vs;
      vs

let mem_var x p = List.exists (fun (y, _) -> Ident.equal x y) (free_vars p)

(** Uninterpreted symbols appearing in a predicate. *)
let symbols p =
  let rec term_syms acc t =
    match Term.view t with
    | Term.App (f, ts) -> List.fold_left term_syms (f :: acc) ts
    | Term.Neg t -> term_syms acc t
    | Term.Add (a, b) | Term.Sub (a, b) | Term.Mul (a, b) ->
        term_syms (term_syms acc a) b
    | Term.Int _ | Term.Var _ -> acc
  in
  let atom_syms acc p =
    match p.node with
    | Atom (a, _, b) -> term_syms (term_syms acc a) b
    | _ -> acc
  in
  Listx.dedup_ordered ~compare:Symbol.compare (fold_atoms atom_syms [] p)

(* ------------------------------------------------------------------ *)
(* Substitution                                                        *)
(* ------------------------------------------------------------------ *)

(** Values substitutable for a variable: a term (for [Int]/[Obj]-sorted
    variables) or a predicate (for [Bool]-sorted variables appearing as
    [Bvar] atoms). *)
type value = Tm of Term.t | Pr of t

type subst = value Ident.Map.t

let term_part (m : subst) : Term.t Ident.Map.t =
  Ident.Map.filter_map (fun _ -> function Tm t -> Some t | Pr _ -> None) m

let subst (m : subst) p =
  let tm = lazy (term_part m) in
  let rec go p =
    (* Sub-formulas mentioning no substituted variable are returned
       unchanged, preserving sharing. *)
    if not (List.exists (fun (x, _) -> Ident.Map.mem x m) (free_vars p)) then p
    else
      match p.node with
      | True | False -> p
      | Atom (a, r, b) ->
          let tm = Lazy.force tm in
          atom (Term.subst tm a) r (Term.subst tm b)
      | Bvar x -> (
          match Ident.Map.find_opt x m with
          | Some (Pr q) -> q
          | Some (Tm t) -> (
              match Term.view t with
              | Term.Var (y, Sort.Bool) -> make (Bvar y)
              | _ -> p (* ill-sorted substitution: ignore, keep atom *))
          | None -> p)
      | Not q -> not_ (go q)
      | And ps -> conj (List.map go ps)
      | Or ps -> disj (List.map go ps)
      | Imp (q, r) -> imp (go q) (go r)
      | Iff (q, r) -> iff (go q) (go r)
  in
  go p

let subst1 x v p = subst (Ident.Map.singleton x v) p

let subst_term x t p = subst1 x (Tm t) p

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp_brel ppf r =
  Fmt.string ppf
    (match r with
    | Eq -> "="
    | Ne -> "!="
    | Lt -> "<"
    | Le -> "<="
    | Gt -> ">"
    | Ge -> ">=")

let rec pp ppf p =
  match p.node with
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | Atom (a, r, b) -> Fmt.pf ppf "%a %a %a" Term.pp a pp_brel r Term.pp b
  | Bvar x -> Ident.pp ppf x
  | Not p -> Fmt.pf ppf "not (%a)" pp p
  | And ps -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any " && ") pp) ps
  | Or ps -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any " || ") pp) ps
  | Imp (p, q) -> Fmt.pf ppf "(%a => %a)" pp p pp q
  | Iff (p, q) -> Fmt.pf ppf "(%a <=> %a)" pp p pp q

let to_string p = Fmt.str "%a" pp p

(* ------------------------------------------------------------------ *)
(* Evaluation (used by property tests to cross-check the SMT solver)   *)
(* ------------------------------------------------------------------ *)

(** Ground evaluation of a term under an integer assignment.  [Obj]-sorted
    variables and uninterpreted applications are evaluated by hashing
    (a fixed interpretation), which is enough to refute bogus validity
    claims in randomized tests. *)
let rec eval_term (env : int Ident.Map.t) (t : Term.t) : int =
  match Term.view t with
  | Term.Int n -> n
  | Term.Var (x, _) -> (
      match Ident.Map.find_opt x env with
      | Some v -> v
      | None -> Hashtbl.hash x mod 17)
  | Term.App (f, ts) ->
      let args = List.map (eval_term env) ts in
      Hashtbl.hash (Symbol.name f, args) mod 1009
  | Term.Neg t -> -eval_term env t
  | Term.Add (a, b) -> eval_term env a + eval_term env b
  | Term.Sub (a, b) -> eval_term env a - eval_term env b
  | Term.Mul (a, b) -> eval_term env a * eval_term env b

let rec eval (ienv : int Ident.Map.t) (benv : bool Ident.Map.t) (p : t) : bool =
  match p.node with
  | True -> true
  | False -> false
  | Atom (a, r, b) -> (
      let x = eval_term ienv a and y = eval_term ienv b in
      match r with
      | Eq -> x = y
      | Ne -> x <> y
      | Lt -> x < y
      | Le -> x <= y
      | Gt -> x > y
      | Ge -> x >= y)
  | Bvar x -> (
      match Ident.Map.find_opt x benv with Some b -> b | None -> false)
  | Not p -> not (eval ienv benv p)
  | And ps -> List.for_all (eval ienv benv) ps
  | Or ps -> List.exists (eval ienv benv) ps
  | Imp (p, q) -> (not (eval ienv benv p)) || eval ienv benv q
  | Iff (p, q) -> eval ienv benv p = eval ienv benv q
