(** First-order terms of the refinement logic.

    Terms are sorted ({!Sort.Int} or {!Sort.Obj}); boolean program values
    appear at the predicate level (see {!Pred}), never as terms.  Variables
    carry their sort so downstream passes (qualifier instantiation, the SMT
    solver) never need a symbol table.

    Terms are {e hash-consed}: every node is interned in a global table, so
    structural equality coincides with physical equality, [compare] is a
    constant-time id comparison, and each node memoizes its hash and its
    free-variable set.  The solver re-visits the same predicates thousands
    of times as the fixpoint shrinks candidate sets, so cheap equality and
    memoized free variables dominate the cost of embedding and relevance
    pruning.  The interning table is append-only: nodes are never evicted,
    which keeps physical equality valid for the whole process lifetime.

    Multiplication is kept as a syntactic node: the SMT front end
    linearizes products with a constant operand and purifies genuinely
    non-linear products into the uninterpreted symbol {!Symbol.mul}. *)

open Liquid_common

type t = {
  node : node;
  tag : int; (* unique interning id; allocation order *)
  hkey : int; (* structural hash, memoized *)
  mutable fvs : (Ident.t * Sort.t) list option; (* free vars, memoized *)
}

and node =
  | Int of int
  | Var of Ident.t * Sort.t
  | App of Symbol.t * t list
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t

(* ------------------------------------------------------------------ *)
(* Interning                                                           *)
(* ------------------------------------------------------------------ *)

(* Children of a node are already interned, so shallow physical
   comparison of children decides structural equality of the node, and
   child hashes combine into the node hash in O(arity). *)
module Node = struct
  type nonrec t = node

  let equal n1 n2 =
    match (n1, n2) with
    | Int m, Int n -> Stdlib.Int.equal m n
    | Var (x, sx), Var (y, sy) -> Ident.equal x y && Sort.equal sx sy
    | App (f, ts), App (g, us) ->
        Symbol.equal f g
        && List.length ts = List.length us
        && List.for_all2 (fun a b -> a == b) ts us
    | Neg a, Neg b -> a == b
    | Add (a1, a2), Add (b1, b2)
    | Sub (a1, a2), Sub (b1, b2)
    | Mul (a1, a2), Mul (b1, b2) ->
        a1 == b1 && a2 == b2
    | _ -> false

  let mix h k = ((h * 31) + k) land max_int

  let hash = function
    | Int n -> mix 3 (Hashtbl.hash n)
    | Var (x, s) -> mix 5 (mix (Ident.hash x) (Hashtbl.hash s))
    | App (f, ts) ->
        List.fold_left (fun h t -> mix h t.hkey) (mix 7 (Symbol.hash f)) ts
    | Neg a -> mix 11 a.hkey
    | Add (a, b) -> mix 13 (mix a.hkey b.hkey)
    | Sub (a, b) -> mix 17 (mix a.hkey b.hkey)
    | Mul (a, b) -> mix 19 (mix a.hkey b.hkey)
end

module H = Hashtbl.Make (Node)

let table : t H.t = H.create 4096

let counter = ref 0

(** Intern a node verbatim (no simplification). *)
let make (node : node) : t =
  match H.find_opt table node with
  | Some t -> t
  | None ->
      incr counter;
      let t = { node; tag = !counter; hkey = Node.hash node; fvs = None } in
      H.add table node t;
      t

let view t = t.node
let tag t = t.tag
let hash t = t.hkey

(** Number of distinct live term nodes (observability). *)
let interned_count () = !counter

(* Interning makes structural equality physical and gives a constant-time
   total order (allocation order, deterministic for a fixed run). *)
let equal (a : t) (b : t) = a == b
let compare (a : t) (b : t) = Stdlib.Int.compare a.tag b.tag

(** Re-interning for terms built in {e another} heap — typically
    unmarshalled from a worker process.  Such terms are structurally
    well-formed but physically foreign: none of their nodes live in this
    process's interning table, so [equal]/[compare] (and every table
    keyed on tags) would silently misbehave on them.  A rehasher walks
    the foreign DAG bottom-up through {!make}, producing the canonical
    local node for every sub-term.  The memo table is keyed on the
    foreign tags, which are internally consistent within one marshalled
    payload — one rehasher must therefore be used per payload, never
    shared across payloads from different workers. *)
let rehasher () : t -> t =
  let memo : (int, t) Hashtbl.t = Hashtbl.create 256 in
  let rec go t =
    match Hashtbl.find_opt memo t.tag with
    | Some t' -> t'
    | None ->
        let node =
          match t.node with
          | Int _ | Var _ -> t.node
          | App (f, ts) ->
              (* re-canonicalize the symbol through the local registry *)
              App (Symbol.declare (Symbol.name f) (Symbol.signature f),
                   List.map go ts)
          | Neg a -> Neg (go a)
          | Add (a, b) -> Add (go a, go b)
          | Sub (a, b) -> Sub (go a, go b)
          | Mul (a, b) -> Mul (go a, go b)
        in
        let t' = make node in
        Hashtbl.add memo t.tag t';
        t'
  in
  go

(** Sort of a term.  Arithmetic nodes are always [Int]; applications have
    the result sort of their head symbol. *)
let sort t =
  match t.node with
  | Int _ -> Sort.Int
  | Var (_, s) -> s
  | App (f, _) -> Symbol.result_sort f
  | Neg _ | Add _ | Sub _ | Mul _ -> Sort.Int

(* ------------------------------------------------------------------ *)
(* Free variables (memoized per node)                                  *)
(* ------------------------------------------------------------------ *)

let dedup_vars vs =
  Listx.dedup_ordered
    ~compare:(fun (x, _) (y, _) -> Ident.compare x y)
    vs

(** Free variables with their sorts, deduplicated, in left-to-right
    first-occurrence order.  Memoized: each distinct node computes its set
    once, merging the (already memoized) sets of its children. *)
let rec vars t =
  match t.fvs with
  | Some vs -> vs
  | None ->
      let vs =
        match t.node with
        | Int _ -> []
        | Var (x, s) -> [ (x, s) ]
        | App (_, ts) -> dedup_vars (List.concat_map vars ts)
        | Neg a -> vars a
        | Add (a, b) | Sub (a, b) | Mul (a, b) -> dedup_vars (vars a @ vars b)
      in
      t.fvs <- Some vs;
      vs

(** Accumulating variant kept for callers that merge several var sets
    themselves (the result may contain duplicates across terms). *)
let free_vars acc t = vars t @ acc

let mem_var x t = List.exists (fun (y, _) -> Ident.equal x y) (vars t)

(* ------------------------------------------------------------------ *)
(* Substitution                                                        *)
(* ------------------------------------------------------------------ *)

(** Capture-avoiding substitution of terms for variables (the logic has no
    binders, so "capture-avoiding" is vacuous; substitution is
    simultaneous).  Sub-terms mentioning no substituted variable are
    returned unchanged — with interning this preserves sharing and skips
    whole subtrees. *)
let rec subst (m : t Ident.Map.t) (t : t) : t =
  if not (List.exists (fun (x, _) -> Ident.Map.mem x m) (vars t)) then t
  else
    match t.node with
    | Int _ -> t
    | Var (x, _) -> (
        match Ident.Map.find_opt x m with Some u -> u | None -> t)
    | App (f, ts) -> make (App (f, List.map (subst m) ts))
    | Neg a -> make (Neg (subst m a))
    | Add (a, b) -> make (Add (subst m a, subst m b))
    | Sub (a, b) -> make (Sub (subst m a, subst m b))
    | Mul (a, b) -> make (Mul (subst m a, subst m b))

let subst1 x u t = subst (Ident.Map.singleton x u) t

(* Smart constructors perform light constant folding; they keep terms small
   which directly shrinks SMT queries. *)

let int n = make (Int n)
let var x s = make (Var (x, s))

let app f ts =
  if List.length ts <> Symbol.arity f then
    invalid_arg (Printf.sprintf "Term.app: arity mismatch for %s" (Symbol.name f));
  make (App (f, ts))

let add a b =
  match (a.node, b.node) with
  | Int 0, _ -> b
  | _, Int 0 -> a
  | Int m, Int n -> int (m + n)
  | _ -> make (Add (a, b))

let sub a b =
  match (a.node, b.node) with
  | _, Int 0 -> a
  | Int m, Int n -> int (m - n)
  | _ -> make (Sub (a, b))

let neg t =
  match t.node with Int n -> int (-n) | Neg u -> u | _ -> make (Neg t)

let mul a b =
  match (a.node, b.node) with
  | Int 0, _ | _, Int 0 -> int 0
  | Int 1, _ -> b
  | _, Int 1 -> a
  | Int m, Int n -> int (m * n)
  | _ -> make (Mul (a, b))

let rec pp ppf t =
  match t.node with
  | Int n -> Fmt.int ppf n
  | Var (x, _) -> Ident.pp ppf x
  | App (f, ts) ->
      Fmt.pf ppf "%a(%a)" Symbol.pp f Fmt.(list ~sep:comma pp) ts
  | Neg t -> Fmt.pf ppf "(- %a)" pp t
  | Add (a, b) -> Fmt.pf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Fmt.pf ppf "(%a - %a)" pp a pp b
  | Mul (a, b) -> Fmt.pf ppf "(%a * %a)" pp a pp b

let to_string t = Fmt.str "%a" pp t
