(** Uninterpreted function symbols of the refinement logic (EUFA).

    Symbols are interned by name; redeclaring a name with a different
    signature is an error. *)

type t

(** Declare (or look up) a symbol.
    @raise Invalid_argument on signature mismatch with a previous
    declaration. *)
val declare : string -> Sort.signature -> t

val find_opt : string -> t option

(** Declare (or look up) a measure symbol: a unary [Obj -> Int]
    uninterpreted function whose name is remembered as a measure (see
    {!is_measure_name}).  Used for the built-in [len]/[llen] and every
    user-defined ADT measure. *)
val declare_measure : string -> t

(** Has [name] been declared as a measure? *)
val is_measure_name : string -> bool

val name : t -> string
val signature : t -> Sort.signature
val arity : t -> int
val result_sort : t -> Sort.t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

(** Array length: [len : Obj -> Int]. *)
val len : t

(** List length measure: [llen : Obj -> Int]. *)
val llen : t

(** Non-linear multiplication, uninterpreted: [mul : Int * Int -> Int]. *)
val mul : t

(** Non-constant division, uninterpreted. *)
val div : t

(** Remainder, uninterpreted (refined at the type level). *)
val imod : t
