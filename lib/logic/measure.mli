(** The measure table: structurally recursive ADT measures lifted to
    uninterpreted function symbols, one defining axiom per constructor.
    Generalizes the built-in list-length measure [llen] (the table's
    first entry); user measures register per run and reset between
    runs.  See the implementation header for the axiom-lowering rules
    ([max]/[min] become guarded linear cases). *)

(** Equation right-hand sides, with constructor arguments by position. *)
type body =
  | Cint of int
  | Carg of int (* integer-sorted constructor argument *)
  | Capp of string * int (* measure applied to the argument at a position *)
  | Cneg of body
  | Cadd of body * body
  | Csub of body * body
  | Cmul of body * body
  | Cmax of body * body
  | Cmin of body * body

type eqn = { ctor : string; arity : int; body : body }

type t = private {
  name : string;
  sym : Symbol.t;
  tycon : string;
  eqns : eqn list;
  nonneg : bool; (* provably [m v >= 0], by structural induction *)
  builtin : bool;
}

(** Register a user measure (declares its symbol as a measure).
    @raise Invalid_argument on duplicate names. *)
val register : name:string -> tycon:string -> eqn list -> t

(** Clear user measures, keeping the built-in entries ([llen], [len]). *)
val reset : unit -> unit

val find : string -> t option

(** All measures, registration order (built-ins first). *)
val all : unit -> t list

(** Measures over one datatype, registration order. *)
val measures_on : string -> t list

val user_measures : unit -> t list

(** Built-in entries. *)
val llen : t

val len : t

(** [app name t] — apply a registered measure to an [Obj]-sorted term.
    @raise Invalid_argument if unknown. *)
val app : string -> Term.t -> Term.t

(** [m v >= 0] when the measure is provably non-negative. *)
val nonneg_fact : t -> Term.t -> Pred.t option

(** The instantiated defining axiom [m(value) = body] for one
    constructor application; [None] if the constructor has no equation
    or a needed argument is unavailable. *)
val ctor_axiom :
  t -> ctor:string -> value:Term.t -> args:Term.t option list -> Pred.t option

(** All axioms for one constructor application, over the measures of
    [tycon], registration order. *)
val ctor_axioms :
  tycon:string -> ctor:string -> value:Term.t -> args:Term.t option list -> Pred.t list

val pp_body : Format.formatter -> body -> unit
val pp_eqn : Format.formatter -> eqn -> unit
val pp : Format.formatter -> t -> unit

(** Stable digest of a definition, for cache keys. *)
val fingerprint : t -> string
