(** Predicates (quantifier-free formulas) of the refinement logic:
    boolean combinations of arithmetic/equality atoms between {!Term}s
    and boolean program variables.

    Predicates are {e hash-consed} (like {!Term}s): structural equality
    is physical equality, [compare] is a constant-time id comparison,
    and each node memoizes its hash and free-variable set.  Construct
    with the smart constructors (which also simplify), or with {!make}
    for a verbatim node; pattern-match through {!view} (or the [node]
    field). *)

open Liquid_common

type brel = Eq | Ne | Lt | Le | Gt | Ge

type t = private {
  node : node;
  tag : int; (* unique interning id *)
  hkey : int; (* memoized structural hash *)
  mutable fvs : (Ident.t * Sort.t) list option; (* memoized free vars *)
}

and node =
  | True
  | False
  | Atom of Term.t * brel * Term.t
  | Bvar of Ident.t (* boolean program variable, as a proposition *)
  | Not of t
  | And of t list
  | Or of t list
  | Imp of t * t
  | Iff of t * t

(** Intern a node verbatim (no simplification). *)
val make : node -> t

val view : t -> node
val tag : t -> int
val hash : t -> int

(** Number of distinct predicate nodes interned so far. *)
val interned_count : unit -> int

val brel_compare : brel -> brel -> int

(** Constant-time: physical equality / interning-id order. *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** [rehasher ()] is a memoized re-interner for predicates unmarshalled
    from another process (see {!Term.rehasher}): it maps a physically
    foreign predicate to the canonical local node, restoring physical
    equality and tag-keyed table behaviour.  One rehasher per marshalled
    payload. *)
val rehasher : unit -> t -> t
val is_true : t -> bool
val is_false : t -> bool

(** Hash table keyed on interned predicates (constant-time hash,
    physical-equality buckets). *)
module Tbl : Hashtbl.S with type key = t

(** {1 Smart constructors} — fold constants, flatten and deduplicate
    connectives, push negation through atoms. *)

val tt : t
val ff : t
val atom : Term.t -> brel -> Term.t -> t
val eq : Term.t -> Term.t -> t
val ne : Term.t -> Term.t -> t
val lt : Term.t -> Term.t -> t
val le : Term.t -> Term.t -> t
val gt : Term.t -> Term.t -> t
val ge : Term.t -> Term.t -> t
val bvar : Ident.t -> t
val not_ : t -> t
val conj : t list -> t
val disj : t list -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val imp : t -> t -> t
val iff : t -> t -> t

(** {1 Traversals} *)

(** Fold over the atoms ([Atom]/[Bvar] leaves). *)
val fold_atoms : ('a -> t -> 'a) -> 'a -> t -> 'a

(** Free variables with sorts, deduplicated ([Bvar]s are [Bool]), in
    left-to-right first-occurrence order; memoized per node. *)
val free_vars : t -> (Ident.t * Sort.t) list

val mem_var : Ident.t -> t -> bool

(** Uninterpreted symbols appearing in the predicate. *)
val symbols : t -> Symbol.t list

(** {1 Substitution} *)

(** Values substitutable for a variable: a term, or a predicate (for
    [Bool]-sorted variables appearing as [Bvar] atoms). *)
type value = Tm of Term.t | Pr of t

type subst = value Ident.Map.t

(** Term-valued part of a substitution. *)
val term_part : subst -> Term.t Ident.Map.t

(** Simultaneous substitution; sub-formulas mentioning no substituted
    variable are returned unchanged (preserving sharing). *)
val subst : subst -> t -> t

val subst1 : Ident.t -> value -> t -> t
val subst_term : Ident.t -> Term.t -> t -> t

(** {1 Printing} *)

val pp_brel : Format.formatter -> brel -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Ground evaluation} (used by property tests to cross-check the SMT
    solver against brute force; uninterpreted entities evaluate by
    hashing). *)

val eval_term : int Ident.Map.t -> Term.t -> int
val eval : int Ident.Map.t -> bool Ident.Map.t -> t -> bool
