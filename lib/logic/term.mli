(** First-order terms of the refinement logic.

    Terms are sorted ({!Sort.Int} or {!Sort.Obj}); boolean program values
    appear at the predicate level ({!Pred}), never as terms.  Variables
    carry their sort so downstream passes never need a symbol table.

    Terms are {e hash-consed}: structurally equal terms are physically
    equal, [compare] is a constant-time id comparison, and every node
    memoizes its hash and free-variable set.  Construct terms with the
    smart constructors (which also fold constants), or with {!make} for a
    verbatim node; pattern-match through {!view} (or the [node] field). *)

open Liquid_common

type t = private {
  node : node;
  tag : int; (* unique interning id *)
  hkey : int; (* memoized structural hash *)
  mutable fvs : (Ident.t * Sort.t) list option; (* memoized free vars *)
}

and node =
  | Int of int
  | Var of Ident.t * Sort.t
  | App of Symbol.t * t list
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t (* linearized or purified to [Symbol.mul] downstream *)

(** Intern a node verbatim (no simplification, no arity check). *)
val make : node -> t

val view : t -> node
val tag : t -> int
val hash : t -> int

(** Number of distinct term nodes interned so far. *)
val interned_count : unit -> int

(** Constant-time: physical equality / interning-id order. *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** [rehasher ()] is a memoized re-interner for terms unmarshalled from
    another process: it maps a physically foreign (but structurally
    valid) term to the canonical local node, so physical equality and
    tag-keyed tables work again.  Use one rehasher per marshalled
    payload (the memo is keyed on the payload's own tags). *)
val rehasher : unit -> t -> t

(** Sort of a term; arithmetic is [Int], applications use the head's
    result sort. *)
val sort : t -> Sort.t

(** Free variables with sorts, deduplicated, in left-to-right
    first-occurrence order; memoized per node.  [free_vars] is the
    accumulating variant ([vars t @ acc]). *)
val free_vars : (Ident.t * Sort.t) list -> t -> (Ident.t * Sort.t) list

val vars : t -> (Ident.t * Sort.t) list
val mem_var : Ident.t -> t -> bool

(** Simultaneous substitution of terms for variables; returns the term
    unchanged (preserving sharing) when no substituted variable occurs. *)
val subst : t Ident.Map.t -> t -> t

val subst1 : Ident.t -> t -> t -> t

(** Smart constructors; fold constants and drop units. *)

val int : int -> t
val var : Ident.t -> Sort.t -> t

(** @raise Invalid_argument on arity mismatch. *)
val app : Symbol.t -> t list -> t

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
