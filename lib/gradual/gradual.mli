(** Gradual liquid mode: residual obligations as runtime-checked casts.

    Per {e Gradual Liquid Type Inference} (Vazou, Tanter, Van Horn), an
    obligation the fixpoint cannot discharge need not be a hard error:
    unless the environment outright {e refutes} it (a concrete
    counterexample model exists), it becomes a {!residual} — a cast the
    program must check at runtime.  The verdict turns into a spectrum:
    [SAFE] (no residuals), [SAFE_MODULO n] (statically safe modulo [n]
    runtime casts), [UNSAFE] (refuted obligations remain).

    Degraded (⊤-pinned) partitions get a principled story too: their own
    concrete obligations — which the dead worker never checked — and
    every downstream failure whose κ-closure touches a pinned κ become
    residuals marked [rc_degraded], never fabricated blame and never
    silent precision loss.

    Like the explain engine this runs {e post-fixpoint} on (solution,
    constraint system), so it composes with pruning, partitioning,
    incremental reuse, and daemon coalescing for free; classification
    reuses the explain engine wholesale, so every residual carries a
    hypothesis core, blame path, and solver-verified repair hint.

    Residual identity is content-addressed ({!residual_id}): a digest of
    the obligation's source span, reason, and goal rendering — stable
    across job counts, cache temperatures, and process boundaries, so
    residual reports are byte-identical however the run was solved. *)

open Liquid_logic
open Liquid_lang
open Liquid_infer
open Liquid_smt
module Explain = Liquid_explain.Explain

(** One residual cast: an obligation the fixpoint could not discharge
    but the environment does not refute, deferred to runtime. *)
type residual = {
  rc_id : string; (* deterministic content-addressed id, "r-…" *)
  rc_origin : Constr.origin; (* source span + reason *)
  rc_goal : Pred.t; (* the residual predicate, over ν and the scope *)
  rc_count : int; (* identical obligations folded into this cast *)
  rc_degraded : bool; (* owed to a ⊤-pinned (timed-out) partition *)
  rc_witness : (string * Solver.cex_value) list;
      (* falsifying values of the final static check, when available *)
  rc_explanation : Explain.explanation;
      (* hypothesis core, blame path, and verified repair hint *)
}

type verdict = Safe | Safe_modulo of int | Unsafe

(** Deterministic residual id: ["r-"] plus a truncated digest of the
    origin span, reason, and goal rendering. *)
val residual_id : Constr.origin -> Pred.t -> string

val verdict_of : errors:int -> residuals:int -> verdict
val verdict_name : verdict -> string
val pp_verdict : Format.formatter -> verdict -> unit

(** Classify a run's failing obligations post-fixpoint.  [failures] are
    the deduplicated concrete-check failures (with fold counts);
    [degraded_subs] are the constraints of degraded partitions, whose
    [Rconc] obligations were never checked — a failure is synthesized
    for each (no witness) so they surface as residuals rather than
    silently vanishing.  Every obligation is fed through the explain
    engine (under [degraded_kvars], so pinned closures are never
    blamed); obligations the environment refutes outright stay hard
    errors (returned with their explanations), everything else becomes
    a residual.  Both lists come back in original constraint order. *)
val classify :
  wfs:Constr.wf list ->
  subs:Constr.sub list ->
  solution:Constr.solution ->
  quals:Qualifier.t list ->
  consts:int list ->
  degraded_kvars:Rtype.kvar list ->
  degraded_subs:Constr.sub list ->
  (Fixpoint.failure * int) list ->
  residual list * (Fixpoint.failure * int * Explain.explanation) list

(** Re-intern residuals that crossed a process boundary (disk cache,
    scheduler pipe, daemon socket); see {!Pred.rehasher}. *)
val rehash : residual list -> residual list

val pp_residual : Format.formatter -> residual -> unit

(** {1 Runtime casts}

    Residuals lowered to runtime checks over the reference interpreter:
    the program runs with every residual's span {e armed}, and each
    runtime safety check landing inside an armed span is credited to its
    cast.  A failed armed assertion is {e absorbed} (the cast reports
    the failure and execution continues); a failed armed bounds check is
    reported but still halts — there is no value to continue with. *)

type cast_status =
  | Held of int (* checked [n] times at runtime, every check passed *)
  | Failed of { checks : int; detail : string }
      (* at least one runtime check failed; [checks] counts all of them *)
  | Unreached (* no runtime check landed in the armed span *)

type run_report = {
  rr_finished : bool; (* evaluation ran to completion *)
  rr_halt : string option; (* why evaluation stopped early, when it did *)
  rr_casts : (residual * cast_status) list; (* in residual order *)
}

(** Run [prog] (the {e pre-ANF} source program, as [dsolve --run] does)
    with the given residuals armed. *)
val run_casts :
  ?fuel:int -> ?quiet:bool -> residual list -> Ast.program -> run_report

val pp_cast_status : Format.formatter -> cast_status -> unit
val pp_run_report : Format.formatter -> run_report -> unit
