(** Gradual liquid mode: residual obligations as runtime-checked casts.
    See gradual.mli for the subsystem overview. *)

open Liquid_common
open Liquid_logic
open Liquid_lang
open Liquid_infer
open Liquid_smt
module Explain = Liquid_explain.Explain
module Eval = Liquid_eval.Eval

type residual = {
  rc_id : string;
  rc_origin : Constr.origin;
  rc_goal : Pred.t;
  rc_count : int;
  rc_degraded : bool;
  rc_witness : (string * Solver.cex_value) list;
  rc_explanation : Explain.explanation;
}

type verdict = Safe | Safe_modulo of int | Unsafe

(* Content-addressed identity: the digest covers exactly what the report
   prints (span, reason, goal rendering), none of it schedule-dependent —
   sub_ids and κ numbers restart per run but can shift under partitioning,
   so they stay out of the digest. *)
let residual_id (o : Constr.origin) (goal : Pred.t) : string =
  let payload =
    Fmt.str "%a|%s|%a" Loc.pp o.Constr.loc o.Constr.reason Pred.pp goal
  in
  "r-" ^ String.sub (Digest.to_hex (Digest.string payload)) 0 12

let verdict_of ~errors ~residuals =
  if errors > 0 then Unsafe
  else if residuals > 0 then Safe_modulo residuals
  else Safe

let verdict_name = function
  | Safe -> "SAFE"
  | Safe_modulo _ -> "SAFE_MODULO"
  | Unsafe -> "UNSAFE"

let pp_verdict ppf = function
  | Safe -> Fmt.string ppf "SAFE"
  | Safe_modulo n -> Fmt.pf ppf "SAFE_MODULO %d" n
  | Unsafe -> Fmt.string ppf "UNSAFE"

(* -- Classification ---------------------------------------------------- *)

module ISet = Set.Make (Int)

(* Same key the pipeline dedups failures with: identical span + reason +
   goal fold into one report entry. *)
let failure_key (f : Fixpoint.failure) =
  Fmt.str "%a|%s|%d" Loc.pp f.Fixpoint.f_origin.Constr.loc
    f.Fixpoint.f_origin.Constr.reason
    (Pred.tag f.Fixpoint.f_goal)

(* The message explain_failure attaches when a failure's backward
   κ-closure touches a degraded partition. *)
let degraded_unexplained = "partition timed out"

let classify ~(wfs : Constr.wf list) ~(subs : Constr.sub list)
    ~(solution : Constr.solution) ~(quals : Qualifier.t list)
    ~(consts : int list) ~(degraded_kvars : Rtype.kvar list)
    ~(degraded_subs : Constr.sub list)
    (failures : (Fixpoint.failure * int) list) :
    residual list * (Fixpoint.failure * int * Explain.explanation) list =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (f, _) -> Hashtbl.replace seen (failure_key f) ())
    failures;
  (* Degraded partitions never checked their own concrete obligations
     (the worker died mid-solve); synthesize a failure for each so they
     surface as residuals instead of silently vanishing.  No witness —
     nothing was refuted, the check simply never ran. *)
  let synthesized =
    List.filter_map
      (fun (c : Constr.sub) ->
        match c.Constr.rhs with
        | Constr.Rkvar _ -> None
        | Constr.Rconc goal ->
            if Pred.is_true goal then None
            else
              let f =
                {
                  Fixpoint.f_sub_id = c.Constr.sub_id;
                  f_origin = c.Constr.origin;
                  f_goal = goal;
                  f_cex = [];
                }
              in
              let key = failure_key f in
              if Hashtbl.mem seen key then None
              else begin
                Hashtbl.replace seen key ();
                Some (f, 1)
              end)
      degraded_subs
  in
  let all =
    List.sort
      (fun ((a : Fixpoint.failure), _) (b, _) ->
        compare a.Fixpoint.f_sub_id b.Fixpoint.f_sub_id)
      (failures @ synthesized)
  in
  (* One explain pass over everything: every obligation — hard error or
     residual — carries a core, blame path, and verified repair hint. *)
  let exr =
    Explain.explain ~limit:(List.length all) ~degraded_kvars ~wfs ~subs
      ~solution ~quals ~consts all
  in
  let degraded_ids =
    ISet.of_list (List.map (fun (c : Constr.sub) -> c.Constr.sub_id) degraded_subs)
  in
  let residuals, hard =
    List.fold_left2
      (fun (rs, hs) ((f : Fixpoint.failure), count) (ex : Explain.explanation) ->
        if ex.Explain.ex_refuted then
          (* The environment entails ¬goal under the final solution: the
             solution only ever weakens, so this stays refuted however
             much annotation is added — a hard error, not a cast. *)
          (rs, (f, count, ex) :: hs)
        else
          let degraded =
            ISet.mem f.Fixpoint.f_sub_id degraded_ids
            || ex.Explain.ex_unexplained = Some degraded_unexplained
          in
          let r =
            {
              rc_id = residual_id f.Fixpoint.f_origin f.Fixpoint.f_goal;
              rc_origin = f.Fixpoint.f_origin;
              rc_goal = f.Fixpoint.f_goal;
              rc_count = count;
              rc_degraded = degraded;
              rc_witness = f.Fixpoint.f_cex;
              rc_explanation = ex;
            }
          in
          (r :: rs, hs))
      ([], []) all exr.Explain.exs
  in
  (List.rev residuals, List.rev hard)

(* -- Process boundaries ------------------------------------------------ *)

let rehash (rs : residual list) : residual list =
  let go = Pred.rehasher () in
  let exs =
    (Explain.rehash
       { Explain.exs = List.map (fun r -> r.rc_explanation) rs; skipped = 0 })
      .Explain.exs
  in
  List.map2
    (fun r ex -> { r with rc_goal = go r.rc_goal; rc_explanation = ex })
    rs exs

(* -- Printing ---------------------------------------------------------- *)

let pp_residual ppf (r : residual) =
  Fmt.pf ppf "@[<v>%s at %a: %s" r.rc_id Loc.pp r.rc_origin.Constr.loc
    r.rc_origin.Constr.reason;
  if r.rc_count > 1 then Fmt.pf ppf " (×%d)" r.rc_count;
  Fmt.pf ppf "@,  residual cast: %a" Pred.pp r.rc_goal;
  if r.rc_degraded then
    Fmt.pf ppf "@,  degraded: obligation owed to a timed-out partition";
  (match r.rc_witness with
  | [] -> ()
  | w -> Fmt.pf ppf "@,  witness: %a" Explain.pp_witness w);
  (match r.rc_explanation.Explain.ex_repair with
  | None -> ()
  | Some rp ->
      Fmt.pf ppf
        "@,  repair hint: adding qualifier `%a` to k%d at %a would discharge \
         this cast"
        Pred.pp rp.Explain.rp_pred rp.Explain.rp_kvar Loc.pp rp.Explain.rp_loc);
  Fmt.pf ppf "@]"

(* -- Runtime casts ----------------------------------------------------- *)

type cast_status =
  | Held of int
  | Failed of { checks : int; detail : string }
  | Unreached

type run_report = {
  rr_finished : bool;
  rr_halt : string option;
  rr_casts : (residual * cast_status) list;
}

(* A runtime check is credited to a cast when the two spans coincide or
   one encloses the other: the residual's span is the obligation site
   (the assert node, the primitive application, a function body), and
   the dynamic span is the exact checking expression within it. *)
let span_matches (armed : Loc.t) (dyn : Loc.t) =
  (not (Loc.is_dummy armed))
  && (not (Loc.is_dummy dyn))
  && (Loc.compare armed dyn = 0 || Loc.contains armed dyn
     || Loc.contains dyn armed)

let run_casts ?fuel ?quiet (rs : residual list) (prog : Ast.program) :
    run_report =
  let arr = Array.of_list rs in
  let n = Array.length arr in
  let checks = Array.make n 0 in
  let fail_detail = Array.make n None in
  let check loc (kind : Eval.check_kind) ~ok ~detail =
    let matched = ref false in
    Array.iteri
      (fun i r ->
        if span_matches r.rc_origin.Constr.loc loc then begin
          matched := true;
          checks.(i) <- checks.(i) + 1;
          if (not ok) && fail_detail.(i) = None then
            fail_detail.(i) <- Some detail
        end)
      arr;
    (* Recover only a failed assertion inside an armed span: the cast
       absorbs the failure and reports it.  Unarmed failures keep their
       ordinary semantics. *)
    (not ok) && kind = Eval.Check_assert && !matched
  in
  let finished, halt =
    match Eval.run_program ?fuel ?quiet ~check prog with
    | _env -> (true, None)
    | exception Eval.Assertion_failure loc ->
        ( false,
          Some
            (Fmt.str "assertion failed at %a (outside any armed cast)" Loc.pp
               loc) )
    | exception Eval.Bounds_violation msg -> (false, Some msg)
    | exception Eval.Runtime_error msg -> (false, Some msg)
    | exception Eval.Out_of_fuel -> (false, Some "out of fuel")
  in
  let casts =
    List.mapi
      (fun i r ->
        let st =
          match fail_detail.(i) with
          | Some detail -> Failed { checks = checks.(i); detail }
          | None -> if checks.(i) > 0 then Held checks.(i) else Unreached
        in
        (r, st))
      rs
  in
  { rr_finished = finished; rr_halt = halt; rr_casts = casts }

let pp_cast_status ppf = function
  | Held n -> Fmt.pf ppf "held (%d check%s)" n (if n = 1 then "" else "s")
  | Failed { checks; detail } ->
      Fmt.pf ppf "FAILED after %d check%s: %s" checks
        (if checks = 1 then "" else "s")
        detail
  | Unreached -> Fmt.string ppf "unreached"

let pp_run_report ppf (r : run_report) =
  Fmt.pf ppf "@[<v>gradual run: %d cast%s armed" (List.length r.rr_casts)
    (if List.length r.rr_casts = 1 then "" else "s");
  List.iter
    (fun (rc, st) ->
      Fmt.pf ppf "@,  %s at %a: %a" rc.rc_id Loc.pp rc.rc_origin.Constr.loc
        pp_cast_status st)
    r.rr_casts;
  (match r.rr_halt with
  | None -> ()
  | Some why -> Fmt.pf ppf "@,  halted: %s" why);
  Fmt.pf ppf "@]"
