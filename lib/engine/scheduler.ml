(** Generic parallel scheduler over forked worker processes.

    Two layers:

    {ol
    {- An {e async job} API — {!submit} forks one unit of work
       immediately and returns a handle; the caller multiplexes over
       {!job_fd}/{!job_deadline} (e.g. in its own [select] loop) and
       calls {!step} to make progress.  Retry-on-crash and
       kill-on-timeout live {e inside} [step], so every caller gets the
       same fault-isolation policy.  This is what the verification
       daemon's reactor uses: solves run in the pool while the event
       loop keeps accepting and replying.}
    {- {!run}, the run-to-completion driver over a topologically
       ordered DAG of units, built on the same jobs.  Units are numbered
       [0 .. n_units-1] with every dependency id smaller than the
       dependent's id; a unit is {e ready} once all of its dependencies
       have been merged.  Workers are forked at dispatch time, after the
       parent has merged every dependency, so a worker sees all upstream
       results through inherited memory and only its own result crosses
       the process boundary.}}

    Fault isolation (both layers): each attempt has an optional
    wall-clock [timeout]; a worker that exceeds it is killed ([SIGKILL])
    and the job retried once, likewise for a worker that crashes
    (non-zero exit, signal, or a truncated/unreadable payload).  A job
    whose second attempt also fails surfaces as {!Failed} — the
    scheduler never wedges and never aborts. *)

(** Test-only fault injection, applied in the worker immediately after
    the fork: [Hang] loops forever (exercising the timeout path),
    [Crash] exits abruptly without writing a payload. *)
type fault = Hang | Crash

let fault_hook : (int -> fault option) ref = ref (fun _ -> None)

type 'r outcome =
  | Done of 'r
  | Failed of { timed_out : bool; attempts : int; detail : string }

let rec select_eintr fds t =
  try Unix.select fds [] [] t
  with Unix.Unix_error (Unix.EINTR, _, _) -> select_eintr fds t

let rec waitpid_eintr pid =
  try snd (Unix.waitpid [] pid)
  with Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_eintr pid

let status_detail = function
  | Unix.WEXITED 0 -> "truncated result"
  | Unix.WEXITED n -> Printf.sprintf "worker exited with code %d" n
  | Unix.WSIGNALED n -> Printf.sprintf "worker killed by signal %d" n
  | Unix.WSTOPPED n -> Printf.sprintf "worker stopped by signal %d" n

(* ------------------------------------------------------------------ *)
(* One attempt: a forked worker and the pipe its result crosses        *)

type attempt = {
  pid : int;
  fd : Unix.file_descr;
  deadline : float option; (* absolute, for this attempt *)
  n : int; (* 1 or 2 *)
}

(** Fork one attempt.  The child runs [work ()] and marshals [Ok result]
    (or [Error exn_string]) back; it exits with [_exit] so inherited
    output buffers are never flushed twice. *)
let spawn_attempt ?timeout ~(fault : unit -> fault option)
    ~(work : unit -> 'r) (n : int) : attempt =
  let rd, wr = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close rd;
      (match fault () with
      | Some Hang ->
          while true do
            ignore (select_eintr [] 3600.0)
          done
      | Some Crash -> Unix._exit 70
      | None -> ());
      let payload =
        match work () with
        | r -> Ok r
        | exception e -> Error (Printexc.to_string e)
      in
      let oc = Unix.out_channel_of_descr wr in
      (try
         Marshal.to_channel oc payload [];
         flush oc
       with _ -> ());
      Unix._exit 0
  | pid ->
      Unix.close wr;
      let deadline = Option.map (fun t -> Unix.gettimeofday () +. t) timeout in
      { pid; fd = rd; deadline; n }

(** Read a worker's payload.  Returns [Ok result] or [Error detail];
    always reaps the child and closes the pipe. *)
let collect_attempt (a : attempt) : ('r, string) Result.t =
  let ic = Unix.in_channel_of_descr a.fd in
  let payload =
    match (Marshal.from_channel ic : ('r, string) Result.t) with
    | p -> Some p
    | exception _ -> None
  in
  close_in_noerr ic;
  let status = waitpid_eintr a.pid in
  match payload with
  | Some (Ok res) -> Ok res
  | Some (Error msg) -> Error ("worker raised: " ^ msg)
  | None -> Error (status_detail status)

let kill_attempt (a : attempt) : unit =
  (try Unix.kill a.pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (waitpid_eintr a.pid);
  try Unix.close a.fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Async jobs                                                          *)

type 'r job = {
  j_timeout : float option;
  j_work : unit -> 'r;
  j_fault : unit -> fault option;
  mutable j_att : attempt;
  mutable j_done : 'r outcome option;
}

let submit ?timeout ?(fault = fun () -> None) (work : unit -> 'r) : 'r job =
  {
    j_timeout = timeout;
    j_work = work;
    j_fault = fault;
    j_att = spawn_attempt ?timeout ~fault ~work 1;
    j_done = None;
  }

let job_fd (j : 'r job) = j.j_att.fd
let job_deadline (j : 'r job) = j.j_att.deadline

let readable fd =
  match select_eintr [ fd ] 0.0 with [], _, _ -> false | _ -> true

let step (j : 'r job) : 'r outcome option =
  match j.j_done with
  | Some _ as d -> d
  | None ->
      let finish o =
        j.j_done <- Some o;
        j.j_done
      in
      let retry_or_fail ~timed_out detail =
        if j.j_att.n >= 2 then
          finish (Failed { timed_out; attempts = j.j_att.n; detail })
        else begin
          j.j_att <-
            spawn_attempt ?timeout:j.j_timeout ~fault:j.j_fault ~work:j.j_work
              (j.j_att.n + 1);
          None
        end
      in
      if readable j.j_att.fd then
        match collect_attempt j.j_att with
        | Ok res -> finish (Done res)
        | Error detail -> retry_or_fail ~timed_out:false detail
      else begin
        match j.j_att.deadline with
        | Some d when d <= Unix.gettimeofday () ->
            kill_attempt j.j_att;
            retry_or_fail ~timed_out:true
              (Printf.sprintf "timed out after %.1fs"
                 (Option.value ~default:0.0 j.j_timeout))
        | _ -> None
      end

let cancel (j : 'r job) : unit =
  match j.j_done with
  | Some _ -> ()
  | None ->
      kill_attempt j.j_att;
      j.j_done <-
        Some (Failed { timed_out = false; attempts = j.j_att.n; detail = "cancelled" })

(* ------------------------------------------------------------------ *)
(* The DAG driver                                                      *)

(** Run the DAG.  [deps u] lists the units [u] reads (all [< u]);
    [work u] computes unit [u]'s result (in a worker process); [merge u
    outcome elapsed] folds it into parent state and is called exactly
    once per unit, only after all of [u]'s dependencies have merged.
    [elapsed] is the unit's wall-clock time across its attempts.

    [pre u] is a parent-side shortcut consulted at dispatch time — after
    [u]'s dependencies have merged, before any fork: [Some r] merges
    [Done r] immediately and no worker is ever spawned for [u].  This is
    how a result cache skips solved units without paying a fork. *)
let run ?timeout ?(pre : (int -> 'r option) = fun _ -> None) ~(jobs : int)
    ~(n_units : int) ~(deps : int -> int list) ~(work : int -> 'r)
    ~(merge : int -> 'r outcome -> float -> unit) () : unit =
  let jobs = max 1 jobs in
  let merged = Array.make n_units false in
  let dispatched = Array.make n_units false in
  let first_start = Array.make n_units 0.0 in
  let active : (int * 'r job) list ref = ref [] in
  let n_merged = ref 0 in
  let finish u outcome =
    merge u outcome (Unix.gettimeofday () -. first_start.(u));
    merged.(u) <- true;
    incr n_merged
  in
  let ready () =
    let rec scan u acc =
      if u >= n_units then List.rev acc
      else if
        (not dispatched.(u)) && List.for_all (fun d -> merged.(d)) (deps u)
      then scan (u + 1) (u :: acc)
      else scan (u + 1) acc
    in
    scan 0 []
  in
  (* Returns [true] when a [pre] shortcut merged at least one unit —
     merging can make further units ready, so the caller loops until
     dispatch reaches a fixed point. *)
  let dispatch () =
    let merged_here = ref false in
    List.iter
      (fun u ->
        match pre u with
        | Some r ->
            dispatched.(u) <- true;
            first_start.(u) <- Unix.gettimeofday ();
            finish u (Done r);
            merged_here := true
        | None ->
            if List.length !active < jobs then begin
              dispatched.(u) <- true;
              first_start.(u) <- Unix.gettimeofday ();
              active :=
                ( u,
                  submit ?timeout
                    ~fault:(fun () -> !fault_hook u)
                    (fun () -> work u) )
                :: !active
            end)
      (ready ());
    !merged_here
  in
  while !n_merged < n_units do
    while dispatch () do
      ()
    done;
    if !n_merged < n_units then begin
      (* Topological numbering guarantees progress: if nothing is merged
         yet, unit 0 has no deps and is always dispatchable. *)
      assert (!active <> []);
      let now = Unix.gettimeofday () in
      let wait =
        List.fold_left
          (fun acc (_, j) ->
            match job_deadline j with
            | None -> acc
            | Some d ->
                let left = max 0.0 (d -. now) in
                if acc < 0.0 then left else min acc left)
          (-1.0) !active
      in
      ignore (select_eintr (List.map (fun (_, j) -> job_fd j) !active) wait);
      active :=
        List.filter
          (fun (u, j) ->
            match step j with
            | Some outcome ->
                finish u outcome;
                false
            | None -> true)
          !active
    end
  done
