(** Generic parallel scheduler over a topologically ordered DAG of work
    units.

    Units are numbered [0 .. n_units-1] with every dependency id smaller
    than the dependent's id.  A unit is {e ready} once all of its
    dependencies have been merged; ready units run concurrently in
    forked worker processes (up to [jobs] at a time), each returning its
    result to the parent over a pipe via [Marshal].  Workers are forked
    {e at dispatch time}, after the parent has merged every dependency,
    so a worker sees all upstream results through inherited memory and
    only its own result crosses the process boundary.

    Fault isolation: each attempt has an optional wall-clock [timeout];
    a worker that exceeds it is killed ([SIGKILL]) and the unit retried
    once, likewise for a worker that crashes (non-zero exit, signal, or
    a truncated/unreadable payload).  A unit whose second attempt also
    fails is surfaced to [merge] as {!Failed} — the scheduler never
    wedges and never aborts the run. *)

(** Test-only fault injection, applied in the worker immediately after
    the fork: [Hang] loops forever (exercising the timeout path),
    [Crash] exits abruptly without writing a payload. *)
type fault = Hang | Crash

let fault_hook : (int -> fault option) ref = ref (fun _ -> None)

type 'r outcome =
  | Done of 'r
  | Failed of { timed_out : bool; attempts : int; detail : string }

type running = {
  run_unit : int;
  pid : int;
  fd : Unix.file_descr;
  deadline : float option; (* absolute, for the current attempt *)
  attempt : int; (* 1 or 2 *)
}

let rec select_eintr fds t =
  try Unix.select fds [] [] t
  with Unix.Unix_error (Unix.EINTR, _, _) -> select_eintr fds t

let rec waitpid_eintr pid =
  try snd (Unix.waitpid [] pid)
  with Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_eintr pid

let status_detail = function
  | Unix.WEXITED 0 -> "truncated result"
  | Unix.WEXITED n -> Printf.sprintf "worker exited with code %d" n
  | Unix.WSIGNALED n -> Printf.sprintf "worker killed by signal %d" n
  | Unix.WSTOPPED n -> Printf.sprintf "worker stopped by signal %d" n

(** Fork one attempt at [u].  The child runs [work u] and marshals
    [Ok result] (or [Error exn_string]) back; it exits with [_exit] so
    inherited output buffers are never flushed twice. *)
let spawn ?timeout ~(work : int -> 'r) (u : int) (attempt : int) : running =
  let rd, wr = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close rd;
      (match !fault_hook u with
      | Some Hang ->
          while true do
            ignore (select_eintr [] 3600.0)
          done
      | Some Crash -> Unix._exit 70
      | None -> ());
      let payload =
        match work u with
        | r -> Ok r
        | exception e -> Error (Printexc.to_string e)
      in
      let oc = Unix.out_channel_of_descr wr in
      (try
         Marshal.to_channel oc payload [];
         flush oc
       with _ -> ());
      Unix._exit 0
  | pid ->
      Unix.close wr;
      let deadline =
        Option.map (fun t -> Unix.gettimeofday () +. t) timeout
      in
      { run_unit = u; pid; fd = rd; deadline; attempt }

(** Read a worker's payload.  Returns [Ok result] or [Error detail];
    always reaps the child and closes the pipe. *)
let collect (r : running) : ('r, string) Result.t =
  let ic = Unix.in_channel_of_descr r.fd in
  let payload =
    match (Marshal.from_channel ic : ('r, string) Result.t) with
    | p -> Some p
    | exception _ -> None
  in
  close_in_noerr ic;
  let status = waitpid_eintr r.pid in
  match payload with
  | Some (Ok res) -> Ok res
  | Some (Error msg) -> Error ("worker raised: " ^ msg)
  | None -> Error (status_detail status)

let kill_collect (r : running) : unit =
  (try Unix.kill r.pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (waitpid_eintr r.pid);
  (try Unix.close r.fd with Unix.Unix_error _ -> ())

(** Run the DAG.  [deps u] lists the units [u] reads (all [< u]);
    [work u] computes unit [u]'s result (in a worker process); [merge u
    outcome elapsed] folds it into parent state and is called exactly
    once per unit, only after all of [u]'s dependencies have merged.
    [elapsed] is the unit's wall-clock time across its attempts.

    [pre u] is a parent-side shortcut consulted at dispatch time — after
    [u]'s dependencies have merged, before any fork: [Some r] merges
    [Done r] immediately and no worker is ever spawned for [u].  This is
    how a result cache skips solved units without paying a fork. *)
let run ?timeout ?(pre : (int -> 'r option) = fun _ -> None) ~(jobs : int)
    ~(n_units : int) ~(deps : int -> int list) ~(work : int -> 'r)
    ~(merge : int -> 'r outcome -> float -> unit) () : unit =
  let jobs = max 1 jobs in
  let merged = Array.make n_units false in
  let dispatched = Array.make n_units false in
  let first_start = Array.make n_units 0.0 in
  let running : running list ref = ref [] in
  let n_merged = ref 0 in
  let finish u outcome =
    merge u outcome (Unix.gettimeofday () -. first_start.(u));
    merged.(u) <- true;
    incr n_merged
  in
  let ready () =
    let rec scan u acc =
      if u >= n_units then List.rev acc
      else if
        (not dispatched.(u)) && List.for_all (fun d -> merged.(d)) (deps u)
      then scan (u + 1) (u :: acc)
      else scan (u + 1) acc
    in
    scan 0 []
  in
  (* Returns [true] when a [pre] shortcut merged at least one unit —
     merging can make further units ready, so the caller loops until
     dispatch reaches a fixed point. *)
  let dispatch () =
    let merged_here = ref false in
    List.iter
      (fun u ->
        match pre u with
        | Some r ->
            dispatched.(u) <- true;
            first_start.(u) <- Unix.gettimeofday ();
            finish u (Done r);
            merged_here := true
        | None ->
            if List.length !running < jobs then begin
              dispatched.(u) <- true;
              first_start.(u) <- Unix.gettimeofday ();
              running := spawn ?timeout ~work u 1 :: !running
            end)
      (ready ());
    !merged_here
  in
  let retry_or_fail (r : running) ~timed_out detail =
    if r.attempt >= 2 then
      finish r.run_unit (Failed { timed_out; attempts = r.attempt; detail })
    else
      running := spawn ?timeout ~work r.run_unit (r.attempt + 1) :: !running
  in
  while !n_merged < n_units do
    while dispatch () do
      ()
    done;
    if !n_merged < n_units then begin
    (* Topological numbering guarantees progress: if nothing is merged
       yet, unit 0 has no deps and is always dispatchable. *)
    assert (!running <> []);
    let now = Unix.gettimeofday () in
    let wait =
      List.fold_left
        (fun acc r ->
          match r.deadline with
          | None -> acc
          | Some d ->
              let left = max 0.0 (d -. now) in
              if acc < 0.0 then left else min acc left)
        (-1.0) !running
    in
    let readable, _, _ = select_eintr (List.map (fun r -> r.fd) !running) wait in
    let done_now, rest =
      List.partition (fun r -> List.memq r.fd readable) !running
    in
    running := rest;
    List.iter
      (fun r ->
        match collect r with
        | Ok res -> finish r.run_unit (Done res)
        | Error detail -> retry_or_fail r ~timed_out:false detail)
      done_now;
    let now = Unix.gettimeofday () in
    let expired, alive =
      List.partition
        (fun r -> match r.deadline with Some d -> d <= now | None -> false)
        !running
    in
    running := alive;
    List.iter
      (fun r ->
        kill_collect r;
        retry_or_fail r ~timed_out:true
          (Printf.sprintf "timed out after %.1fs" (Option.get timeout)))
      expired
    end
  done
