(** Partitioned liquid-constraint solving: execute a
    {!Constr.partition_plan} and merge the per-partition results into
    one {!Fixpoint.result}.  With [jobs > 1] units run in forked workers
    over the {!Scheduler}; with [jobs <= 1] they run in-process,
    sequentially in id order (no forks, same merge, same results).
    Partitions whose workers time out or crash (after one retry) degrade
    conservatively — their κs are pinned to ⊤ — and are reported in
    [ps_degraded]. *)

open Liquid_infer

type part_info = {
  pi_id : int;
  pi_kvars : int; (* κs owned *)
  pi_subs : int; (* constraints solved *)
  pi_time : float; (* wall-clock, across attempts *)
  pi_degraded : bool;
  pi_timed_out : bool;
  pi_cached : bool; (* served by [reuse] without solving *)
  pi_detail : string option; (* failure detail when degraded *)
}

type outcome = {
  ps_result : Fixpoint.result;
  ps_parts : part_info list; (* by part_id *)
  ps_merge_time : float; (* seconds re-interning + folding results *)
  ps_degraded : int list; (* part_ids pinned to ⊤ *)
  ps_punit_hits : int; (* units served from the partition cache *)
  ps_punit_misses : int; (* units solved live (hooks present) *)
}

(** [solve ?incremental ?prune ?timeout ?reuse ?persist ~jobs ~quals
    ~consts wfs subs plan] solves the system described by [plan] (built
    from [wfs]/[subs]) with up to [jobs] concurrent workers ([jobs <=
    1]: in-process, sequential).  Failures are returned in
    original-constraint order regardless of scheduling; verdicts and
    inferred refinements are scheduling-independent (the fixpoint is
    unique).  [prune] (default [false]) runs the pre-fixpoint
    qualifier-space prune and post-fixpoint reinstatement inside each
    unit (see {!Prune}).  [subs] must be the same list [plan] was built
    from.

    [reuse]/[persist] connect a per-partition result cache.  Each unit
    is addressed by a content key digesting {!Constr.unit_signature}
    (its constraints and owned-κ wf environments), its instantiated
    qualifier set, and the final solutions of its [part_deps] — so a
    key matches exactly when every input that determines the unit's
    {!Fixpoint.partial} is unchanged.  [reuse key] is consulted at
    dispatch time (dependencies merged); a hit skips the unit's solve
    and is folded in like a worker result (counted in
    [ps_punit_hits]).  Units solved live are offered to [persist key
    partial] (and counted in [ps_punit_misses]).  Degraded units and
    every unit downstream of one are neither probed nor persisted:
    their inputs embed one run's scheduling accidents. *)
val solve :
  ?incremental:bool ->
  ?prune:bool ->
  ?timeout:float ->
  ?reuse:(string -> Fixpoint.partial option) ->
  ?persist:(string -> Fixpoint.partial -> unit) ->
  jobs:int ->
  quals:Qualifier.t list ->
  consts:int list ->
  Constr.wf list ->
  Constr.sub list ->
  Constr.plan ->
  outcome
