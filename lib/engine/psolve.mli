(** Partitioned liquid-constraint solving: execute a
    {!Constr.partition_plan} over the {!Scheduler} and merge the
    per-partition results into one {!Fixpoint.result}.  Partitions whose
    workers time out or crash (after one retry) degrade conservatively —
    their κs are pinned to ⊤ — and are reported in [ps_degraded]. *)

open Liquid_infer

type part_info = {
  pi_id : int;
  pi_kvars : int; (* κs owned *)
  pi_subs : int; (* constraints solved *)
  pi_time : float; (* wall-clock, across attempts *)
  pi_degraded : bool;
  pi_timed_out : bool;
  pi_detail : string option; (* failure detail when degraded *)
}

type outcome = {
  ps_result : Fixpoint.result;
  ps_parts : part_info list; (* by part_id *)
  ps_merge_time : float; (* seconds re-interning + folding results *)
  ps_degraded : int list; (* part_ids pinned to ⊤ *)
}

(** [solve ?incremental ?timeout ~jobs ~quals ~consts wfs subs plan]
    solves the system described by [plan] (built from [wfs]/[subs])
    with up to [jobs] concurrent workers.  Failures are returned in
    original-constraint order regardless of scheduling; verdicts and
    inferred refinements are scheduling-independent (the fixpoint is
    unique).  [prune] (default [false]) runs the pre-fixpoint
    qualifier-space prune and post-fixpoint reinstatement inside each
    unit (see {!Prune}).  [subs] must be the same list [plan] was built
    from. *)
val solve :
  ?incremental:bool ->
  ?prune:bool ->
  ?timeout:float ->
  jobs:int ->
  quals:Qualifier.t list ->
  consts:int list ->
  Constr.wf list ->
  Constr.sub list ->
  Constr.plan ->
  outcome
