(** Parallel execution over forked worker processes, with per-attempt
    wall-clock timeouts, one retry, and graceful failure surfacing.

    Two layers: an {e async job} API ({!submit} / {!step}) for callers
    that multiplex work inside their own event loop — the verification
    daemon's reactor dispatches solves this way while it keeps accepting
    connections — and {!run}, the run-to-completion driver over a
    topologically ordered DAG of units, built on the same jobs. *)

(** Test-only fault injection, applied in the worker immediately after
    the fork: [Hang] loops forever (exercising the timeout/kill path),
    [Crash] exits abruptly without writing a payload.  Reset to
    [(fun _ -> None)] after use.  Consulted by {!run} with the unit id;
    {!submit} takes its own [?fault] thunk instead. *)
type fault = Hang | Crash

val fault_hook : (int -> fault option) ref

type 'r outcome =
  | Done of 'r
  | Failed of { timed_out : bool; attempts : int; detail : string }

(** {1 Async jobs} *)

(** A unit of work running in a forked worker.  The handle owns the
    worker's result pipe; drive it with {!step} until an outcome
    appears.  Retry-on-crash and kill-on-timeout happen inside [step],
    so a job presents at most one live worker (and so one pipe fd) at a
    time. *)
type 'r job

(** [submit ?timeout ?fault work] forks a worker running [work ()] now
    and returns its handle.  [work]'s result is marshalled back (it must
    not contain closures; hash-consed values need re-interning on the
    parent side).  [fault] (default: none) is evaluated {e in the
    worker} right after the fork — test-only. *)
val submit : ?timeout:float -> ?fault:(unit -> fault option) -> (unit -> 'r) -> 'r job

(** The result pipe of the job's current attempt — select/poll on it.
    Respawned attempts change the fd, so re-query after every {!step}. *)
val job_fd : 'r job -> Unix.file_descr

(** Absolute deadline of the current attempt, when a timeout was set:
    feed [min] of these into the select timeout so expired workers are
    killed promptly. *)
val job_deadline : 'r job -> float option

(** Make progress: if the worker's pipe is readable, collect its payload
    (reaping the child); if its deadline has passed, kill it.  A first
    failure respawns the attempt and returns [None]; a success or second
    failure returns the job's final outcome (idempotently from then
    on). *)
val step : 'r job -> 'r outcome option

(** Kill the current attempt and pin the job to [Failed] (no retry).
    No-op on a finished job. *)
val cancel : 'r job -> unit

(** {1 The DAG driver} *)

(** [run ?timeout ?pre ~jobs ~n_units ~deps ~work ~merge ()] executes
    units [0 .. n_units-1], where every id in [deps u] is [< u].  A unit
    is dispatched once all of its dependencies have merged, so a forked
    worker sees every upstream result through inherited memory; [work u]
    runs in the worker and its result is marshalled back.  [merge u
    outcome elapsed] runs in the parent, exactly once per unit.  At most
    [jobs] workers run concurrently.  A worker exceeding [timeout]
    seconds is killed and the unit retried once; crashes likewise.  A
    second failure yields [Failed] — the scheduler never wedges and
    never aborts the run.

    [pre u] (default: always [None]) is consulted in the parent at
    dispatch time, after [u]'s dependencies merged: [Some r] merges
    [Done r] without forking a worker — the shortcut a result cache
    uses to skip already-solved units. *)
val run :
  ?timeout:float ->
  ?pre:(int -> 'r option) ->
  jobs:int ->
  n_units:int ->
  deps:(int -> int list) ->
  work:(int -> 'r) ->
  merge:(int -> 'r outcome -> float -> unit) ->
  unit ->
  unit
