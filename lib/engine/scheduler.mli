(** Generic parallel scheduler over a topologically ordered DAG of work
    units, with forked workers, per-unit wall-clock timeouts, one retry,
    and graceful failure surfacing.  See {!run}. *)

(** Test-only fault injection, applied in the worker immediately after
    the fork: [Hang] loops forever (exercising the timeout/kill path),
    [Crash] exits abruptly without writing a payload.  Reset to
    [(fun _ -> None)] after use. *)
type fault = Hang | Crash

val fault_hook : (int -> fault option) ref

type 'r outcome =
  | Done of 'r
  | Failed of { timed_out : bool; attempts : int; detail : string }

(** [run ?timeout ?pre ~jobs ~n_units ~deps ~work ~merge ()] executes
    units [0 .. n_units-1], where every id in [deps u] is [< u].  A unit
    is dispatched once all of its dependencies have merged, so a forked
    worker sees every upstream result through inherited memory; [work u]
    runs in the worker and its result is marshalled back (it must not
    contain closures; hash-consed values need re-interning on the parent
    side).  [merge u outcome elapsed] runs in the parent, exactly once
    per unit.  At most [jobs] workers run concurrently.  A worker
    exceeding [timeout] seconds is killed and the unit retried once;
    crashes likewise.  A second failure yields [Failed] — the scheduler
    never wedges and never aborts the run.

    [pre u] (default: always [None]) is consulted in the parent at
    dispatch time, after [u]'s dependencies merged: [Some r] merges
    [Done r] without forking a worker — the shortcut a result cache
    uses to skip already-solved units. *)
val run :
  ?timeout:float ->
  ?pre:(int -> 'r option) ->
  jobs:int ->
  n_units:int ->
  deps:(int -> int list) ->
  work:(int -> 'r) ->
  merge:(int -> 'r outcome -> float -> unit) ->
  unit ->
  unit
