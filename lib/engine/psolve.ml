(** Partitioned liquid-constraint solving: execute a
    {!Constr.partition_plan}, merging per-unit {!Fixpoint.partial}s into
    one {!Fixpoint.result}.

    With [jobs > 1] units run in forked workers over the {!Scheduler}
    ({!Fixpoint.solve_unit} with the merged upstream solutions as its
    base); a marshalled partial is re-interned on arrival
    ({!Fixpoint.rehash_partial}) and folded into the running solution,
    failure list, and counters.  With [jobs <= 1] units run in-process,
    sequentially in id order — no forks, same merge, same results.

    A partition whose worker times out or crashes (after one retry)
    degrades conservatively: its κs are pinned to the empty refinement
    (⊤ — sound, weakest), downstream partitions proceed against that,
    and the failure is surfaced as a {!part_info} for diagnostics.

    The [reuse]/[persist] hooks connect a per-partition result cache:
    each unit is content-addressed by a key digesting its own
    constraints and wf environments ({!Constr.unit_signature}), its
    instantiated qualifier set, and the final solutions of its
    [part_deps] — everything that determines its partial.  At dispatch
    time (dependencies merged, so the key is computable) [reuse key]
    may return a cached partial, skipping the solve entirely; solved
    units are offered to [persist key partial].  Degraded units and
    their downstream cone are neither probed nor persisted: degradation
    is a property of one run's scheduling, not of the program. *)

open Liquid_smt
open Liquid_logic
open Liquid_infer
module KMap = Constr.KMap

type part_info = {
  pi_id : int;
  pi_kvars : int; (* κs owned *)
  pi_subs : int; (* constraints solved *)
  pi_time : float; (* wall-clock, across attempts *)
  pi_degraded : bool;
  pi_timed_out : bool;
  pi_cached : bool; (* served by [reuse] without solving *)
  pi_detail : string option; (* failure detail when degraded *)
}

type outcome = {
  ps_result : Fixpoint.result;
  ps_parts : part_info list; (* by part_id *)
  ps_merge_time : float; (* seconds re-interning + folding results *)
  ps_degraded : int list; (* part_ids pinned to ⊤ *)
  ps_punit_hits : int; (* units served from the partition cache *)
  ps_punit_misses : int; (* units solved live (hooks present) *)
}

let solve ?(incremental = true) ?(prune = false) ?timeout
    ?(reuse : (string -> Fixpoint.partial option) option)
    ?(persist : (string -> Fixpoint.partial -> unit) option) ~(jobs : int)
    ~(quals : Qualifier.t list) ~(consts : int list) (wfs : Constr.wf list)
    (subs : Constr.sub list) (plan : Constr.plan) : outcome =
  let parts = plan.Constr.parts in
  let n = Array.length parts in
  let collapsed = ref 0 in
  let initial = Fixpoint.init_assignment ~consts ~collapsed quals wfs in
  (* WF facts for pruning, computed once parent-side: workers fork after
     this point and see the map via inherited memory.  Units prune only
     κs present in their own [init], so no per-partition restriction is
     needed. *)
  let prune_wf = if prune then Some (Prune.wf_facts wfs) else None in
  (* Initial assignment restricted to each partition's own κs. *)
  let init_of = Array.map
      (fun (p : Constr.partition) ->
        List.fold_left
          (fun acc k ->
            match KMap.find_opt k initial with
            | Some ps -> KMap.add k ps acc
            | None -> acc)
          KMap.empty p.Constr.part_kvars)
      parts
  in
  (* Parent-side accumulators.  Workers fork at dispatch, after all
     their dependencies merged, so they see [merged_sol] via inherited
     memory; only their own partial crosses the process boundary. *)
  let merged_sol : Constr.solution ref = ref KMap.empty in
  let merged_cands = ref KMap.empty in
  let failures = ref [] in
  let stats = ref (Fixpoint.fresh_stats ()) in
  let infos = Array.make n None in
  let degraded = ref [] in
  let merge_time = ref 0.0 in
  let caching = reuse <> None || persist <> None in
  (* Per-unit local signatures, computed up front (hooks present only).
     The full key adds the inputs that flow in from upstream. *)
  let unit_sigs =
    if caching then Array.map (Constr.unit_signature wfs) parts else [||]
  in
  (* A unit downstream of a degraded partition solved against pinned-⊤
     hypotheses; its partial must not enter (or leave) the cache. *)
  let tainted = Array.make n false in
  let from_cache = Array.make n false in
  let hits = ref 0 and misses = ref 0 in
  let keys : string option array = Array.make n None in
  (* Content key of unit [u]; valid once [u]'s dependencies merged
     (their solutions are final in [merged_sol] from then on). *)
  let key_of u =
    match keys.(u) with
    | Some k -> k
    | None ->
        let buf = Buffer.create 1024 in
        Buffer.add_string buf unit_sigs.(u);
        Buffer.add_char buf '\x01';
        KMap.iter
          (fun k ps ->
            Buffer.add_string buf (Fmt.str "k%d:" k);
            List.iter
              (fun (p, names) ->
                Buffer.add_string buf
                  (Fmt.str "%a{%s};" Pred.pp p
                     (String.concat ","
                        (Fixpoint.SSet.elements names))))
              ps)
          init_of.(u);
        Buffer.add_char buf '\x01';
        List.iter
          (fun d ->
            List.iter
              (fun k ->
                Buffer.add_string buf
                  (Fmt.str "k%d=[%a];" k
                     Fmt.(list ~sep:(any " && ") Pred.pp)
                     (Constr.sol_find !merged_sol k)))
              parts.(d).Constr.part_kvars)
          parts.(u).Constr.part_deps;
        let k = Digest.to_hex (Digest.string (Buffer.contents buf)) in
        keys.(u) <- Some k;
        k
  in
  let reuse_for u =
    match reuse with
    | None -> None
    | Some f ->
        if List.exists (fun d -> tainted.(d)) parts.(u).Constr.part_deps then
          None
        else
          let r = f (key_of u) in
          if r <> None then begin
            from_cache.(u) <- true;
            incr hits
          end;
          r
  in
  let work u =
    Fixpoint.solve_unit ~incremental ?prune_wf ~base:!merged_sol
      ~init:init_of.(u) parts.(u).Constr.part_subs
  in
  (* [replay]: fold the partial's SMT-counter delta into the parent's
     global counters.  True for forked workers (their counters died with
     them) and for cached partials (the recorded solve's movement);
     false for in-process solves, whose calls moved the counters
     directly. *)
  let merge ~replay u outcome elapsed =
    let t0 = Unix.gettimeofday () in
    let p = parts.(u) in
    let mk ?(degraded = false) ?(timed_out = false) ?detail () =
      {
        pi_id = u;
        pi_kvars = List.length p.Constr.part_kvars;
        pi_subs = List.length p.Constr.part_subs;
        pi_time = elapsed;
        pi_degraded = degraded;
        pi_timed_out = timed_out;
        pi_cached = from_cache.(u);
        pi_detail = detail;
      }
    in
    (match outcome with
    | Scheduler.Done partial ->
        (* Re-intern: a partial that crossed a process (or disk)
           boundary is physically foreign to this process's tables; for
           an in-process partial this is the identity. *)
        let partial = Fixpoint.rehash_partial partial in
        merged_cands :=
          Fixpoint.merge_solutions !merged_cands partial.Fixpoint.pr_solution;
        merged_sol :=
          KMap.fold
            (fun k ps acc -> KMap.add k (List.map fst ps) acc)
            partial.Fixpoint.pr_solution !merged_sol;
        failures := List.rev_append partial.Fixpoint.pr_failures !failures;
        stats := Fixpoint.merge_stats !stats partial.Fixpoint.pr_stats;
        if replay then begin
          let d = partial.Fixpoint.pr_smt in
          Solver.stats.Solver.queries <-
            Solver.stats.Solver.queries + d.Fixpoint.d_queries;
          Solver.stats.Solver.cache_hits <-
            Solver.stats.Solver.cache_hits + d.Fixpoint.d_cache_hits;
          Solver.stats.Solver.sat_checks <-
            Solver.stats.Solver.sat_checks + d.Fixpoint.d_sat_checks;
          Solver.stats.Solver.unknowns <-
            Solver.stats.Solver.unknowns + d.Fixpoint.d_unknowns
        end;
        tainted.(u) <-
          List.exists (fun d -> tainted.(d)) p.Constr.part_deps;
        if caching && not from_cache.(u) then incr misses;
        (match persist with
        | Some f when (not from_cache.(u)) && not tainted.(u) ->
            f (key_of u) partial
        | _ -> ());
        infos.(u) <- Some (mk ())
    | Scheduler.Failed { timed_out; attempts = _; detail } ->
        (* Conservative degradation: pin this partition's κs to the
           empty refinement (⊤).  Sound — downstream constraints read a
           weaker hypothesis, so verdicts can only fail more, never
           falsely pass. *)
        List.iter
          (fun k ->
            merged_sol := KMap.add k [] !merged_sol;
            merged_cands := KMap.add k [] !merged_cands)
          p.Constr.part_kvars;
        degraded := u :: !degraded;
        tainted.(u) <- true;
        if caching then incr misses;
        infos.(u) <- Some (mk ~degraded:true ~timed_out ~detail ()));
    merge_time := !merge_time +. (Unix.gettimeofday () -. t0)
  in
  if jobs <= 1 then
    (* In-process sequential execution in id order (always legal: every
       dependency has a smaller id).  No forks, so no timeouts and no
       degradation — exactly the failure model of a whole-system
       solve. *)
    for u = 0 to n - 1 do
      let t0 = Unix.gettimeofday () in
      match reuse_for u with
      | Some partial ->
          merge ~replay:true u (Scheduler.Done partial)
            (Unix.gettimeofday () -. t0)
      | None ->
          let partial = work u in
          merge ~replay:false u (Scheduler.Done partial)
            (Unix.gettimeofday () -. t0)
    done
  else
    Scheduler.run ?timeout ~pre:reuse_for ~jobs ~n_units:n
      ~deps:(fun u -> parts.(u).Constr.part_deps)
      ~work
      ~merge:(merge ~replay:true)
      ();
  let t0 = Unix.gettimeofday () in
  (* Failures in original-constraint order, independent of scheduling. *)
  let rank = Hashtbl.create (List.length subs) in
  List.iteri (fun i (c : Constr.sub) -> Hashtbl.add rank c.Constr.sub_id i) subs;
  let failures =
    List.sort
      (fun (a, _) (b, _) ->
        compare (Hashtbl.find rank a) (Hashtbl.find rank b))
      !failures
    |> List.map snd
  in
  (* Dead qualifiers, excluding κs of degraded partitions (their
     instances were pinned away, not pruned by the solver). *)
  let live_initial =
    if !degraded = [] then initial
    else
      List.fold_left
        (fun acc u ->
          List.fold_left
            (fun acc k -> KMap.remove k acc)
            acc parts.(u).Constr.part_kvars)
        initial !degraded
  in
  let dead_quals =
    Fixpoint.dead_qualifiers ~initial:live_initial ~final:!merged_cands
  in
  (!stats).Fixpoint.alpha_collapsed <- !collapsed;
  merge_time := !merge_time +. (Unix.gettimeofday () -. t0);
  {
    ps_result =
      {
        Fixpoint.solution = !merged_sol;
        failures;
        solver_stats = !stats;
        dead_quals;
      };
    ps_parts =
      Array.to_list infos
      |> List.map (function
           | Some i -> i
           | None -> assert false (* every unit merges *));
    ps_merge_time = !merge_time;
    ps_degraded = List.rev !degraded;
    ps_punit_hits = !hits;
    ps_punit_misses = !misses;
  }
