(** Partitioned liquid-constraint solving: execute a
    {!Constr.partition_plan} over the {!Scheduler}, merging per-unit
    {!Fixpoint.partial}s into one {!Fixpoint.result}.

    Each partition solves in a forked worker ({!Fixpoint.solve_unit}
    with the merged upstream solutions as its base); its marshalled
    partial is re-interned on arrival ({!Fixpoint.rehash_partial}) and
    folded into the running solution, failure list, and counters.  A
    partition whose worker times out or crashes (after one retry)
    degrades conservatively: its κs are pinned to the empty refinement
    (⊤ — sound, weakest), downstream partitions proceed against that,
    and the failure is surfaced as a {!part_info} for diagnostics. *)

open Liquid_smt
open Liquid_infer
module KMap = Constr.KMap

type part_info = {
  pi_id : int;
  pi_kvars : int; (* κs owned *)
  pi_subs : int; (* constraints solved *)
  pi_time : float; (* wall-clock, across attempts *)
  pi_degraded : bool;
  pi_timed_out : bool;
  pi_detail : string option; (* failure detail when degraded *)
}

type outcome = {
  ps_result : Fixpoint.result;
  ps_parts : part_info list; (* by part_id *)
  ps_merge_time : float; (* seconds re-interning + folding results *)
  ps_degraded : int list; (* part_ids pinned to ⊤ *)
}

let solve ?(incremental = true) ?(prune = false) ?timeout ~(jobs : int)
    ~(quals : Qualifier.t list) ~(consts : int list) (wfs : Constr.wf list)
    (subs : Constr.sub list) (plan : Constr.plan) : outcome =
  let parts = plan.Constr.parts in
  let n = Array.length parts in
  let collapsed = ref 0 in
  let initial = Fixpoint.init_assignment ~consts ~collapsed quals wfs in
  (* WF facts for pruning, computed once parent-side: workers fork after
     this point and see the map via inherited memory.  Units prune only
     κs present in their own [init], so no per-partition restriction is
     needed. *)
  let prune_wf = if prune then Some (Prune.wf_facts wfs) else None in
  (* Initial assignment restricted to each partition's own κs. *)
  let init_of = Array.map
      (fun (p : Constr.partition) ->
        List.fold_left
          (fun acc k ->
            match KMap.find_opt k initial with
            | Some ps -> KMap.add k ps acc
            | None -> acc)
          KMap.empty p.Constr.part_kvars)
      parts
  in
  (* Parent-side accumulators.  Workers fork at dispatch, after all
     their dependencies merged, so they see [merged_sol] via inherited
     memory; only their own partial crosses the process boundary. *)
  let merged_sol : Constr.solution ref = ref KMap.empty in
  let merged_cands = ref KMap.empty in
  let failures = ref [] in
  let stats = ref (Fixpoint.fresh_stats ()) in
  let infos = Array.make n None in
  let degraded = ref [] in
  let merge_time = ref 0.0 in
  let work u =
    Fixpoint.solve_unit ~incremental ?prune_wf ~base:!merged_sol
      ~init:init_of.(u) parts.(u).Constr.part_subs
  in
  let merge u outcome elapsed =
    let t0 = Unix.gettimeofday () in
    let p = parts.(u) in
    let mk ?(degraded = false) ?(timed_out = false) ?detail () =
      {
        pi_id = u;
        pi_kvars = List.length p.Constr.part_kvars;
        pi_subs = List.length p.Constr.part_subs;
        pi_time = elapsed;
        pi_degraded = degraded;
        pi_timed_out = timed_out;
        pi_detail = detail;
      }
    in
    (match outcome with
    | Scheduler.Done partial ->
        (* Re-intern: the partial was unmarshalled, so every predicate
           in it is physically foreign to this process's tables. *)
        let partial = Fixpoint.rehash_partial partial in
        merged_cands :=
          Fixpoint.merge_solutions !merged_cands partial.Fixpoint.pr_solution;
        merged_sol :=
          KMap.fold
            (fun k ps acc -> KMap.add k (List.map fst ps) acc)
            partial.Fixpoint.pr_solution !merged_sol;
        failures := List.rev_append partial.Fixpoint.pr_failures !failures;
        stats := Fixpoint.merge_stats !stats partial.Fixpoint.pr_stats;
        (* The worker's global SMT counters died with it; replay its
           movement into the parent's. *)
        let d = partial.Fixpoint.pr_smt in
        Solver.stats.Solver.queries <-
          Solver.stats.Solver.queries + d.Fixpoint.d_queries;
        Solver.stats.Solver.cache_hits <-
          Solver.stats.Solver.cache_hits + d.Fixpoint.d_cache_hits;
        Solver.stats.Solver.sat_checks <-
          Solver.stats.Solver.sat_checks + d.Fixpoint.d_sat_checks;
        Solver.stats.Solver.unknowns <-
          Solver.stats.Solver.unknowns + d.Fixpoint.d_unknowns;
        infos.(u) <- Some (mk ())
    | Scheduler.Failed { timed_out; attempts = _; detail } ->
        (* Conservative degradation: pin this partition's κs to the
           empty refinement (⊤).  Sound — downstream constraints read a
           weaker hypothesis, so verdicts can only fail more, never
           falsely pass. *)
        List.iter
          (fun k ->
            merged_sol := KMap.add k [] !merged_sol;
            merged_cands := KMap.add k [] !merged_cands)
          p.Constr.part_kvars;
        degraded := u :: !degraded;
        infos.(u) <- Some (mk ~degraded:true ~timed_out ~detail ()));
    merge_time := !merge_time +. (Unix.gettimeofday () -. t0)
  in
  Scheduler.run ?timeout ~jobs ~n_units:n
    ~deps:(fun u -> parts.(u).Constr.part_deps)
    ~work ~merge ();
  let t0 = Unix.gettimeofday () in
  (* Failures in original-constraint order, independent of scheduling. *)
  let rank = Hashtbl.create (List.length subs) in
  List.iteri (fun i (c : Constr.sub) -> Hashtbl.add rank c.Constr.sub_id i) subs;
  let failures =
    List.sort
      (fun (a, _) (b, _) ->
        compare (Hashtbl.find rank a) (Hashtbl.find rank b))
      !failures
    |> List.map snd
  in
  (* Dead qualifiers, excluding κs of degraded partitions (their
     instances were pinned away, not pruned by the solver). *)
  let live_initial =
    if !degraded = [] then initial
    else
      List.fold_left
        (fun acc u ->
          List.fold_left
            (fun acc k -> KMap.remove k acc)
            acc parts.(u).Constr.part_kvars)
        initial !degraded
  in
  let dead_quals =
    Fixpoint.dead_qualifiers ~initial:live_initial ~final:!merged_cands
  in
  (!stats).Fixpoint.alpha_collapsed <- !collapsed;
  merge_time := !merge_time +. (Unix.gettimeofday () -. t0);
  {
    ps_result =
      {
        Fixpoint.solution = !merged_sol;
        failures;
        solver_stats = !stats;
        dead_quals;
      };
    ps_parts =
      Array.to_list infos
      |> List.map (function
           | Some i -> i
           | None -> assert false (* scheduler merges every unit *));
    ps_merge_time = !merge_time;
    ps_degraded = List.rev !degraded;
  }
