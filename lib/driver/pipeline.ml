(** The DSOLVE pipeline: parse → A-normalize → ML inference → liquid
    constraint generation → fixpoint solving → report.

    This is the public entry point of the library: give it NanoML source
    and a qualifier set, get back the inferred refinement types of the
    top-level items and the list of unverifiable obligations (empty iff
    the program is proved safe). *)

open Liquid_common
open Liquid_lang
open Liquid_typing
open Liquid_infer

type error = {
  err_loc : Loc.t;
  err_reason : string;
  err_goal : string;
  err_count : int; (* identical failures folded into this one *)
  err_cex : (string * Liquid_smt.Solver.cex_value) list;
      (* falsifying values, when available *)
}

(** Shape and per-unit cost of the solve plan (see
    {!Constr.partition_plan}).  [pt_time]/[pt_degraded] are only
    meaningful under sharded execution ([jobs > 1]); sequential runs
    report the plan's shape with zero times. *)
type part_stat = {
  pt_id : int;
  pt_kvars : int; (* κs owned by the partition *)
  pt_subs : int; (* constraints solved there *)
  pt_time : float; (* wall-clock seconds (sharded runs only) *)
  pt_degraded : bool; (* κs pinned to ⊤ after timeout/crash *)
}

type stats = {
  source_lines : int;
  ast_nodes : int;
  n_kvars : int;
  n_wf_constraints : int;
  n_sub_constraints : int;
  n_qualifiers : int; (* qualifier patterns supplied *)
  n_measures : int; (* user-declared measures in the program *)
  n_measure_axioms : int; (* measure axioms emitted during congen *)
  n_initial_candidates : int; (* total instances over all κs *)
  n_alpha_collapsed : int;
      (* instances collapsed by orientation-level dedup at instantiation *)
  n_quals_pruned : int; (* instances parked by the pre-fixpoint prune *)
  n_pruned_dedup : int; (* ... as orientation duplicates *)
  n_pruned_refuted : int; (* ... as unsat under the κ's WF environment *)
  n_pruned_subsumed : int; (* ... as implied by surviving siblings *)
  n_reinstated : int; (* instances restored by the reinstatement pass *)
  prune_time : float; (* seconds in the prune analysis *)
  reinstate_time : float; (* seconds in the reinstatement pass *)
  n_implication_checks : int;
  n_smt_queries : int;
  n_smt_cache_hits : int;
  n_lint_smt_queries : int; (* SMT queries spent by the lint pass *)
  n_explain_smt_queries : int; (* SMT queries spent by the explain pass *)
  n_diagnostics : int; (* lint diagnostics emitted *)
  n_partitions : int; (* solve units in the partition plan *)
  critical_path : int; (* longest dependency chain, in partitions *)
  partitions : part_stat list; (* by partition id *)
  n_residuals : int; (* residual casts ([--gradual] runs only) *)
  n_residuals_degraded : int; (* ... owed to degraded partitions *)
  n_uncacheable_degraded : int;
      (* 1 iff this run's report was not stored in the persistent cache
         because a partition was degraded (cache enabled, miss path) *)
  n_pcache_lookups : int; (* persistent-cache probes for this run (0/1) *)
  n_pcache_hits : int; (* runs served from the persistent cache (0/1) *)
  n_punit_hits : int; (* solve units served from the partition cache *)
  n_punit_misses : int; (* solve units solved live (cache enabled) *)
  elapsed : float; (* sum of the phase times below *)
  phases : (string * float) list;
      (* per-phase wall-clock seconds, in pipeline order:
         parse, anf, hm, congen, partition, solve, concrete_check,
         merge, gradual (when enabled), explain (when enabled), lint.
         [elapsed] is exactly their sum. *)
}

type report = {
  safe : bool;
  errors : error list;
  residuals : Liquid_gradual.Gradual.residual list;
      (* unprovable-but-unrefuted obligations deferred to runtime casts;
         empty unless [gradual].  [safe] means "no hard errors": a
         gradual report with residuals is SAFE_MODULO their count. *)
  item_types : (Ident.t * Rtype.t) list; (* with the solution applied *)
  lints : Liquid_analysis.Diagnostic.t list; (* empty unless [lint] *)
  explanations : Liquid_explain.Explain.explanation list;
      (* empty unless [explain] and the program failed *)
  explain_skipped : int; (* failures beyond [explain_limit] *)
  stats : stats;
}

exception Source_error of string * Loc.t

(** Everything that tunes a verification run; callers override fields of
    {!default} ([{ Pipeline.default with jobs = 4 }]) instead of
    threading a growing row of optional arguments. *)
type options = {
  quals : Qualifier.t list; (* qualifier patterns *)
  mine : bool; (* mine comparison literals from the source *)
  specs : Spec.t; (* external function signatures *)
  lint : bool; (* run the semantic-lint pass *)
  incremental : bool; (* incremental fixpoint engine *)
  prune : bool; (* pre-fixpoint qualifier-space pruning *)
  jobs : int; (* concurrent solve workers; 1 = in-process *)
  partition_timeout : float option; (* per-partition wall-clock budget *)
  cache_dir : string option; (* persistent result cache root; None = off *)
  explain : bool; (* explain failed obligations post-fixpoint *)
  explain_limit : int; (* failures explained per run (rest counted) *)
  gradual : bool;
      (* gradual mode: unrefuted failing obligations become residual
         casts ({!Liquid_gradual.Gradual}) instead of errors *)
}

let default =
  {
    quals = Qualifier.defaults;
    mine = true;
    specs = [];
    lint = false;
    incremental = true;
    prune = true;
    jobs = 1;
    partition_timeout = Some 60.0;
    cache_dir = None;
    explain = false;
    explain_limit = 5;
    gradual = false;
  }

(** Count source lines containing code: at least one non-whitespace
    character outside [(* ... *)] comments.  Tracks comment nesting
    across lines, so the interior and tail lines of a multi-line comment
    are not counted (the naive "line starts with [(*]" test over-counted
    those). *)
let count_lines (src : string) : int =
  let n = ref 0 and depth = ref 0 and has_code = ref false in
  let len = String.length src in
  let i = ref 0 in
  while !i < len do
    (match src.[!i] with
    | '\n' ->
        if !has_code then incr n;
        has_code := false;
        incr i
    | '(' when !i + 1 < len && src.[!i + 1] = '*' ->
        incr depth;
        i := !i + 2
    | '*' when !depth > 0 && !i + 1 < len && src.[!i + 1] = ')' ->
        decr depth;
        i := !i + 2
    | c ->
        if !depth = 0 && c <> ' ' && c <> '\t' && c <> '\r' then
          has_code := true;
        incr i)
  done;
  if !has_code then incr n;
  !n

let parse_program_decls ~name (src : string) : Ast.program * Ast.decls =
  (* Fresh-name counters restart per program, so every generated name
     (parser desugaring, ANF temporaries, α-renamed binders) is a
     function of the source alone and reports — witness bindings and
     core hypotheses in particular — are byte-identical no matter what
     the process verified before.  Safe because generated names never
     escape a run: the only pre-pipeline generator is the spec parser,
     whose binders use the distinct ["spec_arg"] base. *)
  Liquid_common.Gensym.reset ();
  Liquid_anf.Anf.reset ();
  let prog, decls =
    try Parser.parse_string ~file:name src with
    | Parser.Error (msg, loc) ->
        raise (Source_error ("parse error: " ^ msg, loc))
    | Lexer.Error (msg, pos) ->
        raise (Source_error ("lex error: " ^ msg, Loc.of_lexing pos pos))
  in
  (match Declcheck.check decls with
  | [] -> ()
  | d :: _ ->
      raise
        (Source_error
           ( Fmt.str "declaration error [%s]: %s" d.Declcheck.code
               d.Declcheck.message,
             d.Declcheck.loc )));
  (prog, decls)

let parse_program ~name (src : string) : Ast.program =
  fst (parse_program_decls ~name src)

(** Integer literals worth mining for qualifier instances: those the
    program {e compares against} (comparison operands).  Literals used
    only as data (array initialisers, arithmetic) rarely appear in
    invariants and would bloat every κ's candidate set.  Capped. *)
let mine_constants (prog : Ast.program) : int list =
  let interesting = ref [] in
  let note (e : Ast.expr) =
    match e.Ast.desc with
    | Ast.Const (Ast.Cint n) when abs n < 1_000_000 ->
        interesting := n :: !interesting
    | _ -> ()
  in
  let visit _ (e : Ast.expr) =
    match e.Ast.desc with
    | Ast.Binop ((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge), a, b)
      ->
        note a;
        note b
    | Ast.App ({ Ast.desc = Ast.Var "Array.make"; _ }, n) ->
        (* literal array sizes become length qualifiers *)
        note n
    | _ -> ()
  in
  List.iter (fun (i : Ast.item) -> Ast.fold visit () i.Ast.body) prog;
  Listx.take 16
    (Listx.dedup_ordered ~compare:Int.compare
       (List.filter (fun n -> n <> 0) !interesting))

(** Time [f], accumulating its wall-clock cost under [name] in [phases]
    (stored reversed; rendered in pipeline order at the end). *)
let timed phases name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  phases := (name, Unix.gettimeofday () -. t0) :: !phases;
  r

let verify_program ?(options = default) ?(parse_time = 0.0)
    ?(decls = Ast.no_decls) (prog : Ast.program) ~(source_lines : int) :
    report =
  let {
    quals;
    mine;
    specs;
    lint;
    incremental;
    prune;
    jobs;
    partition_timeout;
    cache_dir;
    explain;
    explain_limit;
    gradual;
  } =
    options
  in
  (* A warm process (daemon, repeated library calls) must never leak a
     counterexample or per-run counter from a previous run. *)
  Liquid_smt.Solver.reset_run_state ();
  (* Load the declaration unit's measures for this run.  [Measures.load]
     resets the table to the built-ins first, so a warm process never
     sees a previous run's measures — the qualifier pattern parser gates
     measure applications on the table, and a leaked name would make
     reports depend on what the process verified before.  The generated
     measure qualifier patterns ride along with the caller's set, so
     user measures get candidate refinements without any flag. *)
  Measures.load decls;
  let user_measures =
    List.map (fun (m : Ast.measure_decl) -> m.Ast.m_name) decls.Ast.measures
  in
  let quals =
    if user_measures = [] then quals
    else quals @ Qualifier.measure_defaults user_measures
  in
  let smt0 = Liquid_smt.Solver.stats.queries in
  let smt_hits0 = Liquid_smt.Solver.stats.cache_hits in
  let phases = ref [ ("parse", parse_time) ] in
  let source = prog in
  let prog =
    timed phases "anf" (fun () -> Liquid_anf.Anf.normalize_program prog)
  in
  let info =
    timed phases "hm" (fun () ->
        try Infer.infer_program ~decls prog
        with Infer.Type_error (msg, loc) ->
          raise (Source_error ("type error: " ^ msg, loc)))
  in
  (* Mining reads the pre-ANF source: A-normalization hoists literals
     into let-bindings, so mining the ANF form misses comparison
     operands.  It is costed under "congen" (qualifier material). *)
  let out, consts =
    timed phases "congen" (fun () ->
        (* κ and sub_id numbering restart per run: neither outlives a
           constraint system, and stable ids keep reports — blame paths
           in particular — byte-identical no matter what the process
           verified before (one-shot, warm daemon, test harness).  The
           partition cache additionally relies on this: unit signatures
           embed sub_ids, so per-run-stable numbering is what lets an
           unchanged unit's key match across runs. *)
        Rtype.reset_kvars ();
        Constr.reset_subs ();
        Liquid_common.Gensym.reset_inst ();
        let out =
          try Congen.generate ~specs info prog with
          | Congen.Congen_error (msg, loc) -> raise (Source_error (msg, loc))
          | Constr.Shape_error msg -> raise (Source_error (msg, Loc.dummy))
        in
        (out, if mine then mine_constants source else []))
  in
  let plan =
    timed phases "partition" (fun () ->
        Constr.partition_plan out.Congen.wfs out.Congen.subs)
  in
  let n_parts = Array.length plan.Constr.parts in
  let sharded = jobs > 1 && n_parts > 1 in
  (* Partition-level persistent cache: with [cache_dir] set, each solve
     unit round-trips its {!Fixpoint.partial} through the store under a
     content key (constraints + instantiated qualifiers + upstream κ
     solutions — computed by {!Liquid_engine.Psolve}), so a re-verify
     after an edit reuses every unit outside the edit's downstream cone.
     The fingerprint carries the payload version and the engine switches
     that shape a partial's stats; everything else that could change the
     result is already in the key. *)
  let punit_store =
    Option.map
      (fun dir -> Liquid_cache.Store.open_store ~dir ())
      cache_dir
  in
  let res, part_stats, degraded_parts, punit_hits, punit_misses =
    if sharded || punit_store <> None then begin
      let t0 = Unix.gettimeofday () in
      let reuse, persist =
        match punit_store with
        | None -> (None, None)
        | Some store ->
            let fingerprint =
              (* The declaration digest joins the engine switches: measure
                 semantics reach a unit's constraints through axioms and
                 embedding-time non-negativity facts, and the latter are
                 derived from the measure table rather than rendered into
                 the unit signature — so an edited measure body must
                 invalidate every unit of the program even when the
                 signatures it feeds are unchanged.  Declaration-free
                 programs keep their pre-measure fingerprints. *)
              (* [gradual] joins too: the solved partial is the same
                 either way, but gradual runs and plain runs must never
                 share cache entries — a stale partial served across the
                 mode boundary would make the two reports drift. *)
              Fmt.str "%s|incremental=%b|prune=%b|gradual=%b%s"
                Fixpoint.partial_version incremental prune gradual
                (match Measures.fingerprint decls with
                | "" -> ""
                | d -> "|decls=" ^ d)
            in
            let key k = Liquid_cache.Store.key store [ "punit"; k ] in
            ( Some
                (fun k ->
                  Liquid_cache.Store.find ~ns:"punit" store ~key:(key k)
                    ~fingerprint),
              Some
                (fun k (p : Fixpoint.partial) ->
                  Liquid_cache.Store.store ~ns:"punit" store ~key:(key k)
                    ~fingerprint p) )
      in
      let o =
        Liquid_engine.Psolve.solve ~incremental ~prune
          ?timeout:partition_timeout ?reuse ?persist ~jobs ~quals ~consts
          out.Congen.wfs out.Congen.subs plan
      in
      let wall = Unix.gettimeofday () -. t0 in
      (* Workers overlap, so per-unit solve/check CPU times don't sum to
         a wall-clock phase; report scheduler wall minus parent-side
         merge cost as "solve" and the merge cost itself as "merge". *)
      phases :=
        ("merge", o.Liquid_engine.Psolve.ps_merge_time)
        :: ("concrete_check", 0.0)
        :: ("solve", max 0.0 (wall -. o.Liquid_engine.Psolve.ps_merge_time))
        :: !phases;
      ( o.Liquid_engine.Psolve.ps_result,
        List.map
          (fun (i : Liquid_engine.Psolve.part_info) ->
            {
              pt_id = i.Liquid_engine.Psolve.pi_id;
              pt_kvars = i.Liquid_engine.Psolve.pi_kvars;
              pt_subs = i.Liquid_engine.Psolve.pi_subs;
              pt_time = i.Liquid_engine.Psolve.pi_time;
              pt_degraded = i.Liquid_engine.Psolve.pi_degraded;
            })
          o.Liquid_engine.Psolve.ps_parts,
        List.filter
          (fun (i : Liquid_engine.Psolve.part_info) ->
            i.Liquid_engine.Psolve.pi_degraded)
          o.Liquid_engine.Psolve.ps_parts,
        o.Liquid_engine.Psolve.ps_punit_hits,
        o.Liquid_engine.Psolve.ps_punit_misses )
    end
    else begin
      let res =
        Fixpoint.solve ~quals ~consts ~incremental ~prune out.Congen.wfs
          out.Congen.subs
      in
      (* The "solve" phase covers the whole solver-side work — prune
         analysis, weakening loop, reinstatement — so [elapsed] stays the
         sum of the phases whether or not pruning is on; the prune and
         reinstatement shares are also reported separately in the
         stats. *)
      phases :=
        ("merge", 0.0)
        :: ("concrete_check", res.Fixpoint.solver_stats.Fixpoint.check_time)
        :: ( "solve",
             res.Fixpoint.solver_stats.Fixpoint.solve_time
             +. res.Fixpoint.solver_stats.Fixpoint.prune_time
             +. res.Fixpoint.solver_stats.Fixpoint.reinstate_time )
        :: !phases;
      ( res,
        Array.to_list plan.Constr.parts
        |> List.map (fun (p : Constr.partition) ->
               {
                 pt_id = p.Constr.part_id;
                 pt_kvars = List.length p.Constr.part_kvars;
                 pt_subs = List.length p.Constr.part_subs;
                 pt_time = 0.0;
                 pt_degraded = false;
               }),
        [],
        0,
        0 )
    end
  in
  (* Deduplicate identical failures (same origin span, same reason, same
     goal) before reporting and explanation, keeping a count: one bad κ
     read by many constraints must not flood the report. *)
  let failures =
    let seen : (string, int ref) Hashtbl.t = Hashtbl.create 16 in
    let key (f : Fixpoint.failure) =
      Fmt.str "%a|%s|%d" Loc.pp f.Fixpoint.f_origin.Constr.loc
        f.Fixpoint.f_origin.Constr.reason
        (Liquid_logic.Pred.tag f.Fixpoint.f_goal)
    in
    List.iter
      (fun f ->
        let k = key f in
        match Hashtbl.find_opt seen k with
        | Some n -> incr n
        | None -> Hashtbl.add seen k (ref 1))
      res.Fixpoint.failures;
    let emitted : (string, unit) Hashtbl.t = Hashtbl.create 16 in
    List.filter_map
      (fun f ->
        let k = key f in
        if Hashtbl.mem emitted k then None
        else begin
          Hashtbl.add emitted k ();
          Some (f, !(Hashtbl.find seen k))
        end)
      res.Fixpoint.failures
  in
  let degraded_kvars =
    List.concat_map
      (fun (i : Liquid_engine.Psolve.part_info) ->
        plan.Constr.parts.(i.Liquid_engine.Psolve.pi_id).Constr.part_kvars)
      degraded_parts
  in
  (* Snapshot the query counter before the gradual/explain passes so
     their queries are counted once (in [n_explain_smt_queries]), not in
     [n_smt_queries] — gradual classification runs each obligation
     through the explain engine, so its SMT work is explain work. *)
  let explain_smt0 = Liquid_smt.Solver.stats.queries in
  (* Gradual classification: unrefuted failing obligations (plus the
     never-checked obligations of degraded partitions) become residual
     casts; only refuted obligations stay hard errors, each keeping the
     explanation classification already computed for it. *)
  let residuals, hard =
    if not gradual then
      ( ([] : Liquid_gradual.Gradual.residual list),
        List.map (fun (f, n) -> (f, n, None)) failures )
    else
      timed phases "gradual" (fun () ->
          let degraded_subs =
            List.concat_map
              (fun (i : Liquid_engine.Psolve.part_info) ->
                plan.Constr.parts.(i.Liquid_engine.Psolve.pi_id)
                  .Constr.part_subs)
              degraded_parts
          in
          let rs, hs =
            Liquid_gradual.Gradual.classify ~wfs:out.Congen.wfs
              ~subs:out.Congen.subs ~solution:res.Fixpoint.solution ~quals
              ~consts ~degraded_kvars ~degraded_subs failures
          in
          (rs, List.map (fun (f, n, ex) -> (f, n, Some ex)) hs))
  in
  let errors =
    List.map
      (fun ((f : Fixpoint.failure), count, _) ->
        {
          err_loc = f.Fixpoint.f_origin.Constr.loc;
          err_reason = f.Fixpoint.f_origin.Constr.reason;
          err_goal = Fmt.str "%a" Liquid_logic.Pred.pp f.Fixpoint.f_goal;
          err_count = count;
          err_cex = f.Fixpoint.f_cex;
        })
      hard
  in
  let explanation =
    if gradual then
      (* Classification already explained every obligation; the report's
         explanation section covers the hard (refuted) ones, residuals
         carry theirs inline. *)
      if (not explain) || hard = [] then
        { Liquid_explain.Explain.exs = []; skipped = 0 }
      else
        let exs = List.filter_map (fun (_, _, ex) -> ex) hard in
        let shown = Listx.take explain_limit exs in
        {
          Liquid_explain.Explain.exs = shown;
          skipped = List.length exs - List.length shown;
        }
    else if (not explain) || failures = [] then
      { Liquid_explain.Explain.exs = []; skipped = 0 }
    else
      timed phases "explain" (fun () ->
          Liquid_explain.Explain.explain ~limit:explain_limit ~degraded_kvars
            ~wfs:out.Congen.wfs ~subs:out.Congen.subs
            ~solution:res.Fixpoint.solution ~quals ~consts failures)
  in
  let item_types =
    List.map
      (fun (x, t) -> (x, Fixpoint.apply_solution res.Fixpoint.solution t))
      out.Congen.item_types
  in
  let kvars =
    List.length
      (Listx.dedup_ordered ~compare:Int.compare
         (List.map (fun (w : Constr.wf) -> w.Constr.wf_kvar) out.Congen.wfs))
  in
  (* Snapshot the query counter before the lint pass so lint queries are
     counted once (in [n_lint_smt_queries]), not also in
     [n_smt_queries]. *)
  let lint_smt0 = Liquid_smt.Solver.stats.queries in
  let lints =
    if not lint then []
    else
      timed phases "lint" (fun () ->
          Liquid_analysis.Lint.run ~source ~branches:out.Congen.branches
            ~solution:res.Fixpoint.solution ~quals
            ~dead_quals:res.Fixpoint.dead_quals)
  in
  (* Degraded partitions surface unconditionally — a pinned κ weakens the
     verdict, which the user must see even with linting off. *)
  let lints =
    List.map
      (fun (i : Liquid_engine.Psolve.part_info) ->
        Liquid_analysis.Diagnostic.make
          Liquid_analysis.Diagnostic.Partition_timeout Loc.dummy
          (Fmt.str
             "solve partition %d (%d κs, %d constraints) %s; its \
              refinements were degraded to true"
             i.Liquid_engine.Psolve.pi_id i.Liquid_engine.Psolve.pi_kvars
             i.Liquid_engine.Psolve.pi_subs
             (Option.value ~default:"failed"
                i.Liquid_engine.Psolve.pi_detail)))
      degraded_parts
    @ lints
  in
  let phases = List.rev !phases in
  {
    safe = errors = [];
    errors;
    residuals;
    item_types;
    lints;
    explanations = explanation.Liquid_explain.Explain.exs;
    explain_skipped = explanation.Liquid_explain.Explain.skipped;
    stats =
      {
        source_lines;
        ast_nodes =
          List.fold_left (fun n (i : Ast.item) -> n + Ast.size i.Ast.body) 0 prog;
        n_kvars = kvars;
        n_wf_constraints = List.length out.Congen.wfs;
        n_sub_constraints = List.length out.Congen.subs;
        n_qualifiers = List.length quals;
        n_measures = List.length user_measures;
        n_measure_axioms = out.Congen.n_measure_axioms;
        n_initial_candidates =
          res.Fixpoint.solver_stats.Fixpoint.initial_candidates;
        n_alpha_collapsed =
          res.Fixpoint.solver_stats.Fixpoint.alpha_collapsed;
        n_quals_pruned =
          res.Fixpoint.solver_stats.Fixpoint.pruned_dedup
          + res.Fixpoint.solver_stats.Fixpoint.pruned_refuted
          + res.Fixpoint.solver_stats.Fixpoint.pruned_subsumed;
        n_pruned_dedup = res.Fixpoint.solver_stats.Fixpoint.pruned_dedup;
        n_pruned_refuted = res.Fixpoint.solver_stats.Fixpoint.pruned_refuted;
        n_pruned_subsumed =
          res.Fixpoint.solver_stats.Fixpoint.pruned_subsumed;
        n_reinstated = res.Fixpoint.solver_stats.Fixpoint.reinstated;
        prune_time = res.Fixpoint.solver_stats.Fixpoint.prune_time;
        reinstate_time = res.Fixpoint.solver_stats.Fixpoint.reinstate_time;
        n_implication_checks =
          res.Fixpoint.solver_stats.Fixpoint.implication_checks;
        n_smt_queries = explain_smt0 - smt0;
        n_smt_cache_hits = Liquid_smt.Solver.stats.cache_hits - smt_hits0;
        n_explain_smt_queries = lint_smt0 - explain_smt0;
        n_lint_smt_queries = Liquid_smt.Solver.stats.queries - lint_smt0;
        n_diagnostics = List.length lints;
        n_partitions = n_parts;
        critical_path = plan.Constr.critical_path;
        partitions = part_stats;
        n_residuals = List.length residuals;
        n_residuals_degraded =
          List.length
            (List.filter
               (fun (r : Liquid_gradual.Gradual.residual) ->
                 r.Liquid_gradual.Gradual.rc_degraded)
               residuals);
        n_uncacheable_degraded = 0;
        n_pcache_lookups = 0;
        n_pcache_hits = 0;
        n_punit_hits = punit_hits;
        n_punit_misses = punit_misses;
        elapsed = List.fold_left (fun acc (_, t) -> acc +. t) 0.0 phases;
        phases;
      };
  }

(* -- Persistent result cache ------------------------------------------------- *)

(* Canonical rendering of everything in [options] that determines the
   report, beyond the source text: the qualifier set, external specs,
   and the engine switches.  [jobs]/[partition_timeout] are deliberately
   excluded — verdicts and types are scheduling-invariant (the liquid
   fixpoint is unique), and reports that were degraded by a partition
   timeout are never cached — so a cache warmed at one worker count
   serves every other.  The leading tag versions the marshalled payload
   type. *)
let options_fingerprint (o : options) : string =
  Fmt.str
    "pipeline-report/v6|mine=%b|lint=%b|incremental=%b|prune=%b|explain=%b|explain_limit=%d|gradual=%b|quals=[%a]|specs=[%a]"
    o.mine o.lint o.incremental o.prune o.explain o.explain_limit o.gradual
    Fmt.(list ~sep:(any " ;; ") Qualifier.pp)
    o.quals Spec.pp o.specs

let cache_key ~(options : options) ~(name : string) (src : string)
    (store : Liquid_cache.Store.t) : string =
  Liquid_cache.Store.key store [ name; src; options_fingerprint options ]

(* Canonical digest of one verification request: the report-determining
   options (as rendered by [options_fingerprint]) ‖ the payload.  Two
   requests with equal keys are guaranteed byte-identical reports, so
   the daemon uses this both to memoize finished reports and to
   coalesce concurrent identical solves onto one worker. *)
let request_key ~(options : options) ~(name : string) (src : string) : string =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00" [ options_fingerprint options; name; src ]))

(* A report is cacheable unless a partition was degraded to ⊤ by a
   timeout or crash: degradation is a property of that run's scheduling,
   not of the program, and must not be replayed from disk. *)
let cacheable (r : report) : bool =
  List.for_all (fun p -> not p.pt_degraded) r.stats.partitions

(** Re-intern a report that crossed a process boundary (disk cache,
    scheduler pipe, daemon socket): unmarshalled predicates are
    physically foreign to the local hash-cons tables, which breaks the
    physical-equality tricks downstream (e.g. the printer eliding [true]
    refinements).  Everything else in a report is plain data. *)
let rehash_report (r : report) : report =
  let go = Rtype.rehash () in
  let ex =
    Liquid_explain.Explain.rehash
      {
        Liquid_explain.Explain.exs = r.explanations;
        skipped = r.explain_skipped;
      }
  in
  {
    r with
    item_types = List.map (fun (x, t) -> (x, go t)) r.item_types;
    explanations = ex.Liquid_explain.Explain.exs;
    residuals = Liquid_gradual.Gradual.rehash r.residuals;
  }

(** Probe the persistent cache for a finished report ([None] when
    [options.cache_dir] is unset or the entry is absent/stale).  The
    verification daemon calls this parent-side so a warm request never
    pays a worker fork. *)
let cache_lookup ~(options : options) ~(name : string) (src : string) :
    report option =
  match options.cache_dir with
  | None -> None
  | Some dir ->
      let store = Liquid_cache.Store.open_store ~dir () in
      let fingerprint = options_fingerprint options in
      let key = cache_key ~options ~name src store in
      Option.map
        (fun (r : report) ->
          {
            (rehash_report r) with
            stats = { r.stats with n_pcache_lookups = 1; n_pcache_hits = 1 };
          })
        (Liquid_cache.Store.find store ~key ~fingerprint)

let verify_string ?(options = default) ?(name = "<string>") (src : string) :
    report =
  let verify_cold () =
    let t0 = Unix.gettimeofday () in
    let prog, decls = parse_program_decls ~name src in
    let parse_time = Unix.gettimeofday () -. t0 in
    verify_program ~options ~parse_time ~decls prog
      ~source_lines:(count_lines src)
  in
  match options.cache_dir with
  | None -> verify_cold ()
  | Some dir -> (
      match cache_lookup ~options ~name src with
      | Some r -> r
      | None ->
          let r = verify_cold () in
          let store = Liquid_cache.Store.open_store ~dir () in
          let r =
            if cacheable r then begin
              Liquid_cache.Store.store store
                ~key:(cache_key ~options ~name src store)
                ~fingerprint:(options_fingerprint options) r;
              r
            end
            else
              (* Degraded reports are (rightly) never cached; count the
                 refusal so a warm-run user can see why this program
                 keeps re-solving ([--stats uncacheable-degraded=]). *)
              { r with stats = { r.stats with n_uncacheable_degraded = 1 } }
          in
          { r with stats = { r.stats with n_pcache_lookups = 1 } })

let verify_file ?(options = default) (path : string) : report =
  let ic = open_in path in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  verify_string ~options ~name:path src

(* -- Report printing ---------------------------------------------------------- *)

let pp_error ppf (e : error) =
  Fmt.pf ppf "%a: %s" Loc.pp e.err_loc e.err_reason;
  if e.err_count > 1 then Fmt.pf ppf " (×%d)" e.err_count;
  Fmt.pf ppf "@,  unprovable obligation: %s" e.err_goal;
  match e.err_cex with
  | [] -> ()
  | cex ->
      Fmt.pf ppf "@,  possible counterexample: %a"
        Fmt.(
          list ~sep:(any ", ") (fun ppf (x, v) ->
              Fmt.pf ppf "%s = %a" x Liquid_smt.Solver.pp_cex_value v))
        (Liquid_common.Listx.take 6 cex)

let pp_report ppf (r : report) =
  let user_items =
    List.filter (fun (x, _) -> not (Ident.is_internal x)) r.item_types
  in
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun (x, t) ->
      Fmt.pf ppf "val %a : %a@," Ident.pp x Rtype.pp (Report.display t))
    user_items;
  let pp_residuals ppf () =
    List.iter
      (fun rc -> Fmt.pf ppf "  %a@," Liquid_gradual.Gradual.pp_residual rc)
      r.residuals
  in
  if r.safe && r.residuals = [] then Fmt.pf ppf "@,program is SAFE@,"
  else if r.safe then begin
    let n = List.length r.residuals in
    Fmt.pf ppf "@,program is SAFE_MODULO %d residual cast%s:@," n
      (if n = 1 then "" else "s");
    pp_residuals ppf ()
  end
  else begin
    Fmt.pf ppf "@,program is UNSAFE (%d obligations failed):@,"
      (List.length r.errors);
    List.iter (fun e -> Fmt.pf ppf "  %a@," pp_error e) r.errors;
    if r.residuals <> [] then begin
      let n = List.length r.residuals in
      Fmt.pf ppf "@,%d further obligation%s deferred to residual cast%s:@," n
        (if n = 1 then "" else "s")
        (if n = 1 then "" else "s");
      pp_residuals ppf ()
    end
  end;
  if r.explanations <> [] then begin
    Fmt.pf ppf "@,explanations:@,";
    List.iter
      (fun ex -> Fmt.pf ppf "  %a@," Liquid_explain.Explain.pp_explanation ex)
      r.explanations;
    if r.explain_skipped > 0 then
      Fmt.pf ppf "  %d further failure%s not explained (raise with \
                  --explain-limit)@,"
        r.explain_skipped
        (if r.explain_skipped = 1 then "" else "s")
  end;
  if r.lints <> [] then begin
    Fmt.pf ppf "@,%d diagnostic%s:@," (List.length r.lints)
      (if List.length r.lints = 1 then "" else "s");
    List.iter
      (fun d -> Fmt.pf ppf "  %a@," Liquid_analysis.Diagnostic.pp d)
      r.lints
  end;
  Fmt.pf ppf "@]"

(* -- JSON rendering ----------------------------------------------------------- *)

let json_of_cex_value : Liquid_smt.Solver.cex_value -> Liquid_analysis.Json.t
    = function
  | Liquid_smt.Solver.Vint n -> Liquid_analysis.Json.Int n
  | Liquid_smt.Solver.Vbool b -> Liquid_analysis.Json.Bool b

let json_of_error (e : error) : Liquid_analysis.Json.t =
  let open Liquid_analysis in
  Json.Obj
    [
      ("loc", Diagnostic.json_of_loc e.err_loc);
      ("reason", Json.String e.err_reason);
      ("goal", Json.String e.err_goal);
      ("count", Json.Int e.err_count);
      ( "counterexample",
        Json.Obj (List.map (fun (x, v) -> (x, json_of_cex_value v)) e.err_cex)
      );
    ]

let json_of_explanation (ex : Liquid_explain.Explain.explanation) :
    Liquid_analysis.Json.t =
  let open Liquid_analysis in
  let open Liquid_explain.Explain in
  let pred_str p = Fmt.str "%a" Liquid_logic.Pred.pp p in
  Json.Obj
    [
      ("loc", Diagnostic.json_of_loc ex.ex_origin.Liquid_infer.Constr.loc);
      ("reason", Json.String ex.ex_origin.Liquid_infer.Constr.reason);
      ("goal", Json.String (pred_str ex.ex_goal));
      ("count", Json.Int ex.ex_count);
      ("refuted", Json.Bool ex.ex_refuted);
      ( "witness",
        Json.Obj
          (List.map (fun (x, v) -> (x, json_of_cex_value v)) ex.ex_witness) );
      ( "core",
        Json.List
          (List.map
             (fun (h : core_hyp) ->
               Json.Obj
                 [
                   ("pred", Json.String (pred_str h.ch_pred));
                   ( "binder",
                     match h.ch_binder with
                     | Some x -> Json.String (Fmt.str "%a" Ident.pp x)
                     | None -> Json.Null );
                   ( "kvar",
                     match h.ch_kvar with
                     | Some k -> Json.Int k
                     | None -> Json.Null );
                 ])
             ex.ex_core) );
      ( "blame",
        Json.List
          (List.map
             (fun (s : blame_step) ->
               Json.Obj
                 [
                   ("kvar", Json.Int s.bs_kvar);
                   ( "origins",
                     Json.List
                       (List.map
                          (fun (o : Liquid_infer.Constr.origin) ->
                            Json.Obj
                              [
                                ( "loc",
                                  Diagnostic.json_of_loc
                                    o.Liquid_infer.Constr.loc );
                                ( "reason",
                                  Json.String o.Liquid_infer.Constr.reason );
                              ])
                          s.bs_origins) );
                 ])
             ex.ex_blame) );
      ( "repair",
        match ex.ex_repair with
        | None -> Json.Null
        | Some rp ->
            Json.Obj
              [
                ("kvar", Json.Int rp.rp_kvar);
                ("pred", Json.String (pred_str rp.rp_pred));
                ("loc", Diagnostic.json_of_loc rp.rp_loc);
              ] );
      ( "unexplained",
        match ex.ex_unexplained with
        | None -> Json.Null
        | Some why -> Json.String why );
    ]

let json_of_residual (rc : Liquid_gradual.Gradual.residual) :
    Liquid_analysis.Json.t =
  let open Liquid_analysis in
  let open Liquid_gradual.Gradual in
  Json.Obj
    [
      ("id", Json.String rc.rc_id);
      ("loc", Diagnostic.json_of_loc rc.rc_origin.Liquid_infer.Constr.loc);
      ("reason", Json.String rc.rc_origin.Liquid_infer.Constr.reason);
      ("goal", Json.String (Fmt.str "%a" Liquid_logic.Pred.pp rc.rc_goal));
      ("count", Json.Int rc.rc_count);
      ("degraded", Json.Bool rc.rc_degraded);
      ( "witness",
        Json.Obj
          (List.map (fun (x, v) -> (x, json_of_cex_value v)) rc.rc_witness) );
      ("explanation", json_of_explanation rc.rc_explanation);
    ]

let json_of_stats (s : stats) : Liquid_analysis.Json.t =
  let open Liquid_analysis in
  Json.Obj
    [
      ("source_lines", Json.Int s.source_lines);
      ("ast_nodes", Json.Int s.ast_nodes);
      ("kvars", Json.Int s.n_kvars);
      ("wf_constraints", Json.Int s.n_wf_constraints);
      ("sub_constraints", Json.Int s.n_sub_constraints);
      ("qualifiers", Json.Int s.n_qualifiers);
      ("measures", Json.Int s.n_measures);
      ("measure_axioms", Json.Int s.n_measure_axioms);
      ("initial_candidates", Json.Int s.n_initial_candidates);
      ("alpha_collapsed", Json.Int s.n_alpha_collapsed);
      ("quals_pruned", Json.Int s.n_quals_pruned);
      ("pruned_dedup", Json.Int s.n_pruned_dedup);
      ("pruned_refuted", Json.Int s.n_pruned_refuted);
      ("pruned_subsumed", Json.Int s.n_pruned_subsumed);
      ("reinstated", Json.Int s.n_reinstated);
      ("prune_time", Json.Float s.prune_time);
      ("reinstate_time", Json.Float s.reinstate_time);
      ("implication_checks", Json.Int s.n_implication_checks);
      ("smt_queries", Json.Int s.n_smt_queries);
      ("smt_cache_hits", Json.Int s.n_smt_cache_hits);
      ("lint_smt_queries", Json.Int s.n_lint_smt_queries);
      ("explain_smt_queries", Json.Int s.n_explain_smt_queries);
      ("diagnostics", Json.Int s.n_diagnostics);
      ("partitions", Json.Int s.n_partitions);
      ("critical_path", Json.Int s.critical_path);
      ( "partition",
        Json.List
          (List.map
             (fun p ->
               Json.Obj
                 [
                   ("id", Json.Int p.pt_id);
                   ("kvars", Json.Int p.pt_kvars);
                   ("subs", Json.Int p.pt_subs);
                   ("time", Json.Float p.pt_time);
                   ("degraded", Json.Bool p.pt_degraded);
                 ])
             s.partitions) );
      ("residuals", Json.Int s.n_residuals);
      ("residuals_degraded", Json.Int s.n_residuals_degraded);
      ("uncacheable_degraded", Json.Int s.n_uncacheable_degraded);
      ("pcache_lookups", Json.Int s.n_pcache_lookups);
      ("pcache_hits", Json.Int s.n_pcache_hits);
      ("punit_hits", Json.Int s.n_punit_hits);
      ("punit_misses", Json.Int s.n_punit_misses);
      ("elapsed", Json.Float s.elapsed);
      ( "phases",
        Json.Obj (List.map (fun (name, t) -> (name, Json.Float t)) s.phases) );
    ]

(** Machine-readable form of a report ([dsolve --format json]). *)
let json_of_report ?(file = "") (r : report) : Liquid_analysis.Json.t =
  let open Liquid_analysis in
  let user_items =
    List.filter (fun (x, _) -> not (Ident.is_internal x)) r.item_types
  in
  Json.Obj
    [
      ("file", Json.String file);
      ("safe", Json.Bool r.safe);
      ( "verdict",
        Json.String
          (Fmt.str "%a" Liquid_gradual.Gradual.pp_verdict
             (Liquid_gradual.Gradual.verdict_of
                ~errors:(List.length r.errors)
                ~residuals:(List.length r.residuals))) );
      ("errors", Json.List (List.map json_of_error r.errors));
      ("residuals", Json.List (List.map json_of_residual r.residuals));
      ("explanations", Json.List (List.map json_of_explanation r.explanations));
      ("explain_skipped", Json.Int r.explain_skipped);
      ( "types",
        Json.Obj
          (List.map
             (fun (x, t) ->
               ( Fmt.str "%a" Ident.pp x,
                 Json.String (Fmt.str "%a" Rtype.pp (Report.display t)) ))
             user_items) );
      ( "diagnostics",
        Json.List (List.map Diagnostic.to_json r.lints) );
      ("stats", json_of_stats r.stats);
    ]
