(** The DSOLVE pipeline: parse → A-normalize → ML inference → liquid
    constraint generation → fixpoint solving → report.  The public entry
    point of the library. *)

open Liquid_common
open Liquid_lang
open Liquid_infer

type error = {
  err_loc : Loc.t;
  err_reason : string;
  err_goal : string;
  err_count : int; (* identical failures folded into this one *)
  err_cex : (string * Liquid_smt.Solver.cex_value) list;
      (* falsifying values, when available *)
}

(** Shape and per-unit cost of the solve plan (see
    {!Liquid_infer.Constr.partition_plan}).  [pt_time]/[pt_degraded] are
    only meaningful under per-unit execution ([jobs > 1], or any run
    with [cache_dir] set); whole-system sequential runs report the
    plan's shape with zero times. *)
type part_stat = {
  pt_id : int;
  pt_kvars : int; (* κs owned by the partition *)
  pt_subs : int; (* constraints solved there *)
  pt_time : float; (* wall-clock seconds (sharded runs only) *)
  pt_degraded : bool; (* κs pinned to ⊤ after timeout/crash *)
}

type stats = {
  source_lines : int;
  ast_nodes : int;
  n_kvars : int;
  n_wf_constraints : int;
  n_sub_constraints : int;
  n_qualifiers : int; (* qualifier patterns supplied *)
  n_measures : int; (* user-declared measures in the program *)
  n_measure_axioms : int; (* measure axioms emitted during congen *)
  n_initial_candidates : int; (* total instances over all κs *)
  n_alpha_collapsed : int;
      (* instances collapsed by orientation-level dedup at instantiation *)
  n_quals_pruned : int; (* instances parked by the pre-fixpoint prune *)
  n_pruned_dedup : int; (* ... as orientation duplicates *)
  n_pruned_refuted : int; (* ... as unsat under the κ's WF environment *)
  n_pruned_subsumed : int; (* ... as implied by surviving siblings *)
  n_reinstated : int; (* instances restored by the reinstatement pass *)
  prune_time : float; (* seconds in the prune analysis *)
  reinstate_time : float; (* seconds in the reinstatement pass *)
  n_implication_checks : int;
  n_smt_queries : int;
  n_smt_cache_hits : int;
  n_lint_smt_queries : int; (* SMT queries spent by the lint pass *)
  n_explain_smt_queries : int; (* SMT queries spent by the explain pass *)
  n_diagnostics : int; (* lint diagnostics emitted *)
  n_partitions : int; (* solve units in the partition plan *)
  critical_path : int; (* longest dependency chain, in partitions *)
  partitions : part_stat list; (* by partition id *)
  n_residuals : int; (* residual casts ([gradual] runs only) *)
  n_residuals_degraded : int; (* ... owed to degraded partitions *)
  n_uncacheable_degraded : int;
      (* 1 iff this run's report was not stored in the persistent cache
         because a partition was degraded (cache enabled, miss path
         only) — the honest answer to "why does this warm run keep
         re-solving?" *)
  n_pcache_lookups : int;
      (* persistent-cache probes for this run: 1 when [cache_dir] is
         set, else 0 *)
  n_pcache_hits : int;
      (* 1 iff this report was served from the persistent cache; its
         other counters then describe the original (cold) run *)
  n_punit_hits : int;
      (* solve units served from the partition-level cache — an edited
         program re-solves only the cone downstream of the edit *)
  n_punit_misses : int;
      (* solve units solved live under an enabled partition cache *)
  elapsed : float; (* sum of the phase times below *)
  phases : (string * float) list;
      (* per-phase wall-clock seconds, in pipeline order:
         parse, anf, hm, congen, partition, solve, concrete_check,
         merge, gradual (when enabled), explain (when enabled), lint.
         [elapsed] is exactly their sum.  Sequential runs put fixpoint
         time under
         "solve"/"concrete_check" with a zero "merge"; sharded runs put
         scheduler wall time under "solve" (workers interleave their own
         concrete checks, reported as zero) and parent-side folding
         under "merge". *)
}

type report = {
  safe : bool;
  errors : error list;
  residuals : Liquid_gradual.Gradual.residual list;
      (* unprovable-but-unrefuted obligations deferred to runtime casts;
         empty unless [options.gradual].  [safe] means "no hard errors":
         a gradual report with residuals is SAFE_MODULO their count
         ({!Liquid_gradual.Gradual.verdict_of}). *)
  item_types : (Ident.t * Rtype.t) list; (* with the solution applied *)
  lints : Liquid_analysis.Diagnostic.t list; (* empty unless [lint] *)
  explanations : Liquid_explain.Explain.explanation list;
      (* one per explained failure; empty unless [explain] *)
  explain_skipped : int; (* failures beyond [explain_limit] *)
  stats : stats;
}

exception Source_error of string * Loc.t

(** Lines containing code outside comments (the LOC column of the results
    table); comment nesting is tracked across lines. *)
val count_lines : string -> int

(** Parse a compilation unit into its program and its declaration unit
    (type and measure declarations), validating the declarations
    ({!Liquid_lang.Declcheck}).
    @raise Source_error on lex/parse errors and on the first declaration
    diagnostic (message tagged with the [D]-code). *)
val parse_program_decls : name:string -> string -> Ast.program * Ast.decls

(** [parse_program_decls] without the declarations (legacy callers). *)
val parse_program : name:string -> string -> Ast.program

(** Integer literals the program compares against (qualifier mining). *)
val mine_constants : Ast.program -> int list

(** Everything that tunes a verification run; override fields of
    {!default} ([{ Pipeline.default with jobs = 4 }]).

    [quals] is the qualifier set; [mine] enables constant mining over
    the {e pre-ANF} source AST; [specs] supplies external signatures;
    [lint] runs the semantic-lint pass ({!Liquid_analysis.Lint}) and
    fills [report.lints]; [incremental] selects the fixpoint engine
    (see {!Liquid_infer.Fixpoint.solve}); [prune] runs the pre-fixpoint
    qualifier-space prune and post-fixpoint reinstatement
    ({!Liquid_infer.Prune}) — verdicts, types, and explanations are
    identical with it on or off, only the solve work shrinks;
    [jobs] > 1 solves independent
    constraint partitions in concurrent worker processes (verdicts,
    errors, and inferred types are identical to [jobs = 1]: the liquid
    fixpoint is unique); [partition_timeout] is the per-partition
    wall-clock budget under sharded execution — an exceeded partition is
    retried once, then degraded to ⊤ with a [P001] diagnostic;
    [cache_dir], when set, roots a persistent on-disk result cache
    ({!Liquid_cache.Store}): {!verify_string}/{!verify_file} first probe
    it for a finished report keyed on (name, source text, options
    fingerprint) and store their result on a miss, so re-verifying an
    unchanged program — even across processes and daemon restarts —
    costs one digest and one file read.  On a whole-run miss the solve
    itself runs incrementally over the same store: each solve unit of
    the partition plan is content-addressed (constraints + instantiated
    qualifiers + upstream κ solutions — see
    {!Liquid_engine.Psolve.solve}), units whose keys are unchanged are
    reused from disk, and only the cone downstream of an edit is
    re-solved ([stats.n_punit_hits]/[n_punit_misses]).  Stale or
    corrupt entries fall back silently to a cold solve. *)
type options = {
  quals : Qualifier.t list;
  mine : bool;
  specs : Spec.t;
  lint : bool;
  incremental : bool;
  prune : bool;
  jobs : int;
  partition_timeout : float option;
  cache_dir : string option;
  explain : bool;
      (* explain failed obligations after the fixpoint: minimal cores,
         blame paths, witnesses, repair hints ({!Liquid_explain.Explain}) *)
  explain_limit : int; (* failures explained per run; the rest counted *)
  gradual : bool;
      (* gradual liquid mode ({!Liquid_gradual.Gradual}): after the
         fixpoint, each failing obligation the environment does not
         refute — and each obligation a degraded partition never
         checked — becomes a residual runtime cast ([report.residuals])
         instead of an error; only refuted obligations stay in
         [report.errors].  Orthogonal to every solve switch: residual
         reports are byte-identical across job counts, cache
         temperatures, and the daemon, and gradual/non-gradual runs
         never share cache entries (both fingerprints carry the flag). *)
}

(** Defaults: {!Liquid_infer.Qualifier.defaults}, mining on, no specs,
    lint off, incremental engine, pruning on, [jobs = 1], 60 s partition
    timeout, no persistent cache, explanation off with a limit of 5,
    gradual mode off. *)
val default : options

(** Canonical rendering of the report-determining option fields
    (qualifier set, specs, engine switches; [jobs] and
    [partition_timeout] are excluded — verdicts are
    scheduling-invariant and degraded reports are never cached).  Part
    of the persistent cache key, and embedded in every entry. *)
val options_fingerprint : options -> string

(** Canonical digest of one verification request:
    {!options_fingerprint} ‖ an MD5 over (name, source).  Requests with
    equal keys are guaranteed byte-identical reports — the daemon keys
    its in-memory memo table and its in-flight coalescing map on this,
    folding concurrent identical solves onto one worker. *)
val request_key : options:options -> name:string -> string -> string

(** Re-intern a report that crossed a process boundary (disk cache,
    scheduler pipe, daemon socket): maps its unmarshalled — physically
    foreign — predicates back to the canonical hash-consed nodes, so the
    report prints and compares exactly like a natively computed one. *)
val rehash_report : report -> report

(** Probe the persistent cache for a finished report of [src] under
    [options] ([None] when [options.cache_dir] is unset, or on a miss).
    Reports served from the cache have [stats.n_pcache_hits = 1] and are
    re-interned ({!rehash_report}) before being returned. *)
val cache_lookup : options:options -> name:string -> string -> report option

(** Verify a parsed program.  [parse_time] seeds the "parse" entry of
    [stats.phases] for callers that parsed separately.  [decls] is the
    program's declaration unit (default {!Liquid_lang.Ast.no_decls}),
    assumed already validated by {!Liquid_lang.Declcheck} — its measures
    are loaded for the run and their generated qualifier patterns
    appended to [options.quals].
    @raise Source_error on type errors. *)
val verify_program :
  ?options:options ->
  ?parse_time:float ->
  ?decls:Ast.decls ->
  Ast.program ->
  source_lines:int ->
  report

val verify_string : ?options:options -> ?name:string -> string -> report
val verify_file : ?options:options -> string -> report

val pp_error : Format.formatter -> error -> unit

(** Print inferred types (display-cleaned), the verdict, and any
    diagnostics. *)
val pp_report : Format.formatter -> report -> unit

(** Machine-readable form of a report ([dsolve --format json]). *)
val json_of_report : ?file:string -> report -> Liquid_analysis.Json.t

(** Machine-readable form of one explanation (an element of the
    report's ["explanations"] array). *)
val json_of_explanation :
  Liquid_explain.Explain.explanation -> Liquid_analysis.Json.t

(** Machine-readable form of one residual cast (an element of the
    report's ["residuals"] array). *)
val json_of_residual :
  Liquid_gradual.Gradual.residual -> Liquid_analysis.Json.t
