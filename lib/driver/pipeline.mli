(** The DSOLVE pipeline: parse → A-normalize → ML inference → liquid
    constraint generation → fixpoint solving → report.  The public entry
    point of the library. *)

open Liquid_common
open Liquid_lang
open Liquid_infer

type error = {
  err_loc : Loc.t;
  err_reason : string;
  err_goal : string;
  err_cex : (string * int) list; (* falsifying values, when available *)
}

type stats = {
  source_lines : int;
  ast_nodes : int;
  n_kvars : int;
  n_wf_constraints : int;
  n_sub_constraints : int;
  n_qualifiers : int; (* qualifier patterns supplied *)
  n_initial_candidates : int; (* total instances over all κs *)
  n_implication_checks : int;
  n_smt_queries : int;
  n_smt_cache_hits : int;
  n_lint_smt_queries : int; (* SMT queries spent by the lint pass *)
  n_diagnostics : int; (* lint diagnostics emitted *)
  elapsed : float; (* wall-clock seconds for the whole pipeline *)
  phases : (string * float) list;
      (* per-phase wall-clock seconds, in pipeline order:
         parse, anf, hm, congen, solve, concrete_check, lint *)
}

type report = {
  safe : bool;
  errors : error list;
  item_types : (Ident.t * Rtype.t) list; (* with the solution applied *)
  lints : Liquid_analysis.Diagnostic.t list; (* empty unless [lint] *)
  stats : stats;
}

exception Source_error of string * Loc.t

(** Lines containing code outside comments (the LOC column of the results
    table); comment nesting is tracked across lines. *)
val count_lines : string -> int

(** @raise Source_error on lex/parse errors. *)
val parse_program : name:string -> string -> Ast.program

(** Integer literals the program compares against (qualifier mining). *)
val mine_constants : Ast.program -> int list

(** Verify a parsed program.  [quals] is the qualifier set (defaults to
    {!Liquid_infer.Qualifier.defaults}); [mine] enables constant mining
    over the {e pre-ANF} source AST (default true); [lint] additionally
    runs the semantic-lint pass ({!Liquid_analysis.Lint}) and fills
    [report.lints] (default false); [incremental] selects the fixpoint
    engine (default true; see {!Liquid_infer.Fixpoint.solve});
    [parse_time] seeds the "parse" entry of [stats.phases] for callers
    that parsed separately.
    @raise Source_error on type errors. *)
val verify_program :
  ?quals:Qualifier.t list ->
  ?mine:bool ->
  ?specs:Spec.t ->
  ?lint:bool ->
  ?incremental:bool ->
  ?parse_time:float ->
  Ast.program ->
  source_lines:int ->
  report

val verify_string :
  ?quals:Qualifier.t list ->
  ?mine:bool ->
  ?specs:Spec.t ->
  ?lint:bool ->
  ?incremental:bool ->
  ?name:string ->
  string ->
  report

val verify_file :
  ?quals:Qualifier.t list ->
  ?mine:bool ->
  ?specs:Spec.t ->
  ?lint:bool ->
  ?incremental:bool ->
  string ->
  report

val pp_error : Format.formatter -> error -> unit

(** Print inferred types (display-cleaned), the verdict, and any
    diagnostics. *)
val pp_report : Format.formatter -> report -> unit

(** Machine-readable form of a report ([dsolve --format json]). *)
val json_of_report : ?file:string -> report -> Liquid_analysis.Json.t
