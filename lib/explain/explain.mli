(** Error explanation for failed verification runs: minimal hypothesis
    cores, source-located blame paths through the κ-dependency graph,
    concrete witnesses, and verified repair hints.

    Runs {e post-fixpoint} on per-unit state — the final solution and
    the constraint system — so it composes with every solve schedule;
    all searches are deterministic (candidates in construction order,
    writers in [sub_id] order), making explanations byte-identical
    across job counts and process boundaries.  Failures whose backward
    κ-closure touches a degraded (⊤-pinned) partition are reported as
    unexplained rather than blamed on fabricated refinements. *)

open Liquid_common
open Liquid_logic
open Liquid_infer
open Liquid_smt

(** One fact of a minimal hypothesis core, with its provenance: the
    environment binder that contributed it ([None] for guards and
    left-hand-side facts) and the κ whose solution instance it is
    ([None] for static refinement parts and measure axioms). *)
type core_hyp = {
  ch_pred : Pred.t;
  ch_binder : Ident.t option;
  ch_kvar : Rtype.kvar option;
}

(** One step of a blame path: a κ and the program points whose
    constraints weakened it ([sub_id] order, deduplicated by span and
    reason). *)
type blame_step = { bs_kvar : Rtype.kvar; bs_origins : Constr.origin list }

(** A verified repair hint: adding qualifier instance [rp_pred] to the
    blamed κs (every blamed κ where it is well-formed, as a qualifier
    file would) both discharges the failing obligation and survives
    every constraint that weakens those κs — so a qualifier file
    containing the instance makes the obligation verify.  [rp_kvar] is
    the most proximate blamed κ, [rp_loc] where it is constrained. *)
type repair = { rp_kvar : Rtype.kvar; rp_pred : Pred.t; rp_loc : Loc.t }

type explanation = {
  ex_origin : Constr.origin;
  ex_goal : Pred.t;
  ex_count : int; (* identical failures folded into this one *)
  ex_witness : (string * Solver.cex_value) list;
  ex_refuted : bool;
      (* the environment refutes the goal outright; the core is then
         deletion-minimal (dropping any member loses the refutation).
         Otherwise the core is the relevance-retained hypothesis set —
         the only facts the verdict can depend on. *)
  ex_core : core_hyp list;
  ex_blame : blame_step list;
  ex_repair : repair option;
  ex_unexplained : string option;
      (* set (e.g. "partition timed out") when no core/blame/repair was
         computed; the witness, if any, is still reported *)
}

type result = {
  exs : explanation list;
  skipped : int; (* failures beyond [limit], not explained *)
}

(** Explain (at most [limit], default 5, of) the deduplicated failures
    of a run.  [solution] is the final fixpoint assignment; [quals] and
    [consts] are the run's qualifier patterns and mined constants (the
    repair search instantiates them, plus the default patterns as
    near-misses); [degraded_kvars] are κs pinned to ⊤ by degraded
    partitions.  Each failure carries the count of identical failures
    folded into it. *)
val explain :
  ?limit:int ->
  ?degraded_kvars:Rtype.kvar list ->
  wfs:Constr.wf list ->
  subs:Constr.sub list ->
  solution:Constr.solution ->
  quals:Qualifier.t list ->
  consts:int list ->
  (Fixpoint.failure * int) list ->
  result

(** Re-intern a result that crossed a process boundary (scheduler pipe,
    disk cache, daemon socket); see {!Pred.rehasher}. *)
val rehash : result -> result

val pp_witness : Format.formatter -> (string * Solver.cex_value) list -> unit
val pp_core_hyp : Format.formatter -> core_hyp -> unit
val pp_blame_step : Format.formatter -> blame_step -> unit
val pp_explanation : Format.formatter -> explanation -> unit
