(** Error explanation for failed verification runs.

    The fixpoint reports {e that} an obligation is unprovable; this
    module assembles {e why} from state the pipeline already has — the
    final solution, the constraint system, and the solver's relevance
    and counterexample machinery — into one {!explanation} per failure:

    - a {e minimal hypothesis core}: when the environment outright
      refutes the goal (a genuine contradiction), a deletion-minimal set
      of antecedent facts that still refutes it — dropping any member
      loses the refutation; when the goal is merely unprovable, the
      hypotheses relevance pruning retains (the only facts the verdict
      can depend on).  Each core fact carries its provenance: the
      environment binder that contributed it and the κ whose solution
      instance it is ({!Constr.embed_env_trace}).

    - a {e blame path}: a breadth-first walk backwards through the
      κ-dependency graph ({!Constr.reads}/{!Constr.writes}) from the κs
      of the core (and the failing constraint's left-hand side) to the
      program points whose constraints weakened them, rendered as
      source-located steps.

    - a {e concrete witness}: the falsifying model of the final check,
      as source-level valuations (booleans as booleans).

    - a {e repair hint}: a bounded search over the instantiated
      qualifier set Q* — the supplied patterns plus the default set as
      near-misses — for an instance whose addition to the blamed κs
      (every blamed κ where it is well-formed, as a qualifier file
      would add it) (a) discharges the failing obligation and (b)
      survives every constraint that weakens those κs.  Survival under
      the augmented assignment makes the hint {e sound}: weakening is
      monotone, so the augmented assignment is itself a valid
      (inductive) fixpoint, and the real solver, given a qualifier
      with that instance, infers one at least as strong.

    Explanation runs {e post-fixpoint} on per-unit state only: it needs
    the final solution and the constraint system, never the engine's
    worklist — which is why it composes with the partitioned scheduler.
    A failure whose backward κ-closure touches a degraded (⊤-pinned)
    partition is reported as unexplained rather than blamed on
    fabricated refinements.

    All searches are deterministic: candidate instances are tried in
    construction order (the order the fixpoint itself uses), writers in
    [sub_id] order, frontier κs in ascending order — so explanations
    are byte-identical across job counts and process boundaries. *)

open Liquid_common
open Liquid_logic
open Liquid_infer
open Liquid_smt
module ISet = Set.Make (Int)

type core_hyp = {
  ch_pred : Pred.t;
  ch_binder : Ident.t option; (* contributing env binder; [None]: guard/lhs *)
  ch_kvar : Rtype.kvar option; (* κ whose solution instance this is *)
}

type blame_step = {
  bs_kvar : Rtype.kvar;
  bs_origins : Constr.origin list;
      (* program points whose constraints weakened this κ, in [sub_id]
         order, deduplicated by span and reason *)
}

type repair = {
  rp_kvar : Rtype.kvar;
  rp_pred : Pred.t; (* the qualifier instance, over ν *)
  rp_loc : Loc.t; (* where the blamed κ is constrained *)
}

type explanation = {
  ex_origin : Constr.origin;
  ex_goal : Pred.t;
  ex_count : int; (* identical failures folded into this one *)
  ex_witness : (string * Solver.cex_value) list;
  ex_refuted : bool; (* the core refutes the goal outright *)
  ex_core : core_hyp list;
  ex_blame : blame_step list;
  ex_repair : repair option;
  ex_unexplained : string option; (* set: no core/blame/repair computed *)
}

type result = { exs : explanation list; skipped : int }

(* -- Bounds ---------------------------------------------------------- *)

(* Per-κ cap on candidate qualifier instances, and per-failure cap on
   candidate (local + survival) tests; both keep pathological qualifier
   sets from turning explanation into a second fixpoint run. *)
let max_candidates_per_kvar = 64

(* 256 exhausts before reaching the right instance on programs with a
   second concern in scope (more constants and scope variables inflate
   the candidate pool); the probes are incremental-context checks, so
   the larger budget costs tens of milliseconds, not a second fixpoint
   run. *)
let max_repair_tests = 512

(* Blame walks are capped in depth and breadth: past a few levels the
   κ-closure of real programs is the whole call graph, which explains
   nothing. *)
let max_blame_depth = 4
let max_blame_steps = 12

(* -- Context ---------------------------------------------------------- *)

type ctx = {
  lookup : Rtype.kvar -> Pred.t list;
  writers : (Rtype.kvar, Constr.sub list) Hashtbl.t; (* in sub_id order *)
  sub_by_id : (int, Constr.sub) Hashtbl.t;
  wfs_of : (Rtype.kvar, Constr.wf list) Hashtbl.t;
  pool : Qualifier.t list; (* user patterns, then defaults as near-misses *)
  consts : int list;
  degraded : ISet.t; (* κs pinned to ⊤ by a degraded partition *)
  cand_cache : (Rtype.kvar, Pred.t list) Hashtbl.t;
}

let make_ctx ~wfs ~subs ~solution ~quals ~consts ~degraded_kvars : ctx =
  let writers = Hashtbl.create 64 in
  let sub_by_id = Hashtbl.create 64 in
  List.iter
    (fun (c : Constr.sub) ->
      Hashtbl.replace sub_by_id c.Constr.sub_id c;
      match Constr.writes c with
      | None -> ()
      | Some k ->
          Hashtbl.replace writers k
            (c :: (try Hashtbl.find writers k with Not_found -> [])))
    subs;
  Hashtbl.iter
    (fun k cs ->
      Hashtbl.replace writers k
        (List.sort
           (fun (a : Constr.sub) b -> Int.compare a.Constr.sub_id b.Constr.sub_id)
           cs))
    (Hashtbl.copy writers);
  let wfs_of = Hashtbl.create 64 in
  List.iter
    (fun (w : Constr.wf) ->
      Hashtbl.replace wfs_of w.Constr.wf_kvar
        (w :: (try Hashtbl.find wfs_of w.Constr.wf_kvar with Not_found -> [])))
    (List.rev wfs);
  {
    lookup = (fun k -> Constr.sol_find solution k);
    writers;
    sub_by_id;
    wfs_of;
    pool = quals @ Qualifier.defaults @ Qualifier.list_defaults;
    consts;
    degraded = ISet.of_list degraded_kvars;
    cand_cache = Hashtbl.create 16;
  }

let writers_of ctx k = try Hashtbl.find ctx.writers k with Not_found -> []

(* -- Traced antecedent ------------------------------------------------ *)

(* The failing constraint's antecedent with per-fact provenance.  The
   prunable facts mirror {!Fixpoint.hypotheses} exactly (same facts,
   same order); the kept facts (lhs preds, then guards) likewise. *)
let traced_antecedent ctx (c : Constr.sub) :
    (Pred.t * Constr.fact_origin) list * (Pred.t * Constr.fact_origin) list =
  let facts, guards = Constr.embed_env_trace ctx.lookup c.Constr.sub_env in
  let lhs =
    List.map
      (fun (p, k) -> (p, { Constr.fo_binder = None; fo_kvar = k }))
      (Constr.preds_of_refinement_traced ctx.lookup
         (Fixpoint.vv_value c.Constr.vv_sort)
         c.Constr.lhs)
  in
  let guards =
    List.map
      (fun g -> (g, { Constr.fo_binder = None; fo_kvar = None }))
      guards
  in
  (facts, lhs @ guards)

(* -- Core minimization ------------------------------------------------ *)

(* Validity of [conj hyps => goal] with every hypothesis exempt from
   pruning — the precise test deletion minimization needs (pruning a
   candidate core would make "dropping this fact loses the refutation"
   unobservable). *)
let valid_with (hyps : Pred.t list) (goal : Pred.t) : bool =
  Solver.check_valid ~kept:hyps [] goal = Solver.Valid

(* Deletion-minimize [core] while [conj core => goal] stays valid:
   drop each member (in order) whose removal preserves validity.  The
   result is a local minimum: dropping any single remaining member
   breaks the implication. *)
let minimize (core : (Pred.t * Constr.fact_origin) list) (goal : Pred.t) :
    (Pred.t * Constr.fact_origin) list =
  let rec go kept = function
    | [] -> List.rev kept
    | h :: rest ->
        let others = List.rev_append kept rest in
        if valid_with (List.map fst others) goal then go kept rest
        else go (h :: kept) rest
  in
  go [] core

let core_hyp_of (p, (o : Constr.fact_origin)) =
  { ch_pred = p; ch_binder = o.Constr.fo_binder; ch_kvar = o.Constr.fo_kvar }

(* The minimal hypothesis core of a failure.  Refuted case (the
   environment contradicts the goal): seed with the hypotheses relevance
   pruning retains for the refutation query, then deletion-minimize.
   Unproven case: the retained hypotheses of the failing query itself —
   the only facts its verdict can depend on. *)
let core_of ctx (c : Constr.sub) (goal : Pred.t) :
    bool * core_hyp list =
  let facts, kept = traced_antecedent ctx c in
  let drop_tt = List.filter (fun (p, _) -> not (Pred.is_true p)) in
  let facts = drop_tt facts and kept = drop_tt kept in
  let fact_preds = List.map fst facts and kept_preds = List.map fst kept in
  let not_goal = Pred.not_ goal in
  let refute_verdict, refute_idx =
    Solver.check_valid_idx ~kept:kept_preds fact_preds not_goal
  in
  if refute_verdict = Solver.Valid then begin
    let fact_arr = Array.of_list facts in
    let seed = List.map (fun i -> fact_arr.(i)) refute_idx @ kept in
    (true, List.map core_hyp_of (minimize seed not_goal))
  end
  else begin
    let _, idx = Solver.check_valid_idx ~kept:kept_preds fact_preds goal in
    let fact_arr = Array.of_list facts in
    let retained = List.map (fun i -> fact_arr.(i)) idx @ kept in
    (false, List.map core_hyp_of retained)
  end

(* -- Blame path -------------------------------------------------------- *)

let dedup_origins (os : Constr.origin list) : Constr.origin list =
  Listx.dedup_ordered
    ~compare:(fun (a : Constr.origin) b ->
      match Loc.compare a.Constr.loc b.Constr.loc with
      | 0 -> String.compare a.Constr.reason b.Constr.reason
      | n -> n)
    os

(* Breadth-first backwards walk: from the seed κs to the constraints
   that weakened them, then to the κs those constraints read.  Steps
   come out in level order, κs ascending within a level — deterministic
   whatever the solve schedule was. *)
let blame_of ctx (seeds : Rtype.kvar list) : blame_step list =
  let steps = ref [] and n_steps = ref 0 in
  let visited = ref ISet.empty in
  let frontier = ref (Listx.dedup_ordered ~compare:Int.compare seeds) in
  let depth = ref 0 in
  while !frontier <> [] && !depth < max_blame_depth do
    incr depth;
    let next = ref ISet.empty in
    List.iter
      (fun k ->
        if (not (ISet.mem k !visited)) && !n_steps < max_blame_steps then begin
          visited := ISet.add k !visited;
          let ws = writers_of ctx k in
          incr n_steps;
          steps :=
            {
              bs_kvar = k;
              bs_origins =
                dedup_origins
                  (List.map (fun (w : Constr.sub) -> w.Constr.origin) ws);
            }
            :: !steps;
          List.iter
            (fun w ->
              List.iter
                (fun k' ->
                  if not (ISet.mem k' !visited) then next := ISet.add k' !next)
                (Constr.reads w))
            ws
        end)
      (List.sort Int.compare !frontier);
    frontier := ISet.elements !next
  done;
  List.rev !steps

(* The full backward κ-closure of the seeds under "κs read by writers
   of", in breadth-first order (most proximate first, ascending within
   a level).  Unlike the {e rendered} blame path this is uncapped: the
   repair search must see every κ the verdict can depend on — a
   mini-fixpoint restricted to a truncated set would collapse at the
   first missing intermediate κ — and the closure is bounded by the
   failing constraint's solve unit anyway. *)
let closure_of ctx (seeds : Rtype.kvar list) : Rtype.kvar list =
  let order = ref [] in
  let visited = ref ISet.empty in
  let frontier = ref (Listx.dedup_ordered ~compare:Int.compare seeds) in
  while !frontier <> [] do
    let next = ref ISet.empty in
    List.iter
      (fun k ->
        if not (ISet.mem k !visited) then begin
          visited := ISet.add k !visited;
          order := k :: !order;
          List.iter
            (fun w ->
              List.iter
                (fun k' ->
                  if not (ISet.mem k' !visited) then next := ISet.add k' !next)
                (Constr.reads w))
            (writers_of ctx k)
        end)
      (List.sort Int.compare !frontier);
    frontier := ISet.elements !next
  done;
  List.rev !order

(* -- Repair hints ------------------------------------------------------ *)

(* Candidate instances for κ: the qualifier pool instantiated at the
   κ's well-formedness environments (intersected over all of them, as
   the fixpoint's initial assignment is), minus instances already in
   the κ's solution.  Construction order — the order the fixpoint
   itself tries instances — makes the search deterministic. *)
let candidates_for ctx (k : Rtype.kvar) : Pred.t list =
  match Hashtbl.find_opt ctx.cand_cache k with
  | Some cs -> cs
  | None ->
      let wfsk = try Hashtbl.find ctx.wfs_of k with Not_found -> [] in
      let cs =
        match wfsk with
        | [] -> []
        | w0 :: rest ->
            let insts (w : Constr.wf) =
              Qualifier.instances ~consts:ctx.consts ctx.pool
                ~vv_sort:w.Constr.wf_sort
                ~scope:(Constr.scope_of_env w.Constr.wf_env)
            in
            let inter =
              List.fold_left
                (fun acc w ->
                  let here = insts w in
                  List.filter
                    (fun p -> List.exists (Pred.equal p) here)
                    acc)
                (insts w0) rest
            in
            let current = ctx.lookup k in
            Listx.take max_candidates_per_kvar
              (List.filter
                 (fun p ->
                   (not (Pred.is_true p))
                   && not (List.exists (Pred.equal p) current))
                 inter)
      in
      Hashtbl.add ctx.cand_cache k cs;
      cs

(* A user applies a hint by adding a qualifier {e pattern}, which the
   fixpoint instantiates at every κ where it is well-formed and then
   {e weakens} — keeping the instance exactly where it survives.  So a
   candidate instance [q] is evaluated the same way, restricted to the
   failure's backward κ-closure: start with [q] at every closure κ
   where it is a candidate, repeatedly drop it from κs where some
   writer refutes it under the augmented assignment, and keep what is
   left ([K] below).

   The loop is the weakening fixpoint of a one-instance candidate set,
   so what remains is inductive: monotonicity keeps every existing
   solution instance valid under the (stronger) augmented hypotheses,
   and [q] itself validates at every writer of every κ of [K] — checked
   under the augmented lookup, mutual support between [K]'s κs
   included.  The real solver, given a pattern with instance [q],
   starts from an initial assignment at least as strong and weakens to
   the greatest inductive assignment below it, which therefore keeps at
   least [K] — the hint is sound. *)
let augmented ctx (ks : ISet.t) (q : Pred.t) : Rtype.kvar -> Pred.t list =
 fun k' ->
  let ps = ctx.lookup k' in
  if ISet.mem k' ks then ps @ [ q ] else ps

(* The greatest subset of [ks0] at which [q] is inductive, or [None]
   when the query budget runs out mid-search (an unfinished search must
   not produce an unverified hint). *)
let inductive_subset ctx budget (ks0 : ISet.t) (q : Pred.t) : ISet.t option =
  let exception Out_of_budget in
  let holds_at lookup' (k : Rtype.kvar) : bool =
    List.for_all
      (fun (w : Constr.sub) ->
        match w.Constr.rhs with
        | Constr.Rkvar (_, theta) ->
            if !budget <= 0 then raise Out_of_budget;
            decr budget;
            let hyps, kept = Fixpoint.hypotheses lookup' w in
            Solver.check_valid ~kept hyps (Pred.subst theta q) = Solver.Valid
        | Constr.Rconc _ -> true)
      (writers_of ctx k)
  in
  let rec weaken ks =
    let lookup' = augmented ctx ks q in
    let kept = ISet.filter (holds_at lookup') ks in
    if ISet.equal kept ks then ks else weaken kept
  in
  match weaken ks0 with ks -> Some ks | exception Out_of_budget -> None

(* Does the failing obligation discharge under the augmented
   assignment? *)
let discharges ctx budget (c : Constr.sub) (goal : Pred.t) (ks : ISet.t)
    (q : Pred.t) : bool =
  !budget > 0
  && begin
       decr budget;
       let hyps, kept = Fixpoint.hypotheses (augmented ctx ks q) c in
       Solver.check_valid ~kept hyps goal = Solver.Valid
     end

let repair_of ctx (c : Constr.sub) (goal : Pred.t)
    (kvars : Rtype.kvar list) : repair option =
  let budget = ref max_repair_tests in
  (* Candidates in closure order (most proximate κ first), deduplicated;
     each is tried at every closure κ where it is well-formed. *)
  let cands =
    List.concat_map
      (fun k -> List.map (fun q -> (k, q)) (candidates_for ctx k))
      kvars
  in
  let seen = Pred.Tbl.create 32 in
  let rec try_cands = function
    | [] -> None
    | (k0, q) :: rest ->
        if !budget <= 0 then None
        else if Pred.Tbl.mem seen q then try_cands rest
        else begin
          Pred.Tbl.add seen q ();
          let ks0 =
            ISet.of_list
              (List.filter
                 (fun k -> List.exists (Pred.equal q) (candidates_for ctx k))
                 kvars)
          in
          match inductive_subset ctx budget ks0 q with
          | Some ks
            when (not (ISet.is_empty ks)) && discharges ctx budget c goal ks q
            ->
              (* Anchor the hint at the most proximate κ that kept the
                 instance. *)
              let k_hint =
                match List.find_opt (fun k -> ISet.mem k ks) kvars with
                | Some k -> k
                | None -> k0
              in
              let loc =
                match writers_of ctx k_hint with
                | w :: _ -> w.Constr.origin.Constr.loc
                | [] -> c.Constr.origin.Constr.loc
              in
              Some { rp_kvar = k_hint; rp_pred = q; rp_loc = loc }
          | _ -> try_cands rest
        end
  in
  try_cands cands

(* -- Degraded partitions ----------------------------------------------- *)

(* κs whose final solution a failure's verdict may depend on: the
   backward closure of the failing constraint's reads under "κs read by
   writers of".  If any of them was pinned to ⊤ by a degraded
   partition, the solution in hand is not the fixpoint's, and blaming
   it would fabricate provenance. *)
let touches_degraded ctx (c : Constr.sub) : bool =
  if ISet.is_empty ctx.degraded then false
  else begin
    let visited = ref ISet.empty in
    let frontier = ref (Constr.reads c) in
    let hit = ref false in
    while (not !hit) && !frontier <> [] do
      let next = ref [] in
      List.iter
        (fun k ->
          if not (ISet.mem k !visited) then begin
            visited := ISet.add k !visited;
            if ISet.mem k ctx.degraded then hit := true
            else
              List.iter
                (fun w -> next := Constr.reads w @ !next)
                (writers_of ctx k)
          end)
        !frontier;
      frontier := !next
    done;
    !hit
  end

(* -- Entry ------------------------------------------------------------- *)

let explain_failure ctx ((f : Fixpoint.failure), count) : explanation =
  let base =
    {
      ex_origin = f.Fixpoint.f_origin;
      ex_goal = f.Fixpoint.f_goal;
      ex_count = count;
      ex_witness = f.Fixpoint.f_cex;
      ex_refuted = false;
      ex_core = [];
      ex_blame = [];
      ex_repair = None;
      ex_unexplained = None;
    }
  in
  match Hashtbl.find_opt ctx.sub_by_id f.Fixpoint.f_sub_id with
  | None ->
      (* A failure with no constraint in hand (foreign report): witness
         only. *)
      { base with ex_unexplained = Some "originating constraint unavailable" }
  | Some c ->
      if touches_degraded ctx c then
        { base with ex_unexplained = Some "partition timed out" }
      else begin
        let refuted, core = core_of ctx c f.Fixpoint.f_goal in
        (* Seed with every κ the verdict can depend on: those whose
           instances made the core, plus everything the constraint
           reads (environment and left-hand side) — a κ whose solution
           is too weak to contribute any fact is precisely the one
           worth blaming. *)
        let seeds =
          List.filter_map (fun h -> h.ch_kvar) core @ Constr.reads c
        in
        let blame = blame_of ctx seeds in
        let repair = repair_of ctx c f.Fixpoint.f_goal (closure_of ctx seeds) in
        { base with ex_refuted = refuted; ex_core = core; ex_blame = blame;
          ex_repair = repair }
      end

let explain ?(limit = 5) ?(degraded_kvars = []) ~(wfs : Constr.wf list)
    ~(subs : Constr.sub list) ~(solution : Constr.solution)
    ~(quals : Qualifier.t list) ~(consts : int list)
    (failures : (Fixpoint.failure * int) list) : result =
  let ctx = make_ctx ~wfs ~subs ~solution ~quals ~consts ~degraded_kvars in
  let explained = Listx.take limit failures in
  {
    exs = List.map (explain_failure ctx) explained;
    skipped = max 0 (List.length failures - limit);
  }

(* -- Process boundaries ------------------------------------------------ *)

(** Re-intern an explanation set that crossed a process boundary (see
    {!Pred.rehasher}): every predicate in it must map back to the
    canonical local nodes before it meets native values. *)
let rehash (r : result) : result =
  let go = Pred.rehasher () in
  {
    r with
    exs =
      List.map
        (fun ex ->
          {
            ex with
            ex_goal = go ex.ex_goal;
            ex_core =
              List.map (fun h -> { h with ch_pred = go h.ch_pred }) ex.ex_core;
            ex_repair =
              Option.map
                (fun rp -> { rp with rp_pred = go rp.rp_pred })
                ex.ex_repair;
          })
        r.exs;
  }

(* -- Printing ---------------------------------------------------------- *)

let pp_witness ppf (w : (string * Solver.cex_value) list) =
  Fmt.pf ppf "%a"
    Fmt.(
      list ~sep:(any ", ") (fun ppf (x, v) ->
          Fmt.pf ppf "%s = %a" x Solver.pp_cex_value v))
    (Listx.take 6 w)

let pp_core_hyp ppf (h : core_hyp) =
  Pred.pp ppf h.ch_pred;
  (match (h.ch_binder, h.ch_kvar) with
  | Some x, Some k -> Fmt.pf ppf "   (%a, from k%d)" Ident.pp x k
  | Some x, None -> Fmt.pf ppf "   (%a)" Ident.pp x
  | None, Some k -> Fmt.pf ppf "   (from k%d)" k
  | None, None -> ())

let pp_blame_step ppf (s : blame_step) =
  match s.bs_origins with
  | [] -> Fmt.pf ppf "k%d is unconstrained" s.bs_kvar
  | os ->
      Fmt.pf ppf "k%d weakened at %a" s.bs_kvar
        Fmt.(
          list ~sep:(any "; ") (fun ppf (o : Constr.origin) ->
              Fmt.pf ppf "%a (%s)" Loc.pp o.Constr.loc o.Constr.reason))
        (Listx.take 4 os)

let pp_explanation ppf (ex : explanation) =
  Fmt.pf ppf "@[<v>%a: %s" Loc.pp ex.ex_origin.Constr.loc
    ex.ex_origin.Constr.reason;
  if ex.ex_count > 1 then Fmt.pf ppf " (×%d)" ex.ex_count;
  Fmt.pf ppf "@,  unprovable obligation: %a" Pred.pp ex.ex_goal;
  (match ex.ex_witness with
  | [] -> ()
  | w -> Fmt.pf ppf "@,  witness: %a" pp_witness w);
  (match ex.ex_unexplained with
  | Some why -> Fmt.pf ppf "@,  unexplained: %s" why
  | None ->
      (match ex.ex_core with
      | [] -> ()
      | core ->
          Fmt.pf ppf "@,  %s:"
            (if ex.ex_refuted then
               "minimal core (these facts contradict the obligation)"
             else "relevant hypotheses");
          List.iter (fun h -> Fmt.pf ppf "@,    %a" pp_core_hyp h) core);
      (match ex.ex_blame with
      | [] -> ()
      | blame ->
          Fmt.pf ppf "@,  blame path:";
          List.iter (fun s -> Fmt.pf ppf "@,    %a" pp_blame_step s) blame);
      (match ex.ex_repair with
      | None -> ()
      | Some rp ->
          Fmt.pf ppf
            "@,  repair hint: adding qualifier `%a` to k%d at %a would fix \
             this"
            Pred.pp rp.rp_pred rp.rp_kvar Loc.pp rp.rp_loc));
  Fmt.pf ppf "@]"
