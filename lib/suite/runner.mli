(** Running the benchmark suite: verification rows and the paper-style
    results table. *)

type row = {
  bench : Programs.benchmark;
  report : Liquid_driver.Pipeline.report;
  n_extra_quals : int;
  time : float; (* wall-clock seconds for the whole pipeline *)
}

val qualifiers_of : Programs.benchmark -> Liquid_infer.Qualifier.t list

(** Verify one benchmark with its qualifier set ([quals] overrides;
    constant mining off by default — the suite supplies qualifiers
    explicitly, as the paper's evaluation did; [lint] additionally runs
    the semantic-lint pass and fills [report.lints]; [prune] toggles the
    pre-fixpoint qualifier-space prune, default on; [jobs] defaults to
    the [DSOLVE_JOBS] environment variable when set, else 1, so CI can
    run the whole suite sharded). *)
val verify :
  ?quals:Liquid_infer.Qualifier.t list ->
  ?mine:bool ->
  ?lint:bool ->
  ?incremental:bool ->
  ?prune:bool ->
  ?jobs:int ->
  Programs.benchmark ->
  row

val verify_all : ?benchmarks:Programs.benchmark list -> unit -> row list

(** Paper-style results table. *)
val pp_table : Format.formatter -> row list -> unit

(** Execute a benchmark with the reference interpreter; returns its
    [main] value.  Raises on bounds/assertion violations — which, by
    soundness, cannot happen for verified programs. *)
val execute : Programs.benchmark -> Liquid_eval.Eval.value
