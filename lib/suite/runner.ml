(** Convenience layer for running the benchmark suite: verification with
    each benchmark's qualifier set, and a tabular summary mirroring the
    paper's results table. *)

type row = {
  bench : Programs.benchmark;
  report : Liquid_driver.Pipeline.report;
  n_extra_quals : int;
  time : float; (* wall-clock seconds for the whole pipeline *)
}

let qualifiers_of (b : Programs.benchmark) =
  Liquid_infer.Qualifier.defaults
  @ Liquid_infer.Qualifier.parse_string b.extra_qualifiers

(** Default worker count: the [DSOLVE_JOBS] environment variable when
    set (so CI can run the whole suite sharded without touching every
    call site), else sequential. *)
let default_jobs () =
  match Sys.getenv_opt "DSOLVE_JOBS" with
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> 1)
  | None -> 1

(** Verify one benchmark with its qualifier set.  Constant mining is off
    by default: the paper's evaluation supplies qualifiers explicitly, and
    mining only grows the candidate sets on these programs. *)
let verify ?quals ?(mine = false) ?(lint = false) ?(incremental = true)
    ?(prune = true) ?jobs (b : Programs.benchmark) : row =
  let quals = match quals with Some q -> q | None -> qualifiers_of b in
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let options =
    {
      Liquid_driver.Pipeline.default with
      Liquid_driver.Pipeline.quals;
      mine;
      lint;
      incremental;
      prune;
      jobs;
    }
  in
  let t0 = Unix.gettimeofday () in
  let report =
    Liquid_driver.Pipeline.verify_string ~options ~name:b.name b.source
  in
  {
    bench = b;
    report;
    n_extra_quals =
      List.length (Liquid_infer.Qualifier.parse_string b.extra_qualifiers);
    time = Unix.gettimeofday () -. t0;
  }

let verify_all ?(benchmarks = Programs.all) () : row list =
  List.map verify benchmarks

(** Paper-style results table.  The [DML] column is the paper-reported
    annotation size of the DML baseline (characters of manual dependent
    annotations); [Quals] counts qualifier {e patterns} beyond the shared
    default set, matching the paper's claim that a small shared set plus a
    handful of per-program patterns suffices. *)
let pp_table ppf (rows : row list) =
  Fmt.pf ppf "%-10s %6s %6s %8s %7s %9s %8s@." "Program" "Lines" "DML"
    "Quals(+)" "Safe" "SMTquery" "Time(s)";
  Fmt.pf ppf "%s@." (String.make 60 '-');
  List.iter
    (fun r ->
      let s = r.report.Liquid_driver.Pipeline.stats in
      Fmt.pf ppf "%-10s %6d %6d %8d %7s %9d %8.2f@." r.bench.Programs.name
        s.Liquid_driver.Pipeline.source_lines r.bench.Programs.dml_annot
        r.n_extra_quals
        (if r.report.Liquid_driver.Pipeline.safe then "yes" else "NO")
        s.Liquid_driver.Pipeline.n_smt_queries r.time)
    rows;
  let total_time = List.fold_left (fun a r -> a +. r.time) 0.0 rows in
  Fmt.pf ppf "%s@." (String.make 60 '-');
  Fmt.pf ppf "%-10s %6d %6s %8d %7s %9s %8.2f@." "Total"
    (List.fold_left
       (fun a r -> a + r.report.Liquid_driver.Pipeline.stats.Liquid_driver.Pipeline.source_lines)
       0 rows)
    ""
    (List.fold_left (fun a r -> a + r.n_extra_quals) 0 rows)
    (if List.for_all (fun r -> r.report.Liquid_driver.Pipeline.safe) rows then
       "yes"
     else "NO")
    "" total_time

(** Execute a benchmark with the reference interpreter; returns the value
    of its [main] binding.  Raises if evaluation violates bounds or an
    assertion — which, by soundness, cannot happen for a verified
    program. *)
let execute (b : Programs.benchmark) : Liquid_eval.Eval.value =
  let prog = Liquid_lang.Parser.program_of_string ~file:b.name b.source in
  let env = Liquid_eval.Eval.run_program ~fuel:10_000_000 prog in
  match Liquid_common.Ident.Map.find_opt "main" env with
  | Some v -> v
  | None -> failwith (b.name ^ ": no main binding")
