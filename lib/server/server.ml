open Liquid_infer
module Pipeline = Liquid_driver.Pipeline
module Scheduler = Liquid_engine.Scheduler

type config = {
  sock : string;
  cache_dir : string option;
  jobs : int;
  request_timeout : float option;
  quiet : bool;
}

let default_config ~sock =
  {
    sock;
    cache_dir = None;
    jobs = 1;
    request_timeout = Some 300.;
    quiet = false;
  }

let fault_for : (string -> Scheduler.fault option) ref = ref (fun _ -> None)

let log cfg fmt =
  if cfg.quiet then Format.ifprintf Format.err_formatter fmt
  else Fmt.epr ("dsolve-server: " ^^ fmt ^^ "@.")

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)

(* Translate one wire request into pipeline options; qualifier and
   specification text is parsed here, in the parent, so a malformed
   request is rejected without ever reaching a worker. *)
let options_of cfg (q : Protocol.verify_request) :
    (Pipeline.options, Protocol.verify_error) result =
  match
    let extra = Qualifier.parse_string ~file:q.vq_name q.vq_qual_text in
    let quals =
      (if q.vq_use_defaults then Qualifier.defaults else [])
      @ (if q.vq_list_quals then Qualifier.list_defaults else [])
      @ extra
    in
    let specs = Spec.parse_string q.vq_spec_text in
    {
      Pipeline.default with
      quals;
      specs;
      mine = q.vq_mine;
      lint = q.vq_lint;
      incremental = q.vq_incremental;
      explain = q.vq_explain;
      explain_limit = q.vq_explain_limit;
      jobs = 1 (* each program is already one worker *);
      cache_dir = cfg.cache_dir;
    }
  with
  | o -> Ok o
  | exception Qualifier.Parse_error msg ->
      Error { Protocol.ve_code = "E_QUALIFIER"; ve_message = msg }
  | exception Spec.Error msg ->
      Error { Protocol.ve_code = "E_SPEC"; ve_message = msg }

(* What a solve worker sends back over the scheduler's pipe.  Source
   errors are ordinary (deterministic) results, not worker faults. *)
type work_result =
  | W_ok of Pipeline.report
  | W_bad of Protocol.verify_error

let solve_one ~options (q : Protocol.verify_request) : work_result =
  match Pipeline.verify_string ~options ~name:q.vq_name q.vq_source with
  | r -> W_ok r
  | exception Pipeline.Source_error (msg, loc) ->
      W_bad
        {
          Protocol.ve_code = "E_SOURCE";
          ve_message = Fmt.str "%a: %s" Liquid_common.Loc.pp loc msg;
        }

(* ------------------------------------------------------------------ *)
(* Daemon state                                                        *)

type state = {
  cfg : config;
  started : float;
  mutable requests : int;
  mutable programs : int;
  mutable mem_hits : int;
  mutable disk_hits : int;
  mutable cold : int;
  mutable failures : int;
  (* Finished reports of this daemon's lifetime, keyed by a digest of
     the whole request record; bounded, cleared wholesale when full. *)
  memo : (string, Pipeline.report) Hashtbl.t;
  mutable running : bool;
}

let memo_cap = 512
let memo_key (q : Protocol.verify_request) = Digest.string (Marshal.to_string q [])

let memo_add st key report =
  if Hashtbl.length st.memo >= memo_cap then Hashtbl.reset st.memo;
  Hashtbl.replace st.memo key report

let stats_of st : Protocol.server_stats =
  {
    sv_requests = st.requests;
    sv_programs = st.programs;
    sv_mem_hits = st.mem_hits;
    sv_disk_hits = st.disk_hits;
    sv_cold = st.cold;
    sv_failures = st.failures;
    sv_uptime = Unix.gettimeofday () -. st.started;
    sv_cache =
      Option.map
        (fun dir ->
          Liquid_cache.Store.stats_snapshot
            (Liquid_cache.Store.open_store ~dir ()))
        st.cfg.cache_dir;
  }

(* Answer one batch.  Warm answers (memo, disk) are taken in the parent;
   the rest fan out through the scheduler so a crash or hang in any
   single solve is confined to its worker. *)
let handle_batch st (batch : Protocol.verify_request list) :
    Protocol.verify_reply list =
  st.requests <- st.requests + 1;
  st.programs <- st.programs + List.length batch;
  let n = List.length batch in
  let replies = Array.make n None in
  (* id, request, options of each program that needs a worker *)
  let cold = ref [] in
  List.iteri
    (fun i q ->
      match options_of st.cfg q with
      | Error e ->
          st.failures <- st.failures + 1;
          replies.(i) <- Some (Protocol.Rejected e)
      | Ok options -> (
          let key = memo_key q in
          match Hashtbl.find_opt st.memo key with
          | Some r ->
              st.mem_hits <- st.mem_hits + 1;
              replies.(i) <- Some (Protocol.Verified r)
          | None -> (
              match
                Pipeline.cache_lookup ~options ~name:q.Protocol.vq_name
                  q.Protocol.vq_source
              with
              | Some r ->
                  st.disk_hits <- st.disk_hits + 1;
                  memo_add st key r;
                  replies.(i) <- Some (Protocol.Verified r)
              | None -> cold := (i, q, options) :: !cold)))
    batch;
  (let units = Array.of_list (List.rev !cold) in
   if Array.length units > 0 then begin
     let saved = !Scheduler.fault_hook in
     Fun.protect
       ~finally:(fun () -> Scheduler.fault_hook := saved)
       (fun () ->
         (Scheduler.fault_hook :=
            fun u ->
              let _, q, _ = units.(u) in
              !fault_for q.Protocol.vq_name);
         Scheduler.run ?timeout:st.cfg.request_timeout
           ~jobs:(max 1 st.cfg.jobs) ~n_units:(Array.length units)
           ~deps:(fun _ -> [])
           ~work:(fun u ->
             let _, q, options = units.(u) in
             solve_one ~options q)
           ~merge:(fun u outcome _elapsed ->
             let i, q, _ = units.(u) in
             let reply =
               match outcome with
               | Scheduler.Done (W_ok r) ->
                   (* The report crossed the worker's pipe: re-intern
                      before it mixes with native values. *)
                   let r = Pipeline.rehash_report r in
                   st.cold <- st.cold + 1;
                   memo_add st (memo_key q) r;
                   Protocol.Verified r
               | Scheduler.Done (W_bad e) ->
                   st.failures <- st.failures + 1;
                   Protocol.Rejected e
               | Scheduler.Failed { timed_out; attempts; detail } ->
                   st.failures <- st.failures + 1;
                   let code = if timed_out then "E_TIMEOUT" else "E_CRASH" in
                   Protocol.Rejected
                     {
                       Protocol.ve_code = code;
                       ve_message =
                         Fmt.str "solve worker %s after %d attempt%s: %s"
                           (if timed_out then "timed out" else "crashed")
                           attempts
                           (if attempts = 1 then "" else "s")
                           detail;
                     }
             in
             replies.(i) <- Some reply)
           ())
   end);
  Array.to_list replies
  |> List.map (function
       | Some r -> r
       | None ->
           (* Unreachable: every index is filled above. *)
           Protocol.Rejected
             { Protocol.ve_code = "E_CRASH"; ve_message = "no reply produced" })

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)

(* One client, until it disconnects or asks for shutdown.  Any protocol
   or I/O trouble here closes this connection only. *)
let handle_connection st fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let finished = ref false in
  (try
     (match Protocol.recv_request ic with
     | Hello { version; stamp } ->
         if version <> Protocol.version then begin
           Protocol.send_reply oc
             (Protocol_error
                (Fmt.str "protocol version mismatch: server %d, client %d"
                   Protocol.version version));
           finished := true
         end
         else if stamp <> Protocol.build_stamp then begin
           Protocol.send_reply oc
             (Protocol_error
                "build mismatch: client and server are different dsolve \
                 binaries");
           finished := true
         end
         else
           Protocol.send_reply oc
             (Hello_ok { version = Protocol.version; stamp = Protocol.build_stamp })
     | _ ->
         Protocol.send_reply oc (Protocol_error "expected Hello");
         finished := true);
     while not !finished do
       match Protocol.recv_request ic with
       | Hello _ ->
           Protocol.send_reply oc (Protocol_error "duplicate Hello")
       | Verify batch ->
           let replies =
             try handle_batch st batch
             with exn ->
               (* A bug in batch handling must not kill the daemon:
                  reject the whole batch and keep serving. *)
               st.failures <- st.failures + List.length batch;
               let e =
                 {
                   Protocol.ve_code = "E_CRASH";
                   ve_message = "internal error: " ^ Printexc.to_string exn;
                 }
               in
               List.map (fun _ -> Protocol.Rejected e) batch
           in
           Protocol.send_reply oc (Results replies)
       | Stats -> Protocol.send_reply oc (Stats_reply (stats_of st))
       | Shutdown ->
           st.running <- false;
           Protocol.send_reply oc Bye;
           finished := true
     done
   with
  | End_of_file -> ()
  | Failure msg ->
      (try Protocol.send_reply oc (Protocol_error msg) with _ -> ())
  | Sys_error _ | Unix.Unix_error _ -> ());
  try close_out_noerr oc with _ -> ()

(* ------------------------------------------------------------------ *)

(* Force the lazy corners of the pipeline (primitive environments,
   default-qualifier parsing, hash-cons tables) so the first real
   request doesn't pay for them. *)
let warm_up () =
  ignore
    (Pipeline.verify_string ~name:"<warm-up>" "let warm = 1 + 1" : Pipeline.report)

(* Is something accepting connections on [sock]?  A plain [connect]
   probe: success means a live listener owns the path (we must not
   steal it); ECONNREFUSED or ENOENT means the file is a leftover of a
   dead daemon (or absent) and is safe to replace.  No handshake is
   attempted — a reply is not needed to establish liveness, and not
   reading means a wedged listener cannot hang the probe. *)
let socket_in_use sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match Unix.connect fd (Unix.ADDR_UNIX sock) with
      | () -> true
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
        ->
          false)

let serve cfg =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let st =
    {
      cfg;
      started = Unix.gettimeofday ();
      requests = 0;
      programs = 0;
      mem_hits = 0;
      disk_hits = 0;
      cold = 0;
      failures = 0;
      memo = Hashtbl.create 64;
      running = true;
    }
  in
  (* Probe before warming up: refusing to start should be instant, and
     unlinking a live daemon's socket would orphan it — clients would
     reach whichever process bound the path last while the other keeps
     running unreachable. *)
  if socket_in_use cfg.sock then
    failwith
      (Printf.sprintf
         "socket %s is owned by a running daemon; shut it down first or \
          serve on a different path"
         cfg.sock);
  warm_up ();
  (try Unix.unlink cfg.sock with Unix.Unix_error _ -> ());
  let sock_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock_fd with Unix.Unix_error _ -> ());
      try Unix.unlink cfg.sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock_fd (Unix.ADDR_UNIX cfg.sock);
      Unix.listen sock_fd 64;
      log cfg "listening on %s (jobs=%d, cache=%s)" cfg.sock cfg.jobs
        (Option.value ~default:"<none>" cfg.cache_dir);
      while st.running do
        match Unix.accept sock_fd with
        | fd, _ -> handle_connection st fd
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done;
      log cfg "shutting down after %d request(s), %d program(s)" st.requests
        st.programs)
