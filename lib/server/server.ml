open Liquid_infer
module Pipeline = Liquid_driver.Pipeline
module Scheduler = Liquid_engine.Scheduler

type config = {
  sock : string;
  cache_dir : string option;
  jobs : int;
  request_timeout : float option;
  quiet : bool;
  max_inflight : int;
  client_queue : int;
  idle_timeout : float option;
}

let default_config ~sock =
  {
    sock;
    cache_dir = None;
    jobs = 1;
    request_timeout = Some 300.;
    quiet = false;
    max_inflight = 64;
    client_queue = 16;
    idle_timeout = Some 600.;
  }

let fault_for : (string -> Scheduler.fault option) ref = ref (fun _ -> None)
let delay_for : (string -> float option) ref = ref (fun _ -> None)

let log cfg fmt =
  if cfg.quiet then Format.ifprintf Format.err_formatter fmt
  else Fmt.epr ("dsolve-server: " ^^ fmt ^^ "@.")

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)

(* Translate one wire request into pipeline options; qualifier and
   specification text is parsed here, in the parent, so a malformed
   request is rejected without ever reaching a worker. *)
let options_of cfg (q : Protocol.verify_request) :
    (Pipeline.options, Protocol.verify_error) result =
  match
    let extra = Qualifier.parse_string ~file:q.vq_name q.vq_qual_text in
    let quals =
      (if q.vq_use_defaults then Qualifier.defaults else [])
      @ (if q.vq_list_quals then Qualifier.list_defaults else [])
      @ extra
    in
    let specs = Spec.parse_string q.vq_spec_text in
    {
      Pipeline.default with
      quals;
      specs;
      mine = q.vq_mine;
      lint = q.vq_lint;
      incremental = q.vq_incremental;
      explain = q.vq_explain;
      explain_limit = q.vq_explain_limit;
      gradual = q.vq_gradual;
      jobs = 1 (* each program is already one worker *);
      cache_dir = cfg.cache_dir;
    }
  with
  | o -> Ok o
  | exception Qualifier.Parse_error msg ->
      Error { Protocol.ve_code = "E_QUALIFIER"; ve_message = msg }
  | exception Spec.Error msg ->
      Error { Protocol.ve_code = "E_SPEC"; ve_message = msg }

(* What a solve worker sends back over its pipe.  Source errors are
   ordinary (deterministic) results, not worker faults. *)
type work_result =
  | W_ok of Pipeline.report
  | W_bad of Protocol.verify_error

let solve_one ~options (q : Protocol.verify_request) : work_result =
  (match !delay_for q.Protocol.vq_name with
  | Some s -> Unix.sleepf s
  | None -> ());
  match Pipeline.verify_string ~options ~name:q.vq_name q.vq_source with
  | r -> W_ok r
  | exception Pipeline.Source_error (msg, loc) ->
      W_bad
        {
          Protocol.ve_code = "E_SOURCE";
          ve_message = Fmt.str "%a: %s" Liquid_common.Loc.pp loc msg;
        }

(* ------------------------------------------------------------------ *)
(* Daemon state                                                        *)

(* A reply being produced for one received frame.  The wire contract is
   one reply per request, in request order — but the reactor finishes
   batches in whatever order their programs resolve (a warm batch
   overtakes an earlier cold one internally).  Each frame therefore
   allocates a slot in its connection's FIFO, and the writer only ever
   receives the resolved prefix. *)
type slot = { mutable s_payload : string option }

(* One client connection's state machine.  All of its I/O is
   non-blocking and staged through the reader/writer, so a stalled or
   dribbling peer can never hold up the reactor. *)
type conn = {
  c_id : int;
  c_fd : Unix.file_descr;
  c_reader : Protocol.reader;
  c_writer : Protocol.writer;
  mutable c_handshaken : bool;
  mutable c_closing : bool; (* stop reading; close once the writer drains *)
  mutable c_alive : bool;
  mutable c_last : float; (* last I/O activity, for the idle timeout *)
  mutable c_queued : int; (* solves of this conn waiting for a worker *)
  mutable c_batches : int; (* Verify batches not yet fully answered *)
  c_replies : slot Queue.t; (* reply FIFO, one slot per received frame *)
}

(* One Verify batch: replies fill in as programs resolve (possibly out
   of order — warm hits immediately, cold solves as workers finish); the
   Results frame resolves the batch's reply slot when the last program
   fills in. *)
type batch = {
  bt_conn : conn;
  bt_slot : slot;
  bt_replies : Protocol.verify_reply option array;
  mutable bt_missing : int;
}

(* One distinct cold solve, queued or running.  Concurrent identical
   requests (same {!Pipeline.request_key}) attach as extra waiters
   instead of spawning their own workers — the coalescing that kills
   cache stampedes. *)
type pending = {
  p_key : string;
  p_req : Protocol.verify_request;
  p_options : Pipeline.options;
  p_owner : conn; (* whose queue budget this solve occupies *)
  mutable p_waiters : (batch * int) list; (* newest first; last = initiator *)
  mutable p_job : work_result Scheduler.job option; (* None while queued *)
}

type state = {
  cfg : config;
  started : float;
  mutable requests : int;
  mutable programs : int;
  mutable mem_hits : int;
  mutable disk_hits : int;
  mutable cold : int;
  mutable coalesced : int;
  mutable shed : int;
  mutable failures : int;
  (* Finished reports of this daemon's lifetime, keyed by
     {!Pipeline.request_key}; bounded, cleared wholesale when full. *)
  memo : (string, Pipeline.report) Hashtbl.t;
  (* Every queued or running solve, keyed by {!Pipeline.request_key} —
     the coalescing map.  Its size is the global in-flight gauge capped
     by [cfg.max_inflight]. *)
  inflight : (string, pending) Hashtbl.t;
  (* Per-connection FIFO of queued solves plus a round-robin rotation of
     connection ids owning work: dispatch alternates across tenants, so
     one client submitting a burst cannot starve the others.  Invariant:
     an id is in [rr] exactly once iff [queues] holds a non-empty queue
     for it. *)
  queues : (int, pending Queue.t) Hashtbl.t;
  rr : int Queue.t;
  mutable n_running : int;
  mutable conns : conn list;
  mutable draining : bool; (* Shutdown received: no accepts, no reads *)
  mutable accept_pause : float; (* EMFILE backoff: no accepts until then *)
}

let memo_cap = 512

let memo_add st key report =
  if Hashtbl.length st.memo >= memo_cap then Hashtbl.reset st.memo;
  Hashtbl.replace st.memo key report

let stats_of st : Protocol.server_stats =
  {
    sv_requests = st.requests;
    sv_programs = st.programs;
    sv_mem_hits = st.mem_hits;
    sv_disk_hits = st.disk_hits;
    sv_cold = st.cold;
    sv_coalesced = st.coalesced;
    sv_shed = st.shed;
    sv_failures = st.failures;
    sv_connections = List.length st.conns;
    sv_uptime = Unix.gettimeofday () -. st.started;
    sv_cache =
      Option.map
        (fun dir ->
          Liquid_cache.Store.stats_snapshot
            (Liquid_cache.Store.open_store ~dir ()))
        st.cfg.cache_dir;
  }

let rec select_eintr r w t =
  try Unix.select r w [] t
  with Unix.Unix_error (Unix.EINTR, _, _) -> select_eintr r w t

(* ------------------------------------------------------------------ *)
(* Replies                                                             *)

let alloc_slot conn =
  let s = { s_payload = None } in
  Queue.add s conn.c_replies;
  s

(* Hand the writer every resolved reply at the head of the FIFO; an
   unresolved slot (a batch still solving) holds back everything behind
   it, preserving request order on the wire. *)
let flush_replies conn =
  let rec go () =
    match Queue.peek_opt conn.c_replies with
    | Some { s_payload = Some p } ->
        Protocol.writer_push conn.c_writer p;
        ignore (Queue.pop conn.c_replies : slot);
        go ()
    | _ -> ()
  in
  go ()

let resolve conn slot (r : Protocol.reply) =
  if conn.c_alive && slot.s_payload = None then begin
    slot.s_payload <- Some (Protocol.string_of_reply r);
    flush_replies conn
  end

let close_conn st conn =
  if conn.c_alive then begin
    conn.c_alive <- false;
    st.conns <- List.filter (fun c -> c != conn) st.conns;
    try Unix.close conn.c_fd with Unix.Unix_error _ -> ()
  end

(* Fill one program's reply in a batch; resolves the batch's Results
   frame when complete.  Programs fill exactly once, in whatever order
   they resolve. *)
let fill _st ((bt, i) : batch * int) (reply : Protocol.verify_reply) =
  assert (bt.bt_replies.(i) = None);
  bt.bt_replies.(i) <- Some reply;
  bt.bt_missing <- bt.bt_missing - 1;
  if bt.bt_missing = 0 then begin
    bt.bt_conn.c_batches <- bt.bt_conn.c_batches - 1;
    resolve bt.bt_conn bt.bt_slot
      (Protocol.Results
         (Array.to_list bt.bt_replies
         |> List.map (function
              | Some r -> r
              | None ->
                  (* Unreachable: every program is filled above. *)
                  Protocol.Rejected
                    {
                      Protocol.ve_code = "E_CRASH";
                      ve_message = "no reply produced";
                    })))
  end

(* ------------------------------------------------------------------ *)
(* The solve pool: fair dispatch, coalesced settlement                 *)

(* Next queued solve in round-robin connection order. *)
let next_pending st : pending option =
  match Queue.take_opt st.rr with
  | None -> None
  | Some id ->
      let q = Hashtbl.find st.queues id in
      let p = Queue.take q in
      if Queue.is_empty q then Hashtbl.remove st.queues id
      else Queue.add id st.rr;
      p.p_owner.c_queued <- p.p_owner.c_queued - 1;
      Some p

let enqueue_pending st conn (p : pending) =
  (match Hashtbl.find_opt st.queues conn.c_id with
  | Some q -> Queue.add p q
  | None ->
      let q = Queue.create () in
      Queue.add p q;
      Hashtbl.replace st.queues conn.c_id q;
      Queue.add conn.c_id st.rr);
  conn.c_queued <- conn.c_queued + 1

let rec dispatch st =
  if st.n_running < max 1 st.cfg.jobs then
    match next_pending st with
    | None -> ()
    | Some p ->
        let q = p.p_req and options = p.p_options in
        p.p_job <-
          Some
            (Scheduler.submit ?timeout:st.cfg.request_timeout
               ~fault:(fun () -> !fault_for q.Protocol.vq_name)
               (fun () -> solve_one ~options q));
        st.n_running <- st.n_running + 1;
        dispatch st

(* Resolve a finished solve for every request coalesced onto it.  The
   report is re-interned once and every waiter receives the same value,
   so all replies are byte-identical. *)
let settle st (p : pending) (outcome : work_result Scheduler.outcome) =
  Hashtbl.remove st.inflight p.p_key;
  st.n_running <- st.n_running - 1;
  let waiters = List.rev p.p_waiters (* initiator first *) in
  match outcome with
  | Scheduler.Done (W_ok r) ->
      (* The report crossed the worker's pipe: re-intern before it
         mixes with native values. *)
      let r = Pipeline.rehash_report r in
      memo_add st p.p_key r;
      List.iteri
        (fun i w ->
          if i = 0 then st.cold <- st.cold + 1
          else st.coalesced <- st.coalesced + 1;
          fill st w (Protocol.Verified r))
        waiters
  | Scheduler.Done (W_bad e) ->
      List.iter
        (fun w ->
          st.failures <- st.failures + 1;
          fill st w (Protocol.Rejected e))
        waiters
  | Scheduler.Failed { timed_out; attempts; detail } ->
      let code = if timed_out then "E_TIMEOUT" else "E_CRASH" in
      let e =
        {
          Protocol.ve_code = code;
          ve_message =
            Fmt.str "solve worker %s after %d attempt%s: %s"
              (if timed_out then "timed out" else "crashed")
              attempts
              (if attempts = 1 then "" else "s")
              detail;
        }
      in
      List.iter
        (fun w ->
          st.failures <- st.failures + 1;
          fill st w (Protocol.Rejected e))
        waiters

let step_jobs st =
  let finished =
    Hashtbl.fold
      (fun _ p acc ->
        match p.p_job with
        | None -> acc
        | Some j -> (
            match Scheduler.step j with
            | Some outcome -> (p, outcome) :: acc
            | None -> acc))
      st.inflight []
  in
  List.iter (fun (p, o) -> settle st p o) finished

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)

(* Answer one batch.  Warm answers (memo, disk) fill immediately in the
   reactor; cold programs coalesce onto identical in-flight solves or
   join the fair queue, bounded per client and globally — beyond either
   cap the program is shed with E_OVERLOAD instead of queueing without
   limit. *)
let handle_verify st conn slot (reqs : Protocol.verify_request list) =
  st.requests <- st.requests + 1;
  st.programs <- st.programs + List.length reqs;
  let n = List.length reqs in
  let bt =
    {
      bt_conn = conn;
      bt_slot = slot;
      bt_replies = Array.make n None;
      bt_missing = n;
    }
  in
  if n = 0 then resolve conn slot (Protocol.Results [])
  else conn.c_batches <- conn.c_batches + 1;
  List.iteri
    (fun i q ->
      let reject e =
        st.failures <- st.failures + 1;
        fill st (bt, i) (Protocol.Rejected e)
      in
      let shed msg =
        st.shed <- st.shed + 1;
        reject { Protocol.ve_code = "E_OVERLOAD"; ve_message = msg }
      in
      try
        match options_of st.cfg q with
        | Error e -> reject e
        | Ok options -> (
            let key =
              Pipeline.request_key ~options ~name:q.Protocol.vq_name
                q.Protocol.vq_source
            in
            match Hashtbl.find_opt st.memo key with
            | Some r ->
                st.mem_hits <- st.mem_hits + 1;
                fill st (bt, i) (Protocol.Verified r)
            | None -> (
                match
                  Pipeline.cache_lookup ~options ~name:q.Protocol.vq_name
                    q.Protocol.vq_source
                with
                | Some r ->
                    st.disk_hits <- st.disk_hits + 1;
                    memo_add st key r;
                    fill st (bt, i) (Protocol.Verified r)
                | None -> (
                    match Hashtbl.find_opt st.inflight key with
                    | Some p ->
                        (* An identical solve is already queued or
                           running: wait for it instead of paying for
                           our own. *)
                        p.p_waiters <- (bt, i) :: p.p_waiters
                    | None ->
                        if Hashtbl.length st.inflight >= st.cfg.max_inflight
                        then
                          shed
                            (Fmt.str
                               "server at capacity: %d solves in flight \
                                (max-inflight %d)"
                               (Hashtbl.length st.inflight)
                               st.cfg.max_inflight)
                        else if conn.c_queued >= st.cfg.client_queue then
                          shed
                            (Fmt.str
                               "client queue full: %d solves pending \
                                (client-queue %d)"
                               conn.c_queued st.cfg.client_queue)
                        else begin
                          let p =
                            {
                              p_key = key;
                              p_req = q;
                              p_options = options;
                              p_owner = conn;
                              p_waiters = [ (bt, i) ];
                              p_job = None;
                            }
                          in
                          Hashtbl.replace st.inflight key p;
                          enqueue_pending st conn p;
                          (* Dispatch eagerly so a free worker empties
                             the queue between programs of one batch —
                             the caps then measure genuine backlog. *)
                          dispatch st
                        end)))
      with exn ->
        (* A bug in request handling must not kill the daemon: reject
           this program and keep serving. *)
        reject
          {
            Protocol.ve_code = "E_CRASH";
            ve_message = "internal error: " ^ Printexc.to_string exn;
          })
    reqs;
  dispatch st

let on_frame st conn slot payload =
  match Protocol.request_of_string payload with
  | exception Failure msg ->
      resolve conn slot (Protocol_error msg);
      conn.c_closing <- true
  | Hello { version; stamp } ->
      if conn.c_handshaken then
        resolve conn slot (Protocol_error "duplicate Hello")
      else if version <> Protocol.version then begin
        resolve conn slot
          (Protocol_error
             (Fmt.str "protocol version mismatch: server %d, client %d"
                Protocol.version version));
        conn.c_closing <- true
      end
      else if stamp <> Protocol.build_stamp then begin
        resolve conn slot
          (Protocol_error
             "build mismatch: client and server are different dsolve binaries");
        conn.c_closing <- true
      end
      else begin
        conn.c_handshaken <- true;
        resolve conn slot
          (Hello_ok { version = Protocol.version; stamp = Protocol.build_stamp })
      end
  | _ when not conn.c_handshaken ->
      resolve conn slot (Protocol_error "expected Hello");
      conn.c_closing <- true
  | Verify reqs -> handle_verify st conn slot reqs
  | Stats -> resolve conn slot (Stats_reply (stats_of st))
  | Shutdown ->
      log st.cfg "shutdown requested: draining %d in-flight solve(s)"
        (Hashtbl.length st.inflight);
      st.draining <- true;
      resolve conn slot Bye;
      conn.c_closing <- true

(* ------------------------------------------------------------------ *)
(* The reactor                                                         *)

let read_conn st conn =
  match Protocol.reader_step conn.c_fd conn.c_reader with
  | exception Failure msg ->
      (* Unrecoverable framing (e.g. an oversized length): tell the
         peer why, then hang up. *)
      resolve conn (alloc_slot conn) (Protocol_error msg);
      conn.c_closing <- true
  | Closed -> close_conn st conn
  | Frames fs ->
      conn.c_last <- Unix.gettimeofday ();
      List.iter
        (fun f ->
          if conn.c_alive && not conn.c_closing then begin
            let slot = alloc_slot conn in
            try on_frame st conn slot f
            with exn ->
              resolve conn slot
                (Protocol_error
                   ("internal error: " ^ Printexc.to_string exn));
              conn.c_closing <- true
          end)
        fs

let write_conn st conn =
  match Protocol.writer_step conn.c_fd conn.c_writer with
  | Protocol.Flushed ->
      conn.c_last <- Unix.gettimeofday ();
      if conn.c_closing then close_conn st conn
  | Protocol.Again -> conn.c_last <- Unix.gettimeofday ()
  | Protocol.Closed_w -> close_conn st conn

let conn_counter = ref 0

let rec accept_loop st listen_fd =
  match Unix.accept listen_fd with
  | fd, _ ->
      Unix.set_nonblock fd;
      incr conn_counter;
      let conn =
        {
          c_id = !conn_counter;
          c_fd = fd;
          c_reader = Protocol.reader_create ();
          c_writer = Protocol.writer_create ();
          c_handshaken = false;
          c_closing = false;
          c_alive = true;
          c_last = Unix.gettimeofday ();
          c_queued = 0;
          c_batches = 0;
          c_replies = Queue.create ();
        }
      in
      st.conns <- conn :: st.conns;
      accept_loop st listen_fd
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop st listen_fd
  | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) ->
      (* The peer gave up between connect and accept; nothing to do. *)
      accept_loop st listen_fd
  | exception Unix.Unix_error (((Unix.EMFILE | Unix.ENFILE) as e), _, _) ->
      (* Out of descriptors: keep serving the tenants we have and retry
         accepting shortly, instead of dying or spinning. *)
      log st.cfg "accept: %s; pausing accepts briefly" (Unix.error_message e);
      st.accept_pause <- Unix.gettimeofday () +. 0.2

let idle_sweep st now =
  (* Also reaps connections marked closing whose writers are already
     empty (they are excluded from both select sets). *)
  List.iter
    (fun c ->
      if c.c_alive && c.c_closing && not (Protocol.writer_pending c.c_writer)
      then close_conn st c)
    st.conns;
  match st.cfg.idle_timeout with
  | None -> ()
  | Some t ->
      List.iter
        (fun c ->
          if
            c.c_alive && (not c.c_closing) && c.c_batches = 0
            && (not (Protocol.writer_pending c.c_writer))
            && now -. c.c_last > t
          then begin
            log st.cfg "closing idle connection #%d" c.c_id;
            close_conn st c
          end)
        st.conns

(* Earliest instant anything timed is due: a solve deadline, an idle
   cutoff, or the end of an accept backoff.  [-1] = block until an fd
   event. *)
let next_wait st now =
  let min_opt acc t = match acc with None -> Some t | Some a -> Some (min a t) in
  let acc = ref None in
  Hashtbl.iter
    (fun _ p ->
      match p.p_job with
      | Some j -> (
          match Scheduler.job_deadline j with
          | Some d -> acc := min_opt !acc d
          | None -> ())
      | None -> ())
    st.inflight;
  (match st.cfg.idle_timeout with
  | Some t ->
      List.iter
        (fun c ->
          if c.c_alive && c.c_batches = 0 then
            acc := min_opt !acc (c.c_last +. t))
        st.conns
  | None -> ());
  if st.accept_pause > now then acc := min_opt !acc st.accept_pause;
  match !acc with None -> -1.0 | Some d -> max 0.0 (d -. now)

let reactor st listen_fd =
  Unix.set_nonblock listen_fd;
  let finished = ref false in
  while not !finished do
    if
      st.draining
      && Hashtbl.length st.inflight = 0
      && List.for_all
           (fun c -> not (Protocol.writer_pending c.c_writer))
           st.conns
    then finished := true
    else begin
      let now = Unix.gettimeofday () in
      let accepting = (not st.draining) && now >= st.accept_pause in
      let read_conns =
        if st.draining then []
        else List.filter (fun c -> not c.c_closing) st.conns
      in
      let job_fds =
        Hashtbl.fold
          (fun _ p acc ->
            match p.p_job with
            | Some j -> Scheduler.job_fd j :: acc
            | None -> acc)
          st.inflight []
      in
      let reads =
        (if accepting then [ listen_fd ] else [])
        @ List.map (fun c -> c.c_fd) read_conns
        @ job_fds
      in
      let write_conns =
        List.filter (fun c -> Protocol.writer_pending c.c_writer) st.conns
      in
      let rs, ws, _ =
        select_eintr reads
          (List.map (fun c -> c.c_fd) write_conns)
          (next_wait st now)
      in
      step_jobs st;
      if accepting && List.memq listen_fd rs then accept_loop st listen_fd;
      List.iter
        (fun c -> if c.c_alive && List.memq c.c_fd rs then read_conn st c)
        read_conns;
      List.iter
        (fun c -> if c.c_alive && List.memq c.c_fd ws then write_conn st c)
        write_conns;
      idle_sweep st (Unix.gettimeofday ());
      dispatch st
    end
  done;
  List.iter (fun c -> close_conn st c) st.conns

(* ------------------------------------------------------------------ *)

(* Force the lazy corners of the pipeline (primitive environments,
   default-qualifier parsing, hash-cons tables) so the first real
   request doesn't pay for them. *)
let warm_up () =
  ignore
    (Pipeline.verify_string ~name:"<warm-up>" "let warm = 1 + 1" : Pipeline.report)

(* Is something accepting connections on [sock]?  A plain [connect]
   probe: success means a live listener owns the path (we must not
   steal it); ECONNREFUSED or ENOENT means the file is a leftover of a
   dead daemon (or absent) and is safe to replace.  No handshake is
   attempted — a reply is not needed to establish liveness, and not
   reading means a wedged listener cannot hang the probe. *)
let socket_in_use sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match Unix.connect fd (Unix.ADDR_UNIX sock) with
      | () -> true
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
        ->
          false)

let serve cfg =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let st =
    {
      cfg;
      started = Unix.gettimeofday ();
      requests = 0;
      programs = 0;
      mem_hits = 0;
      disk_hits = 0;
      cold = 0;
      coalesced = 0;
      shed = 0;
      failures = 0;
      memo = Hashtbl.create 64;
      inflight = Hashtbl.create 64;
      queues = Hashtbl.create 16;
      rr = Queue.create ();
      n_running = 0;
      conns = [];
      draining = false;
      accept_pause = 0.0;
    }
  in
  (* Probe before warming up: refusing to start should be instant, and
     unlinking a live daemon's socket would orphan it — clients would
     reach whichever process bound the path last while the other keeps
     running unreachable. *)
  if socket_in_use cfg.sock then
    failwith
      (Printf.sprintf
         "socket %s is owned by a running daemon; shut it down first or \
          serve on a different path"
         cfg.sock);
  warm_up ();
  (try Unix.unlink cfg.sock with Unix.Unix_error _ -> ());
  let sock_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock_fd with Unix.Unix_error _ -> ());
      try Unix.unlink cfg.sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock_fd (Unix.ADDR_UNIX cfg.sock);
      Unix.listen sock_fd 64;
      log cfg
        "listening on %s (jobs=%d, max-inflight=%d, client-queue=%d, cache=%s)"
        cfg.sock cfg.jobs cfg.max_inflight cfg.client_queue
        (Option.value ~default:"<none>" cfg.cache_dir);
      reactor st sock_fd;
      log cfg
        "shutting down after %d request(s), %d program(s) (%d cold, %d \
         coalesced, %d shed)"
        st.requests st.programs st.cold st.coalesced st.shed)
