(** Wire protocol of the verification daemon: length-prefixed Marshal
    frames over a Unix-domain stream socket.

    Every connection opens with a {!Hello} handshake carrying the
    protocol version and the client's build stamp; the server refuses
    mismatches, so two different dsolve builds can never exchange
    marshalled values (whose layouts may differ).  After the handshake
    the client sends any number of {!Verify} batches (and {!Stats} /
    {!Shutdown}), each answered by exactly one reply.

    Two framing layers share one wire format: blocking channel I/O
    ({!send_request} …) for clients, and incremental {!reader}/{!writer}
    state machines for the daemon's non-blocking reactor — a client that
    dribbles a frame byte-by-byte never blocks the event loop. *)

val version : int

(** Build identity shared with the persistent cache
    ({!Liquid_cache.Store.default_stamp}): an MD5 of the executable
    image. *)
val build_stamp : string

(** One program to verify.  Qualifiers and specifications travel as
    {e source text} and are parsed server-side: sending parsed
    (hash-consed) values across the boundary would require re-interning
    on every hop, and the parse is a trivial fraction of a solve. *)
type verify_request = {
  vq_name : string; (* file name, for locations and reporting *)
  vq_source : string; (* NanoML source text *)
  vq_qual_text : string; (* extra qualifier declarations, may be "" *)
  vq_use_defaults : bool; (* include the built-in default qualifiers *)
  vq_list_quals : bool; (* include the list-length qualifier set *)
  vq_spec_text : string; (* external specifications, may be "" *)
  vq_mine : bool;
  vq_lint : bool;
  vq_incremental : bool;
  vq_explain : bool; (* explain failed obligations (post-fixpoint) *)
  vq_explain_limit : int; (* failures explained per program *)
  vq_gradual : bool; (* gradual mode: residual casts, not errors *)
}

(** Build a request; defaults mirror {!Liquid_driver.Pipeline.default}
    (defaults on, no list qualifiers, mining on, lint off, incremental
    engine, explanation off with a limit of 5, gradual off). *)
val request :
  ?qual_text:string ->
  ?use_defaults:bool ->
  ?list_quals:bool ->
  ?spec_text:string ->
  ?mine:bool ->
  ?lint:bool ->
  ?incremental:bool ->
  ?explain:bool ->
  ?explain_limit:int ->
  ?gradual:bool ->
  name:string ->
  string ->
  verify_request

(** Structured failure for one program; the daemon survives all of
    them.  Codes: [E_QUALIFIER] / [E_SPEC] (malformed request inputs),
    [E_SOURCE] (lex/parse/type error in the program), [E_CRASH] (the
    solve worker died, after one retry), [E_TIMEOUT] (the solve worker
    exceeded the request timeout, after one retry), [E_OVERLOAD] (shed:
    the per-client queue or the global in-flight cap was full — retry
    later). *)
type verify_error = { ve_code : string; ve_message : string }

type verify_reply =
  | Verified of Liquid_driver.Pipeline.report
  | Rejected of verify_error

(** Daemon-lifetime counters.  Every program of every batch resolves as
    exactly one of: memo hit, disk hit, cold solve, coalesced onto an
    already-running identical solve, or failure (which includes shed
    requests) — so [sv_programs] = [sv_mem_hits + sv_disk_hits + sv_cold
    + sv_coalesced + sv_failures]. *)
type server_stats = {
  sv_requests : int; (* Verify batches served *)
  sv_programs : int; (* programs across all batches *)
  sv_mem_hits : int; (* served from the in-memory result table *)
  sv_disk_hits : int; (* served from the persistent cache *)
  sv_cold : int; (* solved by a worker *)
  sv_coalesced : int; (* joined an identical in-flight solve *)
  sv_shed : int; (* rejected with E_OVERLOAD (also in sv_failures) *)
  sv_failures : int; (* Rejected replies *)
  sv_connections : int; (* currently open client connections *)
  sv_uptime : float; (* seconds since the daemon started *)
  sv_cache : Liquid_cache.Store.stats option; (* persistent-cache counters *)
}

type request =
  | Hello of { version : int; stamp : string }
  | Verify of verify_request list
  | Stats
  | Shutdown

type reply =
  | Hello_ok of { version : int; stamp : string }
  | Results of verify_reply list
  | Stats_reply of server_stats
  | Bye
  | Protocol_error of string

(** {1 Blocking channel framing (clients, tests)} *)

(** Framed send/receive.  [recv_*] raise [End_of_file] on a closed
    peer and [Failure] on an oversized or malformed frame. *)

val send_request : out_channel -> request -> unit
val recv_request : in_channel -> request
val send_reply : out_channel -> reply -> unit
val recv_reply : in_channel -> reply

(** Marshal to/from a frame payload (no length prefix).  [_of_string]
    raise [Failure] on a malformed payload. *)

val string_of_request : request -> string
val request_of_string : string -> request
val string_of_reply : reply -> string
val reply_of_string : string -> reply

(** {1 Incremental framing (the daemon's reactor)} *)

(** Accumulates raw bytes from a non-blocking descriptor and splits out
    complete length-prefixed frames as they arrive. *)
type reader

val reader_create : unit -> reader

type read_event =
  | Frames of string list (* complete frame payloads, possibly none *)
  | Closed (* orderly EOF or a hard connection error *)

(** One [read(2)] on the (non-blocking) descriptor, folded into the
    reader; [Frames []] after a short read that completed nothing (or
    [EAGAIN]).  @raise Failure on a negative or oversized frame length —
    the connection cannot be resynchronized past that point. *)
val reader_step : Unix.file_descr -> reader -> read_event

(** Queue of outgoing frames, flushed as the descriptor accepts bytes. *)
type writer

val writer_create : unit -> writer

(** Enqueue one frame ([payload] gets the 4-byte length prefix). *)
val writer_push : writer -> string -> unit

(** Is anything still waiting to be written? *)
val writer_pending : writer -> bool

type write_event =
  | Flushed (* nothing left to write *)
  | Again (* the descriptor stopped accepting bytes; more remains *)
  | Closed_w (* the peer is gone *)

(** Write as much as the (non-blocking) descriptor accepts right now. *)
val writer_step : Unix.file_descr -> writer -> write_event
