(** Client side of the verification daemon ([dsolve --connect SOCK]). *)

type t

(** Connect and complete the {!Protocol.Hello} handshake.
    @raise Failure on a protocol-version or build-stamp mismatch
    @raise Unix.Unix_error when nothing is listening on [sock]. *)
val connect : string -> t

(** The retry schedule of {!connect_retry}, exposed for tests: attempt
    [k] (0-based) sleeps for [c/2 + u*c/2] where
    [c = min cap (base * 2^k)] and [u ∈ \[0, 1)] is drawn
    deterministically from [(seed, k)] — equal-jitter exponential
    backoff.  Delays grow with [k] until capped, never exceed [cap],
    never undercut half the ceiling, and different seeds spread a herd
    of simultaneous clients apart. *)
val backoff_delay : base:float -> cap:float -> seed:int -> int -> float

(** As {!connect}, retrying while the daemon is still starting up (or
    briefly out of descriptors), sleeping {!backoff_delay} between
    attempts.  Defaults: 50 attempts, [base = 0.1] s, [cap = 2] s,
    [seed] = this process's pid. *)
val connect_retry :
  ?attempts:int -> ?delay:float -> ?cap:float -> ?seed:int -> string -> t

(** Verify a batch; replies come back in request order.
    @raise Failure if the server answers with a protocol error. *)
val verify : t -> Protocol.verify_request list -> Protocol.verify_reply list

(** Pipelined verification: {!post} sends a batch without waiting;
    {!collect} blocks for the next batch reply (re-interned like
    {!verify}).  Replies arrive in posting order — the daemon answers
    each connection's batches FIFO even when their programs finish out
    of order internally.  [verify c b = post c b; collect c]. *)
val post : t -> Protocol.verify_request list -> unit

val collect : t -> Protocol.verify_reply list
val stats : t -> Protocol.server_stats

(** Ask the daemon to drain and exit: it stops accepting, finishes
    every in-flight solve, flushes every pending reply, then closes. *)
val shutdown : t -> unit

val close : t -> unit

(** [with_connection sock f] runs [f] on a fresh connection and closes
    it afterwards, also on exceptions. *)
val with_connection : string -> (t -> 'a) -> 'a
