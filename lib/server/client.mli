(** Client side of the verification daemon ([dsolve --connect SOCK]). *)

type t

(** Connect and complete the {!Protocol.Hello} handshake.
    @raise Failure on a protocol-version or build-stamp mismatch
    @raise Unix.Unix_error when nothing is listening on [sock]. *)
val connect : string -> t

(** As {!connect}, retrying while the daemon is still starting up
    (default: 50 attempts, 0.1 s apart). *)
val connect_retry : ?attempts:int -> ?delay:float -> string -> t

(** Verify a batch; replies come back in request order.
    @raise Failure if the server answers with a protocol error. *)
val verify : t -> Protocol.verify_request list -> Protocol.verify_reply list

val stats : t -> Protocol.server_stats

(** Ask the daemon to exit (it finishes this reply first). *)
val shutdown : t -> unit

val close : t -> unit

(** [with_connection sock f] runs [f] on a fresh connection and closes
    it afterwards, also on exceptions. *)
val with_connection : string -> (t -> 'a) -> 'a
