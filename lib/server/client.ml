type t = { ic : in_channel; oc : out_channel }

let close c =
  (* The two channels share one descriptor; closing the output channel
     closes it, so the input side is only cleaned up shallowly. *)
  close_out_noerr c.oc

let connect sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX sock)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let c = { ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd } in
  Protocol.send_request c.oc
    (Hello { version = Protocol.version; stamp = Protocol.build_stamp });
  match Protocol.recv_reply c.ic with
  | Hello_ok _ -> c
  | Protocol_error msg ->
      close c;
      failwith ("server refused connection: " ^ msg)
  | _ ->
      close c;
      failwith "server sent an unexpected handshake reply"
  | exception e ->
      close c;
      raise e

let connect_retry ?(attempts = 50) ?(delay = 0.1) sock =
  let rec go n =
    match connect sock with
    | c -> c
    | exception (Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _) as e) ->
        if n <= 1 then raise e
        else begin
          Unix.sleepf delay;
          go (n - 1)
        end
  in
  go (max 1 attempts)

let roundtrip c q =
  Protocol.send_request c.oc q;
  Protocol.recv_reply c.ic

let verify c batch =
  match roundtrip c (Protocol.Verify batch) with
  | Results rs ->
      (* Replies were marshalled by the daemon; re-intern each report so
         it prints and compares exactly like a local verification. *)
      List.map
        (function
          | Protocol.Verified r ->
              Protocol.Verified (Liquid_driver.Pipeline.rehash_report r)
          | Protocol.Rejected _ as r -> r)
        rs
  | Protocol_error msg -> failwith ("server error: " ^ msg)
  | _ -> failwith "server sent an unexpected reply to Verify"

let stats c =
  match roundtrip c Protocol.Stats with
  | Stats_reply s -> s
  | Protocol_error msg -> failwith ("server error: " ^ msg)
  | _ -> failwith "server sent an unexpected reply to Stats"

let shutdown c =
  match roundtrip c Protocol.Shutdown with
  | Bye -> ()
  | Protocol_error msg -> failwith ("server error: " ^ msg)
  | _ -> failwith "server sent an unexpected reply to Shutdown"

let with_connection sock f =
  let c = connect sock in
  Fun.protect ~finally:(fun () -> close c) (fun () -> f c)
