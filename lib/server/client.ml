type t = { ic : in_channel; oc : out_channel }

let close c =
  (* The two channels share one descriptor; closing the output channel
     closes it, so the input side is only cleaned up shallowly. *)
  close_out_noerr c.oc

let connect sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX sock)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let c = { ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd } in
  Protocol.send_request c.oc
    (Hello { version = Protocol.version; stamp = Protocol.build_stamp });
  match Protocol.recv_reply c.ic with
  | Hello_ok _ -> c
  | Protocol_error msg ->
      close c;
      failwith ("server refused connection: " ^ msg)
  | _ ->
      close c;
      failwith "server sent an unexpected handshake reply"
  | exception e ->
      close c;
      raise e

(* Equal-jitter exponential backoff: attempt [k] (0-based) sleeps for
   [c/2 + u*c/2] where [c = min cap (base * 2^k)] and [u] is a
   deterministic pseudo-uniform draw from [(seed, k)].  The exponential
   ceiling spaces retries out as the daemon stays busy; the jitter
   de-synchronizes a herd of clients that all started retrying at the
   same instant (e.g. forked by one parent), so their connect attempts
   don't arrive in lockstep bursts. *)
let backoff_delay ~base ~cap ~seed k =
  let ceiling = Float.min cap (base *. Float.pow 2. (float_of_int k)) in
  let u =
    float_of_int (Hashtbl.seeded_hash seed k land 0xFFFF) /. 65536.
  in
  (ceiling /. 2.) +. (ceiling /. 2. *. u)

let connect_retry ?(attempts = 50) ?(delay = 0.1) ?(cap = 2.0) ?seed sock =
  let seed = match seed with Some s -> s | None -> Unix.getpid () in
  let last = max 1 attempts - 1 in
  let rec go k =
    match connect sock with
    | c -> c
    | exception (Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _) as e) ->
        if k >= last then raise e
        else begin
          Unix.sleepf (backoff_delay ~base:delay ~cap ~seed k);
          go (k + 1)
        end
  in
  go 0

let roundtrip c q =
  Protocol.send_request c.oc q;
  Protocol.recv_reply c.ic

(* Replies were marshalled by the daemon; re-intern each report so it
   prints and compares exactly like a local verification. *)
let rehash_replies rs =
  List.map
    (function
      | Protocol.Verified r ->
          Protocol.Verified (Liquid_driver.Pipeline.rehash_report r)
      | Protocol.Rejected _ as r -> r)
    rs

let post c batch = Protocol.send_request c.oc (Protocol.Verify batch)

let collect c =
  match Protocol.recv_reply c.ic with
  | Results rs -> rehash_replies rs
  | Protocol_error msg -> failwith ("server error: " ^ msg)
  | _ -> failwith "server sent an unexpected reply to Verify"

let verify c batch =
  post c batch;
  collect c

let stats c =
  match roundtrip c Protocol.Stats with
  | Stats_reply s -> s
  | Protocol_error msg -> failwith ("server error: " ^ msg)
  | _ -> failwith "server sent an unexpected reply to Stats"

let shutdown c =
  match roundtrip c Protocol.Shutdown with
  | Bye -> ()
  | Protocol_error msg -> failwith ("server error: " ^ msg)
  | _ -> failwith "server sent an unexpected reply to Shutdown"

let with_connection sock f =
  let c = connect sock in
  Fun.protect ~finally:(fun () -> close c) (fun () -> f c)
