(* v3: server_stats grew the multi-tenant counters (coalesced solves,
   shed requests, connection gauges) when the daemon became a
   multiplexed reactor.
   v4: verify_request grew vq_gradual (gradual liquid mode), and the
   report layout grew residual casts. *)
let version = 4
let build_stamp = Liquid_cache.Store.default_stamp

type verify_request = {
  vq_name : string;
  vq_source : string;
  vq_qual_text : string;
  vq_use_defaults : bool;
  vq_list_quals : bool;
  vq_spec_text : string;
  vq_mine : bool;
  vq_lint : bool;
  vq_incremental : bool;
  vq_explain : bool;
  vq_explain_limit : int;
  vq_gradual : bool;
}

let request ?(qual_text = "") ?(use_defaults = true) ?(list_quals = false)
    ?(spec_text = "") ?(mine = true) ?(lint = false) ?(incremental = true)
    ?(explain = false) ?(explain_limit = 5) ?(gradual = false) ~name source =
  {
    vq_name = name;
    vq_source = source;
    vq_qual_text = qual_text;
    vq_use_defaults = use_defaults;
    vq_list_quals = list_quals;
    vq_spec_text = spec_text;
    vq_mine = mine;
    vq_lint = lint;
    vq_incremental = incremental;
    vq_explain = explain;
    vq_explain_limit = explain_limit;
    vq_gradual = gradual;
  }

type verify_error = { ve_code : string; ve_message : string }

type verify_reply =
  | Verified of Liquid_driver.Pipeline.report
  | Rejected of verify_error

type server_stats = {
  sv_requests : int;
  sv_programs : int;
  sv_mem_hits : int;
  sv_disk_hits : int;
  sv_cold : int;
  sv_coalesced : int;
  sv_shed : int;
  sv_failures : int;
  sv_connections : int;
  sv_uptime : float;
  sv_cache : Liquid_cache.Store.stats option;
}

type request =
  | Hello of { version : int; stamp : string }
  | Verify of verify_request list
  | Stats
  | Shutdown

type reply =
  | Hello_ok of { version : int; stamp : string }
  | Results of verify_reply list
  | Stats_reply of server_stats
  | Bye
  | Protocol_error of string

(* Framing: a 4-byte big-endian length followed by that many bytes of
   Marshal output.  The cap bounds what a confused or malicious peer can
   make us allocate; real batches are far below it. *)

let max_frame = 256 * 1024 * 1024

let send_frame oc (s : string) =
  output_binary_int oc (String.length s);
  output_string oc s;
  flush oc

let recv_frame ic =
  let n = input_binary_int ic in
  if n < 0 || n > max_frame then
    failwith (Printf.sprintf "protocol: bad frame length %d" n);
  really_input_string ic n

let string_of_request (q : request) = Marshal.to_string q []

let request_of_string (s : string) : request =
  match Marshal.from_string s 0 with
  | q -> q
  | exception Failure _ -> failwith "protocol: malformed request frame"

let string_of_reply (r : reply) = Marshal.to_string r []

let reply_of_string (s : string) : reply =
  match Marshal.from_string s 0 with
  | r -> r
  | exception Failure _ -> failwith "protocol: malformed reply frame"

let send_request oc (q : request) = send_frame oc (string_of_request q)
let recv_request ic : request = request_of_string (recv_frame ic)
let send_reply oc (r : reply) = send_frame oc (string_of_reply r)
let recv_reply ic : reply = reply_of_string (recv_frame ic)

(* ------------------------------------------------------------------ *)
(* Incremental framing over non-blocking descriptors                   *)

(* The reactor never issues a read or write that can block: a client
   dribbling a frame one byte a minute costs the daemon nothing but the
   buffered bytes.  [reader]/[writer] hold the partial state between
   readiness events. *)

let chunk_size = 65536

type reader = { mutable buf : Bytes.t; mutable len : int }

let reader_create () = { buf = Bytes.create chunk_size; len = 0 }

let header_length (b : Bytes.t) =
  (* Big-endian, matching [output_binary_int]/[input_binary_int]. *)
  (Char.code (Bytes.get b 0) lsl 24)
  lor (Char.code (Bytes.get b 1) lsl 16)
  lor (Char.code (Bytes.get b 2) lsl 8)
  lor Char.code (Bytes.get b 3)

(* Split every complete frame out of [r]'s buffer, in arrival order. *)
let drain_frames (r : reader) : string list =
  let frames = ref [] in
  let ok = ref true in
  while !ok && r.len >= 4 do
    let n = header_length r.buf in
    if n < 0 || n > max_frame then
      failwith (Printf.sprintf "protocol: bad frame length %d" n)
    else if r.len >= 4 + n then begin
      frames := Bytes.sub_string r.buf 4 n :: !frames;
      Bytes.blit r.buf (4 + n) r.buf 0 (r.len - 4 - n);
      r.len <- r.len - 4 - n
    end
    else ok := false
  done;
  List.rev !frames

type read_event =
  | Frames of string list (* complete frames, possibly none yet *)
  | Closed (* orderly EOF or a hard connection error *)

(** One [read(2)] on the (non-blocking) descriptor, folded into the
    reader.  @raise Failure on an oversized or negative frame length —
    the connection is unrecoverable past that point. *)
let reader_step fd (r : reader) : read_event =
  if Bytes.length r.buf - r.len < chunk_size then begin
    let need = r.len + chunk_size in
    let cap = ref (Bytes.length r.buf) in
    while !cap < need do
      cap := !cap * 2
    done;
    let b = Bytes.create !cap in
    Bytes.blit r.buf 0 b 0 r.len;
    r.buf <- b
  end;
  match Unix.read fd r.buf r.len chunk_size with
  | 0 -> Closed
  | n ->
      r.len <- r.len + n;
      Frames (drain_frames r)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      Frames []
  | exception Unix.Unix_error _ -> Closed

type writer = {
  queue : string Queue.t; (* head is partially written up to [off] *)
  mutable off : int;
}

let writer_create () = { queue = Queue.create (); off = 0 }

let writer_push (w : writer) (payload : string) =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.blit_string payload 0 b 4 n;
  Queue.add (Bytes.unsafe_to_string b) w.queue

let writer_pending (w : writer) = not (Queue.is_empty w.queue)

type write_event =
  | Flushed (* nothing left to write *)
  | Again (* the descriptor stopped accepting bytes; more remains *)
  | Closed_w (* the peer is gone *)

(** Write as much as the (non-blocking) descriptor accepts. *)
let writer_step fd (w : writer) : write_event =
  let rec go () =
    match Queue.peek_opt w.queue with
    | None -> Flushed
    | Some s -> (
        let remaining = String.length s - w.off in
        match Unix.write_substring fd s w.off remaining with
        | n ->
            if n = remaining then begin
              ignore (Queue.pop w.queue);
              w.off <- 0;
              go ()
            end
            else begin
              w.off <- w.off + n;
              Again
            end
        | exception
            Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
          ->
            Again
        | exception Unix.Unix_error _ -> Closed_w)
  in
  go ()
