(* v2: verify requests carry explanation switches, and Verify replies
   carry the report's explanations (the report type itself changed). *)
let version = 2
let build_stamp = Liquid_cache.Store.default_stamp

type verify_request = {
  vq_name : string;
  vq_source : string;
  vq_qual_text : string;
  vq_use_defaults : bool;
  vq_list_quals : bool;
  vq_spec_text : string;
  vq_mine : bool;
  vq_lint : bool;
  vq_incremental : bool;
  vq_explain : bool;
  vq_explain_limit : int;
}

let request ?(qual_text = "") ?(use_defaults = true) ?(list_quals = false)
    ?(spec_text = "") ?(mine = true) ?(lint = false) ?(incremental = true)
    ?(explain = false) ?(explain_limit = 5) ~name source =
  {
    vq_name = name;
    vq_source = source;
    vq_qual_text = qual_text;
    vq_use_defaults = use_defaults;
    vq_list_quals = list_quals;
    vq_spec_text = spec_text;
    vq_mine = mine;
    vq_lint = lint;
    vq_incremental = incremental;
    vq_explain = explain;
    vq_explain_limit = explain_limit;
  }

type verify_error = { ve_code : string; ve_message : string }

type verify_reply =
  | Verified of Liquid_driver.Pipeline.report
  | Rejected of verify_error

type server_stats = {
  sv_requests : int;
  sv_programs : int;
  sv_mem_hits : int;
  sv_disk_hits : int;
  sv_cold : int;
  sv_failures : int;
  sv_uptime : float;
  sv_cache : Liquid_cache.Store.stats option;
}

type request =
  | Hello of { version : int; stamp : string }
  | Verify of verify_request list
  | Stats
  | Shutdown

type reply =
  | Hello_ok of { version : int; stamp : string }
  | Results of verify_reply list
  | Stats_reply of server_stats
  | Bye
  | Protocol_error of string

(* Framing: a 4-byte big-endian length followed by that many bytes of
   Marshal output.  The cap bounds what a confused or malicious peer can
   make us allocate; real batches are far below it. *)

let max_frame = 256 * 1024 * 1024

let send_frame oc (s : string) =
  output_binary_int oc (String.length s);
  output_string oc s;
  flush oc

let recv_frame ic =
  let n = input_binary_int ic in
  if n < 0 || n > max_frame then
    failwith (Printf.sprintf "protocol: bad frame length %d" n);
  really_input_string ic n

let send_request oc (q : request) = send_frame oc (Marshal.to_string q [])

let recv_request ic : request =
  match Marshal.from_string (recv_frame ic) 0 with
  | q -> q
  | exception Failure _ -> failwith "protocol: malformed request frame"

let send_reply oc (r : reply) = send_frame oc (Marshal.to_string r [])

let recv_reply ic : reply =
  match Marshal.from_string (recv_frame ic) 0 with
  | r -> r
  | exception Failure _ -> failwith "protocol: malformed reply frame"
