(** The verification daemon ([dsolve --serve SOCK]).

    One process stays resident with warm hash-cons tables, primitive
    environments, and SMT caches, and serves {!Protocol.Verify} batches
    over a Unix-domain socket.  Each program in a batch is answered from
    (in order): an in-memory table of reports this daemon already
    produced, the persistent on-disk cache ({!Liquid_cache.Store}, when
    [cache_dir] is set), or a cold solve dispatched through the
    {!Liquid_engine.Scheduler} worker pool — so a crashing or hanging
    solve is confined to its forked worker and comes back as a
    structured [Rejected] reply, never as a dead daemon. *)

type config = {
  sock : string; (* path of the Unix-domain socket *)
  cache_dir : string option; (* persistent result cache root *)
  jobs : int; (* concurrent solve workers per batch *)
  request_timeout : float option; (* wall-clock budget per program *)
  quiet : bool; (* suppress the stderr lifecycle log *)
}

(** [jobs = 1], no cache, 300 s per-program timeout, not quiet. *)
val default_config : sock:string -> config

(** Test-only fault injection, keyed by request name ([vq_name]) and
    mapped onto {!Liquid_engine.Scheduler.fault_hook} for the cold
    programs of each batch.  Reset to [(fun _ -> None)] after use. *)
val fault_for : (string -> Liquid_engine.Scheduler.fault option) ref

(** Is something accepting connections at this socket path?  [false]
    when the file is absent or a leftover of a dead daemon (connect
    gives [ECONNREFUSED]/[ENOENT]); [true] for any live listener.  Used
    by {!serve} to avoid stealing a running daemon's socket; exposed
    for launchers that want the same check. *)
val socket_in_use : string -> bool

(** Run the accept loop; blocks until a client sends
    {!Protocol.Shutdown}.  A stale socket file at [config.sock] (one no
    process is accepting on) is unlinked and replaced; if a live daemon
    owns the path, [serve] refuses to start
    (@raise Failure) rather than orphan it.  The socket is removed on
    exit. *)
val serve : config -> unit
