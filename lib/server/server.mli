(** The verification daemon ([dsolve --serve SOCK]).

    One process stays resident with warm hash-cons tables, primitive
    environments, and SMT caches, and serves many clients at once over a
    Unix-domain socket: a [Unix.select] reactor multiplexes every
    connection through the non-blocking {!Protocol.reader}/{!writer}
    state machines, so a stalled or dribbling client costs the daemon
    nothing but its buffered bytes.

    Each program of a {!Protocol.Verify} batch resolves as one of:

    - a {b memo hit} — the in-memory table of reports this daemon
      already produced, keyed by {!Liquid_driver.Pipeline.request_key};
    - a {b disk hit} — the persistent cache ({!Liquid_cache.Store},
      when [cache_dir] is set);
    - a {b coalesced} solve — an identical request (same key) is
      already queued or running, so this one just waits for the same
      worker and receives the byte-identical report;
    - a {b cold} solve — dispatched through the async
      {!Liquid_engine.Scheduler} job API into a bounded pool of [jobs]
      forked workers, so a crashing or hanging solve is confined to its
      worker and comes back as a structured [Rejected] reply, never as
      a dead daemon;
    - {b shed} — rejected with [E_OVERLOAD] when the global in-flight
      cap ([max_inflight]) or the per-client queue bound
      ([client_queue]) is exceeded.

    Queued cold solves are dispatched round-robin across connections,
    so one tenant's burst cannot starve the others.  {!Protocol.Shutdown}
    drains: accepts and reads stop, in-flight solves finish, every
    pending reply is flushed, and only then does the daemon exit. *)

type config = {
  sock : string; (* path of the Unix-domain socket *)
  cache_dir : string option; (* persistent result cache root *)
  jobs : int; (* concurrent solve worker processes *)
  request_timeout : float option; (* wall-clock budget per program *)
  quiet : bool; (* suppress the stderr lifecycle log *)
  max_inflight : int; (* global cap on queued+running solves *)
  client_queue : int; (* per-connection cap on queued solves *)
  idle_timeout : float option; (* close connections idle this long *)
}

(** [jobs = 1], no cache, 300 s per-program timeout, not quiet,
    [max_inflight = 64], [client_queue = 16], 600 s idle timeout. *)
val default_config : sock:string -> config

(** Test-only fault injection, keyed by request name ([vq_name]) and
    mapped onto the scheduler's fault hook for cold solves.  Reset to
    [(fun _ -> None)] after use. *)
val fault_for : (string -> Liquid_engine.Scheduler.fault option) ref

(** Test-only solve delay, keyed by request name and applied inside the
    solve worker before the pipeline runs — makes coalescing and
    fairness windows deterministic in tests.  Reset to [(fun _ -> None)]
    after use. *)
val delay_for : (string -> float option) ref

(** Is something accepting connections at this socket path?  [false]
    when the file is absent or a leftover of a dead daemon (connect
    gives [ECONNREFUSED]/[ENOENT]); [true] for any live listener.  Used
    by {!serve} to avoid stealing a running daemon's socket; exposed
    for launchers that want the same check. *)
val socket_in_use : string -> bool

(** Run the reactor; blocks until a client sends {!Protocol.Shutdown}
    and the drain completes.  A stale socket file at [config.sock] (one
    no process is accepting on) is unlinked and replaced; if a live
    daemon owns the path, [serve] refuses to start (@raise Failure)
    rather than orphan it.  [EMFILE]/[ENFILE] on accept pauses new
    accepts briefly instead of crashing; [ECONNABORTED] is ignored.
    The socket is removed on exit. *)
val serve : config -> unit
