(** ML types and type schemes for NanoML.

    This is the first phase of the paper's three-phase inference: plain
    Hindley–Milner types computed by Algorithm W.  Unification variables
    use the classic mutable [Link]/[Unbound] representation with Rémy-style
    levels for efficient generalization. *)

type t =
  | Tint
  | Tbool
  | Tunit
  | Tvar of tv ref
  | Tarrow of t * t
  | Ttuple of t list
  | Tlist of t
  | Tarray of t
  | Tcon of string (* nominal user-declared ADT *)

and tv =
  | Unbound of int * int (* id, level *)
  | Link of t
  | Rigid of int (* generalized/skolem variable, printed 'a, 'b, ... *)

let var_counter = ref 0

let fresh_var level =
  incr var_counter;
  Tvar (ref (Unbound (!var_counter, level)))

(** Path-compressing representative. *)
let rec repr t =
  match t with
  | Tvar ({ contents = Link u } as r) ->
      let u' = repr u in
      r := Link u';
      u'
  | _ -> t

(** Resolve all links, leaving [Unbound]/[Rigid] vars in place. *)
let rec resolve t =
  match repr t with
  | (Tint | Tbool | Tunit | Tcon _) as t -> t
  | Tvar _ as t -> t
  | Tarrow (a, b) -> Tarrow (resolve a, resolve b)
  | Ttuple ts -> Ttuple (List.map resolve ts)
  | Tlist t -> Tlist (resolve t)
  | Tarray t -> Tarray (resolve t)

exception Unify_error of t * t
exception Occurs_check of int * t

(** Occurs check; also lowers the levels of variables inside [t] so that
    generalization at an outer level cannot capture them. *)
let rec occurs_adjust id level t =
  match repr t with
  | Tint | Tbool | Tunit | Tcon _ -> ()
  | Tvar ({ contents = Unbound (id', level') } as r) ->
      if id = id' then raise (Occurs_check (id, t));
      if level' > level then r := Unbound (id', level)
  | Tvar { contents = Rigid _ } -> ()
  | Tvar { contents = Link _ } -> assert false
  | Tarrow (a, b) ->
      occurs_adjust id level a;
      occurs_adjust id level b
  | Ttuple ts -> List.iter (occurs_adjust id level) ts
  | Tlist t | Tarray t -> occurs_adjust id level t

let rec unify a b =
  let a = repr a and b = repr b in
  if a == b then ()
  else
    match (a, b) with
    | Tint, Tint | Tbool, Tbool | Tunit, Tunit -> ()
    | Tcon a, Tcon b when String.equal a b -> ()
    | Tvar ({ contents = Unbound (id, level) } as r), t
    | t, Tvar ({ contents = Unbound (id, level) } as r) ->
        occurs_adjust id level t;
        r := Link t
    | Tvar { contents = Rigid i }, Tvar { contents = Rigid j } when i = j -> ()
    | Tarrow (a1, a2), Tarrow (b1, b2) ->
        unify a1 b1;
        unify a2 b2
    | Ttuple ts, Ttuple us when List.length ts = List.length us ->
        List.iter2 unify ts us
    | Tlist t, Tlist u | Tarray t, Tarray u -> unify t u
    | _ -> raise (Unify_error (a, b))

(* -- Schemes ------------------------------------------------------------ *)

type scheme = { nvars : int; body : t }
(** In a scheme body, generalized variables appear as [Rigid k] with
    [0 <= k < nvars]. *)

let trivial_scheme t = { nvars = 0; body = t }

(** Generalize variables above [level] into a scheme. *)
let generalize level t =
  let mapping = Hashtbl.create 8 in
  let count = ref 0 in
  let rec go t =
    match repr t with
    | (Tint | Tbool | Tunit | Tcon _) as t -> t
    | Tvar ({ contents = Unbound (id, level') } as r) as t ->
        if level' > level then begin
          let k =
            match Hashtbl.find_opt mapping id with
            | Some k -> k
            | None ->
                let k = !count in
                incr count;
                Hashtbl.add mapping id k;
                k
          in
          ignore r;
          Tvar (ref (Rigid k))
        end
        else t
    | Tvar { contents = Rigid _ } as t -> t
    | Tvar { contents = Link _ } -> assert false
    | Tarrow (a, b) ->
        (* evaluate left-to-right so variable numbering is deterministic *)
        let a' = go a in
        let b' = go b in
        Tarrow (a', b')
    | Ttuple ts -> Ttuple (List.map go ts)
    | Tlist t -> Tlist (go t)
    | Tarray t -> Tarray (go t)
  in
  let body = go t in
  { nvars = !count; body }

(** Instantiate a scheme with fresh unification variables at [level].
    Returns the instantiated body and the fresh types standing for each
    generalized variable (used by liquid instantiation). *)
let instantiate level { nvars; body } =
  let fresh = Array.init nvars (fun _ -> fresh_var level) in
  let rec go t =
    match repr t with
    | (Tint | Tbool | Tunit | Tcon _) as t -> t
    | Tvar { contents = Rigid k } -> fresh.(k)
    | Tvar _ as t -> t
    | Tarrow (a, b) -> Tarrow (go a, go b)
    | Ttuple ts -> Ttuple (List.map go ts)
    | Tlist t -> Tlist (go t)
    | Tarray t -> Tarray (go t)
  in
  (go body, Array.to_list fresh)

(* -- Printing ------------------------------------------------------------ *)

let tyvar_name k =
  let letter = Char.chr (Char.code 'a' + (k mod 26)) in
  if k < 26 then Printf.sprintf "'%c" letter
  else Printf.sprintf "'%c%d" letter (k / 26)

let rec pp ppf t =
  match repr t with
  | Tint -> Fmt.string ppf "int"
  | Tbool -> Fmt.string ppf "bool"
  | Tunit -> Fmt.string ppf "unit"
  | Tcon c -> Fmt.string ppf c
  | Tvar { contents = Unbound (id, _) } -> Fmt.pf ppf "'_%d" id
  | Tvar { contents = Rigid k } -> Fmt.string ppf (tyvar_name k)
  | Tvar { contents = Link _ } -> assert false
  | Tarrow (a, b) -> Fmt.pf ppf "%a -> %a" pp_atom a pp b
  | Ttuple ts -> Fmt.pf ppf "%a" Fmt.(list ~sep:(any " * ") pp_atom) ts
  | Tlist t -> Fmt.pf ppf "%a list" pp_atom t
  | Tarray t -> Fmt.pf ppf "%a array" pp_atom t

and pp_atom ppf t =
  match repr t with
  | Tarrow _ | Ttuple _ -> Fmt.pf ppf "(%a)" pp t
  | _ -> pp ppf t

let to_string t = Fmt.str "%a" pp t

let pp_scheme ppf { nvars; body } =
  if nvars = 0 then pp ppf body
  else
    Fmt.pf ppf "forall %a. %a"
      Fmt.(list ~sep:(any " ") string)
      (List.init nvars tyvar_name)
      pp body
