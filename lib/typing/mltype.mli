(** ML types and type schemes (Hindley–Milner with mutable unification
    variables and Rémy-style levels). *)

type t =
  | Tint
  | Tbool
  | Tunit
  | Tvar of tv ref
  | Tarrow of t * t
  | Ttuple of t list
  | Tlist of t
  | Tarray of t
  | Tcon of string (* nominal user-declared ADT *)

and tv =
  | Unbound of int * int (* id, level *)
  | Link of t
  | Rigid of int (* generalized variable, printed 'a, 'b, ... *)

val fresh_var : int -> t

(** Path-compressing representative. *)
val repr : t -> t

(** Resolve all links, leaving [Unbound]/[Rigid] variables in place. *)
val resolve : t -> t

exception Unify_error of t * t
exception Occurs_check of int * t

val unify : t -> t -> unit

(** Schemes: generalized variables appear as [Rigid k], [0 <= k < nvars]. *)
type scheme = { nvars : int; body : t }

val trivial_scheme : t -> scheme

(** Generalize variables above [level]. *)
val generalize : int -> t -> scheme

(** Instantiate with fresh variables at [level]; also returns the fresh
    types standing for each generalized variable. *)
val instantiate : int -> scheme -> t * t list

val tyvar_name : int -> string
val pp : Format.formatter -> t -> unit
val pp_atom : Format.formatter -> t -> unit
val to_string : t -> string
val pp_scheme : Format.formatter -> scheme -> unit
