(** Hindley–Milner type inference (Algorithm W with levels) for NanoML:
    the first phase of the paper's three-phase inference.  Records the
    resolved ML type of every expression node; these shapes drive liquid
    template generation. *)

open Liquid_common
open Liquid_lang

exception Type_error of string * Loc.t

type result = {
  types : (int, Mltype.t) Hashtbl.t; (* expr id -> resolved ML type *)
  item_schemes : (Ident.t * Mltype.scheme) list; (* in program order *)
  ctors : (string, Mltype.t list * string) Hashtbl.t;
      (* constructor -> argument types, datatype name *)
}

(** Syntactic values (generalizable under the value restriction). *)
val is_value : Ast.expr -> bool

(** Constructor environment of a declaration unit (constructor name to
    argument types and datatype name). *)
val ctor_env : Ast.decls -> (string, Mltype.t list * string) Hashtbl.t

(** @raise Type_error on ill-typed programs.  [decls] supplies the
    constructor environment for programs with [type] declarations. *)
val infer_program : ?decls:Ast.decls -> Ast.program -> result

(** Resolved type of a node.
    @raise Invalid_argument if the node was not typed. *)
val type_of : result -> Ast.expr -> Mltype.t
