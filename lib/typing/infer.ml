(** Hindley–Milner type inference (Algorithm W with levels) for NanoML.

    Produces the ML type of every expression node (recorded in a side
    table keyed by {!Liquid_lang.Ast.expr} ids) and a type scheme for each
    top-level item.  These shapes drive liquid template generation: every
    refinement template has exactly the shape of the ML type inferred
    here. *)

open Liquid_common
open Liquid_lang
open Mltype

exception Type_error of string * Loc.t

type result = {
  types : (int, Mltype.t) Hashtbl.t; (* expr id -> resolved ML type *)
  item_schemes : (Ident.t * scheme) list; (* in program order *)
  ctors : (string, Mltype.t list * string) Hashtbl.t;
      (* constructor -> argument types, datatype name *)
}

let err loc fmt = Fmt.kstr (fun s -> raise (Type_error (s, loc))) fmt

(* -- ADT environment ------------------------------------------------------ *)

let mltype_of_tyexpr (ty : Ast.tyexpr) : Mltype.t =
  match ty.ty_name with
  | "int" -> Tint
  | "bool" -> Tbool
  | "unit" -> Tunit
  | name -> Tcon name

(** Constructor environment of a declaration unit. *)
let ctor_env (decls : Ast.decls) : (string, Mltype.t list * string) Hashtbl.t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (td : Ast.tydecl) ->
      List.iter
        (fun (c : Ast.ctor_decl) ->
          Hashtbl.replace tbl c.c_name
            (List.map mltype_of_tyexpr c.c_args, td.t_name))
        td.t_ctors)
    decls.types;
  tbl

let lookup_ctor ctors loc c =
  match Hashtbl.find_opt ctors c with
  | Some entry -> entry
  | None -> err loc "unknown constructor %s" c

let record tbl (e : Ast.expr) ty = Hashtbl.replace tbl e.id ty

(* -- Patterns ------------------------------------------------------------ *)

(** Type a pattern against [ty], returning bindings for its variables. *)
let rec infer_pat ctors level loc (p : Ast.pat) (ty : t) : (Ident.t * t) list =
  match p with
  | Ast.Pwild -> []
  | Ast.Pvar x -> [ (x, ty) ]
  | Ast.Punit ->
      (try unify ty Tunit
       with Unify_error _ -> err loc "pattern () used at type %a" Mltype.pp ty);
      []
  | Ast.Pbool _ ->
      (try unify ty Tbool
       with Unify_error _ ->
         err loc "boolean pattern used at type %a" Mltype.pp ty);
      []
  | Ast.Pint _ ->
      (try unify ty Tint
       with Unify_error _ ->
         err loc "integer pattern used at type %a" Mltype.pp ty);
      []
  | Ast.Ptuple ps ->
      let tys = List.map (fun _ -> fresh_var level) ps in
      (try unify ty (Ttuple tys)
       with Unify_error _ -> err loc "tuple pattern used at type %a" Mltype.pp ty);
      List.concat (List.map2 (infer_pat ctors level loc) ps tys)
  | Ast.Pnil ->
      let elt = fresh_var level in
      (try unify ty (Tlist elt)
       with Unify_error _ -> err loc "list pattern used at type %a" Mltype.pp ty);
      []
  | Ast.Pcons (p1, p2) ->
      let elt = fresh_var level in
      (try unify ty (Tlist elt)
       with Unify_error _ -> err loc "list pattern used at type %a" Mltype.pp ty);
      infer_pat ctors level loc p1 elt @ infer_pat ctors level loc p2 (Tlist elt)
  | Ast.Pconstr (c, ps) ->
      let arg_tys, tycon = lookup_ctor ctors loc c in
      (try unify ty (Tcon tycon)
       with Unify_error _ ->
         err loc "constructor %s of type %s used at type %a" c tycon Mltype.pp
           ty);
      if List.length ps <> List.length arg_tys then
        err loc "constructor %s expects %d argument(s), pattern binds %d" c
          (List.length arg_tys) (List.length ps);
      List.concat (List.map2 (infer_pat ctors level loc) ps arg_tys)

(* -- Expressions ----------------------------------------------------------- *)

(** Syntactic values may be generalized (the value restriction). *)
let rec is_value (e : Ast.expr) =
  match e.desc with
  | Ast.Const _ | Ast.Var _ | Ast.Fun _ | Ast.Nil -> true
  | Ast.Tuple es | Ast.Constr (_, es) -> List.for_all is_value es
  | Ast.Cons (e1, e2) -> is_value e1 && is_value e2
  | _ -> false

let rec infer ctors tbl (env : scheme Ident.Map.t) level (e : Ast.expr) : t =
  let ty = infer_desc ctors tbl env level e in
  record tbl e ty;
  ty

and infer_desc ctors tbl env level (e : Ast.expr) : t =
  match e.desc with
  | Ast.Const (Ast.Cint _) -> Tint
  | Ast.Const (Ast.Cbool _) -> Tbool
  | Ast.Const Ast.Cunit -> Tunit
  | Ast.Var x -> (
      match Ident.Map.find_opt x env with
      | Some sch -> fst (instantiate level sch)
      | None -> err e.loc "unbound variable %a" Ident.pp x)
  | Ast.Fun (x, body) ->
      let targ = fresh_var level in
      let tbody =
        infer ctors tbl (Ident.Map.add x (trivial_scheme targ) env) level body
      in
      Tarrow (targ, tbody)
  | Ast.App (e1, e2) ->
      let t1 = infer ctors tbl env level e1 in
      let t2 = infer ctors tbl env level e2 in
      let tres = fresh_var level in
      (try unify t1 (Tarrow (t2, tres))
       with Unify_error _ ->
         err e.loc "cannot apply expression of type %a to argument of type %a"
           Mltype.pp t1 Mltype.pp t2);
      tres
  | Ast.Binop (op, e1, e2) -> (
      let t1 = infer ctors tbl env level e1 in
      let t2 = infer ctors tbl env level e2 in
      match op with
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod ->
          (try
             unify t1 Tint;
             unify t2 Tint
           with Unify_error _ ->
             err e.loc "arithmetic on non-integers (%a, %a)" Mltype.pp t1
               Mltype.pp t2);
          Tint
      | Ast.Eq | Ast.Ne ->
          (try unify t1 t2
           with Unify_error _ ->
             err e.loc "comparison of incompatible types %a and %a" Mltype.pp
               t1 Mltype.pp t2);
          Tbool
      | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
          (try
             unify t1 Tint;
             unify t2 Tint
           with Unify_error _ ->
             err e.loc "ordering comparison on non-integers (%a, %a)"
               Mltype.pp t1 Mltype.pp t2);
          Tbool)
  | Ast.Unop (Ast.Neg, e1) ->
      (try unify (infer ctors tbl env level e1) Tint
       with Unify_error _ -> err e.loc "negation of a non-integer");
      Tint
  | Ast.Unop (Ast.Not, e1) ->
      (try unify (infer ctors tbl env level e1) Tbool
       with Unify_error _ -> err e.loc "'not' of a non-boolean");
      Tbool
  | Ast.If (c, e1, e2) ->
      (try unify (infer ctors tbl env level c) Tbool
       with Unify_error _ -> err c.loc "if condition must be boolean");
      let t1 = infer ctors tbl env level e1 in
      let t2 = infer ctors tbl env level e2 in
      (try unify t1 t2
       with Unify_error _ ->
         err e.loc "branches of if have different types %a and %a" Mltype.pp
           t1 Mltype.pp t2);
      t1
  | Ast.Let (Ast.Nonrec, x, e1, e2) ->
      let t1 = infer ctors tbl env (level + 1) e1 in
      let sch =
        if is_value e1 then generalize level t1 else trivial_scheme t1
      in
      infer ctors tbl (Ident.Map.add x sch env) level e2
  | Ast.Let (Ast.Rec, x, e1, e2) ->
      let tx = fresh_var (level + 1) in
      let env1 = Ident.Map.add x (trivial_scheme tx) env in
      let t1 = infer ctors tbl env1 (level + 1) e1 in
      (try unify tx t1
       with Unify_error _ -> err e.loc "recursive binding has inconsistent type");
      let sch =
        if is_value e1 then generalize level t1 else trivial_scheme t1
      in
      infer ctors tbl (Ident.Map.add x sch env) level e2
  | Ast.Tuple es -> Ttuple (List.map (infer ctors tbl env level) es)
  | Ast.Nil -> Tlist (fresh_var level)
  | Ast.Cons (e1, e2) ->
      let t1 = infer ctors tbl env level e1 in
      let t2 = infer ctors tbl env level e2 in
      (try unify t2 (Tlist t1)
       with Unify_error _ ->
         err e.loc "cons of %a onto %a" Mltype.pp t1 Mltype.pp t2);
      t2
  | Ast.Match (scrut, cases) ->
      let tscrut = infer ctors tbl env level scrut in
      let tres = fresh_var level in
      List.iter
        (fun (p, body) ->
          let binds = infer_pat ctors level e.loc p tscrut in
          let env' =
            List.fold_left
              (fun env (x, t) -> Ident.Map.add x (trivial_scheme t) env)
              env binds
          in
          let t = infer ctors tbl env' level body in
          try unify tres t
          with Unify_error _ ->
            err body.loc "match arms have different types")
        cases;
      tres
  | Ast.Assert e1 ->
      (try unify (infer ctors tbl env level e1) Tbool
       with Unify_error _ -> err e1.loc "assert requires a boolean");
      Tunit
  | Ast.Constr (c, args) ->
      let arg_tys, tycon = lookup_ctor ctors e.loc c in
      if List.length args <> List.length arg_tys then
        err e.loc "constructor %s expects %d argument(s), got %d" c
          (List.length arg_tys) (List.length args);
      List.iter2
        (fun arg want ->
          let got = infer ctors tbl env level arg in
          try unify got want
          with Unify_error _ ->
            err arg.loc "constructor %s argument has type %a, expected %a" c
              Mltype.pp got Mltype.pp want)
        args arg_tys;
      Tcon tycon

(* -- Programs ----------------------------------------------------------------- *)

let infer_item ctors tbl env (item : Ast.item) : scheme =
  match item.rec_flag with
  | Ast.Nonrec ->
      let t = infer ctors tbl env 1 item.body in
      if is_value item.body then generalize 0 t else trivial_scheme t
  | Ast.Rec ->
      let tx = fresh_var 1 in
      let env1 = Ident.Map.add item.name (trivial_scheme tx) env in
      let t = infer ctors tbl env1 1 item.body in
      (try unify tx t
       with Unify_error _ ->
         err item.item_loc "recursive binding has inconsistent type");
      if is_value item.body then generalize 0 t else trivial_scheme t

let infer_program ?(decls = Ast.no_decls) (prog : Ast.program) : result =
  let ctors = ctor_env decls in
  let tbl = Hashtbl.create 256 in
  let _, rev_schemes =
    List.fold_left
      (fun (env, acc) item ->
        let sch = infer_item ctors tbl env item in
        (Ident.Map.add item.name sch env, (item.name, sch) :: acc))
      (Builtins.env, [])
      prog
  in
  (* Resolve every recorded type so later phases never see [Link]s. *)
  Hashtbl.iter (fun id t -> Hashtbl.replace tbl id (resolve t)) tbl;
  {
    types = tbl;
    item_schemes =
      List.rev_map (fun (x, s) -> (x, { s with body = resolve s.body })) rev_schemes;
    ctors;
  }

(** Type of an expression node, after inference. *)
let type_of (r : result) (e : Ast.expr) : t =
  match Hashtbl.find_opt r.types e.id with
  | Some t -> t
  | None -> invalid_arg "Infer.type_of: expression was not typed"
