(** A-normalization and alpha-renaming.

    Liquid constraint generation needs the program in A-normal form:

    - application arguments, operator operands, [if] conditions, tuple and
      cons components, match scrutinees and assert operands are {e atoms}
      (variables or constants);

    atoms make the dependent rules of the paper directly applicable — the
    result type of an application [f x] is obtained by substituting the
    {e name} [x] into [f]'s dependent signature, and an [if] guard enters
    the environment as the predicate of its condition {e variable}.

    The pass simultaneously alpha-renames every binder to a globally
    unique name ([x#N] for source binders, [%tmp.N] for introduced
    temporaries), so downstream passes may treat names as global. *)

open Liquid_common
open Liquid_lang
open Ast

let rename_counter = ref 0

(** Rename a source binder to a globally unique, still-readable name.
    The ['#'] character cannot appear in source identifiers. *)
let rename_binder (x : Ident.t) : Ident.t =
  incr rename_counter;
  Ident.of_string (Printf.sprintf "%s#%d" (Ident.to_string x) !rename_counter)

let reset () = rename_counter := 0

type renaming = Ident.t Ident.Map.t

let lookup (rho : renaming) x =
  match Ident.Map.find_opt x rho with Some y -> y | None -> x

let is_atom (e : expr) =
  match e.desc with Const _ | Var _ -> true | _ -> false

(** [bind e k] names [e] if it is not already an atom, then continues with
    an atom in [k]. *)
let rec bind rho (e : expr) (k : expr -> expr) : expr =
  norm rho e (fun e' ->
      if is_atom e' then k e'
      else
        let tmp = Gensym.fresh "tmp" in
        let body = k (mk ~loc:e.loc (Var tmp)) in
        (* the introduced [let] spans both the named expression and the
           whole continuation, not just the former — downstream location
           reasoning (e.g. the unreachable-code lint's span containment)
           relies on child spans nesting inside their parent's *)
        mk ~loc:(Loc.merge e.loc body.loc) (Let (Nonrec, tmp, e', body)))

(** Like {!bind}, but keeps application spines in function position. *)
and bind_fn rho (e : expr) (k : expr -> expr) : expr =
  match e.desc with
  | App (e1, e2) ->
      bind_fn rho e1 (fun f ->
          bind rho e2 (fun a -> k (mk ~loc:e.loc (App (f, a)))))
  | _ -> bind rho e k

and bind_many rho (es : expr list) (k : expr list -> expr) : expr =
  match es with
  | [] -> k []
  | e :: rest -> bind rho e (fun a -> bind_many rho rest (fun atoms -> k (a :: atoms)))

(** Normalize [e]; the continuation receives an expression whose immediate
    subterms are atoms (but which is itself not necessarily an atom). *)
and norm rho (e : expr) (k : expr -> expr) : expr =
  match e.desc with
  | Const _ -> k e
  | Var x -> k (mk ~loc:e.loc (Var (lookup rho x)))
  | Fun (x, body) ->
      let x' = rename_binder x in
      let body' = to_anf (Ident.Map.add x x' rho) body in
      k (mk ~loc:e.loc (Fun (x', body')))
  | App (e1, e2) ->
      (* Application spines are preserved: [f a b] normalizes to
         [App (App (f, a'), b')] with atomic arguments, rather than naming
         the partial application.  This keeps the syntactic head visible,
         which constraint generation uses to label primitive-argument
         obligations (e.g. "array index may be out of bounds"). *)
      bind_fn rho e1 (fun f ->
          bind rho e2 (fun a -> k (mk ~loc:e.loc (App (f, a)))))
  | Binop (op, e1, e2) ->
      bind rho e1 (fun a1 ->
          bind rho e2 (fun a2 -> k (mk ~loc:e.loc (Binop (op, a1, a2)))))
  | Unop (op, e1) -> bind rho e1 (fun a -> k (mk ~loc:e.loc (Unop (op, a))))
  | If (c, e1, e2) ->
      (* Branches are normalized in their own scope (they are not shared),
         but the condition must be an atom. *)
      bind rho c (fun c' ->
          k (mk ~loc:e.loc (If (c', to_anf rho e1, to_anf rho e2))))
  | Let (Nonrec, x, e1, e2) ->
      let x' = rename_binder x in
      norm rho e1 (fun e1' ->
          let rho' = Ident.Map.add x x' rho in
          mk ~loc:e.loc (Let (Nonrec, x', e1', to_anf rho' e2)) |> k_let k)
  | Let (Rec, x, e1, e2) ->
      let x' = rename_binder x in
      let rho' = Ident.Map.add x x' rho in
      let e1' = to_anf rho' e1 in
      mk ~loc:e.loc (Let (Rec, x', e1', to_anf rho' e2)) |> k_let k
  | Tuple es -> bind_many rho es (fun atoms -> k (mk ~loc:e.loc (Tuple atoms)))
  | Constr (c, es) ->
      bind_many rho es (fun atoms -> k (mk ~loc:e.loc (Constr (c, atoms))))
  | Nil -> k e
  | Cons (e1, e2) ->
      bind rho e1 (fun a1 ->
          bind rho e2 (fun a2 -> k (mk ~loc:e.loc (Cons (a1, a2)))))
  | Match (scrut, cases) ->
      bind rho scrut (fun s ->
          let cases' =
            List.map
              (fun (p, body) ->
                let vars = pat_vars p in
                let rho', p' = rename_pat rho p vars in
                (p', to_anf rho' body))
              cases
          in
          k (mk ~loc:e.loc (Match (s, cases'))))
  | Assert e1 -> bind rho e1 (fun a -> k (mk ~loc:e.loc (Assert a)))

(** Continuations receiving a [let] must not re-name it (it is not an
    atom but needs no naming: its body already continues).  This helper
    documents that [Let] results flow through [k] unchanged only when [k]
    is the identity; otherwise we must be careful.  In practice [k_let]
    is only used where [k] is invoked on the whole let expression. *)
and k_let k e = k e

and rename_pat rho (p : pat) vars =
  let mapping = List.map (fun x -> (x, rename_binder x)) vars in
  let rho' =
    List.fold_left (fun m (x, x') -> Ident.Map.add x x' m) rho mapping
  in
  let rec go = function
    | (Pwild | Punit | Pbool _ | Pint _ | Pnil) as p -> p
    | Pvar x -> Pvar (List.assoc x mapping)
    | Ptuple ps -> Ptuple (List.map go ps)
    | Pcons (p1, p2) -> Pcons (go p1, go p2)
    | Pconstr (c, ps) -> Pconstr (c, List.map go ps)
  in
  (rho', go p)

(** Top-level normalization: the continuation is the identity. *)
and to_anf rho (e : expr) : expr = norm rho e Fun.id

(* Note: using [norm] with a non-identity continuation under [Let] would
   duplicate or capture the continuation; [bind]/[norm] as written only
   pass continuations downward into atom positions, and [Let]/branch
   bodies restart with [to_anf], so evaluation order and sharing are
   preserved. *)

let normalize_expr (e : expr) : expr = to_anf Ident.Map.empty e

let normalize_program (prog : program) : program =
  (* Top-level names are kept (they are the public interface) — except
     that a name shadowing an earlier item must be renamed: downstream
     passes treat names as global, and two bindings of one name would
     put contradictory facts about it into the logical environment
     (unsound: everything under an inconsistent environment verifies). *)
  let _, _, rev_items =
    List.fold_left
      (fun (seen, rho, acc) item ->
        let name' =
          if Ident.Set.mem item.name seen then rename_binder item.name
          else item.name
        in
        let rho_body =
          match item.rec_flag with
          | Rec -> Ident.Map.add item.name name' rho
          | Nonrec -> rho
        in
        let body = to_anf rho_body item.body in
        let rho' = Ident.Map.add item.name name' rho in
        (Ident.Set.add item.name seen, rho', { item with name = name'; body } :: acc))
      (Ident.Set.empty, Ident.Map.empty, [])
      prog
  in
  List.rev rev_items

(* -- ANF validation (used by tests) -------------------------------------- *)

(** Check that an expression is in A-normal form. *)
let rec is_anf (e : expr) : bool =
  let rec is_spine e =
    match e.desc with
    | App (e1, e2) -> is_spine e1 && is_atom e2
    | _ -> is_atom e
  in
  match e.desc with
  | Const _ | Var _ | Nil -> true
  | Fun (_, body) -> is_anf body
  | App (e1, e2) -> is_spine e1 && is_atom e2
  | Binop (_, e1, e2) -> is_atom e1 && is_atom e2
  | Unop (_, e1) -> is_atom e1
  | If (c, e1, e2) -> is_atom c && is_anf e1 && is_anf e2
  | Let (_, _, e1, e2) -> is_anf e1 && is_anf e2
  | Tuple es | Constr (_, es) -> List.for_all is_atom es
  | Cons (e1, e2) -> is_atom e1 && is_atom e2
  | Match (s, cases) ->
      is_atom s && List.for_all (fun (_, b) -> is_anf b) cases
  | Assert e1 -> is_atom e1
