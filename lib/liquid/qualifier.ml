(** Logical qualifiers and their instantiation into the candidate set Q*.

    A qualifier is a named boolean pattern over the value variable [v],
    literal constants, program variables, the measures [len]/[llen], and
    {e placeholders} written [_] (each occurrence independent) or [_A],
    [_B], ... (named placeholders; equal names must be instantiated
    identically).  Following the paper, the set Q* of qualifier
    {e instances} is obtained by substituting in-scope program variables
    (and, with mining, program constants) for the placeholders, keeping
    only well-sorted results.

    Concrete syntax (one declaration per line):
    {v
      qualif Pos(v)   : 0 <= v
      qualif UBLen(v) : v < len _
      qualif Rel(v)   : v <= _A && _A <= len _B
    v}

    The pattern grammar is shared with refinement-type specifications;
    see {!Qualparse}. *)

open Liquid_common
open Liquid_logic
open Liquid_lang

type rterm = Qualparse.rterm =
  | Rint of int
  | Rvar of string
  | Rmeasure of string * rterm
  | Rneg of rterm
  | Radd of rterm * rterm
  | Rsub of rterm * rterm
  | Rmul of rterm * rterm

type rpred = Qualparse.rpred =
  | Rtrue
  | Rfalse
  | Ratom of rterm * Pred.brel * rterm
  | Rbool of rterm
  | Rnot of rpred
  | Rand of rpred * rpred
  | Ror of rpred * rpred
  | Rimp of rpred * rpred
  | Riff of rpred * rpred

type t = {
  name : string;
  body : rpred;
  placeholders : string list;
  loc : Loc.t; (* of the declaration; [Loc.dummy] for programmatic quals *)
}

let is_placeholder = Qualparse.is_placeholder

let make ?(loc = Loc.dummy) name body =
  let vars = Qualparse.rpred_vars [] body in
  let placeholders =
    Listx.dedup_ordered ~compare:String.compare
      (List.filter is_placeholder vars)
  in
  { name; body; placeholders; loc }

(* -- Parser -------------------------------------------------------------------- *)

exception Parse_error = Qualparse.Parse_error

(** Parse qualifier declarations ([qualif Name(v) : pred], one or more). *)
let parse_string ?(file = "<qualifiers>") (src : string) : t list =
  let st = Qualparse.of_string ~file src in
  let quals = ref [] in
  let rec loop () =
    match Qualparse.peek st with
    | Token.EOF -> ()
    | Token.IDENT "qualif" ->
        let start = Qualparse.tok_start st in
        Qualparse.advance st;
        let name =
          match Qualparse.peek st with
          | Token.IDENT s | Token.UIDENT s ->
              Qualparse.advance st;
              s
          | _ -> raise (Parse_error "expected qualifier name")
        in
        (* optional (v) part *)
        if Qualparse.peek st = Token.LPAREN then begin
          Qualparse.advance st;
          (match Qualparse.peek st with
          | Token.IDENT _ -> Qualparse.advance st
          | _ -> raise (Parse_error "expected value-variable name"));
          Qualparse.expect st Token.RPAREN "')'"
        end;
        Qualparse.expect st Token.COLON "':'";
        Qualparse.reset_anon st;
        let body = Qualparse.parse_pred st in
        let loc = Loc.of_lexing start (Qualparse.last_end st) in
        quals := make ~loc name body :: !quals;
        loop ()
    | t ->
        raise (Parse_error ("expected 'qualif', found " ^ Token.to_string t))
  in
  loop ();
  List.rev !quals

(* -- Instantiation ---------------------------------------------------------------- *)

exception Ill_sorted = Qualparse.Ill_sorted

(** [instances_tagged quals ~vv_sort ~scope ~consts] computes the
    well-sorted qualifier instances for a template position whose value
    variable has sort [vv_sort], each tagged with the names of the
    patterns that produced it (provenance for the dead-qualifier lint).
    Placeholders range over the (non-internal) variables of [scope] and
    the mined integer [consts].  [collapsed] (when given) is incremented
    once per instance collapsed by orientation-level dedup. *)
let instances_tagged ?(consts : int list = []) ?(collapsed : int ref option)
    (quals : t list) ~(vv_sort : Sort.t) ~(scope : (Ident.t * Sort.t) list) :
    (Pred.t * string list) list =
  let scope_sorts =
    List.fold_left
      (fun m (x, s) -> Ident.Map.add x s m)
      Ident.Map.empty scope
  in
  (* Placeholders range over source-level variables only: compiler
     temporaries are single-use aliases and would only blow up Q*. *)
  let candidates =
    List.filter_map
      (fun (x, _) -> if Ident.is_internal x then None else Some x)
      scope
  in
  (* Mined constants become pseudo-candidates: a placeholder assigned the
     name "#c<n>" denotes the literal n.  They are Int-sorted. *)
  let const_name n = Printf.sprintf "#c%d" n in
  let const_of_name s =
    if String.length s > 2 && s.[0] = '#' && s.[1] = 'c' then
      int_of_string_opt (String.sub s 2 (String.length s - 2))
    else None
  in
  let candidates =
    candidates @ List.map (fun n -> Ident.of_string (const_name n)) consts
  in
  let result = ref [] in
  List.iter
    (fun q ->
      let rec assign (ph : string list) (acc : (string * Ident.t) list) =
        match ph with
        | [] -> (
            let sorts name =
              if name = "v" then vv_sort
              else if is_placeholder name then begin
                let x = List.assoc name acc in
                match const_of_name (Ident.to_string x) with
                | Some _ -> Sort.Int
                | None -> Ident.Map.find x scope_sorts
              end
              else
                match Ident.Map.find_opt (Ident.of_string name) scope_sorts with
                | Some s -> s
                | None -> raise Ill_sorted
            in
            try
              let p = Qualparse.pred_of_rpred sorts q.body in
              (* Replace the placeholder names and the surface "v" by the
                 actual value variable / program variables / constants. *)
              let sub =
                List.fold_left
                  (fun m (ph, x) ->
                    let v =
                      match const_of_name (Ident.to_string x) with
                      | Some n -> Pred.Tm (Term.int n)
                      | None ->
                          let s = Ident.Map.find x scope_sorts in
                          if Sort.equal s Sort.Bool then Pred.Pr (Pred.bvar x)
                          else Pred.Tm (Term.var x s)
                    in
                    Ident.Map.add (Ident.of_string ph) v m)
                  Ident.Map.empty acc
              in
              let sub =
                let v =
                  if Sort.equal vv_sort Sort.Bool then
                    Pred.Pr (Pred.bvar Ident.vv)
                  else Pred.Tm (Term.var Ident.vv vv_sort)
                in
                Ident.Map.add (Ident.of_string "v") v sub
              in
              let p = Pred.subst sub p in
              if not (Pred.equal p Pred.tt) then result := (p, q.name) :: !result
            with Ill_sorted -> ())
        | ph1 :: rest ->
            List.iter (fun x -> assign rest ((ph1, x) :: acc)) candidates
      in
      assign q.placeholders [])
    quals;
  let module PMap = Map.Make (Pred) in
  let names =
    List.fold_left
      (fun m (p, n) ->
        PMap.update p
          (function
            | None -> Some [ n ]
            | Some ns -> if List.mem n ns then Some ns else Some (n :: ns))
          m)
      PMap.empty !result
  in
  let preds =
    Listx.dedup_ordered ~compare:Pred.compare (List.map fst !result)
  in
  let tagged = List.map (fun p -> (p, List.rev (PMap.find p names))) preds in
  (* Orientation-level dedup: distinct qualifiers can instantiate to
     alpha-equivalent predicates that differ only in atom orientation
     (e.g. [v <= x] from [v <= _] and [x >= v] from [_ >= v]).  Such
     twins double every weakening re-check without changing the
     solution.  Key on {!Liquid_smt.Prop.normalize} — stable under the
     κ-instantiation substitutions applied later — but keep the {e first}
     occurrence's original predicate, so printed types are unchanged;
     provenance names of dropped twins are merged into the keeper. *)
  let keeper : Pred.t Pred.Tbl.t = Pred.Tbl.create 16 in
  let extra : string list Pred.Tbl.t = Pred.Tbl.create 16 in
  (* [tagged] is in reverse generation order, so scan it reversed: the
     keeper must be the {e earliest-generated} twin (the default set
     precedes user qualifiers), leaving positions of surviving entries —
     and hence printed conjunctions — unchanged. *)
  let kept =
    List.rev
      (List.filter
         (fun (p, ns) ->
           let key = Liquid_smt.Prop.normalize p in
           match Pred.Tbl.find_opt keeper key with
           | None ->
               Pred.Tbl.add keeper key p;
               true
           | Some k ->
               (match collapsed with Some r -> incr r | None -> ());
               Pred.Tbl.replace extra k
                 ((try Pred.Tbl.find extra k with Not_found -> []) @ ns);
               false)
         (List.rev tagged))
  in
  List.map
    (fun (p, ns) ->
      match Pred.Tbl.find_opt extra p with
      | None -> (p, ns)
      | Some more ->
          ( p,
            ns
            @ Listx.dedup_ordered ~compare:String.compare
                (List.filter (fun n -> not (List.mem n ns)) more) ))
    kept

let instances ?consts ?collapsed (quals : t list) ~(vv_sort : Sort.t)
    ~(scope : (Ident.t * Sort.t) list) : Pred.t list =
  List.map fst (instances_tagged ?consts ?collapsed quals ~vv_sort ~scope)

(* -- Default qualifier sets ---------------------------------------------------------- *)

(** The shared default qualifiers, close to the paper's Figure 1 set. *)
let defaults_source =
  {|
qualif True(v)   : v
qualif NonNeg(v) : 0 <= v
qualif Pos(v)    : 0 < v
qualif NonPos(v) : v <= 0
qualif Neg(v)    : v < 0
qualif LeVar(v)  : v <= _
qualif LtVar(v)  : v < _
qualif GeVar(v)  : v >= _
qualif GtVar(v)  : v > _
qualif EqVar(v)  : v = _
qualif UBLen(v)  : v < len _
qualif LeLen(v)  : v <= len _
qualif EqLen(v)  : len v = _
qualif EqLenLen(v) : len v = len _
qualif VEqLen(v) : v = len _
qualif ImpUBLen(v) : v -> _A < len _B
qualif ImpNonNeg(v) : v -> 0 <= _
qualif ImpLtVar(v) : v -> _A < _B
|}

let defaults : t list = parse_string ~file:"<defaults>" defaults_source

(** Qualifiers for list-length ([llen]) reasoning.  Kept out of
    {!defaults} so array-only programs don't pay for the extra
    instances; enable with [dsolve --list-qualifiers] or by appending
    [list_defaults] to the qualifier set. *)
let list_defaults_source =
  {|
qualif EqLlen(v)   : v = llen _
qualif UBLlen(v)   : v < llen _
qualif LeLlen(v)   : v <= llen _
qualif LlenEq(v)   : llen v = _
qualif LlenEqL(v)  : llen v = llen _
qualif LlenLe(v)   : llen v <= _
qualif LlenLeL(v)  : llen v <= llen _
qualif LlenSum(v)  : llen v = llen _A + llen _B
|}

let list_defaults : t list =
  parse_string ~file:"<list-defaults>" list_defaults_source

(** The qualifier patterns instantiated for one user measure [m] — the
    [llen] set of {!list_defaults}, generalized.  Only generated for
    measures that are actually declared, so programs without ADTs pay
    nothing.  Parsed after the measure table is loaded (the pattern
    parser only treats registered names as measures). *)
let measure_defaults_source (m : string) : string =
  String.concat "\n"
    [
      Printf.sprintf "qualif VEq_%s(v)  : v = %s _" m m;
      Printf.sprintf "qualif VLt_%s(v)  : v < %s _" m m;
      Printf.sprintf "qualif VLe_%s(v)  : v <= %s _" m m;
      Printf.sprintf "qualif %s_Eq(v)   : %s v = _" m m;
      Printf.sprintf "qualif %s_EqM(v)  : %s v = %s _" m m m;
      Printf.sprintf "qualif %s_Le(v)   : %s v <= _" m m;
      Printf.sprintf "qualif %s_LeM(v)  : %s v <= %s _" m m m;
      Printf.sprintf "qualif %s_GeM(v)  : %s v >= %s _" m m m;
      Printf.sprintf "qualif %s_Succ(v) : %s v = %s _ + 1" m m m;
    ]

let measure_defaults (names : string list) : t list =
  List.concat_map
    (fun m ->
      parse_string
        ~file:(Printf.sprintf "<measure-defaults:%s>" m)
        (measure_defaults_source m))
    names

(* -- Printing ------------------------------------------------------------------------- *)

let pp_rterm = Qualparse.pp_rterm
let pp_rpred = Qualparse.pp_rpred

let pp ppf q = Fmt.pf ppf "qualif %s(v): %a" q.name pp_rpred q.body
