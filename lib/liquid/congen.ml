(** Liquid constraint generation.

    Walks the A-normal program, building a refinement-type derivation with
    templates ({!Rtype.Kvar}s) at every position whose refinement must be
    inferred, and emitting:

    - {e well-formedness} constraints fixing the scope of each κ, and
    - {e subtyping} constraints between templates,

    exactly following the paper's syntax-directed rules: constants and
    variables get singleton ("selfified") types, [if] adds the guard to
    the environment of each branch, applications substitute actual
    arguments into dependent signatures, and joins ([if]/[match] results,
    [let] bodies whose type would let the binder escape, recursive
    definitions) go through fresh templates. *)

open Liquid_common
open Liquid_logic
open Liquid_lang
open Liquid_typing

exception Congen_error of string * Loc.t

type entry = { rt : Rtype.t; poly : bool }

type genv = { vars : (Ident.t * entry) list; cenv : Constr.env }

let empty_genv = { vars = []; cenv = Constr.empty_env }

let bind_mono x rt g =
  {
    vars = (x, { rt; poly = false }) :: g.vars;
    cenv = Constr.bind_var x rt g.cenv;
  }

let bind_poly x rt g =
  {
    vars = (x, { rt; poly = true }) :: g.vars;
    cenv = Constr.bind_var x rt g.cenv;
  }

let guard p g = { g with cenv = Constr.guard p g.cenv }

(** A conditional recorded for post-inference analysis (the reachability
    and tautology lints re-examine it under the final κ-solution).
    Conditionals whose branches are boolean constants are not recorded:
    they are the desugarings of [&&]/[||], where an always-true or
    always-false operand is ordinary code, not a suspicious branch. *)
type branch = {
  br_loc : Loc.t; (* the whole conditional *)
  br_env : Constr.env; (* environment at the conditional *)
  br_cond : Pred.t;
  br_cond_loc : Loc.t;
  br_then_loc : Loc.t;
  br_else_loc : Loc.t;
}

type ctx = {
  info : Infer.result;
  mutable subs : Constr.sub list;
  mutable wfs : Constr.wf list;
  mutable branches : branch list;
  mutable n_measure_axioms : int;
      (* constructor-site measure axioms emitted (expressions and patterns) *)
}

let emit_sub ctx env ?(reason = "subtyping") loc t1 t2 =
  let origin = { Constr.loc; reason } in
  ctx.subs <- Constr.split env origin t1 t2 ctx.subs

let emit_wf ctx env t = ctx.wfs <- Constr.split_wf env t ctx.wfs

(** Fresh template for [ty], well-formed in [env]. *)
let fresh_template ctx (env : Constr.env) (ty : Mltype.t) : Rtype.t =
  let t = Rtype.template ty in
  emit_wf ctx env t;
  t

(** Fresh template for [ty] whose [Fun] binders follow the lambda
    structure of [e].  Recursive definitions get their template this way
    so that the κ of each parameter can be instantiated with qualifiers
    over the {e earlier parameters by their source names} — fresh internal
    binder names would be excluded from qualifier instantiation, losing
    all inter-parameter invariants (e.g. [k <= hs] in Hanoi). *)
let fresh_template_like ctx (env : Constr.env) (e : Ast.expr)
    (ty : Mltype.t) : Rtype.t =
  let rec go (e : Ast.expr) (ty : Mltype.t) : Rtype.t =
    match (e.desc, Mltype.repr ty) with
    | Ast.Fun (x, body), Mltype.Tarrow (tx, tb) ->
        Rtype.Fun (x, Rtype.template tx, go body tb)
    | _ -> Rtype.template ty
  in
  let t = go e ty in
  emit_wf ctx env t;
  t

(* -- Atoms ------------------------------------------------------------------ *)

let sort_of_mltype (ty : Mltype.t) : Sort.t =
  match Mltype.repr ty with
  | Mltype.Tint -> Sort.Int
  | Mltype.Tbool -> Sort.Bool
  | _ -> Sort.Obj

(** Logical value of an atom ([None] for unit). *)
let atom_value ctx (a : Ast.expr) : Pred.value option =
  match a.desc with
  | Ast.Const (Ast.Cint n) -> Some (Pred.Tm (Term.int n))
  | Ast.Const (Ast.Cbool b) -> Some (Pred.Pr (if b then Pred.tt else Pred.ff))
  | Ast.Const Ast.Cunit -> None
  | Ast.Var x -> (
      match sort_of_mltype (Infer.type_of ctx.info a) with
      | Sort.Bool -> Some (Pred.Pr (Pred.bvar x))
      | s -> Some (Pred.Tm (Term.var x s)))
  | _ -> invalid_arg "atom_value: not an atom"

(** Integer term of an int-sorted atom. *)
let int_term (a : Ast.expr) : Term.t =
  match a.desc with
  | Ast.Const (Ast.Cint n) -> Term.int n
  | Ast.Var x -> Term.var x Sort.Int
  | _ -> invalid_arg "int_term: not an atom"

(** Boolean predicate denoted by a bool-sorted atom. *)
let bool_pred (a : Ast.expr) : Pred.t =
  match a.desc with
  | Ast.Const (Ast.Cbool b) -> if b then Pred.tt else Pred.ff
  | Ast.Var x -> Pred.bvar x
  | _ -> invalid_arg "bool_pred: not an atom"

let vv_int = Term.var Ident.vv Sort.Int
let vv_bool = Pred.bvar Ident.vv

let exact_int t = Rtype.Base (Rtype.Bint, Rtype.known (Pred.eq vv_int t))
let exact_bool p = Rtype.Base (Rtype.Bbool, Rtype.known (Pred.iff vv_bool p))
let unit_t = Rtype.Base (Rtype.Bunit, Rtype.trivial)

(* -- Variables ----------------------------------------------------------------- *)

let lookup_var ctx (g : genv) (e : Ast.expr) (x : Ident.t) : Rtype.t =
  let site_ty = Infer.type_of ctx.info e in
  match List.assoc_opt x g.vars with
  | Some { rt; poly = false } -> Rtype.selfify x rt
  | Some { rt; poly = true } ->
      let inst = Rtype.instantiate rt site_ty in
      emit_wf ctx g.cenv inst;
      Rtype.selfify x inst
  | None -> (
      match Prims.lookup x with
      | Some rt ->
          let inst = Rtype.instantiate rt site_ty in
          emit_wf ctx g.cenv inst;
          inst
      | None ->
          raise (Congen_error (Fmt.str "unbound variable %a" Ident.pp x, e.loc)))

(** Exact refinement type of an atom. *)
let type_of_atom ctx (g : genv) (a : Ast.expr) : Rtype.t =
  match a.desc with
  | Ast.Const (Ast.Cint n) -> exact_int (Term.int n)
  | Ast.Const (Ast.Cbool b) -> exact_bool (if b then Pred.tt else Pred.ff)
  | Ast.Const Ast.Cunit -> unit_t
  | Ast.Var x -> lookup_var ctx g a x
  | _ -> invalid_arg "type_of_atom: not an atom"

(** Syntactic head of an application spine, if it is a variable. *)
let rec spine_head (e : Ast.expr) : Ident.t option =
  match e.desc with
  | Ast.Var x -> Some x
  | Ast.App (e1, _) -> spine_head e1
  | _ -> None

(* -- Refined operator results ------------------------------------------------------ *)

(** Exact result type of an integer division [a1 / a2].  When the divisor
    is a positive literal [k], truncation toward zero is axiomatized with
    linear inequalities; otherwise the quotient is the uninterpreted
    [div(a1, a2)]. *)
let div_type (t1 : Term.t) (t2 : Term.t) : Rtype.t =
  match Term.view t2 with
  | Term.Int k when k > 0 ->
      (* x >= 0: kν <= x < kν + k;  x < 0: kν - k < x <= kν *)
      let x = t1 and kv = Term.mul (Term.int k) vv_int in
      let nonneg =
        Pred.imp
          (Pred.ge x (Term.int 0))
          (Pred.conj
             [ Pred.le kv x; Pred.lt x (Term.add kv (Term.int k)) ])
      in
      let negative =
        Pred.imp
          (Pred.lt x (Term.int 0))
          (Pred.conj
             [ Pred.le x kv; Pred.lt (Term.sub kv (Term.int k)) x ])
      in
      Rtype.Base (Rtype.Bint, Rtype.known (Pred.and_ nonneg negative))
  | _ ->
      (* variable divisor: quotient is uninterpreted, but for non-negative
         dividends and positive divisors it is bounded by the dividend *)
      let q = Term.app Symbol.div [ t1; t2 ] in
      let bounds =
        Pred.imp
          (Pred.and_ (Pred.ge t1 (Term.int 0)) (Pred.gt t2 (Term.int 0)))
          (Pred.conj [ Pred.le (Term.int 0) vv_int; Pred.le vv_int t1 ])
      in
      Rtype.Base
        (Rtype.Bint, Rtype.known (Pred.and_ (Pred.eq vv_int q) bounds))

(** Exact result type of [a1 mod a2]; with a positive literal divisor the
    remainder is tied to the uninterpreted quotient and bounded. *)
let mod_type (t1 : Term.t) (t2 : Term.t) : Rtype.t =
  match Term.view t2 with
  | Term.Int k when k > 0 ->
      let q = Term.app Symbol.div [ t1; t2 ] in
      let x = t1 and kq = Term.mul (Term.int k) q in
      let defining = Pred.eq vv_int (Term.sub x kq) in
      let bounds =
        Pred.imp
          (Pred.ge x (Term.int 0))
          (Pred.conj
             [
               Pred.le (Term.int 0) vv_int;
               Pred.lt vv_int (Term.int k);
               Pred.le kq x;
               Pred.lt x (Term.add kq (Term.int k));
             ])
      in
      Rtype.Base (Rtype.Bint, Rtype.known (Pred.and_ defining bounds))
  | _ ->
      (* variable divisor: remainder of a non-negative dividend by a
         positive divisor lies in [0, divisor) *)
      let r = Term.app Symbol.imod [ t1; t2 ] in
      let bounds =
        Pred.imp
          (Pred.and_ (Pred.ge t1 (Term.int 0)) (Pred.gt t2 (Term.int 0)))
          (Pred.conj [ Pred.le (Term.int 0) vv_int; Pred.lt vv_int t2 ])
      in
      Rtype.Base
        (Rtype.Bint, Rtype.known (Pred.and_ (Pred.eq vv_int r) bounds))

let binop_type ctx (a1 : Ast.expr) (op : Ast.binop) (a2 : Ast.expr) : Rtype.t =
  let ity () = (int_term a1, int_term a2) in
  match op with
  | Ast.Add ->
      let t1, t2 = ity () in
      exact_int (Term.add t1 t2)
  | Ast.Sub ->
      let t1, t2 = ity () in
      exact_int (Term.sub t1 t2)
  | Ast.Mul ->
      let t1, t2 = ity () in
      exact_int (Term.mul t1 t2)
  | Ast.Div ->
      let t1, t2 = ity () in
      div_type t1 t2
  | Ast.Mod ->
      let t1, t2 = ity () in
      mod_type t1 t2
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      let t1, t2 = ity () in
      let rel =
        match op with
        | Ast.Lt -> Pred.Lt
        | Ast.Le -> Pred.Le
        | Ast.Gt -> Pred.Gt
        | Ast.Ge -> Pred.Ge
        | _ -> assert false
      in
      exact_bool (Pred.atom t1 rel t2)
  | Ast.Eq | Ast.Ne -> (
      let ty = Infer.type_of ctx.info a1 in
      let mk p = exact_bool (if op = Ast.Eq then p else Pred.not_ p) in
      match sort_of_mltype ty with
      | Sort.Int -> mk (Pred.eq (int_term a1) (int_term a2))
      | Sort.Bool -> mk (Pred.iff (bool_pred a1) (bool_pred a2))
      | Sort.Obj -> (
          (* Equality of aggregates: logical ([Obj]-sorted) equality.
             All uninterpreted symbols of the logic (len, projections)
             respect structural equality, so reflecting the program's
             structural test as logical equality is sound. *)
          match (a1.desc, a2.desc) with
          | Ast.Var x, Ast.Var y ->
              mk (Pred.eq (Term.var x Sort.Obj) (Term.var y Sort.Obj))
          | _ -> Rtype.Base (Rtype.Bbool, Rtype.trivial)))

(* -- Pattern facts -------------------------------------------------------------------- *)

(** Strengthen the top-level refinement of [t] with [ν = value]. *)
let strengthen_self (value : Pred.value option) (t : Rtype.t) : Rtype.t =
  match value with
  | None -> t
  | Some v -> (
      let self =
        match (Rtype.sort_of t, v) with
        | Sort.Bool, Pred.Pr p -> Some (Pred.iff vv_bool p)
        | Sort.Bool, Pred.Tm _ -> None
        | s, Pred.Tm tm -> Some (Pred.eq (Term.var Ident.vv s) tm)
        | _, Pred.Pr _ -> None
      in
      match self with
      | None -> t
      | Some p -> (
          match t with
          | Rtype.Base (Rtype.Bunit, _) -> t
          | Rtype.Base (b, r) -> Rtype.Base (b, Rtype.strengthen p r)
          | Rtype.Array (e, r) -> Rtype.Array (e, Rtype.strengthen p r)
          | Rtype.Tyvar (k, r) -> Rtype.Tyvar (k, Rtype.strengthen p r)
          | _ -> t))

let vv_obj = Term.var Ident.vv Sort.Obj
let llen t = Measure.app "llen" t

(** Instantiated measure axioms of one constructor application, counted
    into the run's statistics. *)
let ctor_axioms ctx ~tycon ~ctor ~value ~args : Pred.t list =
  let axs = Measure.ctor_axioms ~tycon ~ctor ~value ~args in
  ctx.n_measure_axioms <- ctx.n_measure_axioms + List.length axs;
  axs

(** Bindings and guard facts contributed by matching pattern [p] against a
    scrutinee of type [t] whose logical value is [value]. *)
let rec pat_facts ctx (value : Pred.value option) (t : Rtype.t) (p : Ast.pat) :
    (Ident.t * Rtype.t) list * Pred.t list =
  match p with
  | Ast.Pwild | Ast.Punit -> ([], [])
  | Ast.Pvar x -> ([ (x, strengthen_self value t) ], [])
  | Ast.Pbool b -> (
      ( [],
        match value with
        | Some (Pred.Pr q) -> [ (if b then q else Pred.not_ q) ]
        | _ -> [] ))
  | Ast.Pint n -> (
      ( [],
        match value with
        | Some (Pred.Tm tm) -> [ Pred.eq tm (Term.int n) ]
        | _ -> [] ))
  | Ast.Ptuple ps -> (
      match t with
      | Rtype.Tuple ts when List.length ts = List.length ps ->
          let parts =
            List.mapi
              (fun i (pi, ti) ->
                let s = Rtype.sort_of ti in
                let vi =
                  match (value, s) with
                  | Some (Pred.Tm base), s when not (Sort.equal s Sort.Bool) ->
                      Some
                        (Pred.Tm (Term.app (Rtype.proj_symbol i s) [ base ]))
                  | _ -> None
                in
                pat_facts ctx vi ti pi)
              (List.combine ps ts)
          in
          List.fold_left
            (fun (bs, gs) (bs', gs') -> (bs @ bs', gs @ gs'))
            ([], []) parts
      | _ -> ([], []))
  | Ast.Pnil -> (
      (* matching []: the nil axioms of every list measure (llen ν = 0) *)
      ( [],
        match value with
        | Some (Pred.Tm tm) ->
            ctor_axioms ctx ~tycon:"list" ~ctor:"[]" ~value:tm ~args:[]
        | _ -> [] ))
  | Ast.Pcons (p1, p2) -> (
      match t with
      | Rtype.List (elt, _) ->
          let b1, g1 = pat_facts ctx None elt p1 in
          (* the tail's length is one less than the scrutinee's *)
          let tail_type =
            match value with
            | Some (Pred.Tm tm) ->
                Rtype.List
                  ( elt,
                    Rtype.known
                      (Pred.eq (llen vv_obj)
                         (Term.sub (llen tm) (Term.int 1))) )
            | _ -> t
          in
          let b2, g2 = pat_facts ctx None tail_type p2 in
          let guards =
            match value with
            | Some (Pred.Tm tm) -> [ Pred.ge (llen tm) (Term.int 1) ]
            | _ -> []
          in
          (b1 @ b2, g1 @ g2 @ guards)
      | _ -> ([], []))
  | Ast.Pconstr (c, ps) -> (
      match Hashtbl.find_opt ctx.info.Infer.ctors c with
      | None -> ([], [])
      | Some (arg_tys, tycon) when List.length arg_tys = List.length ps ->
          (* Name every constructor argument — source names where the
             sub-pattern is a variable, fresh internal names otherwise —
             so the defining measure axioms can speak about all of them
             (and each ADT/list/array-typed argument contributes its
             non-negativity facts through the environment embedding). *)
          let names =
            List.map
              (fun (pi : Ast.pat) ->
                match pi with
                | Ast.Pvar x -> x
                | _ -> Gensym.fresh_inst "arg")
              ps
          in
          let shapes = List.map Rtype.shape arg_tys in
          let binds = List.combine names shapes in
          (* recurse into non-variable sub-patterns with the fresh
             binder as their scrutinee *)
          let nested =
            List.map2
              (fun (pi : Ast.pat) (x, ti) ->
                match pi with
                | Ast.Pvar _ -> ([], [])
                | _ ->
                    let vi =
                      match Rtype.sort_of ti with
                      | Sort.Bool -> Some (Pred.Pr (Pred.bvar x))
                      | s -> Some (Pred.Tm (Term.var x s))
                    in
                    pat_facts ctx vi ti pi)
              ps binds
          in
          let axioms =
            match value with
            | Some (Pred.Tm tm) ->
                let args =
                  List.map2
                    (fun x ti ->
                      match Rtype.sort_of ti with
                      | Sort.Bool -> None
                      | s -> Some (Term.var x s))
                    names shapes
                in
                ctor_axioms ctx ~tycon ~ctor:c ~value:tm ~args
            | _ -> []
          in
          let bs, gs =
            List.fold_left
              (fun (bs, gs) (bs', gs') -> (bs @ bs', gs @ gs'))
              (binds, []) nested
          in
          (bs, gs @ axioms)
      | Some _ -> ([], []))

(* -- Array access signatures ----------------------------------------------------- *)

let array_access_prim (h : Ident.t) : bool =
  match Ident.to_string h with
  | "Array.get" | "Array.set" -> true
  | _ -> false

(** Specialized dependent signature of [Array.get]/[Array.set] at an
    array whose element type is [elem]: the element type of the array
    itself, not a fresh template. *)
let array_access_sig (h : Ident.t) (elem : Rtype.t) : Rtype.t =
  let fa = Gensym.fresh_inst "a" in
  let fi = Gensym.fresh_inst "i" in
  let in_bounds =
    Pred.conj
      [
        Pred.le (Term.int 0) vv_int;
        Pred.lt vv_int (Measure.app "len" (Term.var fa Sort.Obj));
      ]
  in
  let idx = Rtype.Base (Rtype.Bint, Rtype.known in_bounds) in
  let arr = Rtype.Array (elem, Rtype.trivial) in
  match Ident.to_string h with
  | "Array.get" -> Rtype.Fun (fa, arr, Rtype.Fun (fi, idx, elem))
  | _ ->
      let fx = Gensym.fresh_inst "x" in
      Rtype.Fun (fa, arr, Rtype.Fun (fi, idx, Rtype.Fun (fx, elem, unit_t)))

(* -- Main walker --------------------------------------------------------------------------- *)

(** Record a conditional for the post-inference lints, unless a branch is
    a boolean constant (the shape of desugared [&&]/[||], which would
    otherwise lint as trivially-true/false conditions). *)
let record_branch (ctx : ctx) (g : genv) (e : Ast.expr) (c : Ast.expr)
    (e1 : Ast.expr) (e2 : Ast.expr) (p : Pred.t) : unit =
  let is_bool_const (b : Ast.expr) =
    match b.desc with Ast.Const (Ast.Cbool _) -> true | _ -> false
  in
  if not (is_bool_const e1 || is_bool_const e2) then
    ctx.branches <-
      {
        br_loc = e.loc;
        br_env = g.cenv;
        br_cond = p;
        br_cond_loc = c.loc;
        br_then_loc = e1.loc;
        br_else_loc = e2.loc;
      }
      :: ctx.branches

let rec cg (ctx : ctx) (g : genv) (e : Ast.expr) : Rtype.t =
  match e.desc with
  | Ast.Const _ | Ast.Var _ -> type_of_atom ctx g e
  | Ast.Fun (x, body) -> (
      match Mltype.repr (Infer.type_of ctx.info e) with
      | Mltype.Tarrow (tx, _) ->
          let targ = fresh_template ctx g.cenv tx in
          let tbody = cg ctx (bind_mono x targ g) body in
          Rtype.Fun (x, targ, tbody)
      | _ -> raise (Congen_error ("lambda without arrow type", e.loc)))
  | Ast.App (e1, a) -> (
      let tf =
        match e1.desc with
        | Ast.Var h when array_access_prim h -> (
            (* Array.get/Array.set operate on the array's {e own} element
               type instead of a fresh instance template: a fresh κ per
               access site would add an invariance back-flow constraint
               that can only weaken the array's refinements (the access
               site's qualifier vocabulary is often poorer than the
               definition's), and it is never needed — reads return
               exactly the stored elements and writes must preserve
               exactly the stored element type. *)
            match type_of_atom ctx g a with
            | Rtype.Array (elem, _) -> array_access_sig h elem
            | _ -> cg ctx g e1)
        | _ -> cg ctx g e1
      in
      match tf with
      | Rtype.Fun (xf, tformal, tresult) ->
          let tactual = type_of_atom ctx g a in
          let reason =
            match spine_head e1 with
            | Some h -> (
                match Prims.arg_reason h with
                | Some r -> r
                | None -> Fmt.str "argument of %a" Ident.pp h)
            | None -> "function argument"
          in
          emit_sub ctx g.cenv ~reason e.loc tactual tformal;
          (match atom_value ctx a with
          | Some v -> Rtype.subst1 xf v tresult
          | None -> tresult)
      | _ ->
          raise
            (Congen_error
               (Fmt.str "application of non-function type %a" Rtype.pp tf, e.loc)))
  | Ast.Binop (op, a1, a2) -> binop_type ctx a1 op a2
  | Ast.Unop (Ast.Neg, a) -> exact_int (Term.neg (int_term a))
  | Ast.Unop (Ast.Not, a) -> exact_bool (Pred.not_ (bool_pred a))
  | Ast.If (c, e1, e2)
    when Liquid_anf.Anf.is_atom e1 && Liquid_anf.Anf.is_atom e2
         && (match sort_of_mltype (Infer.type_of ctx.info e) with
            | Sort.Int | Sort.Bool -> true
            | Sort.Obj -> false) -> (
      (* Both branches are atoms (typical for desugared && / ||): the
         conditional has an exact base refinement — no template, no join,
         no precision loss.  [ν = if c then a1 else a2] is encoded as
         (c ⇒ ν = a1) ∧ (¬c ⇒ ν = a2). *)
      let p = bool_pred c in
      record_branch ctx g e c e1 e2 p;
      match sort_of_mltype (Infer.type_of ctx.info e) with
      | Sort.Int ->
          Rtype.Base
            ( Rtype.Bint,
              Rtype.known
                (Pred.and_
                   (Pred.imp p (Pred.eq vv_int (int_term e1)))
                   (Pred.imp (Pred.not_ p) (Pred.eq vv_int (int_term e2)))) )
      | _ ->
          Rtype.Base
            ( Rtype.Bbool,
              Rtype.known
                (Pred.and_
                   (Pred.imp p (Pred.iff vv_bool (bool_pred e1)))
                   (Pred.imp (Pred.not_ p) (Pred.iff vv_bool (bool_pred e2)))) ))
  | Ast.If (c, e1, e2) ->
      let result = fresh_template ctx g.cenv (Infer.type_of ctx.info e) in
      let p = bool_pred c in
      record_branch ctx g e c e1 e2 p;
      let g1 = guard p g in
      let t1 = cg ctx g1 e1 in
      emit_sub ctx g1.cenv ~reason:"then-branch join" e1.loc t1 result;
      let g2 = guard (Pred.not_ p) g in
      let t2 = cg ctx g2 e2 in
      emit_sub ctx g2.cenv ~reason:"else-branch join" e2.loc t2 result;
      result
  | Ast.Let (Ast.Nonrec, x, e1, e2) ->
      let t1 = cg ctx g e1 in
      let poly = Infer.is_value e1 in
      let g' = if poly then bind_poly x t1 g else bind_mono x t1 g in
      let t2 = cg ctx g' e2 in
      close_let ctx g g' x e t2
  | Ast.Let (Ast.Rec, x, e1, e2) ->
      let tf = fresh_template_like ctx g.cenv e1 (Infer.type_of ctx.info e1) in
      let gbody = bind_mono x tf g in
      let t1 = cg ctx gbody e1 in
      emit_sub ctx gbody.cenv ~reason:"recursive definition" e1.loc t1 tf;
      let g' = bind_poly x tf g in
      let t2 = cg ctx g' e2 in
      close_let ctx g g' x e t2
  | Ast.Tuple atoms -> Rtype.Tuple (List.map (type_of_atom ctx g) atoms)
  | Ast.Constr (c, atoms) -> (
      match Hashtbl.find_opt ctx.info.Infer.ctors c with
      | None -> raise (Congen_error ("unknown constructor " ^ c, e.loc))
      | Some (_, tycon) ->
          (* the defining axiom of every measure of the datatype, with
             the constructor arguments substituted in *)
          let args =
            List.map
              (fun a ->
                match atom_value ctx a with
                | Some (Pred.Tm tm) -> Some tm
                | _ -> None)
              atoms
          in
          let axs = ctor_axioms ctx ~tycon ~ctor:c ~value:vv_obj ~args in
          Rtype.Data (tycon, Rtype.known (Pred.conj axs)))
  | Ast.Nil -> (
      match Mltype.repr (Infer.type_of ctx.info e) with
      | Mltype.Tlist elt ->
          (* measure semantics: llen [] = 0 *)
          let axs = ctor_axioms ctx ~tycon:"list" ~ctor:"[]" ~value:vv_obj ~args:[] in
          Rtype.List (fresh_template ctx g.cenv elt, Rtype.known (Pred.conj axs))
      | _ -> raise (Congen_error ("[] without list type", e.loc)))
  | Ast.Cons (a, l) -> (
      match Mltype.repr (Infer.type_of ctx.info e) with
      | Mltype.Tlist elt_ty ->
          let telt = fresh_template ctx g.cenv elt_ty in
          let ta = type_of_atom ctx g a in
          emit_sub ctx g.cenv ~reason:"list element join" a.loc ta telt;
          let tl = cg ctx g l in
          (match tl with
          | Rtype.List (tl_elt, _) ->
              emit_sub ctx g.cenv ~reason:"list element join" l.loc tl_elt telt
          | _ -> ());
          (* measure semantics: llen (a :: l) = llen l + 1 *)
          let len_ref =
            match atom_value ctx l with
            | Some (Pred.Tm tail) ->
                Rtype.known
                  (Pred.conj
                     (ctor_axioms ctx ~tycon:"list" ~ctor:"::" ~value:vv_obj
                        ~args:[ None; Some tail ]))
            | _ -> Rtype.known (Pred.ge (llen vv_obj) (Term.int 1))
          in
          Rtype.List (telt, len_ref)
      | _ -> raise (Congen_error ("cons without list type", e.loc)))
  | Ast.Match (scrut, cases) ->
      let tscrut = type_of_atom ctx g scrut in
      let result = fresh_template ctx g.cenv (Infer.type_of ctx.info e) in
      let v = atom_value ctx scrut in
      List.iter
        (fun (p, body) ->
          let binds, guards = pat_facts ctx v tscrut p in
          let g' =
            List.fold_left (fun g (x, t) -> bind_mono x t g) g binds
          in
          let g' = List.fold_left (fun g p -> guard p g) g' guards in
          let tb = cg ctx g' body in
          emit_sub ctx g'.cenv ~reason:"match arm join" body.loc tb result)
        cases;
      result
  | Ast.Assert a ->
      let ta = type_of_atom ctx g a in
      emit_sub ctx g.cenv ~reason:"assertion may fail" e.loc ta
        (Rtype.Base (Rtype.Bbool, Rtype.known vv_bool));
      unit_t

(** Close the scope of a let: if the binder could occur in the body's
    type, funnel through a fresh template well-formed without the binder
    (the paper's [LET] rule).  Passing the type through unchanged is only
    sound when it contains no κ (a κ's eventual solution may mention the
    binder even if its pending substitution does not) and its concrete
    refinements do not mention the binder. *)
and close_let ctx (gouter : genv) (ginner : genv) (x : Ident.t)
    (e : Ast.expr) (t2 : Rtype.t) : Rtype.t =
  let escapes =
    Rtype.kvars t2 <> []
    || List.exists (Ident.equal x) (Rtype.free_prog_vars t2)
  in
  if not escapes then t2
  else begin
    let result = fresh_template ctx gouter.cenv (Infer.type_of ctx.info e) in
    emit_sub ctx ginner.cenv ~reason:"let body join" e.loc t2 result;
    result
  end

(* -- Programs --------------------------------------------------------------------------------- *)

type output = {
  subs : Constr.sub list;
  wfs : Constr.wf list;
  item_types : (Ident.t * Rtype.t) list; (* in program order *)
  branches : branch list; (* in program order *)
  n_measure_axioms : int; (* constructor-site measure axioms emitted *)
}

let generate ?(specs : Spec.t = []) (info : Infer.result)
    (prog : Ast.program) : output =
  let ctx =
    { info; subs = []; wfs = []; branches = []; n_measure_axioms = 0 }
  in
  let spec_of (item : Ast.item) =
    match Spec.lookup specs item.name with
    | None -> None
    | Some sp -> (
        try Some (Spec.align_tyvars sp (Infer.type_of ctx.info item.body))
        with Spec.Misaligned msg ->
          raise
            (Congen_error
               (Fmt.str "specification of %a: %s" Ident.pp item.name msg,
                item.item_loc)))
  in
  let _, items =
    List.fold_left
      (fun (g, acc) (item : Ast.item) ->
        let spec = spec_of item in
        let rt =
          match (item.rec_flag, spec) with
          | Ast.Nonrec, None -> cg ctx g item.body
          | Ast.Nonrec, Some sp ->
              let t1 = cg ctx g item.body in
              emit_sub ctx g.cenv ~reason:"specification check" item.item_loc
                t1 sp;
              sp
          | Ast.Rec, None ->
              let tf =
                fresh_template_like ctx g.cenv item.body
                  (Infer.type_of ctx.info item.body)
              in
              let gbody = bind_mono item.name tf g in
              let t1 = cg ctx gbody item.body in
              emit_sub ctx gbody.cenv ~reason:"recursive definition"
                item.item_loc t1 tf;
              tf
          | Ast.Rec, Some sp ->
              (* Modular checking: assume the specification inside the
                 body, check the body against it. *)
              let gbody = bind_mono item.name sp g in
              let t1 = cg ctx gbody item.body in
              emit_sub ctx gbody.cenv ~reason:"specification check"
                item.item_loc t1 sp;
              sp
        in
        let poly = Infer.is_value item.body || spec <> None in
        let g' =
          if poly then bind_poly item.name rt g else bind_mono item.name rt g
        in
        (g', (item.name, rt) :: acc))
      (empty_genv, []) prog
  in
  {
    subs = List.rev ctx.subs;
    wfs = List.rev ctx.wfs;
    item_types = List.rev items;
    branches = List.rev ctx.branches;
    n_measure_axioms = ctx.n_measure_axioms;
  }
