(** Liquid constraint generation: walks the A-normal program, building
    templates and emitting well-formedness and subtyping constraints per
    the paper's syntax-directed rules. *)

open Liquid_common
open Liquid_lang
open Liquid_typing

open Liquid_logic

exception Congen_error of string * Loc.t

(** A conditional recorded for post-inference analysis (reachability and
    tautology lints).  Desugared [&&]/[||] conditionals (a boolean-constant
    branch) are not recorded. *)
type branch = {
  br_loc : Loc.t; (* the whole conditional *)
  br_env : Constr.env; (* environment at the conditional *)
  br_cond : Pred.t;
  br_cond_loc : Loc.t;
  br_then_loc : Loc.t;
  br_else_loc : Loc.t;
}

type output = {
  subs : Constr.sub list;
  wfs : Constr.wf list;
  item_types : (Ident.t * Rtype.t) list; (* in program order *)
  branches : branch list; (* in program order *)
  n_measure_axioms : int; (* constructor-site measure axioms emitted *)
}

(** Generate the constraint system.  [specs] supplies refinement-type
    specifications to check modularly (see {!Spec}).
    @raise Congen_error on unbound variables, shape errors, or misaligned
    specifications.  The program must be in A-normal form and typed by
    [info]. *)
val generate : ?specs:Spec.t -> Infer.result -> Ast.program -> output
