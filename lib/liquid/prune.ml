(** Qualifier-space pruning: a static analysis over the initial
    candidate assignment, run after instantiation and before the
    weakening loop.

    Fixpoint cost is |instances| × constraints: every candidate at every
    κ is re-checked as the assignment weakens, yet many instances are
    statically redundant.  Three phases shrink each κ's set — only for
    κs some constraint of the unit actually writes (writerless κs are
    never weakened, so pruning them could only lose precision):

    1. {e orientation dedup}: instances whose {!Liquid_smt.Prop.normalize}
       forms coincide are alpha-equivalent modulo atom orientation; all
       but the first are parked as [Dup] of it.  Normal forms are stable
       under substitution, so a dup and its representative produce
       canon-identical queries at every instantiation site and travel in
       lockstep through the whole run — a dup is reinstatable by a pure
       membership test on its representative, no solver call.
    2. {e WF-refutation}: instances unsatisfiable under the κ's
       well-formedness environment (its binding facts and guards, κs
       read as ⊤) can never distinguish states at any site where the
       environment holds; they are parked as [Refuted].
    3. {e subsumption}: a greedy deletion pass parks instances implied,
       under the WF facts, by the conjunction of the remaining siblings
       ([Subsumed]).  The surviving set has the same conjunctive meaning,
       so hypotheses instantiated from the κ are semantically unchanged;
       the parked instance is the {e weaker} side of each implication,
       which is exactly the kind that tends to survive weakening — the
       reinstatement pass in {!Fixpoint} restores it cheaply afterwards.

    Phases 2–3 run against one persistent incremental solver context
    ({!Liquid_smt.Solver.ctx_assert}): each κ's facts are encoded once
    into a pushed frame, and every candidate probe is a small push /
    assert / check / pop against the accumulated clauses.

    Pruning is an {e under-approximation} of the initial assignment;
    exactness of the final solution is restored by the reinstatement
    pass (see {!Fixpoint.solve_unit}), justified by the greatest-solution
    property: any parked instance validated from below under the final
    pruned solution is a member of the full run's final solution. *)

open Liquid_logic
open Liquid_smt
module KMap = Constr.KMap
module ISet = Set.Make (Int)

(** Why an instance was parked.  [Dup] carries the surviving
    representative: the dup belongs in the final solution iff the
    representative does. *)
type reason = Dup of Pred.t | Refuted | Subsumed

(** Result of the analysis over one initial assignment.  [kept] and
    [parked] partition each κ's candidate list, both in original
    candidate order; the payload ['a] (qualifier provenance in the
    engine) is carried through untouched. *)
type 'a plan = {
  kept : (Pred.t * 'a) list KMap.t;
  parked : (Pred.t * 'a * reason) list KMap.t;
  n_dup : int;
  n_refuted : int;
  n_subsumed : int;
}

(** Per-κ well-formedness facts for the refutation and subsumption
    phases: binding facts and guards of the κ's (first) wf environment,
    with κ refinements read as ⊤ — a sound weakening, since any fact
    derived without them holds a fortiori under the full environment. *)
let wf_facts (wfs : Constr.wf list) : Pred.t list KMap.t =
  List.fold_left
    (fun acc (wf : Constr.wf) ->
      match KMap.find_opt wf.Constr.wf_kvar acc with
      | Some _ -> acc
      | None ->
          let facts, guards =
            Constr.embed_env (fun _ -> []) wf.Constr.wf_env
          in
          KMap.add wf.Constr.wf_kvar (facts @ guards) acc)
    KMap.empty wfs

(* Is the current context plus [p] unsatisfiable?  Conservative on
   [Unknown] (counts as satisfiable, so the instance is kept). *)
let refuted_by ctx p =
  Solver.ctx_push ctx;
  Solver.ctx_assert ctx p;
  let sat = Solver.ctx_consistent ctx in
  Solver.ctx_pop ctx;
  not sat

let analyze ~(wf_facts : Pred.t list KMap.t) (subs : Constr.sub list)
    (init : (Pred.t * 'a) list KMap.t) : 'a plan =
  let writers =
    List.fold_left
      (fun s c ->
        match Constr.writes c with Some k -> ISet.add k s | None -> s)
      ISet.empty subs
  in
  let n_dup = ref 0 and n_refuted = ref 0 and n_subsumed = ref 0 in
  let parked_all = ref KMap.empty in
  Solver.with_context (fun ctx ->
      let kept =
        (* [mapi] visits κs in increasing order: deterministic. *)
        KMap.mapi
          (fun k insts ->
            if not (ISet.mem k writers) then insts
            else begin
              let parked = ref [] in
              let park p tag r = parked := (p, tag, r) :: !parked in
              (* Phase 1: orientation dedup. *)
              let seen : Pred.t Pred.Tbl.t = Pred.Tbl.create 32 in
              let s1 =
                List.filter
                  (fun (p, tag) ->
                    let key = Prop.normalize p in
                    match Pred.Tbl.find_opt seen key with
                    | None ->
                        Pred.Tbl.add seen key p;
                        true
                    | Some rep ->
                        incr n_dup;
                        park p tag (Dup rep);
                        false)
                  insts
              in
              let facts =
                match KMap.find_opt k wf_facts with
                | Some fs -> fs
                | None -> []
              in
              Solver.ctx_push ctx;
              List.iter (Solver.ctx_assert ctx) facts;
              let survivors =
                if not (Solver.ctx_consistent ctx) then
                  (* Inconsistent wf environment: every instance would be
                     "refuted"; keep them all (the weaken loop retains
                     them all too, since dead hypotheses prove
                     anything). *)
                  s1
                else begin
                  (* Phase 2: WF-refutation. *)
                  let s2 =
                    List.filter
                      (fun (p, tag) ->
                        if refuted_by ctx p then begin
                          incr n_refuted;
                          park p tag Refuted;
                          false
                        end
                        else true)
                      s1
                  in
                  (* Phase 3: greedy subsumption.  [present] shrinks as
                     instances are parked, so each test is against the
                     conjunction of the instances actually surviving —
                     the surviving set keeps the conjunctive meaning. *)
                  let present =
                    ref
                      (ISet.of_list
                         (List.map (fun (p, _) -> Pred.tag p) s2))
                  in
                  List.filter
                    (fun (p, tag) ->
                      if ISet.cardinal !present <= 1 then true
                      else begin
                        Solver.ctx_push ctx;
                        List.iter
                          (fun (q, _) ->
                            if
                              Pred.tag q <> Pred.tag p
                              && ISet.mem (Pred.tag q) !present
                            then Solver.ctx_assert ctx q)
                          s2;
                        let r = Solver.ctx_entails ctx p in
                        Solver.ctx_pop ctx;
                        if r = Solver.Valid then begin
                          present := ISet.remove (Pred.tag p) !present;
                          incr n_subsumed;
                          park p tag Subsumed;
                          false
                        end
                        else true
                      end)
                    s2
                end
              in
              Solver.ctx_pop ctx;
              if !parked <> [] then
                parked_all := KMap.add k (List.rev !parked) !parked_all;
              survivors
            end)
          init
      in
      {
        kept;
        parked = !parked_all;
        n_dup = !n_dup;
        n_refuted = !n_refuted;
        n_subsumed = !n_subsumed;
      })

let total (p : 'a plan) : int = p.n_dup + p.n_refuted + p.n_subsumed
