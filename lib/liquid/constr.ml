(** Liquid constraints: environments, well-formedness and subtyping
    constraints, constraint splitting, and environment embedding.

    Constraint generation (see {!Congen}) produces constraints between
    whole refinement types; [split] reduces them to {e simple} constraints
    whose right-hand side is either a single κ (to be weakened by the
    fixpoint) or a concrete predicate (to be checked once the fixpoint
    stabilizes), mirroring the paper's decomposition of [Γ ⊢ T₁ <: T₂].
    [embed_env] translates an environment into the antecedent predicates
    of an implication check, given the current solution for the [κ]
    variables. *)

open Liquid_common
open Liquid_logic

(* -- Environments -------------------------------------------------------- *)

type env = {
  binds : (Ident.t * Rtype.t) list; (* newest first *)
  guards : Pred.t list;
}

let empty_env = { binds = []; guards = [] }

let bind_var x rt env = { env with binds = (x, rt) :: env.binds }

let guard p env = { env with guards = p :: env.guards }

let lookup_env env x = List.assoc_opt x env.binds

(** Scope of an environment: variables usable in qualifier instances and
    their logical sorts.  Function-typed variables are excluded (no
    uninterpreted symbol applies to them) as are unit variables. *)
let scope_of_env env : (Ident.t * Sort.t) list =
  List.filter_map
    (fun (x, rt) ->
      match rt with
      | Rtype.Fun _ -> None
      | Rtype.Base (Rtype.Bunit, _) -> None
      | rt -> Some (x, Rtype.sort_of rt))
    env.binds

(* -- Constraints -------------------------------------------------------------- *)

type origin = { loc : Loc.t; reason : string }

(** Right-hand side of a simple constraint. *)
type rhs =
  | Rkvar of Rtype.kvar * Pred.subst (* weaken this κ *)
  | Rconc of Pred.t (* concrete obligation, checked after the fixpoint *)

type sub = {
  sub_id : int;
  sub_env : env;
  lhs : Rtype.refinement;
  rhs : rhs;
  vv_sort : Sort.t;
  origin : origin;
}

type wf = { wf_env : env; wf_kvar : Rtype.kvar; wf_sort : Sort.t }

exception Shape_error of string

let sub_counter = ref 0

let mk_sub env lhs rhs vv_sort origin =
  incr sub_counter;
  { sub_id = !sub_counter; sub_env = env; lhs; rhs; vv_sort; origin }

(** One simple constraint per κ on the right, plus one concrete check if
    the right-hand side has a non-trivial concrete part. *)
let subs_of_refinements env origin (r1 : Rtype.refinement)
    (r2 : Rtype.refinement) vv_sort acc =
  let acc =
    if Pred.equal r2.Rtype.preds Pred.tt then acc
    else mk_sub env r1 (Rconc r2.Rtype.preds) vv_sort origin :: acc
  in
  List.fold_left
    (fun acc (k, theta) -> mk_sub env r1 (Rkvar (k, theta)) vv_sort origin :: acc)
    acc r2.Rtype.kvars

(* -- Splitting ------------------------------------------------------------------ *)

let base_sort = function
  | Rtype.Bint -> Sort.Int
  | Rtype.Bbool -> Sort.Bool
  | Rtype.Bunit -> Sort.Obj

(** Value usable to substitute variable [x] (of type [t]) for a formal. *)
let var_value (t : Rtype.t) (x : Ident.t) : Pred.value =
  match Rtype.sort_of t with
  | Sort.Bool -> Pred.Pr (Pred.bvar x)
  | s -> Pred.Tm (Term.var x s)

(** Split [env ⊢ t1 <: t2] into simple refinement constraints. *)
let rec split env origin (t1 : Rtype.t) (t2 : Rtype.t) (acc : sub list) :
    sub list =
  match (t1, t2) with
  | Rtype.Base (Rtype.Bunit, _), Rtype.Base (Rtype.Bunit, _) -> acc
  | Rtype.Base (b1, r1), Rtype.Base (b2, r2) when b1 = b2 ->
      subs_of_refinements env origin r1 r2 (base_sort b1) acc
  | Rtype.Fun (x1, a1, r1), Rtype.Fun (x2, a2, r2) ->
      (* contravariant arguments, covariant results with renamed binder *)
      let acc = split env origin a2 a1 acc in
      let r1' = Rtype.subst1 x1 (var_value a2 x2) r1 in
      let env' = bind_var x2 a2 env in
      split env' origin r1' r2 acc
  | Rtype.Tuple ts1, Rtype.Tuple ts2 when List.length ts1 = List.length ts2 ->
      List.fold_left2 (fun acc t1 t2 -> split env origin t1 t2 acc) acc ts1 ts2
  | Rtype.List (e1, r1), Rtype.List (e2, r2) ->
      (* immutable container: covariant elements *)
      let acc = split env origin e1 e2 acc in
      subs_of_refinements env origin r1 r2 Sort.Obj acc
  | Rtype.Array (e1, r1), Rtype.Array (e2, r2) ->
      (* mutable container: invariant element type *)
      let acc = split env origin e1 e2 acc in
      let acc = split env origin e2 e1 acc in
      subs_of_refinements env origin r1 r2 Sort.Obj acc
  | Rtype.Tyvar (i, r1), Rtype.Tyvar (j, r2) when i = j ->
      subs_of_refinements env origin r1 r2 Sort.Obj acc
  | _ ->
      raise
        (Shape_error
           (Fmt.str "subtyping between incompatible shapes %a and %a" Rtype.pp
              t1 Rtype.pp t2))

(** Well-formedness constraints for every κ of a template, with binders
    entering scope as in the paper's [Γ ⊢ T] rules. *)
let rec split_wf env (t : Rtype.t) (acc : wf list) : wf list =
  match t with
  | Rtype.Base (b, r) -> wf_of_refinement env r (base_sort b) acc
  | Rtype.Fun (x, a, r) ->
      let acc = split_wf env a acc in
      split_wf (bind_var x a env) r acc
  | Rtype.Tuple ts -> List.fold_left (fun acc t -> split_wf env t acc) acc ts
  | Rtype.List (e, r) ->
      let acc = split_wf env e acc in
      wf_of_refinement env r Sort.Obj acc
  | Rtype.Array (e, r) ->
      let acc = split_wf env e acc in
      wf_of_refinement env r Sort.Obj acc
  | Rtype.Tyvar (_, r) -> wf_of_refinement env r Sort.Obj acc

and wf_of_refinement env (r : Rtype.refinement) sort acc =
  List.fold_left
    (fun acc (k, _) -> { wf_env = env; wf_kvar = k; wf_sort = sort } :: acc)
    acc r.Rtype.kvars

(* -- Embedding -------------------------------------------------------------------- *)

module KMap = Stdlib.Map.Make (Int)

type solution = Pred.t list KMap.t

let sol_find (sol : solution) k =
  match KMap.find_opt k sol with Some ps -> ps | None -> []

(** Predicates denoted by a refinement, with [ν] replaced by [value]. *)
let preds_of_refinement (lookup : Rtype.kvar -> Pred.t list)
    (value : Pred.value) (r : Rtype.refinement) : Pred.t list =
  let inst p = Pred.subst1 Ident.vv value p in
  inst r.Rtype.preds
  :: List.concat_map
       (fun (k, theta) ->
         List.map (fun q -> inst (Pred.subst theta q)) (lookup k))
       r.Rtype.kvars

(** The axiom [measure(value) >= 0], contributed for every array ([len])
    and list ([llen]) binding. *)
let nonneg_measure (m : Symbol.t) (value : Pred.value) : Pred.t =
  match value with
  | Pred.Tm tm -> Pred.ge (Term.app m [ tm ]) (Term.int 0)
  | Pred.Pr _ -> Pred.tt

(** Facts contributed by one environment binding.  [value] names the
    bound value in the logic (a variable, or a projection chain for tuple
    components). *)
let rec embed_binding lookup (value : Pred.value) (rt : Rtype.t) : Pred.t list
    =
  match rt with
  | Rtype.Base (Rtype.Bunit, _) -> []
  | Rtype.Base (_, r) -> preds_of_refinement lookup value r
  | Rtype.Array (_, r) ->
      (* array lengths are non-negative by construction *)
      nonneg_measure Symbol.len value :: preds_of_refinement lookup value r
  | Rtype.List (_, r) ->
      nonneg_measure Symbol.llen value :: preds_of_refinement lookup value r
  | Rtype.Tyvar (_, r) -> preds_of_refinement lookup value r
  | Rtype.Tuple ts -> (
      match value with
      | Pred.Tm base ->
          List.concat
            (List.mapi
               (fun i ti ->
                 let s = Rtype.sort_of ti in
                 if Sort.equal s Sort.Bool then []
                 else
                   let proj = Term.app (Rtype.proj_symbol i s) [ base ] in
                   embed_binding lookup (Pred.Tm proj) ti)
               ts)
      | Pred.Pr _ -> [])
  | Rtype.Fun _ -> []

(** All antecedent facts of an environment under the given solution,
    separated into binding-derived facts and guards (guards are exempt
    from relevance pruning in the solver). *)
let embed_env (lookup : Rtype.kvar -> Pred.t list) (env : env) :
    Pred.t list * Pred.t list =
  let bind_facts =
    List.concat_map
      (fun (x, rt) -> embed_binding lookup (var_value rt x) rt)
      env.binds
  in
  (List.filter (fun p -> not (Pred.equal p Pred.tt)) bind_facts, env.guards)

(* -- Compiled embedding (incremental fixpoint) -------------------------------------- *)

(** A compiled antecedent slot: either a κ-independent fact, computed once,
    or a κ occurrence that instantiates the κ's {e current} solution preds
    on demand.  Expanding a slot list under a solution yields exactly the
    predicate list [embed_env]/[preds_of_refinement] would produce, but
    the per-occurrence substitution [ν := value] ∘ θ is applied through a
    memo table, so re-expansion after weakening only pays for solution
    preds never seen at this occurrence before (weakening removes preds,
    so in the steady state every instantiation is a table hit). *)
type slot =
  | Sstatic of Pred.t
  | Ssite of Rtype.kvar * (Pred.t -> Pred.t) (* memoized instantiation *)

let memoized_inst (value : Pred.value) (theta : Pred.subst) : Pred.t -> Pred.t
    =
  let memo : Pred.t Pred.Tbl.t = Pred.Tbl.create 16 in
  fun q ->
    match Pred.Tbl.find_opt memo q with
    | Some p -> p
    | None ->
        let p = Pred.subst1 Ident.vv value (Pred.subst theta q) in
        Pred.Tbl.add memo q p;
        p

(** Slots denoted by a refinement, mirroring {!preds_of_refinement}. *)
let compile_refinement (value : Pred.value) (r : Rtype.refinement) : slot list
    =
  Sstatic (Pred.subst1 Ident.vv value r.Rtype.preds)
  :: List.map
       (fun (k, theta) -> Ssite (k, memoized_inst value theta))
       r.Rtype.kvars

(** Slots contributed by one binding, mirroring {!embed_binding}. *)
let rec compile_binding (value : Pred.value) (rt : Rtype.t) : slot list =
  match rt with
  | Rtype.Base (Rtype.Bunit, _) -> []
  | Rtype.Base (_, r) -> compile_refinement value r
  | Rtype.Array (_, r) ->
      Sstatic (nonneg_measure Symbol.len value) :: compile_refinement value r
  | Rtype.List (_, r) ->
      Sstatic (nonneg_measure Symbol.llen value) :: compile_refinement value r
  | Rtype.Tyvar (_, r) -> compile_refinement value r
  | Rtype.Tuple ts -> (
      match value with
      | Pred.Tm base ->
          List.concat
            (List.mapi
               (fun i ti ->
                 let s = Rtype.sort_of ti in
                 if Sort.equal s Sort.Bool then []
                 else
                   let proj = Term.app (Rtype.proj_symbol i s) [ base ] in
                   compile_binding (Pred.Tm proj) ti)
               ts)
      | Pred.Pr _ -> [])
  | Rtype.Fun _ -> []

(** Compiled form of {!embed_env}'s binding facts ([Sstatic tt] slots are
    dropped here; site expansions are filtered by the caller). *)
let compile_env (env : env) : slot list =
  List.filter
    (function Sstatic p -> not (Pred.equal p Pred.tt) | Ssite _ -> true)
    (List.concat_map
       (fun (x, rt) -> compile_binding (var_value rt x) rt)
       env.binds)

(* -- Printing ---------------------------------------------------------------------- *)

let pp_origin ppf { loc; reason } = Fmt.pf ppf "%s at %a" reason Loc.pp loc

let pp_rhs ppf = function
  | Rkvar (k, theta) ->
      if Ident.Map.is_empty theta then Fmt.pf ppf "k%d" k
      else Fmt.pf ppf "k%d%a" k Rtype.pp_subst theta
  | Rconc p -> Pred.pp ppf p

let pp_sub ppf (c : sub) =
  Fmt.pf ppf "[%d] ... ⊢ %a <: %a (%a)" c.sub_id Rtype.pp_refinement c.lhs
    pp_rhs c.rhs pp_origin c.origin

let pp_wf ppf (c : wf) =
  Fmt.pf ppf "... ⊢ k%d : %a" c.wf_kvar Sort.pp c.wf_sort
