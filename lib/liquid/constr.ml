(** Liquid constraints: environments, well-formedness and subtyping
    constraints, constraint splitting, and environment embedding.

    Constraint generation (see {!Congen}) produces constraints between
    whole refinement types; [split] reduces them to {e simple} constraints
    whose right-hand side is either a single κ (to be weakened by the
    fixpoint) or a concrete predicate (to be checked once the fixpoint
    stabilizes), mirroring the paper's decomposition of [Γ ⊢ T₁ <: T₂].
    [embed_env] translates an environment into the antecedent predicates
    of an implication check, given the current solution for the [κ]
    variables. *)

open Liquid_common
open Liquid_logic

(* -- Environments -------------------------------------------------------- *)

type env = {
  binds : (Ident.t * Rtype.t) list; (* newest first *)
  guards : Pred.t list;
}

let empty_env = { binds = []; guards = [] }

let bind_var x rt env = { env with binds = (x, rt) :: env.binds }

let guard p env = { env with guards = p :: env.guards }

let lookup_env env x = List.assoc_opt x env.binds

(** Scope of an environment: variables usable in qualifier instances and
    their logical sorts.  Function-typed variables are excluded (no
    uninterpreted symbol applies to them) as are unit variables. *)
let scope_of_env env : (Ident.t * Sort.t) list =
  List.filter_map
    (fun (x, rt) ->
      match rt with
      | Rtype.Fun _ -> None
      | Rtype.Base (Rtype.Bunit, _) -> None
      | rt -> Some (x, Rtype.sort_of rt))
    env.binds

(* -- Constraints -------------------------------------------------------------- *)

type origin = { loc : Loc.t; reason : string }

(** Right-hand side of a simple constraint. *)
type rhs =
  | Rkvar of Rtype.kvar * Pred.subst (* weaken this κ *)
  | Rconc of Pred.t (* concrete obligation, checked after the fixpoint *)

type sub = {
  sub_id : int;
  sub_env : env;
  lhs : Rtype.refinement;
  rhs : rhs;
  vv_sort : Sort.t;
  origin : origin;
}

type wf = { wf_env : env; wf_kvar : Rtype.kvar; wf_sort : Sort.t }

exception Shape_error of string

let sub_counter = ref 0
let reset_subs () = sub_counter := 0

let mk_sub env lhs rhs vv_sort origin =
  incr sub_counter;
  { sub_id = !sub_counter; sub_env = env; lhs; rhs; vv_sort; origin }

(** One simple constraint per κ on the right, plus one concrete check if
    the right-hand side has a non-trivial concrete part. *)
let subs_of_refinements env origin (r1 : Rtype.refinement)
    (r2 : Rtype.refinement) vv_sort acc =
  let acc =
    if Pred.equal r2.Rtype.preds Pred.tt then acc
    else mk_sub env r1 (Rconc r2.Rtype.preds) vv_sort origin :: acc
  in
  List.fold_left
    (fun acc (k, theta) -> mk_sub env r1 (Rkvar (k, theta)) vv_sort origin :: acc)
    acc r2.Rtype.kvars

(* -- Splitting ------------------------------------------------------------------ *)

let base_sort = function
  | Rtype.Bint -> Sort.Int
  | Rtype.Bbool -> Sort.Bool
  | Rtype.Bunit -> Sort.Obj

(** Value usable to substitute variable [x] (of type [t]) for a formal. *)
let var_value (t : Rtype.t) (x : Ident.t) : Pred.value =
  match Rtype.sort_of t with
  | Sort.Bool -> Pred.Pr (Pred.bvar x)
  | s -> Pred.Tm (Term.var x s)

(** Split [env ⊢ t1 <: t2] into simple refinement constraints. *)
let rec split env origin (t1 : Rtype.t) (t2 : Rtype.t) (acc : sub list) :
    sub list =
  match (t1, t2) with
  | Rtype.Base (Rtype.Bunit, _), Rtype.Base (Rtype.Bunit, _) -> acc
  | Rtype.Base (b1, r1), Rtype.Base (b2, r2) when b1 = b2 ->
      subs_of_refinements env origin r1 r2 (base_sort b1) acc
  | Rtype.Fun (x1, a1, r1), Rtype.Fun (x2, a2, r2) ->
      (* contravariant arguments, covariant results with renamed binder *)
      let acc = split env origin a2 a1 acc in
      let r1' = Rtype.subst1 x1 (var_value a2 x2) r1 in
      let env' = bind_var x2 a2 env in
      split env' origin r1' r2 acc
  | Rtype.Tuple ts1, Rtype.Tuple ts2 when List.length ts1 = List.length ts2 ->
      List.fold_left2 (fun acc t1 t2 -> split env origin t1 t2 acc) acc ts1 ts2
  | Rtype.List (e1, r1), Rtype.List (e2, r2) ->
      (* immutable container: covariant elements *)
      let acc = split env origin e1 e2 acc in
      subs_of_refinements env origin r1 r2 Sort.Obj acc
  | Rtype.Array (e1, r1), Rtype.Array (e2, r2) ->
      (* mutable container: invariant element type *)
      let acc = split env origin e1 e2 acc in
      let acc = split env origin e2 e1 acc in
      subs_of_refinements env origin r1 r2 Sort.Obj acc
  | Rtype.Data (d1, r1), Rtype.Data (d2, r2) when String.equal d1 d2 ->
      subs_of_refinements env origin r1 r2 Sort.Obj acc
  | Rtype.Tyvar (i, r1), Rtype.Tyvar (j, r2) when i = j ->
      subs_of_refinements env origin r1 r2 Sort.Obj acc
  | _ ->
      raise
        (Shape_error
           (Fmt.str "subtyping between incompatible shapes %a and %a" Rtype.pp
              t1 Rtype.pp t2))

(** Well-formedness constraints for every κ of a template, with binders
    entering scope as in the paper's [Γ ⊢ T] rules. *)
let rec split_wf env (t : Rtype.t) (acc : wf list) : wf list =
  match t with
  | Rtype.Base (b, r) -> wf_of_refinement env r (base_sort b) acc
  | Rtype.Fun (x, a, r) ->
      let acc = split_wf env a acc in
      split_wf (bind_var x a env) r acc
  | Rtype.Tuple ts -> List.fold_left (fun acc t -> split_wf env t acc) acc ts
  | Rtype.List (e, r) ->
      let acc = split_wf env e acc in
      wf_of_refinement env r Sort.Obj acc
  | Rtype.Array (e, r) ->
      let acc = split_wf env e acc in
      wf_of_refinement env r Sort.Obj acc
  | Rtype.Data (_, r) -> wf_of_refinement env r Sort.Obj acc
  | Rtype.Tyvar (_, r) -> wf_of_refinement env r Sort.Obj acc

and wf_of_refinement env (r : Rtype.refinement) sort acc =
  List.fold_left
    (fun acc (k, _) -> { wf_env = env; wf_kvar = k; wf_sort = sort } :: acc)
    acc r.Rtype.kvars

(* -- Embedding -------------------------------------------------------------------- *)

module KMap = Stdlib.Map.Make (Int)

type solution = Pred.t list KMap.t

let sol_find (sol : solution) k =
  match KMap.find_opt k sol with Some ps -> ps | None -> []

(** Predicates denoted by a refinement, with [ν] replaced by [value]. *)
let preds_of_refinement (lookup : Rtype.kvar -> Pred.t list)
    (value : Pred.value) (r : Rtype.refinement) : Pred.t list =
  let inst p = Pred.subst1 Ident.vv value p in
  inst r.Rtype.preds
  :: List.concat_map
       (fun (k, theta) ->
         List.map (fun q -> inst (Pred.subst theta q)) (lookup k))
       r.Rtype.kvars

(** The axioms [m(value) >= 0] for every provably non-negative measure
    over [tycon], registration order — contributed for every binding of
    that datatype (arrays: [len], lists: [llen], user ADTs: their
    declared measures).  All three embedding paths below share this so
    their fact order stays identical. *)
let nonneg_measures (tycon : string) (value : Pred.value) : Pred.t list =
  match value with
  | Pred.Pr _ -> []
  | Pred.Tm tm ->
      List.filter_map
        (fun m -> Measure.nonneg_fact m tm)
        (Measure.measures_on tycon)

(** Facts contributed by one environment binding.  [value] names the
    bound value in the logic (a variable, or a projection chain for tuple
    components). *)
let rec embed_binding lookup (value : Pred.value) (rt : Rtype.t) : Pred.t list
    =
  match rt with
  | Rtype.Base (Rtype.Bunit, _) -> []
  | Rtype.Base (_, r) -> preds_of_refinement lookup value r
  | Rtype.Array (_, r) ->
      (* array lengths are non-negative by construction *)
      nonneg_measures "array" value @ preds_of_refinement lookup value r
  | Rtype.List (_, r) ->
      nonneg_measures "list" value @ preds_of_refinement lookup value r
  | Rtype.Data (d, r) ->
      nonneg_measures d value @ preds_of_refinement lookup value r
  | Rtype.Tyvar (_, r) -> preds_of_refinement lookup value r
  | Rtype.Tuple ts -> (
      match value with
      | Pred.Tm base ->
          List.concat
            (List.mapi
               (fun i ti ->
                 let s = Rtype.sort_of ti in
                 if Sort.equal s Sort.Bool then []
                 else
                   let proj = Term.app (Rtype.proj_symbol i s) [ base ] in
                   embed_binding lookup (Pred.Tm proj) ti)
               ts)
      | Pred.Pr _ -> [])
  | Rtype.Fun _ -> []

(** All antecedent facts of an environment under the given solution,
    separated into binding-derived facts and guards (guards are exempt
    from relevance pruning in the solver). *)
let embed_env (lookup : Rtype.kvar -> Pred.t list) (env : env) :
    Pred.t list * Pred.t list =
  let bind_facts =
    List.concat_map
      (fun (x, rt) -> embed_binding lookup (var_value rt x) rt)
      env.binds
  in
  (List.filter (fun p -> not (Pred.equal p Pred.tt)) bind_facts, env.guards)

(* -- Traced embedding (explanation engine) ------------------------------------------ *)

(** Where an antecedent fact came from: the environment binder that
    contributed it (or [None] for a guard/lhs fact) and the κ whose
    solution instance it is (or [None] for a static refinement part or a
    measure axiom).  The explanation engine uses this to translate a
    minimized hypothesis core back to program bindings and blamed κs. *)
type fact_origin = { fo_binder : Ident.t option; fo_kvar : Rtype.kvar option }

(** {!preds_of_refinement} with the κ each fact instantiates. *)
let preds_of_refinement_traced (lookup : Rtype.kvar -> Pred.t list)
    (value : Pred.value) (r : Rtype.refinement) :
    (Pred.t * Rtype.kvar option) list =
  let inst p = Pred.subst1 Ident.vv value p in
  (inst r.Rtype.preds, None)
  :: List.concat_map
       (fun (k, theta) ->
         List.map (fun q -> (inst (Pred.subst theta q), Some k)) (lookup k))
       r.Rtype.kvars

(** {!embed_binding} with per-fact κ provenance. *)
let rec embed_binding_traced lookup (value : Pred.value) (rt : Rtype.t) :
    (Pred.t * Rtype.kvar option) list =
  match rt with
  | Rtype.Base (Rtype.Bunit, _) -> []
  | Rtype.Base (_, r) -> preds_of_refinement_traced lookup value r
  | Rtype.Array (_, r) ->
      List.map (fun p -> (p, None)) (nonneg_measures "array" value)
      @ preds_of_refinement_traced lookup value r
  | Rtype.List (_, r) ->
      List.map (fun p -> (p, None)) (nonneg_measures "list" value)
      @ preds_of_refinement_traced lookup value r
  | Rtype.Data (d, r) ->
      List.map (fun p -> (p, None)) (nonneg_measures d value)
      @ preds_of_refinement_traced lookup value r
  | Rtype.Tyvar (_, r) -> preds_of_refinement_traced lookup value r
  | Rtype.Tuple ts -> (
      match value with
      | Pred.Tm base ->
          List.concat
            (List.mapi
               (fun i ti ->
                 let s = Rtype.sort_of ti in
                 if Sort.equal s Sort.Bool then []
                 else
                   let proj = Term.app (Rtype.proj_symbol i s) [ base ] in
                   embed_binding_traced lookup (Pred.Tm proj) ti)
               ts)
      | Pred.Pr _ -> [])
  | Rtype.Fun _ -> []

(** {!embed_env} with per-fact provenance: same facts, in the same order,
    under the same [tt] filter, so index [i] of the traced facts is fact
    [i] of [embed_env] — the correspondence the explanation engine's use
    of {!Liquid_smt.Solver.check_valid_idx} indices depends on. *)
let embed_env_trace (lookup : Rtype.kvar -> Pred.t list) (env : env) :
    (Pred.t * fact_origin) list * Pred.t list =
  let bind_facts =
    List.concat_map
      (fun (x, rt) ->
        List.map
          (fun (p, k) -> (p, { fo_binder = Some x; fo_kvar = k }))
          (embed_binding_traced lookup (var_value rt x) rt))
      env.binds
  in
  ( List.filter (fun (p, _) -> not (Pred.equal p Pred.tt)) bind_facts,
    env.guards )

(* -- Compiled embedding (incremental fixpoint) -------------------------------------- *)

(** A compiled antecedent slot: either a κ-independent fact, computed once,
    or a κ occurrence that instantiates the κ's {e current} solution preds
    on demand.  Expanding a slot list under a solution yields exactly the
    predicate list [embed_env]/[preds_of_refinement] would produce, but
    the per-occurrence substitution [ν := value] ∘ θ is applied through a
    memo table, so re-expansion after weakening only pays for solution
    preds never seen at this occurrence before (weakening removes preds,
    so in the steady state every instantiation is a table hit). *)
type slot =
  | Sstatic of Pred.t
  | Ssite of Rtype.kvar * (Pred.t -> Pred.t) (* memoized instantiation *)

let memoized_inst (value : Pred.value) (theta : Pred.subst) : Pred.t -> Pred.t
    =
  let memo : Pred.t Pred.Tbl.t = Pred.Tbl.create 16 in
  fun q ->
    match Pred.Tbl.find_opt memo q with
    | Some p -> p
    | None ->
        let p = Pred.subst1 Ident.vv value (Pred.subst theta q) in
        Pred.Tbl.add memo q p;
        p

(** Slots denoted by a refinement, mirroring {!preds_of_refinement}. *)
let compile_refinement (value : Pred.value) (r : Rtype.refinement) : slot list
    =
  Sstatic (Pred.subst1 Ident.vv value r.Rtype.preds)
  :: List.map
       (fun (k, theta) -> Ssite (k, memoized_inst value theta))
       r.Rtype.kvars

(** Slots contributed by one binding, mirroring {!embed_binding}. *)
let rec compile_binding (value : Pred.value) (rt : Rtype.t) : slot list =
  match rt with
  | Rtype.Base (Rtype.Bunit, _) -> []
  | Rtype.Base (_, r) -> compile_refinement value r
  | Rtype.Array (_, r) ->
      List.map (fun p -> Sstatic p) (nonneg_measures "array" value)
      @ compile_refinement value r
  | Rtype.List (_, r) ->
      List.map (fun p -> Sstatic p) (nonneg_measures "list" value)
      @ compile_refinement value r
  | Rtype.Data (d, r) ->
      List.map (fun p -> Sstatic p) (nonneg_measures d value)
      @ compile_refinement value r
  | Rtype.Tyvar (_, r) -> compile_refinement value r
  | Rtype.Tuple ts -> (
      match value with
      | Pred.Tm base ->
          List.concat
            (List.mapi
               (fun i ti ->
                 let s = Rtype.sort_of ti in
                 if Sort.equal s Sort.Bool then []
                 else
                   let proj = Term.app (Rtype.proj_symbol i s) [ base ] in
                   compile_binding (Pred.Tm proj) ti)
               ts)
      | Pred.Pr _ -> [])
  | Rtype.Fun _ -> []

(** Compiled form of {!embed_env}'s binding facts ([Sstatic tt] slots are
    dropped here; site expansions are filtered by the caller). *)
let compile_env (env : env) : slot list =
  List.filter
    (function Sstatic p -> not (Pred.equal p Pred.tt) | Ssite _ -> true)
    (List.concat_map
       (fun (x, rt) -> compile_binding (var_value rt x) rt)
       env.binds)

(* -- Dependency structure ----------------------------------------------------------- *)

(** κs read by a constraint: those in its environment and left-hand side.
    Weakening the constraint's right-hand κ must be reconsidered whenever
    any of these weakens. *)
let reads (c : sub) : int list =
  let env_ks =
    List.concat_map (fun (_, rt) -> Rtype.kvars rt) c.sub_env.binds
  in
  Listx.dedup_ordered ~compare:Int.compare
    (List.map fst c.lhs.Rtype.kvars @ env_ks)

(** The κ a constraint weakens, if any ([None]: a concrete obligation). *)
let writes (c : sub) : int option =
  match c.rhs with Rkvar (k, _) -> Some k | Rconc _ -> None

(* -- Partitioning ------------------------------------------------------------------- *)

(* The κ→κ dependency graph has an edge k → k' for every simple
   constraint that reads k and writes k': weakening k can oblige k' to
   weaken.  Real programs decompose into many independent components of
   this graph (one per top-level function, roughly, with call edges
   between them), so the fixpoint can be solved per strongly-connected
   component, in topological order, each component seeing only the final
   solutions of the components it reads.  The condensation below is the
   solve-unit plan executed by the engine scheduler. *)

module ISet = Set.Make (Int)

type partition = {
  part_id : int; (* topological index: every dependency has a smaller id *)
  part_kvars : int list; (* κs owned (weakened) by this unit, sorted *)
  part_subs : sub list; (* constraints solved here, in original order *)
  part_deps : int list; (* part_ids whose final solutions this unit reads *)
}

type plan = {
  parts : partition array; (* topologically ordered *)
  plan_kvars : int; (* κs in the dependency graph *)
  critical_path : int; (* longest dependency chain, in partitions *)
}

(** Tarjan's strongly-connected components over an adjacency map.
    Components are emitted in reverse topological order (a component is
    finished only after everything it reaches), so reversing the result
    lists dependencies first. *)
let scc_condense (nodes : int list) (succs : int -> int list) : int list list
    =
  let index = Hashtbl.create 64 in
  let lowlink = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] in
  let next = ref 0 in
  let comps = ref [] in
  let rec visit v =
    Hashtbl.replace index v !next;
    Hashtbl.replace lowlink v !next;
    incr next;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        match Hashtbl.find_opt index w with
        | None ->
            visit w;
            Hashtbl.replace lowlink v
              (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        | Some wi ->
            if Hashtbl.mem on_stack w then
              Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) wi))
      (succs v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      (* v is the root of a component: pop the stack down to it *)
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if w = v then w :: acc else pop (w :: acc)
      in
      comps := pop [] :: !comps
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then visit v) nodes;
  (* [comps] accumulated reversed-of-emission = topological order *)
  !comps

(** Build the solve-unit plan for a constraint system: κ→κ edges from
    the simple constraints, SCC condensation in topological order,
    κ-weakening constraints attached to the unit owning their κ, and
    concrete obligations attached to the {e latest} unit among the κs
    they read (with explicit dependency edges on the others, so every κ
    a concrete check reads is final when the check runs). *)
let partition_plan (wfs : wf list) (subs : sub list) : plan =
  (* κ universe: wf κs plus everything read or written. *)
  let kvars =
    Listx.dedup_ordered ~compare:Int.compare
      (List.map (fun w -> w.wf_kvar) wfs
      @ List.concat_map
          (fun c -> match writes c with Some k -> k :: reads c | None -> reads c)
          subs)
  in
  (* Adjacency: k -> κs written by constraints reading k. *)
  let succs_tbl : (int, ISet.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun c ->
      match writes c with
      | None -> ()
      | Some kw ->
          List.iter
            (fun kr ->
              if kr <> kw then
                let prev =
                  Option.value ~default:ISet.empty
                    (Hashtbl.find_opt succs_tbl kr)
                in
                Hashtbl.replace succs_tbl kr (ISet.add kw prev))
            (reads c))
    subs;
  let succs k =
    match Hashtbl.find_opt succs_tbl k with
    | Some s -> ISet.elements s
    | None -> []
  in
  let comps = scc_condense kvars succs in
  (* Degenerate system with no κs: one catch-all unit for the checks. *)
  let comps = if comps = [] then [ [] ] else comps in
  let n = List.length comps in
  let comp_of : (int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iteri
    (fun i ks -> List.iter (fun k -> Hashtbl.replace comp_of k i) ks)
    comps;
  let part_of_kvar k =
    match Hashtbl.find_opt comp_of k with Some i -> i | None -> 0
  in
  (* Assign constraints: subs buckets keep original order; deps collect
     every foreign unit a constraint reads. *)
  let bucket_subs = Array.make n [] in
  let deps = Array.make n ISet.empty in
  List.iter
    (fun c ->
      let home =
        match writes c with
        | Some kw -> part_of_kvar kw
        | None ->
            (* latest unit among the κs read; unit 0 for κ-free checks *)
            List.fold_left (fun acc k -> max acc (part_of_kvar k)) 0 (reads c)
      in
      bucket_subs.(home) <- c :: bucket_subs.(home);
      List.iter
        (fun kr ->
          let p = part_of_kvar kr in
          if p <> home then deps.(home) <- ISet.add p deps.(home))
        (reads c))
    subs;
  let parts =
    Array.of_list
      (List.mapi
         (fun i ks ->
           {
             part_id = i;
             part_kvars = List.sort Int.compare ks;
             part_subs = List.rev bucket_subs.(i);
             part_deps = ISet.elements deps.(i);
           })
         comps)
  in
  (* Longest dependency chain (in units), by DP over the topo order. *)
  let depth = Array.make n 0 in
  Array.iter
    (fun p ->
      depth.(p.part_id) <-
        1 + List.fold_left (fun acc d -> max acc depth.(d)) 0 p.part_deps)
    parts;
  {
    parts;
    plan_kvars = List.length kvars;
    critical_path = Array.fold_left max 0 depth;
  }

(* -- Printing ---------------------------------------------------------------------- *)

let pp_origin ppf { loc; reason } = Fmt.pf ppf "%s at %a" reason Loc.pp loc

let pp_rhs ppf = function
  | Rkvar (k, theta) ->
      if Ident.Map.is_empty theta then Fmt.pf ppf "k%d" k
      else Fmt.pf ppf "k%d%a" k Rtype.pp_subst theta
  | Rconc p -> Pred.pp ppf p

let pp_sub ppf (c : sub) =
  Fmt.pf ppf "[%d] ... ⊢ %a <: %a (%a)" c.sub_id Rtype.pp_refinement c.lhs
    pp_rhs c.rhs pp_origin c.origin

let pp_wf ppf (c : wf) =
  Fmt.pf ppf "... ⊢ k%d : %a" c.wf_kvar Sort.pp c.wf_sort

(* -- Content signatures ------------------------------------------------------ *)

(* Canonical rendering of an environment for content hashing: every
   bind (name and full refinement type, κs included) and every guard,
   in order.  Unlike the display printers nothing is elided — two
   environments render equal iff the solver sees the same antecedent. *)
let pp_env_sig ppf (e : env) =
  List.iter
    (fun (x, t) -> Fmt.pf ppf "%a:%a;" Ident.pp x Rtype.pp t)
    e.binds;
  Fmt.pf ppf "|";
  List.iter (fun g -> Fmt.pf ppf "%a;" Pred.pp g) e.guards

let unit_signature (wfs : wf list) (p : partition) : string =
  (* [part_id] is deliberately absent: it is a position in the
     topological order, and an edit elsewhere in the program can
     renumber an untouched unit.  Content alone identifies a partition —
     κ ids and sub_ids are globally unique, so distinct partitions can
     never render equal. *)
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  Format.pp_set_margin ppf 1_000_000;
  List.iter
    (fun (c : sub) ->
      Fmt.pf ppf "sub[%d]%a⊢%a<:%a^%a@%a\n" c.sub_id pp_env_sig c.sub_env
        Rtype.pp_refinement c.lhs pp_rhs c.rhs Sort.pp c.vv_sort pp_origin
        c.origin)
    p.part_subs;
  List.iter
    (fun (w : wf) ->
      if List.mem w.wf_kvar p.part_kvars then
        Fmt.pf ppf "wf k%d %a : %a\n" w.wf_kvar pp_env_sig w.wf_env Sort.pp
          w.wf_sort)
    wfs;
  Format.pp_print_flush ppf ();
  Digest.to_hex (Digest.string (Buffer.contents buf))
